// Service-layer benchmarks (acceptance numbers for the service subsystem):
//
//   1. PlanCacheHit vs CompileEveryCall — the cache-hit path must beat
//      parse+resolve+typecheck+optimize+compile per call by >=5x on a
//      small query (where compilation dominates execution).
//   2. Throughput_Workers/N — near-linear scaling from 1 to 4 workers on
//      independent CPU-bound queries (each worker runs the shared cached
//      plan; queries are pure, so they execute under the shared lock).
//   3. SubmitOverhead — the fixed cost of Submit+Wait round-tripping
//      through the pool for a trivial cached query.
//
// Run:  ./bench_service --benchmark_min_time=0.2s

#include <string>
#include <vector>

#include "bench_util.h"
#include "benchmark/benchmark.h"
#include "service/service.h"

namespace aql {
namespace bench {
namespace {

using service::QueryOptions;
using service::QueryService;
using service::QuerySubmission;
using service::ServiceConfig;

// Compilation (macro expansion + typecheck + rewrite pipeline + slot
// compilation), not execution, dominates: matmul on 2x2 literals expands
// to a large core term but touches 8 multiplications at run time. The
// cache-hit speedup below is the compile cost this query avoids.
const char kSmallQuery[] =
    "matmul!([[2, 2; 1, 2, 3, 4]], matmul!([[2, 2; 5, 6, 7, 8]],"
    " transpose!([[2, 2; 9, 10, 11, 12]])))";

// CPU-bound enough (~1e5 loop iterations) that worker scaling is visible
// over synchronization overhead.
const char kCpuQuery[] = "summap(fn \\x => (x * x + 17) / 3)!(gen!100000)";

void BM_Service_CompileEveryCall(benchmark::State& state) {
  System sys;
  QueryService svc(&sys, {.num_workers = 1});
  QueryOptions no_cache;
  no_cache.use_plan_cache = false;
  for (auto _ : state) {
    auto r = svc.Execute(kSmallQuery, no_cache);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Service_CompileEveryCall);

void BM_Service_PlanCacheHit(benchmark::State& state) {
  System sys;
  QueryService svc(&sys, {.num_workers = 1});
  (void)svc.Execute(kSmallQuery);  // warm the cache
  for (auto _ : state) {
    auto r = svc.Execute(kSmallQuery);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  auto counters = svc.metrics()->CounterValues();
  state.counters["cache_hits"] = double(counters["plan_cache.hits"]);
  state.counters["cache_misses"] = double(counters["plan_cache.misses"]);
}
BENCHMARK(BM_Service_PlanCacheHit);

// items_per_second across worker counts shows the scaling curve; the
// submitting thread only enqueues and waits, so workers do the real work.
void BM_Service_Throughput_Workers(benchmark::State& state) {
  System sys;
  ServiceConfig cfg;
  cfg.num_workers = size_t(state.range(0));
  cfg.max_queue = 1024;
  QueryService svc(&sys, cfg);
  (void)svc.Execute(kCpuQuery);  // warm the plan cache
  constexpr int kBatch = 32;
  for (auto _ : state) {
    std::vector<QuerySubmission> subs;
    subs.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) subs.push_back(svc.Submit(kCpuQuery));
    for (auto& s : subs) {
      auto r = s.Wait();
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kBatch);
}
BENCHMARK(BM_Service_Throughput_Workers)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_Service_SubmitOverhead(benchmark::State& state) {
  System sys;
  QueryService svc(&sys, {.num_workers = 2});
  (void)svc.Execute("1 + 1");
  for (auto _ : state) {
    auto sub = svc.Submit("1 + 1");
    auto r = sub.Wait();
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Service_SubmitOverhead);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
