// Experiment E9 (paper §1): the motivating heat-wave query, end to end,
// on synthetic weather data with the paper's mismatched grids.
//
// Series:
//   Heatwave/days       — the full optimized query as days grow
//   HeatwaveUnopt/days  — without the optimizer (normalization usually
//                         buys a constant factor here; the pipeline is
//                         dominated by zip_3 over the month)
//   HeatwavePieces      — the regridding steps in isolation

#include <algorithm>

#include "bench_util.h"
#include "netcdf/synth.h"

namespace aql {
namespace bench {
namespace {

constexpr const char* kQuery =
    "{d | \\d <- gen!NDAYS,"
    "     \\WS' == evenpos!(proj_col!(WS, 0)),"
    "     \\TRW == zip_3!(T, RH, WS'),"
    "     \\A == subseq!(TRW, d*24, d*24 + 23),"
    "     heatindex!A > threshold}";

void SetupWeather(System* sys, uint64_t days) {
  netcdf::SynthWeatherOptions opts;
  opts.days = days;
  uint64_t hours = days * 24;
  std::vector<Value> t, rh, ws;
  for (uint64_t h = 0; h < hours; ++h) {
    t.push_back(Value::Real(netcdf::SynthTemperature(opts, 151 * 24 + h, 0, 0)));
    rh.push_back(Value::Real(netcdf::SynthHumidity(opts, 151 * 24 + h, 0, 0)));
  }
  for (uint64_t tick = 0; tick < days * 48; ++tick) {
    for (uint64_t alt = 0; alt < 3; ++alt) {
      ws.push_back(Value::Real(netcdf::SynthWind(opts, tick, alt, 0, 0)));
    }
  }
  (void)sys->DefineVal("T", Value::MakeVector(std::move(t)));
  (void)sys->DefineVal("RH", Value::MakeVector(std::move(rh)));
  (void)sys->DefineVal("WS", *Value::MakeArray({days * 48, 3}, std::move(ws)));
  (void)sys->DefineVal("NDAYS", Value::Nat(days));
  (void)sys->DefineVal("threshold", Value::Real(88.0));
  // Idempotent: re-registration returns AlreadyExists, which is fine.
  (void)sys->RegisterPrimitive(
      "heatindex", "[[real * real * real]]_1 -> real",
      [](const Value& arg) -> Result<Value> {
        double peak = -1e30;
        for (const Value& v : arg.array().elems) {
          const auto& f = v.tuple_fields();
          peak = std::max(peak, f[0].real_value() + 0.05 * f[1].real_value() -
                                    0.4 * f[2].real_value());
        }
        return Value::Real(peak);
      });
}

void BM_Heatwave(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupWeather(sys, state.range(0));
  ExprPtr q = MustCompile(sys, state, kQuery);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Heatwave)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_HeatwaveUnopt(benchmark::State& state) {
  System* sys = SharedUnoptimizedSystem();
  SetupWeather(sys, state.range(0));
  ExprPtr q = MustCompile(sys, state, kQuery);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HeatwaveUnopt)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_HeatwaveRegridOnly(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupWeather(sys, state.range(0));
  ExprPtr q = MustCompile(sys, state, "evenpos!(proj_col!(WS, 0))");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HeatwaveRegridOnly)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_HeatwaveZipOnly(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupWeather(sys, state.range(0));
  ExprPtr q = MustCompile(sys, state, "zip_3!(T, RH, evenpos!(proj_col!(WS, 0)))");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HeatwaveZipOnly)->RangeMultiplier(2)->Range(4, 64)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
