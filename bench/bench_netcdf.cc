// Experiment E12 (paper §4.1): the NetCDF driver. Subslab read cost vs
// slab size, header decode cost, the readval path into complex objects,
// and write throughput — the "I/O module" of Figure 3.

#include <cstdio>
#include <filesystem>

#include "bench_util.h"
#include "io/drivers.h"
#include "netcdf/reader.h"
#include "netcdf/synth.h"

namespace aql {
namespace bench {
namespace {

// One shared 90-day 4x4 hourly temperature file.
const std::string& TestFile() {
  static const std::string* path = [] {
    auto p = new std::string(
        (std::filesystem::temp_directory_path() / "aql_bench.nc").string());
    netcdf::SynthWeatherOptions opts;
    opts.days = 90;
    auto r = netcdf::WriteTempFile(*p, opts);
    if (!r.ok()) std::abort();
    return p;
  }();
  return *path;
}

void BM_HeaderDecode(benchmark::State& state) {
  auto reader = netcdf::NcReader::OpenFile(TestFile());
  if (!reader.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  for (auto _ : state) {
    auto r = netcdf::NcReader::OpenFile(TestFile());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HeaderDecode);

void BM_SlabRead(benchmark::State& state) {
  auto reader = netcdf::NcReader::OpenFile(TestFile());
  if (!reader.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  int var = reader->header().FindVar("temp");
  uint64_t hours = state.range(0);
  for (auto _ : state) {
    auto slab = reader->ReadSlab(var, {0, 0, 0}, {hours, 4, 4});
    benchmark::DoNotOptimize(slab);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * hours * 16 * 4);
  state.SetComplexityN(hours);
}
BENCHMARK(BM_SlabRead)->RangeMultiplier(4)->Range(24, 1536)->Complexity();

void BM_ReadvalIntoComplexObject(benchmark::State& state) {
  auto reader_fn = MakeNetcdfReader(3);
  uint64_t hours = state.range(0);
  Value args = Value::MakeTuple(
      {Value::Str(TestFile()), Value::Str("temp"),
       Value::MakeTuple({Value::Nat(0), Value::Nat(0), Value::Nat(0)}),
       Value::MakeTuple({Value::Nat(hours - 1), Value::Nat(3), Value::Nat(3)})});
  for (auto _ : state) benchmark::DoNotOptimize(reader_fn(args));
  state.SetComplexityN(hours);
}
BENCHMARK(BM_ReadvalIntoComplexObject)->RangeMultiplier(4)->Range(24, 1536)->Complexity();

void BM_QueryOverNetcdfData(benchmark::State& state) {
  // The typical post-readval workload: a filter-aggregate over the slab.
  System* sys = SharedSystem();
  std::string program = "readval \\T using NETCDF3 at (\"" + TestFile() +
                        "\", \"temp\", (0,0,0), (239,3,3));";
  auto rd = sys->Run(program);
  if (!rd.ok()) {
    state.SkipWithError(rd.status().ToString().c_str());
    return;
  }
  ExprPtr q = MustCompile(sys, state, "card!({h | [(\\h,_,_) : \\t] <- T, t > 70.0})");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
}
BENCHMARK(BM_QueryOverNetcdfData);

void BM_FileWrite(benchmark::State& state) {
  netcdf::SynthWeatherOptions opts;
  opts.days = state.range(0);
  std::string path =
      (std::filesystem::temp_directory_path() / "aql_bench_write.nc").string();
  size_t bytes = 0;
  for (auto _ : state) {
    auto r = netcdf::WriteTempFile(path, opts);
    if (!r.ok()) {
      state.SkipWithError("write failed");
      return;
    }
    bytes = *r;
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_FileWrite)->RangeMultiplier(4)->Range(2, 32);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
