// Experiment E5 (paper §1, §5): after normalization,
// zip(subseq(A,i,j), subseq(B,i,j)) and subseq(zip(A,B),i,j) "get reduced
// to the same query" — so BOTH run at the fused speed, while without the
// optimizer the plans differ (the zip-first plan materializes a
// full-length intermediate).
//
// Series (window of 64 elements out of n):
//   SubseqThenZip / ZipThenSubseq            — optimized: both O(window)
//   SubseqThenZipUnopt / ZipThenSubseqUnopt  — unoptimized: zip-first pays
//                                              O(n) for the intermediate
// The crossover the paper implies: optimized plans are insensitive to
// operation order; the unoptimized gap grows with n / window.

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

constexpr const char* kSubseqThenZip =
    "zip!(subseq!(A, 10, 73), subseq!(B, 10, 73))";
constexpr const char* kZipThenSubseq = "subseq!(zip!(A, B), 10, 73)";

void Run(benchmark::State& state, const char* query, bool optimized) {
  System* sys = optimized ? SharedSystem() : SharedUnoptimizedSystem();
  size_t n = state.range(0);
  (void)sys->DefineVal("A", NatVector(RandomNats(n, 1000, 1)));
  (void)sys->DefineVal("B", NatVector(RandomNats(n, 1000, 2)));
  ExprPtr q = MustCompile(sys, state, query);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(n);
}

void BM_SubseqThenZip(benchmark::State& state) { Run(state, kSubseqThenZip, true); }
void BM_ZipThenSubseq(benchmark::State& state) { Run(state, kZipThenSubseq, true); }
void BM_SubseqThenZipUnopt(benchmark::State& state) {
  Run(state, kSubseqThenZip, false);
}
void BM_ZipThenSubseqUnopt(benchmark::State& state) {
  Run(state, kZipThenSubseq, false);
}
BENCHMARK(BM_SubseqThenZip)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_ZipThenSubseq)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_SubseqThenZipUnopt)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_ZipThenSubseqUnopt)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

// Deep map pipelines: k chained maparr fuse into one loop.
void BM_MapPipelineFused(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("A", NatVector(RandomNats(4096, 1000)));
  std::string q = "A";
  for (int i = 0; i < state.range(0); ++i) q = "maparr!(fn \\x => x + 1, " + q + ")";
  ExprPtr compiled = MustCompile(sys, state, q);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, compiled));
}
void BM_MapPipelineUnopt(benchmark::State& state) {
  System* sys = SharedUnoptimizedSystem();
  (void)sys->DefineVal("A", NatVector(RandomNats(4096, 1000)));
  std::string q = "A";
  for (int i = 0; i < state.range(0); ++i) q = "maparr!(fn \\x => x + 1, " + q + ")";
  ExprPtr compiled = MustCompile(sys, state, q);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, compiled));
}
BENCHMARK(BM_MapPipelineFused)->DenseRange(1, 5);
BENCHMARK(BM_MapPipelineUnopt)->DenseRange(1, 5);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
