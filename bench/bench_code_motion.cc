// Ablation for the code-motion phase (§5 "later phases include ... code
// motion"; design decision called out in DESIGN.md).
//
// Series:
//   InvariantHoisted/n   — [[ i + Sum(gen m) | i < n ]] with code motion:
//                          O(n + m)
//   InvariantInLoop/n    — same query, phase disabled: O(n * m)
//   HistFast/n           — hist' with the phase on (grouping runs once)
//   HistFastNoMotion/n   — hist' with the phase off: the beta inlining
//                          policy already keeps the grouping let-bound, so
//                          these two should track each other — a guard
//                          that neither mechanism regresses

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

System* NoMotionSystem() {
  static System* sys = [] {
    SystemConfig cfg;
    cfg.optimizer.enable_code_motion = false;
    return new System(cfg);
  }();
  return sys;
}

constexpr const char* kInvariant =
    "[[ i + summap(fn \\j => j)!(gen!512) | \\i < N ]]";

void BM_InvariantHoisted(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("N", Value::Nat(state.range(0)));
  ExprPtr q = MustCompile(sys, state, kInvariant);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InvariantHoisted)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_InvariantInLoop(benchmark::State& state) {
  System* sys = NoMotionSystem();
  (void)sys->DefineVal("N", Value::Nat(state.range(0)));
  ExprPtr q = MustCompile(sys, state, kInvariant);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_InvariantInLoop)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_HistFastMotion(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(state.range(0), 128)));
  ExprPtr q = MustCompile(sys, state, "hist_fast!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistFastMotion)->RangeMultiplier(4)->Range(128, 8192)->Complexity();

void BM_HistFastNoMotion(benchmark::State& state) {
  System* sys = NoMotionSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(state.range(0), 128)));
  ExprPtr q = MustCompile(sys, state, "hist_fast!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistFastNoMotion)->RangeMultiplier(4)->Range(128, 8192)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
