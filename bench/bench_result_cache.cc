// Semantic result cache (service/result_cache.h): the three workloads of
// EXPERIMENTS.md's caching section, each as a cache-on / cache-off pair
// through a full QueryService.
//
//   RepeatedQuery_*   — the same query over and over: on = answered from
//                       the cached value, off = re-executed every time.
//   SubsumedSubslab_* — a rotating family of subslab reads of one big
//                       tabulation: on = sliced out of the cached slab
//                       (then memoized), off = each subslab re-planned
//                       (beta^p) and re-executed.
//   UniqueQueries_*   — every iteration a NEVER-seen query: both sides
//                       miss everything, so the pair prices the cache
//                       machinery itself (hash + alpha probe + insert) on
//                       the miss path. This ratio is the "overhead within
//                       noise" acceptance number.
//
// `bench_result_cache --smoke` runs a self-checking version (speedup
// thresholds + bit-identity) in a couple of seconds for check.sh.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "service/service.h"

namespace aql {
namespace bench {
namespace {

using service::QueryService;
using service::ServiceConfig;

constexpr char kRepeated[] = "summap(fn \\x => (x * x + 7) % 97)!(gen!20000)";
constexpr char kSlab[] = "[[ (i * i + j * 3) % 1001 | \\i < 256, \\j < 256 ]]";

std::string SubslabQuery(uint64_t n) {
  // 64x64 window at a rotating origin inside the 256x256 slab.
  uint64_t lo_i = (n * 37) % 192, lo_j = (n * 53) % 192;
  return std::string("[[ (") + kSlab + ")[a + " + std::to_string(lo_i) +
         ", b + " + std::to_string(lo_j) + "] | \\a < 64, \\b < 64 ]]";
}

std::string UniqueQuery(uint64_t n) {
  return "summap(fn \\x => x + " + std::to_string(n) + ")!(gen!64)";
}

QueryService* MakeService(System* sys, bool cache_on) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  if (!cache_on) cfg.result_cache_bytes = 0;
  return new QueryService(sys, cfg);
}

void RunRepeated(benchmark::State& state, bool cache_on) {
  System sys;
  QueryService* svc = MakeService(&sys, cache_on);
  (void)svc->Execute(kRepeated);  // warm: plan (and value, if on) cached
  for (auto _ : state) {
    auto r = svc->Execute(kRepeated);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  delete svc;
}

void BM_RepeatedQuery_CacheOn(benchmark::State& state) { RunRepeated(state, true); }
void BM_RepeatedQuery_CacheOff(benchmark::State& state) { RunRepeated(state, false); }
BENCHMARK(BM_RepeatedQuery_CacheOn);
BENCHMARK(BM_RepeatedQuery_CacheOff);

void RunSubslab(benchmark::State& state, bool cache_on) {
  System sys;
  QueryService* svc = MakeService(&sys, cache_on);
  (void)svc->Execute(kSlab);  // the containing slab, cached when on
  uint64_t n = 0;
  for (auto _ : state) {
    auto r = svc->Execute(SubslabQuery(n++ % 128));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  delete svc;
}

void BM_SubsumedSubslab_CacheOn(benchmark::State& state) { RunSubslab(state, true); }
void BM_SubsumedSubslab_CacheOff(benchmark::State& state) { RunSubslab(state, false); }
BENCHMARK(BM_SubsumedSubslab_CacheOn);
BENCHMARK(BM_SubsumedSubslab_CacheOff);

void RunUnique(benchmark::State& state, bool cache_on) {
  System sys;
  QueryService* svc = MakeService(&sys, cache_on);
  uint64_t n = 0;
  for (auto _ : state) {
    auto r = svc->Execute(UniqueQuery(n++));
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  delete svc;
}

void BM_UniqueQueries_CacheOn(benchmark::State& state) { RunUnique(state, true); }
void BM_UniqueQueries_CacheOff(benchmark::State& state) { RunUnique(state, false); }
BENCHMARK(BM_UniqueQueries_CacheOn);
BENCHMARK(BM_UniqueQueries_CacheOff);

// ---- --smoke: the acceptance thresholds, self-checking ----

double SecondsFor(QueryService* svc, const std::string& query, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = svc->Execute(query);
    if (!r.ok()) {
      std::fprintf(stderr, "smoke: query failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

int Smoke() {
  System sys_on, sys_off;
  QueryService* on = MakeService(&sys_on, true);
  QueryService* off = MakeService(&sys_off, false);
  int failures = 0;

  // Repeated query: warm both (plan cache), then time the steady state.
  auto check = [&](const char* name, double t_on, double t_off, double need) {
    double speedup = t_on > 0 ? t_off / t_on : 0;
    bool ok = speedup >= need;
    std::printf("smoke %-18s cache-off %.4fs  cache-on %.4fs  speedup %.1fx  %s\n",
                name, t_off, t_on, speedup, ok ? "ok" : "FAIL (need >= 5x)");
    if (!ok) ++failures;
  };

  (void)on->Execute(kRepeated);
  (void)off->Execute(kRepeated);
  check("repeated-query", SecondsFor(on, kRepeated, 50),
        SecondsFor(off, kRepeated, 50), 5.0);

  (void)on->Execute(kSlab);
  (void)off->Execute(kSlab);
  {
    auto run = [&](QueryService* svc) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < 30; ++i) {
        auto r = svc->Execute(SubslabQuery(i));
        if (!r.ok()) {
          std::fprintf(stderr, "smoke: %s\n", r.status().ToString().c_str());
          std::exit(1);
        }
      }
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
    };
    check("subsumed-subslab", run(on), run(off), 5.0);
  }

  // Bit-identity spot check on top of the speedups.
  for (int i = 0; i < 10; ++i) {
    std::string q = SubslabQuery(i * 11);
    auto a = on->Execute(q);
    auto b = off->Execute(q);
    if (!a.ok() || !b.ok() || !(*a == *b)) {
      std::printf("smoke bit-identity    FAIL at %s\n", q.c_str());
      ++failures;
      break;
    }
  }
  const auto stats = on->result_cache().stats();
  std::printf("smoke cache stats     hits %llu  subsumed %llu  misses %llu\n",
              (unsigned long long)stats.hits, (unsigned long long)stats.subsumptions,
              (unsigned long long)stats.misses);
  if (stats.hits == 0 || stats.subsumptions == 0) {
    std::printf("smoke cache stats     FAIL (expected hits and subsumptions)\n");
    ++failures;
  }
  delete on;
  delete off;
  std::printf("smoke result: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace aql

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return aql::bench::Smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
