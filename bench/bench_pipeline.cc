// Experiment E11 (paper §4.1): cost of each stage of the query pipeline
//   parse -> desugar -> resolve (macro substitution) -> typecheck
//         -> optimize -> evaluate
// on representative queries, plus end-to-end Run() including the REPL
// bookkeeping. This is the "query module / object module" breakdown of
// Figure 3.

#include "bench_util.h"
#include "surface/desugar.h"
#include "surface/parser.h"

namespace aql {
namespace bench {
namespace {

const char* kRepresentative =
    "{ (k, sumset!vs) | (\\k, \\vs) <- nest!({ (x % 8, x * x) | \\x <- gen!64 }) }";

void BM_StageLex(benchmark::State& state) {
  for (auto _ : state) {
    auto r = ParseExpression(kRepresentative);
    if (!r.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_StageLex);

void BM_StageDesugar(benchmark::State& state) {
  auto surf = ParseExpression(kRepresentative);
  if (!surf.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    Desugarer d;
    benchmark::DoNotOptimize(d.Desugar(*surf));
  }
}
BENCHMARK(BM_StageDesugar);

void BM_StageResolve(benchmark::State& state) {
  System* sys = SharedSystem();
  auto core = sys->ParseToCore(kRepresentative);
  if (!core.ok()) {
    state.SkipWithError("desugar failed");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(sys->ResolveNames(*core));
}
BENCHMARK(BM_StageResolve);

void BM_StageTypecheck(benchmark::State& state) {
  System* sys = SharedSystem();
  auto core = sys->ParseToCore(kRepresentative);
  auto resolved = sys->ResolveNames(*core);
  if (!resolved.ok()) {
    state.SkipWithError("resolve failed");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(sys->TypeOf(*resolved));
}
BENCHMARK(BM_StageTypecheck);

void BM_StageOptimize(benchmark::State& state) {
  System* sys = SharedSystem();
  auto resolved = sys->CompileUnoptimized(kRepresentative);
  if (!resolved.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(sys->Optimize(*resolved));
}
BENCHMARK(BM_StageOptimize);

void BM_StageEvaluate(benchmark::State& state) {
  System* sys = SharedSystem();
  auto compiled = sys->Compile(kRepresentative);
  if (!compiled.ok()) {
    state.SkipWithError("compile failed");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(sys->EvalCore(*compiled));
}
BENCHMARK(BM_StageEvaluate);

void BM_EndToEndRun(benchmark::State& state) {
  System* sys = SharedSystem();
  std::string stmt = std::string(kRepresentative) + ";";
  for (auto _ : state) benchmark::DoNotOptimize(sys->Run(stmt));
}
BENCHMARK(BM_EndToEndRun);

// Session startup: prelude compilation (the cost of openness).
void BM_SystemStartup(benchmark::State& state) {
  for (auto _ : state) {
    System sys;
    benchmark::DoNotOptimize(sys.init_status());
  }
}
BENCHMARK(BM_SystemStartup);

void BM_SystemStartupNoPrelude(benchmark::State& state) {
  for (auto _ : state) {
    SystemConfig cfg;
    cfg.load_prelude = false;
    System sys(cfg);
    benchmark::DoNotOptimize(sys.init_status());
  }
}
BENCHMARK(BM_SystemStartupNoPrelude);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
