// Out-of-core tiled storage (storage/tile_store.h): the EXPERIMENTS.md
// storage section. A NetCDF grid several times the tile-cache budget is
// scanned and windowed through the TileStore and through the eager
// (RAM-resident) reader:
//
//   ColdScan_Tiled / ColdScan_Eager — full scan, cache cleared per
//       iteration: prices tile-granular streaming against one bulk read.
//   WarmScan_Tiled                  — full scan with the dataset resident:
//       the cache-hit fast path.
//   Window_TileStore / Window_Materialized — a small window read via the
//       slab's bulk ReadInto (what the exec subslab pushdown issues)
//       against materializing the whole variable and slicing.
//   Aggregate_Pruned / Aggregate_Generic — a repeated sum over a mostly-
//       constant tiled grid under a 3-tile cache, through the compiled
//       exec backend: the pruned fold answers 14 of 16 tiles from their
//       zone maps (no I/O), the generic fold re-reads every tile per
//       iteration.
//
// `bench_storage --smoke` self-checks the acceptance criteria in a few
// seconds for check.sh: a scan of a dataset larger than the budget stays
// under the byte budget and matches the eager read bit-for-bit, the
// window read touches measurably fewer tiles than a full materialize,
// and a repeated aggregate over the mostly-constant grid prunes tile
// reads while staying bit-identical to AQL_EXEC_PUSHDOWN=0.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/expr.h"
#include "exec/compiled.h"
#include "netcdf/reader.h"
#include "netcdf/writer.h"
#include "storage/tile_store.h"

namespace aql {
namespace bench {
namespace {

constexpr uint64_t kRows = 512, kCols = 64;  // 256 KiB of doubles
constexpr uint64_t kTileBytes = 16 << 10;    // 32 rows per tile, 16 tiles
constexpr uint64_t kBudget = 48 << 10;       // 3 tiles: the scan must evict

std::string DataPath() {
  return (std::filesystem::temp_directory_path() / "aql_bench_storage.nc").string();
}

void EnsureDataFile() {
  static bool done = [] {
    netcdf::NcWriter w(1);
    uint32_t r = w.AddDim("row", kRows);
    uint32_t c = w.AddDim("col", kCols);
    std::vector<double> data(kRows * kCols);
    for (uint64_t i = 0; i < data.size(); ++i) data[i] = double((i * 37) % 1001) * 0.5;
    w.AddVar("v", netcdf::NcType::kDouble, {r, c}, std::move(data));
    Status s = w.WriteFile(DataPath());
    if (!s.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    ::setenv("AQL_TILE_BYTES", std::to_string(kTileBytes).c_str(), 1);
    return true;
  }();
  (void)done;
}

std::shared_ptr<const LazyRealSlab> OpenWholeSlab(storage::TileStore* store) {
  auto slab = store->OpenSlab(DataPath(), "v", {0, 0}, {kRows, kCols});
  if (!slab.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n", slab.status().ToString().c_str());
    std::exit(1);
  }
  return *slab;
}

void BM_ColdScan_Tiled(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(kBudget);
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(kRows * kCols);
  for (auto _ : state) {
    store.Clear();
    slab = OpenWholeSlab(&store);  // Clear drops the dataset too
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(out.size() * 8));
}
BENCHMARK(BM_ColdScan_Tiled);

void BM_ColdScan_Eager(benchmark::State& state) {
  EnsureDataFile();
  for (auto _ : state) {
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    if (!reader.ok()) state.SkipWithError(reader.status().ToString().c_str());
    auto all = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    if (!all.ok()) state.SkipWithError(all.status().ToString().c_str());
    benchmark::DoNotOptimize(all->data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(kRows * kCols * 8));
}
BENCHMARK(BM_ColdScan_Eager);

void BM_WarmScan_Tiled(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(1 << 20);  // everything fits: all hits
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(kRows * kCols);
  (void)slab->ReadInto({0, 0}, {kRows, kCols}, out.data());  // warm
  for (auto _ : state) {
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(out.size() * 8));
}
BENCHMARK(BM_WarmScan_Tiled);

void BM_Window_TileStore(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(kBudget);
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(16 * kCols);
  uint64_t n = 0;
  for (auto _ : state) {
    uint64_t r0 = (n++ * 61) % (kRows - 16);
    Status s = slab->ReadInto({r0, 0}, {16, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Window_TileStore);

// ---- aggregate pruning over zone maps (docs/STORAGE.md) ----
//
// Same 512x64 shape, but rows [0, 448) hold the constant 2.5: under
// 16 KiB tiles that is 14 constant tiles out of 16. The sum nest
// `sum k < 512. sum l < 64. S[k, l]` compiles to the zone-aware row fold
// (`aggregate-prune` certificate); once the first run has warmed the zone
// maps, every repeat answers the constant tiles without touching the
// store. A 3-tile AQL_TILE_CACHE_BYTES keeps the generic fold honest: it
// must re-read (and evict) every tile per iteration, which is exactly the
// out-of-core case pruning is for — zones survive eviction.

constexpr uint64_t kConstRows = 448;

std::string PruneDataPath() {
  return (std::filesystem::temp_directory_path() / "aql_bench_storage_prune.nc")
      .string();
}

void EnsurePruneDataFile() {
  EnsureDataFile();  // sets AQL_TILE_BYTES
  static bool done = [] {
    netcdf::NcWriter w(1);
    uint32_t r = w.AddDim("row", kRows);
    uint32_t c = w.AddDim("col", kCols);
    std::vector<double> data(kRows * kCols);
    for (uint64_t i = 0; i < kRows; ++i) {
      for (uint64_t j = 0; j < kCols; ++j) {
        data[i * kCols + j] = i < kConstRows ? 2.5 : double(i * 1000 + j);
      }
    }
    w.AddVar("v", netcdf::NcType::kDouble, {r, c}, std::move(data));
    Status s = w.WriteFile(PruneDataPath());
    if (!s.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    return true;
  }();
  (void)done;
}

// Opens the prune grid as a tiled value through readval and compiles the
// full-grid sum nest against it. Returns nullptr (with a message) on any
// setup failure.
std::unique_ptr<System> g_prune_sys;

std::unique_ptr<exec::Program> CompilePruneSum(std::string* err) {
  ::setenv("AQL_TILED_READ_THRESHOLD", "1", 1);
  storage::TileStore::Global().Clear();
  SystemConfig cfg;
  cfg.optimize = false;
  g_prune_sys = std::make_unique<System>(cfg);
  auto rd = g_prune_sys->Run("readval \\S using NETCDF2 at (\"" +
                             PruneDataPath() + "\", \"v\", (0, 0), (" +
                             std::to_string(kRows - 1) + ", " +
                             std::to_string(kCols - 1) + "));");
  if (!rd.ok()) {
    *err = rd.status().ToString();
    return nullptr;
  }
  const Value& tiled = rd->back().value;
  if (tiled.array().payload != ArrayRep::Payload::kTiled) {
    *err = "readval did not produce a tiled payload";
    return nullptr;
  }
  ExprPtr body = Expr::Subscript(
      Expr::Literal(tiled), Expr::Tuple({Expr::Var("k"), Expr::Var("l")}));
  ExprPtr nest = Expr::Sum(
      "k", Expr::Sum("l", std::move(body), Expr::Gen(Expr::NatConst(kCols))),
      Expr::Gen(Expr::NatConst(kRows)));
  auto program = exec::Compile(nest, g_prune_sys->PrimitiveResolver());
  if (!program.ok()) {
    *err = program.status().ToString();
    return nullptr;
  }
  bool certified = false;
  for (const auto& e : program->proof().entries) {
    if (e.optimization == "aggregate-prune") certified = true;
  }
  if (!certified) {
    *err = "sum nest lost its aggregate-prune certificate";
    return nullptr;
  }
  return std::make_unique<exec::Program>(std::move(*program));
}

void RunAggregate(benchmark::State& state, bool pushdown) {
  EnsurePruneDataFile();
  ::setenv("AQL_TILE_CACHE_BYTES", std::to_string(kBudget).c_str(), 1);
  std::string err;
  auto program = CompilePruneSum(&err);
  if (!program) {
    state.SkipWithError(err.c_str());
    return;
  }
  ::setenv("AQL_EXEC_PUSHDOWN", pushdown ? "1" : "0", 1);
  {
    auto warm = program->Run();  // first pass loads every tile, warms zones
    if (!warm.ok()) {
      state.SkipWithError(warm.status().ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    auto r = program->Run();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  ::setenv("AQL_EXEC_PUSHDOWN", "1", 1);
  ::unsetenv("AQL_TILE_CACHE_BYTES");
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(kRows * kCols * 8));
}

void BM_Aggregate_Pruned(benchmark::State& state) { RunAggregate(state, true); }
void BM_Aggregate_Generic(benchmark::State& state) {
  RunAggregate(state, false);
}
BENCHMARK(BM_Aggregate_Pruned);
BENCHMARK(BM_Aggregate_Generic);

void BM_Window_Materialized(benchmark::State& state) {
  EnsureDataFile();
  std::vector<double> out(16 * kCols);
  uint64_t n = 0;
  for (auto _ : state) {
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    if (!reader.ok()) state.SkipWithError(reader.status().ToString().c_str());
    auto all = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    if (!all.ok()) state.SkipWithError(all.status().ToString().c_str());
    uint64_t r0 = (n++ * 61) % (kRows - 16);
    std::memcpy(out.data(), all->data() + r0 * kCols, out.size() * 8);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Window_Materialized);

// ---- --smoke: the acceptance criteria, self-checking ----

int Smoke() {
  EnsureDataFile();
  int failures = 0;

  // 1. A full scan of a dataset ~5x the budget completes under budget and
  //    matches the eager read bit-for-bit.
  {
    storage::TileStore store(kBudget);
    auto slab = OpenWholeSlab(&store);
    std::vector<double> tiled(kRows * kCols);
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, tiled.data());
    if (!s.ok()) {
      std::printf("smoke full-scan       FAIL (%s)\n", s.ToString().c_str());
      return 1;
    }
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    auto eager = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    bool identical = eager.ok() && *eager == tiled;
    storage::TileStoreStats st = store.stats();
    bool bounded = st.bytes <= kBudget && st.evictions > 0;
    std::printf(
        "smoke full-scan       %llu tile loads, %llu evictions, %llu/%llu "
        "resident bytes, bit-identical %s  %s\n",
        (unsigned long long)st.misses, (unsigned long long)st.evictions,
        (unsigned long long)st.bytes, (unsigned long long)kBudget,
        identical ? "yes" : "NO", identical && bounded ? "ok" : "FAIL");
    if (!identical || !bounded) ++failures;
  }

  // 2. A window read (the shape the exec subslab pushdown issues) touches
  //    measurably fewer tiles than materializing the whole variable.
  {
    storage::TileStore store(kBudget);
    auto slab = OpenWholeSlab(&store);
    std::vector<double> out(16 * kCols);
    Status s = slab->ReadInto({64, 0}, {16, kCols}, out.data());
    uint64_t window_loads = store.stats().misses;
    std::vector<double> full(kRows * kCols);
    (void)slab->ReadInto({0, 0}, {kRows, kCols}, full.data());
    uint64_t total_loads = store.stats().misses;
    bool ok = s.ok() && window_loads * 4 <= total_loads;
    std::printf("smoke subslab-window  %llu tile loads vs %llu for the full scan  %s\n",
                (unsigned long long)window_loads, (unsigned long long)total_loads,
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }

  // 3. A repeated aggregate over the mostly-constant grid answers its
  //    constant tiles from zone maps (storage.tile.prunes moves) and stays
  //    bit-identical to the generic AQL_EXEC_PUSHDOWN=0 fold.
  {
    EnsurePruneDataFile();
    std::string err;
    auto program = CompilePruneSum(&err);
    bool ok = false;
    uint64_t pruned = 0;
    if (!program) {
      std::printf("smoke pruned-agg      FAIL (%s)\n", err.c_str());
      ++failures;
    } else {
      ::setenv("AQL_EXEC_PUSHDOWN", "1", 1);
      auto warm = program->Run();  // loads every tile, warms the zones
      uint64_t before = storage::TileStore::Global().stats().prunes;
      auto repeat = program->Run();
      pruned = storage::TileStore::Global().stats().prunes - before;
      ::setenv("AQL_EXEC_PUSHDOWN", "0", 1);
      auto generic = program->Run();
      ::setenv("AQL_EXEC_PUSHDOWN", "1", 1);
      bool identical = warm.ok() && repeat.ok() && generic.ok() &&
                       *warm == *generic && *repeat == *generic;
      ok = identical && pruned > 0;
      std::printf(
          "smoke pruned-agg      %llu zone-pruned rows on repeat, "
          "bit-identical %s  %s\n",
          (unsigned long long)pruned, identical ? "yes" : "NO",
          ok ? "ok" : "FAIL");
      if (!ok) ++failures;
    }
  }

  std::printf("smoke result: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace aql

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return aql::bench::Smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
