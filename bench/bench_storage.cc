// Out-of-core tiled storage (storage/tile_store.h): the EXPERIMENTS.md
// storage section. A NetCDF grid several times the tile-cache budget is
// scanned and windowed through the TileStore and through the eager
// (RAM-resident) reader:
//
//   ColdScan_Tiled / ColdScan_Eager — full scan, cache cleared per
//       iteration: prices tile-granular streaming against one bulk read.
//   WarmScan_Tiled                  — full scan with the dataset resident:
//       the cache-hit fast path.
//   Window_TileStore / Window_Materialized — a small window read via the
//       slab's bulk ReadInto (what the exec subslab pushdown issues)
//       against materializing the whole variable and slicing.
//
// `bench_storage --smoke` self-checks the acceptance criteria in a few
// seconds for check.sh: a scan of a dataset larger than the budget stays
// under the byte budget and matches the eager read bit-for-bit, and the
// window read touches measurably fewer tiles than a full materialize.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "netcdf/reader.h"
#include "netcdf/writer.h"
#include "storage/tile_store.h"

namespace aql {
namespace bench {
namespace {

constexpr uint64_t kRows = 512, kCols = 64;  // 256 KiB of doubles
constexpr uint64_t kTileBytes = 16 << 10;    // 32 rows per tile, 16 tiles
constexpr uint64_t kBudget = 48 << 10;       // 3 tiles: the scan must evict

std::string DataPath() {
  return (std::filesystem::temp_directory_path() / "aql_bench_storage.nc").string();
}

void EnsureDataFile() {
  static bool done = [] {
    netcdf::NcWriter w(1);
    uint32_t r = w.AddDim("row", kRows);
    uint32_t c = w.AddDim("col", kCols);
    std::vector<double> data(kRows * kCols);
    for (uint64_t i = 0; i < data.size(); ++i) data[i] = double((i * 37) % 1001) * 0.5;
    w.AddVar("v", netcdf::NcType::kDouble, {r, c}, std::move(data));
    Status s = w.WriteFile(DataPath());
    if (!s.ok()) {
      std::fprintf(stderr, "bench_storage: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    ::setenv("AQL_TILE_BYTES", std::to_string(kTileBytes).c_str(), 1);
    return true;
  }();
  (void)done;
}

std::shared_ptr<const LazyRealSlab> OpenWholeSlab(storage::TileStore* store) {
  auto slab = store->OpenSlab(DataPath(), "v", {0, 0}, {kRows, kCols});
  if (!slab.ok()) {
    std::fprintf(stderr, "bench_storage: %s\n", slab.status().ToString().c_str());
    std::exit(1);
  }
  return *slab;
}

void BM_ColdScan_Tiled(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(kBudget);
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(kRows * kCols);
  for (auto _ : state) {
    store.Clear();
    slab = OpenWholeSlab(&store);  // Clear drops the dataset too
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(out.size() * 8));
}
BENCHMARK(BM_ColdScan_Tiled);

void BM_ColdScan_Eager(benchmark::State& state) {
  EnsureDataFile();
  for (auto _ : state) {
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    if (!reader.ok()) state.SkipWithError(reader.status().ToString().c_str());
    auto all = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    if (!all.ok()) state.SkipWithError(all.status().ToString().c_str());
    benchmark::DoNotOptimize(all->data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(kRows * kCols * 8));
}
BENCHMARK(BM_ColdScan_Eager);

void BM_WarmScan_Tiled(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(1 << 20);  // everything fits: all hits
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(kRows * kCols);
  (void)slab->ReadInto({0, 0}, {kRows, kCols}, out.data());  // warm
  for (auto _ : state) {
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(out.size() * 8));
}
BENCHMARK(BM_WarmScan_Tiled);

void BM_Window_TileStore(benchmark::State& state) {
  EnsureDataFile();
  storage::TileStore store(kBudget);
  auto slab = OpenWholeSlab(&store);
  std::vector<double> out(16 * kCols);
  uint64_t n = 0;
  for (auto _ : state) {
    uint64_t r0 = (n++ * 61) % (kRows - 16);
    Status s = slab->ReadInto({r0, 0}, {16, kCols}, out.data());
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Window_TileStore);

void BM_Window_Materialized(benchmark::State& state) {
  EnsureDataFile();
  std::vector<double> out(16 * kCols);
  uint64_t n = 0;
  for (auto _ : state) {
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    if (!reader.ok()) state.SkipWithError(reader.status().ToString().c_str());
    auto all = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    if (!all.ok()) state.SkipWithError(all.status().ToString().c_str());
    uint64_t r0 = (n++ * 61) % (kRows - 16);
    std::memcpy(out.data(), all->data() + r0 * kCols, out.size() * 8);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Window_Materialized);

// ---- --smoke: the acceptance criteria, self-checking ----

int Smoke() {
  EnsureDataFile();
  int failures = 0;

  // 1. A full scan of a dataset ~5x the budget completes under budget and
  //    matches the eager read bit-for-bit.
  {
    storage::TileStore store(kBudget);
    auto slab = OpenWholeSlab(&store);
    std::vector<double> tiled(kRows * kCols);
    Status s = slab->ReadInto({0, 0}, {kRows, kCols}, tiled.data());
    if (!s.ok()) {
      std::printf("smoke full-scan       FAIL (%s)\n", s.ToString().c_str());
      return 1;
    }
    auto reader = netcdf::NcReader::OpenFile(DataPath());
    auto eager = reader->ReadSlab(0, {0, 0}, {kRows, kCols});
    bool identical = eager.ok() && *eager == tiled;
    storage::TileStoreStats st = store.stats();
    bool bounded = st.bytes <= kBudget && st.evictions > 0;
    std::printf(
        "smoke full-scan       %llu tile loads, %llu evictions, %llu/%llu "
        "resident bytes, bit-identical %s  %s\n",
        (unsigned long long)st.misses, (unsigned long long)st.evictions,
        (unsigned long long)st.bytes, (unsigned long long)kBudget,
        identical ? "yes" : "NO", identical && bounded ? "ok" : "FAIL");
    if (!identical || !bounded) ++failures;
  }

  // 2. A window read (the shape the exec subslab pushdown issues) touches
  //    measurably fewer tiles than materializing the whole variable.
  {
    storage::TileStore store(kBudget);
    auto slab = OpenWholeSlab(&store);
    std::vector<double> out(16 * kCols);
    Status s = slab->ReadInto({64, 0}, {16, kCols}, out.data());
    uint64_t window_loads = store.stats().misses;
    std::vector<double> full(kRows * kCols);
    (void)slab->ReadInto({0, 0}, {kRows, kCols}, full.data());
    uint64_t total_loads = store.stats().misses;
    bool ok = s.ok() && window_loads * 4 <= total_loads;
    std::printf("smoke subslab-window  %llu tile loads vs %llu for the full scan  %s\n",
                (unsigned long long)window_loads, (unsigned long long)total_loads,
                ok ? "ok" : "FAIL");
    if (!ok) ++failures;
  }

  std::printf("smoke result: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace aql

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return aql::bench::Smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
