// Experiment E7 (paper §5): many redundant constraint checks introduced
// by beta^p can be eliminated by the four rewrite rules; Proposition 5.1
// says not all can (bound checking is undecidable).
//
// Series:
//   GuardedGather/n        — gather query whose beta^p guards are all
//                            redundant; full optimizer deletes them
//   GuardedGatherNoCE/n    — same query with the constraint-elimination
//                            phase disabled: every element pays the check
//   ResidualCheckKept/n    — a query whose check is NOT redundant (the
//                            evenpos stride): both configurations keep it
// Shape: with CE the guarded and unguarded gathers converge; without CE
// there is a constant per-element tax.

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

System* NoCeSystem() {
  static System* sys = [] {
    SystemConfig cfg;
    cfg.optimizer.enable_constraint_elimination = false;
    return new System(cfg);
  }();
  return sys;
}

// A[i] under [[ . | i < len A ]]: the beta^p guard i < len A is redundant.
constexpr const char* kGather = "[[ [[ A[j] * 2 | \\j < len!A ]][i] + 1 | \\i < len!A ]]";

void BM_GuardedGather(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("A", NatVector(RandomNats(state.range(0), 100)));
  ExprPtr q = MustCompile(sys, state, kGather);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedGather)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_GuardedGatherNoCE(benchmark::State& state) {
  System* sys = NoCeSystem();
  (void)sys->DefineVal("A", NatVector(RandomNats(state.range(0), 100)));
  ExprPtr q = MustCompile(sys, state, kGather);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GuardedGatherNoCE)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// evenpos's stride-2 access: the check i*2 < len A is genuinely dynamic.
void BM_ResidualCheckKept(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("A", NatVector(RandomNats(state.range(0), 100)));
  ExprPtr q = MustCompile(sys, state, "evenpos!(maparr!(fn \\x => x + 1, A))");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ResidualCheckKept)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// Static census: how many checks does each phase configuration leave?
void BM_ResidualCheckCount(benchmark::State& state) {
  System* with_ce = SharedSystem();
  System* without_ce = NoCeSystem();
  (void)with_ce->DefineVal("A", NatVector(RandomNats(64, 100)));
  (void)without_ce->DefineVal("A", NatVector(RandomNats(64, 100)));
  size_t kept_with = 0, kept_without = 0;
  for (auto _ : state) {
    auto a = with_ce->Compile(kGather);
    auto b = without_ce->Compile(kGather);
    if (!a.ok() || !b.ok()) {
      state.SkipWithError("compile failed");
      return;
    }
    std::function<size_t(const ExprPtr&)> count_ifs = [&](const ExprPtr& e) -> size_t {
      size_t n = e->is(ExprKind::kIf) ? 1 : 0;
      for (const ExprPtr& c : e->children()) n += count_ifs(c);
      return n;
    };
    kept_with = count_ifs(*a);
    kept_without = count_ifs(*b);
    benchmark::DoNotOptimize(kept_with + kept_without);
  }
  state.counters["checks_with_ce"] = double(kept_with);
  state.counters["checks_without_ce"] = double(kept_without);
}
BENCHMARK(BM_ResidualCheckCount);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
