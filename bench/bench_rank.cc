// Experiment E13 (paper §6): arrays = ranking. Theorem 6.2 shows NRCA is
// exactly NRC plus the ranked union U_r. Measured three ways:
//
//   RankCounting/n  — the pure-NRC counting definition (O(n^2)): what a
//                     complex-object language pays WITHOUT arrays/ranking
//   RankViaUr/n     — rank with U_r's essence registered as an external
//                     primitive over the canonical set order (§4.1
//                     openness; one pass, O(n))
//   RankNative/n    — the same enumeration as a raw C++ baseline
// Shape: counting is quadratic; the U_r-backed rank tracks the native
// slope — the expressiveness theorem is also an efficiency statement.

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

Value NatSet(size_t n, uint64_t seed = 5) {
  auto data = RandomNats(n * 2, n * 8, seed);  // oversample for dedup losses
  std::vector<Value> elems;
  for (size_t i = 0; i < data.size() && elems.size() < n; ++i) {
    elems.push_back(Value::Nat(data[i]));
  }
  return Value::MakeSet(std::move(elems));
}

// Registers enumerate : {'a} -> {'a * nat}, the U_r ranking pass.
void EnsureEnumerate(System* sys) {
  (void)sys->RegisterPrimitive(
      "enumerate", "{'a0} -> {'a0 * nat}", [](const Value& arg) -> Result<Value> {
        if (arg.kind() != ValueKind::kSet) {
          return Status::EvalError("enumerate expects a set");
        }
        std::vector<Value> out;
        out.reserve(arg.set().elems.size());
        uint64_t rank = 1;
        for (const Value& v : arg.set().elems) {
          out.push_back(Value::MakeTuple({v, Value::Nat(rank++)}));
        }
        return Value::MakeSetCanonical(std::move(out));
      });
}

void BM_RankCounting(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("X", NatSet(state.range(0)));
  ExprPtr q = MustCompile(sys, state, "rank!X");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankCounting)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_RankViaUr(benchmark::State& state) {
  System* sys = SharedSystem();
  EnsureEnumerate(sys);
  (void)sys->DefineVal("X", NatSet(state.range(0)));
  ExprPtr q = MustCompile(sys, state, "enumerate!X");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankViaUr)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

void BM_RankNative(benchmark::State& state) {
  Value x = NatSet(state.range(0));
  for (auto _ : state) {
    std::vector<Value> out;
    out.reserve(x.set().elems.size());
    uint64_t rank = 1;
    for (const Value& v : x.set().elems) {
      out.push_back(Value::MakeTuple({v, Value::Nat(rank++)}));
    }
    benchmark::DoNotOptimize(Value::MakeSetCanonical(std::move(out)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RankNative)->RangeMultiplier(2)->Range(64, 2048)->Complexity();

// Downstream use of ranks: positional selection (median-ish) — the query
// shape ranking enables, at both implementations.
void BM_MedianViaCountingRank(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("X", NatSet(state.range(0)));
  (void)sys->DefineVal("MID", Value::Nat((state.range(0) + 1) / 2));
  ExprPtr q = MustCompile(sys, state, "{ y | (\\y, \\r) <- rank!X, r = MID }");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MedianViaCountingRank)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_MedianViaUr(benchmark::State& state) {
  System* sys = SharedSystem();
  EnsureEnumerate(sys);
  (void)sys->DefineVal("X", NatSet(state.range(0)));
  (void)sys->DefineVal("MID", Value::Nat((state.range(0) + 1) / 2));
  ExprPtr q = MustCompile(sys, state, "{ y | (\\y, \\r) <- enumerate!X, r = MID }");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MedianViaUr)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

// Cross-check at benchmark time that the implementations agree.
void BM_RankAgreement(benchmark::State& state) {
  System* sys = SharedSystem();
  EnsureEnumerate(sys);
  (void)sys->DefineVal("X", NatSet(256));
  ExprPtr a = MustCompile(sys, state, "rank!X");
  ExprPtr b = MustCompile(sys, state, "enumerate!X");
  for (auto _ : state) {
    Value va = MustEval(sys, state, a);
    Value vb = MustEval(sys, state, b);
    if (va != vb) {
      state.SkipWithError("rank implementations disagree");
      return;
    }
    benchmark::DoNotOptimize(va);
  }
}
BENCHMARK(BM_RankAgreement);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
