// Experiment E17: the static-analysis subsystem (src/analysis/absint.h).
//
// Two questions:
//   1. What does analysis cost per plan? AnalyzeAbs / AnalyzePlan over
//      representative optimized plans — this runs once per fresh compile
//      in the service, so it must be cheap next to compilation.
//   2. What do unchecked kernels buy? The same subscript-carrying
//      tabulation executed with proof-gated unchecked kernels
//      (AQL_EXEC_UNCHECKED=1, the default) vs forced per-cell checking
//      (=0). The delta is the per-element bounds-check + ⊥-protocol cost
//      the admission proofs eliminate.
//
// Series:
//   BM_AnalyzeAbs/...      — product-domain analysis per plan
//   BM_AnalyzePlan/...     — analysis + bounds + lint (service path)
//   BM_KernelChecked/n     — tab body a[i]+a[i] with per-cell checks
//   BM_KernelUnchecked/n   — same plan, proofs admit the unchecked loop

#include <cstdlib>

#include "analysis/absint.h"
#include "analysis/lint.h"
#include "bench_util.h"
#include "exec/compiled.h"

namespace aql {
namespace bench {
namespace {

const char* kPlans[] = {
    "summap(fn \\x => x % 7)!(gen!1024)",
    "[[ [[ i + j | \\j < 32 ]] [i % 32] | \\i < 64 ]]",
    "{ x + y | \\x <- gen!16, \\y <- gen!16, x < y }",
};

void BM_AnalyzeAbs(benchmark::State& state) {
  System* sys = SharedSystem();
  ExprPtr plan = MustCompile(sys, state, kPlans[state.range(0)]);
  if (!plan) return;
  for (auto _ : state) {
    analysis::AbsVal v = analysis::AnalyzeAbs(plan);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AnalyzeAbs)->DenseRange(0, 2);

void BM_AnalyzePlan(benchmark::State& state) {
  System* sys = SharedSystem();
  ExprPtr plan = MustCompile(sys, state, kPlans[state.range(0)]);
  if (!plan) return;
  for (auto _ : state) {
    analysis::PlanFacts facts = analysis::AnalyzePlan(plan);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_AnalyzePlan)->DenseRange(0, 2);

// Subscript-carrying body: before the proof annotations this plan was
// rejected by the kernel (subscripts forced the boxed per-cell path);
// with them it runs as one typed loop, checked or unchecked.
void RunKernel(benchmark::State& state, bool unchecked) {
  ::setenv("AQL_EXEC_UNCHECKED", unchecked ? "1" : "0", 1);
  System* sys = SharedSystem();
  size_t n = size_t(state.range(0));
  std::string q = "[[ a[i] + a[(i + 1) % " + std::to_string(n) + "] | \\i < " +
                  std::to_string(n) + " ]]";
  (void)sys->DefineVal("a", NatVector(RandomNats(n, 1000, 3)));
  ExprPtr plan = MustCompile(sys, state, q);
  if (!plan) return;
  auto program = exec::Compile(plan, sys->PrimitiveResolver());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = program->Run();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  ::setenv("AQL_EXEC_UNCHECKED", "1", 1);
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void BM_KernelChecked(benchmark::State& state) { RunKernel(state, false); }
void BM_KernelUnchecked(benchmark::State& state) { RunKernel(state, true); }
BENCHMARK(BM_KernelChecked)->RangeMultiplier(8)->Range(4096, 262144);
BENCHMARK(BM_KernelUnchecked)->RangeMultiplier(8)->Range(4096, 262144);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
