// Experiment E17: the static-analysis subsystem (src/analysis/absint.h).
//
// Two questions:
//   1. What does analysis cost per plan? AnalyzeAbs / AnalyzePlan over
//      representative optimized plans — this runs once per fresh compile
//      in the service, so it must be cheap next to compilation.
//   2. What do unchecked kernels buy? The same subscript-carrying
//      tabulation executed with proof-gated unchecked kernels
//      (AQL_EXEC_UNCHECKED=1, the default) vs forced per-cell checking
//      (=0). The delta is the per-element bounds-check + ⊥-protocol cost
//      the admission proofs eliminate.
//
// Series:
//   BM_AnalyzeAbs/...      — product-domain analysis per plan
//   BM_AnalyzePlan/...     — analysis + bounds + lint (service path)
//   BM_AnalyzeAffine/...   — relational affine domain per plan
//   BM_KernelChecked/n     — tab body a[i]+a[i] with per-cell checks
//   BM_KernelUnchecked/n   — same plan, proofs admit the unchecked loop
//   BM_AffineGatherChecked/n, BM_AffineGatherUnchecked/n — a gather whose
//       indexes (i*2 - i, i*3 - i*2) only the relational affine domain can
//       bound: interval reasoning sees monus of two wide ranges, the affine
//       form cancels to exactly i. The pair prices the same per-cell
//       bounds-check + ⊥-protocol delta on an affine-only admission.

#include <cstdlib>
#include <string>

#include "analysis/absint.h"
#include "analysis/affine.h"
#include "analysis/lint.h"
#include "bench_util.h"
#include "exec/compiled.h"

namespace aql {
namespace bench {
namespace {

const char* kPlans[] = {
    "summap(fn \\x => x % 7)!(gen!1024)",
    "[[ [[ i + j | \\j < 32 ]] [i % 32] | \\i < 64 ]]",
    "{ x + y | \\x <- gen!16, \\y <- gen!16, x < y }",
};

void BM_AnalyzeAbs(benchmark::State& state) {
  System* sys = SharedSystem();
  ExprPtr plan = MustCompile(sys, state, kPlans[state.range(0)]);
  if (!plan) return;
  for (auto _ : state) {
    analysis::AbsVal v = analysis::AnalyzeAbs(plan);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AnalyzeAbs)->DenseRange(0, 2);

void BM_AnalyzePlan(benchmark::State& state) {
  System* sys = SharedSystem();
  ExprPtr plan = MustCompile(sys, state, kPlans[state.range(0)]);
  if (!plan) return;
  for (auto _ : state) {
    analysis::PlanFacts facts = analysis::AnalyzePlan(plan);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_AnalyzePlan)->DenseRange(0, 2);

// A gather the affine domain admits and interval reasoning cannot: both
// subscripts cancel to the binder (i*2 - i = i, i*3 - i*2 = i), so the
// exact form is in bounds while each monus, seen non-relationally, spans
// [0, 3n). Compiled without the optimizer so the source forms reach the
// analyzer as written.
std::string AffineGatherQuery(size_t n) {
  return "[[ a[i * 2 - i] + a[i * 3 - i * 2] | \\i < " + std::to_string(n) +
         " ]]";
}

// Affine analysis cost per plan: the kPlans corpus plus the gather above.
void BM_AnalyzeAffine(benchmark::State& state) {
  System* sys = SharedUnoptimizedSystem();
  bool gather = state.range(0) == 3;
  if (gather) (void)sys->DefineVal("a", NatVector(RandomNats(1024, 1000, 5)));
  ExprPtr plan = MustCompile(
      sys, state, gather ? AffineGatherQuery(1024) : kPlans[state.range(0)]);
  if (!plan) return;
  for (auto _ : state) {
    analysis::AffineAbsVal v = analysis::AnalyzeAffineAbs(plan);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_AnalyzeAffine)->DenseRange(0, 3);

// Subscript-carrying body: before the proof annotations this plan was
// rejected by the kernel (subscripts forced the boxed per-cell path);
// with them it runs as one typed loop, checked or unchecked.
void RunKernel(benchmark::State& state, bool unchecked) {
  ::setenv("AQL_EXEC_UNCHECKED", unchecked ? "1" : "0", 1);
  System* sys = SharedSystem();
  size_t n = size_t(state.range(0));
  std::string q = "[[ a[i] + a[(i + 1) % " + std::to_string(n) + "] | \\i < " +
                  std::to_string(n) + " ]]";
  (void)sys->DefineVal("a", NatVector(RandomNats(n, 1000, 3)));
  ExprPtr plan = MustCompile(sys, state, q);
  if (!plan) return;
  auto program = exec::Compile(plan, sys->PrimitiveResolver());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = program->Run();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  ::setenv("AQL_EXEC_UNCHECKED", "1", 1);
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void BM_KernelChecked(benchmark::State& state) { RunKernel(state, false); }
void BM_KernelUnchecked(benchmark::State& state) { RunKernel(state, true); }
BENCHMARK(BM_KernelChecked)->RangeMultiplier(8)->Range(4096, 262144);
BENCHMARK(BM_KernelUnchecked)->RangeMultiplier(8)->Range(4096, 262144);

// Same checked/unchecked pairing on the affine-only gather. The unchecked
// admission here rides entirely on the relational domain — the bench
// verifies the `unchecked-kernel-bounds` certificate is present so a
// regression in the affine prover shows up as a skip, not a silently
// checked run.
void RunAffineGather(benchmark::State& state, bool unchecked) {
  ::setenv("AQL_EXEC_UNCHECKED", unchecked ? "1" : "0", 1);
  System* sys = SharedUnoptimizedSystem();
  size_t n = size_t(state.range(0));
  (void)sys->DefineVal("a", NatVector(RandomNats(n, 1000, 3)));
  ExprPtr plan = MustCompile(sys, state, AffineGatherQuery(n));
  if (!plan) return;
  auto program = exec::Compile(plan, sys->PrimitiveResolver());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  bool certified = false;
  for (const auto& e : program->proof().entries) {
    if (e.optimization == "unchecked-kernel-bounds") certified = true;
  }
  if (!certified) {
    state.SkipWithError("affine admission lost its proof certificate");
    return;
  }
  for (auto _ : state) {
    auto r = program->Run();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  ::setenv("AQL_EXEC_UNCHECKED", "1", 1);
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}

void BM_AffineGatherChecked(benchmark::State& state) {
  RunAffineGather(state, false);
}
void BM_AffineGatherUnchecked(benchmark::State& state) {
  RunAffineGather(state, true);
}
BENCHMARK(BM_AffineGatherChecked)->RangeMultiplier(8)->Range(4096, 262144);
BENCHMARK(BM_AffineGatherUnchecked)->RangeMultiplier(8)->Range(4096, 262144);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
