// Experiments E3/E4 (paper §5): the three array normalization rules save
// time and space by avoiding (re)tabulation.
//
//   BetaP/n     vs  BetaPUnopt/n   — [[f(i) | i<n]][k]: beta^p computes one
//                                    element instead of materializing n
//   EtaP/n      vs  EtaPUnopt/n    — [[A[i] | i<len A]]: eta^p returns A
//                                    instead of copying it
//   DeltaP/n    vs  DeltaPUnopt/n  — len([[f(i) | i<n]]): delta^p skips the
//                                    tabulation entirely
// Shape: the optimized series are O(1) in n, the unoptimized O(n).

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

void RunBoth(benchmark::State& state, const std::string& query, bool optimized,
             size_t n) {
  System* sys = optimized ? SharedSystem() : SharedUnoptimizedSystem();
  (void)sys->DefineVal("N", Value::Nat(n));
  (void)sys->DefineVal("A", NatVector(RandomNats(n, 1000)));
  ExprPtr q = MustCompile(sys, state, query);
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(n);
}

const char* kBetaP = "(fn \\n => [[ i * i + 1 | \\i < n ]][n / 2])!N";
void BM_BetaP(benchmark::State& state) { RunBoth(state, kBetaP, true, state.range(0)); }
void BM_BetaPUnopt(benchmark::State& state) {
  RunBoth(state, kBetaP, false, state.range(0));
}
BENCHMARK(BM_BetaP)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_BetaPUnopt)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

const char* kEtaP = "[[ A[i] | \\i < len!A ]]";
void BM_EtaP(benchmark::State& state) { RunBoth(state, kEtaP, true, state.range(0)); }
void BM_EtaPUnopt(benchmark::State& state) {
  RunBoth(state, kEtaP, false, state.range(0));
}
BENCHMARK(BM_EtaP)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_EtaPUnopt)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

const char* kDeltaP = "(fn \\n => len![[ i * i | \\i < n ]])!N";
void BM_DeltaP(benchmark::State& state) { RunBoth(state, kDeltaP, true, state.range(0)); }
void BM_DeltaPUnopt(benchmark::State& state) {
  RunBoth(state, kDeltaP, false, state.range(0));
}
BENCHMARK(BM_DeltaP)->RangeMultiplier(4)->Range(256, 65536)->Complexity();
BENCHMARK(BM_DeltaPUnopt)->RangeMultiplier(4)->Range(256, 65536)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
