// Experiment E6 (paper §5): the transpose rule
//   transpose([[e | i<m, j<n]]) ~> [[e | j<n, i<m]]
// is DERIVED from beta^p/delta^p/pi plus constraint elimination — no
// transpose primitive needed. The win: the tabulated argument is never
// materialized.
//
// Series (square m = n matrices):
//   TransposeOfTab/n       — optimized: one fused tabulation
//   TransposeOfTabUnopt/n  — materializes the inner matrix, then copies
//   DoubleTranspose/n      — optimized: normalizes back to the original
//                            tabulation (involution), so same as baseline
//   DoubleTransposeUnopt/n — two full copies
//   CompileTransposeDerivation — optimizer time for the derivation itself

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

std::string TabQuery(const char* wrap, size_t n) {
  std::string mat = "[[ i * " + std::to_string(n) + " + j | \\i < " + std::to_string(n) +
                    ", \\j < " + std::to_string(n) + " ]]";
  std::string q = wrap;
  size_t pos;
  while ((pos = q.find('#')) != std::string::npos) q.replace(pos, 1, mat);
  return q;
}

void Run(benchmark::State& state, const char* wrap, bool optimized) {
  System* sys = optimized ? SharedSystem() : SharedUnoptimizedSystem();
  ExprPtr q = MustCompile(sys, state, TabQuery(wrap, state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0) * state.range(0));
}

void BM_TransposeOfTab(benchmark::State& state) { Run(state, "transpose!(#)", true); }
void BM_TransposeOfTabUnopt(benchmark::State& state) {
  Run(state, "transpose!(#)", false);
}
void BM_DoubleTranspose(benchmark::State& state) {
  Run(state, "transpose!(transpose!(#))", true);
}
void BM_DoubleTransposeUnopt(benchmark::State& state) {
  Run(state, "transpose!(transpose!(#))", false);
}
BENCHMARK(BM_TransposeOfTab)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_TransposeOfTabUnopt)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_DoubleTranspose)->RangeMultiplier(2)->Range(16, 256)->Complexity();
BENCHMARK(BM_DoubleTransposeUnopt)->RangeMultiplier(2)->Range(16, 256)->Complexity();

// How long does the §5 derivation itself take in the optimizer?
void BM_CompileTransposeDerivation(benchmark::State& state) {
  System* sys = SharedSystem();
  auto resolved = sys->CompileUnoptimized(TabQuery("transpose!(#)", 64));
  if (!resolved.ok()) {
    state.SkipWithError(resolved.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    RewriteStats stats;
    benchmark::DoNotOptimize(sys->Optimize(*resolved, &stats));
  }
}
BENCHMARK(BM_CompileTransposeDerivation);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
