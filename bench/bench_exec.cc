// Backend comparison: tree-walking evaluator (name-resolved environments)
// vs the compiled slot-based backend (src/exec). The "code generator"
// payoff the paper alludes to in §3: primitives and variables resolved at
// plan time rather than per evaluation.
//
// Series, for representative workloads:
//   *_Tree/n      — Evaluator (src/eval)
//   *_Compiled/n  — exec::Program (src/exec)

#include "bench_util.h"
#include "exec/compiled.h"

namespace aql {
namespace bench {
namespace {

void RunBackends(benchmark::State& state, const std::string& query, bool compiled,
                 std::function<void(System*)> setup = nullptr) {
  System* sys = SharedSystem();
  if (setup) setup(sys);
  ExprPtr q = MustCompile(sys, state, query);
  if (!q) return;
  if (compiled) {
    // Program compiled once, run per iteration.
    auto program = exec::Compile(q, sys->PrimitiveResolver());
    if (!program.ok()) {
      state.SkipWithError(program.status().ToString().c_str());
      return;
    }
    for (auto _ : state) {
      auto r = program->Run();
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r);
    }
  } else {
    for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  }
  state.SetComplexityN(state.range(0));
}

void SetupData(System* sys, size_t n) {
  (void)sys->DefineVal("A", NatVector(RandomNats(n, 1000, 1)));
  (void)sys->DefineVal("B", NatVector(RandomNats(n, 1000, 2)));
}

void BM_ComprehensionTree(benchmark::State& state) {
  RunBackends(state, "summap(fn \\x => x % 7)!(gen!" + std::to_string(state.range(0)) + ")",
              false);
}
void BM_ComprehensionCompiled(benchmark::State& state) {
  RunBackends(state, "summap(fn \\x => x % 7)!(gen!" + std::to_string(state.range(0)) + ")",
              true);
}
BENCHMARK(BM_ComprehensionTree)->RangeMultiplier(4)->Range(256, 16384)->Complexity();
BENCHMARK(BM_ComprehensionCompiled)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_ZipMapTree(benchmark::State& state) {
  RunBackends(state, "maparr!(fn (\\x, \\y) => x + y, zip!(A, B))", false,
              [&](System* s) { SetupData(s, state.range(0)); });
}
void BM_ZipMapCompiled(benchmark::State& state) {
  RunBackends(state, "maparr!(fn (\\x, \\y) => x + y, zip!(A, B))", true,
              [&](System* s) { SetupData(s, state.range(0)); });
}
BENCHMARK(BM_ZipMapTree)->RangeMultiplier(4)->Range(256, 16384)->Complexity();
BENCHMARK(BM_ZipMapCompiled)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_HistFastTree(benchmark::State& state) {
  RunBackends(state, "hist_fast!A", false,
              [&](System* s) { SetupData(s, state.range(0)); });
}
void BM_HistFastCompiled(benchmark::State& state) {
  RunBackends(state, "hist_fast!A", true,
              [&](System* s) { SetupData(s, state.range(0)); });
}
BENCHMARK(BM_HistFastTree)->RangeMultiplier(4)->Range(256, 16384)->Complexity();
BENCHMARK(BM_HistFastCompiled)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// One-off compilation cost of the backend itself.
void BM_BackendCompileCost(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupData(sys, 64);
  ExprPtr q = MustCompile(sys, state, "maparr!(fn (\\x, \\y) => x + y, zip!(A, B))");
  for (auto _ : state) {
    auto program = exec::Compile(q, nullptr);
    benchmark::DoNotOptimize(program);
  }
}
BENCHMARK(BM_BackendCompileCost);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
