// Experiment E1 (paper §1): "we expect zip to take linear time in an
// array query language, but in one without arrays it would ordinarily
// take quadratic time (the time to do a cross product)."
//
// Series:
//   ZipArrays/n   — zip!(A, B) on [[nat]]_1 values       (expected O(n))
//   ZipViaSets/n  — the same zip on the graph encoding
//                   {(i, a_i)} with a pattern join        (expected O(n^2))
// The shape to look for: ZipViaSets' time per element grows linearly
// with n while ZipArrays' stays flat.

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

void SetupArrays(System* sys, size_t n) {
  auto a = RandomNats(n, 1000, 1);
  auto b = RandomNats(n, 1000, 2);
  (void)sys->DefineVal("A", NatVector(a));
  (void)sys->DefineVal("B", NatVector(b));
  (void)sys->DefineVal("GA", NatVectorGraph(a));
  (void)sys->DefineVal("GB", NatVectorGraph(b));
}

void BM_ZipArrays(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupArrays(sys, state.range(0));
  ExprPtr q = MustCompile(sys, state, "zip!(A, B)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEval(sys, state, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ZipArrays)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

void BM_ZipViaSets(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupArrays(sys, state.range(0));
  // Without arrays, aligning positions needs a join on the index — the
  // cross-product shape of §1.
  ExprPtr q = MustCompile(sys, state, "{ (i, (x, y)) | (\\i, \\x) <- GA, (i, \\y) <- GB }");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEval(sys, state, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ZipViaSets)->RangeMultiplier(2)->Range(256, 4096)->Complexity();

void BM_Zip3Arrays(benchmark::State& state) {
  System* sys = SharedSystem();
  SetupArrays(sys, state.range(0));
  (void)sys->DefineVal("C", NatVector(RandomNats(state.range(0), 1000, 3)));
  ExprPtr q = MustCompile(sys, state, "zip_3!(A, B, C)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(MustEval(sys, state, q));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Zip3Arrays)->RangeMultiplier(2)->Range(256, 8192)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
