// Shared helpers for the AQL benchmark harness.
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md. The
// helpers build Systems (optimized / unoptimized), synthesize array and
// set values of a given size, and bind them as top-level vals so the
// benchmarked queries reference pre-built data rather than re-parsing
// literals.

#ifndef AQL_BENCH_BENCH_UTIL_H_
#define AQL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "benchmark/benchmark.h"
#include "env/system.h"

namespace aql {
namespace bench {

inline System* SharedSystem() {
  static System* sys = new System();
  return sys;
}

inline System* SharedUnoptimizedSystem() {
  static System* sys = [] {
    SystemConfig cfg;
    cfg.optimize = false;
    return new System(cfg);
  }();
  return sys;
}

// Deterministic pseudo-random nats in [0, bound).
inline std::vector<uint64_t> RandomNats(size_t n, uint64_t bound, uint64_t seed = 42) {
  std::vector<uint64_t> out;
  out.reserve(n);
  uint64_t z = seed;
  for (size_t i = 0; i < n; ++i) {
    z = z * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back(bound == 0 ? 0 : (z >> 33) % bound);
  }
  return out;
}

inline Value NatVector(const std::vector<uint64_t>& data) {
  std::vector<Value> elems;
  elems.reserve(data.size());
  for (uint64_t v : data) elems.push_back(Value::Nat(v));
  return Value::MakeVector(std::move(elems));
}

inline Value RealVector(size_t n, uint64_t seed = 7) {
  std::vector<Value> elems;
  elems.reserve(n);
  uint64_t z = seed;
  for (size_t i = 0; i < n; ++i) {
    z = z * 6364136223846793005ull + 1442695040888963407ull;
    elems.push_back(Value::Real(double(z >> 40) / 1000.0));
  }
  return Value::MakeVector(std::move(elems));
}

// The graph encoding {(i, a[i])} of a nat vector, for set-based plans.
inline Value NatVectorGraph(const std::vector<uint64_t>& data) {
  std::vector<Value> elems;
  elems.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    elems.push_back(Value::MakeTuple({Value::Nat(i), Value::Nat(data[i])}));
  }
  return Value::MakeSet(std::move(elems));
}

// Compiles once; fails the benchmark on error.
inline ExprPtr MustCompile(System* sys, benchmark::State& state, const std::string& q) {
  auto r = sys->Compile(q);
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return nullptr;
  }
  return *r;
}

// Evaluates a precompiled query, aborting the benchmark on host errors.
inline Value MustEval(System* sys, benchmark::State& state, const ExprPtr& compiled) {
  auto r = sys->EvalCore(compiled);
  if (!r.ok()) {
    state.SkipWithError(r.status().ToString().c_str());
    return Value::Bottom();
  }
  return std::move(r).value();
}

}  // namespace bench
}  // namespace aql

#endif  // AQL_BENCH_BENCH_UTIL_H_
