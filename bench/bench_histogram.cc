// Experiment E2 (paper §2): hist is O(n*m) — n the array length, m the
// maximum value — while hist' (index-based, implicit group-by) is
// O(m + n log n).
//
// Series:
//   HistSweepN/n      — m fixed at 64, n grows: both linear in n, but
//                       hist's constant is ~m comparisons per element
//   HistFastSweepN/n
//   HistSweepM/m      — n fixed at 1024, m grows: hist degrades linearly
//                       in m, hist' only pays the m-sized output array
//   HistFastSweepM/m
// The paper's crossover: hist' wins by ~m/log n for large m.

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

void BM_HistSweepN(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(state.range(0), 64)));
  ExprPtr q = MustCompile(sys, state, "hist!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistSweepN)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void BM_HistFastSweepN(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(state.range(0), 64)));
  ExprPtr q = MustCompile(sys, state, "hist_fast!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistFastSweepN)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void BM_HistSweepM(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(1024, state.range(0))));
  ExprPtr q = MustCompile(sys, state, "hist!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistSweepM)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

void BM_HistFastSweepM(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("H", NatVector(RandomNats(1024, state.range(0))));
  ExprPtr q = MustCompile(sys, state, "hist_fast!H");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HistFastSweepM)->RangeMultiplier(4)->Range(16, 4096)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
