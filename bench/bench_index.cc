// Experiment E8 (paper §2): "Because index causes an implicit group-by,
// it can be used to write more efficient code."
//
// Series, grouping a set of (key, value) pairs by nat key:
//   IndexGroupBy/n      — index!(...) : O(m + n log n)
//   NestedLoopGroupBy/n — the nest-style NRC grouping : O(n^2)
//   IndexSweepM/m       — cost of hole filling as the key range grows at
//                         fixed n (the "m" term of the paper's bound)

#include "bench_util.h"

namespace aql {
namespace bench {
namespace {

Value PairSet(size_t n, uint64_t key_bound, uint64_t seed = 11) {
  auto keys = RandomNats(n, key_bound, seed);
  auto vals = RandomNats(n, 1000000, seed + 1);
  std::vector<Value> elems;
  elems.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    elems.push_back(Value::MakeTuple({Value::Nat(keys[i]), Value::Nat(vals[i])}));
  }
  return Value::MakeSet(std::move(elems));
}

void BM_IndexGroupBy(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("P", PairSet(state.range(0), 64));
  ExprPtr q = MustCompile(sys, state, "index!P");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndexGroupBy)->RangeMultiplier(2)->Range(128, 8192)->Complexity();

void BM_NestedLoopGroupBy(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("P", PairSet(state.range(0), 64));
  // nest (§2/§3): for every tuple, scan the whole set again.
  ExprPtr q = MustCompile(sys, state, "nest!P");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NestedLoopGroupBy)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

void BM_IndexSweepM(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("P", PairSet(1024, state.range(0)));
  ExprPtr q = MustCompile(sys, state, "index!P");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndexSweepM)->RangeMultiplier(8)->Range(8, 32768)->Complexity();

// Aggregation after grouping: count per key, both ways (the hist'
// structure at set level).
void BM_IndexThenCount(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("P", PairSet(state.range(0), 64));
  ExprPtr q = MustCompile(sys, state, "maparr!(fn \\b => card!b, index!P)");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IndexThenCount)->RangeMultiplier(2)->Range(128, 8192)->Complexity();

void BM_NestThenCount(benchmark::State& state) {
  System* sys = SharedSystem();
  (void)sys->DefineVal("P", PairSet(state.range(0), 64));
  ExprPtr q = MustCompile(sys, state, "{ (k, card!vs) | (\\k, \\vs) <- nest!P }");
  for (auto _ : state) benchmark::DoNotOptimize(MustEval(sys, state, q));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NestThenCount)->RangeMultiplier(2)->Range(128, 4096)->Complexity();

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
