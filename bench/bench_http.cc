// HTTP front-end benchmarks (acceptance numbers for the net subsystem):
// what does putting aql::service behind src/net's HTTP/1.1 server cost,
// relative to calling QueryService::Submit in-process?
//
//   1. InProcessSubmit vs HttpRoundTrip — per-request latency of a tiny
//      cached query, in-process vs over a keep-alive loopback connection
//      (the delta is parse + socket + chunked-framing overhead).
//   2. HttpRoundTripNewConnection — same, paying connect/teardown per
//      request (the worst-case client).
//   3. LargeResultStream/N — throughput of streaming an N-element dense
//      array result through the chunked writer, bytes/second.
//   4. ConcurrentClients/N — aggregate QPS with N pipelining clients
//      against the default thread pool.
//
// Run:  ./bench_http --benchmark_min_time=0.2s
// Regenerate BENCH_http.json with scripts/bench_to_json.sh bench_http.

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/socket.h"
#include "benchmark/benchmark.h"
#include "env/system.h"
#include "net/server.h"
#include "service/service.h"

namespace aql {
namespace bench {
namespace {

const char kTinyQuery[] = "1 + 2";

// A stack shared by all iterations of one benchmark.
struct Stack {
  Stack() : service(&system, {.num_workers = 4}) {
    net::HttpServerConfig config;
    config.port = 0;
    server = std::make_unique<net::HttpServer>(&service, config);
    Status status = server->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", status.ToString().c_str());
      std::abort();
    }
  }

  System system;
  service::QueryService service;
  std::unique_ptr<net::HttpServer> server;
};

// Blocking keep-alive client: one request, read the full response.
class BenchClient {
 public:
  static std::unique_ptr<BenchClient> Connect(uint16_t port) {
    Result<Socket> socket = Socket::ConnectLocal(port);
    if (!socket.ok()) return nullptr;
    return std::unique_ptr<BenchClient>(new BenchClient(std::move(socket).value()));
  }

  // Returns response bytes read, 0 on failure. Good enough for timing:
  // the response is fully framed (chunked terminator or Content-Length),
  // so we scan for the frame end rather than re-parsing headers.
  size_t Query(const std::string& body) {
    std::string raw = "POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: " +
                      std::to_string(body.size()) + "\r\n\r\n" + body;
    if (!socket_.WriteAll(raw).ok()) return 0;
    buffer_.clear();
    // Responses to /query are always chunked; "0\r\n\r\n" terminates.
    while (buffer_.find("0\r\n\r\n") == std::string::npos) {
      char chunk[16384];
      Result<size_t> n = socket_.Read(chunk, sizeof(chunk));
      if (!n.ok() || *n == 0) return 0;
      buffer_.append(chunk, *n);
    }
    return buffer_.size();
  }

 private:
  explicit BenchClient(Socket socket) : socket_(std::move(socket)) {}
  Socket socket_;
  std::string buffer_;
};

void BM_Http_InProcessSubmit(benchmark::State& state) {
  Stack stack;
  (void)stack.service.Execute(kTinyQuery);  // warm the plan cache
  for (auto _ : state) {
    auto r = stack.service.Execute(kTinyQuery);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Http_InProcessSubmit);

void BM_Http_RoundTrip(benchmark::State& state) {
  Stack stack;
  auto client = BenchClient::Connect(stack.server->port());
  if (!client) {
    state.SkipWithError("connect failed");
    return;
  }
  (void)client->Query(kTinyQuery);  // warm cache + connection
  for (auto _ : state) {
    if (client->Query(kTinyQuery) == 0) {
      state.SkipWithError("request failed");
      return;
    }
  }
}
BENCHMARK(BM_Http_RoundTrip);

void BM_Http_RoundTripNewConnection(benchmark::State& state) {
  Stack stack;
  (void)stack.service.Execute(kTinyQuery);
  for (auto _ : state) {
    auto client = BenchClient::Connect(stack.server->port());
    if (!client || client->Query(kTinyQuery) == 0) {
      state.SkipWithError("request failed");
      return;
    }
  }
}
BENCHMARK(BM_Http_RoundTripNewConnection);

// Streaming a dense array result: bytes/second through parse-once
// (cached plan) + chunked ValueWriter + loopback socket.
void BM_Http_LargeResultStream(benchmark::State& state) {
  Stack stack;
  std::string query =
      "[[ i * i | \\i < " + std::to_string(state.range(0)) + " ]]";
  auto client = BenchClient::Connect(stack.server->port());
  if (!client) {
    state.SkipWithError("connect failed");
    return;
  }
  size_t response_bytes = client->Query(query);  // warm
  if (response_bytes == 0) {
    state.SkipWithError("request failed");
    return;
  }
  for (auto _ : state) {
    size_t n = client->Query(query);
    if (n == 0) {
      state.SkipWithError("request failed");
      return;
    }
    benchmark::DoNotOptimize(n);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * int64_t(response_bytes));
}
BENCHMARK(BM_Http_LargeResultStream)->Arg(10000)->Arg(100000);

void BM_Http_ConcurrentClients(benchmark::State& state) {
  Stack stack;
  (void)stack.service.Execute(kTinyQuery);
  const int kClients = int(state.range(0));
  for (auto _ : state) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(size_t(kClients));
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&] {
        auto client = BenchClient::Connect(stack.server->port());
        if (!client) {
          ++failures;
          return;
        }
        for (int q = 0; q < 8; ++q) {
          if (client->Query(kTinyQuery) == 0) {
            ++failures;
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (failures.load() != 0) {
      state.SkipWithError("client failures");
      return;
    }
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kClients * 8);
}
BENCHMARK(BM_Http_ConcurrentClients)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
