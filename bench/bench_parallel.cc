// Data-parallel execution: the chunked tabulation/kernel paths under
// different AQL_EXEC_THREADS settings, on the compiled backend.
//
// Series:
//   BM_TabNatKernel/{n}/{t}    — fused nat kernel, n×n tabulation, t threads
//   BM_TabRealGather/{n}/{t}   — real kernel gathering from an unboxed val
//   BM_TabBoxedGeneric/{n}/{t} — tuple body: generic boxed chunked path
//   BM_ParallelSum/{n}/{t}     — Sum with parallel body evaluation
//
// Thread counts are applied via the AQL_EXEC_THREADS knob, which the exec
// layer re-reads on every top-level Run; the benchmark binary itself stays
// single-threaded. On a 1-core container all t>1 series measure the
// scheduling overhead floor, not speedup — see EXPERIMENTS.md.

#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "exec/compiled.h"

namespace aql {
namespace bench {
namespace {

void SetThreads(int64_t t) {
  ::setenv("AQL_EXEC_THREADS", std::to_string(t).c_str(), 1);
  // Keep the threshold at its default so the t=1 series exercises the
  // plain sequential path and t>1 the chunked one.
}

void RunCompiledQuery(benchmark::State& state, const std::string& query) {
  SetThreads(state.range(1));
  System* sys = SharedSystem();
  ExprPtr q = MustCompile(sys, state, query);
  if (!q) return;
  auto program = exec::Compile(q, sys->PrimitiveResolver());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto r = program->Run();
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  ::unsetenv("AQL_EXEC_THREADS");
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}

void BM_TabNatKernel(benchmark::State& state) {
  std::string n = std::to_string(state.range(0));
  RunCompiledQuery(state,
                   "[[ (i*31 + j) % 1000 | \\i < " + n + ", \\j < " + n + " ]]");
}
BENCHMARK(BM_TabNatKernel)
    ->ArgsProduct({{64, 256, 1024}, {1, 2, 4, 8}});

void BM_TabRealGather(benchmark::State& state) {
  (void)SharedSystem()->DefineVal("PR", RealVector(size_t(state.range(0))));
  std::string n = std::to_string(state.range(0));
  RunCompiledQuery(state, "[[ PR[i] * 2.0 + 1.0 | \\i < " + n + " ]]");
}
BENCHMARK(BM_TabRealGather)
    ->ArgsProduct({{4096, 65536, 1048576}, {1, 2, 4, 8}});

void BM_TabBoxedGeneric(benchmark::State& state) {
  std::string n = std::to_string(state.range(0));
  RunCompiledQuery(state, "[[ (i, i*i) | \\i < " + n + " ]]");
}
BENCHMARK(BM_TabBoxedGeneric)
    ->ArgsProduct({{4096, 65536, 1048576}, {1, 2, 4, 8}});

void BM_ParallelSum(benchmark::State& state) {
  std::string n = std::to_string(state.range(0));
  RunCompiledQuery(state, "summap(fn \\x => (x*x) % 97)!(gen!" + n + ")");
}
BENCHMARK(BM_ParallelSum)
    ->ArgsProduct({{4096, 65536, 1048576}, {1, 2, 4, 8}});

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
