// Overhead of the src/obs tracing layer (docs/OBS.md).
//
// The contract is that disabled tracing is free: a Span constructor is one
// thread-local load plus one relaxed atomic load, with no clock read and
// no allocation. These series pin that:
//
//   BM_SpanDisabled        — raw cost of an inert Span (the fast path)
//   BM_SpanCaptured        — cost of a recording Span under a TraceCapture
//   BM_SpanToSink          — cost of a recording Span into the Tracer sink
//   BM_QueryTraceOff/n     — a bench_exec workload end to end, tracer off
//   BM_QueryTraceCapture/n — the same workload under a TraceCapture
//
// The acceptance bar for the PR that introduced obs: BM_QueryTraceOff must
// match bench_exec's BM_ComprehensionCompiled within noise (<= 2%), since
// it runs the identical query through the identically instrumented code.

#include "bench_util.h"
#include "exec/compiled.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace aql {
namespace bench {
namespace {

void BM_SpanDisabled(benchmark::State& state) {
  if (obs::TracingActive()) {
    state.SkipWithError("tracer unexpectedly enabled");
    return;
  }
  for (auto _ : state) {
    obs::Span span("bench", "noop");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanCaptured(benchmark::State& state) {
  obs::TraceCapture capture;
  for (auto _ : state) {
    obs::Span span("bench", "captured");
    benchmark::DoNotOptimize(span.active());
  }
  state.counters["records"] = static_cast<double>(capture.records().size());
}
BENCHMARK(BM_SpanCaptured);

void BM_SpanToSink(benchmark::State& state) {
  obs::Tracer::Get().SetEnabled(true);
  for (auto _ : state) {
    obs::Span span("bench", "sunk");
    benchmark::DoNotOptimize(span.active());
  }
  obs::Tracer::Get().SetEnabled(false);
  obs::Tracer::Get().Drain();  // do not let the sink grow across iterations
}
BENCHMARK(BM_SpanToSink);

// The bench_exec comprehension workload, so numbers line up directly with
// BM_ComprehensionCompiled in BENCH_exec.json.
void RunQuery(benchmark::State& state, bool capture_spans) {
  System* sys = SharedSystem();
  std::string query =
      "summap(fn \\x => x % 7)!(gen!" + std::to_string(state.range(0)) + ")";
  ExprPtr q = MustCompile(sys, state, query);
  if (!q) return;
  auto program = exec::Compile(q, sys->PrimitiveResolver());
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }
  uint64_t spans = 0;
  for (auto _ : state) {
    if (capture_spans) {
      obs::TraceCapture capture;
      auto r = program->Run();
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r);
      spans += capture.records().size();
    } else {
      auto r = program->Run();
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(r);
    }
  }
  if (capture_spans && state.iterations() > 0) {
    state.counters["spans_per_iter"] =
        static_cast<double>(spans) / static_cast<double>(state.iterations());
  }
  state.SetComplexityN(state.range(0));
}

void BM_QueryTraceOff(benchmark::State& state) { RunQuery(state, false); }
void BM_QueryTraceCapture(benchmark::State& state) { RunQuery(state, true); }
BENCHMARK(BM_QueryTraceOff)->RangeMultiplier(4)->Range(256, 16384)->Complexity();
BENCHMARK(BM_QueryTraceCapture)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

// Full pipeline (parse → ... → exec) under System::Profile, sized like the
// service's slow-query logging path: capture + profile build + render.
void BM_SystemProfile(benchmark::State& state) {
  System* sys = SharedSystem();
  for (auto _ : state) {
    auto r = sys->Profile("transpose!([[ i * 10 + j | \\i < 4, \\j < 5 ]])");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SystemProfile);

}  // namespace
}  // namespace bench
}  // namespace aql

BENCHMARK_MAIN();
