// The §4.2 sample session, reproduced line for line:
//
//   "What days last June was it hotter than 85 degrees after sunset in NYC?"
//
// Host side: define sunset() in C++ and register it as the june_sunset
// primitive (the paper's TopEnv.RegisterCO call). AQL side: the months
// val, the days_since_1_1 macro, the NETCDF3 readval, and the final
// comprehension — printed in the session's typ/val format.

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "env/system.h"
#include "netcdf/synth.h"

using aql::Result;
using aql::Status;
using aql::Value;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// sunset(lat, lon, day): hour of sunset for a June day. A compact
// sunrise-equation approximation is plenty for the demo.
Result<Value> JuneSunset(const Value& arg) {
  const auto& f = arg.tuple_fields();
  double lat = f[0].real_value();
  uint64_t day = f[2].nat_value();
  double doy = 151.0 + double(day);
  double decl = 23.45 * std::sin(2 * M_PI * (284.0 + doy) / 365.0) * M_PI / 180.0;
  double phi = lat * M_PI / 180.0;
  double cos_h = -std::tan(phi) * std::tan(decl);
  cos_h = std::max(-1.0, std::min(1.0, cos_h));
  double half_daylight_hours = std::acos(cos_h) * 12.0 / M_PI;
  return Value::Nat(static_cast<uint64_t>(std::round(12.0 + half_daylight_hours)));
}

}  // namespace

int main() {
  std::string path =
      (std::filesystem::temp_directory_path() / "session_temp.nc").string();
  aql::netcdf::SynthWeatherOptions opts;
  opts.days = 365;
  opts.lats = 1;
  opts.lons = 1;
  // Summer-heavy synthetic year so the answer is interesting.
  opts.base_temp_f = 60.5;
  if (auto w = aql::netcdf::WriteTempFile(path, opts); !w.ok()) return Fail(w.status());

  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());

  // - let val COjunesunset = ... TopEnv.RegisterCO("june_sunset", ...)
  Status reg = sys.RegisterPrimitive("june_sunset", "real * real * nat -> nat",
                                     JuneSunset);
  if (!reg.ok()) return Fail(reg);
  if (Status s = sys.DefineVal("NYlat", Value::Real(40.7)); !s.ok()) return Fail(s);
  if (Status s = sys.DefineVal("NYlon", Value::Real(-74.0)); !s.ok()) return Fail(s);

  // : val \months = ...; macro \days_since_1_1 = ...
  std::string session1 =
      "val \\months = [[0,31,28,31,30,31,30,31,31,30,31,30]];\n"
      "macro \\days_since_1_1 = fn (\\m,\\d,\\y) =>\n"
      "  d + summap(fn \\i => months[i])!(gen!m) +\n"
      "  if m > 2 and y % 4 = 0 then 1 else 0;\n";
  auto r1 = sys.Run(session1);
  if (!r1.ok()) return Fail(r1.status());
  for (const auto& r : *r1) std::printf("%s\n", r.ToDisplayString(4).c_str());

  // : readval \T using NETCDF3 at ("temp.nc", "temp", ..., ...);
  std::string session2 =
      "readval \\T using NETCDF3 at\n"
      "  (\"" + path + "\", \"temp\",\n"
      "   (days_since_1_1!(6,1,95)*24, 0, 0),\n"
      "   (days_since_1_1!(6,30,95)*24 + 23, 0, 0));\n";
  auto r2 = sys.Run(session2);
  if (!r2.ok()) return Fail(r2.status());
  for (const auto& r : *r2) std::printf("%s\n", r.ToDisplayString(3).c_str());

  // : {d | [(\h,_,_):\t] <- T, \d==h/24+1, ..., t > 85.0};
  auto r3 = sys.Run(
      "{d | [(\\h,_,_) : \\t] <- T, \\d == h/24 + 1,\n"
      "     h % 24 > june_sunset!(NYlat, NYlon, d), t > 85.0};\n");
  if (!r3.ok()) return Fail(r3.status());
  for (const auto& r : *r3) std::printf("%s\n", r.ToDisplayString(40).c_str());
  return 0;
}
