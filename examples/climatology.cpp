// Climatology: a realistic scientific-workflow example on top of the
// whole stack. Reads a year of synthetic hourly temperatures from NetCDF,
// computes daily means, a 7-day running climatology, day-over-day
// anomalies, and the heat-spike days — then writes the daily means BACK
// as a NetCDF file via writeval. This is the §1 thesis in miniature:
// extraction and reshaping in the query language, heavy numerics (here
// none are needed) in registered primitives.

#include <cstdio>
#include <filesystem>

#include "env/system.h"
#include "netcdf/synth.h"

using aql::Status;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::string in_path = (fs::temp_directory_path() / "climatology_in.nc").string();
  std::string out_path = (fs::temp_directory_path() / "climatology_daily.nc").string();

  aql::netcdf::SynthWeatherOptions opts;
  opts.days = 365;
  opts.lats = 1;
  opts.lons = 1;
  if (auto w = aql::netcdf::WriteTempFile(in_path, opts); !w.ok()) {
    return Fail(w.status());
  }

  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());

  std::string program =
      // Pull the whole year at the site and flatten to a 1-d hourly series.
      "readval \\Traw using NETCDF3 at (\"" + in_path +
      "\", \"temp\", (0, 0, 0), (8759, 0, 0));\n"
      "val \\T = [[ Traw[(h, 0, 0)] | \\h < 8760 ]];\n"
      // Daily means: 24-hour windows, stride 24 (window_sum + everynth).
      "val \\daily = everynth!(smooth!(T, 24), 24);\n"
      "len!daily;\n"
      // 7-day running climatology over the daily series.
      "val \\weekly = smooth!(daily, 7);\n"
      // Day-over-day anomaly: |today - yesterday| summed, as a variability
      // score per month (30-day chunks).
      "val \\variability =\n"
      "  [[ summap(fn \\d => max2!(daily[m*30+d+1] - daily[m*30+d],\n"
      "                            daily[m*30+d] - daily[m*30+d+1]))!(gen!29)\n"
      "     | \\m < 12 ]];\n"
      "variability;\n"
      // Heat spikes: days at least 1.25 degrees over the weekly climatology.
      "{ d | [\\d : \\t] <- daily, d < len!weekly, t > weekly[d] + 1.25 };\n"
      // Annual extremes.
      "(arrmin!daily, arrmax!daily, argmax!daily);\n"
      // Persist the daily means as a fresh NetCDF file.
      "writeval daily using NETCDF at (\"" + out_path + "\", \"daily_mean\");\n"
      // And prove the round trip.
      "readval \\back using NETCDF1 at (\"" + out_path + "\", \"daily_mean\", 0, 9);\n"
      "back;\n";

  auto results = sys.Run(program);
  if (!results.ok()) return Fail(results.status());
  for (const auto& r : *results) {
    std::printf("%s\n\n", r.ToDisplayString(12).c_str());
  }

  std::printf("wrote daily means to %s\n", out_path.c_str());
  return 0;
}
