// aql_dead_rules — replay a query corpus through the optimizer and report
// rules that never fire (candidates for deletion, or gaps in the corpus).
//
// Usage:
//   aql_dead_rules [--check] [--allow FILE] [file.aql ...]
//
// Each query is compiled and optimized with per-rule firing statistics
// (RewriteStats); the union of firings over the corpus is then compared
// against every phase's registered rule base.
//
// Without --check the report is informational and the exit status is 0
// either way (a rule can be live for programs the corpus doesn't cover).
// With --check, a never-fired `phase / rule` pair that is NOT listed in
// the --allow file (default scripts/dead_rules_allow.txt, `#` comments)
// fails the run: the allowlist is the audited baseline, so adding a rule
// without a corpus query that exercises it turns the CI gate red.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "env/system.h"
#include "opt/rewriter.h"

namespace {

// Representative queries: the paper's §2–§5 examples plus shapes chosen
// to reach each rule family (beta/pi reductions, comprehension fusion,
// filter promotion, constraint elimination, array normalization).
const char* kCorpus[] = {
    "1 + 2 * 3",
    "if 1 < 2 then 10 else 20 / 0",
    "(fn \\x => x + x)!7",
    "(fn \\x => 5)!(1 / 0)",
    "fst!((1, 2))",
    "snd!((1, if true then 2 else 3))",
    "{ x * x | \\x <- gen!10 }",
    "{ x + y | \\x <- gen!3, \\y <- gen!4 }",
    "{ x | \\x <- gen!10, x < 5 }",
    "{ y | \\x <- gen!5, \\y <- { x, x + 1 } }",
    "{ x | \\x <- {} }",
    "{ x | \\x <- { 7 } }",
    "{ x | \\x <- setunion!(gen!4, gen!2) }",
    "{ x | \\x <- if 1 < 2 then gen!3 else gen!5 }",
    "summap(fn \\x => x)!(gen!100)",
    "summap(fn \\x => x * x)!{ y | \\y <- gen!10, y % 2 = 0 }",
    "summap(fn \\x => 1)!{}",
    "summap(fn \\x => x)!{ 9 }",
    "get!{ 4 }",
    "get!{ x | \\x <- gen!3, x = 1 }",
    "[[ i * 10 + j | \\i < 2, \\j < 3 ]]",
    "[[ [[ i + j | \\j < 3 ]] [i % 3] | \\i < 6 ]]",
    "len!([[ i | \\i < 9 ]])",
    "[[ i | \\i < 4 ]] [2]",
    "transpose!([[2, 2; 1, 2, 3, 4]])",
    "[[ if i < 8 then i else 0 | \\i < 8 ]]",
    "{ [[ x + i | \\i < 3 ]] | \\x <- gen!2 }",
    "1.5 + 2.5 * 2.0",
    "(fn \\x => (x + 0) * 1)!7",
    "{ if x = x then x else 0 | \\x <- gen!3 }",
    "{ if x < 1 then 7 else 7 | \\x <- gen!2 }",
    "[[ 5, 6, 7 ]] [1]",
    "len!([[ 4, 5, 6 ]])",
};

void Replay(aql::System& sys, const std::string& query,
            std::map<std::string, size_t>* firings, size_t* failures) {
  // Binding and I/O statements mutate the environment rather than compile
  // a plan; run them so subsequent corpus queries resolve.
  size_t start = query.find_first_not_of(" \t\n");
  if (start != std::string::npos &&
      (query.compare(start, 4, "val ") == 0 || query.compare(start, 4, "val\\") == 0 ||
       query.compare(start, 6, "macro ") == 0 ||
       query.compare(start, 8, "readval ") == 0 ||
       query.compare(start, 9, "writeval ") == 0)) {
    auto r = sys.Run(query + ";");
    if (!r.ok()) {
      std::fprintf(stderr, "statement error (skipped): %s\n", query.c_str());
      ++*failures;
    }
    return;
  }
  auto core = sys.ParseToCore(query);
  if (!core.ok()) {
    std::fprintf(stderr, "parse error (skipped): %s\n  %s\n", query.c_str(),
                 core.status().ToString().c_str());
    ++*failures;
    return;
  }
  auto resolved = sys.ResolveNames(*core);
  if (!resolved.ok()) {
    std::fprintf(stderr, "resolve error (skipped): %s\n", query.c_str());
    ++*failures;
    return;
  }
  aql::RewriteStats stats;
  sys.Optimize(*resolved, &stats);
  for (const auto& [rule, count] : stats.firings) (*firings)[rule] += count;
}

// Splits a script on ';' after stripping (* ... *) comments (good enough
// for corpus files: AQL string literals in practice don't contain
// semicolons or comment delimiters).
std::vector<std::string> SplitStatements(const std::string& text) {
  std::string stripped;
  int comment_depth = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (i + 1 < text.size() && text[i] == '(' && text[i + 1] == '*') {
      ++comment_depth;
      ++i;
      continue;
    }
    if (i + 1 < text.size() && text[i] == '*' && text[i + 1] == ')' &&
        comment_depth > 0) {
      --comment_depth;
      ++i;
      continue;
    }
    if (comment_depth == 0) stripped += text[i];
  }
  std::vector<std::string> out;
  std::string cur;
  int brackets = 0;  // array literals use ';' inside [[dims; elems]]
  for (char c : stripped) {
    if (c == '[') ++brackets;
    if (c == ']' && brackets > 0) --brackets;
    if (c == ';' && brackets == 0) {
      if (cur.find_first_not_of(" \t\n") != std::string::npos) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (cur.find_first_not_of(" \t\n") != std::string::npos) out.push_back(cur);
  return out;
}

// Allowlist lines are `phase / rule` pairs, one per line; blank lines and
// `#` comments are skipped. Returns false if the file cannot be read.
bool LoadAllowlist(const std::string& path, std::set<std::string>* allow) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    size_t last = line.find_last_not_of(" \t");
    allow->insert(line.substr(first, last - first + 1));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string allow_path = "scripts/dead_rules_allow.txt";
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--allow" && i + 1 < argc) {
      allow_path = argv[++i];
    } else {
      files.push_back(argv[i]);
    }
  }

  aql::System sys;
  if (!sys.init_status().ok()) {
    std::fprintf(stderr, "init error: %s\n", sys.init_status().ToString().c_str());
    return 1;
  }

  std::map<std::string, size_t> firings;
  size_t queries = 0, failures = 0;
  for (const char* q : kCorpus) {
    Replay(sys, q, &firings, &failures);
    ++queries;
  }
  for (const char* path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path);
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    for (const std::string& q : SplitStatements(buf.str())) {
      Replay(sys, q, &firings, &failures);
      ++queries;
    }
  }

  std::set<std::string> allow;
  if (check && !LoadAllowlist(allow_path, &allow)) {
    std::fprintf(stderr, "dead_rules: cannot read allowlist %s\n",
                 allow_path.c_str());
    return 1;
  }

  const aql::Optimizer* opt = sys.optimizer();
  size_t total_rules = 0, dead = 0;
  std::string report;
  std::vector<std::string> unallowed;
  for (size_t p = 0; p < opt->num_phases(); ++p) {
    for (const aql::Rule& rule : opt->phase_rules(p)) {
      ++total_rules;
      auto it = firings.find(rule.name);
      if (it == firings.end() || it->second == 0) {
        ++dead;
        std::string pair = opt->phase_name(p) + " / " + rule.name;
        report += "  never fired: " + pair + "\n";
        if (check && allow.find(pair) == allow.end()) unallowed.push_back(pair);
      }
    }
  }

  std::printf("dead-rule report: %zu queries (%zu skipped), %zu rules, %zu never fired\n",
              queries, failures, total_rules, dead);
  if (dead > 0) std::printf("%s", report.c_str());
  std::printf("firing totals:\n");
  for (const auto& [rule, count] : firings) {
    std::printf("  %6zu  %s\n", count, rule.c_str());
  }
  if (check) {
    if (!unallowed.empty()) {
      std::printf("dead-rule check FAILED: %zu never-fired rule(s) not in %s:\n",
                  unallowed.size(), allow_path.c_str());
      for (const std::string& pair : unallowed) {
        std::printf("  %s\n", pair.c_str());
      }
      std::printf("add a corpus query that exercises each rule, or (with a "
                  "reviewer's sign-off) append it to the allowlist\n");
      return 1;
    }
    std::printf("dead-rule check passed: every never-fired rule is in the "
                "audited baseline (%s)\n", allow_path.c_str());
  }
  return 0;
}
