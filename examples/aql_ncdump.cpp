// aql_ncdump — CDL dump of NetCDF classic files through the from-scratch
// codec (the substrate's equivalent of Unidata's ncdump).
//
// Usage:
//   aql_ncdump <file.nc> [max_elements]   dump header + truncated data
//   aql_ncdump -h <file.nc>               header only
//   aql_ncdump --demo                     generate and dump a sample file

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "netcdf/dump.h"
#include "netcdf/synth.h"

int main(int argc, char** argv) {
  aql::netcdf::DumpOptions options;
  std::string path;

  if (argc >= 2 && std::strcmp(argv[1], "--demo") == 0) {
    path = (std::filesystem::temp_directory_path() / "aql_ncdump_demo.nc").string();
    aql::netcdf::SynthWeatherOptions synth;
    synth.days = 2;
    synth.lats = 2;
    synth.lons = 2;
    auto written = aql::netcdf::WriteTempFile(path, synth);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.status().ToString().c_str());
      return 1;
    }
    options.max_elements_per_variable = 16;
  } else if (argc >= 3 && std::strcmp(argv[1], "-h") == 0) {
    path = argv[2];
    options.include_data = false;
  } else if (argc >= 2) {
    path = argv[1];
    if (argc >= 3) options.max_elements_per_variable = std::stoul(argv[2]);
  } else {
    std::fprintf(stderr, "usage: %s [-h] <file.nc> [max_elements] | --demo\n", argv[0]);
    return 2;
  }

  auto cdl = aql::netcdf::DumpCdlFile(path, options);
  if (!cdl.ok()) {
    std::fprintf(stderr, "error: %s\n", cdl.status().ToString().c_str());
    return 1;
  }
  std::fputs(cdl->c_str(), stdout);
  return 0;
}
