// Quickstart: embedding AQL in a C++ program.
//
// Shows the minimal surface of the public API: build a System, run
// queries, bind values and macros, register an external primitive, and
// inspect inferred types — the two "views" of §4 from the host side.

#include <cstdio>

#include "env/system.h"

using aql::Result;
using aql::Status;
using aql::Value;

namespace {

// Prints one statement result REPL-style.
void Show(const aql::StatementResult& r) {
  std::printf("%s\n", r.ToDisplayString(10).c_str());
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());

  // 1. Plain queries: comprehensions, arrays, aggregates.
  auto r1 = sys.Run(
      "{ x * x | \\x <- gen!6, x % 2 = 0 };\n"
      "[[ i * 10 + j | \\i < 2, \\j < 3 ]];\n"
      "summap(fn \\x => x)!(gen!101);\n");
  if (!r1.ok()) return Fail(r1.status());
  for (const auto& r : *r1) Show(r);

  // 2. Values and macros persist across Run calls ('val' / 'macro').
  auto r2 = sys.Run(
      "val \\prices = [[19, 5, 12, 8, 30]];\n"
      "macro \\discounted = fn \\p => maparr!(fn \\x => x - x / 10, p);\n"
      "discounted!prices;\n"
      "setmax!(rng!(discounted!prices));\n");
  if (!r2.ok()) return Fail(r2.status());
  for (const auto& r : *r2) Show(r);

  // 3. Register a C++ function as a typed external primitive and use it
  //    from AQL (the openness contract of §4.1).
  Status reg = sys.RegisterPrimitive(
      "celsius", "real -> real", [](const Value& v) -> Result<Value> {
        return Value::Real((v.real_value() - 32.0) * 5.0 / 9.0);
      });
  if (!reg.ok()) return Fail(reg);
  auto r3 = sys.Run("maparr!(fn \\t => celsius!t, [[32.0, 98.6, 212.0]]);");
  if (!r3.ok()) return Fail(r3.status());
  for (const auto& r : *r3) Show(r);

  // 4. The compilation pipeline piecewise: look at the optimizer's work.
  auto plan = sys.Compile("fn \\A => evenpos!(reverse!A)");
  if (!plan.ok()) return Fail(plan.status());
  std::printf("normalized plan: %s\n", (*plan)->ToString().c_str());

  // 5. Host-side access to bound values.
  if (const Value* prices = sys.LookupVal("prices")) {
    std::printf("prices from C++: %s\n", prices->ToDisplayString().c_str());
  }
  return 0;
}
