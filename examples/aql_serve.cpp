// aql_serve — the AQL HTTP query server (docs/HTTP.md).
//
// Usage:
//   aql_serve [setup.aql ...]     run setup scripts, then serve
//
// Environment knobs (strict parsing per base/env.h):
//   AQL_HTTP_PORT         listen port; 0 picks an ephemeral one (default 8080)
//   AQL_HTTP_THREADS      connection-serving threads (default 8)
//   AQL_HTTP_MAX_BODY     request-body cap in bytes (default 8 MiB)
//   AQL_HTTP_RATE         per-client /query requests/second; 0 = off
//   AQL_HTTP_BURST        token-bucket burst (default 32)
//   AQL_HTTP_PUBLIC       bind 0.0.0.0 instead of 127.0.0.1
//   AQL_SERVICE_WORKERS   query worker threads (default 4)
//   AQL_SLOW_QUERY_US     slow-query threshold for GET /slow (default 100ms)
//
// Prints "listening on 127.0.0.1:<port>" once ready (scripts/http_smoke.sh
// waits for this line). SIGINT/SIGTERM trigger a graceful drain: stop
// accepting, finish in-flight requests and queries, exit 0.
//
//   curl -d 'summap(fn \x => x)!(gen!1000)' 'localhost:8080/query'
//   curl 'localhost:8080/metrics'

#include <csignal>
#include <cstdio>
#include <fstream>
#include <semaphore>
#include <sstream>
#include <string>

#include "base/env.h"
#include "env/system.h"
#include "net/server.h"
#include "service/service.h"

namespace {

// Signal handler -> main-thread drain handoff (a semaphore is
// async-signal-safe to release).
std::binary_semaphore g_shutdown_requested(0);

void HandleSignal(int) { g_shutdown_requested.release(); }

int Run(int argc, char** argv) {
  aql::System system;
  if (!system.init_status().ok()) {
    std::fprintf(stderr, "system init failed: %s\n",
                 system.init_status().ToString().c_str());
    return 1;
  }
  // Setup phase: optional scripts define vals/macros before serving.
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto results = system.Run(buf.str());
    if (!results.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[i], results.status().ToString().c_str());
      return 1;
    }
  }

  aql::net::SlowQueryLog slow_log(128);
  aql::service::ServiceConfig service_config;
  service_config.num_workers = aql::EnvU64("AQL_SERVICE_WORKERS", 4);
  service_config.slow_query_us = aql::EnvU64("AQL_SLOW_QUERY_US", 100000);
  service_config.slow_query_sink = slow_log.Sink();
  aql::service::QueryService service(&system, service_config);

  aql::net::HttpServerConfig http_config;
  http_config.port = static_cast<uint16_t>(aql::EnvU64("AQL_HTTP_PORT", 8080));
  http_config.num_threads = aql::EnvU64("AQL_HTTP_THREADS", 8);
  http_config.max_body = aql::EnvU64("AQL_HTTP_MAX_BODY", 8 * 1024 * 1024);
  http_config.rate_limit_per_sec =
      static_cast<double>(aql::EnvU64("AQL_HTTP_RATE", 0));
  http_config.rate_limit_burst =
      static_cast<double>(aql::EnvU64("AQL_HTTP_BURST", 32));
  http_config.loopback_only = !aql::EnvFlag("AQL_HTTP_PUBLIC");
  http_config.slow_log = &slow_log;
  aql::net::HttpServer server(&service, http_config);

  aql::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", http_config.loopback_only ? "127.0.0.1" : "0.0.0.0",
              unsigned{server.port()});
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  g_shutdown_requested.acquire();

  std::printf("draining...\n");
  std::fflush(stdout);
  server.Shutdown();           // stop accepting, finish in-flight requests
  service.Shutdown(true);      // then drain the query workers
  std::printf("drained %llu requests total\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
