// The §2 histogram study on real(istic) data: read a month of synthetic
// temperatures from a NetCDF file, bucket them into integer degrees, and
// compare the two histogram programs from the paper —
//
//   hist  : tabulate-and-scan, O(n * m)
//   hist' : index-based implicit group-by, O(m + n log n)
//
// with wall-clock timings so the asymptotic claim is visible.

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "env/system.h"
#include "netcdf/synth.h"

using aql::Status;
using aql::Value;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  std::string path =
      (std::filesystem::temp_directory_path() / "histogram_temp.nc").string();
  aql::netcdf::SynthWeatherOptions opts;
  opts.days = 60;
  opts.lats = 2;
  opts.lons = 2;
  if (auto w = aql::netcdf::WriteTempFile(path, opts); !w.ok()) return Fail(w.status());

  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());

  // Read two months over the whole 2x2 grid and flatten to a 1-d series
  // of integer-degree buckets.
  auto r = sys.Run(
      "readval \\T using NETCDF3 at (\"" + path + "\", \"temp\", (0, 0, 0), "
      "(1439, 1, 1));\n"
      "val \\degrees = [[ floor!(T[(h / 4, h % 4 / 2, h % 2)]) | \\h < 5760 ]];\n");
  if (!r.ok()) return Fail(r.status());

  auto t0 = std::chrono::steady_clock::now();
  auto slow = sys.Eval("hist!degrees");
  double slow_ms = MillisSince(t0);
  if (!slow.ok()) return Fail(slow.status());

  t0 = std::chrono::steady_clock::now();
  auto fast = sys.Eval("hist_fast!degrees");
  double fast_ms = MillisSince(t0);
  if (!fast.ok()) return Fail(fast.status());

  if (*slow != *fast) {
    std::fprintf(stderr, "hist and hist' disagree!\n");
    return 1;
  }
  std::printf("hist  (O(n*m))        : %8.2f ms\n", slow_ms);
  std::printf("hist' (O(m+n log n))  : %8.2f ms   speedup %.1fx\n", fast_ms,
              slow_ms / fast_ms);

  // Show the interesting part of the histogram: buckets around the mode.
  auto peak = sys.Eval(
      "setmin!({ d | [\\d : \\c] <- hist_fast!degrees,"
      "          forall_in!(fn \\x => x <= c, rng!(hist_fast!degrees)) })");
  if (!peak.ok()) return Fail(peak.status());
  std::printf("modal temperature bucket: %s degF\n", peak->ToString().c_str());

  auto window = sys.Eval(
      "let val \\h = hist_fast!degrees val \\p = " + peak->ToString() +
      " in [[ h[(p - 5) + i] | \\i < 11 ]] end");
  if (!window.ok()) return Fail(window.status());
  std::printf("counts in modal bucket +/- 5: %s\n", window->ToDisplayString().c_str());
  return 0;
}
