// Matrix algebra in AQL (§2's matrix examples) and a look inside the
// optimizer: transpose/multiply/reshape as derived operations, plus the
// §5 derivation showing transpose-of-tabulation fusing with no transpose
// primitive in the calculus.

#include <cstdio>

#include "env/system.h"

using aql::Status;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());

  auto r = sys.Run(
      "val \\A = [[2, 3; 1, 2, 3, 4, 5, 6]];\n"
      "val \\B = [[3, 2; 7, 8, 9, 10, 11, 12]];\n"
      "matmul!(A, B);\n"
      "transpose!A;\n"
      "matmul!(A, transpose!A);\n"
      "proj_row!(A, 1);\n"
      "proj_col!(B, 0);\n"
      "reshape2!(flatten2!A, 3, 2);\n"
      "(* trace(A * A^T) via the graph of the product *)\n"
      "summap(fn ((\\i, \\j), \\x) => if i = j then x else 0)"
      "!(graph2!(matmul!(A, transpose!A)));\n");
  if (!r.ok()) return Fail(r.status());
  for (const auto& s : *r) std::printf("%s\n\n", s.ToDisplayString(12).c_str());

  // Optimizer insight: the §5 transpose derivation. Compare the compiled
  // plan of transpose over a tabulation with the directly-swapped loop.
  std::printf("---- section 5 derivation ----\n");
  auto derived = sys.Compile("transpose!([[ i * 10 + j | \\i < 4, \\j < 5 ]])");
  if (!derived.ok()) return Fail(derived.status());
  std::printf("transpose!([[ i*10+j | \\i<4, \\j<5 ]])\n  normalizes to: %s\n",
              (*derived)->ToString().c_str());

  aql::RewriteStats stats;
  auto unopt = sys.CompileUnoptimized("transpose!([[ i * 10 + j | \\i < 4, \\j < 5 ]])");
  if (!unopt.ok()) return Fail(unopt.status());
  sys.Optimize(*unopt, &stats);
  std::printf("rule firings during the derivation:\n");
  for (const auto& [rule, count] : stats.firings) {
    std::printf("  %-24s %zu\n", rule.c_str(), count);
  }
  return 0;
}
