// The paper's motivating example (§1), full stack:
//
//   "On which days last June was it unbearably hot in NYC?"
//
// This example goes through the whole system: it synthesizes NetCDF files
// with the paper's mismatched grids (hourly T/RH; half-hourly, multi-
// altitude WS), reads June subslabs through the NETCDF drivers, registers
// the heatindex external primitive, and runs the §1 query verbatim.

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "env/system.h"
#include "netcdf/synth.h"

using aql::Result;
using aql::Status;
using aql::Value;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<Value> HeatIndex(const Value& arg) {
  // Peak discomfort over the day's 24 (temp, rh, ws) readings.
  double peak = -1e30;
  for (const Value& v : arg.array().elems) {
    const auto& f = v.tuple_fields();
    peak = std::max(peak,
                    f[0].real_value() + 0.05 * f[1].real_value() - 0.4 * f[2].real_value());
  }
  return Value::Real(peak);
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  std::string dir = fs::temp_directory_path().string();
  std::string temp_nc = dir + "/heatwave_temp.nc";
  std::string rh_nc = dir + "/heatwave_rh.nc";
  std::string ws_nc = dir + "/heatwave_wind.nc";

  // 1. Synthesize a full year of weather (the DESIGN.md substitution for
  //    the paper's proprietary NYC observations).
  aql::netcdf::SynthWeatherOptions opts;
  opts.days = 365;
  opts.lats = 1;
  opts.lons = 1;
  opts.alts = 3;
  for (auto [path, writer] :
       {std::pair{&temp_nc, &aql::netcdf::WriteTempFile},
        std::pair{&rh_nc, &aql::netcdf::WriteHumidityFile},
        std::pair{&ws_nc, &aql::netcdf::WriteWindFile}}) {
    auto written = writer(*path, opts);
    if (!written.ok()) return Fail(written.status());
    std::printf("wrote %s (%zu bytes)\n", path->c_str(), *written);
  }

  aql::System sys;
  if (!sys.init_status().ok()) return Fail(sys.init_status());
  Status reg = sys.RegisterPrimitive("heatindex", "[[real * real * real]]_1 -> real",
                                     HeatIndex);
  if (!reg.ok()) return Fail(reg);

  // 2. Read the June slabs. June 1 is day 151 (0-based) of a non-leap
  //    year: hourly series 720 long, half-hourly 1440.
  std::string program =
      "val \\june0 = 151 * 24;\n"
      "readval \\T using NETCDF3 at (\"" + temp_nc +
      "\", \"temp\", (june0, 0, 0), (june0 + 719, 0, 0));\n"
      "readval \\RHraw using NETCDF3 at (\"" + rh_nc +
      "\", \"rh\", (june0, 0, 0), (june0 + 719, 0, 0));\n"
      "readval \\WSraw using NETCDF4 at (\"" + ws_nc +
      "\", \"ws\", (151 * 48, 0, 0, 0), (151 * 48 + 1439, 2, 0, 0));\n";
  auto rd = sys.Run(program);
  if (!rd.ok()) return Fail(rd.status());
  for (const auto& r : *rd) std::printf("%s\n", r.ToDisplayString(3).c_str());

  // 3. Flatten the singleton lat/lon axes: T, RH to 1-d; WS to 2-d
  //    (time2 x altitude), exactly the shapes §1 assumes.
  auto shaped = sys.Run(
      "val \\T1 = [[ T[(h, 0, 0)] | \\h < 720 ]];\n"
      "val \\RH = [[ RHraw[(h, 0, 0)] | \\h < 720 ]];\n"
      "val \\WS = [[ WSraw[(t, a, 0, 0)] | \\t < 1440, \\a < 3 ]];\n");
  if (!shaped.ok()) return Fail(shaped.status());

  // 4. The §1 query, for a few thresholds.
  for (double threshold : {88.0, 90.0, 92.0}) {
    if (Status s = sys.DefineVal("threshold", Value::Real(threshold)); !s.ok()) {
      return Fail(s);
    }
    auto days = sys.Eval(
        "{d | \\d <- gen!30,"
        "     \\WS' == evenpos!(proj_col!(WS, 0)),"
        "     \\TRW == zip_3!(T1, RH, WS'),"
        "     \\A == subseq!(TRW, d*24, d*24 + 23),"
        "     heatindex!A > threshold}");
    if (!days.ok()) return Fail(days.status());
    std::printf("unbearably hot days in June (threshold %.0f): %s\n", threshold,
                days->ToString().c_str());
  }
  return 0;
}
