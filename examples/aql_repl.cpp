// aql_repl — the AQL read-eval-print loop (paper §4).
//
// Usage:
//   aql_repl                 interactive session
//   aql_repl file.aql ...    execute script files, then exit
//
// Statements end with ';' and may span lines:
//   : val \xs = [[1, 2, 3]];
//   : { x * x | [_ : \x] <- xs };
//   typ it : {nat}
//   val it = {1, 4, 9}
// Commands: :quit, :help, :plan <expr>  (show the optimized core term),
// :load <file.aql>, :stats  (service counters and latency histograms).
//
// Statements run through a QueryService (src/service), so plan-cache and
// latency metrics accumulate across the session and :stats reports them.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "env/system.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

void RunProgram(aql::service::QueryService* svc, const std::string& program) {
  auto results = svc->RunScript(program);
  if (!results.ok()) {
    std::printf("error: %s\n", results.status().ToString().c_str());
    return;
  }
  for (const auto& r : *results) std::printf("%s\n", r.ToDisplayString(16).c_str());
}

void ShowPlan(const aql::System* sys, const std::string& expr) {
  auto report = sys->Explain(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowVerify(const aql::System* sys, const std::string& expr) {
  auto report = sys->VerifyReport(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowLint(const aql::System* sys, const std::string& expr) {
  auto report = sys->Lint(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowProfile(const aql::System* sys, const std::string& expr) {
  auto report = sys->Profile(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

int RunFiles(aql::service::QueryService* svc, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    RunProgram(svc, buf.str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  aql::System sys;
  if (!sys.init_status().ok()) {
    std::fprintf(stderr, "init error: %s\n", sys.init_status().ToString().c_str());
    return 1;
  }
  aql::service::QueryService svc(&sys, {.num_workers = 2});
  if (argc > 1) return RunFiles(&svc, argc, argv);

  std::printf("AQL — a query language for multidimensional arrays\n");
  std::printf("(Libkin, Machlin & Wong, SIGMOD 1996). :help for help.\n");
  std::string pending;
  std::string line;
  while (true) {
    std::printf("%s", pending.empty() ? ": " : ":: ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (pending.empty()) {
      if (line == ":quit" || line == ":q") break;
      if (line == ":help") {
        std::printf(
            "statements end with ';'. Forms:\n"
            "  <expr>;                          evaluate a query (binds 'it')\n"
            "  val \\x = <expr>;                 bind a value\n"
            "  macro \\f = <expr>;               define a macro\n"
            "  readval \\x using READER at <e>;  read external data\n"
            "  writeval <e> using WRITER at <e>; write external data\n"
            "  :plan <expr>                     show the optimized plan\n"
            "  :verify <expr>                   run the IR verifier on the plan\n"
            "  :lint <expr>                     static analysis: shape, ⊥,\n"
            "                                   bounds proofs, lint warnings\n"
            "  :profile <expr>                  run + per-stage time breakdown\n"
            "  :trace on|off                    toggle the process-wide tracer\n"
            "                                   (AQL_TRACE_FILE=path exports\n"
            "                                   Chrome trace JSON at exit)\n"
            "  :load <file.aql>                 run a script file\n"
            "  :stats                           service metrics for this session\n"
            "  :quit                            leave\n");
        continue;
      }
      if (line == ":stats") {
        std::printf("%s", svc.StatsReport().c_str());
        continue;
      }
      if (line.rfind(":plan ", 0) == 0) {
        ShowPlan(&sys, line.substr(6));
        continue;
      }
      if (line.rfind(":verify ", 0) == 0) {
        ShowVerify(&sys, line.substr(8));
        continue;
      }
      if (line.rfind(":lint ", 0) == 0) {
        ShowLint(&sys, line.substr(6));
        continue;
      }
      if (line.rfind(":profile ", 0) == 0) {
        ShowProfile(&sys, line.substr(9));
        continue;
      }
      if (line == ":trace on" || line == ":trace off") {
        bool on = line == ":trace on";
        aql::obs::Tracer::Get().SetEnabled(on);
        std::printf("tracing %s\n", on ? "on" : "off");
        continue;
      }
      if (line.rfind(":load ", 0) == 0) {
        std::string path = line.substr(6);
        std::ifstream in(path);
        if (!in) {
          std::printf("cannot open %s\n", path.c_str());
        } else {
          std::stringstream buf;
          buf << in.rdbuf();
          RunProgram(&svc, buf.str());
        }
        continue;
      }
    }
    pending += line;
    pending += "\n";
    // Execute once the statement is ';'-terminated (ignoring whitespace).
    size_t last = pending.find_last_not_of(" \t\n");
    if (last != std::string::npos && pending[last] == ';') {
      RunProgram(&svc, pending);
      pending.clear();
    }
  }
  return 0;
}
