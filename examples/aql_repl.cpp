// aql_repl — the AQL read-eval-print loop (paper §4).
//
// Usage:
//   aql_repl                 interactive session
//   aql_repl file.aql ...    execute script files, then exit
//
// Statements end with ';' and may span lines:
//   : val \xs = [[1, 2, 3]];
//   : { x * x | [_ : \x] <- xs };
//   typ it : {nat}
//   val it = {1, 4, 9}
// Commands: :quit, :help, :plan <expr>  (show the optimized core term),
// :load <file.aql>, :stats  (service counters and latency histograms),
// :cache / :cache clear  (result-cache statistics / flush).
//
// Statements run through a QueryService (src/service). Single pure-query
// statements take the service's query path (Submit), so they exercise the
// plan cache AND the semantic result cache — a repeated query is answered
// from its cached value; `:cache` shows the traffic. Statement forms that
// mutate the environment (val/macro/readval/writeval, multi-statement
// programs) go through RunScript as before.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "env/system.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

// True when `program` is exactly one query statement: ';'-terminated, no
// interior ';', and not opening with a binding/IO keyword. Conservative —
// anything ambiguous (say, a ';' inside a string literal looks like a
// second statement) falls back to RunScript, which handles everything.
bool IsSingleQueryStatement(const std::string& program, std::string* expr) {
  size_t last = program.find_last_not_of(" \t\n");
  if (last == std::string::npos || program[last] != ';') return false;
  std::string body = program.substr(0, last);
  if (body.find(';') != std::string::npos) return false;
  size_t first = body.find_first_not_of(" \t\n");
  if (first == std::string::npos) return false;
  for (const char* kw : {"val", "macro", "readval", "writeval"}) {
    size_t n = std::strlen(kw);
    if (body.compare(first, n, kw) == 0 &&
        (first + n >= body.size() ||
         (!std::isalnum(static_cast<unsigned char>(body[first + n])) &&
          body[first + n] != '_'))) {
      return false;
    }
  }
  *expr = body.substr(first);
  return true;
}

void RunProgram(aql::service::QueryService* svc, aql::System* sys,
                const std::string& program) {
  std::string expr;
  if (IsSingleQueryStatement(program, &expr)) {
    auto r = svc->Execute(expr);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    // Match the RunScript rendering: typ + val lines, and rebind `it`.
    // Mutating the System directly is safe here because this REPL is the
    // service's only client and no query is in flight.
    auto core = sys->ParseToCore(expr);
    if (core.ok()) {
      auto resolved = sys->ResolveNames(*core);
      if (resolved.ok()) {
        auto type = sys->TypeOf(*resolved);
        if (type.ok()) std::printf("typ it : %s\n", (*type)->ToString().c_str());
      }
    }
    sys->DefineVal("it", *r);
    std::printf("val it = %s\n", r->ToDisplayString(16).c_str());
    return;
  }
  auto results = svc->RunScript(program);
  if (!results.ok()) {
    std::printf("error: %s\n", results.status().ToString().c_str());
    return;
  }
  for (const auto& r : *results) std::printf("%s\n", r.ToDisplayString(16).c_str());
}

void ShowPlan(const aql::System* sys, const std::string& expr) {
  auto report = sys->Explain(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowVerify(const aql::System* sys, const std::string& expr) {
  auto report = sys->VerifyReport(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowLint(const aql::System* sys, const std::string& expr) {
  auto report = sys->Lint(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

void ShowProfile(const aql::System* sys, const std::string& expr) {
  auto report = sys->Profile(expr);
  if (!report.ok()) {
    std::printf("error: %s\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s", report->c_str());
}

int RunFiles(aql::service::QueryService* svc, aql::System* sys, int argc,
             char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    RunProgram(svc, sys, buf.str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  aql::System sys;
  if (!sys.init_status().ok()) {
    std::fprintf(stderr, "init error: %s\n", sys.init_status().ToString().c_str());
    return 1;
  }
  aql::service::QueryService svc(&sys, {.num_workers = 2});
  if (argc > 1) return RunFiles(&svc, &sys, argc, argv);

  std::printf("AQL — a query language for multidimensional arrays\n");
  std::printf("(Libkin, Machlin & Wong, SIGMOD 1996). :help for help.\n");
  std::string pending;
  std::string line;
  while (true) {
    std::printf("%s", pending.empty() ? ": " : ":: ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (pending.empty()) {
      if (line == ":quit" || line == ":q") break;
      if (line == ":help") {
        std::printf(
            "statements end with ';'. Forms:\n"
            "  <expr>;                          evaluate a query (binds 'it')\n"
            "  val \\x = <expr>;                 bind a value\n"
            "  macro \\f = <expr>;               define a macro\n"
            "  readval \\x using READER at <e>;  read external data\n"
            "  writeval <e> using WRITER at <e>; write external data\n"
            "  :plan <expr>                     show the optimized plan\n"
            "  :explain <expr>                  plan + proof certificates (which\n"
            "                                   affine facts justified which\n"
            "                                   optimization)\n"
            "  :verify <expr>                   run the IR verifier on the plan\n"
            "  :lint <expr>                     static analysis: shape, ⊥,\n"
            "                                   bounds proofs, lint warnings\n"
            "  :profile <expr>                  run + per-stage time breakdown\n"
            "  :trace on|off                    toggle the process-wide tracer\n"
            "                                   (AQL_TRACE_FILE=path exports\n"
            "                                   Chrome trace JSON at exit)\n"
            "  :load <file.aql>                 run a script file\n"
            "  :stats                           service metrics for this session\n"
            "  :cache                           result-cache statistics\n"
            "  :cache clear                     flush the result cache\n"
            "  :quit                            leave\n");
        continue;
      }
      if (line == ":stats") {
        std::printf("%s", svc.StatsReport().c_str());
        continue;
      }
      if (line == ":cache") {
        const auto rc = svc.result_cache().stats();
        std::printf(
            "result cache: %llu entries, %llu/%llu bytes\n"
            "  hits %llu  misses %llu  subsumed %llu  evictions %llu"
            "  invalidations %llu\n"
            "plan cache: %zu/%zu entries, %llu bytes\n",
            (unsigned long long)rc.entries, (unsigned long long)rc.bytes,
            (unsigned long long)svc.result_cache().max_bytes(),
            (unsigned long long)rc.hits, (unsigned long long)rc.misses,
            (unsigned long long)rc.subsumptions, (unsigned long long)rc.evictions,
            (unsigned long long)rc.invalidations, svc.plan_cache().size(),
            svc.plan_cache().capacity(),
            (unsigned long long)svc.plan_cache().bytes());
        continue;
      }
      if (line == ":cache clear") {
        svc.mutable_result_cache()->Clear();
        std::printf("result cache cleared\n");
        continue;
      }
      if (line.rfind(":plan ", 0) == 0) {
        ShowPlan(&sys, line.substr(6));
        continue;
      }
      if (line.rfind(":explain ", 0) == 0) {
        ShowPlan(&sys, line.substr(9));
        continue;
      }
      if (line.rfind(":verify ", 0) == 0) {
        ShowVerify(&sys, line.substr(8));
        continue;
      }
      if (line.rfind(":lint ", 0) == 0) {
        ShowLint(&sys, line.substr(6));
        continue;
      }
      if (line.rfind(":profile ", 0) == 0) {
        ShowProfile(&sys, line.substr(9));
        continue;
      }
      if (line == ":trace on" || line == ":trace off") {
        bool on = line == ":trace on";
        aql::obs::Tracer::Get().SetEnabled(on);
        std::printf("tracing %s\n", on ? "on" : "off");
        continue;
      }
      if (line.rfind(":load ", 0) == 0) {
        std::string path = line.substr(6);
        std::ifstream in(path);
        if (!in) {
          std::printf("cannot open %s\n", path.c_str());
        } else {
          std::stringstream buf;
          buf << in.rdbuf();
          RunProgram(&svc, &sys, buf.str());
        }
        continue;
      }
    }
    pending += line;
    pending += "\n";
    // Execute once the statement is ';'-terminated (ignoring whitespace).
    size_t last = pending.find_last_not_of(" \t\n");
    if (last != std::string::npos && pending[last] == ';') {
      RunProgram(&svc, &sys, pending);
      pending.clear();
    }
  }
  return 0;
}
