#!/usr/bin/env bash
# clang-tidy over the project's own sources using the CMake compile
# database (.clang-tidy at the repo root selects the checks).
#
# Usage: scripts/lint.sh [--strict] [--require] [build-dir]
#   default build dir: build
#
# --strict promotes every clang-tidy warning to an error (CI gate): the
# script exits non-zero if any file produces a warning. Without it, a
# file only fails on hard errors.
#
# --require makes a missing clang-tidy a FAILURE instead of a skip. CI
# passes it so the lint job cannot silently turn into a no-op when the
# runner image drops the package; local runs without it still exit 0 with
# a notice, so check.sh works on minimal containers. Either way the skip
# notice names every binary that was probed, so "why did lint not run?"
# is answered by the log.
set -u
cd "$(dirname "$0")/.."

STRICT=0
REQUIRE=0
BUILD_DIR="build"
for arg in "$@"; do
  case "${arg}" in
    --strict) STRICT=1 ;;
    --require) REQUIRE=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

# Probe the unversioned name first, then recent versioned packagings.
CANDIDATES=(clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17
            clang-tidy-16 clang-tidy-15 clang-tidy-14)
TIDY=""
for candidate in "${CANDIDATES[@]}"; do
  TIDY="$(command -v "${candidate}" || true)"
  [ -n "${TIDY}" ] && break
done
if [ -z "${TIDY}" ]; then
  echo "lint: clang-tidy not found on PATH (probed: ${CANDIDATES[*]})"
  if [ "${REQUIRE}" = 1 ]; then
    echo "lint: FAILED — --require set and no clang-tidy is installed" >&2
    echo "lint: install it (e.g. apt-get install clang-tidy) or fix PATH" >&2
    exit 1
  fi
  echo "lint: skipping (install clang-tidy to enable, or run with --require"
  echo "lint: to make the absence an error as CI does)"
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ."
  exit 1
fi

EXTRA=()
[ "${STRICT}" = 1 ] && EXTRA+=("--warnings-as-errors=*")

# Project sources only: the compile database also covers tests/benches,
# which deliberately use patterns (huge literals, sleeps) lint dislikes.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

MODE=$([ "${STRICT}" = 1 ] && echo " (strict: warnings are errors)" || true)
echo "lint: ${TIDY} ($("${TIDY}" --version | head -n1 | sed 's/^ *//'))"
echo "lint: over ${#SOURCES[@]} files${MODE}, $(nproc) at a time"
# One clang-tidy process per file, $(nproc)-wide: the tool is single
# threaded, so per-file fan-out is what actually cuts the wall clock.
# xargs exits non-zero if any invocation failed.
printf '%s\0' "${SOURCES[@]}" |
  xargs -0 -P"$(nproc)" -n1 \
    "${TIDY}" -p "${BUILD_DIR}" --quiet ${EXTRA[@]+"${EXTRA[@]}"}
