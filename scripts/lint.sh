#!/usr/bin/env bash
# clang-tidy over the project's own sources using the CMake compile
# database (.clang-tidy at the repo root selects the checks).
#
# Usage: scripts/lint.sh [--strict] [build-dir]   default build dir: build
#
# --strict promotes every clang-tidy warning to an error (CI gate): the
# script exits non-zero if any file produces a warning. Without it, a
# file only fails on hard errors.
#
# Exits 0 with a notice when clang-tidy is not installed, so check.sh can
# run on minimal containers; install clang-tidy to make this lane real.
set -u
cd "$(dirname "$0")/.."

STRICT=0
BUILD_DIR="build"
for arg in "$@"; do
  case "${arg}" in
    --strict) STRICT=1 ;;
    *) BUILD_DIR="${arg}" ;;
  esac
done

TIDY="$(command -v clang-tidy || true)"
if [ -z "${TIDY}" ]; then
  for candidate in clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                   clang-tidy-15 clang-tidy-14; do
    TIDY="$(command -v "${candidate}" || true)"
    [ -n "${TIDY}" ] && break
  done
fi
if [ -z "${TIDY}" ]; then
  echo "lint: clang-tidy not found on PATH; skipping (install clang-tidy to enable)"
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json missing; configure first:"
  echo "  cmake -B ${BUILD_DIR} -S ."
  exit 1
fi

EXTRA=()
[ "${STRICT}" = 1 ] && EXTRA+=("--warnings-as-errors=*")

# Project sources only: the compile database also covers tests/benches,
# which deliberately use patterns (huge literals, sleeps) lint dislikes.
mapfile -t SOURCES < <(find src -name '*.cc' | sort)

MODE=$([ "${STRICT}" = 1 ] && echo " (strict: warnings are errors)" || true)
echo "lint: ${TIDY} over ${#SOURCES[@]} files${MODE}, $(nproc) at a time"
# One clang-tidy process per file, $(nproc)-wide: the tool is single
# threaded, so per-file fan-out is what actually cuts the wall clock.
# xargs exits non-zero if any invocation failed.
printf '%s\0' "${SOURCES[@]}" |
  xargs -0 -P"$(nproc)" -n1 \
    "${TIDY}" -p "${BUILD_DIR}" --quiet ${EXTRA[@]+"${EXTRA[@]}"}
