#!/usr/bin/env bash
# Runs a bench binary with google-benchmark's JSON reporter and distills
# the result to a compact {name, real_time_ns, items_per_second} list for
# EXPERIMENTS.md bookkeeping and before/after diffing.
#
# Usage: scripts/bench_to_json.sh [bench_target] [out_json] [build_dir]
#   defaults:      bench_exec       BENCH_exec.json   build
#
# Examples:
#   scripts/bench_to_json.sh                                  # BENCH_exec.json
#   scripts/bench_to_json.sh bench_parallel BENCH_parallel.json
set -eu
cd "$(dirname "$0")/.."

TARGET="${1:-bench_exec}"
OUT="${2:-BENCH_${TARGET#bench_}.json}"
BUILD="${3:-build}"
BIN="${BUILD}/bench/${TARGET}"

if [ ! -x "${BIN}" ]; then
  echo "error: ${BIN} not built (cmake --build ${BUILD} --target ${TARGET})" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "${RAW}"' EXIT
"${BIN}" --benchmark_format=json --benchmark_min_time=0.05 >"${RAW}"

jq '{
  context: {date: .context.date, host: .context.host_name,
            num_cpus: .context.num_cpus, build: .context.library_build_type},
  benchmarks: [.benchmarks[]
    | select(.run_type == "iteration")
    | {name, real_time_ns: .real_time, cpu_time_ns: .cpu_time}
      + (if .items_per_second then {items_per_second} else {} end)]
}' "${RAW}" >"${OUT}"

echo "wrote ${OUT} ($(jq '.benchmarks | length' "${OUT}") series)"
