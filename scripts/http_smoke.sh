#!/usr/bin/env bash
# End-to-end smoke test of the HTTP front end using the real aql_serve
# binary and curl: starts the server on an ephemeral port, runs queries
# in both formats (including a large streamed array), exercises the
# error and rate-limit paths, scrapes /metrics, and verifies a clean
# SIGTERM drain. Wired into scripts/check.sh and the CI http job.
#
# Usage: scripts/http_smoke.sh [build_dir]     (default: build)
set -eu
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
BIN="${BUILD}/examples/aql_serve"
if [ ! -x "${BIN}" ]; then
  echo "error: ${BIN} not built (cmake --build ${BUILD} --target aql_serve)" >&2
  exit 1
fi
command -v curl >/dev/null || { echo "error: curl not found" >&2; exit 1; }

LOG="$(mktemp)"
BODY="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "${SERVER_PID}" ] && kill -9 "${SERVER_PID}" 2>/dev/null || true
  rm -f "${LOG}" "${BODY}"
}
trap cleanup EXIT

fail() { echo "http_smoke: FAIL: $*" >&2; echo "--- server log ---" >&2; cat "${LOG}" >&2; exit 1; }

# Burst covers every functional check below with room to spare, while the
# 1/s refill cannot mask burst exhaustion in the 429 loop even when this
# box is slow (the loop uses a dedicated X-AQL-Token bucket).
AQL_HTTP_PORT=0 AQL_HTTP_RATE=1 AQL_HTTP_BURST=30 "${BIN}" >"${LOG}" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  grep -q '^listening on ' "${LOG}" 2>/dev/null && break
  kill -0 "${SERVER_PID}" 2>/dev/null || fail "server exited during startup"
  sleep 0.1
done
PORT="$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "${LOG}" | head -1)"
[ -n "${PORT}" ] || fail "could not read listening port"
URL="http://127.0.0.1:${PORT}"

echo "== health"
[ "$(curl -sS "${URL}/healthz")" = "ok" ] || fail "/healthz"

echo "== text query"
[ "$(curl -sS -d '1 + 2' "${URL}/query")" = "3" ] || fail "text query"

echo "== json query"
OUT="$(curl -sS -d '{ x * x | \x <- gen!4 }' "${URL}/query?format=json")"
[ "${OUT}" = "[0,1,4,9]" ] || fail "json query: got ${OUT}"

echo "== large streamed array (chunked transfer encoding)"
CODE="$(curl -sS -o "${BODY}" -w '%{http_code}' -d '[[ i * i | \i < 200000 ]]' "${URL}/query")"
[ "${CODE}" = "200" ] || fail "large query: status ${CODE}"
BYTES="$(wc -c < "${BODY}")"
[ "${BYTES}" -gt 1000000 ] || fail "large query: only ${BYTES} bytes"
# Spot-check the tail: the last element of [[ i*i | \i < 200000 ]].
grep -q '39999600001]]' "${BODY}" || fail "large query: bad tail"

echo "== repeated query served from the result cache"
A="$(curl -sS -d 'summap(fn \x => x * x)!(gen!500)' "${URL}/query")"
B="$(curl -sS -d 'summap(fn \x => x * x)!(gen!500)' "${URL}/query")"
[ "${A}" = "${B}" ] || fail "repeated query: results differ (${A} vs ${B})"
curl -sS "${URL}/metrics" | grep '^aql_cache_result_hits ' | awk '{exit !($2 > 0)}' \
  || fail "repeated query: aql_cache_result_hits still zero after a repeat"

echo "== trace"
curl -sS -d '1 + 2' "${URL}/query?trace=1" | grep -q 'profile' || fail "trace"

echo "== error paths"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' -d '1 +' "${URL}/query")"
[ "${CODE}" = "400" ] || fail "parse error: status ${CODE}"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "${URL}/query")"
[ "${CODE}" = "405" ] || fail "GET /query: status ${CODE}"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "${URL}/nowhere")"
[ "${CODE}" = "404" ] || fail "/nowhere: status ${CODE}"

echo "== rate limit returns 429 with Retry-After"
SAW_429=0
for _ in $(seq 1 40); do
  CODE="$(curl -sS -o /dev/null -w '%{http_code}' -H 'X-AQL-Token: burst-check' \
          -d '1 + 1' "${URL}/query")"
  if [ "${CODE}" = "429" ]; then SAW_429=1; break; fi
done
[ "${SAW_429}" = 1 ] || fail "no 429 after exhausting the burst"
curl -sS -i -o "${BODY}" -H 'X-AQL-Token: burst-check' -d '1 + 1' "${URL}/query" || true
grep -qi '^retry-after:' "${BODY}" || fail "429 without Retry-After"

echo "== /metrics scrape"
curl -sS "${URL}/metrics" >"${BODY}" || fail "/metrics"
grep -q '^aql_queries_completed ' "${BODY}" || fail "metrics: no aql_queries_completed"
grep -q '^aql_http_requests ' "${BODY}" || fail "metrics: no aql_http_requests"
grep -q '^aql_http_rate_limited ' "${BODY}" || fail "metrics: no aql_http_rate_limited"
grep -q '_bucket{le="' "${BODY}" || fail "metrics: no histogram buckets"

echo "== /stats and /slow"
curl -sS "${URL}/stats" | grep -q '^http: ' || fail "/stats"
CODE="$(curl -sS -o /dev/null -w '%{http_code}' "${URL}/slow")"
[ "${CODE}" = "200" ] || fail "/slow: status ${CODE}"

echo "== graceful drain on SIGTERM"
kill -TERM "${SERVER_PID}"
DRAIN_OK=0
for _ in $(seq 1 100); do
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[ "${DRAIN_OK}" = 1 ] || fail "server did not exit within 10s of SIGTERM"
wait "${SERVER_PID}" 2>/dev/null && EXIT=0 || EXIT=$?
SERVER_PID=""
[ "${EXIT}" = 0 ] || fail "server exited with status ${EXIT}"
grep -q 'drained .* requests total' "${LOG}" || fail "no drain report in log"

echo "http_smoke: all checks passed"
