#!/usr/bin/env bash
# The full pre-merge gate: build + tests (twice: stock and under the IR
# verifier's paranoid mode) + lint + both sanitizer lanes (address,undefined
# and thread — the latter covers the data-parallel execution paths).
#
# Usage: scripts/check.sh [--no-sanitize]
set -eu
cd "$(dirname "$0")/.."

SANITIZE=1
[ "${1:-}" = "--no-sanitize" ] && SANITIZE=0

echo "== configure + build (build/)"
cmake -B build -S . >/dev/null
cmake --build build -j"$(nproc)"

echo "== ctest"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== ctest under AQL_VERIFY_IR=1 (IR verifier paranoid mode)"
AQL_VERIFY_IR=1 ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== HTTP front-end smoke (aql_serve + curl end-to-end)"
scripts/http_smoke.sh build

echo "== result-cache smoke (speedup thresholds + bit-identity)"
build/bench/bench_result_cache --smoke

echo "== out-of-core smoke (tile cache budget + bit-identity + subslab reads)"
build/bench/bench_storage --smoke

echo "== lint (strict: clang-tidy warnings fail the gate)"
scripts/lint.sh --strict build

echo "== locking discipline (src/ uses base/sync.h wrappers only)"
# base/sync.{h,cc} implement the wrappers; everything else under src/ must
# go through them so the thread-safety annotations and the lock-order
# detector see every acquisition (tests/benches are exempt).
if grep -rn --include='*.h' --include='*.cc' \
     -e 'std::mutex' -e 'std::lock_guard' -e 'std::unique_lock' \
     -e 'std::shared_mutex' -e 'std::shared_lock' -e 'std::scoped_lock' \
     -e 'std::condition_variable' \
     src/ | grep -v '^src/base/sync\.'; then
  echo "check.sh: raw standard-library locking under src/ — use base/sync.h" >&2
  exit 1
fi

if command -v clang++ >/dev/null 2>&1; then
  echo "== clang thread-safety analysis (build-tsa/, -Werror=thread-safety)"
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-tsa -j"$(nproc)"
else
  echo "== clang thread-safety analysis: skipped (clang++ not installed)"
fi

echo "== dead-rule check (new never-fired rules fail; baseline in scripts/dead_rules_allow.txt)"
scripts/dead_rules.sh --check build

if [ "${SANITIZE}" = 1 ]; then
  echo "== sanitizer lane: address,undefined (build-asan/, ctest -L asan)"
  cmake -B build-asan -S . -DAQL_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j"$(nproc)"
  ctest --test-dir build-asan --output-on-failure -L asan -j"$(nproc)"

  echo "== sanitizer lane: thread (build-tsan/, ctest -L tsan)"
  cmake -B build-tsan -S . -DAQL_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$(nproc)"
  ctest --test-dir build-tsan --output-on-failure -L tsan -j"$(nproc)"
fi

echo "check.sh: all gates passed"
