#!/usr/bin/env bash
# Dead-rule report: replay the optimizer over a query corpus and list
# rules that never fired (see examples/aql_dead_rules.cpp).
#
# Usage: scripts/dead_rules.sh [--check] [build-dir] [corpus.aql ...]
#
# Without --check the report is informational. With --check the run FAILS
# if any never-fired `phase / rule` pair is missing from the audited
# baseline (scripts/dead_rules_allow.txt) — i.e. someone added an
# optimizer rule without a corpus query that exercises it. CI runs the
# check mode and archives the report as an artifact.
set -u
cd "$(dirname "$0")/.."

CHECK=()
if [ "${1:-}" = "--check" ]; then
  CHECK=(--check --allow scripts/dead_rules_allow.txt)
  shift
fi

BUILD_DIR="${1:-build}"
shift || true

BIN="${BUILD_DIR}/examples/aql_dead_rules"
if [ ! -x "${BIN}" ]; then
  echo "dead_rules: ${BIN} missing; build first: cmake --build ${BUILD_DIR} -j"
  exit 1
fi

# The REPL tour exercises the surface language end to end; include it in
# the corpus when present alongside any caller-supplied scripts.
CORPUS=()
[ -f examples/scripts/tour.aql ] && CORPUS+=(examples/scripts/tour.aql)
exec "${BIN}" ${CHECK[@]+"${CHECK[@]}"} ${CORPUS[@]+"${CORPUS[@]}"} "$@"
