#!/usr/bin/env bash
# Dead-rule report: replay the optimizer over a query corpus and list
# rules that never fired (see examples/aql_dead_rules.cpp). Informational
# — a rule can be live for programs the corpus doesn't reach — so
# check.sh invokes this with `|| true`.
#
# Usage: scripts/dead_rules.sh [build-dir] [corpus.aql ...]
set -u
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift || true

BIN="${BUILD_DIR}/examples/aql_dead_rules"
if [ ! -x "${BIN}" ]; then
  echo "dead_rules: ${BIN} missing; build first: cmake --build ${BUILD_DIR} -j"
  exit 1
fi

# The REPL tour exercises the surface language end to end; include it in
# the corpus when present alongside any caller-supplied scripts.
CORPUS=()
[ -f examples/scripts/tour.aql ] && CORPUS+=(examples/scripts/tour.aql)
exec "${BIN}" ${CORPUS[@]+"${CORPUS[@]}"} "$@"
