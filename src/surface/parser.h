// Recursive-descent parser for the AQL surface syntax.
//
// Grammar sketch (precedence low to high):
//
//   stmt   ::= 'val' \x '=' expr ';' | 'macro' \x '=' expr ';'
//            | 'readval' \x 'using' IDENT 'at' expr ';'
//            | 'writeval' expr 'using' IDENT 'at' expr ';'
//            | expr ';'
//   expr   ::= 'fn' P' '=>' expr | 'let' decls 'in' expr 'end'
//            | 'if' expr 'then' expr 'else' expr | or_expr
//   or     ::= and ('or' and)*
//   and    ::= cmp ('and' cmp)*
//   cmp    ::= add (('='|'<>'|'<'|'<='|'>'|'>='|'isin') add)?
//   add    ::= mul (('+'|'-') mul)*
//   mul    ::= app (('*'|'/'|'%') app)*
//   app    ::= post ('!' post)*                    (left associative)
//   post   ::= atom ('[' expr (',' expr)* ']')*    (subscripting)
//   atom   ::= literal | IDENT | 'not' atom | '(' expr (',' expr)* ')'
//            | '{' ... '}' | '[[' ... ']]' | 'bottom'
//
// Inside braces, '{e | items}' is a comprehension; '{e1,...,en}' a set
// literal. Inside '[[ ]]': tabulation if a '|' follows the head, a dense
// literal if a ';' occurs at depth 0, otherwise a 1-d array literal.
// Comprehension items need one token of backtracking to tell a generator
// pattern from a filter expression; the parser saves and restores its
// token cursor for that case.

#ifndef AQL_SURFACE_PARSER_H_
#define AQL_SURFACE_PARSER_H_

#include <string_view>
#include <vector>

#include "base/result.h"
#include "surface/ast.h"

namespace aql {

// Parses a single expression (the whole input must be consumed).
Result<SurfacePtr> ParseExpression(std::string_view source);

// Parses a sequence of ';'-terminated statements.
Result<std::vector<Statement>> ParseProgram(std::string_view source);

}  // namespace aql

#endif  // AQL_SURFACE_PARSER_H_
