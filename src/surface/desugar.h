// Desugaring: surface AQL -> core calculus, by the Figure-2 translations.
//
//   {e1 | \x <- e2, GF}   =>  U{ {e1 | GF} | x in e2 }
//   {e1 | e2, GF}         =>  if e2 then {e1 | GF} else {}
//   {e | }                =>  {e}
//   P == e                =>  P <- {e}
//   [Pi : Px] <- A        =>  \i <- dom(A), Px <- {A[i]}     (array generator)
//   fn P => e             =>  \z. match(P, z, e, bottom)
//   let val P = e1 in e2  =>  (fn P => e2)!e1
//
// Pattern matching compiles to projections, equality tests, and lets, as in
// the second table of Figure 2: non-binding / constant positions become
// equality guards whose failure contributes {} (in comprehensions) or
// bottom (in lambda position).
//
// The rank of an array generator comes from the shape of its index pattern:
// a tuple pattern of arity k addresses a k-dimensional array, anything else
// a one-dimensional one (cf. the [(\h,_,_):\t] <- T generator of §4.2).
//
// A handful of names are *builtin syntactic operators* rather than
// identifiers; applying them produces core constructs directly:
//   gen!e, get!e, len!e, dim2..dim9!e, index!e (= index1), index2..index9!e,
//   summap(f)!e  (the paper's notation for Sum{f(x) | x in e}).
// Membership `a isin B` becomes a call to the native primitive `member`.

#ifndef AQL_SURFACE_DESUGAR_H_
#define AQL_SURFACE_DESUGAR_H_

#include "base/result.h"
#include "core/expr.h"
#include "surface/ast.h"

namespace aql {

class Desugarer {
 public:
  // Translates one surface expression into the core calculus. Free
  // identifiers stay as kVar nodes; the environment module later resolves
  // them against vals, macros, and registered primitives.
  Result<ExprPtr> Desugar(const SurfacePtr& e);

 private:
  std::string Fresh(const char* base);

  Result<ExprPtr> DesugarExpr(const SurfacePtr& e);
  Result<ExprPtr> DesugarComp(const SurfacePtr& comp, size_t item_index);
  Result<ExprPtr> Match(const Pattern& p, ExprPtr scrutinee, ExprPtr success,
                        const ExprPtr& fail);
  Result<ExprPtr> DesugarApp(const SurfacePtr& e);

  // dom_k(a): gen(len a) for k = 1; the k-fold cross product of
  // gen(dim_{j,k} a) otherwise (a set of k-tuples).
  ExprPtr DomainOf(const ExprPtr& array_var, size_t rank);

  uint64_t fresh_counter_ = 0;
};

}  // namespace aql

#endif  // AQL_SURFACE_DESUGAR_H_
