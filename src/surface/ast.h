// Surface abstract syntax for AQL (paper §3): comprehensions, patterns,
// blocks, literals, and the top-level declaration forms of §4. The
// desugarer (desugar.h) translates this into the core calculus by the
// Figure-2 rules.

#ifndef AQL_SURFACE_AST_H_
#define AQL_SURFACE_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "core/expr.h"
#include "object/value.h"

namespace aql {

struct SurfaceExpr;
using SurfacePtr = std::shared_ptr<const SurfaceExpr>;

// Patterns (paper §3):  P ::= (P1,...,Pk) | _ | c | x | \x
enum class PatternKind {
  kBind,      // \x : matches anything, binds x
  kWildcard,  // _  : matches anything
  kConst,     // c  : matches the constant c
  kUse,       // x  : matches the value currently bound to x
  kTuple,     // (P1,...,Pk)
};

struct Pattern {
  PatternKind kind;
  std::string name;              // kBind / kUse
  Value constant;                // kConst
  std::vector<Pattern> fields;   // kTuple

  static Pattern Bind(std::string n) { return {PatternKind::kBind, std::move(n), {}, {}}; }
  static Pattern Wildcard() { return {PatternKind::kWildcard, {}, {}, {}}; }
  static Pattern Const(Value v) { return {PatternKind::kConst, {}, std::move(v), {}}; }
  static Pattern Use(std::string n) { return {PatternKind::kUse, std::move(n), {}, {}}; }
  static Pattern Tuple(std::vector<Pattern> fs) {
    return {PatternKind::kTuple, {}, {}, std::move(fs)};
  }

  // Names bound by this pattern, in left-to-right order.
  void CollectBound(std::vector<std::string>* out) const;
};

// One generator / filter position of a comprehension.
struct CompItem {
  enum class Kind {
    kGenerator,       // P <- e           (set generator)
    kArrayGenerator,  // [Pi : Px] <- e   (array generator, §3)
    kBinding,         // P == e           (shorthand for P <- {e})
    kFilter,          // boolean expression
  };
  Kind kind;
  Pattern pattern;        // value pattern (unused for kFilter)
  Pattern index_pattern;  // kArrayGenerator only
  SurfacePtr expr;        // source set / bound expression / filter
};

enum class SurfaceKind {
  kVar,
  kNatLit,
  kRealLit,
  kStrLit,
  kBoolLit,
  kBottomLit,
  kTuple,
  kSetLit,        // {e1,...,en}; n may be 0
  kComp,          // {e | items}
  kArrayLit,      // [[e1,...,en]] (one-dimensional)
  kArrayDense,    // [[d1,...,dk; v0,...,vm]]
  kTab,           // [[e | \i1 < e1, ..., \ik < ek]]
  kApp,           // f!e
  kFn,            // fn P => e
  kLet,           // let val P1 = e1 ... in e end
  kIf,
  kBinOp,
  kNot,
  kSubscript,     // e[i1,...,ik]
};

enum class SurfaceBinOp {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe, kIsin,
  kAdd, kSub, kMul, kDiv, kMod,
};

struct SurfaceExpr {
  SurfaceKind kind;

  std::string name;                     // kVar
  uint64_t nat = 0;                     // kNatLit
  double real = 0;                      // kRealLit
  std::string str;                      // kStrLit
  bool boolean = false;                 // kBoolLit
  std::vector<SurfacePtr> children;     // generic subexpressions
  std::vector<CompItem> items;          // kComp
  std::vector<Pattern> patterns;        // kFn (1), kLet (one per decl)
  std::vector<std::string> tab_vars;    // kTab binders
  SurfaceBinOp op = SurfaceBinOp::kEq;  // kBinOp
  size_t dense_rank = 0;                // kArrayDense

  size_t line = 0;  // source position for diagnostics
};

// Top-level statement (the AQL read-eval-print loop forms of §4).
struct Statement {
  enum class Kind {
    kQuery,     // e ;
    kVal,       // val \x = e ;
    kMacro,     // macro \name = e ;
    kReadval,   // readval \x using READER at e ;
    kWriteval,  // writeval e using WRITER at e ;
  };
  Kind kind;
  std::string name;    // val/macro/readval target
  std::string reader;  // reader/writer registration name
  SurfacePtr expr;     // query / bound expression / writeval payload
  SurfacePtr at_args;  // readval/writeval argument expression
};

}  // namespace aql

#endif  // AQL_SURFACE_AST_H_
