// Unparser: core calculus -> AQL surface syntax.
//
// The inverse direction of the Figure-2 translations: every core
// construct has a surface rendering that parses and desugars back to an
// equivalent term —
//
//   BigUnion(x, e1, e2)   ->  { y | \x <- e2, \y <- e1 }
//   Sum(x, e1, e2)        ->  summap(fn \x => e1)!(e2)
//   Tab                   ->  [[ e | \i1 < b1, ... ]]
//   Proj(i,k)             ->  pi_i_k!(e)
//   Union                 ->  setunion!(a, b)       (prelude macro)
//   Get/Gen/Dim/Index     ->  get!/gen!/len!/dimK!/indexK!
//   Literal               ->  the exchange-format literal (§3 grammar is a
//                             sublanguage of the expression grammar)
//
// Used by tooling (pretty plans a user can paste back into the REPL) and
// by the round-trip property suite: for random core terms e,
// eval(desugar(parse(Unparse(e)))) == eval(e).

#ifndef AQL_SURFACE_UNPARSE_H_
#define AQL_SURFACE_UNPARSE_H_

#include <string>

#include "base/result.h"
#include "core/expr.h"

namespace aql {

// Renders e as parseable AQL. Fails only on constructs with no surface
// form (none currently — External renders as its name and parses back if
// the primitive is registered).
Result<std::string> Unparse(const ExprPtr& e);

}  // namespace aql

#endif  // AQL_SURFACE_UNPARSE_H_
