#include "surface/ast.h"

namespace aql {

void Pattern::CollectBound(std::vector<std::string>* out) const {
  switch (kind) {
    case PatternKind::kBind:
      out->push_back(name);
      return;
    case PatternKind::kTuple:
      for (const Pattern& p : fields) p.CollectBound(out);
      return;
    default:
      return;
  }
}

}  // namespace aql
