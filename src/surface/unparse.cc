#include "surface/unparse.h"

#include <map>
#include <set>
#include <vector>

#include "base/strings.h"
#include "core/expr_ops.h"

namespace aql {

namespace {

bool SafeSurfaceName(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '\'') {
      return false;
    }
  }
  return true;
}

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

class Unparser {
 public:
  Result<std::string> Run(const ExprPtr& e) {
    // Reserve every safe name appearing anywhere, so generated names for
    // the '$'-suffixed internal variables cannot collide.
    CollectNames(e);
    std::string out;
    AQL_RETURN_IF_ERROR(Render(e, &out));
    return out;
  }

 private:
  void CollectNames(const ExprPtr& e) {
    if (e->is(ExprKind::kVar)) used_.insert(e->var_name());
    for (const std::string& b : e->binders()) used_.insert(b);
    for (const ExprPtr& c : e->children()) CollectNames(c);
  }

  // Surface name for a binder: pass safe names through, rename internal
  // ones ($-suffixed from the desugarer/optimizer) to fresh v<N>.
  std::string BinderName(const std::string& name) {
    if (SafeSurfaceName(name) && !renamed_.count(name)) return name;
    auto it = renamed_.find(name);
    if (it != renamed_.end()) return it->second;
    std::string fresh;
    do {
      fresh = "v" + std::to_string(counter_++);
    } while (used_.count(fresh));
    used_.insert(fresh);
    renamed_[name] = fresh;
    return fresh;
  }

  std::string VarName(const std::string& name) {
    auto it = renamed_.find(name);
    return it != renamed_.end() ? it->second : name;
  }

  std::string Fresh() {
    std::string fresh;
    do {
      fresh = "v" + std::to_string(counter_++);
    } while (used_.count(fresh));
    used_.insert(fresh);
    return fresh;
  }

  // Values render as expressions rather than raw exchange-format text:
  // the expression grammar has no unary minus, so negative reals become
  // (0.0 - x); everything else matches the §3 literal grammar.
  Status RenderReal(double d, std::string* out) {
    if (d < 0) {
      out->append("(0.0 - ");
      out->append(RealToString(-d));
      out->push_back(')');
    } else {
      out->append(RealToString(d));
    }
    return Status::OK();
  }

  Status RenderLiteral(const Value& v, std::string* out) {
    switch (v.kind()) {
      case ValueKind::kFunc:
        return Status::InvalidArgument("function values have no surface syntax");
      case ValueKind::kReal:
        return RenderReal(v.real_value(), out);
      case ValueKind::kBottom:
        out->append("bottom");
        return Status::OK();
      case ValueKind::kBool:
        out->append(v.bool_value() ? "true" : "false");
        return Status::OK();
      case ValueKind::kNat:
        out->append(std::to_string(v.nat_value()));
        return Status::OK();
      case ValueKind::kString:
        AppendQuoted(v.str_value(), out);
        return Status::OK();
      case ValueKind::kTuple: {
        out->push_back('(');
        for (size_t i = 0; i < v.tuple_fields().size(); ++i) {
          if (i > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(RenderLiteral(v.tuple_fields()[i], out));
        }
        out->push_back(')');
        return Status::OK();
      }
      case ValueKind::kSet: {
        out->push_back('{');
        for (size_t i = 0; i < v.set().elems.size(); ++i) {
          if (i > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(RenderLiteral(v.set().elems[i], out));
        }
        out->push_back('}');
        return Status::OK();
      }
      case ValueKind::kArray: {
        const ArrayRep& a = v.array();
        out->append("[[");
        for (size_t i = 0; i < a.dims.size(); ++i) {
          if (i > 0) out->push_back(',');
          out->append(std::to_string(a.dims[i]));
        }
        out->append("; ");
        for (uint64_t i = 0; i < a.Count(); ++i) {
          if (i > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(RenderLiteral(a.At(i), out));
        }
        out->append("]]");
        return Status::OK();
      }
    }
    return Status::Internal("unknown value kind in unparser");
  }

  Status Render(const ExprPtr& e, std::string* out) {
    switch (e->kind()) {
      case ExprKind::kVar:
        if (!SafeSurfaceName(VarName(e->var_name()))) {
          return Status::InvalidArgument(
              StrCat("free variable ", e->var_name(), " has no surface spelling"));
        }
        out->append(VarName(e->var_name()));
        return Status::OK();
      case ExprKind::kLambda: {
        std::string b = BinderName(e->binder());
        out->append("(fn \\");
        out->append(b);
        out->append(" => ");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      }
      case ExprKind::kApply:
        out->push_back('(');
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(")!(");
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kTuple: {
        out->push_back('(');
        for (size_t i = 0; i < e->children().size(); ++i) {
          if (i > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(Render(e->child(i), out));
        }
        out->push_back(')');
        return Status::OK();
      }
      case ExprKind::kProj: {
        if (e->proj_index() > 9 || e->proj_arity() > 9) {
          return Status::InvalidArgument("projection arity beyond surface pi_i_k range");
        }
        out->append(StrCat("pi_", e->proj_index(), "_", e->proj_arity(), "!("));
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      }
      case ExprKind::kEmptySet:
        out->append("{}");
        return Status::OK();
      case ExprKind::kSingleton:
        out->push_back('{');
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back('}');
        return Status::OK();
      case ExprKind::kUnion:
        out->append("setunion!(");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(", ");
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kBigUnion: {
        // U{ e1 | x in e2 }  ->  { y | \x <- e2, \y <- e1 }.
        std::string x = BinderName(e->binder());
        std::string y = Fresh();
        out->append("{ ");
        out->append(y);
        out->append(" | \\");
        out->append(x);
        out->append(" <- ");
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->append(", \\");
        out->append(y);
        out->append(" <- ");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(" }");
        return Status::OK();
      }
      case ExprKind::kGet:
        out->append("get!(");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kBoolConst:
        out->append(e->bool_const() ? "true" : "false");
        return Status::OK();
      case ExprKind::kIf:
        out->append("(if ");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(" then ");
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->append(" else ");
        AQL_RETURN_IF_ERROR(Render(e->child(2), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kCmp:
      case ExprKind::kArith: {
        const char* op = e->is(ExprKind::kCmp) ? CmpOpName(e->cmp_op())
                                               : ArithOpName(e->arith_op());
        out->push_back('(');
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(' ');
        out->append(op);
        out->push_back(' ');
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->push_back(')');
        return Status::OK();
      }
      case ExprKind::kNatConst:
        out->append(std::to_string(e->nat_const()));
        return Status::OK();
      case ExprKind::kRealConst:
        return RenderReal(e->real_const(), out);
      case ExprKind::kStrConst:
        AppendQuoted(e->str_const(), out);
        return Status::OK();
      case ExprKind::kGen:
        out->append("gen!(");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kSum: {
        std::string x = BinderName(e->binder());
        out->append("summap(fn \\");
        out->append(x);
        out->append(" => ");
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(")!(");
        AQL_RETURN_IF_ERROR(Render(e->child(1), out));
        out->push_back(')');
        return Status::OK();
      }
      case ExprKind::kTab: {
        // Bounds render BEFORE the binders come into scope semantically,
        // but the binder names must be chosen first for the body; names
        // are globally fresh, so order is immaterial.
        std::vector<std::string> names;
        names.reserve(e->tab_rank());
        for (const std::string& b : e->binders()) names.push_back(BinderName(b));
        out->append("[[ ");
        AQL_RETURN_IF_ERROR(Render(e->tab_body(), out));
        out->append(" | ");
        for (size_t j = 0; j < e->tab_rank(); ++j) {
          if (j > 0) out->append(", ");
          out->push_back('\\');
          out->append(names[j]);
          out->append(" < ");
          AQL_RETURN_IF_ERROR(Render(e->tab_bound(j), out));
        }
        out->append(" ]]");
        return Status::OK();
      }
      case ExprKind::kSubscript: {
        out->push_back('(');
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->append(")[");
        const ExprPtr& idx = e->child(1);
        if (idx->is(ExprKind::kTuple)) {
          for (size_t i = 0; i < idx->children().size(); ++i) {
            if (i > 0) out->append(", ");
            AQL_RETURN_IF_ERROR(Render(idx->child(i), out));
          }
        } else {
          AQL_RETURN_IF_ERROR(Render(idx, out));
        }
        out->push_back(']');
        return Status::OK();
      }
      case ExprKind::kDim:
        if (e->rank() == 1) {
          out->append("len!(");
        } else if (e->rank() <= 9) {
          out->append(StrCat("dim", e->rank(), "!("));
        } else {
          return Status::InvalidArgument("dim rank beyond surface range");
        }
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kIndex:
        if (e->rank() > 9) {
          return Status::InvalidArgument("index rank beyond surface range");
        }
        out->append(e->rank() == 1 ? "index!(" : StrCat("index", e->rank(), "!("));
        AQL_RETURN_IF_ERROR(Render(e->child(0), out));
        out->push_back(')');
        return Status::OK();
      case ExprKind::kDense: {
        out->append("[[");
        for (size_t j = 0; j < e->dense_rank(); ++j) {
          if (j > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(Render(e->dense_dim(j), out));
        }
        out->append("; ");
        for (size_t j = 0; j < e->dense_value_count(); ++j) {
          if (j > 0) out->append(", ");
          AQL_RETURN_IF_ERROR(Render(e->dense_value(j), out));
        }
        out->append("]]");
        return Status::OK();
      }
      case ExprKind::kBottom:
        out->append("bottom");
        return Status::OK();
      case ExprKind::kLiteral:
        return RenderLiteral(e->literal(), out);
      case ExprKind::kExternal:
        out->append(e->var_name());
        return Status::OK();
    }
    return Status::Internal("unknown expression kind in unparser");
  }

  std::set<std::string> used_;
  std::map<std::string, std::string> renamed_;
  uint64_t counter_ = 0;
};

}  // namespace

Result<std::string> Unparse(const ExprPtr& e) { return Unparser().Run(e); }

}  // namespace aql
