// Tokens and lexer for the AQL surface syntax (paper §3, §4.2).
//
// Notable lexical points, all taken from the paper's sample sessions:
//   - binding occurrences of variables are written with a backslash: \x
//     (kBindIdent), while uses are bare identifiers; primes are legal in
//     identifiers (WS' in the motivating example);
//   - '!' is function application, '==' is the comprehension binding form
//     (P :== e), '=' is equality, '<-' introduces generators;
//   - '[[' and ']]' delimit array literals and tabulations;
//   - comments are ML-style (* ... *) and nest.

#ifndef AQL_SURFACE_TOKEN_H_
#define AQL_SURFACE_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace aql {

enum class TokenKind {
  kEnd,
  kIdent,       // x, zip_3, WS'
  kBindIdent,   // \x
  kNat,         // 42
  kReal,        // 85.0, 1e-3
  kString,      // "abc"
  // Keywords.
  kFn, kLet, kVal, kIn, kEnd_, kIf, kThen, kElse, kTrue, kFalse,
  kAnd, kOr, kNot, kIsin, kMacro, kReadval, kWriteval, kUsing, kAt, kBottom,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kLArrayBracket, kRArrayBracket,  // [[ ]]
  kComma, kSemi, kBar, kUnderscore, kColon,
  kBang,        // !
  kArrow,       // =>
  kGets,        // <-
  kBind,        // ==
  kEq, kNe, kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;    // identifier name / string contents
  uint64_t nat = 0;
  double real = 0;
  size_t line = 0;
  size_t column = 0;
};

// Tokenizes the whole input. On success the final token has kind kEnd.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace aql

#endif  // AQL_SURFACE_TOKEN_H_
