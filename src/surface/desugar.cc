#include "surface/desugar.h"

#include "base/strings.h"

namespace aql {

namespace {

// Builtin syntactic operators handled at application position. Returns the
// rank for dim/index families, 0 if `name` is not a builtin of that family.
size_t DimRank(const std::string& name) {
  if (name == "len") return 1;
  if (name.size() == 4 && name.compare(0, 3, "dim") == 0 && name[3] >= '2' &&
      name[3] <= '9') {
    return name[3] - '0';
  }
  return 0;
}

size_t IndexRank(const std::string& name) {
  if (name == "index" || name == "index1") return 1;
  if (name.size() == 6 && name.compare(0, 5, "index") == 0 && name[5] >= '2' &&
      name[5] <= '9') {
    return name[5] - '0';
  }
  return 0;
}

bool IsVarNamed(const SurfacePtr& e, const char* name) {
  return e->kind == SurfaceKind::kVar && e->name == name;
}

// pi_i_k (e.g. pi_1_3) and the fst/snd aliases produce structural Proj
// nodes, so the optimizer's product rule can see through them (needed for
// the §5 transpose derivation).
bool ProjSpec(const std::string& name, size_t* i, size_t* k) {
  if (name == "fst") {
    *i = 1;
    *k = 2;
    return true;
  }
  if (name == "snd") {
    *i = 2;
    *k = 2;
    return true;
  }
  if (name.size() == 6 && name.compare(0, 3, "pi_") == 0 && name[4] == '_' &&
      name[3] >= '1' && name[3] <= '9' && name[5] >= '2' && name[5] <= '9') {
    *i = name[3] - '0';
    *k = name[5] - '0';
    return *i <= *k;
  }
  return false;
}

}  // namespace

std::string Desugarer::Fresh(const char* base) {
  return StrCat(base, "$", fresh_counter_++);
}

Result<ExprPtr> Desugarer::Desugar(const SurfacePtr& e) { return DesugarExpr(e); }

Result<ExprPtr> Desugarer::Match(const Pattern& p, ExprPtr scrutinee, ExprPtr success,
                                 const ExprPtr& fail) {
  switch (p.kind) {
    case PatternKind::kBind:
      // Let-bind; the optimizer's beta rule inlines trivial cases.
      return Expr::Let(p.name, std::move(scrutinee), std::move(success));
    case PatternKind::kWildcard:
      return success;
    case PatternKind::kConst:
      return Expr::If(Expr::Cmp(CmpOp::kEq, std::move(scrutinee), Expr::Literal(p.constant)),
                      std::move(success), fail);
    case PatternKind::kUse:
      return Expr::If(Expr::Cmp(CmpOp::kEq, std::move(scrutinee), Expr::Var(p.name)),
                      std::move(success), fail);
    case PatternKind::kTuple: {
      // Bind the scrutinee once, then match fields left to right against
      // projections (Fig. 2 lambda-pattern translation, generalized).
      std::string z = Fresh("t");
      size_t k = p.fields.size();
      ExprPtr body = std::move(success);
      for (size_t i = k; i-- > 0;) {
        AQL_ASSIGN_OR_RETURN(
            body, Match(p.fields[i], Expr::Proj(i + 1, k, Expr::Var(z)), std::move(body),
                        fail));
      }
      return Expr::Let(z, std::move(scrutinee), std::move(body));
    }
  }
  return Status::Internal("unknown pattern kind");
}

ExprPtr Desugarer::DomainOf(const ExprPtr& array_var, size_t rank) {
  if (rank == 1) return Expr::Gen(Expr::Dim(1, array_var));
  // U{ ... U{ {(i1,...,ik)} | ik in gen(dim_k,k a) } ... | i1 in gen(dim_1,k a) }
  std::vector<std::string> vars;
  vars.reserve(rank);
  for (size_t j = 0; j < rank; ++j) vars.push_back(Fresh("d"));
  std::vector<ExprPtr> tuple_fields;
  for (const std::string& v : vars) tuple_fields.push_back(Expr::Var(v));
  ExprPtr body = Expr::Singleton(Expr::Tuple(std::move(tuple_fields)));
  for (size_t j = rank; j-- > 0;) {
    ExprPtr gen = Expr::Gen(Expr::Proj(j + 1, rank, Expr::Dim(rank, array_var)));
    body = Expr::BigUnion(vars[j], std::move(body), std::move(gen));
  }
  return body;
}

Result<ExprPtr> Desugarer::DesugarComp(const SurfacePtr& comp, size_t item_index) {
  if (item_index == comp->items.size()) {
    // {e | } => {e}.
    AQL_ASSIGN_OR_RETURN(ExprPtr head, DesugarExpr(comp->children[0]));
    return Expr::Singleton(std::move(head));
  }
  const CompItem& item = comp->items[item_index];
  ExprPtr empty = Expr::EmptySet();
  switch (item.kind) {
    case CompItem::Kind::kFilter: {
      AQL_ASSIGN_OR_RETURN(ExprPtr cond, DesugarExpr(item.expr));
      AQL_ASSIGN_OR_RETURN(ExprPtr rest, DesugarComp(comp, item_index + 1));
      return Expr::If(std::move(cond), std::move(rest), empty);
    }
    case CompItem::Kind::kBinding: {
      // P == e  =>  P <- {e}: match once; mismatch yields {}.
      AQL_ASSIGN_OR_RETURN(ExprPtr bound, DesugarExpr(item.expr));
      AQL_ASSIGN_OR_RETURN(ExprPtr rest, DesugarComp(comp, item_index + 1));
      return Match(item.pattern, std::move(bound), std::move(rest), empty);
    }
    case CompItem::Kind::kGenerator: {
      AQL_ASSIGN_OR_RETURN(ExprPtr src, DesugarExpr(item.expr));
      AQL_ASSIGN_OR_RETURN(ExprPtr rest, DesugarComp(comp, item_index + 1));
      if (item.pattern.kind == PatternKind::kBind) {
        return Expr::BigUnion(item.pattern.name, std::move(rest), std::move(src));
      }
      std::string z = Fresh("g");
      AQL_ASSIGN_OR_RETURN(ExprPtr body,
                           Match(item.pattern, Expr::Var(z), std::move(rest), empty));
      return Expr::BigUnion(z, std::move(body), std::move(src));
    }
    case CompItem::Kind::kArrayGenerator: {
      // [Pi : Px] <- A  =>  \i <- dom(A), Px <- {A[i]}; the rank of A is
      // read off the index pattern's shape.
      AQL_ASSIGN_OR_RETURN(ExprPtr src, DesugarExpr(item.expr));
      AQL_ASSIGN_OR_RETURN(ExprPtr rest, DesugarComp(comp, item_index + 1));
      size_t rank = item.index_pattern.kind == PatternKind::kTuple
                        ? item.index_pattern.fields.size()
                        : 1;
      std::string a = Fresh("a");
      std::string z = Fresh("i");
      AQL_ASSIGN_OR_RETURN(
          ExprPtr inner,
          Match(item.pattern, Expr::Subscript(Expr::Var(a), Expr::Var(z)), std::move(rest),
                empty));
      AQL_ASSIGN_OR_RETURN(ExprPtr body,
                           Match(item.index_pattern, Expr::Var(z), std::move(inner), empty));
      ExprPtr loop = Expr::BigUnion(z, std::move(body), DomainOf(Expr::Var(a), rank));
      return Expr::Let(a, std::move(src), std::move(loop));
    }
  }
  return Status::Internal("unknown comprehension item kind");
}

Result<ExprPtr> Desugarer::DesugarApp(const SurfacePtr& e) {
  const SurfacePtr& fn = e->children[0];
  const SurfacePtr& arg = e->children[1];
  if (fn->kind == SurfaceKind::kVar) {
    const std::string& name = fn->name;
    if (name == "gen") {
      AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
      return Expr::Gen(std::move(a));
    }
    if (name == "get") {
      AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
      return Expr::Get(std::move(a));
    }
    if (size_t k = DimRank(name); k > 0) {
      AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
      return Expr::Dim(k, std::move(a));
    }
    if (size_t k = IndexRank(name); k > 0) {
      AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
      return Expr::Index(k, std::move(a));
    }
    if (size_t i = 0, k = 0; ProjSpec(name, &i, &k)) {
      AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
      return Expr::Proj(i, k, std::move(a));
    }
  }
  // summap(f)!e  =>  Sum{ f(x) | x in e }.
  if (fn->kind == SurfaceKind::kApp && IsVarNamed(fn->children[0], "summap")) {
    AQL_ASSIGN_OR_RETURN(ExprPtr f, DesugarExpr(fn->children[1]));
    AQL_ASSIGN_OR_RETURN(ExprPtr src, DesugarExpr(arg));
    std::string x = Fresh("s");
    return Expr::Sum(x, Expr::Apply(std::move(f), Expr::Var(x)), std::move(src));
  }
  AQL_ASSIGN_OR_RETURN(ExprPtr f, DesugarExpr(fn));
  AQL_ASSIGN_OR_RETURN(ExprPtr a, DesugarExpr(arg));
  return Expr::Apply(std::move(f), std::move(a));
}

Result<ExprPtr> Desugarer::DesugarExpr(const SurfacePtr& e) {
  switch (e->kind) {
    case SurfaceKind::kVar:
      return Expr::Var(e->name);
    case SurfaceKind::kNatLit:
      return Expr::NatConst(e->nat);
    case SurfaceKind::kRealLit:
      return Expr::RealConst(e->real);
    case SurfaceKind::kStrLit:
      return Expr::StrConst(e->str);
    case SurfaceKind::kBoolLit:
      return Expr::BoolConst(e->boolean);
    case SurfaceKind::kBottomLit:
      return Expr::Bottom();
    case SurfaceKind::kTuple: {
      std::vector<ExprPtr> fields;
      fields.reserve(e->children.size());
      for (const SurfacePtr& c : e->children) {
        AQL_ASSIGN_OR_RETURN(ExprPtr f, DesugarExpr(c));
        fields.push_back(std::move(f));
      }
      return Expr::Tuple(std::move(fields));
    }
    case SurfaceKind::kSetLit: {
      // {e1,...,en} => {e1} U ... U {en} (§3).
      if (e->children.empty()) return Expr::EmptySet();
      ExprPtr acc;
      for (const SurfacePtr& c : e->children) {
        AQL_ASSIGN_OR_RETURN(ExprPtr x, DesugarExpr(c));
        ExprPtr single = Expr::Singleton(std::move(x));
        acc = acc ? Expr::Union(std::move(acc), std::move(single)) : std::move(single);
      }
      return acc;
    }
    case SurfaceKind::kComp:
      return DesugarComp(e, 0);
    case SurfaceKind::kArrayLit: {
      // 1-d literal as a dense literal with dimension n.
      std::vector<ExprPtr> values;
      values.reserve(e->children.size());
      for (const SurfacePtr& c : e->children) {
        AQL_ASSIGN_OR_RETURN(ExprPtr v, DesugarExpr(c));
        values.push_back(std::move(v));
      }
      std::vector<ExprPtr> dims{Expr::NatConst(values.size())};
      return Expr::Dense(1, std::move(dims), std::move(values));
    }
    case SurfaceKind::kArrayDense: {
      std::vector<ExprPtr> dims;
      std::vector<ExprPtr> values;
      for (size_t i = 0; i < e->children.size(); ++i) {
        AQL_ASSIGN_OR_RETURN(ExprPtr c, DesugarExpr(e->children[i]));
        if (i < e->dense_rank) {
          dims.push_back(std::move(c));
        } else {
          values.push_back(std::move(c));
        }
      }
      return Expr::Dense(e->dense_rank, std::move(dims), std::move(values));
    }
    case SurfaceKind::kTab: {
      AQL_ASSIGN_OR_RETURN(ExprPtr body, DesugarExpr(e->children[0]));
      std::vector<ExprPtr> bounds;
      for (size_t i = 1; i < e->children.size(); ++i) {
        AQL_ASSIGN_OR_RETURN(ExprPtr b, DesugarExpr(e->children[i]));
        bounds.push_back(std::move(b));
      }
      return Expr::Tab(e->tab_vars, std::move(body), std::move(bounds));
    }
    case SurfaceKind::kApp:
      return DesugarApp(e);
    case SurfaceKind::kFn: {
      std::string z = Fresh("p");
      AQL_ASSIGN_OR_RETURN(ExprPtr body, DesugarExpr(e->children[0]));
      // Trivial single-bind pattern keeps its own name for readability.
      const Pattern& p = e->patterns[0];
      if (p.kind == PatternKind::kBind) {
        return Expr::Lambda(p.name, std::move(body));
      }
      AQL_ASSIGN_OR_RETURN(ExprPtr matched,
                           Match(p, Expr::Var(z), std::move(body), Expr::Bottom()));
      return Expr::Lambda(z, std::move(matched));
    }
    case SurfaceKind::kLet: {
      // Multiple declarations nest left to right (§3).
      AQL_ASSIGN_OR_RETURN(ExprPtr body, DesugarExpr(e->children.back()));
      for (size_t i = e->patterns.size(); i-- > 0;) {
        AQL_ASSIGN_OR_RETURN(ExprPtr bound, DesugarExpr(e->children[i]));
        AQL_ASSIGN_OR_RETURN(
            body, Match(e->patterns[i], std::move(bound), std::move(body), Expr::Bottom()));
      }
      return body;
    }
    case SurfaceKind::kIf: {
      AQL_ASSIGN_OR_RETURN(ExprPtr c, DesugarExpr(e->children[0]));
      AQL_ASSIGN_OR_RETURN(ExprPtr t, DesugarExpr(e->children[1]));
      AQL_ASSIGN_OR_RETURN(ExprPtr f, DesugarExpr(e->children[2]));
      return Expr::If(std::move(c), std::move(t), std::move(f));
    }
    case SurfaceKind::kNot: {
      AQL_ASSIGN_OR_RETURN(ExprPtr inner, DesugarExpr(e->children[0]));
      return Expr::If(std::move(inner), Expr::BoolConst(false), Expr::BoolConst(true));
    }
    case SurfaceKind::kBinOp: {
      AQL_ASSIGN_OR_RETURN(ExprPtr l, DesugarExpr(e->children[0]));
      AQL_ASSIGN_OR_RETURN(ExprPtr r, DesugarExpr(e->children[1]));
      switch (e->op) {
        case SurfaceBinOp::kAnd:
          return Expr::If(std::move(l), std::move(r), Expr::BoolConst(false));
        case SurfaceBinOp::kOr:
          return Expr::If(std::move(l), Expr::BoolConst(true), std::move(r));
        case SurfaceBinOp::kEq: return Expr::Cmp(CmpOp::kEq, std::move(l), std::move(r));
        case SurfaceBinOp::kNe: return Expr::Cmp(CmpOp::kNe, std::move(l), std::move(r));
        case SurfaceBinOp::kLt: return Expr::Cmp(CmpOp::kLt, std::move(l), std::move(r));
        case SurfaceBinOp::kLe: return Expr::Cmp(CmpOp::kLe, std::move(l), std::move(r));
        case SurfaceBinOp::kGt: return Expr::Cmp(CmpOp::kGt, std::move(l), std::move(r));
        case SurfaceBinOp::kGe: return Expr::Cmp(CmpOp::kGe, std::move(l), std::move(r));
        case SurfaceBinOp::kIsin:
          return Expr::Apply(Expr::External("member"),
                             Expr::Tuple({std::move(l), std::move(r)}));
        case SurfaceBinOp::kAdd:
          return Expr::Arith(ArithOp::kAdd, std::move(l), std::move(r));
        case SurfaceBinOp::kSub:
          return Expr::Arith(ArithOp::kMonus, std::move(l), std::move(r));
        case SurfaceBinOp::kMul:
          return Expr::Arith(ArithOp::kMul, std::move(l), std::move(r));
        case SurfaceBinOp::kDiv:
          return Expr::Arith(ArithOp::kDiv, std::move(l), std::move(r));
        case SurfaceBinOp::kMod:
          return Expr::Arith(ArithOp::kMod, std::move(l), std::move(r));
      }
      return Status::Internal("unknown binop");
    }
    case SurfaceKind::kSubscript: {
      AQL_ASSIGN_OR_RETURN(ExprPtr arr, DesugarExpr(e->children[0]));
      if (e->children.size() == 2) {
        AQL_ASSIGN_OR_RETURN(ExprPtr idx, DesugarExpr(e->children[1]));
        return Expr::Subscript(std::move(arr), std::move(idx));
      }
      std::vector<ExprPtr> indices;
      for (size_t i = 1; i < e->children.size(); ++i) {
        AQL_ASSIGN_OR_RETURN(ExprPtr idx, DesugarExpr(e->children[i]));
        indices.push_back(std::move(idx));
      }
      return Expr::Subscript(std::move(arr), Expr::Tuple(std::move(indices)));
    }
  }
  return Status::Internal("unknown surface expression kind");
}

}  // namespace aql
