#include "surface/parser.h"

#include "base/strings.h"
#include "surface/token.h"

namespace aql {

namespace {

std::shared_ptr<SurfaceExpr> NewNode(SurfaceKind kind) {
  auto n = std::make_shared<SurfaceExpr>();
  n->kind = kind;
  return n;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SurfacePtr> ParseWholeExpression() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr e, ParseExpr());
    if (!At(TokenKind::kEnd)) {
      return Error(StrCat("unexpected ", TokenKindName(Peek().kind), " after expression"));
    }
    return e;
  }

  Result<std::vector<Statement>> ParseStatements() {
    std::vector<Statement> out;
    while (!At(TokenKind::kEnd)) {
      AQL_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      out.push_back(std::move(s));
    }
    return out;
  }

 private:
  // ---- Token plumbing ----
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind k) const { return Peek().kind == k; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool ConsumeIf(TokenKind k) {
    if (At(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(std::string message) const {
    return Status::ParseError(StrCat(message, " at line ", Peek().line));
  }
  Status Expect(TokenKind k) {
    if (!ConsumeIf(k)) {
      return Error(StrCat("expected ", TokenKindName(k), ", found ",
                          TokenKindName(Peek().kind)));
    }
    return Status::OK();
  }

  // Adjacent closers from nested subscripts lex greedily as ']]' (the C++
  // '>>' wart). When a single ']' is required, split the token in place.
  Status ExpectRBracket() {
    if (At(TokenKind::kRArrayBracket)) {
      tokens_[pos_].kind = TokenKind::kRBracket;
      return Status::OK();  // the remaining ']' stays as the current token
    }
    return Expect(TokenKind::kRBracket);
  }

  // ---- Statements ----
  Result<Statement> ParseStatement() {
    Statement s;
    if (ConsumeIf(TokenKind::kVal)) {
      s.kind = Statement::Kind::kVal;
      AQL_ASSIGN_OR_RETURN(s.name, ParseBindName());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      AQL_ASSIGN_OR_RETURN(s.expr, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      return s;
    }
    if (ConsumeIf(TokenKind::kMacro)) {
      s.kind = Statement::Kind::kMacro;
      AQL_ASSIGN_OR_RETURN(s.name, ParseBindName());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
      AQL_ASSIGN_OR_RETURN(s.expr, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      return s;
    }
    if (ConsumeIf(TokenKind::kReadval)) {
      s.kind = Statement::Kind::kReadval;
      AQL_ASSIGN_OR_RETURN(s.name, ParseBindName());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kUsing));
      if (!At(TokenKind::kIdent)) return Error("expected reader name after 'using'");
      s.reader = Advance().text;
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kAt));
      AQL_ASSIGN_OR_RETURN(s.at_args, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      return s;
    }
    if (ConsumeIf(TokenKind::kWriteval)) {
      s.kind = Statement::Kind::kWriteval;
      AQL_ASSIGN_OR_RETURN(s.expr, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kUsing));
      if (!At(TokenKind::kIdent)) return Error("expected writer name after 'using'");
      s.reader = Advance().text;
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kAt));
      AQL_ASSIGN_OR_RETURN(s.at_args, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
      return s;
    }
    s.kind = Statement::Kind::kQuery;
    AQL_ASSIGN_OR_RETURN(s.expr, ParseExpr());
    AQL_RETURN_IF_ERROR(Expect(TokenKind::kSemi));
    return s;
  }

  Result<std::string> ParseBindName() {
    if (At(TokenKind::kBindIdent) || At(TokenKind::kIdent)) return Advance().text;
    return Error("expected a name (optionally '\\'-prefixed)");
  }

  // ---- Patterns ----
  Result<Pattern> ParsePattern() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kBindIdent:
        return Pattern::Bind(Advance().text);
      case TokenKind::kUnderscore:
        Advance();
        return Pattern::Wildcard();
      case TokenKind::kIdent:
        return Pattern::Use(Advance().text);
      case TokenKind::kNat:
        return Pattern::Const(Value::Nat(Advance().nat));
      case TokenKind::kReal:
        return Pattern::Const(Value::Real(Advance().real));
      case TokenKind::kString:
        return Pattern::Const(Value::Str(Advance().text));
      case TokenKind::kTrue:
        Advance();
        return Pattern::Const(Value::Bool(true));
      case TokenKind::kFalse:
        Advance();
        return Pattern::Const(Value::Bool(false));
      case TokenKind::kLParen: {
        Advance();
        std::vector<Pattern> fields;
        AQL_ASSIGN_OR_RETURN(Pattern first, ParsePattern());
        fields.push_back(std::move(first));
        while (ConsumeIf(TokenKind::kComma)) {
          AQL_ASSIGN_OR_RETURN(Pattern p, ParsePattern());
          fields.push_back(std::move(p));
        }
        AQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        if (fields.size() == 1) return std::move(fields[0]);
        return Pattern::Tuple(std::move(fields));
      }
      default:
        return Error(StrCat("expected a pattern, found ", TokenKindName(t.kind)));
    }
  }

  // ---- Expressions ----
  Result<SurfacePtr> ParseExpr() {
    if (ConsumeIf(TokenKind::kFn)) {
      AQL_ASSIGN_OR_RETURN(Pattern p, ParsePattern());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
      AQL_ASSIGN_OR_RETURN(SurfacePtr body, ParseExpr());
      auto n = NewNode(SurfaceKind::kFn);
      n->patterns.push_back(std::move(p));
      n->children.push_back(std::move(body));
      return SurfacePtr(n);
    }
    if (ConsumeIf(TokenKind::kLet)) {
      auto n = NewNode(SurfaceKind::kLet);
      while (ConsumeIf(TokenKind::kVal)) {
        AQL_ASSIGN_OR_RETURN(Pattern p, ParsePattern());
        AQL_RETURN_IF_ERROR(Expect(TokenKind::kEq));
        AQL_ASSIGN_OR_RETURN(SurfacePtr bound, ParseExpr());
        n->patterns.push_back(std::move(p));
        n->children.push_back(std::move(bound));
      }
      if (n->patterns.empty()) return Error("let block needs at least one 'val'");
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kIn));
      AQL_ASSIGN_OR_RETURN(SurfacePtr body, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kEnd_));
      n->children.push_back(std::move(body));
      return SurfacePtr(n);
    }
    if (ConsumeIf(TokenKind::kIf)) {
      auto n = NewNode(SurfaceKind::kIf);
      AQL_ASSIGN_OR_RETURN(SurfacePtr c, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kThen));
      AQL_ASSIGN_OR_RETURN(SurfacePtr t, ParseExpr());
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kElse));
      AQL_ASSIGN_OR_RETURN(SurfacePtr e, ParseExpr());
      n->children = {std::move(c), std::move(t), std::move(e)};
      return SurfacePtr(n);
    }
    return ParseOr();
  }

  SurfacePtr MakeBinOp(SurfaceBinOp op, SurfacePtr l, SurfacePtr r) {
    auto n = NewNode(SurfaceKind::kBinOp);
    n->op = op;
    n->children = {std::move(l), std::move(r)};
    return n;
  }

  Result<SurfacePtr> ParseOr() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParseAnd());
    while (ConsumeIf(TokenKind::kOr)) {
      AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParseAnd());
      lhs = MakeBinOp(SurfaceBinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SurfacePtr> ParseAnd() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParseCmp());
    while (ConsumeIf(TokenKind::kAnd)) {
      AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParseCmp());
      lhs = MakeBinOp(SurfaceBinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SurfacePtr> ParseCmp() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParseAdd());
    SurfaceBinOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = SurfaceBinOp::kEq; break;
      case TokenKind::kNe: op = SurfaceBinOp::kNe; break;
      case TokenKind::kLt: op = SurfaceBinOp::kLt; break;
      case TokenKind::kLe: op = SurfaceBinOp::kLe; break;
      case TokenKind::kGt: op = SurfaceBinOp::kGt; break;
      case TokenKind::kGe: op = SurfaceBinOp::kGe; break;
      case TokenKind::kIsin: op = SurfaceBinOp::kIsin; break;
      default: return lhs;
    }
    Advance();
    AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParseAdd());
    return MakeBinOp(op, std::move(lhs), std::move(rhs));
  }

  Result<SurfacePtr> ParseAdd() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParseMul());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      SurfaceBinOp op = At(TokenKind::kPlus) ? SurfaceBinOp::kAdd : SurfaceBinOp::kSub;
      Advance();
      AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParseMul());
      lhs = MakeBinOp(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SurfacePtr> ParseMul() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParseApp());
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) || At(TokenKind::kPercent)) {
      SurfaceBinOp op = At(TokenKind::kStar)    ? SurfaceBinOp::kMul
                        : At(TokenKind::kSlash) ? SurfaceBinOp::kDiv
                                                : SurfaceBinOp::kMod;
      Advance();
      AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParseApp());
      lhs = MakeBinOp(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<SurfacePtr> ParseApp() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr lhs, ParsePostfix());
    while (ConsumeIf(TokenKind::kBang)) {
      AQL_ASSIGN_OR_RETURN(SurfacePtr rhs, ParsePostfix());
      auto n = NewNode(SurfaceKind::kApp);
      n->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(n);
    }
    return lhs;
  }

  Result<SurfacePtr> ParsePostfix() {
    AQL_ASSIGN_OR_RETURN(SurfacePtr e, ParseAtom());
    while (true) {
      if (At(TokenKind::kLBracket)) {
        Advance();
        auto n = NewNode(SurfaceKind::kSubscript);
        n->children.push_back(std::move(e));
        AQL_ASSIGN_OR_RETURN(SurfacePtr i0, ParseExpr());
        n->children.push_back(std::move(i0));
        while (ConsumeIf(TokenKind::kComma)) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr ix, ParseExpr());
          n->children.push_back(std::move(ix));
        }
        AQL_RETURN_IF_ERROR(ExpectRBracket());
        e = std::move(n);
      } else if (At(TokenKind::kLParen)) {
        // Juxtaposition application with a parenthesized argument, the
        // paper's summap(f)!e style.
        AQL_ASSIGN_OR_RETURN(SurfacePtr arg, ParseAtom());
        auto n = NewNode(SurfaceKind::kApp);
        n->children = {std::move(e), std::move(arg)};
        e = std::move(n);
      } else {
        break;
      }
    }
    return e;
  }

  Result<SurfacePtr> ParseAtom() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kNat: {
        auto n = NewNode(SurfaceKind::kNatLit);
        n->nat = Advance().nat;
        return SurfacePtr(n);
      }
      case TokenKind::kReal: {
        auto n = NewNode(SurfaceKind::kRealLit);
        n->real = Advance().real;
        return SurfacePtr(n);
      }
      case TokenKind::kString: {
        auto n = NewNode(SurfaceKind::kStrLit);
        n->str = Advance().text;
        return SurfacePtr(n);
      }
      case TokenKind::kTrue:
      case TokenKind::kFalse: {
        auto n = NewNode(SurfaceKind::kBoolLit);
        n->boolean = Advance().kind == TokenKind::kTrue;
        return SurfacePtr(n);
      }
      case TokenKind::kBottom:
        Advance();
        return SurfacePtr(NewNode(SurfaceKind::kBottomLit));
      case TokenKind::kIdent: {
        auto n = NewNode(SurfaceKind::kVar);
        n->name = Advance().text;
        return SurfacePtr(n);
      }
      case TokenKind::kNot: {
        Advance();
        AQL_ASSIGN_OR_RETURN(SurfacePtr inner, ParseAtom());
        auto n = NewNode(SurfaceKind::kNot);
        n->children.push_back(std::move(inner));
        return SurfacePtr(n);
      }
      case TokenKind::kLParen: {
        Advance();
        AQL_ASSIGN_OR_RETURN(SurfacePtr first, ParseExpr());
        if (ConsumeIf(TokenKind::kRParen)) return first;
        auto n = NewNode(SurfaceKind::kTuple);
        n->children.push_back(std::move(first));
        while (ConsumeIf(TokenKind::kComma)) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr next, ParseExpr());
          n->children.push_back(std::move(next));
        }
        AQL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return SurfacePtr(n);
      }
      case TokenKind::kLBrace:
        return ParseBraces();
      case TokenKind::kLArrayBracket:
        return ParseArrayBrackets();
      case TokenKind::kFn:
      case TokenKind::kLet:
      case TokenKind::kIf:
        // Allow these in atom position too (e.g. summap(fn \i => ...)!s).
        return ParseExpr();
      default:
        return Error(StrCat("unexpected ", TokenKindName(t.kind), " in expression"));
    }
  }

  // '{' already peeked. Set literal or comprehension.
  Result<SurfacePtr> ParseBraces() {
    Advance();  // '{'
    if (ConsumeIf(TokenKind::kRBrace)) return SurfacePtr(NewNode(SurfaceKind::kSetLit));
    AQL_ASSIGN_OR_RETURN(SurfacePtr head, ParseExpr());
    if (ConsumeIf(TokenKind::kBar)) {
      auto n = NewNode(SurfaceKind::kComp);
      n->children.push_back(std::move(head));
      while (true) {
        AQL_ASSIGN_OR_RETURN(CompItem item, ParseCompItem());
        n->items.push_back(std::move(item));
        if (!ConsumeIf(TokenKind::kComma)) break;
      }
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
      return SurfacePtr(n);
    }
    auto n = NewNode(SurfaceKind::kSetLit);
    n->children.push_back(std::move(head));
    while (ConsumeIf(TokenKind::kComma)) {
      AQL_ASSIGN_OR_RETURN(SurfacePtr next, ParseExpr());
      n->children.push_back(std::move(next));
    }
    AQL_RETURN_IF_ERROR(Expect(TokenKind::kRBrace));
    return SurfacePtr(n);
  }

  // One comprehension item: generator, array generator, binding, or filter.
  // A generator/binding starts with a pattern followed by '<-' or '=='; we
  // detect that with bounded backtracking.
  Result<CompItem> ParseCompItem() {
    size_t saved = pos_;
    // Array generator: '[' P ':' P ']' '<-' e
    if (At(TokenKind::kLBracket)) {
      Advance();
      auto index_pat = ParsePattern();
      if (index_pat.ok() && ConsumeIf(TokenKind::kColon)) {
        auto value_pat = ParsePattern();
        if (value_pat.ok() && ConsumeIf(TokenKind::kRBracket) &&
            ConsumeIf(TokenKind::kGets)) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr src, ParseExpr());
          CompItem item;
          item.kind = CompItem::Kind::kArrayGenerator;
          item.index_pattern = std::move(index_pat).value();
          item.pattern = std::move(value_pat).value();
          item.expr = std::move(src);
          return item;
        }
      }
      pos_ = saved;
    }
    // Set generator / binding: P '<-' e  |  P '==' e.
    {
      auto pat = ParsePattern();
      if (pat.ok()) {
        if (ConsumeIf(TokenKind::kGets)) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr src, ParseExpr());
          CompItem item;
          item.kind = CompItem::Kind::kGenerator;
          item.pattern = std::move(pat).value();
          item.expr = std::move(src);
          return item;
        }
        if (ConsumeIf(TokenKind::kBind)) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr bound, ParseExpr());
          CompItem item;
          item.kind = CompItem::Kind::kBinding;
          item.pattern = std::move(pat).value();
          item.expr = std::move(bound);
          return item;
        }
      }
      pos_ = saved;
    }
    // Otherwise: a boolean filter.
    AQL_ASSIGN_OR_RETURN(SurfacePtr filter, ParseExpr());
    CompItem item;
    item.kind = CompItem::Kind::kFilter;
    item.expr = std::move(filter);
    return item;
  }

  // '[[' already peeked: tabulation, dense literal, or 1-d literal.
  Result<SurfacePtr> ParseArrayBrackets() {
    Advance();  // '[['
    if (ConsumeIf(TokenKind::kRArrayBracket)) {
      return SurfacePtr(NewNode(SurfaceKind::kArrayLit));  // [[]]: empty 1-d
    }
    AQL_ASSIGN_OR_RETURN(SurfacePtr first, ParseExpr());
    if (ConsumeIf(TokenKind::kBar)) {
      // Tabulation: [[ e | \i1 < e1, ..., \ik < ek ]].
      auto n = NewNode(SurfaceKind::kTab);
      n->children.push_back(std::move(first));
      while (true) {
        if (!At(TokenKind::kBindIdent)) {
          return Error("expected '\\i' binder in array tabulation");
        }
        n->tab_vars.push_back(Advance().text);
        AQL_RETURN_IF_ERROR(Expect(TokenKind::kLt));
        AQL_ASSIGN_OR_RETURN(SurfacePtr bound, ParseExpr());
        n->children.push_back(std::move(bound));
        if (!ConsumeIf(TokenKind::kComma)) break;
      }
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kRArrayBracket));
      return SurfacePtr(n);
    }
    std::vector<SurfacePtr> items;
    items.push_back(std::move(first));
    while (ConsumeIf(TokenKind::kComma)) {
      AQL_ASSIGN_OR_RETURN(SurfacePtr next, ParseExpr());
      items.push_back(std::move(next));
    }
    if (ConsumeIf(TokenKind::kSemi)) {
      // Dense literal: the items so far are the dimensions.
      auto n = NewNode(SurfaceKind::kArrayDense);
      n->dense_rank = items.size();
      n->children = std::move(items);
      if (!At(TokenKind::kRArrayBracket)) {
        while (true) {
          AQL_ASSIGN_OR_RETURN(SurfacePtr v, ParseExpr());
          n->children.push_back(std::move(v));
          if (!ConsumeIf(TokenKind::kComma)) break;
        }
      }
      AQL_RETURN_IF_ERROR(Expect(TokenKind::kRArrayBracket));
      return SurfacePtr(n);
    }
    AQL_RETURN_IF_ERROR(Expect(TokenKind::kRArrayBracket));
    auto n = NewNode(SurfaceKind::kArrayLit);
    n->children = std::move(items);
    return SurfacePtr(n);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SurfacePtr> ParseExpression(std::string_view source) {
  AQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseWholeExpression();
}

Result<std::vector<Statement>> ParseProgram(std::string_view source) {
  AQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseStatements();
}

}  // namespace aql
