#include "surface/token.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

#include "base/strings.h"

namespace aql {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kBindIdent: return "binding identifier";
    case TokenKind::kNat: return "nat literal";
    case TokenKind::kReal: return "real literal";
    case TokenKind::kString: return "string literal";
    case TokenKind::kFn: return "'fn'";
    case TokenKind::kLet: return "'let'";
    case TokenKind::kVal: return "'val'";
    case TokenKind::kIn: return "'in'";
    case TokenKind::kEnd_: return "'end'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kThen: return "'then'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kTrue: return "'true'";
    case TokenKind::kFalse: return "'false'";
    case TokenKind::kAnd: return "'and'";
    case TokenKind::kOr: return "'or'";
    case TokenKind::kNot: return "'not'";
    case TokenKind::kIsin: return "'isin'";
    case TokenKind::kMacro: return "'macro'";
    case TokenKind::kReadval: return "'readval'";
    case TokenKind::kWriteval: return "'writeval'";
    case TokenKind::kUsing: return "'using'";
    case TokenKind::kAt: return "'at'";
    case TokenKind::kBottom: return "'bottom'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLArrayBracket: return "'[['";
    case TokenKind::kRArrayBracket: return "']]'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kBar: return "'|'";
    case TokenKind::kUnderscore: return "'_'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kArrow: return "'=>'";
    case TokenKind::kGets: return "'<-'";
    case TokenKind::kBind: return "'=='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'<>'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
  }
  return "<unknown>";
}

namespace {

const std::unordered_map<std::string, TokenKind>& Keywords() {
  static const auto* kMap = new std::unordered_map<std::string, TokenKind>{
      {"fn", TokenKind::kFn},       {"let", TokenKind::kLet},
      {"val", TokenKind::kVal},     {"in", TokenKind::kIn},
      {"end", TokenKind::kEnd_},    {"if", TokenKind::kIf},
      {"then", TokenKind::kThen},   {"else", TokenKind::kElse},
      {"true", TokenKind::kTrue},   {"false", TokenKind::kFalse},
      {"and", TokenKind::kAnd},     {"or", TokenKind::kOr},
      {"not", TokenKind::kNot},     {"isin", TokenKind::kIsin},
      {"macro", TokenKind::kMacro}, {"readval", TokenKind::kReadval},
      {"writeval", TokenKind::kWriteval},
      {"using", TokenKind::kUsing}, {"at", TokenKind::kAt},
      {"bottom", TokenKind::kBottom},
  };
  return *kMap;
}

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      AQL_RETURN_IF_ERROR(SkipSpaceAndComments());
      if (pos_ >= src_.size()) break;
      AQL_ASSIGN_OR_RETURN(Token t, Next());
      tokens.push_back(std::move(t));
    }
    tokens.push_back(Tok(TokenKind::kEnd));
    return tokens;
  }

 private:
  Token Tok(TokenKind kind, std::string text = {}) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.column = col_;
    return t;
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Status SkipSpaceAndComments() {
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '(' && Peek(1) == '*') {
        size_t start_line = line_;
        Advance();
        Advance();
        int depth = 1;
        while (depth > 0) {
          if (pos_ >= src_.size()) {
            return Status::LexError(
                StrCat("unterminated comment starting at line ", start_line));
          }
          if (Peek() == '(' && Peek(1) == '*') {
            Advance();
            Advance();
            ++depth;
          } else if (Peek() == '*' && Peek(1) == ')') {
            Advance();
            Advance();
            --depth;
          } else {
            Advance();
          }
        }
      } else {
        break;
      }
    }
    return Status::OK();
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentCont(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
  }

  Result<Token> Next() {
    char c = Peek();
    if (c == '\\') {
      Advance();
      if (!IsIdentStart(Peek())) {
        return Status::LexError(StrCat("expected identifier after '\\' at line ", line_));
      }
      return Tok(TokenKind::kBindIdent, LexIdentText());
    }
    if (IsIdentStart(c)) {
      std::string word = LexIdentText();
      if (word == "_") return Tok(TokenKind::kUnderscore);
      auto it = Keywords().find(word);
      if (it != Keywords().end()) return Tok(it->second);
      return Tok(TokenKind::kIdent, std::move(word));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
    if (c == '"') return LexString();
    Advance();
    switch (c) {
      case '(': return Tok(TokenKind::kLParen);
      case ')': return Tok(TokenKind::kRParen);
      case '{': return Tok(TokenKind::kLBrace);
      case '}': return Tok(TokenKind::kRBrace);
      case '[':
        if (Peek() == '[') {
          Advance();
          return Tok(TokenKind::kLArrayBracket);
        }
        return Tok(TokenKind::kLBracket);
      case ']':
        if (Peek() == ']') {
          Advance();
          return Tok(TokenKind::kRArrayBracket);
        }
        return Tok(TokenKind::kRBracket);
      case ',': return Tok(TokenKind::kComma);
      case ';': return Tok(TokenKind::kSemi);
      case '|': return Tok(TokenKind::kBar);
      case ':': return Tok(TokenKind::kColon);
      case '!': return Tok(TokenKind::kBang);
      case '+': return Tok(TokenKind::kPlus);
      case '-': return Tok(TokenKind::kMinus);
      case '*': return Tok(TokenKind::kStar);
      case '/': return Tok(TokenKind::kSlash);
      case '%': return Tok(TokenKind::kPercent);
      case '=':
        if (Peek() == '=') {
          Advance();
          return Tok(TokenKind::kBind);
        }
        if (Peek() == '>') {
          Advance();
          return Tok(TokenKind::kArrow);
        }
        return Tok(TokenKind::kEq);
      case '<':
        if (Peek() == '-') {
          Advance();
          return Tok(TokenKind::kGets);
        }
        if (Peek() == '=') {
          Advance();
          return Tok(TokenKind::kLe);
        }
        if (Peek() == '>') {
          Advance();
          return Tok(TokenKind::kNe);
        }
        return Tok(TokenKind::kLt);
      case '>':
        if (Peek() == '=') {
          Advance();
          return Tok(TokenKind::kGe);
        }
        return Tok(TokenKind::kGt);
      default:
        return Status::LexError(
            StrCat("unexpected character '", std::string(1, c), "' at line ", line_));
    }
  }

  std::string LexIdentText() {
    std::string out;
    while (pos_ < src_.size() && IsIdentCont(Peek())) out.push_back(Advance());
    return out;
  }

  Result<Token> LexNumber() {
    std::string digits;
    bool is_real = false;
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits.push_back(Advance());
      } else if (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
        is_real = true;
        digits.push_back(Advance());
      } else if ((c == 'e' || c == 'E') &&
                 (std::isdigit(static_cast<unsigned char>(Peek(1))) ||
                  ((Peek(1) == '+' || Peek(1) == '-') &&
                   std::isdigit(static_cast<unsigned char>(Peek(2)))))) {
        is_real = true;
        digits.push_back(Advance());
        if (Peek() == '+' || Peek() == '-') digits.push_back(Advance());
      } else {
        break;
      }
    }
    Token t = Tok(is_real ? TokenKind::kReal : TokenKind::kNat);
    if (is_real) {
      t.real = std::strtod(digits.c_str(), nullptr);
    } else {
      t.nat = std::strtoull(digits.c_str(), nullptr, 10);
    }
    return t;
  }

  Result<Token> LexString() {
    Advance();  // opening quote
    std::string out;
    while (pos_ < src_.size() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && pos_ < src_.size()) {
        char e = Advance();
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          default:
            return Status::LexError(StrCat("bad string escape '\\", std::string(1, e),
                                           "' at line ", line_));
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= src_.size()) {
      return Status::LexError(StrCat("unterminated string at line ", line_));
    }
    Advance();  // closing quote
    return Tok(TokenKind::kString, std::move(out));
  }

  std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) { return Lexer(source).Run(); }

}  // namespace aql
