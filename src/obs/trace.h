// aql::obs — query-lifecycle tracing and profiling.
//
// The paper's efficiency claims (§4.1 compiled evaluation, §5 optimizer
// phases) are only checkable when we can see where a query spends its
// time. This layer threads hierarchical, RAII spans through the whole
// parse → desugar → typecheck → optimize → compile → exec pipeline:
//
//   obs::Span span("query", "typecheck");     // starts a steady clock
//   span.AddCount("nodes", tree_size);        // attach statistics
//   // ... destructor records duration and emits a SpanRecord
//
// Two independent consumers, both off by default:
//
//   1. The process-wide Tracer sink (AQL_TRACE=1, or Tracer::SetEnabled,
//      or ServiceConfig::trace / the REPL's `:trace on`). Finished spans
//      from every thread accumulate in a bounded, mutex-protected buffer
//      and can be exported as Chrome trace-event JSON ("chrome://tracing"
//      / Perfetto `Load trace`), automatically at process exit when
//      AQL_TRACE_FILE=path is set.
//
//   2. A thread-local TraceCapture, which collects just the spans of the
//      current thread — one query — for System::Profile / the REPL's
//      `:profile <expr>` and the service's slow-query log. A capture
//      activates span recording on its thread even when the global
//      tracer is disabled.
//
// Overhead contract: when neither consumer is active, constructing a Span
// is one relaxed atomic load plus one thread-local load — no clock read,
// no allocation (bench/bench_obs.cc pins this; see docs/OBS.md for
// numbers). Span hierarchy is per thread: a span's parent is the youngest
// span still open on the same thread. Helper threads inside a parallel
// loop therefore start their own roots; the exec layer instead annotates
// its ParallelFor span with chunk/helper counters (exec/parallel.cc).
//
// Thread-safety: Tracer is safe to use from any thread. A Span and a
// TraceCapture must be constructed and destroyed on one thread (they are
// scoped locals by design); Span::AddCount may be called from the owning
// thread only.

#ifndef AQL_OBS_TRACE_H_
#define AQL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/sync.h"

namespace aql {
namespace obs {

// One finished span. start_us is relative to the tracer epoch (process
// start), so records from different threads share one timeline.
struct SpanRecord {
  std::string name;  // e.g. "opt.normalization", "exec.parallel_for"
  std::string cat;   // subsystem: "query", "opt", "exec", "io", ...
  uint64_t id = 0;         // unique within the process
  uint64_t parent_id = 0;  // 0 = root (no enclosing span on this thread)
  uint64_t tid = 0;        // small per-thread ordinal, not the OS id
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  std::string detail;  // free-form note (e.g. a subslab shape)
  // Accumulated statistics: ("chunks", 12), ("rule_us/tab_beta", 57), ...
  std::vector<std::pair<std::string, uint64_t>> counters;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
// Non-null while a TraceCapture is installed on this thread.
extern thread_local void* g_tls_capture;
}  // namespace internal

// True when spans constructed on this thread should record: the global
// tracer is on, or a TraceCapture is installed here. This is the
// fast-path check inlined into every Span constructor.
inline bool TracingActive() {
  return internal::g_tls_capture != nullptr ||
         internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Process-wide collector of finished spans.
class Tracer {
 public:
  // The singleton reads AQL_TRACE / AQL_TRACE_FILE on first use; a set
  // AQL_TRACE_FILE implies enabled and registers an at-exit export.
  static Tracer& Get();

  void SetEnabled(bool on) {
    internal::g_trace_enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  // Appends to the sink (no-op when the global tracer is disabled; spans
  // inside a TraceCapture call this only when the tracer is also on).
  void Emit(const SpanRecord& rec);

  // Copies the sink contents (records stay in the sink). Drain() empties.
  std::vector<SpanRecord> Snapshot() const;
  std::vector<SpanRecord> Drain();
  // Records discarded because the sink was at capacity (kMaxRecords).
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  // Chrome trace-event JSON (the "traceEvents" array-of-objects format,
  // one complete "X" event per span) of the current sink contents.
  std::string ExportChromeJson() const;
  // ExportChromeJson to a file. OK even with an empty sink.
  Status WriteChromeJson(const std::string& path) const;

  // Microseconds since the tracer epoch, monotonic.
  uint64_t NowUs() const;

  // Bound on retained records; beyond it new records are counted dropped.
  static constexpr size_t kMaxRecords = 1 << 20;

 private:
  Tracer();

  mutable Mutex mu_{"obs.tracer", lock_rank::kTracer};
  std::vector<SpanRecord> records_ AQL_GUARDED_BY(mu_);
  std::atomic<uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
  std::string trace_file_;  // AQL_TRACE_FILE; empty = no at-exit export
};

// Renders a SpanRecord list as Chrome trace-event JSON (exposed for the
// schema round-trip test; Tracer::ExportChromeJson uses it).
std::string ToChromeJson(const std::vector<SpanRecord>& records);

// Collects the spans finished on this thread while alive. Captures nest:
// the newest one installed on a thread receives that thread's spans, and
// its destructor reinstates the previous one.
class TraceCapture {
 public:
  TraceCapture();
  ~TraceCapture();
  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  const std::vector<SpanRecord>& records() const { return records_; }
  std::vector<SpanRecord> TakeRecords() { return std::move(records_); }

 private:
  friend class Span;
  std::vector<SpanRecord> records_;
  void* previous_;
};

// RAII span. Cheap no-op unless TracingActive() at construction.
class Span {
 public:
  Span(const char* cat, std::string_view name) {
    if (TracingActive()) Begin(cat, name);
  }
  ~Span() {
    if (active_) End();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  // Accumulates `value` into the counter `key` (creating it at 0).
  void AddCount(std::string_view key, uint64_t value);
  void SetDetail(std::string detail) {
    if (active_) rec_.detail = std::move(detail);
  }

 private:
  void Begin(const char* cat, std::string_view name);
  void End();

  bool active_ = false;
  SpanRecord rec_;
  std::chrono::steady_clock::time_point start_;
  Span* prev_ = nullptr;  // enclosing open span on this thread
};

}  // namespace obs
}  // namespace aql

#endif  // AQL_OBS_TRACE_H_
