// Profile reports over captured span records.
//
// A Profile is the span tree of one query (usually one TraceCapture),
// with inclusive and exclusive wall times per node and an aggregated
// per-optimizer-rule time table (fed by the "rule_us/<name>" /
// "rule_n/<name>" counters the optimizer attaches to its phase spans).
// Rendered by System::Profile / the REPL's `:profile <expr>` and the
// service's slow-query log.

#ifndef AQL_OBS_PROFILE_H_
#define AQL_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace aql {
namespace obs {

struct ProfileNode {
  SpanRecord record;
  uint64_t inclusive_us = 0;  // the span's own duration
  uint64_t exclusive_us = 0;  // inclusive minus direct children (>= 0)
  std::vector<size_t> children;  // indices into Profile::nodes
};

struct RuleTime {
  std::string rule;
  uint64_t attributed_us = 0;
  uint64_t firings = 0;
};

class Profile {
 public:
  // Links records into a forest by parent_id. Records must come from one
  // thread (one TraceCapture); children finished before parents, so the
  // input is in completion order.
  static Profile Build(std::vector<SpanRecord> records);

  const std::vector<ProfileNode>& nodes() const { return nodes_; }
  const std::vector<size_t>& roots() const { return roots_; }
  // Per-rule attributed time, descending; aggregated across all spans.
  const std::vector<RuleTime>& rule_times() const { return rule_times_; }
  uint64_t total_us() const { return total_us_; }

  // Indented stage tree with inclusive/exclusive µs and counters, then
  // the top `top_rules` optimizer rules by attributed time.
  std::string ToString(size_t top_rules = 10) const;

 private:
  std::vector<ProfileNode> nodes_;
  std::vector<size_t> roots_;
  std::vector<RuleTime> rule_times_;
  uint64_t total_us_ = 0;
};

}  // namespace obs
}  // namespace aql

#endif  // AQL_OBS_PROFILE_H_
