#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>

#include "base/env.h"
#include "base/strings.h"

namespace aql {
namespace obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
thread_local void* g_tls_capture = nullptr;
}  // namespace internal

namespace {

// Per-thread ordinal for trace records: stable, small, and assigned only
// when a thread first finishes an active span.
uint64_t ThisThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// The youngest open span on this thread (parent of new spans).
thread_local Span* g_tls_open_span = nullptr;

void JsonEscapeTo(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): singleton ctor, pre-threading.
  if (const char* f = std::getenv("AQL_TRACE_FILE"); f != nullptr && *f != '\0') {
    trace_file_ = f;
  }
  if (EnvFlag("AQL_TRACE") || !trace_file_.empty()) SetEnabled(true);
  if (!trace_file_.empty()) {
    std::atexit([] {
      Tracer& t = Tracer::Get();
      Status s = t.WriteChromeJson(t.trace_file_);
      if (!s.ok()) {
        std::fprintf(stderr, "AQL_TRACE_FILE: %s\n", s.ToString().c_str());
      }
    });
  }
}

Tracer& Tracer::Get() {
  // Leaked: spans may finish during static destruction of other objects.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

namespace {
// Construct the singleton at program start. The ctor is what reads
// AQL_TRACE / AQL_TRACE_FILE and flips g_trace_enabled; left lazy, a
// process that never calls Tracer::Get() explicitly would ignore the
// environment entirely, because inert spans never touch the singleton.
const bool g_tracer_env_init = (Tracer::Get(), true);
}  // namespace

uint64_t Tracer::NowUs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

void Tracer::Emit(const SpanRecord& rec) {
  MutexLock lock(&mu_);
  if (records_.size() >= kMaxRecords) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  records_.push_back(rec);
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  return records_;
}

std::vector<SpanRecord> Tracer::Drain() {
  MutexLock lock(&mu_);
  std::vector<SpanRecord> out;
  out.swap(records_);
  return out;
}

std::string ToChromeJson(const std::vector<SpanRecord>& records) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    JsonEscapeTo(&out, r.name);
    out += "\",\"cat\":\"";
    JsonEscapeTo(&out, r.cat);
    out += StrCat("\",\"ph\":\"X\",\"ts\":", r.start_us, ",\"dur\":", r.dur_us,
                  ",\"pid\":1,\"tid\":", r.tid, ",\"id\":", r.id,
                  ",\"args\":{\"parent\":", r.parent_id);
    if (!r.detail.empty()) {
      out += ",\"detail\":\"";
      JsonEscapeTo(&out, r.detail);
      out += "\"";
    }
    for (const auto& [key, value] : r.counters) {
      out += ",\"";
      JsonEscapeTo(&out, key);
      out += StrCat("\":", value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::ExportChromeJson() const { return ToChromeJson(Snapshot()); }

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::string json = ExportChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError(StrCat("cannot open trace file ", path));
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_err = std::fclose(f);
  if (written != json.size() || close_err != 0) {
    return Status::IoError(StrCat("failed writing trace file ", path));
  }
  return Status::OK();
}

TraceCapture::TraceCapture() : previous_(internal::g_tls_capture) {
  internal::g_tls_capture = this;
}

TraceCapture::~TraceCapture() { internal::g_tls_capture = previous_; }

void Span::Begin(const char* cat, std::string_view name) {
  active_ = true;
  rec_.name.assign(name);
  rec_.cat = cat;
  rec_.id = NextSpanId();
  rec_.parent_id = g_tls_open_span != nullptr ? g_tls_open_span->rec_.id : 0;
  rec_.tid = ThisThreadOrdinal();
  prev_ = g_tls_open_span;
  g_tls_open_span = this;
  rec_.start_us = Tracer::Get().NowUs();
  start_ = std::chrono::steady_clock::now();
}

void Span::End() {
  rec_.dur_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  g_tls_open_span = prev_;
  if (internal::g_tls_capture != nullptr) {
    static_cast<TraceCapture*>(internal::g_tls_capture)
        ->records_.push_back(rec_);
  }
  if (internal::g_trace_enabled.load(std::memory_order_relaxed)) {
    Tracer::Get().Emit(rec_);
  }
}

void Span::AddCount(std::string_view key, uint64_t value) {
  if (!active_) return;
  for (auto& [k, v] : rec_.counters) {
    if (k == key) {
      v += value;
      return;
    }
  }
  rec_.counters.emplace_back(std::string(key), value);
}

}  // namespace obs
}  // namespace aql
