#include "obs/profile.h"

#include <algorithm>
#include <map>

#include "base/strings.h"

namespace aql {
namespace obs {

namespace {

constexpr std::string_view kRuleUsPrefix = "rule_us/";
constexpr std::string_view kRuleNPrefix = "rule_n/";

void RenderNode(const Profile& p, size_t idx, size_t depth, std::string* out) {
  const ProfileNode& node = p.nodes()[idx];
  *out += std::string(2 * depth + 2, ' ');
  *out += node.record.name;
  *out += StrCat("  ", node.inclusive_us, "us");
  if (!node.children.empty()) {
    *out += StrCat(" (excl ", node.exclusive_us, "us)");
  }
  bool first = true;
  for (const auto& [key, value] : node.record.counters) {
    if (key.rfind(kRuleUsPrefix, 0) == 0 || key.rfind(kRuleNPrefix, 0) == 0) {
      continue;  // rules get their own table
    }
    *out += first ? "  [" : ", ";
    first = false;
    *out += StrCat(key, "=", value);
  }
  if (!first) *out += "]";
  if (!node.record.detail.empty()) {
    *out += StrCat("  {", node.record.detail, "}");
  }
  *out += "\n";
  for (size_t child : node.children) RenderNode(p, child, depth + 1, out);
}

}  // namespace

Profile Profile::Build(std::vector<SpanRecord> records) {
  Profile p;
  p.nodes_.reserve(records.size());
  std::map<uint64_t, size_t> by_id;
  for (SpanRecord& rec : records) {
    ProfileNode node;
    node.record = std::move(rec);
    node.inclusive_us = node.record.dur_us;
    node.exclusive_us = node.record.dur_us;
    by_id[node.record.id] = p.nodes_.size();
    p.nodes_.push_back(std::move(node));
  }
  std::map<std::string, RuleTime> rules;
  for (size_t i = 0; i < p.nodes_.size(); ++i) {
    ProfileNode& node = p.nodes_[i];
    auto parent = by_id.find(node.record.parent_id);
    if (node.record.parent_id != 0 && parent != by_id.end()) {
      ProfileNode& up = p.nodes_[parent->second];
      up.children.push_back(i);
      up.exclusive_us -= std::min(up.exclusive_us, node.inclusive_us);
    } else {
      p.roots_.push_back(i);
      p.total_us_ += node.inclusive_us;
    }
    for (const auto& [key, value] : node.record.counters) {
      if (key.rfind(kRuleUsPrefix, 0) == 0) {
        rules[key.substr(kRuleUsPrefix.size())].attributed_us += value;
      } else if (key.rfind(kRuleNPrefix, 0) == 0) {
        rules[key.substr(kRuleNPrefix.size())].firings += value;
      }
    }
  }
  // Children were appended in completion order; order them by start time
  // so the rendered tree reads as the pipeline executed.
  for (ProfileNode& node : p.nodes_) {
    std::sort(node.children.begin(), node.children.end(), [&](size_t a, size_t b) {
      return p.nodes_[a].record.start_us < p.nodes_[b].record.start_us;
    });
  }
  std::sort(p.roots_.begin(), p.roots_.end(), [&](size_t a, size_t b) {
    return p.nodes_[a].record.start_us < p.nodes_[b].record.start_us;
  });
  p.rule_times_.reserve(rules.size());
  for (auto& [name, rt] : rules) {
    rt.rule = name;
    p.rule_times_.push_back(std::move(rt));
  }
  std::sort(p.rule_times_.begin(), p.rule_times_.end(),
            [](const RuleTime& a, const RuleTime& b) {
              return a.attributed_us != b.attributed_us
                         ? a.attributed_us > b.attributed_us
                         : a.rule < b.rule;
            });
  return p;
}

std::string Profile::ToString(size_t top_rules) const {
  if (nodes_.empty()) return "profile: no spans captured\n";
  std::string out = StrCat("profile (total ", total_us_, "us, ", nodes_.size(),
                           " spans)\n");
  for (size_t root : roots_) RenderNode(*this, root, 0, &out);
  if (!rule_times_.empty() && top_rules > 0) {
    out += "top rules by attributed time:\n";
    size_t shown = 0;
    for (const RuleTime& rt : rule_times_) {
      if (shown++ >= top_rules) break;
      out += StrCat("  ", rt.rule, ": ", rt.attributed_us, "us (", rt.firings,
                    rt.firings == 1 ? " firing)\n" : " firings)\n");
    }
  }
  return out;
}

}  // namespace obs
}  // namespace aql
