// Parser for the complex-object data exchange format (paper §3).
//
//   co ::= true | false | <nat> | <real> | "<string>" | bottom
//        | (co, ..., co)                      tuples (arity >= 2)
//        | {co, ..., co}                      sets
//        | [[co, ..., co]]                    one-dimensional array literal
//        | [[n1, ..., nk; co, ..., co]]       dense k-dim row-major literal
//
// Any driver that deposits a byte stream in this grammar can be registered
// as an AQL reader (§4.1); this parser is the other half of
// Value::ToString(), and round-trips every value.

#ifndef AQL_OBJECT_VALUE_PARSER_H_
#define AQL_OBJECT_VALUE_PARSER_H_

#include <string_view>

#include "base/result.h"
#include "object/value.h"

namespace aql {

// Parses exactly one value; trailing non-whitespace is an error.
Result<Value> ParseValue(std::string_view text);

// Parses one value starting at *pos, advancing *pos past it.
Result<Value> ParseValuePrefix(std::string_view text, size_t* pos);

}  // namespace aql

#endif  // AQL_OBJECT_VALUE_PARSER_H_
