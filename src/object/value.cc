#include "object/value.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "base/env.h"
#include "base/strings.h"

namespace aql {

const char* ValueKindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kBottom: return "bottom";
    case ValueKind::kBool: return "bool";
    case ValueKind::kNat: return "nat";
    case ValueKind::kReal: return "real";
    case ValueKind::kString: return "string";
    case ValueKind::kTuple: return "tuple";
    case ValueKind::kSet: return "set";
    case ValueKind::kArray: return "array";
    case ValueKind::kFunc: return "function";
  }
  return "unknown";
}

uint64_t ArrayRep::TotalSize() const {
  uint64_t n = 1;
  for (uint64_t d : dims) n *= d;
  return n;
}

uint64_t ArrayRep::Count() const {
  switch (payload) {
    case Payload::kBoxed: return elems.size();
    case Payload::kNats: return nats.size();
    case Payload::kReals: return reals.size();
    case Payload::kBools: return bools.size();
    case Payload::kTiled: return TotalSize();  // no buffer; count is implied
  }
  return 0;
}

Value ArrayRep::At(uint64_t i) const {
  switch (payload) {
    case Payload::kBoxed: return elems[i];
    case Payload::kNats: return Value::Nat(nats[i]);
    case Payload::kReals: return Value::Real(reals[i]);
    case Payload::kBools: return Value::Bool(bools[i] != 0);
    case Payload::kTiled: {
      // The one place out-of-core storage can leak into semantics: an I/O
      // failure has no channel through At, so it degrades to ⊥ (bulk
      // ReadInto consumers see the real Status).
      Result<double> r = tiled->AtFlat(i);
      return r.ok() ? Value::Real(*r) : Value::Bottom();
    }
  }
  return Value::Bottom();
}

uint64_t ArrayRep::Flatten(const std::vector<uint64_t>& index) const {
  uint64_t flat = 0;
  for (size_t i = 0; i < dims.size(); ++i) flat = flat * dims[i] + index[i];
  return flat;
}

bool ArrayRep::InBounds(const std::vector<uint64_t>& index) const {
  if (index.size() != dims.size()) return false;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (index[i] >= dims[i]) return false;
  }
  return true;
}

Value Value::Str(std::string s) {
  return Value(Rep(std::make_shared<const std::string>(std::move(s))));
}

Value Value::MakeTuple(std::vector<Value> fields) {
  return Value(Rep(std::make_shared<const std::vector<Value>>(std::move(fields))));
}

Value Value::MakeSet(std::vector<Value> elems) {
  std::sort(elems.begin(), elems.end(),
            [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
  elems.erase(std::unique(elems.begin(), elems.end(),
                          [](const Value& a, const Value& b) { return Compare(a, b) == 0; }),
              elems.end());
  return MakeSetCanonical(std::move(elems));
}

Value Value::MakeSetCanonical(std::vector<Value> elems) {
#ifndef NDEBUG
  for (size_t i = 1; i < elems.size(); ++i) {
    assert(Compare(elems[i - 1], elems[i]) < 0 && "set not canonical");
  }
#endif
  return Value(Rep(std::make_shared<const SetRep>(SetRep{std::move(elems)})));
}

namespace {

// Canonical payload selection: a non-empty all-nat / all-real / all-bool
// element vector (no ⊥, no nesting) moves into the matching flat buffer.
// Every array constructor funnels through this, so equal abstract values
// always share a representation.
ArrayRep SpecializeRep(std::vector<uint64_t> dims, std::vector<Value> elems) {
  ArrayRep rep;
  rep.dims = std::move(dims);
  if (!elems.empty()) {
    ValueKind k = elems[0].kind();
    bool uniform = (k == ValueKind::kNat || k == ValueKind::kReal || k == ValueKind::kBool);
    for (size_t i = 1; uniform && i < elems.size(); ++i) {
      uniform = elems[i].kind() == k;
    }
    if (uniform) {
      switch (k) {
        case ValueKind::kNat:
          rep.payload = ArrayRep::Payload::kNats;
          rep.nats.reserve(elems.size());
          for (const Value& v : elems) rep.nats.push_back(v.nat_value());
          return rep;
        case ValueKind::kReal:
          rep.payload = ArrayRep::Payload::kReals;
          rep.reals.reserve(elems.size());
          for (const Value& v : elems) rep.reals.push_back(v.real_value());
          return rep;
        case ValueKind::kBool:
          rep.payload = ArrayRep::Payload::kBools;
          rep.bools.reserve(elems.size());
          for (const Value& v : elems) rep.bools.push_back(v.bool_value() ? 1 : 0);
          return rep;
        default:
          break;
      }
    }
  }
  rep.elems = std::move(elems);
  return rep;
}

Status CheckArrayShape(const std::vector<uint64_t>& dims, size_t count) {
  if (dims.empty()) {
    return Status::InvalidArgument("array must have at least one dimension");
  }
  uint64_t total = 1;
  for (uint64_t d : dims) total *= d;
  if (total != count) {
    return Status::InvalidArgument(
        StrCat("array literal has ", count, " values but dimensions require ", total));
  }
  return Status::OK();
}

}  // namespace

Result<Value> Value::MakeArray(std::vector<uint64_t> dims, std::vector<Value> elems) {
  AQL_RETURN_IF_ERROR(CheckArrayShape(dims, elems.size()));
  return Value(Rep(std::make_shared<const ArrayRep>(
      SpecializeRep(std::move(dims), std::move(elems)))));
}

Value Value::MakeVector(std::vector<Value> elems) {
  uint64_t n = elems.size();
  return Value(
      Rep(std::make_shared<const ArrayRep>(SpecializeRep({n}, std::move(elems)))));
}

Result<Value> Value::MakeNatArray(std::vector<uint64_t> dims, std::vector<uint64_t> data) {
  AQL_RETURN_IF_ERROR(CheckArrayShape(dims, data.size()));
  ArrayRep rep;
  rep.dims = std::move(dims);
  if (data.empty()) {
    return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
  }
  rep.payload = ArrayRep::Payload::kNats;
  rep.nats = std::move(data);
  return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
}

Result<Value> Value::MakeRealArray(std::vector<uint64_t> dims, std::vector<double> data) {
  AQL_RETURN_IF_ERROR(CheckArrayShape(dims, data.size()));
  ArrayRep rep;
  rep.dims = std::move(dims);
  if (data.empty()) {
    return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
  }
  rep.payload = ArrayRep::Payload::kReals;
  rep.reals = std::move(data);
  return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
}

Result<Value> Value::MakeBoolArray(std::vector<uint64_t> dims, std::vector<uint8_t> data) {
  AQL_RETURN_IF_ERROR(CheckArrayShape(dims, data.size()));
  ArrayRep rep;
  rep.dims = std::move(dims);
  if (data.empty()) {
    return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
  }
  rep.payload = ArrayRep::Payload::kBools;
  for (uint8_t& b : data) b = b ? 1 : 0;  // normalize so Compare can memcmp-style loop
  rep.bools = std::move(data);
  return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
}

Result<Value> Value::MakeTiledArray(std::shared_ptr<const LazyRealSlab> slab) {
  if (slab == nullptr) {
    return Status::InvalidArgument("tiled array requires a storage slab");
  }
  const std::vector<uint64_t>& dims = slab->dims();
  if (dims.empty()) {
    return Status::InvalidArgument("array must have at least one dimension");
  }
  auto volume = CheckedVolume(dims);
  if (!volume.ok()) return volume.status();
  if (*volume == 0) {
    // Canonical empty arrays are kBoxed; keep kTiled strictly non-empty so
    // every payload consumer can assume a live slab with elements.
    return MakeArray(dims, {});
  }
  ArrayRep rep;
  rep.dims = dims;
  rep.payload = ArrayRep::Payload::kTiled;
  rep.tiled = std::move(slab);
  return Value(Rep(std::make_shared<const ArrayRep>(std::move(rep))));
}

Value Value::MakeFunc(std::shared_ptr<const FuncValue> fn) {
  return Value(Rep(std::move(fn)));
}

namespace {

template <typename T>
int Cmp3(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

int CompareValueVectors(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(a[i], b[i]);
    if (c != 0) return c;
  }
  return Cmp3(a.size(), b.size());
}

template <typename T>
int CompareScalarVectors(const std::vector<T>& a, const std::vector<T>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (int c = Cmp3(a[i], b[i]); c != 0) return c;
  }
  return Cmp3(a.size(), b.size());
}

// Content comparison across any pair of payloads. Same-payload pairs take
// the typed loops (the common case: representation is canonical); mixed
// pairs box element-wise, which only happens for hand-built reps.
int CompareArrayElems(const ArrayRep& x, const ArrayRep& y) {
  if (x.payload == y.payload) {
    switch (x.payload) {
      case ArrayRep::Payload::kBoxed: return CompareValueVectors(x.elems, y.elems);
      case ArrayRep::Payload::kNats: return CompareScalarVectors(x.nats, y.nats);
      case ArrayRep::Payload::kReals: return CompareScalarVectors(x.reals, y.reals);
      case ArrayRep::Payload::kBools: return CompareScalarVectors(x.bools, y.bools);
      case ArrayRep::Payload::kTiled:
        if (x.tiled == y.tiled) return 0;  // same slab, no I/O needed
        break;                             // distinct slabs: stream elementwise
    }
  }
  uint64_t n = std::min(x.Count(), y.Count());
  for (uint64_t i = 0; i < n; ++i) {
    if (int c = Value::Compare(x.At(i), y.At(i)); c != 0) return c;
  }
  return Cmp3(x.Count(), y.Count());
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) {
    return Cmp3(static_cast<int>(a.kind()), static_cast<int>(b.kind()));
  }
  switch (a.kind()) {
    case ValueKind::kBottom: return 0;
    case ValueKind::kBool: return Cmp3(a.bool_value(), b.bool_value());
    case ValueKind::kNat: return Cmp3(a.nat_value(), b.nat_value());
    case ValueKind::kReal: return Cmp3(a.real_value(), b.real_value());
    case ValueKind::kString: return a.str_value().compare(b.str_value());
    case ValueKind::kTuple: return CompareValueVectors(a.tuple_fields(), b.tuple_fields());
    case ValueKind::kSet: return CompareValueVectors(a.set().elems, b.set().elems);
    case ValueKind::kArray: {
      // Dimensions first, then row-major content: this makes <_[[t]]_k a
      // lexicographic product of linear orders, hence linear.
      const ArrayRep& x = a.array();
      const ArrayRep& y = b.array();
      if (&x == &y) return 0;  // shared rep (e.g. a cached tiled literal)
      if (int c = Cmp3(x.dims.size(), y.dims.size()); c != 0) return c;
      for (size_t i = 0; i < x.dims.size(); ++i) {
        if (int c = Cmp3(x.dims[i], y.dims[i]); c != 0) return c;
      }
      return CompareArrayElems(x, y);
    }
    case ValueKind::kFunc: {
      const FuncValue* pa = &a.func();
      const FuncValue* pb = &b.func();
      return Cmp3(reinterpret_cast<uintptr_t>(pa), reinterpret_cast<uintptr_t>(pb));
    }
  }
  return 0;
}

bool Value::SetContains(const Value& elem) const {
  const auto& v = set().elems;
  return std::binary_search(
      v.begin(), v.end(), elem,
      [](const Value& a, const Value& b) { return Compare(a, b) < 0; });
}

Value Value::SetUnion(const Value& a, const Value& b) {
  const auto& x = a.set().elems;
  const auto& y = b.set().elems;
  std::vector<Value> out;
  out.reserve(x.size() + y.size());
  size_t i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    int c = Compare(x[i], y[j]);
    if (c < 0) {
      out.push_back(x[i++]);
    } else if (c > 0) {
      out.push_back(y[j++]);
    } else {
      out.push_back(x[i]);
      ++i;
      ++j;
    }
  }
  while (i < x.size()) out.push_back(x[i++]);
  while (j < y.size()) out.push_back(y[j++]);
  return MakeSetCanonical(std::move(out));
}

namespace {

void AppendValue(const Value& v, std::string* out);

void AppendJoined(const std::vector<Value>& vs, std::string* out) {
  for (size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out->append(", ");
    AppendValue(vs[i], out);
  }
}

void AppendQuoted(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendValue(const Value& v, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      out->append("bottom");
      return;
    case ValueKind::kBool:
      out->append(v.bool_value() ? "true" : "false");
      return;
    case ValueKind::kNat:
      out->append(std::to_string(v.nat_value()));
      return;
    case ValueKind::kReal:
      out->append(RealToString(v.real_value()));
      return;
    case ValueKind::kString:
      AppendQuoted(v.str_value(), out);
      return;
    case ValueKind::kTuple:
      out->push_back('(');
      AppendJoined(v.tuple_fields(), out);
      out->push_back(')');
      return;
    case ValueKind::kSet:
      out->push_back('{');
      AppendJoined(v.set().elems, out);
      out->push_back('}');
      return;
    case ValueKind::kArray: {
      const ArrayRep& a = v.array();
      out->append("[[");
      for (size_t i = 0; i < a.dims.size(); ++i) {
        if (i > 0) out->push_back(',');
        out->append(std::to_string(a.dims[i]));
      }
      out->append("; ");
      for (uint64_t i = 0, n = a.Count(); i < n; ++i) {
        if (i > 0) out->append(", ");
        AppendValue(a.At(i), out);
      }
      out->append("]]");
      return;
    }
    case ValueKind::kFunc:
      out->append(v.func().name());
      return;
  }
}

// Advances a multi-index in row-major order.
void NextIndex(const std::vector<uint64_t>& dims, std::vector<uint64_t>* index) {
  for (size_t i = dims.size(); i-- > 0;) {
    if (++(*index)[i] < dims[i]) return;
    (*index)[i] = 0;
  }
}

void AppendDisplay(const Value& v, size_t max_items, std::string* out);

void AppendDisplayJoined(const std::vector<Value>& vs, size_t max_items, std::string* out) {
  size_t limit = max_items == 0 ? vs.size() : std::min(vs.size(), max_items);
  for (size_t i = 0; i < limit; ++i) {
    if (i > 0) out->append(", ");
    AppendDisplay(vs[i], max_items, out);
  }
  if (limit < vs.size()) out->append(", ...");
}

void AppendDisplay(const Value& v, size_t max_items, std::string* out) {
  switch (v.kind()) {
    case ValueKind::kTuple:
      out->push_back('(');
      AppendDisplayJoined(v.tuple_fields(), max_items, out);
      out->push_back(')');
      return;
    case ValueKind::kSet:
      out->push_back('{');
      AppendDisplayJoined(v.set().elems, max_items, out);
      out->push_back('}');
      return;
    case ValueKind::kArray: {
      // §4.2 session style: [[(0,0,0):67.3, (1,0,0):67.3, ...]].
      const ArrayRep& a = v.array();
      out->append("[[");
      std::vector<uint64_t> index(a.dims.size(), 0);
      size_t total = a.Count();
      size_t limit = max_items == 0 ? total : std::min(total, max_items);
      for (size_t i = 0; i < limit; ++i) {
        if (i > 0) out->append(", ");
        out->push_back('(');
        for (size_t d = 0; d < index.size(); ++d) {
          if (d > 0) out->push_back(',');
          out->append(std::to_string(index[d]));
        }
        out->append("):");
        AppendDisplay(a.At(i), max_items, out);
        NextIndex(a.dims, &index);
      }
      if (limit < total) out->append(", ...");
      out->append("]]");
      return;
    }
    default:
      AppendValue(v, out);
  }
}

}  // namespace

std::string Value::ToString() const {
  std::string out;
  AppendValue(*this, &out);
  return out;
}

std::string Value::ToDisplayString(size_t max_items) const {
  std::string out;
  AppendDisplay(*this, max_items, &out);
  return out;
}

namespace {

inline uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h;
}

constexpr uint64_t kHashBase = 0xcbf29ce484222325ull;

// Per-kind scalar hashes, shared by HashValue and the unboxed array fast
// paths so a flat buffer hashes identically to its boxed equivalent.
inline uint64_t HashScalarBool(bool b) {
  return HashMix(kHashBase + static_cast<uint64_t>(ValueKind::kBool), b ? 1 : 0);
}
inline uint64_t HashScalarNat(uint64_t n) {
  return HashMix(kHashBase + static_cast<uint64_t>(ValueKind::kNat), n);
}
inline uint64_t HashScalarReal(double d) {
  // Compare treats +0.0 and -0.0 as equal; normalize before hashing bits.
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix(kHashBase + static_cast<uint64_t>(ValueKind::kReal), bits);
}

}  // namespace

uint64_t HashValue(const Value& v) {
  uint64_t h = kHashBase + static_cast<uint64_t>(v.kind());
  switch (v.kind()) {
    case ValueKind::kBottom:
      return h;
    case ValueKind::kBool:
      return HashScalarBool(v.bool_value());
    case ValueKind::kNat:
      return HashScalarNat(v.nat_value());
    case ValueKind::kReal:
      return HashScalarReal(v.real_value());
    case ValueKind::kString: {
      for (unsigned char c : v.str_value()) h = HashMix(h, c);
      return h;
    }
    case ValueKind::kTuple: {
      for (const Value& f : v.tuple_fields()) h = HashMix(h, HashValue(f));
      return h;
    }
    case ValueKind::kSet: {
      // Canonical (sorted, deduplicated) order makes elementwise hashing sound.
      for (const Value& e : v.set().elems) h = HashMix(h, HashValue(e));
      return h;
    }
    case ValueKind::kArray: {
      const ArrayRep& a = v.array();
      h = HashMix(h, a.dims.size());
      for (uint64_t d : a.dims) h = HashMix(h, d);
      switch (a.payload) {
        case ArrayRep::Payload::kBoxed:
          for (const Value& e : a.elems) h = HashMix(h, HashValue(e));
          break;
        case ArrayRep::Payload::kNats:
          for (uint64_t n : a.nats) h = HashMix(h, HashScalarNat(n));
          break;
        case ArrayRep::Payload::kReals:
          for (double d : a.reals) h = HashMix(h, HashScalarReal(d));
          break;
        case ArrayRep::Payload::kBools:
          for (uint8_t b : a.bools) h = HashMix(h, HashScalarBool(b != 0));
          break;
        case ArrayRep::Payload::kTiled:
          // Provenance, not content: hashing must never do I/O. See the
          // contract note on HashValue in value.h.
          h = HashMix(h, a.tiled->ProvenanceHash());
          break;
      }
      return h;
    }
    case ValueKind::kFunc:
      // Identity hash, matching Compare's identity order on functions.
      return HashMix(h, reinterpret_cast<uintptr_t>(&v.func()));
  }
  return h;
}

uint64_t MaxArrayElements() {
  // Re-read per call (one getenv per tabulation, not per element) so tests
  // can vary the cap within one process. Strict parse: malformed values
  // ("12abc", "-1", "") and 0 fall back to the default instead of being
  // half-parsed into a bogus cap.
  constexpr uint64_t kDefault = uint64_t{1} << 36;
  uint64_t v = EnvU64("AQL_EXEC_MAX_ELEMS", kDefault);
  return v == 0 ? kDefault : v;
}

Result<uint64_t> CheckedVolume(const std::vector<uint64_t>& dims) {
  uint64_t total = 1;
  for (uint64_t d : dims) {
    if (d != 0 && total > std::numeric_limits<uint64_t>::max() / d) {
      return Status::EvalError("tabulation bounds overflow the element count");
    }
    total *= d;
  }
  uint64_t cap = MaxArrayElements();
  if (total > cap) {
    return Status::EvalError(
        StrCat("tabulation of ", total, " elements exceeds the cap of ", cap,
               " (set AQL_EXEC_MAX_ELEMS to raise it)"));
  }
  return total;
}

uint64_t ApproxValueBytes(const Value& v) {
  constexpr uint64_t kNode = sizeof(Value);
  switch (v.kind()) {
    case ValueKind::kBottom:
    case ValueKind::kBool:
    case ValueKind::kNat:
    case ValueKind::kReal:
    case ValueKind::kFunc:  // the closure body is not data we account for
      return kNode;
    case ValueKind::kString:
      return kNode + sizeof(std::string) + v.str_value().size();
    case ValueKind::kTuple: {
      uint64_t b = kNode + sizeof(std::vector<Value>);
      for (const Value& f : v.tuple_fields()) b += ApproxValueBytes(f);
      return b;
    }
    case ValueKind::kSet: {
      uint64_t b = kNode + sizeof(SetRep);
      for (const Value& e : v.set().elems) b += ApproxValueBytes(e);
      return b;
    }
    case ValueKind::kArray: {
      const ArrayRep& a = v.array();
      uint64_t b = kNode + sizeof(ArrayRep) + 8 * a.dims.size();
      switch (a.payload) {
        case ArrayRep::Payload::kBoxed:
          for (const Value& e : a.elems) b += ApproxValueBytes(e);
          break;
        case ArrayRep::Payload::kNats:
          b += 8 * a.nats.size();
          break;
        case ArrayRep::Payload::kReals:
          b += 8 * a.reals.size();
          break;
        case ArrayRep::Payload::kBools:
          b += a.bools.size();
          break;
        case ArrayRep::Payload::kTiled:
          b += 64;  // handle only — tile bytes are charged to the tile cache
          break;
      }
      return b;
    }
  }
  return kNode;
}

namespace {

// Lazy rectangular view into a tiled slab: slicing a tiled array shifts
// coordinates instead of materializing, so a subslab of an out-of-core
// dataset stays out-of-core (the result cache's subsumption path relies
// on SliceArray being cheap).
class SlicedSlab : public LazyRealSlab {
 public:
  SlicedSlab(std::shared_ptr<const LazyRealSlab> base, std::vector<uint64_t> lower,
             std::vector<uint64_t> extents)
      : base_(std::move(base)), lower_(std::move(lower)), dims_(std::move(extents)) {}

  const std::vector<uint64_t>& dims() const override { return dims_; }

  Status ReadInto(const std::vector<uint64_t>& start, const std::vector<uint64_t>& count,
                  double* out) const override {
    std::vector<uint64_t> abs(lower_.size());
    for (size_t j = 0; j < lower_.size(); ++j) abs[j] = lower_[j] + start[j];
    return base_->ReadInto(abs, count, out);
  }

  Result<double> AtFlat(uint64_t flat) const override {
    // Unflatten over the view dims, shift, reflatten over the base dims.
    const std::vector<uint64_t>& base_dims = base_->dims();
    uint64_t base_flat = 0;
    for (size_t j = dims_.size(); j-- > 0;) {
      uint64_t coord = lower_[j] + flat % dims_[j];
      flat /= dims_[j];
      uint64_t stride = 1;
      for (size_t i = j + 1; i < base_dims.size(); ++i) stride *= base_dims[i];
      base_flat += coord * stride;
    }
    return base_->AtFlat(base_flat);
  }

  uint64_t ProvenanceHash() const override {
    uint64_t h = base_->ProvenanceHash();
    for (size_t j = 0; j < lower_.size(); ++j) {
      h = HashMix(HashMix(h, lower_[j]), dims_[j]);
    }
    return h;
  }

 private:
  std::shared_ptr<const LazyRealSlab> base_;
  std::vector<uint64_t> lower_;
  std::vector<uint64_t> dims_;
};

}  // namespace

Result<Value> SliceArray(const ArrayRep& arr, const std::vector<uint64_t>& lower,
                         const std::vector<uint64_t>& extents) {
  const size_t k = arr.dims.size();
  if (lower.size() != k || extents.size() != k) {
    return Status::InvalidArgument(
        StrCat("slice arity ", lower.size(), "/", extents.size(),
               " does not match array rank ", k));
  }
  for (size_t j = 0; j < k; ++j) {
    if (extents[j] > arr.dims[j] || lower[j] > arr.dims[j] - extents[j]) {
      return Status::InvalidArgument(
          StrCat("slice [", lower[j], ", ", lower[j], "+", extents[j],
                 ") leaves dimension ", j, " of extent ", arr.dims[j]));
    }
  }
  auto volume = CheckedVolume(extents);
  if (!volume.ok()) return volume.status();
  const uint64_t n = *volume;

  // Row-major source strides; the innermost dimension is contiguous, so
  // the copy moves whole runs of extents[k-1] elements.
  std::vector<uint64_t> stride(k, 1);
  for (size_t j = k - 1; j-- > 0;) stride[j] = stride[j + 1] * arr.dims[j + 1];
  const uint64_t run = extents[k - 1];
  const uint64_t rows = run == 0 ? 0 : n / run;

  std::vector<uint64_t> idx = lower;  // source index of the current run
  auto offset = [&]() {
    uint64_t off = 0;
    for (size_t j = 0; j < k; ++j) off += idx[j] * stride[j];
    return off;
  };
  auto advance = [&]() {  // odometer over the k-1 outer dimensions
    for (size_t j = k - 1; j-- > 0;) {
      if (++idx[j] < lower[j] + extents[j]) return;
      idx[j] = lower[j];
    }
  };
  auto copy_rows = [&](const auto& src, auto* out) {
    out->reserve(n);
    for (uint64_t r = 0; r < rows; ++r) {
      uint64_t off = offset();
      out->insert(out->end(), src.begin() + off, src.begin() + off + run);
      advance();
    }
  };

  switch (arr.payload) {
    case ArrayRep::Payload::kNats: {
      std::vector<uint64_t> data;
      copy_rows(arr.nats, &data);
      return Value::MakeNatArray(extents, std::move(data));
    }
    case ArrayRep::Payload::kReals: {
      std::vector<double> data;
      copy_rows(arr.reals, &data);
      return Value::MakeRealArray(extents, std::move(data));
    }
    case ArrayRep::Payload::kBools: {
      std::vector<uint8_t> data;
      copy_rows(arr.bools, &data);
      return Value::MakeBoolArray(extents, std::move(data));
    }
    case ArrayRep::Payload::kBoxed: {
      std::vector<Value> data;
      copy_rows(arr.elems, &data);
      return Value::MakeArray(extents, std::move(data));
    }
    case ArrayRep::Payload::kTiled:
      // No copy: compose the coordinate shift lazily (see SlicedSlab).
      return Value::MakeTiledArray(std::make_shared<SlicedSlab>(arr.tiled, lower, extents));
  }
  return Status::InvalidArgument("unknown array payload");
}

}  // namespace aql
