#include "object/value_parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/strings.h"

namespace aql {
namespace {

class ValueParser {
 public:
  ValueParser(std::string_view text, size_t pos) : text_(text), pos_(pos) {}

  size_t pos() const { return pos_; }

  Result<Value> Parse() {
    SkipSpace();
    AQL_ASSIGN_OR_RETURN(Value v, ParseOne());
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeIf(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Status Expect(std::string_view token) {
    if (!ConsumeIf(token)) {
      return Status::FormatError(
          StrCat("expected '", std::string(token), "' at offset ", pos_, " in value text"));
    }
    return Status::OK();
  }

  bool AtWordBoundary(size_t end) const {
    return end >= text_.size() || (!std::isalnum(static_cast<unsigned char>(text_[end])) &&
                                   text_[end] != '_');
  }

  bool ConsumeKeyword(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) == word && AtWordBoundary(pos_ + word.size())) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseOne() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::FormatError("unexpected end of value text");
    if (ConsumeKeyword("true")) return Value::Bool(true);
    if (ConsumeKeyword("false")) return Value::Bool(false);
    if (ConsumeKeyword("bottom")) return Value::Bottom();
    char c = text_[pos_];
    if (c == '"') return ParseString();
    if (c == '(') return ParseTuple();
    if (c == '{') return ParseSet();
    if (c == '[') return ParseArray();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      return ParseNumber();
    }
    return Status::FormatError(StrCat("unexpected character '", std::string(1, c),
                                      "' at offset ", pos_, " in value text"));
  }

  Result<Value> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          default:
            return Status::FormatError(StrCat("bad escape '\\", std::string(1, e), "'"));
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) return Status::FormatError("unterminated string literal");
    ++pos_;  // closing quote
    return Value::Str(std::move(out));
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool is_real = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E') {
        is_real = true;
        ++pos_;
        if (c != '.' && pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
          ++pos_;
        }
      } else {
        break;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (is_real || token[0] == '-') {
      char* end = nullptr;
      errno = 0;
      double d = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        return Status::FormatError(StrCat("bad numeric literal '", token, "'"));
      }
      // strtod signals both overflow (±HUGE_VAL) and underflow-to-denormal
      // via ERANGE; neither round-trips through the writer, so reject.
      if (errno == ERANGE) {
        return Status::FormatError(
            StrCat("numeric literal '", token, "' out of range"));
      }
      return Value::Real(d);
    }
    char* end = nullptr;
    uint64_t n = std::strtoull(token.c_str(), &end, 10);
    if (end != token.c_str() + token.size()) {
      return Status::FormatError(StrCat("bad nat literal '", token, "'"));
    }
    return Value::Nat(n);
  }

  Result<Value> ParseTuple() {
    ++pos_;  // '('
    std::vector<Value> fields;
    if (ConsumeIf(")")) {
      return Status::FormatError("empty tuple is not a value; arity must be >= 2");
    }
    while (true) {
      AQL_ASSIGN_OR_RETURN(Value v, ParseOne());
      fields.push_back(std::move(v));
      if (ConsumeIf(")")) break;
      AQL_RETURN_IF_ERROR(Expect(","));
    }
    if (fields.size() == 1) return std::move(fields[0]);  // parenthesized value
    return Value::MakeTuple(std::move(fields));
  }

  Result<Value> ParseSet() {
    ++pos_;  // '{'
    std::vector<Value> elems;
    if (ConsumeIf("}")) return Value::EmptySet();
    while (true) {
      AQL_ASSIGN_OR_RETURN(Value v, ParseOne());
      elems.push_back(std::move(v));
      if (ConsumeIf("}")) break;
      AQL_RETURN_IF_ERROR(Expect(","));
    }
    return Value::MakeSet(std::move(elems));
  }

  Result<Value> ParseArray() {
    AQL_RETURN_IF_ERROR(Expect("[["));
    if (ConsumeIf("]]")) return Value::MakeVector({});
    // Parse a comma-separated value list; if a ';' follows, the list so far
    // is the dimension vector of a dense literal.
    std::vector<Value> items;
    while (true) {
      AQL_ASSIGN_OR_RETURN(Value v, ParseOne());
      items.push_back(std::move(v));
      if (ConsumeIf(";")) return ParseDenseRest(std::move(items));
      if (ConsumeIf("]]")) return Value::MakeVector(std::move(items));
      AQL_RETURN_IF_ERROR(Expect(","));
    }
  }

  Result<Value> ParseDenseRest(std::vector<Value> dim_values) {
    std::vector<uint64_t> dims;
    dims.reserve(dim_values.size());
    for (const Value& v : dim_values) {
      if (v.kind() != ValueKind::kNat) {
        return Status::FormatError("array dimensions must be nat literals");
      }
      dims.push_back(v.nat_value());
    }
    std::vector<Value> elems;
    if (!ConsumeIf("]]")) {
      while (true) {
        AQL_ASSIGN_OR_RETURN(Value v, ParseOne());
        elems.push_back(std::move(v));
        if (ConsumeIf("]]")) break;
        AQL_RETURN_IF_ERROR(Expect(","));
      }
    }
    return Value::MakeArray(std::move(dims), std::move(elems));
  }

  std::string_view text_;
  size_t pos_;
};

}  // namespace

Result<Value> ParseValuePrefix(std::string_view text, size_t* pos) {
  ValueParser parser(text, *pos);
  AQL_ASSIGN_OR_RETURN(Value v, parser.Parse());
  *pos = parser.pos();
  return v;
}

Result<Value> ParseValue(std::string_view text) {
  size_t pos = 0;
  AQL_ASSIGN_OR_RETURN(Value v, ParseValuePrefix(text, &pos));
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  if (pos != text.size()) {
    return Status::FormatError(StrCat("trailing characters after value at offset ", pos));
  }
  return v;
}

}  // namespace aql
