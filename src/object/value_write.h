// Incremental Value rendering for streaming delivery (the HTTP front
// end's chunked responses) — the counterpart of Value::ToString that
// never materializes the whole rendering.
//
// A ValueWriter walks the value recursively, appending into a bounded
// buffer and handing the buffer to the sink every time it crosses
// `flush_bytes`. A 1e8-element array therefore streams through ~64 KiB of
// writer memory instead of allocating a multi-gigabyte string; the sink
// (e.g. net::HttpResponseWriter::WriteChunk) sees a sequence of
// near-`flush_bytes` fragments whose concatenation is the full rendering.
//
// Formats:
//   kText — byte-identical to Value::ToString (the §3 exchange grammar;
//           pinned by tests/value_write_test.cc), so existing parsers of
//           the exchange format work unchanged on streamed output.
//   kJson — arrays as {"dims":[...],"data":[...]}, tuples and sets as
//           JSON arrays, bottom as null, strings JSON-escaped. Reals
//           always carry a decimal point or exponent; non-finite reals
//           render as null (JSON has no NaN/Infinity).
//
// A sink error aborts the walk and is returned from Write; the writer is
// single-use per value and not thread-safe.

#ifndef AQL_OBJECT_VALUE_WRITE_H_
#define AQL_OBJECT_VALUE_WRITE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/status.h"
#include "object/value.h"

namespace aql {

enum class ValueFormat {
  kText = 0,  // the exchange format of Value::ToString
  kJson,
};

// Parses "text" / "json" (as used by the HTTP Accept/format knobs).
bool ParseValueFormat(std::string_view name, ValueFormat* out);

// MIME type for a format: "text/plain" or "application/json".
std::string_view ValueFormatContentType(ValueFormat format);

class ValueWriter {
 public:
  // The sink receives successive fragments; a non-OK return aborts.
  using Sink = std::function<Status(std::string_view)>;

  explicit ValueWriter(Sink sink, ValueFormat format = ValueFormat::kText,
                       size_t flush_bytes = 64 * 1024);

  // Streams the full rendering of `v` (including the final flush).
  Status Write(const Value& v);

  // Total bytes handed to the sink by the last Write.
  uint64_t bytes_emitted() const { return bytes_emitted_; }
  // Number of sink invocations by the last Write (>= 1 for any value).
  uint64_t flushes() const { return flushes_; }

 private:
  Status Walk(const Value& v);
  Status WalkJson(const Value& v);
  Status EmitArrayText(const ArrayRep& a);
  Status EmitArrayJson(const ArrayRep& a);
  void Append(std::string_view s) { buffer_.append(s); }
  void AppendRealJson(double d);
  void AppendQuotedJson(const std::string& s);
  Status MaybeFlush();
  Status FlushNow();

  Sink sink_;
  ValueFormat format_;
  size_t flush_bytes_;
  std::string buffer_;
  uint64_t bytes_emitted_ = 0;
  uint64_t flushes_ = 0;
};

// Convenience: full JSON rendering into one string (small values; tests).
std::string ValueToJson(const Value& v);

}  // namespace aql

#endif  // AQL_OBJECT_VALUE_WRITE_H_
