// Complex-object values for the AQL data model (paper §2, §3).
//
// The object types of NRCA are
//
//   t ::= b | B | N | t1 x ... x tk | {t} | [[t]]_k
//
// and we realize them with one tagged value class:
//
//   - kBool, kNat           primitive B and N (nats are 64-bit)
//   - kReal, kString        the uninterpreted base types b used by the
//                           paper's examples (temperatures, names)
//   - kTuple                k-ary products
//   - kSet                  finite sets, stored canonically: sorted under
//                           the definable linear order <_t and deduplicated,
//                           so structural equality is vector equality
//   - kArray                k-dimensional arrays as *functions of
//                           rectangular domain*: a dims vector plus values
//                           in row-major order
//   - kBottom               the explicit error value of the calculus; bound
//                           errors and get() on non-singletons produce it
//   - kFunc                 closures / registered external primitives; these
//                           exist only transiently during evaluation (the
//                           type system keeps them out of sets and arrays)
//
// Values are immutable and cheap to copy: heavy payloads are behind
// shared_ptr<const ...>.

#ifndef AQL_OBJECT_VALUE_H_
#define AQL_OBJECT_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "base/result.h"
#include "base/status.h"

namespace aql {

class Value;

enum class ValueKind {
  kBottom = 0,  // least in the linear order
  kBool,
  kNat,
  kReal,
  kString,
  kTuple,
  kSet,
  kArray,
  kFunc,
};

const char* ValueKindName(ValueKind kind);

// Canonical set representation: ascending under Value::Compare, no dups.
struct SetRep {
  std::vector<Value> elems;
};

// Out-of-core real-valued slab: the abstract face of the tiled storage
// layer (src/storage implements it; declaring it here keeps aql_object
// free of storage/netcdf dependencies). A LazyRealSlab is an immutable
// k-dimensional array of doubles whose elements live behind a tile cache
// rather than in a flat buffer. All methods are thread-safe.
//
// Every element is total (never ⊥) by construction — NetCDF slabs decode
// every cell — so arrays backed by a slab participate in the unboxed()
// fast paths of absint and the optimizer.
class LazyRealSlab {
 public:
  virtual ~LazyRealSlab() = default;
  // Shape of the slab; dims().size() >= 1 and no zero extents.
  virtual const std::vector<uint64_t>& dims() const = 0;
  // Bulk-reads the rectangular region [start[j], start[j]+count[j]) into
  // `out` (row-major, product(count) doubles). The workhorse for
  // materialization and subslab pushdown.
  virtual Status ReadInto(const std::vector<uint64_t>& start,
                          const std::vector<uint64_t>& count, double* out) const = 0;
  // Single element at a row-major flat index; tile-cached.
  virtual Result<double> AtFlat(uint64_t flat) const = 0;
  // Stable identity hash over (dataset, region) — NOT content. See
  // HashValue: hashing must never do I/O.
  virtual uint64_t ProvenanceHash() const = 0;

  // Zone-map queries for aggregate pruning (no I/O; answered from
  // metadata the implementation already holds, never by reading tiles).
  //
  // ConstantRowRun: if every element whose leading coordinate lies in
  // [row, row+run) is one non-NaN constant, returns run > 0 and stores the
  // constant; returns 0 when unknown (cold metadata, NaN, or mixed
  // values). Implementations count successful calls as prunes.
  virtual uint64_t ConstantRowRun(uint64_t row, double* value) const {
    (void)row;
    (void)value;
    return 0;
  }
  // ZoneRowRun: min/max (and constancy) over the same leading-row run;
  // 0 when unknown or when the bounds are NaN-poisoned.
  virtual uint64_t ZoneRowRun(uint64_t row, double* min, double* max,
                              bool* constant) const {
    (void)row;
    (void)min;
    (void)max;
    (void)constant;
    return 0;
  }
};

// k-dimensional array: dims.size() == k >= 1, Count() == product(dims),
// row-major (last index varies fastest).
//
// Representation specialization: an array whose elements are all nats, all
// reals, or all bools (and contain no ⊥) is stored UNBOXED in a flat
// scalar buffer — 8 bytes per element instead of a tagged Value — which is
// what makes dense tabulation kernels and bulk NetCDF I/O run at memory
// bandwidth. Arrays with nested elements (tuples, sets, arrays, strings)
// or with ⊥-holes keep the boxed std::vector<Value> payload. The choice
// is canonical: every constructor (Value::MakeArray and the typed
// Make*Array variants) selects the same payload for the same abstract
// value, so representation never leaks into semantics — Compare, hashing
// and printing are payload-agnostic.
struct ArrayRep {
  enum class Payload : uint8_t {
    kBoxed = 0,  // elems
    kNats,       // nats
    kReals,      // reals
    kBools,      // bools (one byte per element, so parallel chunked writes
                 // to disjoint ranges never share a byte)
    kTiled,      // tiled: out-of-core reals behind a tile cache. Counts as
                 // unboxed() (all-total reals) but has NO flat buffer, so
                 // flat-buffer consumers must handle it explicitly.
  };

  std::vector<uint64_t> dims;
  std::vector<Value> elems;  // active iff payload == kBoxed
  Payload payload = Payload::kBoxed;
  std::vector<uint64_t> nats;
  std::vector<double> reals;
  std::vector<uint8_t> bools;
  std::shared_ptr<const LazyRealSlab> tiled;  // active iff payload == kTiled

  uint64_t TotalSize() const;
  // Row-major flattening of a multi-index; no bounds checking.
  uint64_t Flatten(const std::vector<uint64_t>& index) const;
  // True iff index[i] < dims[i] for all i and arities match.
  bool InBounds(const std::vector<uint64_t>& index) const;

  bool unboxed() const { return payload != Payload::kBoxed; }
  // Element count of the active payload (== TotalSize() for valid reps).
  uint64_t Count() const;
  // The element at flat index i, boxed on demand for unboxed payloads.
  Value At(uint64_t i) const;
};

// Abstract function value: closures (eval module) and registered external
// primitives (env module) both implement this.
class FuncValue {
 public:
  virtual ~FuncValue() = default;
  virtual Result<Value> Apply(const Value& arg) const = 0;
  // Diagnostic name shown by the printer, e.g. "<fn>" or "<prim:heatindex>".
  virtual std::string name() const { return "<fn>"; }
};

class Value {
 public:
  // Default-constructed value is bottom; keeps vectors of Value usable.
  Value() : rep_(BottomTag{}) {}

  static Value Bottom() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Nat(uint64_t n) { return Value(Rep(n)); }
  static Value Real(double d) { return Value(Rep(d)); }
  static Value Str(std::string s);
  static Value MakeTuple(std::vector<Value> fields);
  // Builds a canonical set: sorts and deduplicates.
  static Value MakeSet(std::vector<Value> elems);
  // Precondition: already sorted and deduplicated (checked in debug builds).
  static Value MakeSetCanonical(std::vector<Value> elems);
  static Value EmptySet() { return MakeSetCanonical({}); }
  // dims must be non-empty; elems.size() must equal product(dims).
  // Scans the elements and selects the canonical (possibly unboxed)
  // payload; see ArrayRep.
  static Result<Value> MakeArray(std::vector<uint64_t> dims, std::vector<Value> elems);
  static Value MakeVector(std::vector<Value> elems);  // 1-d array
  // Typed constructors building the unboxed payloads directly (no per-cell
  // boxing): used by tabulation kernels (src/exec) and the NetCDF drivers.
  static Result<Value> MakeNatArray(std::vector<uint64_t> dims, std::vector<uint64_t> data);
  static Result<Value> MakeRealArray(std::vector<uint64_t> dims, std::vector<double> data);
  static Result<Value> MakeBoolArray(std::vector<uint64_t> dims, std::vector<uint8_t> data);
  // Out-of-core array over a tiled slab (dims taken from slab->dims()).
  // Error if the slab is null, its rank is 0, or its volume violates
  // CheckedVolume. Semantically identical to the MakeRealArray the slab
  // would materialize to — except that element access can fail on I/O
  // errors, which ArrayRep::At maps to ⊥ (ReadInto callers see a Status).
  static Result<Value> MakeTiledArray(std::shared_ptr<const LazyRealSlab> slab);
  static Value MakeFunc(std::shared_ptr<const FuncValue> fn);

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_bottom() const { return kind() == ValueKind::kBottom; }

  // Accessors; callers must check the kind first (asserted in debug builds).
  bool bool_value() const { return std::get<bool>(rep_); }
  uint64_t nat_value() const { return std::get<uint64_t>(rep_); }
  double real_value() const { return std::get<double>(rep_); }
  const std::string& str_value() const { return *std::get<StrPtr>(rep_); }
  const std::vector<Value>& tuple_fields() const { return *std::get<TuplePtr>(rep_); }
  const SetRep& set() const { return *std::get<SetPtr>(rep_); }
  const ArrayRep& array() const { return *std::get<ArrayPtr>(rep_); }
  const FuncValue& func() const { return *std::get<FuncPtr>(rep_); }
  std::shared_ptr<const FuncValue> func_ptr() const { return std::get<FuncPtr>(rep_); }

  // The definable linear order <_t of the paper (see [21]): total over all
  // values, kind-rank first, then structural/lexicographic within a kind.
  // Function values compare by identity (they never occur inside data).
  // Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  bool Equals(const Value& other) const { return Compare(*this, other) == 0; }
  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }
  bool operator<(const Value& other) const { return Compare(*this, other) < 0; }

  // Set helpers (operate on canonical reps).
  bool SetContains(const Value& elem) const;
  static Value SetUnion(const Value& a, const Value& b);

  // Exchange-format rendering (§3 grammar). Arrays print in the dense
  // row-major literal form [[d1,...,dk; v0,...,vn-1]].
  std::string ToString() const;
  // Display form used by the REPL: arrays print as [[(i1,..,ik):v, ...]]
  // like the sample session in §4.2; long values are elided after
  // `max_items` entries per collection (0 means no limit).
  std::string ToDisplayString(size_t max_items = 0) const;

 private:
  struct BottomTag {
    bool operator==(const BottomTag&) const { return true; }
  };
  using StrPtr = std::shared_ptr<const std::string>;
  using TuplePtr = std::shared_ptr<const std::vector<Value>>;
  using SetPtr = std::shared_ptr<const SetRep>;
  using ArrayPtr = std::shared_ptr<const ArrayRep>;
  using FuncPtr = std::shared_ptr<const FuncValue>;
  // Variant order must match ValueKind enumerator order.
  using Rep = std::variant<BottomTag, bool, uint64_t, double, StrPtr, TuplePtr,
                           SetPtr, ArrayPtr, FuncPtr>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

// The tabulation element cap: AQL_EXEC_MAX_ELEMS when set (> 0), else
// 2^36. Bounds whose product exceeds this (or overflows uint64_t) are
// rejected by both backends with an EvalError instead of being silently
// clamped. Re-read per call so tests can vary the cap.
uint64_t MaxArrayElements();

// Overflow-checked row-major volume of a dims vector, validated against
// MaxArrayElements(). EvalError on overflow or cap excess.
Result<uint64_t> CheckedVolume(const std::vector<uint64_t>& dims);

// Structural hash consistent with the linear order:
// Compare(a, b) == 0  ⇒  HashValue(a) == HashValue(b).
// Function values hash by identity, matching Compare. Used by the plan
// cache to hash literal subterms of resolved queries.
//
// Tiled arrays are the one deliberate relaxation: they hash by
// ProvenanceHash() (dataset + region), not content, because hashing must
// never perform I/O. Content-equal values of different provenance may
// therefore hash differently — for the caches that's only a missed hit,
// never a wrong answer, since every hash match is confirmed by Compare.
uint64_t HashValue(const Value& v);

// Approximate heap footprint of a value in bytes: payload buffers plus a
// fixed per-node overhead, counted as if nothing were shared (shared
// substructure is charged at every reference). Cheap for unboxed arrays
// (O(1)), O(n) for nested data. Used by the byte-bounded caches
// (service::ResultCache, PlanCache) for honest-enough accounting.
uint64_t ApproxValueBytes(const Value& v);

// The rectangular subslab arr[lower[j] .. lower[j]+extents[j]) per
// dimension, as a new array of dims == extents. Preserves the unboxed
// payload kind (a nat slab slices into a nat slab — no boxing), which is
// what lets the result cache serve a contained subslab request by
// copying rows out of the cached buffer instead of re-executing.
// InvalidArgument when arities mismatch or the slab leaves the array;
// EvalError (via CheckedVolume) when extents are empty or overflow.
Result<Value> SliceArray(const ArrayRep& arr, const std::vector<uint64_t>& lower,
                         const std::vector<uint64_t>& extents);

}  // namespace aql

#endif  // AQL_OBJECT_VALUE_H_
