#include "object/value_write.h"

#include <cmath>
#include <cstdio>

#include "base/strings.h"

namespace aql {

bool ParseValueFormat(std::string_view name, ValueFormat* out) {
  if (name == "text") {
    *out = ValueFormat::kText;
    return true;
  }
  if (name == "json") {
    *out = ValueFormat::kJson;
    return true;
  }
  return false;
}

std::string_view ValueFormatContentType(ValueFormat format) {
  return format == ValueFormat::kJson ? "application/json" : "text/plain";
}

ValueWriter::ValueWriter(Sink sink, ValueFormat format, size_t flush_bytes)
    : sink_(std::move(sink)),
      format_(format),
      flush_bytes_(flush_bytes < 64 ? 64 : flush_bytes) {}

Status ValueWriter::Write(const Value& v) {
  buffer_.clear();
  bytes_emitted_ = 0;
  flushes_ = 0;
  AQL_RETURN_IF_ERROR(format_ == ValueFormat::kJson ? WalkJson(v) : Walk(v));
  return FlushNow();
}

Status ValueWriter::MaybeFlush() {
  if (buffer_.size() < flush_bytes_) return Status::OK();
  return FlushNow();
}

Status ValueWriter::FlushNow() {
  // The final flush always runs, so even an empty rendering reaches the
  // sink at least once (flushes() >= 1 lets callers finish a response).
  bytes_emitted_ += buffer_.size();
  ++flushes_;
  Status s = sink_(buffer_);
  buffer_.clear();
  return s;
}

namespace {

// Mirrors the escaping of Value::ToString (pinned byte-identical by
// tests/value_write_test.cc).
void AppendQuotedText(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

Status ValueWriter::Walk(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      Append("bottom");
      return MaybeFlush();
    case ValueKind::kBool:
      Append(v.bool_value() ? "true" : "false");
      return MaybeFlush();
    case ValueKind::kNat:
      Append(std::to_string(v.nat_value()));
      return MaybeFlush();
    case ValueKind::kReal:
      Append(RealToString(v.real_value()));
      return MaybeFlush();
    case ValueKind::kString:
      AppendQuotedText(v.str_value(), &buffer_);
      return MaybeFlush();
    case ValueKind::kTuple: {
      Append("(");
      const auto& fields = v.tuple_fields();
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) Append(", ");
        AQL_RETURN_IF_ERROR(Walk(fields[i]));
      }
      Append(")");
      return MaybeFlush();
    }
    case ValueKind::kSet: {
      Append("{");
      const auto& elems = v.set().elems;
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) Append(", ");
        AQL_RETURN_IF_ERROR(Walk(elems[i]));
      }
      Append("}");
      return MaybeFlush();
    }
    case ValueKind::kArray:
      return EmitArrayText(v.array());
    case ValueKind::kFunc:
      Append(v.func().name());
      return MaybeFlush();
  }
  return Status::OK();
}

Status ValueWriter::EmitArrayText(const ArrayRep& a) {
  Append("[[");
  for (size_t i = 0; i < a.dims.size(); ++i) {
    if (i > 0) Append(",");
    Append(std::to_string(a.dims[i]));
  }
  Append("; ");
  // The payload-typed loops append scalars straight from the flat buffer;
  // this is the path that keeps a huge dense array out of memory.
  switch (a.payload) {
    case ArrayRep::Payload::kNats:
      for (size_t i = 0; i < a.nats.size(); ++i) {
        if (i > 0) Append(", ");
        Append(std::to_string(a.nats[i]));
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kReals:
      for (size_t i = 0; i < a.reals.size(); ++i) {
        if (i > 0) Append(", ");
        Append(RealToString(a.reals[i]));
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kBools:
      for (size_t i = 0; i < a.bools.size(); ++i) {
        if (i > 0) Append(", ");
        Append(a.bools[i] != 0 ? "true" : "false");
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kBoxed:
      for (size_t i = 0; i < a.elems.size(); ++i) {
        if (i > 0) Append(", ");
        AQL_RETURN_IF_ERROR(Walk(a.elems[i]));
      }
      break;
    case ArrayRep::Payload::kTiled:
      // Element-at-a-time through the tile cache: rendering never holds
      // more than the write buffer plus one tile in memory.
      for (uint64_t i = 0, n = a.TotalSize(); i < n; ++i) {
        if (i > 0) Append(", ");
        AQL_ASSIGN_OR_RETURN(double d, a.tiled->AtFlat(i));
        Append(RealToString(d));
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
  }
  Append("]]");
  return MaybeFlush();
}

void ValueWriter::AppendRealJson(double d) {
  if (!std::isfinite(d)) {
    Append("null");
    return;
  }
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%.17g", d);
  std::string_view s(buf, static_cast<size_t>(n));
  Append(s);
  // A bare integer rendering stays a JSON number either way, but keeping
  // the decimal point preserves the nat/real distinction for clients.
  if (s.find('.') == std::string_view::npos && s.find('e') == std::string_view::npos) {
    Append(".0");
  }
}

void ValueWriter::AppendQuotedJson(const std::string& s) {
  buffer_.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': buffer_.append("\\\""); break;
      case '\\': buffer_.append("\\\\"); break;
      case '\n': buffer_.append("\\n"); break;
      case '\t': buffer_.append("\\t"); break;
      case '\r': buffer_.append("\\r"); break;
      case '\b': buffer_.append("\\b"); break;
      case '\f': buffer_.append("\\f"); break;
      default:
        if (c < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          buffer_.append(esc);
        } else {
          buffer_.push_back(static_cast<char>(c));
        }
    }
  }
  buffer_.push_back('"');
}

Status ValueWriter::WalkJson(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      Append("null");
      return MaybeFlush();
    case ValueKind::kBool:
      Append(v.bool_value() ? "true" : "false");
      return MaybeFlush();
    case ValueKind::kNat:
      Append(std::to_string(v.nat_value()));
      return MaybeFlush();
    case ValueKind::kReal:
      AppendRealJson(v.real_value());
      return MaybeFlush();
    case ValueKind::kString:
      AppendQuotedJson(v.str_value());
      return MaybeFlush();
    case ValueKind::kTuple:
    case ValueKind::kSet: {
      const auto& elems =
          v.kind() == ValueKind::kTuple ? v.tuple_fields() : v.set().elems;
      Append("[");
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) Append(",");
        AQL_RETURN_IF_ERROR(WalkJson(elems[i]));
      }
      Append("]");
      return MaybeFlush();
    }
    case ValueKind::kArray:
      return EmitArrayJson(v.array());
    case ValueKind::kFunc:
      AppendQuotedJson(v.func().name());
      return MaybeFlush();
  }
  return Status::OK();
}

Status ValueWriter::EmitArrayJson(const ArrayRep& a) {
  Append("{\"dims\":[");
  for (size_t i = 0; i < a.dims.size(); ++i) {
    if (i > 0) Append(",");
    Append(std::to_string(a.dims[i]));
  }
  Append("],\"data\":[");
  switch (a.payload) {
    case ArrayRep::Payload::kNats:
      for (size_t i = 0; i < a.nats.size(); ++i) {
        if (i > 0) Append(",");
        Append(std::to_string(a.nats[i]));
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kReals:
      for (size_t i = 0; i < a.reals.size(); ++i) {
        if (i > 0) Append(",");
        AppendRealJson(a.reals[i]);
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kBools:
      for (size_t i = 0; i < a.bools.size(); ++i) {
        if (i > 0) Append(",");
        Append(a.bools[i] != 0 ? "true" : "false");
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
    case ArrayRep::Payload::kBoxed:
      for (size_t i = 0; i < a.elems.size(); ++i) {
        if (i > 0) Append(",");
        AQL_RETURN_IF_ERROR(WalkJson(a.elems[i]));
      }
      break;
    case ArrayRep::Payload::kTiled:
      for (uint64_t i = 0, n = a.TotalSize(); i < n; ++i) {
        if (i > 0) Append(",");
        AQL_ASSIGN_OR_RETURN(double d, a.tiled->AtFlat(i));
        AppendRealJson(d);
        AQL_RETURN_IF_ERROR(MaybeFlush());
      }
      break;
  }
  Append("]}");
  return MaybeFlush();
}

std::string ValueToJson(const Value& v) {
  std::string out;
  ValueWriter writer(
      [&out](std::string_view fragment) {
        out.append(fragment);
        return Status::OK();
      },
      ValueFormat::kJson);
  (void)writer.Write(v);
  return out;
}

}  // namespace aql
