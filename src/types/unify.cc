#include "types/unify.h"

#include "base/strings.h"

namespace aql {

TypePtr TypeUnifier::Shallow(const TypePtr& t) const {
  TypePtr cur = t;
  while (cur->is(TypeKind::kVar)) {
    auto it = subst_.find(cur->var_id());
    if (it == subst_.end()) break;
    cur = it->second;
  }
  return cur;
}

TypePtr TypeUnifier::Resolve(const TypePtr& t) const {
  TypePtr cur = Shallow(t);
  switch (cur->kind()) {
    case TypeKind::kProduct: {
      std::vector<TypePtr> fields;
      fields.reserve(cur->fields().size());
      for (const TypePtr& f : cur->fields()) fields.push_back(Resolve(f));
      return Type::Product(std::move(fields));
    }
    case TypeKind::kSet:
      return Type::Set(Resolve(cur->elem()));
    case TypeKind::kArray:
      return Type::Array(Resolve(cur->elem()), cur->rank());
    case TypeKind::kArrow:
      return Type::Arrow(Resolve(cur->from()), Resolve(cur->to()));
    default:
      return cur;
  }
}

bool TypeUnifier::Occurs(uint64_t var_id, const TypePtr& t) const {
  TypePtr cur = Shallow(t);
  if (cur->is(TypeKind::kVar)) return cur->var_id() == var_id;
  switch (cur->kind()) {
    case TypeKind::kProduct:
      for (const TypePtr& f : cur->fields()) {
        if (Occurs(var_id, f)) return true;
      }
      return false;
    case TypeKind::kSet:
    case TypeKind::kArray:
      return Occurs(var_id, cur->elem());
    case TypeKind::kArrow:
      return Occurs(var_id, cur->from()) || Occurs(var_id, cur->to());
    default:
      return false;
  }
}

Status TypeUnifier::Unify(const TypePtr& a, const TypePtr& b) {
  TypePtr x = Shallow(a);
  TypePtr y = Shallow(b);
  if (x->is(TypeKind::kVar) && y->is(TypeKind::kVar) && x->var_id() == y->var_id()) {
    return Status::OK();
  }
  if (x->is(TypeKind::kVar)) {
    if (Occurs(x->var_id(), y)) {
      return Status::TypeError(StrCat("occurs check failed: '", x->ToString(), " in ",
                                      Resolve(y)->ToString()));
    }
    subst_[x->var_id()] = y;
    return Status::OK();
  }
  if (y->is(TypeKind::kVar)) return Unify(y, x);
  if (x->kind() != y->kind()) {
    return Status::TypeError(
        StrCat("cannot unify ", Resolve(x)->ToString(), " with ", Resolve(y)->ToString()));
  }
  switch (x->kind()) {
    case TypeKind::kBase:
      if (x->base_name() != y->base_name()) {
        return Status::TypeError(
            StrCat("cannot unify base type ", x->base_name(), " with ", y->base_name()));
      }
      return Status::OK();
    case TypeKind::kProduct: {
      if (x->fields().size() != y->fields().size()) {
        return Status::TypeError(StrCat("tuple arity mismatch: ", x->fields().size(),
                                        " vs ", y->fields().size()));
      }
      for (size_t i = 0; i < x->fields().size(); ++i) {
        AQL_RETURN_IF_ERROR(Unify(x->fields()[i], y->fields()[i]));
      }
      return Status::OK();
    }
    case TypeKind::kSet:
      return Unify(x->elem(), y->elem());
    case TypeKind::kArray:
      if (x->rank() != y->rank()) {
        return Status::TypeError(
            StrCat("array rank mismatch: ", x->rank(), " vs ", y->rank()));
      }
      return Unify(x->elem(), y->elem());
    case TypeKind::kArrow:
      AQL_RETURN_IF_ERROR(Unify(x->from(), y->from()));
      return Unify(x->to(), y->to());
    default:
      return Status::OK();  // identical primitive kinds
  }
}

}  // namespace aql
