#include "types/type.h"

#include <cctype>
#include <map>

#include "base/strings.h"

namespace aql {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kBool: return "bool";
    case TypeKind::kNat: return "nat";
    case TypeKind::kReal: return "real";
    case TypeKind::kString: return "string";
    case TypeKind::kBase: return "base";
    case TypeKind::kProduct: return "product";
    case TypeKind::kSet: return "set";
    case TypeKind::kArray: return "array";
    case TypeKind::kArrow: return "arrow";
    case TypeKind::kVar: return "var";
  }
  return "unknown";
}

TypePtr Type::Bool() {
  static const TypePtr t(new Type(TypeKind::kBool, {}, {}, 0, 0));
  return t;
}
TypePtr Type::Nat() {
  static const TypePtr t(new Type(TypeKind::kNat, {}, {}, 0, 0));
  return t;
}
TypePtr Type::Real() {
  static const TypePtr t(new Type(TypeKind::kReal, {}, {}, 0, 0));
  return t;
}
TypePtr Type::String() {
  static const TypePtr t(new Type(TypeKind::kString, {}, {}, 0, 0));
  return t;
}
TypePtr Type::Base(std::string name) {
  return TypePtr(new Type(TypeKind::kBase, std::move(name), {}, 0, 0));
}
TypePtr Type::Product(std::vector<TypePtr> fields) {
  return TypePtr(new Type(TypeKind::kProduct, {}, std::move(fields), 0, 0));
}
TypePtr Type::Set(TypePtr elem) {
  return TypePtr(new Type(TypeKind::kSet, {}, {std::move(elem)}, 0, 0));
}
TypePtr Type::Array(TypePtr elem, size_t rank) {
  return TypePtr(new Type(TypeKind::kArray, {}, {std::move(elem)}, rank, 0));
}
TypePtr Type::Arrow(TypePtr from, TypePtr to) {
  return TypePtr(new Type(TypeKind::kArrow, {}, {std::move(from), std::move(to)}, 0, 0));
}
TypePtr Type::Var(uint64_t id) {
  return TypePtr(new Type(TypeKind::kVar, {}, {}, 0, id));
}

bool Type::IsObjectType() const {
  switch (kind_) {
    case TypeKind::kArrow:
    case TypeKind::kVar:
      return false;
    case TypeKind::kProduct:
    case TypeKind::kSet:
    case TypeKind::kArray: {
      for (const TypePtr& c : children_) {
        if (!c->IsObjectType()) return false;
      }
      return true;
    }
    default:
      return true;
  }
}

bool Type::IsGround() const {
  if (kind_ == TypeKind::kVar) return false;
  for (const TypePtr& c : children_) {
    if (!c->IsGround()) return false;
  }
  return true;
}

bool Type::Equals(const TypePtr& a, const TypePtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind_ != b->kind_) return false;
  switch (a->kind_) {
    case TypeKind::kBase:
      return a->name_ == b->name_;
    case TypeKind::kVar:
      return a->var_id_ == b->var_id_;
    case TypeKind::kArray:
      if (a->rank_ != b->rank_) return false;
      [[fallthrough]];
    default: {
      if (a->children_.size() != b->children_.size()) return false;
      for (size_t i = 0; i < a->children_.size(); ++i) {
        if (!Equals(a->children_[i], b->children_[i])) return false;
      }
      return true;
    }
  }
}

namespace {

// Precedence: arrow (lowest) < product < atom.
void Append(const Type& t, int prec, std::string* out) {
  switch (t.kind()) {
    case TypeKind::kBool: out->append("bool"); return;
    case TypeKind::kNat: out->append("nat"); return;
    case TypeKind::kReal: out->append("real"); return;
    case TypeKind::kString: out->append("string"); return;
    case TypeKind::kBase: out->append(t.base_name()); return;
    case TypeKind::kVar:
      out->push_back('\'');
      out->push_back(static_cast<char>('a' + t.var_id() % 26));
      if (t.var_id() >= 26) out->append(std::to_string(t.var_id() / 26));
      return;
    case TypeKind::kSet:
      out->push_back('{');
      Append(*t.elem(), 0, out);
      out->push_back('}');
      return;
    case TypeKind::kArray:
      out->append("[[");
      Append(*t.elem(), 0, out);
      out->append("]]_");
      out->append(std::to_string(t.rank()));
      return;
    case TypeKind::kProduct: {
      if (prec > 1) out->push_back('(');
      const auto& fs = t.fields();
      for (size_t i = 0; i < fs.size(); ++i) {
        if (i > 0) out->append(" * ");
        Append(*fs[i], 2, out);
      }
      if (prec > 1) out->push_back(')');
      return;
    }
    case TypeKind::kArrow:
      if (prec > 0) out->push_back('(');
      Append(*t.from(), 1, out);
      out->append(" -> ");
      Append(*t.to(), 0, out);
      if (prec > 0) out->push_back(')');
      return;
  }
}

class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  Result<TypePtr> Parse() {
    AQL_ASSIGN_OR_RETURN(TypePtr t, ParseArrow());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::FormatError(StrCat("trailing characters in type at offset ", pos_));
    }
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeIf(std::string_view tok) {
    SkipSpace();
    if (text_.substr(pos_, tok.size()) == tok) {
      pos_ += tok.size();
      return true;
    }
    return false;
  }

  Result<TypePtr> ParseArrow() {
    AQL_ASSIGN_OR_RETURN(TypePtr lhs, ParseProduct());
    if (ConsumeIf("->")) {
      AQL_ASSIGN_OR_RETURN(TypePtr rhs, ParseArrow());
      return Type::Arrow(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TypePtr> ParseProduct() {
    AQL_ASSIGN_OR_RETURN(TypePtr first, ParseAtom());
    std::vector<TypePtr> fields{std::move(first)};
    while (true) {
      SkipSpace();
      // '*' begins a product component; make sure we are not eating "->".
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        AQL_ASSIGN_OR_RETURN(TypePtr next, ParseAtom());
        fields.push_back(std::move(next));
      } else {
        break;
      }
    }
    if (fields.size() == 1) return std::move(fields[0]);
    return Type::Product(std::move(fields));
  }

  Result<TypePtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::FormatError("unexpected end of type");
    char c = text_[pos_];
    if (c == '\'') {
      // Type variable: 'a, 'elem, ... Same name = same variable within
      // one parse (used for polymorphic primitive schemes).
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                     text_[pos_] == '_')) {
        ++pos_;
      }
      if (start == pos_) return Status::FormatError("expected name after ' in type");
      std::string name(text_.substr(start, pos_ - start));
      auto [it, inserted] = vars_.emplace(name, vars_.size());
      return Type::Var(it->second);
    }
    if (c == '(') {
      ++pos_;
      AQL_ASSIGN_OR_RETURN(TypePtr t, ParseArrow());
      if (!ConsumeIf(")")) return Status::FormatError("expected ')' in type");
      return t;
    }
    if (c == '{') {
      ++pos_;
      AQL_ASSIGN_OR_RETURN(TypePtr t, ParseArrow());
      if (!ConsumeIf("}")) return Status::FormatError("expected '}' in type");
      return Type::Set(std::move(t));
    }
    if (text_.substr(pos_, 2) == "[[") {
      pos_ += 2;
      AQL_ASSIGN_OR_RETURN(TypePtr t, ParseArrow());
      if (!ConsumeIf("]]")) return Status::FormatError("expected ']]' in type");
      size_t rank = 1;
      if (ConsumeIf("_")) {
        SkipSpace();
        size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        if (start == pos_) return Status::FormatError("expected rank after ']]_'");
        rank = std::stoul(std::string(text_.substr(start, pos_ - start)));
        if (rank == 0) return Status::FormatError("array rank must be >= 1");
      }
      return Type::Array(std::move(t), rank);
    }
    // Identifier.
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '_')) {
      ++pos_;
    }
    if (start == pos_) {
      return Status::FormatError(StrCat("unexpected character '", std::string(1, c),
                                        "' in type at offset ", pos_));
    }
    std::string word(text_.substr(start, pos_ - start));
    if (word == "bool") return Type::Bool();
    if (word == "nat" || word == "int") return Type::Nat();
    if (word == "real") return Type::Real();
    if (word == "string") return Type::String();
    return Type::Base(std::move(word));
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::map<std::string, uint64_t> vars_;
};

}  // namespace

std::string Type::ToString() const {
  std::string out;
  Append(*this, 0, &out);
  return out;
}

Result<TypePtr> ParseType(std::string_view text) { return TypeParser(text).Parse(); }

}  // namespace aql
