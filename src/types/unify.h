// Unification for the inference-based type checker.
//
// The surface language has unannotated binders (fn \x => e, comprehension
// generators), so the checker introduces fresh type variables and unifies.
// There is no polymorphism: macros are substituted into the query before
// checking (paper §4.1), so every use site is checked at its concrete type.

#ifndef AQL_TYPES_UNIFY_H_
#define AQL_TYPES_UNIFY_H_

#include <cstdint>
#include <unordered_map>

#include "base/result.h"
#include "types/type.h"

namespace aql {

class TypeUnifier {
 public:
  TypePtr Fresh() { return Type::Var(next_var_id_++); }

  // Makes a and b equal, extending the substitution; occurs-check guarded.
  Status Unify(const TypePtr& a, const TypePtr& b);

  // Fully applies the current substitution to t ("zonking"). Unsolved
  // variables remain as kVar.
  TypePtr Resolve(const TypePtr& t) const;

  // One-step resolution of a variable chain; non-variables are returned
  // unchanged.
  TypePtr Shallow(const TypePtr& t) const;

 private:
  bool Occurs(uint64_t var_id, const TypePtr& t) const;

  uint64_t next_var_id_ = 0;
  std::unordered_map<uint64_t, TypePtr> subst_;
};

}  // namespace aql

#endif  // AQL_TYPES_UNIFY_H_
