// The NRCA type system (paper §2, Fig. 1).
//
// Object types:
//
//   t ::= b | B | N | t1 x ... x tk | {t} | [[t]]_k
//
// plus object function types t1 -> t2. We add two interpreted base types the
// paper's examples use (real, string), uninterpreted named base types, and
// type variables used internally by the unification-based checker so the
// unannotated surface language (fn \x => e, comprehensions) can be inferred.
//
// Types are immutable trees behind shared_ptr; TypePtr equality is
// structural (Type::Equals).

#ifndef AQL_TYPES_TYPE_H_
#define AQL_TYPES_TYPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"

namespace aql {

class Type;
using TypePtr = std::shared_ptr<const Type>;

enum class TypeKind {
  kBool,
  kNat,
  kReal,
  kString,
  kBase,     // uninterpreted base type with a name
  kProduct,  // k-ary product, k >= 2
  kSet,
  kArray,    // element type + dimensionality k >= 1
  kArrow,    // object function type
  kVar,      // unification variable (checker-internal)
};

const char* TypeKindName(TypeKind kind);

class Type {
 public:
  static TypePtr Bool();
  static TypePtr Nat();
  static TypePtr Real();
  static TypePtr String();
  static TypePtr Base(std::string name);
  static TypePtr Product(std::vector<TypePtr> fields);
  static TypePtr Set(TypePtr elem);
  static TypePtr Array(TypePtr elem, size_t rank);
  static TypePtr Arrow(TypePtr from, TypePtr to);
  static TypePtr Var(uint64_t id);

  TypeKind kind() const { return kind_; }
  bool is(TypeKind k) const { return kind_ == k; }

  const std::string& base_name() const { return name_; }
  const std::vector<TypePtr>& fields() const { return children_; }  // product
  const TypePtr& elem() const { return children_[0]; }              // set/array
  size_t rank() const { return rank_; }                             // array
  const TypePtr& from() const { return children_[0]; }              // arrow
  const TypePtr& to() const { return children_[1]; }                // arrow
  uint64_t var_id() const { return var_id_; }

  // True for types co-domain values can inhabit (everything but kArrow and
  // kVar); function types may not appear inside products, sets, or arrays.
  bool IsObjectType() const;
  // True when the type contains no unification variables.
  bool IsGround() const;

  static bool Equals(const TypePtr& a, const TypePtr& b);

  // Paper-style rendering: "nat", "{nat}", "[[real]]_3",
  // "nat * nat -> nat", "b<name>" for uninterpreted bases, "'a" for vars.
  std::string ToString() const;

 private:
  Type(TypeKind kind, std::string name, std::vector<TypePtr> children, size_t rank,
       uint64_t var_id)
      : kind_(kind),
        name_(std::move(name)),
        children_(std::move(children)),
        rank_(rank),
        var_id_(var_id) {}

  TypeKind kind_;
  std::string name_;
  std::vector<TypePtr> children_;
  size_t rank_ = 0;
  uint64_t var_id_ = 0;
};

// Parses the textual type syntax used when registering external primitives,
// e.g. "real * real * nat -> nat", "{nat * string}", "[[real]]_3".
Result<TypePtr> ParseType(std::string_view text);

}  // namespace aql

#endif  // AQL_TYPES_TYPE_H_
