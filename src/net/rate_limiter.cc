#include "net/rate_limiter.h"

#include <algorithm>
#include <cmath>

namespace aql {
namespace net {

RateLimitDecision RateLimiter::Admit(const std::string& key, uint64_t now_us) {
  if (rate_per_sec_ <= 0.0) return {};
  MutexLock lock(&mu_);
  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    if (buckets_.size() >= max_clients_) {
      buckets_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    it = buckets_.emplace(key, Bucket{burst_, now_us, lru_.begin()}).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    Bucket& b = it->second;
    // Refill for the elapsed interval; a clock that appears to step
    // backwards (shouldn't, on steady_clock) just refills nothing.
    if (now_us > b.last_refill_us) {
      double elapsed_s = static_cast<double>(now_us - b.last_refill_us) / 1e6;
      b.tokens = std::min(burst_, b.tokens + elapsed_s * rate_per_sec_);
    }
    b.last_refill_us = now_us;
  }
  Bucket& b = it->second;
  if (b.tokens >= 1.0) {
    b.tokens -= 1.0;
    return {};
  }
  // Seconds until the deficit to a whole token refills, rounded up (and
  // at least 1, so Retry-After is always meaningful).
  double deficit = 1.0 - b.tokens;
  uint64_t wait_s = static_cast<uint64_t>(std::ceil(deficit / rate_per_sec_));
  return {.allowed = false, .retry_after_s = std::max<uint64_t>(wait_s, 1)};
}

size_t RateLimiter::num_clients() const {
  MutexLock lock(&mu_);
  return buckets_.size();
}

}  // namespace net
}  // namespace aql
