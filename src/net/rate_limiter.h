// Per-client token-bucket rate limiting for the HTTP front end.
//
// Each client key (an API token from the X-AQL-Token header, falling back
// to the peer IP) owns a bucket holding up to `burst` tokens that refills
// continuously at `rate_per_sec`. A request costs one token; an empty
// bucket means the request is rejected with 429 and a Retry-After telling
// the client when a whole token will have accumulated.
//
// Time is injected (microsecond ticks) so the refill math is unit-testable
// without sleeping; the server feeds it a steady_clock reading. Buckets
// are created on first use and capped: past `max_clients` distinct keys,
// the least-recently-used bucket is evicted (an attacker enumerating keys
// trades rate-limit memory for starting each key at full burst — bounded
// either way).

#ifndef AQL_NET_RATE_LIMITER_H_
#define AQL_NET_RATE_LIMITER_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "base/sync.h"

namespace aql {
namespace net {

struct RateLimitDecision {
  bool allowed = true;
  // Whole seconds until a full token exists, >= 1; the Retry-After value.
  uint64_t retry_after_s = 0;
};

class RateLimiter {
 public:
  // rate_per_sec == 0 disables limiting (every Admit allows).
  RateLimiter(double rate_per_sec, double burst, size_t max_clients = 4096)
      : rate_per_sec_(rate_per_sec),
        burst_(burst < 1.0 ? 1.0 : burst),
        max_clients_(max_clients < 1 ? 1 : max_clients) {}

  // Spends one token from `key`'s bucket at time `now_us`.
  RateLimitDecision Admit(const std::string& key, uint64_t now_us);

  size_t num_clients() const;

 private:
  struct Bucket {
    double tokens;
    uint64_t last_refill_us;
    std::list<std::string>::iterator lru_pos;
  };

  const double rate_per_sec_;
  const double burst_;
  const size_t max_clients_;
  mutable Mutex mu_{"net.ratelimit", lock_rank::kRateLimiter};
  std::unordered_map<std::string, Bucket> buckets_ AQL_GUARDED_BY(mu_);
  std::list<std::string> lru_ AQL_GUARDED_BY(mu_);  // front = most recently used
};

}  // namespace net
}  // namespace aql

#endif  // AQL_NET_RATE_LIMITER_H_
