// aql::net::HttpServer — the HTTP/1.1 query front end over
// service::QueryService (the network gateway the paper's §4.1
// module/host split makes possible; docs/HTTP.md is the user guide).
//
// Endpoints:
//   POST /query    body = AQL expression text. Options via query params
//                  (or X-AQL-* headers): deadline_ms, format=text|json,
//                  trace=1, no_cache=1, backend=eval|compiled. Results
//                  stream with chunked transfer encoding through
//                  object/value_write.h — a large array is delivered in
//                  bounded fragments, never materialized as one string.
//   GET  /metrics  MetricsRegistry in Prometheus text exposition format.
//   GET  /healthz  200 "ok" / 503 "draining".
//   GET  /stats    the REPL's :stats report (plus a server line).
//   GET  /slow     recent slow-query profiles (see SlowQueryLog).
//
// Serving model: one acceptor thread plus a base::ThreadPool of
// connection threads; each accepted connection is served whole (blocking
// reads with a timeout, HTTP keep-alive) by one pooled task. Admission
// control is layered:
//   - connection overload: the pool's bounded queue is full -> 503 with
//     Retry-After, written inline by the acceptor;
//   - per-client rate limiting (net/rate_limiter.h, keyed by X-AQL-Token
//     or peer IP) on /query -> 429 with Retry-After;
//   - the service's own admission queue -> 503 with Retry-After.
//
// Shutdown() is a graceful drain: stop accepting, half-close idle
// connections' read sides (in-flight responses still write), wait for
// the connection pool to finish, join. Per-request obs::Span
// instrumentation and http.* counters/histograms land in the *shared*
// service registry, so /metrics and :stats see one coherent picture.

#ifndef AQL_NET_SERVER_H_
#define AQL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/socket.h"
#include "base/sync.h"
#include "base/status.h"
#include "base/thread_pool.h"
#include "net/http.h"
#include "net/rate_limiter.h"
#include "service/service.h"

namespace aql {
namespace net {

// Bounded ring of slow-query reports backing GET /slow. Plug Sink() into
// ServiceConfig::slow_query_sink; thread-safe.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64) : capacity_(capacity < 1 ? 1 : capacity) {}

  void Record(std::string report);
  // Newest first, separated by a blank line.
  std::string Render() const;
  size_t size() const;

  std::function<void(const std::string&)> Sink() {
    return [this](const std::string& report) { Record(report); };
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_{"net.slowlog", lock_rank::kSlowLog};
  std::deque<std::string> reports_ AQL_GUARDED_BY(mu_);  // front = newest
};

struct HttpServerConfig {
  uint16_t port = 8080;       // 0 picks an ephemeral port (see port())
  bool loopback_only = true;  // bind 127.0.0.1; false binds 0.0.0.0
  size_t num_threads = 8;     // connection-serving threads
  // Connections waiting for a serving thread beyond this are refused
  // with 503 (the serving threads themselves bound the concurrency).
  size_t max_pending_connections = 64;
  size_t max_body = 8 * 1024 * 1024;  // request body cap (413 beyond)
  // Per-socket blocking read/write timeout; an idle keep-alive
  // connection is closed after one quiet interval.
  std::chrono::milliseconds io_timeout{30000};
  // Per-client token bucket on /query: sustained requests/second and
  // burst size; 0 disables. Keyed by X-AQL-Token, else peer IP.
  double rate_limit_per_sec = 0;
  double rate_limit_burst = 32;
  // Flush threshold of the streaming result writer == HTTP chunk size.
  size_t stream_chunk_bytes = 64 * 1024;
  // Default deadline applied to /query requests that carry none; zero
  // defers to the service's own default.
  std::chrono::milliseconds default_deadline{0};
  // Rendered by GET /slow when set (wire its Sink() into the service).
  SlowQueryLog* slow_log = nullptr;
};

class HttpServer {
 public:
  // `service` must outlive the server.
  HttpServer(service::QueryService* service, HttpServerConfig config = {});
  ~HttpServer();  // implies Shutdown()

  // Binds and starts the acceptor; returns the bind error on failure.
  Status Start();

  // The bound port (after Start); useful with config.port == 0.
  uint16_t port() const { return listener_.port(); }
  bool running() const { return started_ && !draining_.load(std::memory_order_acquire); }

  // Graceful drain: stop accepting, finish in-flight requests, join all
  // threads. Idempotent; blocks until the server is fully stopped.
  void Shutdown();

  // Total requests served (any endpoint, any status), for tests.
  uint64_t requests_served() const {
    return requests_total_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryParams;  // parsed /query options

  void AcceptLoop();
  void ServeConnection(Socket socket);
  // Returns false when the connection should close after this response.
  bool HandleRequest(const HttpRequest& request, Socket* socket);
  bool HandleQuery(const HttpRequest& request, Socket* socket);
  void HandleMetrics(Socket* socket);
  void HandleHealthz(Socket* socket);
  void HandleStats(Socket* socket);
  void HandleSlow(Socket* socket);
  void CountResponse(int status);
  std::string ClientKey(const HttpRequest& request, const Socket& socket) const;

  service::QueryService* const service_;
  const HttpServerConfig config_;

  Listener listener_;
  RateLimiter rate_limiter_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread acceptor_;
  bool started_ = false;
  std::atomic<bool> draining_{false};
  std::once_flag shutdown_once_;

  // Active connection fds; Shutdown half-closes their read sides so
  // blocked reads wake promptly. An fd is removed under the mutex before
  // its Socket closes, so Shutdown never touches a reused descriptor.
  Mutex conns_mu_{"net.server.conns", lock_rank::kServerConns};
  std::set<int> active_conns_ AQL_GUARDED_BY(conns_mu_);

  // http.* instruments in the shared service registry.
  service::Counter* connections_accepted_;
  service::Counter* connections_refused_;
  service::Counter* requests_;
  service::Counter* responses_2xx_;
  service::Counter* responses_4xx_;
  service::Counter* responses_5xx_;
  service::Counter* rate_limited_;
  service::Counter* parse_errors_;
  service::Counter* bytes_out_;
  service::Histogram* request_us_;

  std::atomic<uint64_t> requests_total_{0};
};

}  // namespace net
}  // namespace aql

#endif  // AQL_NET_SERVER_H_
