#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "base/env.h"
#include "base/strings.h"
#include "object/value_write.h"
#include "obs/trace.h"

namespace aql {
namespace net {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// HTTP status for a failed query, mirroring the Status taxonomy: caller
// errors are 4xx, capacity and deadline problems are the retryable 5xx.
int HttpStatusForQuery(const Status& status) {
  switch (status.code()) {
    case StatusCode::kLexError:
    case StatusCode::kParseError:
    case StatusCode::kTypeError:
    case StatusCode::kNotFound:
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kEvalError:
      return 422;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

}  // namespace

void SlowQueryLog::Record(std::string report) {
  MutexLock lock(&mu_);
  reports_.push_front(std::move(report));
  while (reports_.size() > capacity_) reports_.pop_back();
}

std::string SlowQueryLog::Render() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const std::string& r : reports_) {
    out += r;
    if (!r.empty() && r.back() != '\n') out += '\n';
    out += '\n';
  }
  return out;
}

size_t SlowQueryLog::size() const {
  MutexLock lock(&mu_);
  return reports_.size();
}

HttpServer::HttpServer(service::QueryService* service, HttpServerConfig config)
    : service_(service),
      config_(config),
      rate_limiter_(config.rate_limit_per_sec, config.rate_limit_burst),
      connections_accepted_(service->metrics()->GetCounter("http.connections.accepted")),
      connections_refused_(service->metrics()->GetCounter("http.connections.refused")),
      requests_(service->metrics()->GetCounter("http.requests")),
      responses_2xx_(service->metrics()->GetCounter("http.responses.2xx")),
      responses_4xx_(service->metrics()->GetCounter("http.responses.4xx")),
      responses_5xx_(service->metrics()->GetCounter("http.responses.5xx")),
      rate_limited_(service->metrics()->GetCounter("http.rate_limited")),
      parse_errors_(service->metrics()->GetCounter("http.parse_errors")),
      bytes_out_(service->metrics()->GetCounter("http.bytes_out")),
      request_us_(service->metrics()->GetHistogram("http.latency.request_us")) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  AQL_RETURN_IF_ERROR(listener_.Listen(config_.port, config_.loopback_only));
  pool_ = std::make_unique<ThreadPool>(
      config_.num_threads, config_.max_pending_connections, "net.http.pool");
  acceptor_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return Status::OK();
}

void HttpServer::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    draining_.store(true, std::memory_order_release);
    // 1. Stop accepting: wake the acceptor and join it.
    listener_.Close();
    if (acceptor_.joinable()) acceptor_.join();
    // 2. Wake idle connections: half-close active read sides. In-flight
    //    responses still write; each serving loop exits at its next
    //    request boundary (or EOF).
    {
      MutexLock lock(&conns_mu_);
      for (int fd : active_conns_) ::shutdown(fd, SHUT_RD);
    }
    // 3. Finish in-flight: the pool destructor runs every admitted
    //    connection task to completion, then joins the workers.
    pool_.reset();
  });
}

void HttpServer::AcceptLoop() {
  while (true) {
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kCancelled) return;  // drained
      continue;  // transient accept failure
    }
    connections_accepted_->Increment();
    Socket socket = std::move(*accepted);
    (void)socket.SetTimeout(config_.io_timeout);
    // std::function needs a copyable closure; park the socket in a
    // shared_ptr for the ride to the serving thread.
    auto shared = std::make_shared<Socket>(std::move(socket));
    bool admitted = pool_->TrySubmit([this, shared] {
      ServeConnection(std::move(*shared));
    });
    if (!admitted) {
      // Every serving thread busy and the pending queue full: shed load
      // now, from the acceptor, with an honest Retry-After.
      connections_refused_->Increment();
      CountResponse(503);
      (void)WriteSimpleResponse(shared.get(), 503, "text/plain",
                                "server overloaded; retry later\n",
                                {{"Retry-After", "1"}, {"Connection", "close"}});
    }
  }
}

void HttpServer::ServeConnection(Socket socket) {
  {
    MutexLock lock(&conns_mu_);
    active_conns_.insert(socket.fd());
  }
  HttpParserLimits limits;
  limits.max_body = config_.max_body;
  HttpParser parser(limits);
  char buf[16 * 1024];
  bool keep_alive = true;
  while (keep_alive) {
    // A connection that was queued behind a full pool may start serving
    // after the drain began; don't read a request we won't finish.
    if (draining_.load(std::memory_order_acquire) && parser.idle()) break;
    if (parser.failed()) break;
    if (!parser.done()) {
      Result<size_t> n = socket.Read(buf, sizeof(buf));
      if (!n.ok()) {
        if (n.status().code() == StatusCode::kDeadlineExceeded && !parser.idle()) {
          CountResponse(408);
          (void)WriteSimpleResponse(&socket, 408, "text/plain",
                                    "timed out waiting for request bytes\n",
                                    {{"Connection", "close"}});
        }
        break;  // timeout, reset, or error: close
      }
      if (*n == 0) break;  // orderly EOF
      parser.Feed(std::string_view(buf, *n));
      if (parser.failed()) {
        parse_errors_->Increment();
        CountResponse(parser.http_status());
        (void)WriteSimpleResponse(&socket, parser.http_status(), "text/plain",
                                  StrCat(parser.error().message(), "\n"),
                                  {{"Connection", "close"}});
        break;
      }
      if (!parser.done()) continue;  // need more bytes
    }
    HttpRequest request = parser.TakeRequest();
    bool close_requested = request.Header("connection") == "close";
    keep_alive = HandleRequest(request, &socket) && !close_requested &&
                 !draining_.load(std::memory_order_acquire);
  }
  {
    MutexLock lock(&conns_mu_);
    active_conns_.erase(socket.fd());
  }
  // The socket closes here, after deregistration — Shutdown can never
  // half-close a reused descriptor.
}

bool HttpServer::HandleRequest(const HttpRequest& request, Socket* socket) {
  requests_->Increment();
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  uint64_t start_us = NowUs();
  bool keep_alive = true;
  {
    obs::Span span("http", StrCat("http.", request.method, " ", request.path));
    span.SetDetail(request.target);
    if (request.path == "/query") {
      if (request.method != "POST") {
        CountResponse(405);
        (void)WriteSimpleResponse(socket, 405, "text/plain",
                                  "use POST with the AQL expression as the body\n",
                                  {{"Allow", "POST"}});
      } else {
        keep_alive = HandleQuery(request, socket);
      }
    } else if (request.method != "GET" && request.method != "HEAD") {
      CountResponse(405);
      (void)WriteSimpleResponse(socket, 405, "text/plain", "method not allowed\n",
                                {{"Allow", "GET"}});
    } else if (request.path == "/metrics") {
      HandleMetrics(socket);
    } else if (request.path == "/healthz") {
      HandleHealthz(socket);
    } else if (request.path == "/stats") {
      HandleStats(socket);
    } else if (request.path == "/slow") {
      HandleSlow(socket);
    } else {
      CountResponse(404);
      (void)WriteSimpleResponse(socket, 404, "text/plain",
                                StrCat("no such endpoint: ", request.path, "\n"));
    }
  }
  request_us_->Record(NowUs() - start_us);
  return keep_alive;
}

std::string HttpServer::ClientKey(const HttpRequest& request,
                                  const Socket& socket) const {
  std::string_view token = request.Header("x-aql-token");
  if (!token.empty()) return StrCat("tok:", token);
  // Peer "ip:port" -> ip; every connection from one host shares a bucket.
  const std::string& peer = socket.peer();
  return peer.substr(0, peer.rfind(':'));
}

bool HttpServer::HandleQuery(const HttpRequest& request, Socket* socket) {
  RateLimitDecision decision = rate_limiter_.Admit(ClientKey(request, *socket), NowUs());
  if (!decision.allowed) {
    rate_limited_->Increment();
    CountResponse(429);
    (void)WriteSimpleResponse(
        socket, 429, "text/plain", "rate limit exceeded\n",
        {{"Retry-After", std::to_string(decision.retry_after_s)}});
    return true;
  }
  if (request.body.empty()) {
    CountResponse(400);
    (void)WriteSimpleResponse(socket, 400, "text/plain",
                              "empty query: POST the AQL expression as the body\n");
    return true;
  }

  // Options: query parameters, with X-AQL-* header fallbacks.
  auto param = [&request](const char* name) -> std::string_view {
    auto it = request.query.find(name);
    if (it != request.query.end()) return it->second;
    return {};
  };
  service::QueryOptions options;
  uint64_t deadline_ms = 0;
  std::string_view deadline_str = param("deadline_ms");
  if (deadline_str.empty()) deadline_str = request.Header("x-aql-deadline-ms");
  if (!deadline_str.empty() && !ParseU64Strict(deadline_str, &deadline_ms)) {
    CountResponse(400);
    (void)WriteSimpleResponse(socket, 400, "text/plain",
                              StrCat("invalid deadline_ms: \"", deadline_str, "\"\n"));
    return true;
  }
  options.deadline = deadline_ms > 0 ? std::chrono::milliseconds(deadline_ms)
                                     : config_.default_deadline;
  if (param("no_cache") == "1") {
    options.use_plan_cache = false;
    options.use_result_cache = false;  // both layers: force a real run
  }
  std::string_view backend = param("backend");
  if (backend == "eval") {
    options.use_compiled_backend = false;
  } else if (!backend.empty() && backend != "compiled") {
    CountResponse(400);
    (void)WriteSimpleResponse(socket, 400, "text/plain",
                              StrCat("unknown backend: \"", backend,
                                     "\" (use eval or compiled)\n"));
    return true;
  }
  ValueFormat format = ValueFormat::kText;
  std::string_view format_str = param("format");
  if (!format_str.empty()) {
    if (!ParseValueFormat(format_str, &format)) {
      CountResponse(400);
      (void)WriteSimpleResponse(socket, 400, "text/plain",
                                StrCat("unknown format: \"", format_str,
                                       "\" (use text or json)\n"));
      return true;
    }
  } else if (request.Header("accept").find("application/json") != std::string::npos) {
    format = ValueFormat::kJson;
  }
  bool trace = param("trace") == "1" || request.Header("x-aql-trace") == "1";
  if (trace) options.profile_out = std::make_shared<std::string>();

  Result<Value> result = service_->Submit(request.body, options).Wait();
  if (!result.ok()) {
    int status = HttpStatusForQuery(result.status());
    CountResponse(status);
    std::vector<std::pair<std::string, std::string>> extra;
    if (status == 503) extra.emplace_back("Retry-After", "1");
    (void)WriteSimpleResponse(socket, status, "text/plain",
                              StrCat(result.status().ToString(), "\n"), extra);
    return true;
  }

  // Success: stream the result with chunked transfer encoding. The value
  // writer flushes ~stream_chunk_bytes fragments, each becoming one HTTP
  // chunk — the rendering is never materialized whole.
  CountResponse(200);
  HttpResponseWriter writer(socket);
  std::vector<std::pair<std::string, std::string>> headers;
  headers.emplace_back("Content-Type", std::string(ValueFormatContentType(format)));
  if (draining_.load(std::memory_order_acquire)) {
    headers.emplace_back("Connection", "close");
  }
  Status io = writer.WriteHead(200, /*chunked=*/true, headers);
  ValueWriter value_writer(
      [&writer](std::string_view fragment) { return writer.WriteChunk(fragment); },
      format, config_.stream_chunk_bytes);
  if (io.ok() && trace && format == ValueFormat::kJson) {
    io = writer.WriteChunk("{\"result\":");
  }
  if (io.ok()) io = value_writer.Write(*result);
  if (io.ok() && trace) {
    if (format == ValueFormat::kJson) {
      std::string profile_json;
      ValueWriter profile_writer(
          [&profile_json](std::string_view fragment) {
            profile_json.append(fragment);
            return Status::OK();
          },
          ValueFormat::kJson);
      (void)profile_writer.Write(Value::Str(*options.profile_out));
      io = writer.WriteChunk(StrCat(",\"profile\":", profile_json, "}"));
    } else {
      io = writer.WriteChunk(StrCat("\n--- profile ---\n", *options.profile_out));
    }
  }
  if (io.ok()) io = writer.WriteChunk("\n");
  if (io.ok()) io = writer.FinishChunked();
  bytes_out_->Increment(writer.bytes_written());
  // A mid-stream write failure (peer went away) poisons the connection:
  // the chunk framing is broken, so close instead of serving more.
  return io.ok();
}

void HttpServer::HandleMetrics(Socket* socket) {
  service_->SyncExecStats();
  CountResponse(200);
  HttpResponseWriter writer(socket);
  (void)writer.WriteHead(
      200, /*chunked=*/false,
      {{"Content-Type", "text/plain; version=0.0.4; charset=utf-8"}});
  (void)writer.WriteBody(service_->metrics()->RenderPrometheus());
  bytes_out_->Increment(writer.bytes_written());
}

void HttpServer::HandleHealthz(Socket* socket) {
  bool draining = draining_.load(std::memory_order_acquire) || service_->shutting_down();
  CountResponse(draining ? 503 : 200);
  (void)WriteSimpleResponse(socket, draining ? 503 : 200, "text/plain",
                            draining ? "draining\n" : "ok\n");
}

void HttpServer::HandleStats(Socket* socket) {
  CountResponse(200);
  std::string body =
      StrCat("http: ", config_.num_threads, " connection threads, port ",
             listener_.port(), ", ", requests_served(), " requests served\n",
             service_->StatsReport());
  (void)WriteSimpleResponse(socket, 200, "text/plain", body);
}

void HttpServer::HandleSlow(Socket* socket) {
  if (config_.slow_log == nullptr) {
    CountResponse(404);
    (void)WriteSimpleResponse(
        socket, 404, "text/plain",
        "slow-query log not configured (set HttpServerConfig::slow_log)\n");
    return;
  }
  CountResponse(200);
  std::string body = config_.slow_log->Render();
  if (body.empty()) body = "no slow queries recorded\n";
  (void)WriteSimpleResponse(socket, 200, "text/plain", body);
}

void HttpServer::CountResponse(int status) {
  if (status >= 500) {
    responses_5xx_->Increment();
  } else if (status >= 400) {
    responses_4xx_->Increment();
  } else {
    responses_2xx_->Increment();
  }
}

}  // namespace net
}  // namespace aql
