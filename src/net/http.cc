#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "base/env.h"
#include "base/strings.h"

namespace aql {
namespace net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool IsTokenChar(char c) {
  // RFC 9110 token characters (the set that may appear in methods and
  // header field names).
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  auto it = headers.find(ToLower(name));
  if (it == headers.end()) return {};
  return it->second;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out.push_back(static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2])));
      i += 2;
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void HttpParser::Fail(int http_status, std::string message) {
  error_ = Status::InvalidArgument(std::move(message));
  http_status_ = http_status;
}

void HttpParser::ParseRequestLine(std::string_view line) {
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    Fail(400, StrCat("malformed request line: \"", line, "\""));
    return;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() ||
      !std::all_of(method.begin(), method.end(), IsTokenChar) ||
      !std::all_of(target.begin(), target.end(),
                   [](char c) { return c > 0x20 && c < 0x7f; })) {
    Fail(400, StrCat("malformed request line: \"", line, "\""));
    return;
  }
  // "HTTP/" is case-sensitive: anything else is malformed, not a version
  // we politely decline (505 is reserved for real-but-unsupported ones).
  if (version.substr(0, 5) != "HTTP/") {
    Fail(400, StrCat("malformed request line: \"", line, "\""));
    return;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    Fail(505, StrCat("unsupported HTTP version: \"", version, "\""));
    return;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  size_t qmark = target.find('?');
  request_.path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      size_t amp = qs.find('&');
      std::string_view pair = qs.substr(0, amp);
      qs = amp == std::string_view::npos ? std::string_view{} : qs.substr(amp + 1);
      if (pair.empty()) continue;
      size_t eq = pair.find('=');
      std::string key = UrlDecode(pair.substr(0, eq));
      std::string value =
          eq == std::string_view::npos ? std::string() : UrlDecode(pair.substr(eq + 1));
      request_.query[std::move(key)] = std::move(value);
    }
  }
  state_ = State::kHeaders;
}

void HttpParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers &&
      state_ == State::kHeaders) {
    Fail(431, StrCat("too many header fields (limit ", limits_.max_headers, ")"));
    return;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    Fail(400, "obsolete header line folding is not supported");
    return;
  }
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    Fail(400, StrCat("malformed header line: \"", line, "\""));
    return;
  }
  std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
    Fail(400, StrCat("invalid header field name: \"", name, "\""));
    return;
  }
  std::string value(Trim(line.substr(colon + 1)));
  if (state_ == State::kTrailers) return;  // trailers: parsed, discarded
  std::string key = ToLower(name);
  auto it = request_.headers.find(key);
  if (it == request_.headers.end()) {
    request_.headers.emplace(std::move(key), std::move(value));
  } else {
    it->second += StrCat(", ", value);  // repeated field: RFC 9110 list merge
  }
}

void HttpParser::FinishHeaders() {
  std::string_view te = request_.Header("transfer-encoding");
  std::string_view cl = request_.Header("content-length");
  if (!te.empty()) {
    if (!cl.empty()) {
      Fail(400, "both Transfer-Encoding and Content-Length present");
      return;
    }
    if (ToLower(te) != "chunked") {
      Fail(501, StrCat("unsupported Transfer-Encoding: \"", te, "\""));
      return;
    }
    state_ = State::kChunkSize;
    return;
  }
  if (request_.headers.count("content-length") != 0) {
    uint64_t length = 0;
    // An empty value is a malformed header, not an absent one.
    if (cl.empty() || !ParseU64Strict(cl, &length)) {
      Fail(400, StrCat("invalid Content-Length: \"", cl, "\""));
      return;
    }
    if (length > limits_.max_body) {
      Fail(413, StrCat("body of ", length, " bytes exceeds the limit of ",
                       limits_.max_body));
      return;
    }
    if (length == 0) {
      state_ = State::kDone;
      return;
    }
    body_remaining_ = static_cast<size_t>(length);
    request_.body.reserve(body_remaining_);
    state_ = State::kBody;
    return;
  }
  state_ = State::kDone;
}

void HttpParser::Feed(std::string_view data) {
  if (failed()) return;
  buffer_.append(data);
  while (!failed() && state_ != State::kDone) {
    switch (state_) {
      case State::kRequestLine:
      case State::kHeaders:
      case State::kTrailers:
      case State::kChunkSize: {
        size_t nl = buffer_.find('\n');
        if (nl == std::string::npos) {
          // No complete line yet; enforce the size limit on the partial.
          size_t limit = state_ == State::kRequestLine ? limits_.max_request_line
                                                       : limits_.max_header_bytes;
          size_t used = state_ == State::kRequestLine ? buffer_.size()
                                                      : header_bytes_ + buffer_.size();
          if (used > limit) {
            Fail(state_ == State::kRequestLine ? 414 : 431,
                 state_ == State::kRequestLine
                     ? StrCat("request line exceeds ", limit, " bytes")
                     : StrCat("header section exceeds ", limit, " bytes"));
          }
          return;
        }
        if (nl == 0 || buffer_[nl - 1] != '\r') {
          Fail(400, "line terminated by bare LF (CRLF required)");
          return;
        }
        std::string line = buffer_.substr(0, nl - 1);
        buffer_.erase(0, nl + 1);
        if (state_ == State::kRequestLine) {
          if (line.size() > limits_.max_request_line) {
            Fail(414, StrCat("request line exceeds ", limits_.max_request_line,
                             " bytes"));
            return;
          }
          if (line.empty()) continue;  // tolerate leading empty line(s)
          ParseRequestLine(line);
        } else if (state_ == State::kChunkSize) {
          // "SIZE_HEX[;extensions]\r\n"
          std::string_view size_part(line);
          size_t semi = size_part.find(';');
          size_part = Trim(size_part.substr(0, semi));
          if (size_part.empty() ||
              !std::all_of(size_part.begin(), size_part.end(),
                           [](char c) { return HexDigit(c) >= 0; }) ||
              size_part.size() > 15) {
            Fail(400, StrCat("invalid chunk size: \"", line, "\""));
            return;
          }
          uint64_t size = 0;
          for (char c : size_part) size = size * 16 + static_cast<uint64_t>(HexDigit(c));
          if (request_.body.size() + size > limits_.max_body) {
            Fail(413, StrCat("chunked body exceeds the limit of ", limits_.max_body));
            return;
          }
          if (size == 0) {
            state_ = State::kTrailers;
          } else {
            chunk_remaining_ = static_cast<size_t>(size);
            state_ = State::kChunkData;
          }
        } else {  // kHeaders / kTrailers
          header_bytes_ += line.size() + 2;
          if (header_bytes_ > limits_.max_header_bytes) {
            Fail(431, StrCat("header section exceeds ", limits_.max_header_bytes,
                             " bytes"));
            return;
          }
          if (line.empty()) {
            if (state_ == State::kHeaders) {
              FinishHeaders();
            } else {
              state_ = State::kDone;
            }
          } else {
            ParseHeaderLine(line);
          }
        }
        break;
      }
      case State::kBody: {
        size_t take = std::min(body_remaining_, buffer_.size());
        request_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        body_remaining_ -= take;
        if (body_remaining_ > 0) return;  // need more bytes
        state_ = State::kDone;
        break;
      }
      case State::kChunkData: {
        size_t take = std::min(chunk_remaining_, buffer_.size());
        request_.body.append(buffer_, 0, take);
        buffer_.erase(0, take);
        chunk_remaining_ -= take;
        if (chunk_remaining_ > 0) return;
        state_ = State::kChunkDataEnd;
        break;
      }
      case State::kChunkDataEnd: {
        if (buffer_.size() < 2) return;
        if (buffer_[0] != '\r' || buffer_[1] != '\n') {
          Fail(400, "chunk data not terminated by CRLF");
          return;
        }
        buffer_.erase(0, 2);
        state_ = State::kChunkSize;
        break;
      }
      case State::kDone:
        return;
    }
  }
}

HttpRequest HttpParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  state_ = State::kRequestLine;
  header_bytes_ = 0;
  body_remaining_ = 0;
  chunk_remaining_ = 0;
  // Pipelined bytes already buffered parse immediately.
  if (!buffer_.empty()) Feed({});
  return out;
}

std::string_view HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Content";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

Status HttpResponseWriter::WriteHead(
    int status, bool chunked,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  head_written_ = true;
  chunked_ = chunked;
  head_ = StrCat("HTTP/1.1 ", status, " ", HttpStatusText(status), "\r\n");
  for (const auto& [name, value] : headers) {
    head_ += StrCat(name, ": ", value, "\r\n");
  }
  if (chunked) {
    head_ += "Transfer-Encoding: chunked\r\n\r\n";
    Status s = Send(head_);
    head_.clear();
    return s;
  }
  return Status::OK();  // head is held back until WriteBody supplies the length
}

Status HttpResponseWriter::WriteBody(std::string_view body) {
  head_ += StrCat("Content-Length: ", body.size(), "\r\n\r\n");
  head_ += body;
  Status s = Send(head_);
  head_.clear();
  return s;
}

Status HttpResponseWriter::WriteChunk(std::string_view data) {
  if (data.empty()) return Status::OK();
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  std::string frame;
  frame.reserve(static_cast<size_t>(n) + data.size() + 2);
  frame.append(size_line, static_cast<size_t>(n));
  frame.append(data);
  frame.append("\r\n");
  return Send(frame);
}

Status HttpResponseWriter::FinishChunked() { return Send("0\r\n\r\n"); }

Status HttpResponseWriter::Send(std::string_view data) {
  bytes_written_ += data.size();
  return socket_->WriteAll(data);
}

Status WriteSimpleResponse(
    Socket* socket, int status, std::string_view content_type, std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  HttpResponseWriter writer(socket);
  std::vector<std::pair<std::string, std::string>> headers;
  headers.emplace_back("Content-Type", std::string(content_type));
  for (const auto& h : extra_headers) headers.push_back(h);
  AQL_RETURN_IF_ERROR(writer.WriteHead(status, /*chunked=*/false, headers));
  return writer.WriteBody(body);
}

}  // namespace net
}  // namespace aql
