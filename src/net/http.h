// HTTP/1.1 message layer for the query front end: an incremental request
// parser and a response writer with chunked transfer encoding.
//
// The parser is push-based: feed it raw bytes as they arrive and it
// consumes exactly one request (request line, headers, and a body carried
// by Content-Length or Transfer-Encoding: chunked). It enforces hard
// limits — request-line length, total header bytes, header count, body
// size — so a hostile peer cannot make the server buffer unboundedly;
// exceeding a limit is a terminal parse error carrying the right HTTP
// status code (414/431/413/400).
//
// The writer pairs with base/socket.h: WriteHead sends the status line
// and headers; either WriteBody sends a Content-Length body whole, or
// WriteChunk/FinishChunked stream a body of unknown length with chunked
// transfer encoding — the path large array results take (the
// object/value_write.h sink flushes straight into WriteChunk, so the
// result is never materialized as one string).

#ifndef AQL_NET_HTTP_H_
#define AQL_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/result.h"
#include "base/socket.h"
#include "base/status.h"

namespace aql {
namespace net {

struct HttpRequest {
  std::string method;   // uppercase: "GET", "POST", ...
  std::string target;   // raw request target, e.g. "/query?deadline_ms=50"
  std::string path;     // target up to '?', percent-decoded
  std::map<std::string, std::string> query;    // decoded query parameters
  std::map<std::string, std::string> headers;  // keys lowercased
  std::string body;

  // Header lookup (name is matched case-insensitively); "" when absent.
  std::string_view Header(std::string_view name) const;
};

struct HttpParserLimits {
  size_t max_request_line = 8 * 1024;
  size_t max_header_bytes = 64 * 1024;  // all header lines together
  size_t max_headers = 100;
  size_t max_body = 8 * 1024 * 1024;  // AQL_HTTP_MAX_BODY overrides in the server
};

// Incremental single-request parser.
class HttpParser {
 public:
  explicit HttpParser(HttpParserLimits limits = {}) : limits_(limits) {}

  // Consumes bytes; unprocessed ones (a pipelined next request) are
  // buffered internally and picked up after TakeRequest. After an error
  // the parser is poisoned: error() is set and further Feed calls are
  // no-ops.
  void Feed(std::string_view data);

  bool done() const { return state_ == State::kDone; }
  // No bytes of a request consumed yet — distinguishes an idle
  // keep-alive connection timing out (just close) from a stalled
  // mid-request peer (408).
  bool idle() const { return state_ == State::kRequestLine && buffer_.empty(); }
  bool failed() const { return !error_.ok(); }
  // InvalidArgument with a diagnostic; http_status() maps it to a code.
  const Status& error() const { return error_; }
  // 400, 413 (body too large), 414 (request line), 431 (headers) — or 0
  // while no error is set.
  int http_status() const { return http_status_; }

  // Valid once done(). The request is moved out; the parser resets so a
  // keep-alive connection can parse the next request in place.
  HttpRequest TakeRequest();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kChunkSize, kChunkData,
                     kChunkDataEnd, kTrailers, kDone };

  void Fail(int http_status, std::string message);
  void ParseRequestLine(std::string_view line);
  void ParseHeaderLine(std::string_view line);
  void FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string buffer_;  // bytes not yet consumed by a complete element
  HttpRequest request_;
  Status error_;
  int http_status_ = 0;
  size_t header_bytes_ = 0;
  size_t body_remaining_ = 0;   // kBody: Content-Length still to read
  size_t chunk_remaining_ = 0;  // kChunkData: bytes left in this chunk
};

// Reason phrase for the subset of status codes the server emits.
std::string_view HttpStatusText(int code);

// Percent-decodes %XX escapes and '+' (as space, query-string convention).
std::string UrlDecode(std::string_view s);

// Response writer over a connected socket. Exactly one of WriteBody or
// the WriteChunk.../FinishChunked sequence follows WriteHead.
class HttpResponseWriter {
 public:
  explicit HttpResponseWriter(Socket* socket) : socket_(socket) {}

  // `headers` are written in order; Content-Length / Transfer-Encoding
  // are added by the body calls, so callers must not set them.
  Status WriteHead(int status, bool chunked,
                   const std::vector<std::pair<std::string, std::string>>& headers);
  // Content-Length path (head must have been written with chunked=false).
  Status WriteBody(std::string_view body);
  // Chunked path: each call emits one non-empty chunk; FinishChunked
  // emits the terminating 0-chunk.
  Status WriteChunk(std::string_view data);
  Status FinishChunked();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  Status Send(std::string_view data);

  Socket* socket_;
  // Non-chunked heads are held back so WriteBody can stamp the
  // Content-Length and flush head+body in one write.
  std::string head_;
  bool head_written_ = false;
  bool chunked_ = false;
  uint64_t bytes_written_ = 0;
};

// One-call convenience for error and small-bodied responses.
Status WriteSimpleResponse(Socket* socket, int status, std::string_view content_type,
                           std::string_view body,
                           const std::vector<std::pair<std::string, std::string>>&
                               extra_headers = {});

}  // namespace net
}  // namespace aql

#endif  // AQL_NET_HTTP_H_
