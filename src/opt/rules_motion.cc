// Code motion (paper §5: "Later phases include I/O optimizations and code
// motion"): loop-invariant hoisting.
//
// A loop body that recomputes an expensive, binder-independent expression
// per iteration — per element of a tabulation, per member of a big union
// or sum — is rewritten to evaluate it once:
//
//   [[ ... S ... | i < n ]]   ~>   let v = S in [[ ... v ... | i < n ]]
//
// for maximal subexpressions S that (a) do not mention the loop binders,
// (b) are not atomic, (c) actually iterate (LoopFree is false), and
// (d) are provably error-free — hoisting evaluates S even when the loop
// would have run zero iterations (or, for tabulations, would have stored
// the error at a single point), so an erroring S would make the program
// less defined. OptimizerConfig::aggressive_code_motion drops gate (d)
// for users who accept error-timing changes in exchange for speed.
//
// All alpha-equal occurrences of S anywhere in the node (body and bounds)
// share the one binding, so the rule doubles as loop-level common
// subexpression elimination.

#include <atomic>
#include <set>

#include "core/expr_ops.h"
#include "opt/analysis.h"
#include "opt/rules.h"

namespace aql {

namespace {

bool IsLoop(const ExprPtr& e) {
  return e->is(ExprKind::kTab) || e->is(ExprKind::kBigUnion) || e->is(ExprKind::kSum);
}

bool IsHoistCandidate(const ExprPtr& e, const std::set<std::string>& loop_binders,
                      bool aggressive) {
  switch (e->kind()) {
    case ExprKind::kVar:
    case ExprKind::kBoolConst:
    case ExprKind::kNatConst:
    case ExprKind::kRealConst:
    case ExprKind::kStrConst:
    case ExprKind::kLiteral:
    case ExprKind::kBottom:
    case ExprKind::kEmptySet:
    case ExprKind::kLambda:  // a value; nothing to save
      return false;
    default:
      break;
  }
  if (LoopFree(e)) return false;  // cheap: duplication is O(1) per use
  if (!aggressive && !ErrorFree(e)) return false;
  for (const std::string& b : loop_binders) {
    if (OccursFree(e, b)) return false;
  }
  return true;
}

// Collects maximal hoistable subtrees of `e`, outermost first. Does not
// descend into a candidate (it is hoisted whole). `blocked` accumulates
// every binder crossed on the way down — the loop's own binders plus any
// lambda/loop binder inside the body — since a candidate mentioning one of
// those cannot move above its binding site.
void CollectCandidates(const ExprPtr& e, std::set<std::string>* blocked,
                       bool aggressive, std::vector<ExprPtr>* out) {
  if (IsHoistCandidate(e, *blocked, aggressive)) {
    for (const ExprPtr& seen : *out) {
      if (AlphaEqual(seen, e)) return;
    }
    out->push_back(e);
    return;
  }
  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    std::vector<std::string> added;
    for (const std::string& b : child_binders[i]) {
      if (blocked->insert(b).second) added.push_back(b);
    }
    CollectCandidates(e->child(i), blocked, aggressive, out);
    for (const std::string& b : added) blocked->erase(b);
  }
}

// Replaces alpha-equal occurrences of `target` with `replacement`,
// skipping scopes that rebind a free variable of the target.
ExprPtr ReplaceAll(const ExprPtr& e, const ExprPtr& target, const ExprPtr& replacement,
                   const std::set<std::string>& target_fv) {
  if (AlphaEqual(e, target)) return replacement;
  if (e->children().empty()) return e;
  auto child_binders = ChildBinders(*e);
  std::vector<ExprPtr> children;
  children.reserve(e->children().size());
  bool changed = false;
  for (size_t i = 0; i < e->children().size(); ++i) {
    bool captured = false;
    for (const std::string& b : child_binders[i]) {
      if (target_fv.count(b)) {
        captured = true;
        break;
      }
    }
    ExprPtr nc = captured ? e->child(i)
                          : ReplaceAll(e->child(i), target, replacement, target_fv);
    changed |= (nc.get() != e->child(i).get());
    children.push_back(std::move(nc));
  }
  return changed ? e->WithChildren(std::move(children)) : e;
}

// Every name occurring in e, bound or free: fresh hoist variables must
// avoid them all, or an inner hoist's binder would capture an outer one.
void CollectAllNames(const ExprPtr& e, std::set<std::string>* out) {
  if (e->is(ExprKind::kVar)) out->insert(e->var_name());
  for (const std::string& b : e->binders()) out->insert(b);
  for (const ExprPtr& c : e->children()) CollectAllNames(c, out);
}

ExprPtr RuleHoistLoopInvariant(const ExprPtr& e, bool aggressive,
                               const CostGate& gate) {
  if (!IsLoop(e)) return nullptr;
  std::set<std::string> blocked(e->binders().begin(), e->binders().end());
  std::vector<ExprPtr> candidates;
  CollectCandidates(e->child(0), &blocked, aggressive, &candidates);
  if (candidates.empty()) return nullptr;

  std::set<std::string> avoid;
  CollectAllNames(e, &avoid);
  // A process-wide counter keeps hoist variables unique across separate
  // firings too (nested loops are rewritten in separate engine steps).
  static std::atomic<uint64_t> counter{0};

  ExprPtr node = e;
  std::vector<std::pair<std::string, ExprPtr>> lets;
  for (const ExprPtr& s : candidates) {
    std::string v;
    do {
      v = "cm$" + std::to_string(counter.fetch_add(1));
    } while (avoid.count(v));
    avoid.insert(v);
    std::set<std::string> s_fv = FreeVars(s);
    ExprPtr replaced = ReplaceAll(node, s, Expr::Var(v), s_fv);
    if (replaced.get() == node.get()) continue;  // nothing replaceable
    node = std::move(replaced);
    lets.emplace_back(v, s);
  }
  if (lets.empty()) return nullptr;
  for (size_t i = lets.size(); i-- > 0;) {
    node = Expr::Let(lets[i].first, lets[i].second, node);
  }
  // Materializing pays only when the loop actually repeats the saved
  // work: with a cost gate installed, a provably single-trip (or empty)
  // loop keeps its body inline rather than spending a let frame.
  if (gate && !gate("hoist_loop_invariant", e, node)) return nullptr;
  return node;
}

// inline_let_cost — the materialize-vs-inline decision taken the other
// way. Beta (rules_nrc.cc) declines to inline a binding whose argument is
// non-atomic and used under a loop; that policy is syntactic and cannot
// see trip counts. When the cost model proves the loop around the use
// iterates at most once, re-inlining saves the frame. Purely cost-driven:
// never fires without a gate, and the gate's strict-improvement contract
// makes a hoist/inline cycle impossible (each firing shrinks the
// estimate; undoing a firing would have to grow it back).
ExprPtr RuleInlineLetCost(const ExprPtr& e, const CostGate& gate) {
  if (!gate) return nullptr;
  if (!e->is(ExprKind::kApply)) return nullptr;
  const ExprPtr& fn = e->child(0);
  if (!fn->is(ExprKind::kLambda)) return nullptr;
  const ExprPtr& arg = e->child(1);
  const ExprPtr& body = fn->child(0);
  ExprPtr inlined = Substitute(body, fn->binder(), arg);
  if (!gate("inline_let_cost", e, inlined)) return nullptr;
  return inlined;
}

}  // namespace

std::vector<Rule> CodeMotionRules(bool aggressive, const CostGate& gate) {
  return {
      {"hoist_loop_invariant",
       [aggressive, gate](const ExprPtr& e) {
         return RuleHoistLoopInvariant(e, aggressive, gate);
       }},
      {"inline_let_cost",
       [gate](const ExprPtr& e) { return RuleInlineLetCost(e, gate); }},
  };
}

}  // namespace aql
