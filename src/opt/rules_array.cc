// Array normalization rules (paper §5): partial-function beta, eta, and
// domain extraction for tabulations, plus folding over dense literals and
// materialized array values.

#include "core/expr_ops.h"
#include "opt/analysis.h"
#include "opt/rules.h"

namespace aql {

namespace {

// beta^p:  [[e1 | i1<b1,...,ik<bk]][e3]
//   ~> if e3.1 < b1 then ... if e3.k < bk then e1{i := e3} else bottom ...
// Exactly the paper's rule: the index expression is substituted into both
// the bound check and the body (the language is pure, so the duplicate
// evaluation can only cost time, and the constraint-elimination phase
// usually deletes the check anyway).
//
// "Only cost time" is exactly what the cost gate arbitrates: a
// loop-carrying index (itself a tabulation, sum, or comprehension) is
// re-evaluated once per bound check and once per body occurrence, which
// can dwarf the materialize-then-subscript plan the rule deletes. When a
// gate is installed and the index is not loop-free, the rule fires only
// if the estimate says the duplicated plan is cheaper. A loop-free index
// keeps the paper's unconditional behavior — the §5 derivations (where
// the index is a binder variable) never consult the gate.
ExprPtr RuleBetaP(const ExprPtr& e, const CostGate& gate) {
  if (!e->is(ExprKind::kSubscript)) return nullptr;
  const ExprPtr& tab = e->child(0);
  if (!tab->is(ExprKind::kTab)) return nullptr;
  const ExprPtr& idx = e->child(1);
  size_t k = tab->tab_rank();

  // Per-dimension index expressions: the tuple components when the index
  // is a syntactic tuple, projections of the index otherwise.
  std::vector<ExprPtr> parts(k);
  if (k == 1) {
    parts[0] = idx;
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
  } else {
    for (size_t j = 0; j < k; ++j) parts[j] = Expr::Proj(j + 1, k, idx);
  }

  std::unordered_map<std::string, ExprPtr> subst;
  for (size_t j = 0; j < k; ++j) subst[tab->binders()[j]] = parts[j];
  ExprPtr out = SubstituteAll(tab->tab_body(), subst);
  for (size_t j = k; j-- > 0;) {
    out = Expr::If(Expr::Cmp(CmpOp::kLt, parts[j], tab->tab_bound(j)), std::move(out),
                   Expr::Bottom());
  }
  if (gate && !LoopFree(idx) && !gate("beta_p", e, out)) return nullptr;
  return out;
}

// eta^p:  [[ e[i1,...,ik] | i1 < dim_1(e), ..., ik < dim_k(e) ]]  ~>  e
// (e alpha-equal everywhere, no ij free in e).
ExprPtr RuleEtaP(const ExprPtr& e) {
  if (!e->is(ExprKind::kTab)) return nullptr;
  size_t k = e->tab_rank();
  const ExprPtr& body = e->tab_body();
  if (!body->is(ExprKind::kSubscript)) return nullptr;
  const ExprPtr& arr = body->child(0);
  const ExprPtr& idx = body->child(1);

  // Body index must be exactly (i1,...,ik).
  if (k == 1) {
    if (!idx->is(ExprKind::kVar) || idx->var_name() != e->binders()[0]) return nullptr;
  } else {
    if (!idx->is(ExprKind::kTuple) || idx->children().size() != k) return nullptr;
    for (size_t j = 0; j < k; ++j) {
      const ExprPtr& c = idx->child(j);
      if (!c->is(ExprKind::kVar) || c->var_name() != e->binders()[j]) return nullptr;
    }
  }
  // No binder may occur free in the array expression.
  for (const std::string& b : e->binders()) {
    if (OccursFree(arr, b)) return nullptr;
  }
  // Bound j must be dim_j,k of (an alpha-equal copy of) the array — or,
  // when the array is a materialized literal whose dims have already been
  // constant-folded, the matching constant.
  for (size_t j = 0; j < k; ++j) {
    const ExprPtr& bound = e->tab_bound(j);
    if (bound->is(ExprKind::kNatConst) && arr->is(ExprKind::kLiteral) &&
        arr->literal().kind() == ValueKind::kArray) {
      const ArrayRep& rep = arr->literal().array();
      if (rep.dims.size() == k && rep.dims[j] == bound->nat_const()) continue;
      return nullptr;
    }
    ExprPtr dim_expr;
    if (k == 1) {
      if (!bound->is(ExprKind::kDim) || bound->rank() != 1) return nullptr;
      dim_expr = bound->child(0);
    } else {
      if (!bound->is(ExprKind::kProj) || bound->proj_index() != j + 1 ||
          bound->proj_arity() != k) {
        return nullptr;
      }
      const ExprPtr& inner = bound->child(0);
      if (!inner->is(ExprKind::kDim) || inner->rank() != k) return nullptr;
      dim_expr = inner->child(0);
    }
    if (!AlphaEqual(dim_expr, arr)) return nullptr;
  }
  return arr;
}

// delta^p:  dim_k([[e | i1<b1,...,ik<bk]])  ~>  (b1,...,bk)
// Unconditional under partial-function array semantics; gated on the
// error-freedom of the body when strict arrays are configured (the
// paper's soundness caveat).
ExprPtr RuleDeltaP(const ExprPtr& e, bool strict_arrays) {
  if (!e->is(ExprKind::kDim)) return nullptr;
  const ExprPtr& tab = e->child(0);
  if (!tab->is(ExprKind::kTab) || tab->tab_rank() != e->rank()) return nullptr;
  if (strict_arrays && !ErrorFree(tab->tab_body())) return nullptr;
  if (e->rank() == 1) return tab->tab_bound(0);
  std::vector<ExprPtr> bounds;
  bounds.reserve(e->rank());
  for (size_t j = 0; j < e->rank(); ++j) bounds.push_back(tab->tab_bound(j));
  return Expr::Tuple(std::move(bounds));
}

// A fully constant dense literal folds to a materialized array value, so
// downstream uses are O(1) lookups instead of per-use re-construction
// (and beta treats the array as an atomic argument).
ExprPtr RuleDenseFold(const ExprPtr& e) {
  if (!e->is(ExprKind::kDense)) return nullptr;
  uint64_t product = 1;
  std::vector<uint64_t> dims;
  dims.reserve(e->dense_rank());
  for (size_t j = 0; j < e->dense_rank(); ++j) {
    if (!e->dense_dim(j)->is(ExprKind::kNatConst)) return nullptr;
    dims.push_back(e->dense_dim(j)->nat_const());
    product *= dims.back();
  }
  if (product != e->dense_value_count()) return Expr::Bottom();
  std::vector<Value> elems;
  elems.reserve(e->dense_value_count());
  for (size_t j = 0; j < e->dense_value_count(); ++j) {
    const ExprPtr& v = e->dense_value(j);
    switch (v->kind()) {
      case ExprKind::kBoolConst: elems.push_back(Value::Bool(v->bool_const())); break;
      case ExprKind::kNatConst: elems.push_back(Value::Nat(v->nat_const())); break;
      case ExprKind::kRealConst: elems.push_back(Value::Real(v->real_const())); break;
      case ExprKind::kStrConst: elems.push_back(Value::Str(v->str_const())); break;
      case ExprKind::kLiteral: elems.push_back(v->literal()); break;
      case ExprKind::kBottom: elems.push_back(Value::Bottom()); break;
      default: return nullptr;  // non-constant element
    }
  }
  auto arr = Value::MakeArray(std::move(dims), std::move(elems));
  if (!arr.ok()) return nullptr;
  return Expr::Literal(std::move(arr).value());
}

// dim over a dense literal with constant dimensions that match the value
// count (otherwise the dense literal denotes bottom and must be kept).
ExprPtr RuleDimDense(const ExprPtr& e) {
  if (!e->is(ExprKind::kDim)) return nullptr;
  const ExprPtr& d = e->child(0);
  if (!d->is(ExprKind::kDense) || d->dense_rank() != e->rank()) return nullptr;
  uint64_t product = 1;
  std::vector<ExprPtr> dims;
  for (size_t j = 0; j < d->dense_rank(); ++j) {
    if (!d->dense_dim(j)->is(ExprKind::kNatConst)) return nullptr;
    product *= d->dense_dim(j)->nat_const();
    dims.push_back(d->dense_dim(j));
  }
  if (product != d->dense_value_count()) return nullptr;
  if (e->rank() == 1) return dims[0];
  return Expr::Tuple(std::move(dims));
}

// Subscripting and dim distribute over conditionals, exposing beta^p /
// delta^p redexes hidden behind an if (e.g. the guarded tabulations the
// ODMG update/insert macros produce):
//   (if c then a else b)[i] ~> if c then a[i] else b[i]
ExprPtr RuleSubscriptOverIf(const ExprPtr& e) {
  if (!e->is(ExprKind::kSubscript) || !e->child(0)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& cond = e->child(0);
  return Expr::If(cond->child(0), Expr::Subscript(cond->child(1), e->child(1)),
                  Expr::Subscript(cond->child(2), e->child(1)));
}

ExprPtr RuleDimOverIf(const ExprPtr& e) {
  if (!e->is(ExprKind::kDim) || !e->child(0)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& cond = e->child(0);
  return Expr::If(cond->child(0), Expr::Dim(e->rank(), cond->child(1)),
                  Expr::Dim(e->rank(), cond->child(2)));
}

// Strict constructs applied to the bottom constant are bottom.
ExprPtr RuleBottomStrict(const ExprPtr& e) {
  // A conditional is strict in its test only (eval/evaluator.cc): the
  // branches are not evaluated when the test is bottom.
  if (e->is(ExprKind::kIf)) {
    return e->child(0)->is(ExprKind::kBottom) ? Expr::Bottom() : nullptr;
  }
  switch (e->kind()) {
    case ExprKind::kSubscript:
    case ExprKind::kDim:
    case ExprKind::kProj:
    case ExprKind::kGet:
    case ExprKind::kArith:
    case ExprKind::kCmp:
    case ExprKind::kGen:
    case ExprKind::kSingleton:
    case ExprKind::kUnion:
    case ExprKind::kIndex:
      break;
    default:
      return nullptr;
  }
  for (const ExprPtr& c : e->children()) {
    if (c->is(ExprKind::kBottom)) return Expr::Bottom();
  }
  return nullptr;
}

// dim over a materialized array value.
ExprPtr RuleDimLiteral(const ExprPtr& e) {
  if (!e->is(ExprKind::kDim)) return nullptr;
  const ExprPtr& l = e->child(0);
  if (!l->is(ExprKind::kLiteral) || l->literal().kind() != ValueKind::kArray) {
    return nullptr;
  }
  const ArrayRep& a = l->literal().array();
  if (a.dims.size() != e->rank()) return nullptr;
  if (e->rank() == 1) return Expr::NatConst(a.dims[0]);
  std::vector<ExprPtr> dims;
  for (uint64_t d : a.dims) dims.push_back(Expr::NatConst(d));
  return Expr::Tuple(std::move(dims));
}

// Constant subscript of a dense literal or a materialized array.
ExprPtr RuleSubscriptConst(const ExprPtr& e) {
  if (!e->is(ExprKind::kSubscript)) return nullptr;
  const ExprPtr& arr = e->child(0);
  const ExprPtr& idx = e->child(1);

  std::vector<uint64_t> index;
  if (idx->is(ExprKind::kNatConst)) {
    index.push_back(idx->nat_const());
  } else if (idx->is(ExprKind::kTuple)) {
    for (const ExprPtr& c : idx->children()) {
      if (!c->is(ExprKind::kNatConst)) return nullptr;
      index.push_back(c->nat_const());
    }
  } else {
    return nullptr;
  }

  if (arr->is(ExprKind::kLiteral) && arr->literal().kind() == ValueKind::kArray) {
    const ArrayRep& a = arr->literal().array();
    if (a.dims.size() != index.size()) return nullptr;
    if (!a.InBounds(index)) return Expr::Bottom();
    return Expr::Literal(a.At(a.Flatten(index)));
  }
  if (arr->is(ExprKind::kDense) && arr->dense_rank() == index.size()) {
    uint64_t product = 1;
    std::vector<uint64_t> dims;
    for (size_t j = 0; j < arr->dense_rank(); ++j) {
      if (!arr->dense_dim(j)->is(ExprKind::kNatConst)) return nullptr;
      dims.push_back(arr->dense_dim(j)->nat_const());
      product *= dims.back();
    }
    if (product != arr->dense_value_count()) return nullptr;  // denotes bottom
    ArrayRep shape{dims, {}};
    if (!shape.InBounds(index)) return Expr::Bottom();
    // The selected element replaces the subscript only if the dropped
    // elements cannot carry host-level effects — always true here.
    return arr->dense_value(shape.Flatten(index));
  }
  return nullptr;
}

}  // namespace

std::vector<Rule> ArrayRules(bool strict_arrays, const CostGate& gate) {
  return {
      {"dense_fold", RuleDenseFold},
      {"beta_p", [gate](const ExprPtr& e) { return RuleBetaP(e, gate); }},
      {"eta_p", RuleEtaP},
      {"delta_p",
       [strict_arrays](const ExprPtr& e) { return RuleDeltaP(e, strict_arrays); }},
      {"dim_dense", RuleDimDense},
      {"dim_literal", RuleDimLiteral},
      {"subscript_const", RuleSubscriptConst},
      {"subscript_over_if", RuleSubscriptOverIf},
      {"dim_over_if", RuleDimOverIf},
      {"bottom_strict", RuleBottomStrict},
  };
}

}  // namespace aql
