#include "opt/rewriter.h"

namespace aql {

namespace {

class Engine {
 public:
  Engine(const std::vector<Rule>& rules, const RewriteOptions& options,
         RewriteStats* stats)
      : rules_(rules), options_(options), stats_(stats) {}

  ExprPtr Run(ExprPtr e) {
    size_t size = e->TreeSize();
    for (size_t pass = 0; pass < options_.max_passes; ++pass) {
      if (stats_) ++stats_->passes;
      changed_ = false;
      e = RewriteNode(std::move(e), &size);
      if (!changed_) break;
      if (size > options_.max_nodes) {
        if (stats_) stats_->hit_budget = true;
        break;
      }
    }
    return e;
  }

 private:
  // One bottom-up sweep: children first, then repeatedly apply rules at
  // this node (re-descending into replacements on the next pass).
  ExprPtr RewriteNode(ExprPtr e, size_t* size) {
    if (!e->children().empty()) {
      bool child_changed = false;
      std::vector<ExprPtr> children;
      children.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        ExprPtr nc = RewriteNode(c, size);
        child_changed |= (nc.get() != c.get());
        children.push_back(std::move(nc));
      }
      if (child_changed) e = e->WithChildren(std::move(children));
    }
    // Try rules at this node until none fires (bounded per node).
    for (size_t spin = 0; spin < 16; ++spin) {
      if (options_.max_firings && total_firings_ >= options_.max_firings) break;
      const Rule* fired = nullptr;
      ExprPtr replacement;
      for (const Rule& r : rules_) {
        replacement = r.apply(e);
        if (replacement) {
          fired = &r;
          break;
        }
      }
      if (!fired) break;
      size_t old_size = e->TreeSize();
      size_t new_size = replacement->TreeSize();
      if (new_size > old_size + options_.max_rule_growth) {
        if (stats_) stats_->hit_budget = true;
        break;  // refuse a single step that blows the term up
      }
      *size = *size - old_size + new_size;
      if (options_.on_firing) options_.on_firing(fired->name, e, replacement);
      e = std::move(replacement);
      changed_ = true;
      ++total_firings_;
      if (stats_) ++stats_->firings[fired->name];
      if (*size > options_.max_nodes) break;
    }
    return e;
  }

  const std::vector<Rule>& rules_;
  const RewriteOptions& options_;
  RewriteStats* stats_;
  bool changed_ = false;
  size_t total_firings_ = 0;
};

}  // namespace

ExprPtr RewriteFixpoint(const ExprPtr& e, const std::vector<Rule>& rules,
                        const RewriteOptions& options, RewriteStats* stats) {
  return Engine(rules, options, stats).Run(e);
}

}  // namespace aql
