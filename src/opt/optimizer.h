// The phased AQL optimizer (paper §5).
//
// Default pipeline:
//   phase 1 "normalization"            NRC + arithmetic + array rules
//   phase 2 "constraint-elimination"   the four §5 bound-check rules, plus
//                                      the folding rules that consume the
//                                      `true`/`false` they introduce
//
// The phase list and every phase's rule base are extensible at run time
// (AddPhase / AddRule), mirroring the open architecture of §4.1.

#ifndef AQL_OPT_OPTIMIZER_H_
#define AQL_OPT_OPTIMIZER_H_

#include <string>
#include <vector>

#include "base/result.h"
#include "opt/cost.h"
#include "opt/rewriter.h"
#include "opt/rules.h"

namespace aql {

struct OptimizerConfig {
  // Paper semantics: strict arrays gate delta^p on error-freedom. Our
  // default partial-function semantics needs no gate (see eval/evaluator.h).
  bool strict_arrays = false;
  bool enable_constraint_elimination = true;
  // Phase 3, loop-invariant hoisting (§5 "code motion").
  bool enable_code_motion = true;
  // Hoist possibly-erroring expressions too (trades definedness monotonicity
  // for speed; see rules_motion.cc).
  bool aggressive_code_motion = false;
  // Cost-based plan selection (opt/cost.h): rules whose profitability
  // depends on trip counts — beta^p with a loop-carrying index, loop-
  // invariant hoisting, let re-inlining — consult EstimateCost before
  // firing. Off restores the paper's purely syntactic engine.
  bool cost_based = true;
  CostModel cost_model;
  RewriteOptions rewrite;
};

class Optimizer {
 public:
  explicit Optimizer(OptimizerConfig config = {});

  // Runs all phases in order. Per-rule firing statistics accumulate into
  // *stats when non-null.
  ExprPtr Optimize(const ExprPtr& e, RewriteStats* stats = nullptr) const;

  // Appends a new phase with the given rules (runs after existing phases).
  void AddPhase(std::string name, std::vector<Rule> rules);

  // Adds a rule to an existing phase.
  Status AddRule(const std::string& phase, Rule rule);

  // ---- Phase-level access (the IR verifier, src/analysis, drives the
  // pipeline one phase at a time to check invariants between phases) ----
  size_t num_phases() const { return phases_.size(); }
  const std::string& phase_name(size_t i) const { return phases_[i].name; }
  const std::vector<Rule>& phase_rules(size_t i) const { return phases_[i].rules; }
  // Runs the i-th phase alone (a fixpoint over its rule base).
  ExprPtr RunPhase(size_t i, const ExprPtr& e, RewriteStats* stats = nullptr) const;

  const OptimizerConfig& config() const { return config_; }

 private:
  struct Phase {
    std::string name;
    std::vector<Rule> rules;
  };
  OptimizerConfig config_;
  std::vector<Phase> phases_;
};

}  // namespace aql

#endif  // AQL_OPT_OPTIMIZER_H_
