#include "opt/optimizer.h"

#include "base/strings.h"

namespace aql {

namespace {

std::vector<Rule> Concat(std::vector<Rule> a, const std::vector<Rule>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

Optimizer::Optimizer(OptimizerConfig config) : config_(std::move(config)) {
  std::vector<Rule> normalization =
      Concat(Concat(NrcRules(), ArithRules()), ArrayRules(config_.strict_arrays));
  phases_.push_back({"normalization", normalization});
  if (config_.enable_constraint_elimination) {
    // Constraint elimination introduces boolean constants; the folding
    // rules that consume them run in the same phase.
    phases_.push_back({"constraint-elimination",
                       Concat(ConstraintRules(), normalization)});
  }
  if (config_.enable_code_motion) {
    // Last: nothing after this phase may re-inline the hoisted bindings.
    phases_.push_back({"code-motion", CodeMotionRules(config_.aggressive_code_motion)});
  }
}

ExprPtr Optimizer::Optimize(const ExprPtr& e, RewriteStats* stats) const {
  ExprPtr cur = e;
  for (size_t i = 0; i < phases_.size(); ++i) {
    cur = RunPhase(i, cur, stats);
  }
  return cur;
}

ExprPtr Optimizer::RunPhase(size_t i, const ExprPtr& e, RewriteStats* stats) const {
  return RewriteFixpoint(e, phases_[i].rules, config_.rewrite, stats);
}

void Optimizer::AddPhase(std::string name, std::vector<Rule> rules) {
  phases_.push_back({std::move(name), std::move(rules)});
}

Status Optimizer::AddRule(const std::string& phase, Rule rule) {
  for (Phase& p : phases_) {
    if (p.name == phase) {
      p.rules.push_back(std::move(rule));
      return Status::OK();
    }
  }
  return Status::NotFound(StrCat("no optimizer phase named ", phase));
}

}  // namespace aql
