#include "opt/optimizer.h"

#include <chrono>
#include <memory>

#include "base/strings.h"
#include "obs/trace.h"

namespace aql {

namespace {

std::vector<Rule> Concat(std::vector<Rule> a, const std::vector<Rule>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

Optimizer::Optimizer(OptimizerConfig config) : config_(std::move(config)) {
  CostGate gate;
  if (config_.cost_based) gate = MakeCostGate(config_.cost_model);
  std::vector<Rule> normalization = Concat(
      Concat(NrcRules(), ArithRules()), ArrayRules(config_.strict_arrays, gate));
  phases_.push_back({"normalization", normalization});
  if (config_.enable_constraint_elimination) {
    // Constraint elimination introduces boolean constants; the folding
    // rules that consume them run in the same phase.
    phases_.push_back({"constraint-elimination",
                       Concat(ConstraintRules(), normalization)});
  }
  if (config_.enable_code_motion) {
    // Last: nothing after this phase may re-inline the hoisted bindings
    // (inline_let_cost may, but only under the gate's strict-improvement
    // contract, which cannot undo a hoist that fired).
    phases_.push_back(
        {"code-motion", CodeMotionRules(config_.aggressive_code_motion, gate)});
  }
}

ExprPtr Optimizer::Optimize(const ExprPtr& e, RewriteStats* stats) const {
  ExprPtr cur = e;
  for (size_t i = 0; i < phases_.size(); ++i) {
    cur = RunPhase(i, cur, stats);
  }
  return cur;
}

ExprPtr Optimizer::RunPhase(size_t i, const ExprPtr& e, RewriteStats* stats) const {
  if (!obs::TracingActive()) {
    return RewriteFixpoint(e, phases_[i].rules, config_.rewrite, stats);
  }
  // Tracing: one span per phase, with per-rule time attribution riding on
  // the rewriter's on_firing hook. Attribution model: the wall time since
  // the previous successful firing (or the phase start) is charged to the
  // rule that fired — which folds the scan time spent on rules that did
  // not match into the rule that finally did. Approximate, but the scan
  // is the dominant cost and the model needs no extra hooks. Time after
  // the last firing (the fixpoint-confirming sweep) stays unattributed in
  // the phase span's exclusive time.
  obs::Span span("opt", StrCat("opt.", phases_[i].name));
  span.AddCount("nodes_in", e->TreeSize());
  if (config_.cost_based) {
    span.AddCount("cost_in",
                  static_cast<uint64_t>(EstimateCost(e, config_.cost_model)));
  }
  RewriteOptions options = config_.rewrite;
  auto previous_hook = options.on_firing;
  auto last_event = std::make_shared<std::chrono::steady_clock::time_point>(
      std::chrono::steady_clock::now());
  bool cost_based = config_.cost_based;
  CostModel cost_model = config_.cost_model;
  options.on_firing = [&span, previous_hook, last_event, cost_based, cost_model](
                          const std::string& rule, const ExprPtr& before,
                          const ExprPtr& after) {
    auto now = std::chrono::steady_clock::now();
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - *last_event)
            .count());
    *last_event = now;
    span.AddCount(StrCat("rule_us/", rule), us);
    span.AddCount(StrCat("rule_n/", rule), 1);
    if (cost_based) {
      // Per-firing cost delta on the rewritten subtree. A rule may grow
      // the estimate locally (beta duplicating a consumable argument pays
      // off only after beta^p/pi eat the copies), so gains and losses get
      // separate monotone counters.
      double saved = EstimateCost(before, cost_model) - EstimateCost(after, cost_model);
      if (saved >= 0) {
        span.AddCount(StrCat("rule_cost_saved/", rule),
                      static_cast<uint64_t>(saved));
      } else {
        span.AddCount(StrCat("rule_cost_added/", rule),
                      static_cast<uint64_t>(-saved));
      }
    }
    if (previous_hook) previous_hook(rule, before, after);
  };
  ExprPtr out = RewriteFixpoint(e, phases_[i].rules, options, stats);
  span.AddCount("nodes_out", out->TreeSize());
  if (config_.cost_based) {
    span.AddCount("cost_out",
                  static_cast<uint64_t>(EstimateCost(out, config_.cost_model)));
  }
  return out;
}

void Optimizer::AddPhase(std::string name, std::vector<Rule> rules) {
  phases_.push_back({std::move(name), std::move(rules)});
}

Status Optimizer::AddRule(const std::string& phase, Rule rule) {
  for (Phase& p : phases_) {
    if (p.name == phase) {
      p.rules.push_back(std::move(rule));
      return Status::OK();
    }
  }
  return Status::NotFound(StrCat("no optimizer phase named ", phase));
}

}  // namespace aql
