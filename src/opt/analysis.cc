#include "opt/analysis.h"

namespace aql {

bool ValueErrorFree(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      return false;
    case ValueKind::kTuple:
      for (const Value& f : v.tuple_fields()) {
        if (!ValueErrorFree(f)) return false;
      }
      return true;
    case ValueKind::kSet:
      for (const Value& x : v.set().elems) {
        if (!ValueErrorFree(x)) return false;
      }
      return true;
    case ValueKind::kArray:
      // Unboxed payloads hold only scalars, never ⊥. That includes kTiled
      // slabs: every element is total by construction (LazyRealSlab's
      // contract), so out-of-core arrays stay on the error-free fast path.
      if (v.array().unboxed()) return true;
      for (const Value& x : v.array().elems) {
        if (!ValueErrorFree(x)) return false;
      }
      return true;
    case ValueKind::kFunc:
      return false;  // cannot see inside
    default:
      return true;
  }
}

bool LoopFree(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kBigUnion:
    case ExprKind::kSum:
    case ExprKind::kTab:
    case ExprKind::kGen:
    case ExprKind::kIndex:
    case ExprKind::kDense:
    case ExprKind::kApply:     // unknown callee may iterate
    case ExprKind::kExternal:
      return false;
    case ExprKind::kLambda:
      return true;  // a value; its body runs only when applied
    default:
      for (const ExprPtr& c : e->children()) {
        if (!LoopFree(c)) return false;
      }
      return true;
  }
}

namespace {

void CountOccurrencesImpl(const ExprPtr& e, const std::string& name, bool in_scope,
                          size_t* count, bool* under_binder) {
  if (e->is(ExprKind::kVar)) {
    if (e->var_name() == name) {
      ++*count;
      if (in_scope) *under_binder = true;
    }
    return;
  }
  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    bool shadowed = false;
    for (const std::string& b : child_binders[i]) {
      if (b == name) {
        shadowed = true;
        break;
      }
    }
    if (shadowed) continue;
    CountOccurrencesImpl(e->child(i), name, in_scope || !child_binders[i].empty(),
                         count, under_binder);
  }
}

bool ConsumedImpl(const ExprPtr& e, const std::string& name) {
  // A bare occurrence at this node fails; occurrences one level under a
  // consuming construct succeed.
  if (e->is(ExprKind::kVar)) return e->var_name() != name;
  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    bool shadowed = false;
    for (const std::string& b : child_binders[i]) {
      if (b == name) {
        shadowed = true;
        break;
      }
    }
    if (shadowed) continue;
    const ExprPtr& c = e->child(i);
    bool consuming_position = false;
    switch (e->kind()) {
      case ExprKind::kSubscript:
      case ExprKind::kApply:
        consuming_position = (i == 0);
        break;
      case ExprKind::kDim:
      case ExprKind::kProj:
        consuming_position = true;
        break;
      default:
        break;
    }
    if (consuming_position && c->is(ExprKind::kVar) && c->var_name() == name) continue;
    if (!ConsumedImpl(c, name)) return false;
  }
  return true;
}

}  // namespace

size_t CountFreeOccurrences(const ExprPtr& e, const std::string& name,
                            bool* under_binder) {
  size_t count = 0;
  *under_binder = false;
  CountOccurrencesImpl(e, name, false, &count, under_binder);
  return count;
}

bool OccurrencesConsumed(const ExprPtr& e, const std::string& name) {
  return ConsumedImpl(e, name);
}

bool ErrorFree(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kBottom:
    case ExprKind::kGet:        // non-singleton argument errors
    case ExprKind::kSubscript:  // out-of-bounds errors
    case ExprKind::kExternal:   // unknown body
      return false;
    case ExprKind::kApply: {
      // (\x. body)(arg) is error-free if both parts are; any other callee
      // is opaque.
      if (!e->child(0)->is(ExprKind::kLambda)) return false;
      return ErrorFree(e->child(0)->child(0)) && ErrorFree(e->child(1));
    }
    case ExprKind::kArith: {
      if (!ErrorFree(e->child(0)) || !ErrorFree(e->child(1))) return false;
      if (e->arith_op() == ArithOp::kDiv || e->arith_op() == ArithOp::kMod) {
        // Safe only when dividing by a provably non-zero constant.
        const ExprPtr& d = e->child(1);
        if (d->is(ExprKind::kNatConst)) return d->nat_const() != 0;
        if (d->is(ExprKind::kRealConst)) return d->real_const() != 0;
        return false;
      }
      return true;
    }
    case ExprKind::kDense: {
      // A dense literal errors when the dimension product mismatches the
      // value count; provable only with constant dimensions.
      uint64_t product = 1;
      for (size_t j = 0; j < e->dense_rank(); ++j) {
        if (!e->dense_dim(j)->is(ExprKind::kNatConst)) return false;
        product *= e->dense_dim(j)->nat_const();
      }
      if (product != e->dense_value_count()) return false;
      for (const ExprPtr& c : e->children()) {
        if (!ErrorFree(c)) return false;
      }
      return true;
    }
    case ExprKind::kLiteral:
      return ValueErrorFree(e->literal());
    case ExprKind::kLambda:
      // A lambda is a value; its body only runs when applied (handled at
      // the application site). As a value it is error-free.
      return true;
    default: {
      for (const ExprPtr& c : e->children()) {
        if (!ErrorFree(c)) return false;
      }
      return true;
    }
  }
}

}  // namespace aql
