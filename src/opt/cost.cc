#include "opt/cost.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "core/expr_ops.h"

namespace aql {

namespace {

// The cost domain rides the Shape/Definedness/Cardinality reduced product
// (analysis::CoreDomains) and adds one component: the estimated cost of
// evaluating the node once. Loop nodes multiply their body's cost by the
// trip count the Cardinality facts admit.
struct CostVal {
  analysis::AbsVal abs;
  double cost = 0.0;
};

class CostDomain {
 public:
  using Val = CostVal;
  static constexpr bool kLetPrecision = true;

  explicit CostDomain(const CostModel& model) : model_(model) {}

  Val FreeVar(const ExprPtr& var) { return {core_.FreeVar(var), 0.0}; }

  Val BinderVal(const ExprPtr& parent, size_t child_index, size_t binder_index,
                const analysis::SymEnv& env) {
    return {core_.BinderVal(parent, child_index, binder_index, env), 0.0};
  }

  Val Transfer(const ExprPtr& e, const std::vector<Val>& kids,
               const analysis::SymEnv& env) {
    std::vector<analysis::AbsVal> abs_kids;
    abs_kids.reserve(kids.size());
    for (const Val& k : kids) abs_kids.push_back(k.abs);
    analysis::AbsVal abs = core_.Transfer(e, abs_kids, env);
    double cost = NodeCost(e, kids, abs);
    return {std::move(abs), cost};
  }

  Val LetTransfer(const ExprPtr& apply, const Val& bound, const Val& body) {
    return {core_.LetTransfer(apply, bound.abs, body.abs),
            bound.cost + body.cost + model_.let_overhead};
  }

  // A use of a let-bound variable reads a frame slot: the abstract facts
  // flow through, the evaluation cost does not (it is charged once, in
  // LetTransfer). See AbsInterp::ScopedBound.
  Val ScopedVal(const Val& bound) { return {bound.abs, 0.0}; }

  void AtNode(const ExprPtr&, const std::vector<size_t>&, const analysis::SymEnv&) {}
  void AfterNode(const ExprPtr&, const std::vector<size_t>&, const Val&,
                 const analysis::SymEnv&) {}

 private:
  // Trip estimate from a cardinality interval: the exact/upper count when
  // bounded, the unknown_trips fallback otherwise, clamped either way.
  double Trips(const analysis::CardVal& card) const {
    double t = card.hi == UINT64_MAX
                   ? std::max(model_.unknown_trips, static_cast<double>(card.lo))
                   : static_cast<double>(card.hi);
    return std::min(t, model_.trip_cap);
  }

  double SumCosts(const std::vector<Val>& kids) const {
    double s = 0;
    for (const Val& k : kids) s += k.cost;
    return s;
  }

  double NodeCost(const ExprPtr& e, const std::vector<Val>& kids,
                  const analysis::AbsVal& abs) const {
    switch (e->kind()) {
      case ExprKind::kVar:
      case ExprKind::kBoolConst:
      case ExprKind::kNatConst:
      case ExprKind::kRealConst:
      case ExprKind::kStrConst:
      case ExprKind::kBottom:
      case ExprKind::kEmptySet:
      case ExprKind::kLiteral:   // already materialized
      case ExprKind::kExternal:  // bare reference; dispatch priced at kApply
        return 0.0;
      case ExprKind::kLambda:
        // Closure construction. The body is charged where it runs: the
        // let-encoded Apply(Lambda, ·) path goes through LetTransfer; a
        // lambda handed to an external is not charged at all (we cannot
        // see how often the callee applies it).
        return model_.call_overhead;
      case ExprKind::kApply:
        return SumCosts(kids) + (e->child(0)->is(ExprKind::kExternal)
                                     ? model_.external_call
                                     : model_.call_overhead);
      case ExprKind::kTuple:
        return SumCosts(kids) + model_.scalar_op * static_cast<double>(kids.size());
      case ExprKind::kProj:
      case ExprKind::kCmp:
      case ExprKind::kArith:
      case ExprKind::kGet:
        return SumCosts(kids) + model_.scalar_op;
      case ExprKind::kIf:
        // Upper estimate: the test plus the dearer branch.
        return kids[0].cost + std::max(kids[1].cost, kids[2].cost) +
               model_.scalar_op;
      case ExprKind::kSingleton:
        return SumCosts(kids) + model_.set_elem;
      case ExprKind::kUnion:
        return SumCosts(kids) + Trips(abs.card) * model_.set_elem;
      case ExprKind::kGen:
        // gen(n) emits 0..n-1 already sorted and deduplicated.
        return SumCosts(kids) + Trips(abs.card) * model_.alloc_elem;
      case ExprKind::kBigUnion: {
        double trips = Trips(kids[1].abs.card);
        return kids[1].cost + trips * (kids[0].cost + model_.iter_overhead) +
               Trips(abs.card) * model_.set_elem;
      }
      case ExprKind::kSum: {
        double trips = Trips(kids[1].abs.card);
        return kids[1].cost +
               trips * (kids[0].cost + model_.iter_overhead + model_.scalar_op);
      }
      case ExprKind::kTab: {
        // kids[0] = body, kids[1..] = bounds. The result cardinality IS
        // the trip count (product of the inferred extents).
        double bounds_cost = 0;
        for (size_t j = 1; j < kids.size(); ++j) bounds_cost += kids[j].cost;
        return bounds_cost + Trips(abs.card) * (kids[0].cost +
                                                model_.iter_overhead +
                                                model_.alloc_elem);
      }
      case ExprKind::kSubscript:
        return SumCosts(kids) + model_.subscript;
      case ExprKind::kDim:
        // O(1) on a materialized array; evaluating the operand (e.g. a
        // full tabulation) is already charged in kids[0].
        return SumCosts(kids) + model_.scalar_op;
      case ExprKind::kIndex:
        return SumCosts(kids) + Trips(abs.card) * model_.set_elem;
      case ExprKind::kDense: {
        double n = static_cast<double>(e->dense_value_count());
        return SumCosts(kids) + n * model_.alloc_elem;
      }
    }
    return SumCosts(kids) + model_.scalar_op;
  }

  const CostModel& model_;
  analysis::CoreDomains core_;
};

}  // namespace

OptCostStats& GlobalOptCostStats() {
  static OptCostStats* stats = new OptCostStats();
  return *stats;
}

namespace {

// Folds the model's weights into the memo key, so callers with different
// calibrations (tests) cannot share entries.
uint64_t HashModel(const CostModel& model) {
  uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](double d) {
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    h = (h ^ bits) * 0x100000001b3ull;
  };
  mix(model.scalar_op);
  mix(model.subscript);
  mix(model.alloc_elem);
  mix(model.set_elem);
  mix(model.external_call);
  mix(model.iter_overhead);
  mix(model.let_overhead);
  mix(model.call_overhead);
  mix(model.unknown_trips);
  mix(model.trip_cap);
  return h;
}

}  // namespace

double EstimateCost(const ExprPtr& e, const CostModel& model) {
  GlobalOptCostStats().estimates.fetch_add(1, std::memory_order_relaxed);
  // Memo keyed by the alpha-consistent structural hash (+ model weights).
  // The rewriter's fixpoint sweeps re-consult the gate on every suppressed
  // redex each sweep until the term stabilizes, re-deriving identical
  // estimates; one tree hash is far cheaper than an abstract
  // interpretation. Cost is alpha-invariant, so sharing across variants is
  // exact; a 64-bit hash collision can at worst skew a heuristic estimate
  // between semantically equal candidates — never correctness.
  // Thread-local: compiles run concurrently on service workers.
  thread_local std::unordered_map<uint64_t, double> memo;
  uint64_t key = HashExpr(e) ^ HashModel(model);
  auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  CostDomain domain(model);
  analysis::AbsInterp<CostDomain> interp(&domain);
  double cost = interp.Analyze(e).cost;
  if (memo.size() >= 1 << 14) memo.clear();  // bound the per-thread table
  memo.emplace(key, cost);
  return cost;
}

CostGate MakeCostGate(CostModel model) {
  return [model](const char*, const ExprPtr& before, const ExprPtr& after) {
    OptCostStats& stats = GlobalOptCostStats();
    double cost_before = EstimateCost(before, model);
    double cost_after = EstimateCost(after, model);
    // Strict improvement required: ties keep the existing form, and a
    // firing always shrinks the estimate, so gated rules cannot cycle
    // (code motion and cost-driven inlining are exact inverses).
    bool fire = cost_after < cost_before;
    (fire ? stats.gate_fired : stats.gate_suppressed)
        .fetch_add(1, std::memory_order_relaxed);
    return fire;
  };
}

}  // namespace aql
