// Rewrite engine for the AQL optimizer (paper §5).
//
// The optimizer proceeds in *phases*; each phase is a named set of rules
// applied bottom-up to a fixpoint. Rule bases, application strategies, and
// the phase list are extensible at run time (the paper's openness
// requirement, §4.1): RegisterRule on the Optimizer adds user rules to any
// phase.
//
// A rule is a partial function on expressions: it returns the replacement
// or nullptr when it does not apply. The engine guards against blowup with
// a node budget and a pass limit, and records per-rule firing counts,
// which the derivation tests and optimizer benches inspect.

#ifndef AQL_OPT_REWRITER_H_
#define AQL_OPT_REWRITER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/expr.h"

namespace aql {

struct Rule {
  std::string name;
  // Returns nullptr when the rule does not apply at this node.
  std::function<ExprPtr(const ExprPtr&)> apply;
};

struct RewriteStats {
  std::map<std::string, size_t> firings;
  size_t passes = 0;
  bool hit_budget = false;

  size_t TotalFirings() const {
    size_t n = 0;
    for (const auto& [_, c] : firings) n += c;
    return n;
  }
};

struct RewriteOptions {
  size_t max_passes = 64;        // full bottom-up sweeps per phase
  size_t max_nodes = 200000;     // stop rewriting when the term grows past this
  size_t max_rule_growth = 512;  // a single firing may not grow the term more

  // ---- Per-rule instrumentation (src/analysis) ----
  // Called after every successful firing with the rule name and the
  // subterm before/after replacement. The IR verifier uses this to record
  // the firing trace of a phase.
  std::function<void(const std::string& rule, const ExprPtr& before,
                     const ExprPtr& after)>
      on_firing;
  // Hard cap on total firings in one RewriteFixpoint call (0 = unlimited).
  // Once reached no further rule fires, but the current sweep still
  // completes, so the returned term is always well-formed. The verifier
  // replays a failing phase under increasing caps to attribute a
  // violation to the exact firing that introduced it.
  size_t max_firings = 0;
};

// Applies `rules` bottom-up until fixpoint (or budget). Stats are
// accumulated into *stats if non-null.
ExprPtr RewriteFixpoint(const ExprPtr& e, const std::vector<Rule>& rules,
                        const RewriteOptions& options, RewriteStats* stats);

}  // namespace aql

#endif  // AQL_OPT_REWRITER_H_
