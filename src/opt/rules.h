// The optimizer's built-in rule bases (paper §5).
//
//   NrcRules        — the NRC equational theory [7, 34]: beta for
//                     functions, pi for products, vertical fusion of set
//                     loops, loop elimination over {} / {e} / unions /
//                     conditionals, filter promotion, get({e}) = e,
//                     conditional folding.
//   ArithRules      — constant folding and unit laws for the natural /
//                     real operators (the extension of NRC with arithmetic
//                     from [18]).
//   ArrayRules      — the three §5 array rules and their k-dimensional
//                     generalizations:
//                       beta^p :  [[e1 | i < e2]][e3]
//                                   ~> if e3 < e2 then e1{i:=e3} else bottom
//                       eta^p  :  [[e[i] | i < len(e)]]  ~>  e
//                       delta^p:  len([[e1 | i < e2]])   ~>  e2
//                     plus dim/subscript folding over dense literals.
//                     With strict_arrays, delta^p is gated on the
//                     error-freedom analysis exactly as the paper requires.
//   ConstraintRules — the four §5 redundant-bound-check elimination rules
//                     (tabulation bounds, gen bounds, and the two
//                     conditional-context rules).

#ifndef AQL_OPT_RULES_H_
#define AQL_OPT_RULES_H_

#include <vector>

#include "opt/cost.h"
#include "opt/rewriter.h"

namespace aql {

std::vector<Rule> NrcRules();
std::vector<Rule> ArithRules();

// `gate`, when non-null, arbitrates the rewrites whose profitability
// depends on the plan (opt/cost.h): beta^p consults it before duplicating
// a loop-carrying index expression (a loop-free index is O(1) per copy
// and keeps the paper's unconditional behavior).
std::vector<Rule> ArrayRules(bool strict_arrays, const CostGate& gate = {});
std::vector<Rule> ConstraintRules();

// Loop-invariant hoisting (the paper's "code motion" phase). With
// `aggressive`, expressions that may error are hoisted too (changes WHEN
// an error surfaces; off by default to keep definedness monotone).
// A non-null `gate` makes hoisting cost-aware (a provably single-trip
// loop is not worth a let frame) and enables the dual rule
// inline_let_cost, which re-inlines a surviving let binding when the
// estimate says the binding overhead exceeds the sharing it buys.
// inline_let_cost is purely cost-driven: without a gate it never fires.
std::vector<Rule> CodeMotionRules(bool aggressive, const CostGate& gate = {});

}  // namespace aql

#endif  // AQL_OPT_RULES_H_
