// Arithmetic folding rules (the NRC-with-arithmetic extension of [18]).

#include "opt/analysis.h"
#include "opt/rules.h"

namespace aql {

namespace {

ExprPtr RuleNatFold(const ExprPtr& e) {
  if (!e->is(ExprKind::kArith)) return nullptr;
  const ExprPtr& a = e->child(0);
  const ExprPtr& b = e->child(1);
  if (!a->is(ExprKind::kNatConst) || !b->is(ExprKind::kNatConst)) return nullptr;
  uint64_t x = a->nat_const(), y = b->nat_const();
  switch (e->arith_op()) {
    case ArithOp::kAdd: return Expr::NatConst(x + y);
    case ArithOp::kMonus: return Expr::NatConst(x >= y ? x - y : 0);
    case ArithOp::kMul: return Expr::NatConst(x * y);
    case ArithOp::kDiv: return y == 0 ? Expr::Bottom() : Expr::NatConst(x / y);
    case ArithOp::kMod: return y == 0 ? Expr::Bottom() : Expr::NatConst(x % y);
  }
  return nullptr;
}

ExprPtr RuleRealFold(const ExprPtr& e) {
  if (!e->is(ExprKind::kArith)) return nullptr;
  const ExprPtr& a = e->child(0);
  const ExprPtr& b = e->child(1);
  if (!a->is(ExprKind::kRealConst) || !b->is(ExprKind::kRealConst)) return nullptr;
  double x = a->real_const(), y = b->real_const();
  switch (e->arith_op()) {
    case ArithOp::kAdd: return Expr::RealConst(x + y);
    case ArithOp::kMonus: return Expr::RealConst(x - y);
    case ArithOp::kMul: return Expr::RealConst(x * y);
    case ArithOp::kDiv: return Expr::RealConst(x / y);
    default: return nullptr;
  }
}

bool IsNat(const ExprPtr& e, uint64_t n) {
  return e->is(ExprKind::kNatConst) && e->nat_const() == n;
}

// Unit laws at type nat: x+0, 0+x, x-0, x*1, 1*x, x/1, x%1 (=0), x*0, 0*x.
// The annihilation laws need the other operand error-free.
ExprPtr RuleNatIdentity(const ExprPtr& e) {
  if (!e->is(ExprKind::kArith)) return nullptr;
  const ExprPtr& a = e->child(0);
  const ExprPtr& b = e->child(1);
  switch (e->arith_op()) {
    case ArithOp::kAdd:
      if (IsNat(b, 0)) return a;
      if (IsNat(a, 0)) return b;
      return nullptr;
    case ArithOp::kMonus:
      if (IsNat(b, 0)) return a;
      return nullptr;
    case ArithOp::kMul:
      if (IsNat(b, 1)) return a;
      if (IsNat(a, 1)) return b;
      if (IsNat(b, 0) && ErrorFree(a)) return Expr::NatConst(0);
      if (IsNat(a, 0) && ErrorFree(b)) return Expr::NatConst(0);
      return nullptr;
    case ArithOp::kDiv:
      if (IsNat(b, 1)) return a;
      return nullptr;
    case ArithOp::kMod:
      if (IsNat(b, 1) && ErrorFree(a)) return Expr::NatConst(0);
      return nullptr;
  }
  return nullptr;
}

}  // namespace

std::vector<Rule> ArithRules() {
  return {
      {"nat_fold", RuleNatFold},
      {"real_fold", RuleRealFold},
      {"nat_identity", RuleNatIdentity},
  };
}

}  // namespace aql
