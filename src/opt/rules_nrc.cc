// NRC normalization rules (paper §5; equational theory of [7, 34]).

#include "core/expr_ops.h"
#include "opt/analysis.h"
#include "opt/rules.h"

namespace aql {

namespace {

bool IsEmptySet(const ExprPtr& e) { return e->is(ExprKind::kEmptySet); }

bool IsNatZero(const ExprPtr& e) {
  return e->is(ExprKind::kNatConst) && e->nat_const() == 0;
}

// Is `arg` a value the array/product rules will consume statically when
// inlined into subscript/dim/proj/apply positions? Tabulations are eaten
// by beta^p/delta^p, lambdas by beta, tuples (of consumable or cheap
// parts) by pi. Duplicating these is what drives the §5 derivations.
bool ConsumableArgument(const ExprPtr& arg) {
  switch (arg->kind()) {
    case ExprKind::kTab:
    case ExprKind::kLambda:
      return true;
    case ExprKind::kTuple:
      for (const ExprPtr& c : arg->children()) {
        bool cheap = LoopFree(c) && c->TreeSize() <= 16;
        if (!cheap && !ConsumableArgument(c)) return false;
      }
      return true;
    default:
      return false;
  }
}

// beta: (\x. body)(arg) ~> body{x := arg} — with an inlining policy.
//
// Unconditional substitution would duplicate arbitrary computations into
// loop bodies (e.g. re-grouping an indexed set once per output element),
// so the rule fires only when inlining cannot change the query's
// complexity:
//   1. x does not occur: drop arg (definedness refinement, like delta^p);
//   2. arg is atomic (variable / constant / materialized value);
//   3. arg is loop-free and small: duplication costs O(1) per use;
//   4. x occurs exactly once, outside any loop or lambda body;
//   5. arg is consumable (tabulation / lambda / tuple thereof) and every
//      occurrence of x sits in a consuming position, so beta^p, delta^p,
//      pi, or beta itself will eliminate the copies statically — the §5
//      transpose and zip/subseq derivations take this path.
// Otherwise the application is kept: `let` costs one binding and
// evaluates arg exactly once (the paper's later "code motion" phase).
ExprPtr RuleBeta(const ExprPtr& e) {
  if (!e->is(ExprKind::kApply)) return nullptr;
  const ExprPtr& fn = e->child(0);
  if (!fn->is(ExprKind::kLambda)) return nullptr;
  const ExprPtr& arg = e->child(1);
  const ExprPtr& body = fn->child(0);
  const std::string& x = fn->binder();

  bool under_binder = false;
  size_t occurrences = CountFreeOccurrences(body, x, &under_binder);
  bool fire = false;
  if (occurrences == 0) {
    fire = true;
  } else {
    switch (arg->kind()) {
      case ExprKind::kVar:
      case ExprKind::kBoolConst:
      case ExprKind::kNatConst:
      case ExprKind::kRealConst:
      case ExprKind::kStrConst:
      case ExprKind::kLiteral:
      case ExprKind::kExternal:
      case ExprKind::kBottom:
      case ExprKind::kEmptySet:
        fire = true;
        break;
      default:
        break;
    }
    if (!fire && LoopFree(arg) && arg->TreeSize() <= 16) fire = true;
    if (!fire && occurrences == 1 && !under_binder) fire = true;
    if (!fire && ConsumableArgument(arg) && OccurrencesConsumed(body, x)) fire = true;
  }
  if (!fire) return nullptr;
  return Substitute(body, x, arg);
}

// Scalar literal values (bound by val declarations / readval) normalize
// to the corresponding constant nodes so constant folding sees them.
ExprPtr RuleLiteralToConst(const ExprPtr& e) {
  if (!e->is(ExprKind::kLiteral)) return nullptr;
  const Value& v = e->literal();
  switch (v.kind()) {
    case ValueKind::kBool: return Expr::BoolConst(v.bool_value());
    case ValueKind::kNat: return Expr::NatConst(v.nat_value());
    case ValueKind::kReal: return Expr::RealConst(v.real_value());
    case ValueKind::kString: return Expr::StrConst(v.str_value());
    case ValueKind::kBottom: return Expr::Bottom();
    default: return nullptr;
  }
}

// pi: pi_i(e1, ..., ek) ~> ei. Unconditional, like beta: dropping a
// sibling field that would have evaluated to bottom makes the program
// MORE defined, which is the normalization contract (cf. the delta^p
// discussion in §5). Every other rule preserves error-free results
// exactly; see opt_soundness_test.
ExprPtr RuleProjTuple(const ExprPtr& e) {
  if (!e->is(ExprKind::kProj)) return nullptr;
  const ExprPtr& t = e->child(0);
  if (!t->is(ExprKind::kTuple) || t->children().size() != e->proj_arity()) return nullptr;
  return t->child(e->proj_index() - 1);
}

// pi over a literal tuple value.
ExprPtr RuleProjLiteral(const ExprPtr& e) {
  if (!e->is(ExprKind::kProj)) return nullptr;
  const ExprPtr& t = e->child(0);
  if (!t->is(ExprKind::kLiteral) || t->literal().kind() != ValueKind::kTuple) {
    return nullptr;
  }
  const auto& fields = t->literal().tuple_fields();
  if (fields.size() != e->proj_arity()) return nullptr;
  return Expr::Literal(fields[e->proj_index() - 1]);
}

// U{ e | x in {} } ~> {}
ExprPtr RuleBigUnionEmptySource(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !IsEmptySet(e->child(1))) return nullptr;
  return Expr::EmptySet();
}

// U{ {} | x in s } ~> {}   (s must be error-free: bottom source is bottom)
ExprPtr RuleBigUnionEmptyBody(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !IsEmptySet(e->child(0))) return nullptr;
  if (!ErrorFree(e->child(1))) return nullptr;
  return Expr::EmptySet();
}

// U{ e | x in {a} } ~> e{x := a}   (a error-free; {bottom} is bottom)
ExprPtr RuleBigUnionSingleton(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion)) return nullptr;
  const ExprPtr& src = e->child(1);
  if (!src->is(ExprKind::kSingleton) || !ErrorFree(src->child(0))) return nullptr;
  return Substitute(e->child(0), e->binder(), src->child(0));
}

// Horizontal fusion: U{ e | x in a U b } ~> U{e | x in a} U U{e | x in b}
ExprPtr RuleBigUnionOverUnion(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !e->child(1)->is(ExprKind::kUnion)) return nullptr;
  const ExprPtr& u = e->child(1);
  return Expr::Union(Expr::BigUnion(e->binder(), e->child(0), u->child(0)),
                     Expr::BigUnion(e->binder(), e->child(0), u->child(1)));
}

// Vertical fusion: U{ e1 | x in U{ e2 | y in e3 } }
//                    ~> U{ U{ e1 | x in e2 } | y in e3 }   (y not free in e1)
ExprPtr RuleBigUnionFusion(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !e->child(1)->is(ExprKind::kBigUnion)) {
    return nullptr;
  }
  ExprPtr inner = e->child(1);
  std::string y = inner->binder();
  if (OccursFree(e->child(0), y)) {
    // Rename the inner binder away from e1's free variables.
    std::set<std::string> avoid = FreeVars(e->child(0));
    auto inner_fv = FreeVars(inner->child(0));
    avoid.insert(inner_fv.begin(), inner_fv.end());
    std::string fresh = FreshName(y, avoid);
    inner = Expr::BigUnion(fresh, Substitute(inner->child(0), y, Expr::Var(fresh)),
                           inner->child(1));
    y = fresh;
  }
  return Expr::BigUnion(
      y, Expr::BigUnion(e->binder(), e->child(0), inner->child(0)), inner->child(1));
}

// U{ e | x in if c then a else b } ~> if c then U{e | x in a} else U{...b}
ExprPtr RuleBigUnionOverIf(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !e->child(1)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& cond = e->child(1);
  return Expr::If(cond->child(0),
                  Expr::BigUnion(e->binder(), e->child(0), cond->child(1)),
                  Expr::BigUnion(e->binder(), e->child(0), cond->child(2)));
}

// Filter promotion: U{ if c then e else {} | x in s } with x not free in c
//   ~> if c then U{ e | x in s } else {}
// Needs s error-free (a bottom source is bottom on the left) AND c
// error-free: when s is empty the left never evaluates c, but the right
// always does, so an erroring c would make the program LESS defined —
// the one direction normalization never takes.
ExprPtr RuleFilterPromotion(const ExprPtr& e) {
  if (!e->is(ExprKind::kBigUnion) || !e->child(0)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& body = e->child(0);
  if (!IsEmptySet(body->child(2))) return nullptr;
  if (OccursFree(body->child(0), e->binder())) return nullptr;
  if (!ErrorFree(e->child(1)) || !ErrorFree(body->child(0))) return nullptr;
  return Expr::If(body->child(0),
                  Expr::BigUnion(e->binder(), body->child(1), e->child(1)),
                  Expr::EmptySet());
}

// Sum analogues. Note Sum does NOT distribute over unions (sets
// deduplicate), so only the safe shapes appear here.
ExprPtr RuleSumEmptySource(const ExprPtr& e) {
  if (!e->is(ExprKind::kSum) || !IsEmptySet(e->child(1))) return nullptr;
  return Expr::NatConst(0);
}

ExprPtr RuleSumSingleton(const ExprPtr& e) {
  if (!e->is(ExprKind::kSum)) return nullptr;
  const ExprPtr& src = e->child(1);
  if (!src->is(ExprKind::kSingleton) || !ErrorFree(src->child(0))) return nullptr;
  return Substitute(e->child(0), e->binder(), src->child(0));
}

ExprPtr RuleSumOverIf(const ExprPtr& e) {
  if (!e->is(ExprKind::kSum) || !e->child(1)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& cond = e->child(1);
  return Expr::If(cond->child(0), Expr::Sum(e->binder(), e->child(0), cond->child(1)),
                  Expr::Sum(e->binder(), e->child(0), cond->child(2)));
}

// Sum{ if c then e else 0 | x in s } with x not free in c
//   ~> if c then Sum{ e | x in s } else 0
// (s and c error-free, as for RuleFilterPromotion.)
ExprPtr RuleSumFilterPromotion(const ExprPtr& e) {
  if (!e->is(ExprKind::kSum) || !e->child(0)->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& body = e->child(0);
  if (!IsNatZero(body->child(2))) return nullptr;
  if (OccursFree(body->child(0), e->binder())) return nullptr;
  if (!ErrorFree(e->child(1)) || !ErrorFree(body->child(0))) return nullptr;
  return Expr::If(body->child(0), Expr::Sum(e->binder(), body->child(1), e->child(1)),
                  Expr::NatConst(0));
}

// get({e}) ~> e
ExprPtr RuleGetSingleton(const ExprPtr& e) {
  if (!e->is(ExprKind::kGet) || !e->child(0)->is(ExprKind::kSingleton)) return nullptr;
  return e->child(0)->child(0);
}

// {} U e ~> e,  e U {} ~> e
ExprPtr RuleUnionEmpty(const ExprPtr& e) {
  if (!e->is(ExprKind::kUnion)) return nullptr;
  if (IsEmptySet(e->child(0))) return e->child(1);
  if (IsEmptySet(e->child(1))) return e->child(0);
  return nullptr;
}

// if true then a else b ~> a;  if false then a else b ~> b
ExprPtr RuleIfConst(const ExprPtr& e) {
  if (!e->is(ExprKind::kIf) || !e->child(0)->is(ExprKind::kBoolConst)) return nullptr;
  return e->child(0)->bool_const() ? e->child(1) : e->child(2);
}

// if c then a else a ~> a   (c error-free)
ExprPtr RuleIfSameBranches(const ExprPtr& e) {
  if (!e->is(ExprKind::kIf)) return nullptr;
  if (!AlphaEqual(e->child(1), e->child(2))) return nullptr;
  if (!ErrorFree(e->child(0))) return nullptr;
  return e->child(1);
}

// Nested conditional with identical condition:
//   if c then (if c then a else b) else d ~> if c then a else d (and dual).
ExprPtr RuleIfNestedSameCond(const ExprPtr& e) {
  if (!e->is(ExprKind::kIf)) return nullptr;
  const ExprPtr& c = e->child(0);
  if (e->child(1)->is(ExprKind::kIf) && AlphaEqual(e->child(1)->child(0), c)) {
    return Expr::If(c, e->child(1)->child(1), e->child(2));
  }
  if (e->child(2)->is(ExprKind::kIf) && AlphaEqual(e->child(2)->child(0), c)) {
    return Expr::If(c, e->child(1), e->child(2)->child(2));
  }
  return nullptr;
}

// Comparison of two constants folds.
const Value* ConstValueOf(const ExprPtr& e, Value* storage) {
  switch (e->kind()) {
    case ExprKind::kBoolConst: *storage = Value::Bool(e->bool_const()); return storage;
    case ExprKind::kNatConst: *storage = Value::Nat(e->nat_const()); return storage;
    case ExprKind::kRealConst: *storage = Value::Real(e->real_const()); return storage;
    case ExprKind::kStrConst: *storage = Value::Str(e->str_const()); return storage;
    case ExprKind::kLiteral: *storage = e->literal(); return storage;
    default: return nullptr;
  }
}

ExprPtr RuleCmpFold(const ExprPtr& e) {
  if (!e->is(ExprKind::kCmp)) return nullptr;
  Value sa, sb;
  const Value* a = ConstValueOf(e->child(0), &sa);
  const Value* b = ConstValueOf(e->child(1), &sb);
  if (!a || !b) return nullptr;
  if (a->is_bottom() || b->is_bottom()) return Expr::Bottom();
  int c = Value::Compare(*a, *b);
  switch (e->cmp_op()) {
    case CmpOp::kEq: return Expr::BoolConst(c == 0);
    case CmpOp::kNe: return Expr::BoolConst(c != 0);
    case CmpOp::kLt: return Expr::BoolConst(c < 0);
    case CmpOp::kLe: return Expr::BoolConst(c <= 0);
    case CmpOp::kGt: return Expr::BoolConst(c > 0);
    case CmpOp::kGe: return Expr::BoolConst(c >= 0);
  }
  return nullptr;
}

// e op e for identical error-free e folds by reflexivity.
ExprPtr RuleCmpRefl(const ExprPtr& e) {
  if (!e->is(ExprKind::kCmp)) return nullptr;
  if (!AlphaEqual(e->child(0), e->child(1))) return nullptr;
  if (!ErrorFree(e->child(0))) return nullptr;
  switch (e->cmp_op()) {
    case CmpOp::kEq:
    case CmpOp::kLe:
    case CmpOp::kGe:
      return Expr::BoolConst(true);
    case CmpOp::kNe:
    case CmpOp::kLt:
    case CmpOp::kGt:
      return Expr::BoolConst(false);
  }
  return nullptr;
}

}  // namespace

std::vector<Rule> NrcRules() {
  return {
      {"literal_to_const", RuleLiteralToConst},
      {"beta", RuleBeta},
      {"proj_tuple", RuleProjTuple},
      {"proj_literal", RuleProjLiteral},
      {"bigunion_empty_source", RuleBigUnionEmptySource},
      {"bigunion_empty_body", RuleBigUnionEmptyBody},
      {"bigunion_singleton", RuleBigUnionSingleton},
      {"bigunion_over_union", RuleBigUnionOverUnion},
      {"bigunion_fusion", RuleBigUnionFusion},
      {"bigunion_over_if", RuleBigUnionOverIf},
      {"filter_promotion", RuleFilterPromotion},
      {"sum_empty_source", RuleSumEmptySource},
      {"sum_singleton", RuleSumSingleton},
      {"sum_over_if", RuleSumOverIf},
      {"sum_filter_promotion", RuleSumFilterPromotion},
      {"get_singleton", RuleGetSingleton},
      {"union_empty", RuleUnionEmpty},
      {"if_const", RuleIfConst},
      {"if_same_branches", RuleIfSameBranches},
      {"if_nested_same_cond", RuleIfNestedSameCond},
      {"cmp_fold", RuleCmpFold},
      {"cmp_refl", RuleCmpRefl},
  };
}

}  // namespace aql
