// Cost-based plan selection (the missing half of the paper's §5 engine).
//
// The rewrite engine is syntactic: a rule fires wherever it matches. Most
// of the rule base is safely monotone (smaller terms, fewer operations),
// but three families can regress a plan:
//
//   - beta^p duplicates the subscript index into every bound check and
//     body occurrence — a loop-carrying index expression is then
//     re-evaluated k+1 times instead of once;
//   - code motion materializes a loop-invariant subterm into a `let`,
//     which only pays when the loop actually iterates more than once;
//   - the dual decision, re-inlining a `let` binding whose body use sits
//     under a provably-single-trip loop, saves the binding overhead.
//
// This module prices a core term with the abstract-interpretation facts
// from src/analysis (the Cardinality/Shape reduced product bounds every
// loop's trip count) and a table of per-op weights calibrated against
// bench_exec, and exposes a CostGate the rule bases consult before firing.
// The gate requires a STRICT cost improvement, so rival normal forms can
// never cycle: every gated firing shrinks the estimate.
//
// Estimates are heuristic, not sound bounds: unknown trip counts fall back
// to CostModel::unknown_trips, free variables are shapeless, and lambda
// bodies passed to externals are not charged. The gate only chooses among
// semantically equal forms, so a bad estimate costs time, never
// correctness (opt_cost_test pins the decisions that matter).

#ifndef AQL_OPT_COST_H_
#define AQL_OPT_COST_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "core/expr.h"

namespace aql {

// Per-operation weights in abstract nanoseconds. The defaults were
// calibrated against bench_exec on the compiled backend: a fused scalar
// tabulation sustains ~1ns/element, a gather ~2ns, set insertion (sort +
// dedup dominated) tens of ns.
struct CostModel {
  double scalar_op = 1.0;       // arith / cmp / proj / if dispatch
  double subscript = 2.0;       // bounds check + gather
  double alloc_elem = 2.0;      // materializing one array element
  double set_elem = 40.0;       // set insert: ordered, deduplicated
  double external_call = 25.0;  // registered primitive dispatch
  double iter_overhead = 1.5;   // per-iteration loop bookkeeping
  double let_overhead = 6.0;    // frame slot store + load
  double call_overhead = 4.0;   // closure application
  // Assumed trip count when the Cardinality domain cannot bound a loop.
  // Deliberately > 1: unbounded loops usually iterate, so hoisting out of
  // them and fusing into them stays profitable by default.
  double unknown_trips = 64.0;
  // Clamp for constant trip counts, so one 2^36-element tabulation does
  // not flush every other term's cost to noise.
  double trip_cap = 1 << 24;
};

// Estimated cost of evaluating `e` once, in abstract ns. Deterministic
// and total: unknown constructs price as plain scalar ops.
double EstimateCost(const ExprPtr& e, const CostModel& model = {});

// Process-wide gate statistics, mirrored into the service metrics as
// opt.cost.* (src/opt cannot depend on src/service, same pattern as
// exec::GlobalExecStats).
struct OptCostStats {
  std::atomic<uint64_t> estimates{0};         // EstimateCost calls
  std::atomic<uint64_t> gate_fired{0};        // gate said: rewrite pays
  std::atomic<uint64_t> gate_suppressed{0};   // gate said: keep the redex
};
OptCostStats& GlobalOptCostStats();

// Profitability test injected into the rule bases: called with the redex
// and the candidate replacement; returns true to let the rule fire. A
// null CostGate means "always fire" — the paper's syntactic engine.
using CostGate =
    std::function<bool(const char* rule, const ExprPtr& before, const ExprPtr& after)>;

// The standard gate: fire iff EstimateCost(after) < EstimateCost(before).
// Strict, so ties keep the existing form and gated rules cannot cycle.
CostGate MakeCostGate(CostModel model);

}  // namespace aql

#endif  // AQL_OPT_COST_H_
