// Static analyses used to gate rewrite rules.
//
// ErrorFree: a conservative syntactic check that an expression cannot
// evaluate to the error value bottom (paper §2 "Errors", §5: the delta^p
// rule "is sound only if e1 is error-free"). With our partial-function
// array semantics delta^p does not need the check, but several other rules
// do (collapsing `if c then e else e`, multiply-by-zero, dropping a
// tabulation body whose value is unused), and the strict-array
// configuration reinstates the paper's gate.
//
// Bound-checking is undecidable for NRCA (Proposition 5.1), so false here
// only means "could not prove error-free".

#ifndef AQL_OPT_ANALYSIS_H_
#define AQL_OPT_ANALYSIS_H_

#include "core/expr.h"

namespace aql {

// True when `e` provably cannot produce bottom. Conservative: subscripts,
// get, division by a non-constant, external calls, and applications of
// unknown functions all return false.
bool ErrorFree(const ExprPtr& e);

// True when the value `v` contains no bottom anywhere.
bool ValueErrorFree(const Value& v);

// True when evaluating `e` performs no iteration: no big unions, sums,
// tabulations, gen, index, dense construction, or calls. Such expressions
// cost O(size) and may be duplicated into loop bodies by beta without
// changing the asymptotic complexity of a query.
bool LoopFree(const ExprPtr& e);

// Counts free occurrences of `name` in `e`; sets *under_binder when any
// occurrence sits inside a scope introduced by e's subterms (a loop or
// lambda body), i.e. a position that may evaluate many times.
size_t CountFreeOccurrences(const ExprPtr& e, const std::string& name,
                            bool* under_binder);

// True when every free occurrence of `name` in `e` is in a position the
// array/product rules will consume statically: the target of a subscript,
// dim, or projection, or the function position of an application. Inlining
// a tabulation/lambda/tuple argument into such positions is what drives
// the §5 derivations (transpose, zip/subseq) to fuse.
bool OccurrencesConsumed(const ExprPtr& e, const std::string& name);

}  // namespace aql

#endif  // AQL_OPT_ANALYSIS_H_
