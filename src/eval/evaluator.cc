#include "eval/evaluator.h"

#include <algorithm>
#include <cmath>

#include "base/cancel.h"
#include "base/strings.h"

namespace aql {

namespace {

// Closure value produced by evaluating a lambda.
class Closure : public FuncValue {
 public:
  Closure(const Evaluator* evaluator, std::string param, ExprPtr body, Environment env)
      : evaluator_(evaluator),
        param_(std::move(param)),
        body_(std::move(body)),
        env_(std::move(env)) {}

  Result<Value> Apply(const Value& arg) const override {
    return evaluator_->Eval(body_, env_.Bind(param_, arg));
  }

  std::string name() const override { return StrCat("<fn \\", param_, ">"); }

 private:
  const Evaluator* evaluator_;
  std::string param_;
  ExprPtr body_;
  Environment env_;
};

// Extracts a k-dim index from a value: a nat (k=1) or a tuple of nats.
// Returns false if the value has the wrong shape (a type error upstream).
bool ExtractIndex(const Value& v, std::vector<uint64_t>* out) {
  out->clear();
  if (v.kind() == ValueKind::kNat) {
    out->push_back(v.nat_value());
    return true;
  }
  if (v.kind() == ValueKind::kTuple) {
    for (const Value& f : v.tuple_fields()) {
      if (f.kind() != ValueKind::kNat) return false;
      out->push_back(f.nat_value());
    }
    return out->size() >= 2;
  }
  return false;
}

}  // namespace

namespace {
// Thread-local so concurrent evaluators don't share a budget; RAII so
// early returns unwind it.
thread_local size_t g_eval_depth = 0;
struct DepthGuard {
  DepthGuard() { ++g_eval_depth; }
  ~DepthGuard() { --g_eval_depth; }
};
}  // namespace

Result<Value> Evaluator::Eval(const ExprPtr& e, const Environment& env) const {
  DepthGuard guard;
  if (g_eval_depth > max_depth_) {
    return Status::EvalError(
        StrCat("evaluation exceeded the maximum depth of ", max_depth_));
  }
  switch (e->kind()) {
    case ExprKind::kVar: {
      const Value* v = env.Lookup(e->var_name());
      if (v == nullptr) {
        return Status::EvalError(StrCat("unbound variable ", e->var_name()));
      }
      return *v;
    }
    case ExprKind::kLambda:
      return Value::MakeFunc(
          std::make_shared<Closure>(this, e->binder(), e->child(0), env));
    case ExprKind::kApply: {
      AQL_ASSIGN_OR_RETURN(Value fn, Eval(e->child(0), env));
      if (fn.is_bottom()) return Value::Bottom();
      if (fn.kind() != ValueKind::kFunc) {
        return Status::EvalError(
            StrCat("applying a non-function value of kind ", ValueKindName(fn.kind())));
      }
      AQL_ASSIGN_OR_RETURN(Value arg, Eval(e->child(1), env));
      if (arg.is_bottom()) return Value::Bottom();
      return fn.func().Apply(arg);
    }
    case ExprKind::kTuple: {
      std::vector<Value> fields;
      fields.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        AQL_ASSIGN_OR_RETURN(Value v, Eval(c, env));
        if (v.is_bottom()) return Value::Bottom();
        fields.push_back(std::move(v));
      }
      return Value::MakeTuple(std::move(fields));
    }
    case ExprKind::kProj: {
      AQL_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      if (v.is_bottom()) return Value::Bottom();
      if (v.kind() != ValueKind::kTuple || v.tuple_fields().size() != e->proj_arity()) {
        return Status::EvalError("projection applied to non-tuple or wrong arity");
      }
      return v.tuple_fields()[e->proj_index() - 1];
    }
    case ExprKind::kEmptySet:
      return Value::EmptySet();
    case ExprKind::kSingleton: {
      AQL_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      if (v.is_bottom()) return Value::Bottom();
      return Value::MakeSetCanonical({std::move(v)});
    }
    case ExprKind::kUnion: {
      AQL_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      if (a.is_bottom()) return Value::Bottom();
      AQL_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      if (b.is_bottom()) return Value::Bottom();
      return Value::SetUnion(a, b);
    }
    case ExprKind::kBigUnion: {
      AQL_ASSIGN_OR_RETURN(Value src, Eval(e->child(1), env));
      if (src.is_bottom()) return Value::Bottom();
      std::vector<Value> acc;
      for (const Value& x : src.set().elems) {
        AQL_RETURN_IF_ERROR(CheckInterrupt());
        AQL_ASSIGN_OR_RETURN(Value part, Eval(e->child(0), env.Bind(e->binder(), x)));
        if (part.is_bottom()) return Value::Bottom();
        const auto& elems = part.set().elems;
        acc.insert(acc.end(), elems.begin(), elems.end());
      }
      return Value::MakeSet(std::move(acc));
    }
    case ExprKind::kGet: {
      AQL_ASSIGN_OR_RETURN(Value v, Eval(e->child(0), env));
      if (v.is_bottom()) return Value::Bottom();
      if (v.set().elems.size() != 1) return Value::Bottom();
      return v.set().elems[0];
    }
    case ExprKind::kBoolConst:
      return Value::Bool(e->bool_const());
    case ExprKind::kIf: {
      AQL_ASSIGN_OR_RETURN(Value c, Eval(e->child(0), env));
      if (c.is_bottom()) return Value::Bottom();
      return Eval(c.bool_value() ? e->child(1) : e->child(2), env);
    }
    case ExprKind::kCmp: {
      AQL_ASSIGN_OR_RETURN(Value a, Eval(e->child(0), env));
      if (a.is_bottom()) return Value::Bottom();
      AQL_ASSIGN_OR_RETURN(Value b, Eval(e->child(1), env));
      if (b.is_bottom()) return Value::Bottom();
      int c = Value::Compare(a, b);
      switch (e->cmp_op()) {
        case CmpOp::kEq: return Value::Bool(c == 0);
        case CmpOp::kNe: return Value::Bool(c != 0);
        case CmpOp::kLt: return Value::Bool(c < 0);
        case CmpOp::kLe: return Value::Bool(c <= 0);
        case CmpOp::kGt: return Value::Bool(c > 0);
        case CmpOp::kGe: return Value::Bool(c >= 0);
      }
      return Status::Internal("bad cmp op");
    }
    case ExprKind::kNatConst:
      return Value::Nat(e->nat_const());
    case ExprKind::kRealConst:
      return Value::Real(e->real_const());
    case ExprKind::kStrConst:
      return Value::Str(e->str_const());
    case ExprKind::kArith:
      return EvalArith(*e, env);
    case ExprKind::kGen: {
      AQL_ASSIGN_OR_RETURN(Value n, Eval(e->child(0), env));
      if (n.is_bottom()) return Value::Bottom();
      if (n.kind() != ValueKind::kNat) return Status::EvalError("gen of non-nat");
      std::vector<Value> elems;
      // Clamp the reserve: a huge bound must reach the interrupt checks
      // below rather than die up front in one giant allocation.
      elems.reserve(std::min<uint64_t>(n.nat_value(), uint64_t{1} << 20));
      for (uint64_t i = 0; i < n.nat_value(); ++i) {
        if ((i & 0xFFF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
        elems.push_back(Value::Nat(i));
      }
      return Value::MakeSetCanonical(std::move(elems));
    }
    case ExprKind::kSum: {
      AQL_ASSIGN_OR_RETURN(Value src, Eval(e->child(1), env));
      if (src.is_bottom()) return Value::Bottom();
      uint64_t nat_total = 0;
      double real_total = 0;
      bool is_real = false;
      bool first = true;
      for (const Value& x : src.set().elems) {
        AQL_RETURN_IF_ERROR(CheckInterrupt());
        AQL_ASSIGN_OR_RETURN(Value part, Eval(e->child(0), env.Bind(e->binder(), x)));
        if (part.is_bottom()) return Value::Bottom();
        if (first) {
          is_real = part.kind() == ValueKind::kReal;
          first = false;
        }
        if (is_real) {
          if (part.kind() != ValueKind::kReal) {
            return Status::EvalError("Sum body mixed nat and real");
          }
          real_total += part.real_value();
        } else {
          if (part.kind() != ValueKind::kNat) {
            return Status::EvalError("Sum body must be nat or real");
          }
          nat_total += part.nat_value();
        }
      }
      if (first) return Value::Nat(0);  // empty set; nat 0 coerces either way
      return is_real ? Value::Real(real_total) : Value::Nat(nat_total);
    }
    case ExprKind::kTab:
      return EvalTab(*e, env);
    case ExprKind::kSubscript: {
      AQL_ASSIGN_OR_RETURN(Value arr, Eval(e->child(0), env));
      if (arr.is_bottom()) return Value::Bottom();
      if (arr.kind() != ValueKind::kArray) {
        return Status::EvalError("subscript of non-array");
      }
      AQL_ASSIGN_OR_RETURN(Value idx, Eval(e->child(1), env));
      if (idx.is_bottom()) return Value::Bottom();
      std::vector<uint64_t> index;
      if (!ExtractIndex(idx, &index)) {
        return Status::EvalError("array index is not a nat or tuple of nats");
      }
      const ArrayRep& a = arr.array();
      if (!a.InBounds(index)) return Value::Bottom();
      return a.At(a.Flatten(index));
    }
    case ExprKind::kDim: {
      AQL_ASSIGN_OR_RETURN(Value arr, Eval(e->child(0), env));
      if (arr.is_bottom()) return Value::Bottom();
      if (arr.kind() != ValueKind::kArray) return Status::EvalError("dim of non-array");
      const ArrayRep& a = arr.array();
      if (a.dims.size() != e->rank()) {
        return Status::EvalError(StrCat("dim_", e->rank(), " of rank-", a.dims.size(),
                                        " array"));
      }
      if (a.dims.size() == 1) return Value::Nat(a.dims[0]);
      std::vector<Value> fields;
      fields.reserve(a.dims.size());
      for (uint64_t d : a.dims) fields.push_back(Value::Nat(d));
      return Value::MakeTuple(std::move(fields));
    }
    case ExprKind::kIndex:
      return EvalIndex(*e, env);
    case ExprKind::kDense: {
      std::vector<uint64_t> dims;
      dims.reserve(e->dense_rank());
      for (size_t j = 0; j < e->dense_rank(); ++j) {
        AQL_ASSIGN_OR_RETURN(Value d, Eval(e->dense_dim(j), env));
        if (d.is_bottom()) return Value::Bottom();
        if (d.kind() != ValueKind::kNat) {
          return Status::EvalError("array literal dimension is not a nat");
        }
        dims.push_back(d.nat_value());
      }
      uint64_t total = 1;
      for (uint64_t d : dims) total *= d;
      if (total != e->dense_value_count()) return Value::Bottom();
      std::vector<Value> elems;
      elems.reserve(total);
      for (size_t j = 0; j < e->dense_value_count(); ++j) {
        // As with tabulations, individual elements may be bottom.
        AQL_ASSIGN_OR_RETURN(Value v, Eval(e->dense_value(j), env));
        elems.push_back(std::move(v));
      }
      auto arr = Value::MakeArray(std::move(dims), std::move(elems));
      if (!arr.ok()) return Status::Internal(arr.status().message());
      return std::move(arr).value();
    }
    case ExprKind::kBottom:
      return Value::Bottom();
    case ExprKind::kLiteral:
      return e->literal();
    case ExprKind::kExternal: {
      std::shared_ptr<const FuncValue> fn =
          external_lookup_ ? external_lookup_(e->var_name()) : nullptr;
      if (!fn) {
        return Status::EvalError(StrCat("unknown external primitive ", e->var_name()));
      }
      return Value::MakeFunc(std::move(fn));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Evaluator::EvalTab(const Expr& e, const Environment& env) const {
  size_t k = e.tab_rank();
  std::vector<uint64_t> dims(k);
  for (size_t j = 0; j < k; ++j) {
    AQL_ASSIGN_OR_RETURN(Value b, Eval(e.tab_bound(j), env));
    if (b.is_bottom()) return Value::Bottom();
    if (b.kind() != ValueKind::kNat) {
      return Status::EvalError("tabulation bound is not a nat");
    }
    dims[j] = b.nat_value();
  }
  // Reject bounds whose product overflows or exceeds the element cap, as
  // the compiled backend does; silently clamping would change semantics.
  AQL_ASSIGN_OR_RETURN(uint64_t total, CheckedVolume(dims));
  std::vector<Value> elems;
  // Clamped for the same reason as gen: oversized tabulations must stay
  // cancellable instead of failing one huge up-front allocation.
  elems.reserve(std::min<uint64_t>(total, uint64_t{1} << 20));
  std::vector<uint64_t> index(k, 0);
  for (uint64_t flat = 0; flat < total; ++flat) {
    AQL_RETURN_IF_ERROR(CheckInterrupt());
    Environment body_env = env;
    for (size_t j = 0; j < k; ++j) {
      body_env = body_env.Bind(e.binders()[j], Value::Nat(index[j]));
    }
    AQL_ASSIGN_OR_RETURN(Value v, Eval(e.tab_body(), body_env));
    // Arrays are partial functions (§2): a body error at one point leaves
    // the array defined elsewhere, storing bottom at that point. This is
    // what makes the beta^p / eta^p / delta^p rules of §5 unconditionally
    // sound here (the paper's delta^p caveat assumes error-strict arrays).
    elems.push_back(std::move(v));
    for (size_t j = k; j-- > 0;) {
      if (++index[j] < dims[j]) break;
      index[j] = 0;
    }
  }
  auto arr = Value::MakeArray(std::move(dims), std::move(elems));
  if (!arr.ok()) return Status::Internal(arr.status().message());
  return std::move(arr).value();
}

Result<Value> Evaluator::EvalIndex(const Expr& e, const Environment& env) const {
  AQL_ASSIGN_OR_RETURN(Value src, Eval(e.child(0), env));
  if (src.is_bottom()) return Value::Bottom();
  size_t k = e.rank();

  // First pass: determine the dimensions (max key + 1 per axis, §2).
  std::vector<uint64_t> dims(k, 0);
  std::vector<std::pair<std::vector<uint64_t>, const Value*>> entries;
  entries.reserve(src.set().elems.size());
  for (const Value& pair : src.set().elems) {
    if (pair.kind() != ValueKind::kTuple || pair.tuple_fields().size() != 2) {
      return Status::EvalError("index expects a set of (key, value) pairs");
    }
    const Value& key = pair.tuple_fields()[0];
    std::vector<uint64_t> idx;
    if (k == 1) {
      if (key.kind() != ValueKind::kNat) {
        return Status::EvalError("index_1 key is not a nat");
      }
      idx.push_back(key.nat_value());
    } else {
      if (!ExtractIndex(key, &idx) || idx.size() != k) {
        return Status::EvalError(StrCat("index_", k, " key has wrong shape"));
      }
    }
    for (size_t j = 0; j < k; ++j) dims[j] = std::max(dims[j], idx[j] + 1);
    entries.emplace_back(std::move(idx), &pair.tuple_fields()[1]);
  }

  uint64_t total = 1;
  for (uint64_t d : dims) total *= d;
  // Fill the holes with {} and group duplicate keys into sets (§2: the
  // result type is [[{t}]]_k precisely to absorb holes and collisions).
  std::vector<std::vector<Value>> buckets(total);
  ArrayRep shape{dims, {}};
  for (auto& [idx, value] : entries) {
    buckets[shape.Flatten(idx)].push_back(*value);
  }
  std::vector<Value> elems;
  elems.reserve(total);
  for (auto& bucket : buckets) {
    // Source elements arrive sorted, and tuples sort key-first, so each
    // bucket is already sorted and unique; keep the canonical invariant.
    elems.push_back(Value::MakeSetCanonical(std::move(bucket)));
  }
  auto arr = Value::MakeArray(std::move(dims), std::move(elems));
  if (!arr.ok()) return Status::Internal(arr.status().message());
  return std::move(arr).value();
}

Result<Value> Evaluator::EvalArith(const Expr& e, const Environment& env) const {
  AQL_ASSIGN_OR_RETURN(Value a, Eval(e.child(0), env));
  if (a.is_bottom()) return Value::Bottom();
  AQL_ASSIGN_OR_RETURN(Value b, Eval(e.child(1), env));
  if (b.is_bottom()) return Value::Bottom();
  if (a.kind() == ValueKind::kNat && b.kind() == ValueKind::kNat) {
    uint64_t x = a.nat_value(), y = b.nat_value();
    switch (e.arith_op()) {
      case ArithOp::kAdd: return Value::Nat(x + y);
      case ArithOp::kMonus: return Value::Nat(x >= y ? x - y : 0);  // monus
      case ArithOp::kMul: return Value::Nat(x * y);
      case ArithOp::kDiv: return y == 0 ? Value::Bottom() : Value::Nat(x / y);
      case ArithOp::kMod: return y == 0 ? Value::Bottom() : Value::Nat(x % y);
    }
  }
  if (a.kind() == ValueKind::kReal && b.kind() == ValueKind::kReal) {
    double x = a.real_value(), y = b.real_value();
    switch (e.arith_op()) {
      case ArithOp::kAdd: return Value::Real(x + y);
      case ArithOp::kMonus: return Value::Real(x - y);
      case ArithOp::kMul: return Value::Real(x * y);
      case ArithOp::kDiv: return Value::Real(x / y);
      case ArithOp::kMod: return Value::Real(std::fmod(x, y));
    }
  }
  return Status::EvalError(StrCat("arithmetic on ", ValueKindName(a.kind()), " and ",
                                  ValueKindName(b.kind())));
}

}  // namespace aql
