// Evaluator for the core calculus (the "object module" of Fig. 3).
//
// An environment-passing interpreter producing complex-object Values.
// Semantics follow paper §2:
//   - sets are canonical (sorted, deduplicated); big-union iterates
//     elements in the definable linear order, which is what makes the §6
//     ranking constructs deterministic;
//   - the error value bottom is contagious through sets, tuples, sums and
//     conditions, but arrays are *partial functions* (§2): a tabulation
//     whose body errors at one point stores bottom at that point and stays
//     defined elsewhere. This choice makes the §5 array rules
//     (beta^p/eta^p/delta^p) unconditionally sound; src/opt still ships the
//     error-freedom analysis for the rules that do need it;
//   - nat arithmetic uses monus for '-' and integer division for '/';
//     the same operators work at type real with ordinary IEEE semantics;
//   - out-of-bounds subscripts, get() on non-singletons, division by zero,
//     and dense literals whose value count mismatches their dimensions all
//     evaluate to bottom, not to a host error.
//
// Host-level failures (unbound variable, applying a non-function) surface
// as Status; a well-typed program never triggers them.
//
// Loop constructs (big union, sum, tabulation, gen) poll base/cancel.h's
// CheckInterrupt(): installing a CancelToken via ExecScope around Eval()
// bounds the evaluation with a deadline or makes it cancellable, returning
// a DeadlineExceeded/Cancelled Status. The service layer (src/service)
// arms one token per query.

#ifndef AQL_EVAL_EVALUATOR_H_
#define AQL_EVAL_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>

#include "base/result.h"
#include "core/expr.h"
#include "object/value.h"

namespace aql {

// Persistent environment: binding extends without copying.
class Environment {
 public:
  Environment() = default;

  Environment Bind(std::string name, Value value) const {
    return Environment(
        std::make_shared<const Node>(Node{std::move(name), std::move(value), head_}));
  }

  // Most recent binding of `name`, or nullptr.
  const Value* Lookup(const std::string& name) const {
    for (const Node* n = head_.get(); n != nullptr; n = n->next.get()) {
      if (n->name == name) return &n->value;
    }
    return nullptr;
  }

 private:
  struct Node {
    std::string name;
    Value value;
    std::shared_ptr<const Node> next;
  };
  explicit Environment(std::shared_ptr<const Node> head) : head_(std::move(head)) {}
  std::shared_ptr<const Node> head_;
};

class Evaluator {
 public:
  // Resolves a registered external primitive to its implementation, or
  // nullptr if unknown.
  using ExternalLookup =
      std::function<std::shared_ptr<const FuncValue>(const std::string&)>;

  explicit Evaluator(ExternalLookup external_lookup = nullptr,
                     size_t max_depth = kDefaultMaxDepth)
      : external_lookup_(std::move(external_lookup)), max_depth_(max_depth) {}

  Result<Value> Eval(const ExprPtr& e) const { return Eval(e, Environment()); }
  Result<Value> Eval(const ExprPtr& e, const Environment& env) const;

  // Recursion guard: evaluation deeper than this (nested closures /
  // pathological expression trees) returns an EvalError instead of
  // overrunning the host stack.
  static constexpr size_t kDefaultMaxDepth = 10000;

 private:
  Result<Value> EvalTab(const Expr& e, const Environment& env) const;
  Result<Value> EvalIndex(const Expr& e, const Environment& env) const;
  Result<Value> EvalArith(const Expr& e, const Environment& env) const;

  ExternalLookup external_lookup_;
  size_t max_depth_;
};

}  // namespace aql

#endif  // AQL_EVAL_EVALUATOR_H_
