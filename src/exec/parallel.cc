#include "exec/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "base/cancel.h"
#include "base/env.h"
#include "base/sync.h"
#include "base/thread_pool.h"
#include "obs/trace.h"

namespace aql {
namespace exec {

namespace {

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Lazily constructed, never destroyed: workers may still be parked in the
// pool at process exit, and tearing the pool down from a static destructor
// would race with other static teardown.
ThreadPool& Pool() {
  static ThreadPool* pool = [] {
    // Size for the largest plausible AQL_EXEC_THREADS at first use; the
    // per-call thread count only decides how many helper tasks we submit.
    int n = std::max(HardwareThreads(),
                     static_cast<int>(EnvU64("AQL_EXEC_THREADS", 0)));
    return new ThreadPool(static_cast<size_t>(std::max(n - 1, 1)),
                          /*max_queue=*/256, "exec.pool");
  }();
  return *pool;
}

// Shared state of one ParallelFor. Chunks are claimed from an atomic
// cursor, so the caller and however many helpers the pool granted
// cooperate without static assignment. Held by shared_ptr: a helper task
// that is still queued when the caller finishes every chunk must find
// valid (spent) state when it finally runs, not a dead stack frame.
struct ForState {
  uint64_t total = 0;
  uint64_t chunk = 0;
  uint64_t num_chunks = 0;
  const std::function<Status(uint64_t, uint64_t)>* fn = nullptr;
  std::atomic<uint64_t> cursor{0};
  std::atomic<bool> failed{false};

  Mutex mu{"exec.par.state", lock_rank::kExecForState};
  CondVar done_cv;
  // Per chunk, written once by its claimant (disjoint indices, but kept
  // under mu so the completion protocol is one static story).
  std::vector<Status> status AQL_GUARDED_BY(mu);
  uint64_t chunks_done AQL_GUARDED_BY(mu) = 0;
};

// Error determinism: the cursor hands out chunks in ascending order, so
// when a chunk sees `failed` set, the failing chunk has a *lower* index —
// skipping can only suppress errors at higher indices than one already
// recorded. The lowest-index failing chunk therefore always executes and
// records its status, and (since every earlier chunk succeeded and fn
// stops at its first error) the first non-OK status in chunk order is
// exactly the error a sequential left-to-right loop would have produced.
void RunChunks(ForState& st) {
  for (;;) {
    uint64_t c = st.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= st.num_chunks) return;
    Status s = Status::OK();
    if (!st.failed.load(std::memory_order_relaxed)) {
      uint64_t begin = c * st.chunk;
      uint64_t end = std::min(st.total, begin + st.chunk);
      s = (*st.fn)(begin, end);
      if (!s.ok()) st.failed.store(true, std::memory_order_relaxed);
    }
    GlobalExecStats().par_chunks.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(&st.mu);
      st.status[c] = std::move(s);
      ++st.chunks_done;
    }
    st.done_cv.NotifyAll();
  }
}

}  // namespace

int ExecThreads() {
  uint64_t n = EnvU64("AQL_EXEC_THREADS", 0);
  if (n > 0) return static_cast<int>(std::min<uint64_t>(n, 256));
  return HardwareThreads();
}

uint64_t ParThreshold() {
  uint64_t t = EnvU64("AQL_EXEC_PAR_THRESHOLD", 4096);
  return std::max<uint64_t>(t, 1);
}

bool ShouldParallelize(uint64_t total) {
  return ExecThreads() > 1 && total >= ParThreshold();
}

Status ParallelFor(uint64_t total,
                   const std::function<Status(uint64_t, uint64_t)>& fn) {
  if (total == 0) return Status::OK();
  int threads = ExecThreads();
  if (threads <= 1 || total < ParThreshold()) return fn(0, total);

  obs::Span span("exec", "exec.parallel_for");
  span.AddCount("elems", total);

  auto st = std::make_shared<ForState>();
  st->total = total;
  // Oversplit relative to the thread count so stragglers rebalance, but
  // keep chunks big enough that the claim traffic stays negligible.
  uint64_t target_chunks = static_cast<uint64_t>(threads) * 4;
  st->chunk = std::max<uint64_t>(1, (total + target_chunks - 1) / target_chunks);
  st->num_chunks = (total + st->chunk - 1) / st->chunk;
  st->fn = &fn;
  {
    MutexLock lock(&st->mu);
    st->status.assign(st->num_chunks, Status::OK());
  }

  GlobalExecStats().par_tasks.fetch_add(1, std::memory_order_relaxed);

  // Helper tasks re-install the caller's CancelToken so CheckInterrupt()
  // inside fn observes the same deadline/cancellation as the caller. A
  // task that only starts after the loop is drained claims no chunk and
  // never dereferences `token` or `fn`, so their lifetimes end safely
  // with this call.
  const CancelToken* token = CurrentCancelToken();
  int helpers = 0;
  for (int i = 0; i < threads - 1; ++i) {
    bool ok = Pool().TrySubmit([st, token] {
      ExecScope scope(token);
      RunChunks(*st);
    });
    if (!ok) break;  // full pool: the caller just runs more chunks itself
    ++helpers;
  }

  RunChunks(*st);  // caller participates; returns once the cursor is spent

  // Helpers may still be finishing chunks they claimed before the caller
  // drained the cursor; fn and the output buffers live in our caller, so
  // wait for every chunk to be accounted for. The first non-OK status (in
  // chunk order) is read under the same lock that sequenced the writes.
  Status result = Status::OK();
  {
    MutexLock lock(&st->mu);
    while (st->chunks_done != st->num_chunks) st->done_cv.Wait(&st->mu);
    for (Status& s : st->status) {
      if (!s.ok()) {
        result = std::move(s);
        break;
      }
    }
  }

  span.AddCount("chunks", st->num_chunks);
  span.AddCount("helpers", static_cast<uint64_t>(helpers));
  return result;
}

ExecStats& GlobalExecStats() {
  static ExecStats* stats = new ExecStats();
  return *stats;
}

}  // namespace exec
}  // namespace aql
