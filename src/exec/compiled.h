// Compiled execution backend (the "code generator" of §3's efficiency
// discussion).
//
// The tree-walking evaluator (src/eval) resolves every variable by name
// against a linked-list environment — simple, but each lookup is a string
// comparison chain. This backend compiles a core-calculus expression once
// into an executable graph in which
//
//   - every variable is a FRAME SLOT index assigned at compile time,
//   - every lambda is compiled to a capture list (the slots of its free
//     variables) plus a code pointer; applying it copies the captured
//     values into a fresh frame,
//   - loop constructs (big union, sum, tabulation) push their binder
//     slots once and overwrite them per iteration,
//   - external primitives are resolved to their implementations at
//     compile time, not per evaluation.
//
// Semantics are identical to the evaluator (same bottom propagation, same
// canonical sets); exec_test cross-checks the two on random programs, and
// bench_exec measures the speedup.
//
// Like the evaluator, loop constructs poll base/cancel.h's CheckInterrupt(),
// so a Program::Run under an ExecScope respects deadlines/cancellation.
// A compiled Program is immutable and safe to Run() from many threads
// concurrently (each Run builds its own Frame) — the plan cache
// (src/service) shares one Program across all workers.

#ifndef AQL_EXEC_COMPILED_H_
#define AQL_EXEC_COMPILED_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/affine.h"
#include "base/result.h"
#include "core/expr.h"
#include "object/value.h"

namespace aql {
namespace exec {

// Mutable register file for one activation.
struct Frame {
  std::vector<Value> slots;
};

// A compiled expression node.
class Node {
 public:
  virtual ~Node() = default;
  virtual Result<Value> Run(Frame* frame) const = 0;
};

using NodePtr = std::unique_ptr<const Node>;

class Program {
 public:
  Program(NodePtr root, size_t frame_size, analysis::Proof proof = {})
      : root_(std::move(root)),
        frame_size_(frame_size),
        proof_(std::move(proof)) {}

  // Executes the program; `args` (if any) pre-populate the first slots —
  // used when compiling open expressions whose free variables are
  // supplied by the host.
  Result<Value> Run(std::vector<Value> args = {}) const;

  size_t frame_size() const { return frame_size_; }

  // The proof certificate accumulated at compile time: which affine /
  // absint facts justified which plan optimizations (pushdowns, pruned
  // aggregates, unchecked kernels). Surfaced by REPL `:explain` and the
  // `?trace=1` profile.
  const analysis::Proof& proof() const { return proof_; }

 private:
  NodePtr root_;
  size_t frame_size_;
  analysis::Proof proof_;
};

// Resolves a registered external primitive name, or nullptr.
using ExternalResolver =
    std::function<std::shared_ptr<const FuncValue>(const std::string&)>;

// Compiles a core expression. Free variables listed in `params` become
// argument slots (in order); any other free variable is an error.
Result<Program> Compile(const ExprPtr& e, const ExternalResolver& externals,
                        const std::vector<std::string>& params = {});

}  // namespace exec
}  // namespace aql

#endif  // AQL_EXEC_COMPILED_H_
