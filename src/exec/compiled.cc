#include "exec/compiled.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>

#include "analysis/affine.h"
#include "base/cancel.h"
#include "base/env.h"
#include "base/strings.h"
#include "base/sync.h"
#include "core/expr_ops.h"
#include "exec/kernel.h"
#include "exec/parallel.h"
#include "obs/trace.h"

namespace aql {
namespace exec {

namespace {

// Upper bounds on eagerly allocated result buffers. Tabulations larger
// than these run the legacy incremental loop (clamped reserve +
// push_back), which stays cancellable long before the allocation would
// hurt; the limits exist so a huge-but-under-the-cap bound does not turn
// into one giant up-front allocation.
constexpr uint64_t kUnboxedAllocLimit = uint64_t{1} << 26;  // 8B scalars
constexpr uint64_t kBoxedAllocLimit = uint64_t{1} << 24;    // boxed Values

// Multi-index helpers for row-major chunked loops.
std::vector<uint64_t> DecodeIndex(uint64_t flat, const std::vector<uint64_t>& dims) {
  std::vector<uint64_t> idx(dims.size());
  for (size_t j = dims.size(); j-- > 0;) {
    idx[j] = flat % dims[j];
    flat /= dims[j];
  }
  return idx;
}

void IncrementIndex(std::vector<uint64_t>& idx, const std::vector<uint64_t>& dims) {
  for (size_t j = dims.size(); j-- > 0;) {
    if (++idx[j] < dims[j]) return;
    idx[j] = 0;
  }
}

// ---------- runtime nodes ----------

class ConstNode : public Node {
 public:
  explicit ConstNode(Value v) : value_(std::move(v)) {}
  Result<Value> Run(Frame*) const override { return value_; }

 private:
  Value value_;
};

class SlotNode : public Node {
 public:
  explicit SlotNode(size_t slot) : slot_(slot) {}
  Result<Value> Run(Frame* f) const override { return f->slots[slot_]; }

 private:
  size_t slot_;
};

// Closure: captured values + code compiled against a fresh frame laid out
// as [captures..., param, scratch...].
class CompiledClosure : public FuncValue {
 public:
  CompiledClosure(std::vector<Value> captured, const Node* body, size_t frame_size)
      : captured_(std::move(captured)), body_(body), frame_size_(frame_size) {}

  Result<Value> Apply(const Value& arg) const override {
    Frame frame;
    frame.slots.resize(frame_size_);
    std::copy(captured_.begin(), captured_.end(), frame.slots.begin());
    frame.slots[captured_.size()] = arg;
    return body_->Run(&frame);
  }

  std::string name() const override { return "<compiled fn>"; }

 private:
  std::vector<Value> captured_;
  const Node* body_;
  size_t frame_size_;
};

// Creates a closure, capturing the listed slots of the current frame.
// Owns the compiled body (shared among all closures it creates).
class LambdaNode : public Node {
 public:
  LambdaNode(std::vector<size_t> capture_slots, NodePtr body, size_t frame_size)
      : capture_slots_(std::move(capture_slots)),
        body_(std::move(body)),
        frame_size_(frame_size) {}

  Result<Value> Run(Frame* f) const override {
    std::vector<Value> captured;
    captured.reserve(capture_slots_.size());
    for (size_t s : capture_slots_) captured.push_back(f->slots[s]);
    return Value::MakeFunc(std::make_shared<CompiledClosure>(std::move(captured),
                                                             body_.get(), frame_size_));
  }

 private:
  std::vector<size_t> capture_slots_;
  NodePtr body_;
  size_t frame_size_;
};

class ApplyNode : public Node {
 public:
  ApplyNode(NodePtr fn, NodePtr arg) : fn_(std::move(fn)), arg_(std::move(arg)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value fn, fn_->Run(f));
    if (fn.is_bottom()) return Value::Bottom();
    if (fn.kind() != ValueKind::kFunc) {
      return Status::EvalError("applying a non-function value");
    }
    AQL_ASSIGN_OR_RETURN(Value arg, arg_->Run(f));
    if (arg.is_bottom()) return Value::Bottom();
    return fn.func().Apply(arg);
  }

 private:
  NodePtr fn_, arg_;
};

class TupleNode : public Node {
 public:
  explicit TupleNode(std::vector<NodePtr> fields) : fields_(std::move(fields)) {}
  Result<Value> Run(Frame* f) const override {
    std::vector<Value> vals;
    vals.reserve(fields_.size());
    for (const NodePtr& n : fields_) {
      AQL_ASSIGN_OR_RETURN(Value v, n->Run(f));
      if (v.is_bottom()) return Value::Bottom();
      vals.push_back(std::move(v));
    }
    return Value::MakeTuple(std::move(vals));
  }

 private:
  std::vector<NodePtr> fields_;
};

class ProjNode : public Node {
 public:
  ProjNode(size_t index, size_t arity, NodePtr inner)
      : index_(index), arity_(arity), inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    if (v.kind() != ValueKind::kTuple || v.tuple_fields().size() != arity_) {
      return Status::EvalError("projection arity mismatch");
    }
    return v.tuple_fields()[index_ - 1];
  }

 private:
  size_t index_, arity_;
  NodePtr inner_;
};

class SingletonNode : public Node {
 public:
  explicit SingletonNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    return Value::MakeSetCanonical({std::move(v)});
  }

 private:
  NodePtr inner_;
};

class UnionNode : public Node {
 public:
  UnionNode(NodePtr a, NodePtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    return Value::SetUnion(a, b);
  }

 private:
  NodePtr a_, b_;
};

// Parallel body evaluation for the set-driven loops (big union, sum):
// every source element's body value lands in parts[i], evaluated by
// chunks over worker-private Frame copies. The fold over the parts stays
// sequential in the caller, which is what keeps results bit-identical to
// the single-threaded loop (left-to-right real addition, first ⊥/error
// in index order).
//
// `terminal` is the lowest index whose body came out ⊥ or as an error;
// parts at indices beyond it may be unset (chunks stop early), so callers
// must stop their fold when they reach it. A non-OK return is an
// interrupt (cancellation/deadline) only.
struct LoopParts {
  std::vector<Value> parts;
  uint64_t terminal = UINT64_MAX;
  bool terminal_is_bottom = false;
  Status terminal_status;
};

Result<LoopParts> EvalBodyParallel(const Frame& f, size_t binder_slot, const Node* body,
                                   const std::vector<Value>& xs) {
  LoopParts lp;
  lp.parts.assign(xs.size(), Value());
  std::atomic<uint64_t> terminal{UINT64_MAX};
  Mutex mu("exec.par.terminal", lock_rank::kExecTerminal);
  bool terminal_bottom = false;
  Status terminal_status;
  Status ps = ParallelFor(xs.size(), [&](uint64_t b, uint64_t e) -> Status {
    Frame local = f;  // private register file per chunk
    for (uint64_t i = b; i < e; ++i) {
      if (((i - b) & 0x3FF) == 0) {
        AQL_RETURN_IF_ERROR(CheckInterrupt());
        if (terminal.load(std::memory_order_relaxed) < i) return Status::OK();
      }
      local.slots[binder_slot] = xs[i];
      Result<Value> r = body->Run(&local);
      if (!r.ok() || r.value().is_bottom()) {
        MutexLock lock(&mu);
        if (i < terminal.load(std::memory_order_relaxed)) {
          terminal.store(i, std::memory_order_relaxed);
          terminal_bottom = r.ok();
          terminal_status = r.ok() ? Status::OK() : r.status();
        }
        return Status::OK();
      }
      lp.parts[i] = std::move(r).value();
    }
    return Status::OK();
  });
  AQL_RETURN_IF_ERROR(ps);
  lp.terminal = terminal.load(std::memory_order_relaxed);
  lp.terminal_is_bottom = terminal_bottom;
  lp.terminal_status = std::move(terminal_status);
  return lp;
}

class BigUnionNode : public Node {
 public:
  BigUnionNode(size_t binder_slot, NodePtr body, NodePtr source)
      : binder_slot_(binder_slot), body_(std::move(body)), source_(std::move(source)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    const std::vector<Value>& xs = src.set().elems;
    std::vector<Value> acc;
    if (ShouldParallelize(xs.size())) {
      AQL_ASSIGN_OR_RETURN(LoopParts lp,
                           EvalBodyParallel(*f, binder_slot_, body_.get(), xs));
      for (uint64_t i = 0; i < xs.size(); ++i) {
        if (i == lp.terminal) {
          if (lp.terminal_is_bottom) return Value::Bottom();
          return lp.terminal_status;
        }
        const auto& elems = lp.parts[i].set().elems;
        acc.insert(acc.end(), elems.begin(), elems.end());
      }
      return Value::MakeSet(std::move(acc));
    }
    for (const Value& x : xs) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      f->slots[binder_slot_] = x;
      AQL_ASSIGN_OR_RETURN(Value part, body_->Run(f));
      if (part.is_bottom()) return Value::Bottom();
      const auto& elems = part.set().elems;
      acc.insert(acc.end(), elems.begin(), elems.end());
    }
    return Value::MakeSet(std::move(acc));
  }

 private:
  size_t binder_slot_;
  NodePtr body_, source_;
};

class GetNode : public Node {
 public:
  explicit GetNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    if (v.set().elems.size() != 1) return Value::Bottom();
    return v.set().elems[0];
  }

 private:
  NodePtr inner_;
};

class IfNode : public Node {
 public:
  IfNode(NodePtr cond, NodePtr then_n, NodePtr else_n)
      : cond_(std::move(cond)), then_(std::move(then_n)), else_(std::move(else_n)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value c, cond_->Run(f));
    if (c.is_bottom()) return Value::Bottom();
    return (c.bool_value() ? then_ : else_)->Run(f);
  }

 private:
  NodePtr cond_, then_, else_;
};

class CmpNode : public Node {
 public:
  CmpNode(CmpOp op, NodePtr a, NodePtr b) : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    int c = Value::Compare(a, b);
    switch (op_) {
      case CmpOp::kEq: return Value::Bool(c == 0);
      case CmpOp::kNe: return Value::Bool(c != 0);
      case CmpOp::kLt: return Value::Bool(c < 0);
      case CmpOp::kLe: return Value::Bool(c <= 0);
      case CmpOp::kGt: return Value::Bool(c > 0);
      case CmpOp::kGe: return Value::Bool(c >= 0);
    }
    return Status::Internal("bad cmp op");
  }

 private:
  CmpOp op_;
  NodePtr a_, b_;
};

class ArithNode : public Node {
 public:
  ArithNode(ArithOp op, NodePtr a, NodePtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    if (a.kind() == ValueKind::kNat && b.kind() == ValueKind::kNat) {
      uint64_t x = a.nat_value(), y = b.nat_value();
      switch (op_) {
        case ArithOp::kAdd: return Value::Nat(x + y);
        case ArithOp::kMonus: return Value::Nat(x >= y ? x - y : 0);
        case ArithOp::kMul: return Value::Nat(x * y);
        case ArithOp::kDiv: return y == 0 ? Value::Bottom() : Value::Nat(x / y);
        case ArithOp::kMod: return y == 0 ? Value::Bottom() : Value::Nat(x % y);
      }
    }
    if (a.kind() == ValueKind::kReal && b.kind() == ValueKind::kReal) {
      double x = a.real_value(), y = b.real_value();
      switch (op_) {
        case ArithOp::kAdd: return Value::Real(x + y);
        case ArithOp::kMonus: return Value::Real(x - y);
        case ArithOp::kMul: return Value::Real(x * y);
        case ArithOp::kDiv: return Value::Real(x / y);
        case ArithOp::kMod: return Value::Real(std::fmod(x, y));
      }
    }
    return Status::EvalError("arithmetic on non-numeric values");
  }

 private:
  ArithOp op_;
  NodePtr a_, b_;
};

class GenNode : public Node {
 public:
  explicit GenNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value n, inner_->Run(f));
    if (n.is_bottom()) return Value::Bottom();
    if (n.kind() != ValueKind::kNat) return Status::EvalError("gen of non-nat");
    std::vector<Value> elems;
    // Clamped so a huge bound reaches the interrupt checks below rather
    // than dying up front in one giant allocation.
    elems.reserve(std::min<uint64_t>(n.nat_value(), uint64_t{1} << 20));
    for (uint64_t i = 0; i < n.nat_value(); ++i) {
      if ((i & 0xFFF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
      elems.push_back(Value::Nat(i));
    }
    return Value::MakeSetCanonical(std::move(elems));
  }

 private:
  NodePtr inner_;
};

// Compile-time aggregate pruning: a sum nest of the shape
//   sum i1 < e1. ... sum ik < ek. S[i1+lo1, ..., ik+lok]
// over a tiled-array literal reads row-by-row instead of materializing,
// and skips the read entirely for any leading row a zone map proves
// constant (LazyRealSlab::ConstantRowRun) — the fold is replayed on the
// constant with the exact same left-to-right addition order, so results
// stay bit-identical to the generic nested SumNode path.
struct SumPushdown {
  Value base;                    // the tiled-array literal (keeps the slab alive)
  std::vector<uint64_t> lower;   // per-dimension constant offsets
  std::vector<uint64_t> extent;  // per-binder trip counts e1..ek
  uint64_t row_volume = 1;       // product(extent[1..]) — one leading row
};

// Matches the whole nest rooted at `e`: each level must be a sum over
// `gen(const)`, binders must be distinct, and the innermost body must be a
// subscript of a tiled literal whose index parts are unit-stride affine in
// the nest binders (offset + binder). The compile-time fits check makes
// every iteration provably in range, so the body is total and the pruned
// fold needs no per-point ⊥ handling. Records an aggregate-prune proof
// certificate naming the per-dimension range facts.
std::unique_ptr<const SumPushdown> TryMatchSumPushdown(const ExprPtr& e,
                                                       analysis::Proof* proof) {
  auto nat_of = [](const ExprPtr& x, uint64_t* out) {
    if (x->is(ExprKind::kNatConst)) {
      *out = x->nat_const();
      return true;
    }
    if (x->is(ExprKind::kLiteral) && x->literal().kind() == ValueKind::kNat) {
      *out = x->literal().nat_value();
      return true;
    }
    return false;
  };
  std::vector<std::string> binders;
  std::vector<uint64_t> extents;
  ExprPtr cur = e;
  while (cur->is(ExprKind::kSum)) {
    const ExprPtr& src = cur->child(1);
    uint64_t n = 0;
    if (!src->is(ExprKind::kGen) || !nat_of(src->child(0), &n)) return nullptr;
    binders.push_back(cur->binder());
    extents.push_back(n);
    cur = cur->child(0);
  }
  const size_t k = binders.size();
  if (k == 0 || !cur->is(ExprKind::kSubscript)) return nullptr;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (binders[i] == binders[j]) return nullptr;  // shadowing: ambiguous
    }
  }
  const ExprPtr& base = cur->child(0);
  if (!base->is(ExprKind::kLiteral)) return nullptr;
  const Value& v = base->literal();
  if (v.kind() != ValueKind::kArray ||
      v.array().payload != ArrayRep::Payload::kTiled) {
    return nullptr;
  }
  if (v.array().dims.size() != k) return nullptr;
  const ExprPtr& idx = cur->child(1);
  std::vector<ExprPtr> parts(k);
  if (k == 1) {
    parts[0] = idx;
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
  } else {
    return nullptr;
  }
  auto pd = std::make_unique<SumPushdown>();
  pd->base = v;
  pd->lower.resize(k);
  pd->extent = extents;
  for (size_t j = 0; j < k; ++j) {
    std::optional<analysis::Affine1D> m = analysis::MatchAffine1D(parts[j]);
    if (!m || m->binder != binders[j] || m->stride != 1) return nullptr;
    pd->lower[j] = m->offset;
    // Every touched coordinate must be in range: lo + (e-1) < dim.
    const uint64_t dim = v.array().dims[j];
    if (extents[j] > dim || pd->lower[j] > dim - extents[j]) return nullptr;
  }
  for (size_t j = 1; j < k; ++j) {
    if (extents[j] != 0 && pd->row_volume > kUnboxedAllocLimit / extents[j]) {
      return nullptr;  // a single row would blow the buffer budget
    }
    pd->row_volume *= extents[j];
  }
  if (proof != nullptr) {
    std::vector<std::string> facts;
    for (size_t j = 0; j < k; ++j) {
      facts.push_back(StrCat("dim ", j, ": ", binders[j], " + ", pd->lower[j],
                             " sweeps [", pd->lower[j], ", ",
                             pd->lower[j] + (extents[j] == 0 ? 0 : extents[j] - 1),
                             "] inside extent ", v.array().dims[j]));
    }
    proof->Add("aggregate-prune",
               StrCat("sum over ", analysis::RenderArrayExpr(base)),
               std::move(facts));
  }
  return pd;
}

class SumNode : public Node {
 public:
  SumNode(size_t binder_slot, NodePtr body, NodePtr source,
          std::unique_ptr<const SumPushdown> pushdown = nullptr)
      : binder_slot_(binder_slot),
        body_(std::move(body)),
        source_(std::move(source)),
        pushdown_(std::move(pushdown)) {}
  Result<Value> Run(Frame* f) const override {
    if (pushdown_ != nullptr && EnvU64("AQL_EXEC_PUSHDOWN", 1) != 0) {
      return RunPruned();
    }
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    const std::vector<Value>& xs = src.set().elems;
    uint64_t nat_total = 0;
    double real_total = 0;
    bool is_real = false, first = true;
    if (ShouldParallelize(xs.size())) {
      // Bodies evaluate in parallel; the fold below runs left-to-right on
      // one thread so real addition rounds exactly as it does sequentially.
      AQL_ASSIGN_OR_RETURN(LoopParts lp,
                           EvalBodyParallel(*f, binder_slot_, body_.get(), xs));
      for (uint64_t i = 0; i < xs.size(); ++i) {
        if (i == lp.terminal) {
          if (lp.terminal_is_bottom) return Value::Bottom();
          return lp.terminal_status;
        }
        AQL_RETURN_IF_ERROR(
            Accumulate(lp.parts[i], &nat_total, &real_total, &is_real, &first));
      }
      if (first) return Value::Nat(0);
      return is_real ? Value::Real(real_total) : Value::Nat(nat_total);
    }
    for (const Value& x : xs) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      f->slots[binder_slot_] = x;
      AQL_ASSIGN_OR_RETURN(Value part, body_->Run(f));
      if (part.is_bottom()) return Value::Bottom();
      AQL_RETURN_IF_ERROR(Accumulate(part, &nat_total, &real_total, &is_real, &first));
    }
    if (first) return Value::Nat(0);
    return is_real ? Value::Real(real_total) : Value::Nat(nat_total);
  }

 private:
  static Status Accumulate(const Value& part, uint64_t* nat_total, double* real_total,
                           bool* is_real, bool* first) {
    if (*first) {
      *is_real = part.kind() == ValueKind::kReal;
      *first = false;
    }
    if (*is_real) {
      if (part.kind() != ValueKind::kReal) {
        return Status::EvalError("Sum body mixed nat and real");
      }
      *real_total += part.real_value();
    } else {
      if (part.kind() != ValueKind::kNat) {
        return Status::EvalError("Sum body must be nat or real");
      }
      *nat_total += part.nat_value();
    }
    return Status::OK();
  }

  // The pruned fold: row-by-row over the leading dimension, consulting the
  // slab's zone maps first. Mirrors the generic nest exactly — each leading
  // row contributes its own inner left-to-right fold, and rows accumulate
  // left-to-right — so a run of constant rows adds the SAME inner sub-sum
  // once per row instead of re-reading the tile.
  Result<Value> RunPruned() const {
    const SumPushdown& pd = *pushdown_;
    for (uint64_t ext : pd.extent) {
      // An empty trip count anywhere makes every (nested) fold start and
      // stay at the nat identity, exactly like the generic path.
      if (ext == 0) return Value::Nat(0);
    }
    const LazyRealSlab& slab = *pd.base.array().tiled;
    const size_t k = pd.extent.size();
    std::vector<double> row(pd.row_volume);
    std::vector<uint64_t> start(k), count(k);
    for (size_t j = 1; j < k; ++j) {
      start[j] = pd.lower[j];
      count[j] = pd.extent[j];
    }
    double total = 0;
    for (uint64_t i = 0; i < pd.extent[0];) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      const uint64_t r = pd.lower[0] + i;
      double c = 0;
      const uint64_t run = slab.ConstantRowRun(r, &c);
      if (run > 0) {
        const double sub = FoldConst(c, 1);
        const uint64_t cover = std::min<uint64_t>(run, pd.extent[0] - i);
        for (uint64_t t = 0; t < cover; ++t) total += sub;
        i += cover;
        continue;
      }
      start[0] = r;
      count[0] = 1;
      AQL_RETURN_IF_ERROR(slab.ReadInto(start, count, row.data()));
      size_t pos = 0;
      total += FoldRow(row.data(), &pos, 1);
      ++i;
    }
    return Value::Real(total);
  }

  // Inner fold of one leading row, replicating the nested SumNode
  // addition order (level j sums extent[j] sub-folds left-to-right).
  double FoldRow(const double* row, size_t* pos, size_t level) const {
    if (level == pushdown_->extent.size()) return row[(*pos)++];
    double s = 0;
    for (uint64_t t = 0; t < pushdown_->extent[level]; ++t) {
      s += FoldRow(row, pos, level + 1);
    }
    return s;
  }
  double FoldConst(double c, size_t level) const {
    if (level == pushdown_->extent.size()) return c;
    double s = 0;
    for (uint64_t t = 0; t < pushdown_->extent[level]; ++t) {
      s += FoldConst(c, level + 1);
    }
    return s;
  }

  size_t binder_slot_;
  NodePtr body_, source_;
  std::unique_ptr<const SumPushdown> pushdown_;
};

// Compile-time subslab pushdown: a tabulation of the shape
//   [[ S[i1+lo1, ..., ik+lok] | i1 < e1, ..., ik < ek ]]
// where S is a tiled-array literal (a resolved out-of-core readval) turns
// into ONE bulk range read against the tile store — the optimizer's
// subscript-range constraints pushed down into TileStore instead of
// materializing the whole variable and gathering point-wise.
struct TabPushdown {
  Value base;                    // the tiled-array literal (keeps the slab alive)
  std::vector<uint64_t> lower;   // per-dimension constant offsets
  std::vector<uint64_t> stride;  // per-dimension strides (>= 1)
};

// Matches `part` as offset + stride·binder in any commutation (the binder
// alone, binder+c, c+binder, s*binder, and the add-of-mul forms), via the
// affine single-binder matcher (analysis/affine.h). A different binder — a
// transposed access — fails. The unit-stride subset mirrors the result
// cache's subslab matcher (service/result_cache.cc).
bool MatchPushdownIndexPart(const ExprPtr& part, const std::string& binder,
                            uint64_t* offset, uint64_t* stride) {
  std::optional<analysis::Affine1D> m = analysis::MatchAffine1D(part);
  if (!m || m->binder != binder || m->stride == 0) return false;
  *offset = m->offset;
  *stride = m->stride;
  return true;
}

// Detects the pushdown-eligible tabulation shape at compile time. The base
// must be a LITERAL tiled array (how a resolved out-of-core readval
// appears in a plan) so the region is known to come straight from storage;
// binder names must be distinct so "part j uses binder j" is unambiguous.
std::unique_ptr<const TabPushdown> TryMatchPushdown(const ExprPtr& e,
                                                    analysis::Proof* proof) {
  const ExprPtr& body = e->tab_body();
  if (!body->is(ExprKind::kSubscript)) return nullptr;
  const ExprPtr& base = body->child(0);
  if (!base->is(ExprKind::kLiteral)) return nullptr;
  const Value& v = base->literal();
  if (v.kind() != ValueKind::kArray ||
      v.array().payload != ArrayRep::Payload::kTiled) {
    return nullptr;
  }
  const size_t k = e->tab_rank();
  if (v.array().dims.size() != k) return nullptr;
  const std::vector<std::string>& binders = e->binders();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (binders[i] == binders[j]) return nullptr;  // shadowing: ambiguous
    }
  }
  const ExprPtr& idx = body->child(1);
  std::vector<ExprPtr> parts(k);
  if (k == 1) {
    parts[0] = idx;
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
  } else {
    return nullptr;
  }
  auto pd = std::make_unique<TabPushdown>();
  pd->base = v;
  pd->lower.resize(k);
  pd->stride.resize(k);
  for (size_t j = 0; j < k; ++j) {
    if (!MatchPushdownIndexPart(parts[j], binders[j], &pd->lower[j],
                                &pd->stride[j])) {
      return nullptr;
    }
  }
  if (proof != nullptr) {
    bool unit = true;
    std::vector<std::string> facts;
    for (size_t j = 0; j < k; ++j) {
      if (pd->stride[j] != 1) unit = false;
      facts.push_back(StrCat("dim ", j, ": index = ", pd->lower[j], " + ",
                             pd->stride[j], "*", binders[j], " (affine in ",
                             binders[j], ")"));
    }
    proof->Add(unit ? "subslab-pushdown" : "strided-pushdown",
               StrCat("tab over ", analysis::RenderArrayExpr(base)),
               std::move(facts));
  }
  return pd;
}

class TabNode : public Node {
 public:
  TabNode(std::vector<size_t> binder_slots, NodePtr body, std::vector<NodePtr> bounds,
          std::unique_ptr<const KernelSpec> kernel_spec,
          std::unique_ptr<const TabPushdown> pushdown)
      : binder_slots_(std::move(binder_slots)),
        body_(std::move(body)),
        bounds_(std::move(bounds)),
        kernel_spec_(std::move(kernel_spec)),
        pushdown_(std::move(pushdown)) {}

  Result<Value> Run(Frame* f) const override {
    size_t k = binder_slots_.size();
    std::vector<uint64_t> dims(k);
    for (size_t j = 0; j < k; ++j) {
      AQL_ASSIGN_OR_RETURN(Value b, bounds_[j]->Run(f));
      if (b.is_bottom()) return Value::Bottom();
      if (b.kind() != ValueKind::kNat) {
        return Status::EvalError("tabulation bound is not a nat");
      }
      dims[j] = b.nat_value();
    }
    AQL_ASSIGN_OR_RETURN(uint64_t total, CheckedVolume(dims));
    if (total == 0) {
      auto arr = Value::MakeArray(std::move(dims), {});
      if (!arr.ok()) return Status::Internal(arr.status().message());
      return std::move(arr).value();
    }

    // Subslab pushdown: one bulk tile-store range read replaces the whole
    // gather loop. Only when the requested region fits inside the base —
    // an out-of-range region must fall through so each out-of-bounds
    // point keeps its ⊥ hole (bit-identical to the generic path; in-range
    // elements are decoded by the very same tile reads either way).
    if (pushdown_ != nullptr && total <= kUnboxedAllocLimit &&
        EnvU64("AQL_EXEC_PUSHDOWN", 1) != 0) {
      const ArrayRep& base = pushdown_->base.array();
      bool fits = base.dims.size() == k;
      bool unit = true;
      for (size_t j = 0; fits && j < k; ++j) {
        // Every touched coordinate lower+stride*(dims[j]-1) must be in
        // range (dims[j] >= 1 here: total > 0), without overflowing.
        const uint64_t s = pushdown_->stride[j];
        if (s != 1) unit = false;
        fits = s >= 1 && dims[j] - 1 <= UINT64_MAX / s;
        if (fits) {
          const uint64_t span = s * (dims[j] - 1);
          fits = span <= base.dims[j] - 1 &&
                 pushdown_->lower[j] <= base.dims[j] - 1 - span;
        }
      }
      if (fits && unit) {
        std::vector<double> buf(total);
        // An I/O failure here is the query's error: the generic path would
        // hit the same failing read element-wise.
        AQL_RETURN_IF_ERROR(base.tiled->ReadInto(pushdown_->lower, dims, buf.data()));
        auto arr = Value::MakeRealArray(dims, std::move(buf));
        if (!arr.ok()) return Status::Internal(arr.status().message());
        GlobalExecStats().tab_pushdowns.fetch_add(1, std::memory_order_relaxed);
        GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
        return std::move(arr).value();
      }
      if (fits) {
        AQL_ASSIGN_OR_RETURN(Value arr, RunStridedPushdown(dims, total));
        GlobalExecStats().tab_pushdowns.fetch_add(1, std::memory_order_relaxed);
        GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
        return arr;
      }
    }

    // Fused kernel: scalar body over an unboxed result buffer. A ⊥ at any
    // point aborts the kernel and re-runs generically (the partial array
    // keeps per-point ⊥ holes, which the unboxed payloads cannot hold).
    // When instantiation discharges every ⊥ source statically, the loop
    // drops the per-cell checks entirely (re-read the kill switch per run
    // so tests and benchmarks can toggle it in-process).
    if (kernel_spec_ != nullptr && total <= kUnboxedAllocLimit) {
      if (std::unique_ptr<Kernel> kernel = Kernel::Instantiate(*kernel_spec_, *f)) {
        if (kernel->unchecked() && EnvU64("AQL_EXEC_UNCHECKED", 1) != 0) {
          AQL_ASSIGN_OR_RETURN(Value arr, RunKernelUnchecked(*kernel, dims, total));
          GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
          GlobalExecStats().unchecked_kernels.fetch_add(1, std::memory_order_relaxed);
          return arr;
        }
        bool bottom_seen = false;
        AQL_ASSIGN_OR_RETURN(Value arr, RunKernel(*kernel, dims, total, &bottom_seen));
        if (!bottom_seen) {
          GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
          return arr;
        }
      }
    }

    // Generic parallel: chunked body interpretation over private frames,
    // elements written straight into their row-major slots.
    if (ShouldParallelize(total) && total <= kBoxedAllocLimit) {
      std::vector<Value> elems(total);
      Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
        Frame local = *f;
        std::vector<uint64_t> index = DecodeIndex(begin, dims);
        for (uint64_t flat = begin; flat < end; ++flat) {
          if (((flat - begin) & 0x3FF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
          for (size_t j = 0; j < k; ++j) {
            local.slots[binder_slots_[j]] = Value::Nat(index[j]);
          }
          AQL_ASSIGN_OR_RETURN(Value v, body_->Run(&local));
          elems[flat] = std::move(v);  // bottom stays per-point (partial arrays)
          IncrementIndex(index, dims);
        }
        return Status::OK();
      });
      AQL_RETURN_IF_ERROR(ps);
      return Finish(std::move(dims), std::move(elems));
    }

    // Sequential fallback; also the only path for totals beyond the eager
    // allocation limits, so oversized tabulations stay cancellable.
    std::vector<Value> elems;
    elems.reserve(std::min<uint64_t>(total, uint64_t{1} << 20));
    std::vector<uint64_t> index(k, 0);
    for (uint64_t flat = 0; flat < total; ++flat) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      for (size_t j = 0; j < k; ++j) f->slots[binder_slots_[j]] = Value::Nat(index[j]);
      AQL_ASSIGN_OR_RETURN(Value v, body_->Run(f));
      elems.push_back(std::move(v));  // bottom stays per-point (partial arrays)
      IncrementIndex(index, dims);
    }
    return Finish(std::move(dims), std::move(elems));
  }

 private:
  // Strided bulk read: one output row at a time, decimating covering
  // range reads on the last dimension. Bit-identical to the generic
  // gather (the same tile decode serves both); strides and bounds were
  // validated by the caller's fits check.
  Result<Value> RunStridedPushdown(const std::vector<uint64_t>& dims,
                                   uint64_t total) const {
    const ArrayRep& base = pushdown_->base.array();
    const LazyRealSlab& slab = *base.tiled;
    const size_t k = dims.size();
    std::vector<double> buf(total);
    const uint64_t lastn = dims[k - 1];
    const uint64_t lasts = pushdown_->stride[k - 1];
    const uint64_t rows = total / lastn;  // lastn >= 1 (total > 0)
    std::vector<uint64_t> outer(k > 1 ? k - 1 : 0, 0);
    std::vector<uint64_t> start(k), count(k, 1);
    std::vector<double> tmp;
    for (uint64_t r = 0; r < rows; ++r) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      for (size_t j = 0; j + 1 < k; ++j) {
        start[j] = pushdown_->lower[j] + pushdown_->stride[j] * outer[j];
      }
      double* out = &buf[r * lastn];
      if (lasts == 1) {
        start[k - 1] = pushdown_->lower[k - 1];
        count[k - 1] = lastn;
        AQL_RETURN_IF_ERROR(slab.ReadInto(start, count, out));
        count[k - 1] = 1;
      } else {
        // Covering reads: fetch [first, last] of each chunk contiguously
        // and keep every lasts-th element. Chunked so the scratch buffer
        // stays small for huge strides.
        constexpr uint64_t kChunk = uint64_t{1} << 16;
        uint64_t done = 0;
        while (done < lastn) {
          const uint64_t take =
              std::min<uint64_t>(lastn - done, std::max<uint64_t>(1, kChunk / lasts));
          start[k - 1] = pushdown_->lower[k - 1] + lasts * done;
          count[k - 1] = lasts * (take - 1) + 1;
          tmp.resize(count[k - 1]);
          AQL_RETURN_IF_ERROR(slab.ReadInto(start, count, tmp.data()));
          for (uint64_t t = 0; t < take; ++t) out[done + t] = tmp[t * lasts];
          done += take;
          count[k - 1] = 1;
        }
      }
      for (size_t j = k > 1 ? k - 1 : 0; j-- > 0;) {
        if (++outer[j] < dims[j]) break;
        outer[j] = 0;
      }
    }
    auto arr = Value::MakeRealArray(dims, std::move(buf));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

  static Result<Value> Finish(std::vector<uint64_t> dims, std::vector<Value> elems) {
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    if (arr.value().array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return std::move(arr).value();
  }

  template <typename T, typename EvalFn>
  static Result<Value> KernelLoop(const std::vector<uint64_t>& dims, uint64_t total,
                                  bool* bottom_seen, EvalFn&& eval,
                                  Result<Value> (*make)(std::vector<uint64_t>,
                                                        std::vector<T>)) {
    std::vector<T> buf(total);
    std::atomic<bool> bottom{false};
    Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
      std::vector<uint64_t> index = DecodeIndex(begin, dims);
      for (uint64_t flat = begin; flat < end; ++flat) {
        if (((flat - begin) & 0xFFF) == 0) {
          AQL_RETURN_IF_ERROR(CheckInterrupt());
          if (bottom.load(std::memory_order_relaxed)) return Status::OK();
        }
        if (!eval(index.data(), &buf[flat])) {
          bottom.store(true, std::memory_order_relaxed);
          return Status::OK();
        }
        IncrementIndex(index, dims);
      }
      return Status::OK();
    });
    AQL_RETURN_IF_ERROR(ps);
    if (bottom.load(std::memory_order_relaxed)) {
      *bottom_seen = true;
      return Value::Bottom();  // placeholder; caller re-runs generically
    }
    auto arr = make(dims, std::move(buf));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

  // The unchecked loop: evaluation is total, so there is no ⊥ flag to
  // poll and no per-cell branch on the eval result — just index decode,
  // body, store. Interrupt polling stays (deadlines must still bite).
  template <typename T, typename EvalFn>
  static Result<Value> KernelLoopU(const std::vector<uint64_t>& dims, uint64_t total,
                                   EvalFn&& eval,
                                   Result<Value> (*make)(std::vector<uint64_t>,
                                                         std::vector<T>)) {
    std::vector<T> buf(total);
    Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
      std::vector<uint64_t> index = DecodeIndex(begin, dims);
      for (uint64_t flat = begin; flat < end; ++flat) {
        if (((flat - begin) & 0xFFF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
        buf[flat] = eval(index.data());
        IncrementIndex(index, dims);
      }
      return Status::OK();
    });
    AQL_RETURN_IF_ERROR(ps);
    auto arr = make(dims, std::move(buf));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

  static Result<Value> RunKernelUnchecked(const Kernel& kernel,
                                          const std::vector<uint64_t>& dims,
                                          uint64_t total) {
    switch (kernel.result_type()) {
      case Kernel::Type::kNat:
        return KernelLoopU<uint64_t>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalNatUnchecked(idx); },
            &Value::MakeNatArray);
      case Kernel::Type::kReal:
        return KernelLoopU<double>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalRealUnchecked(idx); },
            &Value::MakeRealArray);
      case Kernel::Type::kBool:
        return KernelLoopU<uint8_t>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalBoolUnchecked(idx); },
            &Value::MakeBoolArray);
    }
    return Status::Internal("bad kernel result type");
  }

  static Result<Value> RunKernel(const Kernel& kernel, const std::vector<uint64_t>& dims,
                                 uint64_t total, bool* bottom_seen) {
    switch (kernel.result_type()) {
      case Kernel::Type::kNat:
        return KernelLoop<uint64_t>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, uint64_t* out) {
              return kernel.EvalNat(idx, out);
            },
            &Value::MakeNatArray);
      case Kernel::Type::kReal:
        return KernelLoop<double>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, double* out) {
              return kernel.EvalReal(idx, out);
            },
            &Value::MakeRealArray);
      case Kernel::Type::kBool:
        return KernelLoop<uint8_t>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, uint8_t* out) {
              return kernel.EvalBool(idx, out);
            },
            &Value::MakeBoolArray);
    }
    return Status::Internal("bad kernel result type");
  }

  std::vector<size_t> binder_slots_;
  NodePtr body_;
  std::vector<NodePtr> bounds_;
  std::unique_ptr<const KernelSpec> kernel_spec_;
  std::unique_ptr<const TabPushdown> pushdown_;
};

bool ExtractIndexValue(const Value& v, std::vector<uint64_t>* out) {
  out->clear();
  if (v.kind() == ValueKind::kNat) {
    out->push_back(v.nat_value());
    return true;
  }
  if (v.kind() == ValueKind::kTuple) {
    for (const Value& f : v.tuple_fields()) {
      if (f.kind() != ValueKind::kNat) return false;
      out->push_back(f.nat_value());
    }
    return out->size() >= 2;
  }
  return false;
}

class SubscriptNode : public Node {
 public:
  SubscriptNode(NodePtr arr, NodePtr idx) : arr_(std::move(arr)), idx_(std::move(idx)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value arr, arr_->Run(f));
    if (arr.is_bottom()) return Value::Bottom();
    if (arr.kind() != ValueKind::kArray) {
      return Status::EvalError("subscript of non-array");
    }
    AQL_ASSIGN_OR_RETURN(Value idx, idx_->Run(f));
    if (idx.is_bottom()) return Value::Bottom();
    std::vector<uint64_t> index;
    if (!ExtractIndexValue(idx, &index)) {
      return Status::EvalError("array index is not a nat or tuple of nats");
    }
    const ArrayRep& a = arr.array();
    if (!a.InBounds(index)) return Value::Bottom();
    return a.At(a.Flatten(index));
  }

 private:
  NodePtr arr_, idx_;
};

class DimNode : public Node {
 public:
  DimNode(size_t rank, NodePtr arr) : rank_(rank), arr_(std::move(arr)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value arr, arr_->Run(f));
    if (arr.is_bottom()) return Value::Bottom();
    if (arr.kind() != ValueKind::kArray) return Status::EvalError("dim of non-array");
    const ArrayRep& a = arr.array();
    if (a.dims.size() != rank_) return Status::EvalError("dim rank mismatch");
    if (rank_ == 1) return Value::Nat(a.dims[0]);
    std::vector<Value> fields;
    fields.reserve(rank_);
    for (uint64_t d : a.dims) fields.push_back(Value::Nat(d));
    return Value::MakeTuple(std::move(fields));
  }

 private:
  size_t rank_;
  NodePtr arr_;
};

class IndexNode : public Node {
 public:
  IndexNode(size_t rank, NodePtr source) : rank_(rank), source_(std::move(source)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    std::vector<uint64_t> dims(rank_, 0);
    std::vector<std::pair<std::vector<uint64_t>, const Value*>> entries;
    entries.reserve(src.set().elems.size());
    for (const Value& pair : src.set().elems) {
      if (pair.kind() != ValueKind::kTuple || pair.tuple_fields().size() != 2) {
        return Status::EvalError("index expects (key, value) pairs");
      }
      const Value& key = pair.tuple_fields()[0];
      std::vector<uint64_t> idx;
      if (rank_ == 1) {
        if (key.kind() != ValueKind::kNat) return Status::EvalError("bad index key");
        idx.push_back(key.nat_value());
      } else if (!ExtractIndexValue(key, &idx) || idx.size() != rank_) {
        return Status::EvalError("bad index key shape");
      }
      for (size_t j = 0; j < rank_; ++j) dims[j] = std::max(dims[j], idx[j] + 1);
      entries.emplace_back(std::move(idx), &pair.tuple_fields()[1]);
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;
    std::vector<std::vector<Value>> buckets(total);
    ArrayRep shape{dims, {}};
    for (auto& [idx, value] : entries) buckets[shape.Flatten(idx)].push_back(*value);
    std::vector<Value> elems;
    elems.reserve(total);
    for (auto& bucket : buckets) {
      elems.push_back(Value::MakeSetCanonical(std::move(bucket)));
    }
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

 private:
  size_t rank_;
  NodePtr source_;
};

class DenseNode : public Node {
 public:
  DenseNode(size_t rank, std::vector<NodePtr> dims, std::vector<NodePtr> values)
      : rank_(rank), dims_(std::move(dims)), values_(std::move(values)) {}
  Result<Value> Run(Frame* f) const override {
    std::vector<uint64_t> dims(rank_);
    for (size_t j = 0; j < rank_; ++j) {
      AQL_ASSIGN_OR_RETURN(Value d, dims_[j]->Run(f));
      if (d.is_bottom()) return Value::Bottom();
      if (d.kind() != ValueKind::kNat) return Status::EvalError("dense dim non-nat");
      dims[j] = d.nat_value();
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;
    if (total != values_.size()) return Value::Bottom();
    std::vector<Value> elems;
    elems.reserve(total);
    for (const NodePtr& v : values_) {
      AQL_ASSIGN_OR_RETURN(Value val, v->Run(f));
      elems.push_back(std::move(val));
    }
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    if (arr.value().array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return std::move(arr).value();
  }

 private:
  size_t rank_;
  std::vector<NodePtr> dims_, values_;
};

// A dense literal whose dims and elements were all compile-time constants:
// the array — with its canonical (usually unboxed) payload — is selected
// once at compile time instead of being rediscovered cell-by-cell on every
// run. Keeps DenseNode's observable counter: an unboxed materialization
// still counts per run.
class FoldedDenseNode : public Node {
 public:
  explicit FoldedDenseNode(Value v) : value_(std::move(v)) {}
  Result<Value> Run(Frame*) const override {
    if (value_.kind() == ValueKind::kArray && value_.array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return value_;
  }

 private:
  Value value_;
};

// ---------- compiler ----------

class Compiler {
 public:
  explicit Compiler(const ExternalResolver& externals) : externals_(externals) {}

  Result<Program> CompileProgram(const ExprPtr& e, const std::vector<std::string>& params) {
    scope_ = params;
    high_water_ = params.size();
    AQL_ASSIGN_OR_RETURN(NodePtr root, CompileNode(e));
    return Program(std::move(root), high_water_, std::move(proof_));
  }

 private:
  size_t Push(const std::string& name) {
    scope_.push_back(name);
    high_water_ = std::max(high_water_, scope_.size());
    return scope_.size() - 1;
  }
  void Pop(size_t n = 1) { scope_.resize(scope_.size() - n); }

  Result<size_t> Lookup(const std::string& name) const {
    for (size_t i = scope_.size(); i-- > 0;) {
      if (scope_[i] == name) return i;
    }
    return Status::EvalError(StrCat("unbound variable ", name, " at compile time"));
  }

  // A compile-time constant scalar expression, or nullopt.
  static std::optional<Value> ConstScalar(const ExprPtr& e) {
    switch (e->kind()) {
      case ExprKind::kNatConst: return Value::Nat(e->nat_const());
      case ExprKind::kRealConst: return Value::Real(e->real_const());
      case ExprKind::kBoolConst: return Value::Bool(e->bool_const());
      case ExprKind::kStrConst: return Value::Str(e->str_const());
      case ExprKind::kBottom: return Value::Bottom();
      case ExprKind::kLiteral: return e->literal();
      default: return std::nullopt;
    }
  }

  // Folds a dense literal with constant dims and elements into its array
  // value at compile time, selecting the canonical payload (unboxed when
  // the definedness analysis would prove it hole-free) up front. Mirrors
  // DenseNode::Run exactly: the wrapping dims product, the count-mismatch
  // ⊥, the per-point ⊥ holes. nullptr when not fully constant (or when
  // materialization must stay a runtime error, e.g. the volume cap).
  static NodePtr TryFoldDense(const ExprPtr& e) {
    std::vector<uint64_t> dims(e->dense_rank());
    for (size_t j = 0; j < e->dense_rank(); ++j) {
      const ExprPtr& d = e->dense_dim(j);
      if (d->is(ExprKind::kNatConst)) {
        dims[j] = d->nat_const();
      } else if (d->is(ExprKind::kLiteral) &&
                 d->literal().kind() == ValueKind::kNat) {
        dims[j] = d->literal().nat_value();
      } else {
        return nullptr;
      }
    }
    std::vector<Value> elems;
    elems.reserve(e->dense_value_count());
    for (size_t j = 0; j < e->dense_value_count(); ++j) {
      std::optional<Value> v = ConstScalar(e->dense_value(j));
      if (!v) return nullptr;
      elems.push_back(std::move(*v));
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;  // wraps, like DenseNode::Run
    if (total != elems.size()) return NodePtr(new ConstNode(Value::Bottom()));
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return nullptr;  // keep cap/overflow errors at run time
    return NodePtr(new FoldedDenseNode(std::move(arr).value()));
  }

  Result<NodePtr> CompileNode(const ExprPtr& e) {
    switch (e->kind()) {
      case ExprKind::kVar: {
        AQL_ASSIGN_OR_RETURN(size_t slot, Lookup(e->var_name()));
        return NodePtr(new SlotNode(slot));
      }
      case ExprKind::kLambda:
        return CompileLambda(e);
      case ExprKind::kApply: {
        AQL_ASSIGN_OR_RETURN(NodePtr fn, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr arg, CompileNode(e->child(1)));
        return NodePtr(new ApplyNode(std::move(fn), std::move(arg)));
      }
      case ExprKind::kTuple: {
        std::vector<NodePtr> fields;
        for (const ExprPtr& c : e->children()) {
          AQL_ASSIGN_OR_RETURN(NodePtr n, CompileNode(c));
          fields.push_back(std::move(n));
        }
        return NodePtr(new TupleNode(std::move(fields)));
      }
      case ExprKind::kProj: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new ProjNode(e->proj_index(), e->proj_arity(), std::move(inner)));
      }
      case ExprKind::kEmptySet:
        return NodePtr(new ConstNode(Value::EmptySet()));
      case ExprKind::kSingleton: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new SingletonNode(std::move(inner)));
      }
      case ExprKind::kUnion: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new UnionNode(std::move(a), std::move(b)));
      }
      case ExprKind::kBigUnion: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(1)));
        size_t slot = Push(e->binder());
        auto body = CompileNode(e->child(0));
        Pop();
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new BigUnionNode(slot, std::move(body).value(), std::move(src)));
      }
      case ExprKind::kGet: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new GetNode(std::move(inner)));
      }
      case ExprKind::kBoolConst:
        return NodePtr(new ConstNode(Value::Bool(e->bool_const())));
      case ExprKind::kIf: {
        AQL_ASSIGN_OR_RETURN(NodePtr c, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr t, CompileNode(e->child(1)));
        AQL_ASSIGN_OR_RETURN(NodePtr f, CompileNode(e->child(2)));
        return NodePtr(new IfNode(std::move(c), std::move(t), std::move(f)));
      }
      case ExprKind::kCmp: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new CmpNode(e->cmp_op(), std::move(a), std::move(b)));
      }
      case ExprKind::kNatConst:
        return NodePtr(new ConstNode(Value::Nat(e->nat_const())));
      case ExprKind::kRealConst:
        return NodePtr(new ConstNode(Value::Real(e->real_const())));
      case ExprKind::kStrConst:
        return NodePtr(new ConstNode(Value::Str(e->str_const())));
      case ExprKind::kArith: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new ArithNode(e->arith_op(), std::move(a), std::move(b)));
      }
      case ExprKind::kGen: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new GenNode(std::move(inner)));
      }
      case ExprKind::kSum: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(1)));
        size_t slot = Push(e->binder());
        auto body = CompileNode(e->child(0));
        Pop();
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new SumNode(slot, std::move(body).value(), std::move(src),
                                   TryMatchSumPushdown(e, &proof_)));
      }
      case ExprKind::kTab: {
        std::vector<NodePtr> bounds;
        for (size_t j = 0; j < e->tab_rank(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->tab_bound(j)));
          bounds.push_back(std::move(b));
        }
        std::vector<size_t> slots;
        for (const std::string& v : e->binders()) slots.push_back(Push(v));
        auto body = CompileNode(e->tab_body());
        std::unique_ptr<KernelSpec> spec;
        if (body.ok()) {
          spec = BuildKernelSpec(
              *e->tab_body(), slots,
              [this](const std::string& name) { return Lookup(name); });
          // Attach in-range/nonzero proofs so instantiation can admit the
          // unchecked evaluators (analysis/absint.h; once per compile).
          if (spec != nullptr) AnnotateKernelSpec(*e, spec.get(), &proof_);
        }
        Pop(e->tab_rank());
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new TabNode(std::move(slots), std::move(body).value(),
                                   std::move(bounds), std::move(spec),
                                   TryMatchPushdown(e, &proof_)));
      }
      case ExprKind::kSubscript: {
        AQL_ASSIGN_OR_RETURN(NodePtr arr, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr idx, CompileNode(e->child(1)));
        return NodePtr(new SubscriptNode(std::move(arr), std::move(idx)));
      }
      case ExprKind::kDim: {
        AQL_ASSIGN_OR_RETURN(NodePtr arr, CompileNode(e->child(0)));
        return NodePtr(new DimNode(e->rank(), std::move(arr)));
      }
      case ExprKind::kIndex: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(0)));
        return NodePtr(new IndexNode(e->rank(), std::move(src)));
      }
      case ExprKind::kDense: {
        if (NodePtr folded = TryFoldDense(e)) return folded;
        std::vector<NodePtr> dims, values;
        for (size_t j = 0; j < e->dense_rank(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr d, CompileNode(e->dense_dim(j)));
          dims.push_back(std::move(d));
        }
        for (size_t j = 0; j < e->dense_value_count(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr v, CompileNode(e->dense_value(j)));
          values.push_back(std::move(v));
        }
        return NodePtr(new DenseNode(e->dense_rank(), std::move(dims), std::move(values)));
      }
      case ExprKind::kBottom:
        return NodePtr(new ConstNode(Value::Bottom()));
      case ExprKind::kLiteral:
        return NodePtr(new ConstNode(e->literal()));
      case ExprKind::kExternal: {
        std::shared_ptr<const FuncValue> fn =
            externals_ ? externals_(e->var_name()) : nullptr;
        if (!fn) {
          return Status::EvalError(
              StrCat("unknown external primitive ", e->var_name()));
        }
        return NodePtr(new ConstNode(Value::MakeFunc(std::move(fn))));
      }
    }
    return Status::Internal("unknown expression kind in compiler");
  }

  // Lambdas compile against a fresh frame [captures..., param, scratch].
  Result<NodePtr> CompileLambda(const ExprPtr& e) {
    std::set<std::string> fv = FreeVars(e);
    std::vector<size_t> capture_slots;
    std::vector<std::string> inner_scope;
    capture_slots.reserve(fv.size());
    for (const std::string& name : fv) {
      AQL_ASSIGN_OR_RETURN(size_t slot, Lookup(name));
      capture_slots.push_back(slot);
      inner_scope.push_back(name);
    }
    Compiler inner(externals_);
    inner.scope_ = std::move(inner_scope);
    inner.scope_.push_back(e->binder());
    inner.high_water_ = inner.scope_.size();
    AQL_ASSIGN_OR_RETURN(NodePtr body, inner.CompileNode(e->child(0)));
    // Proof entries produced inside the lambda body belong to the whole
    // program's certificate.
    for (analysis::ProofEntry& pe : inner.proof_.entries) {
      proof_.entries.push_back(std::move(pe));
    }
    return NodePtr(
        new LambdaNode(std::move(capture_slots), std::move(body), inner.high_water_));
  }

  const ExternalResolver& externals_;
  std::vector<std::string> scope_;
  size_t high_water_ = 0;
  analysis::Proof proof_;
};

}  // namespace

Result<Value> Program::Run(std::vector<Value> args) const {
  obs::Span span("exec", "exec.run");
  Frame frame;
  frame.slots.resize(frame_size_);
  for (size_t i = 0; i < args.size() && i < frame.slots.size(); ++i) {
    frame.slots[i] = std::move(args[i]);
  }
  return root_->Run(&frame);
}

Result<Program> Compile(const ExprPtr& e, const ExternalResolver& externals,
                        const std::vector<std::string>& params) {
  obs::Span span("exec", "exec.compile");
  Compiler compiler(externals);
  return compiler.CompileProgram(e, params);
}

}  // namespace exec
}  // namespace aql
