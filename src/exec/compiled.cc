#include "exec/compiled.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>

#include "base/cancel.h"
#include "base/env.h"
#include "base/strings.h"
#include "base/sync.h"
#include "core/expr_ops.h"
#include "exec/kernel.h"
#include "exec/parallel.h"
#include "obs/trace.h"

namespace aql {
namespace exec {

namespace {

// Upper bounds on eagerly allocated result buffers. Tabulations larger
// than these run the legacy incremental loop (clamped reserve +
// push_back), which stays cancellable long before the allocation would
// hurt; the limits exist so a huge-but-under-the-cap bound does not turn
// into one giant up-front allocation.
constexpr uint64_t kUnboxedAllocLimit = uint64_t{1} << 26;  // 8B scalars
constexpr uint64_t kBoxedAllocLimit = uint64_t{1} << 24;    // boxed Values

// Multi-index helpers for row-major chunked loops.
std::vector<uint64_t> DecodeIndex(uint64_t flat, const std::vector<uint64_t>& dims) {
  std::vector<uint64_t> idx(dims.size());
  for (size_t j = dims.size(); j-- > 0;) {
    idx[j] = flat % dims[j];
    flat /= dims[j];
  }
  return idx;
}

void IncrementIndex(std::vector<uint64_t>& idx, const std::vector<uint64_t>& dims) {
  for (size_t j = dims.size(); j-- > 0;) {
    if (++idx[j] < dims[j]) return;
    idx[j] = 0;
  }
}

// ---------- runtime nodes ----------

class ConstNode : public Node {
 public:
  explicit ConstNode(Value v) : value_(std::move(v)) {}
  Result<Value> Run(Frame*) const override { return value_; }

 private:
  Value value_;
};

class SlotNode : public Node {
 public:
  explicit SlotNode(size_t slot) : slot_(slot) {}
  Result<Value> Run(Frame* f) const override { return f->slots[slot_]; }

 private:
  size_t slot_;
};

// Closure: captured values + code compiled against a fresh frame laid out
// as [captures..., param, scratch...].
class CompiledClosure : public FuncValue {
 public:
  CompiledClosure(std::vector<Value> captured, const Node* body, size_t frame_size)
      : captured_(std::move(captured)), body_(body), frame_size_(frame_size) {}

  Result<Value> Apply(const Value& arg) const override {
    Frame frame;
    frame.slots.resize(frame_size_);
    std::copy(captured_.begin(), captured_.end(), frame.slots.begin());
    frame.slots[captured_.size()] = arg;
    return body_->Run(&frame);
  }

  std::string name() const override { return "<compiled fn>"; }

 private:
  std::vector<Value> captured_;
  const Node* body_;
  size_t frame_size_;
};

// Creates a closure, capturing the listed slots of the current frame.
// Owns the compiled body (shared among all closures it creates).
class LambdaNode : public Node {
 public:
  LambdaNode(std::vector<size_t> capture_slots, NodePtr body, size_t frame_size)
      : capture_slots_(std::move(capture_slots)),
        body_(std::move(body)),
        frame_size_(frame_size) {}

  Result<Value> Run(Frame* f) const override {
    std::vector<Value> captured;
    captured.reserve(capture_slots_.size());
    for (size_t s : capture_slots_) captured.push_back(f->slots[s]);
    return Value::MakeFunc(std::make_shared<CompiledClosure>(std::move(captured),
                                                             body_.get(), frame_size_));
  }

 private:
  std::vector<size_t> capture_slots_;
  NodePtr body_;
  size_t frame_size_;
};

class ApplyNode : public Node {
 public:
  ApplyNode(NodePtr fn, NodePtr arg) : fn_(std::move(fn)), arg_(std::move(arg)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value fn, fn_->Run(f));
    if (fn.is_bottom()) return Value::Bottom();
    if (fn.kind() != ValueKind::kFunc) {
      return Status::EvalError("applying a non-function value");
    }
    AQL_ASSIGN_OR_RETURN(Value arg, arg_->Run(f));
    if (arg.is_bottom()) return Value::Bottom();
    return fn.func().Apply(arg);
  }

 private:
  NodePtr fn_, arg_;
};

class TupleNode : public Node {
 public:
  explicit TupleNode(std::vector<NodePtr> fields) : fields_(std::move(fields)) {}
  Result<Value> Run(Frame* f) const override {
    std::vector<Value> vals;
    vals.reserve(fields_.size());
    for (const NodePtr& n : fields_) {
      AQL_ASSIGN_OR_RETURN(Value v, n->Run(f));
      if (v.is_bottom()) return Value::Bottom();
      vals.push_back(std::move(v));
    }
    return Value::MakeTuple(std::move(vals));
  }

 private:
  std::vector<NodePtr> fields_;
};

class ProjNode : public Node {
 public:
  ProjNode(size_t index, size_t arity, NodePtr inner)
      : index_(index), arity_(arity), inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    if (v.kind() != ValueKind::kTuple || v.tuple_fields().size() != arity_) {
      return Status::EvalError("projection arity mismatch");
    }
    return v.tuple_fields()[index_ - 1];
  }

 private:
  size_t index_, arity_;
  NodePtr inner_;
};

class SingletonNode : public Node {
 public:
  explicit SingletonNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    return Value::MakeSetCanonical({std::move(v)});
  }

 private:
  NodePtr inner_;
};

class UnionNode : public Node {
 public:
  UnionNode(NodePtr a, NodePtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    return Value::SetUnion(a, b);
  }

 private:
  NodePtr a_, b_;
};

// Parallel body evaluation for the set-driven loops (big union, sum):
// every source element's body value lands in parts[i], evaluated by
// chunks over worker-private Frame copies. The fold over the parts stays
// sequential in the caller, which is what keeps results bit-identical to
// the single-threaded loop (left-to-right real addition, first ⊥/error
// in index order).
//
// `terminal` is the lowest index whose body came out ⊥ or as an error;
// parts at indices beyond it may be unset (chunks stop early), so callers
// must stop their fold when they reach it. A non-OK return is an
// interrupt (cancellation/deadline) only.
struct LoopParts {
  std::vector<Value> parts;
  uint64_t terminal = UINT64_MAX;
  bool terminal_is_bottom = false;
  Status terminal_status;
};

Result<LoopParts> EvalBodyParallel(const Frame& f, size_t binder_slot, const Node* body,
                                   const std::vector<Value>& xs) {
  LoopParts lp;
  lp.parts.assign(xs.size(), Value());
  std::atomic<uint64_t> terminal{UINT64_MAX};
  Mutex mu("exec.par.terminal", lock_rank::kExecTerminal);
  bool terminal_bottom = false;
  Status terminal_status;
  Status ps = ParallelFor(xs.size(), [&](uint64_t b, uint64_t e) -> Status {
    Frame local = f;  // private register file per chunk
    for (uint64_t i = b; i < e; ++i) {
      if (((i - b) & 0x3FF) == 0) {
        AQL_RETURN_IF_ERROR(CheckInterrupt());
        if (terminal.load(std::memory_order_relaxed) < i) return Status::OK();
      }
      local.slots[binder_slot] = xs[i];
      Result<Value> r = body->Run(&local);
      if (!r.ok() || r.value().is_bottom()) {
        MutexLock lock(&mu);
        if (i < terminal.load(std::memory_order_relaxed)) {
          terminal.store(i, std::memory_order_relaxed);
          terminal_bottom = r.ok();
          terminal_status = r.ok() ? Status::OK() : r.status();
        }
        return Status::OK();
      }
      lp.parts[i] = std::move(r).value();
    }
    return Status::OK();
  });
  AQL_RETURN_IF_ERROR(ps);
  lp.terminal = terminal.load(std::memory_order_relaxed);
  lp.terminal_is_bottom = terminal_bottom;
  lp.terminal_status = std::move(terminal_status);
  return lp;
}

class BigUnionNode : public Node {
 public:
  BigUnionNode(size_t binder_slot, NodePtr body, NodePtr source)
      : binder_slot_(binder_slot), body_(std::move(body)), source_(std::move(source)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    const std::vector<Value>& xs = src.set().elems;
    std::vector<Value> acc;
    if (ShouldParallelize(xs.size())) {
      AQL_ASSIGN_OR_RETURN(LoopParts lp,
                           EvalBodyParallel(*f, binder_slot_, body_.get(), xs));
      for (uint64_t i = 0; i < xs.size(); ++i) {
        if (i == lp.terminal) {
          if (lp.terminal_is_bottom) return Value::Bottom();
          return lp.terminal_status;
        }
        const auto& elems = lp.parts[i].set().elems;
        acc.insert(acc.end(), elems.begin(), elems.end());
      }
      return Value::MakeSet(std::move(acc));
    }
    for (const Value& x : xs) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      f->slots[binder_slot_] = x;
      AQL_ASSIGN_OR_RETURN(Value part, body_->Run(f));
      if (part.is_bottom()) return Value::Bottom();
      const auto& elems = part.set().elems;
      acc.insert(acc.end(), elems.begin(), elems.end());
    }
    return Value::MakeSet(std::move(acc));
  }

 private:
  size_t binder_slot_;
  NodePtr body_, source_;
};

class GetNode : public Node {
 public:
  explicit GetNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value v, inner_->Run(f));
    if (v.is_bottom()) return Value::Bottom();
    if (v.set().elems.size() != 1) return Value::Bottom();
    return v.set().elems[0];
  }

 private:
  NodePtr inner_;
};

class IfNode : public Node {
 public:
  IfNode(NodePtr cond, NodePtr then_n, NodePtr else_n)
      : cond_(std::move(cond)), then_(std::move(then_n)), else_(std::move(else_n)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value c, cond_->Run(f));
    if (c.is_bottom()) return Value::Bottom();
    return (c.bool_value() ? then_ : else_)->Run(f);
  }

 private:
  NodePtr cond_, then_, else_;
};

class CmpNode : public Node {
 public:
  CmpNode(CmpOp op, NodePtr a, NodePtr b) : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    int c = Value::Compare(a, b);
    switch (op_) {
      case CmpOp::kEq: return Value::Bool(c == 0);
      case CmpOp::kNe: return Value::Bool(c != 0);
      case CmpOp::kLt: return Value::Bool(c < 0);
      case CmpOp::kLe: return Value::Bool(c <= 0);
      case CmpOp::kGt: return Value::Bool(c > 0);
      case CmpOp::kGe: return Value::Bool(c >= 0);
    }
    return Status::Internal("bad cmp op");
  }

 private:
  CmpOp op_;
  NodePtr a_, b_;
};

class ArithNode : public Node {
 public:
  ArithNode(ArithOp op, NodePtr a, NodePtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value a, a_->Run(f));
    if (a.is_bottom()) return Value::Bottom();
    AQL_ASSIGN_OR_RETURN(Value b, b_->Run(f));
    if (b.is_bottom()) return Value::Bottom();
    if (a.kind() == ValueKind::kNat && b.kind() == ValueKind::kNat) {
      uint64_t x = a.nat_value(), y = b.nat_value();
      switch (op_) {
        case ArithOp::kAdd: return Value::Nat(x + y);
        case ArithOp::kMonus: return Value::Nat(x >= y ? x - y : 0);
        case ArithOp::kMul: return Value::Nat(x * y);
        case ArithOp::kDiv: return y == 0 ? Value::Bottom() : Value::Nat(x / y);
        case ArithOp::kMod: return y == 0 ? Value::Bottom() : Value::Nat(x % y);
      }
    }
    if (a.kind() == ValueKind::kReal && b.kind() == ValueKind::kReal) {
      double x = a.real_value(), y = b.real_value();
      switch (op_) {
        case ArithOp::kAdd: return Value::Real(x + y);
        case ArithOp::kMonus: return Value::Real(x - y);
        case ArithOp::kMul: return Value::Real(x * y);
        case ArithOp::kDiv: return Value::Real(x / y);
        case ArithOp::kMod: return Value::Real(std::fmod(x, y));
      }
    }
    return Status::EvalError("arithmetic on non-numeric values");
  }

 private:
  ArithOp op_;
  NodePtr a_, b_;
};

class GenNode : public Node {
 public:
  explicit GenNode(NodePtr inner) : inner_(std::move(inner)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value n, inner_->Run(f));
    if (n.is_bottom()) return Value::Bottom();
    if (n.kind() != ValueKind::kNat) return Status::EvalError("gen of non-nat");
    std::vector<Value> elems;
    // Clamped so a huge bound reaches the interrupt checks below rather
    // than dying up front in one giant allocation.
    elems.reserve(std::min<uint64_t>(n.nat_value(), uint64_t{1} << 20));
    for (uint64_t i = 0; i < n.nat_value(); ++i) {
      if ((i & 0xFFF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
      elems.push_back(Value::Nat(i));
    }
    return Value::MakeSetCanonical(std::move(elems));
  }

 private:
  NodePtr inner_;
};

class SumNode : public Node {
 public:
  SumNode(size_t binder_slot, NodePtr body, NodePtr source)
      : binder_slot_(binder_slot), body_(std::move(body)), source_(std::move(source)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    const std::vector<Value>& xs = src.set().elems;
    uint64_t nat_total = 0;
    double real_total = 0;
    bool is_real = false, first = true;
    if (ShouldParallelize(xs.size())) {
      // Bodies evaluate in parallel; the fold below runs left-to-right on
      // one thread so real addition rounds exactly as it does sequentially.
      AQL_ASSIGN_OR_RETURN(LoopParts lp,
                           EvalBodyParallel(*f, binder_slot_, body_.get(), xs));
      for (uint64_t i = 0; i < xs.size(); ++i) {
        if (i == lp.terminal) {
          if (lp.terminal_is_bottom) return Value::Bottom();
          return lp.terminal_status;
        }
        AQL_RETURN_IF_ERROR(
            Accumulate(lp.parts[i], &nat_total, &real_total, &is_real, &first));
      }
      if (first) return Value::Nat(0);
      return is_real ? Value::Real(real_total) : Value::Nat(nat_total);
    }
    for (const Value& x : xs) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      f->slots[binder_slot_] = x;
      AQL_ASSIGN_OR_RETURN(Value part, body_->Run(f));
      if (part.is_bottom()) return Value::Bottom();
      AQL_RETURN_IF_ERROR(Accumulate(part, &nat_total, &real_total, &is_real, &first));
    }
    if (first) return Value::Nat(0);
    return is_real ? Value::Real(real_total) : Value::Nat(nat_total);
  }

 private:
  static Status Accumulate(const Value& part, uint64_t* nat_total, double* real_total,
                           bool* is_real, bool* first) {
    if (*first) {
      *is_real = part.kind() == ValueKind::kReal;
      *first = false;
    }
    if (*is_real) {
      if (part.kind() != ValueKind::kReal) {
        return Status::EvalError("Sum body mixed nat and real");
      }
      *real_total += part.real_value();
    } else {
      if (part.kind() != ValueKind::kNat) {
        return Status::EvalError("Sum body must be nat or real");
      }
      *nat_total += part.nat_value();
    }
    return Status::OK();
  }

  size_t binder_slot_;
  NodePtr body_, source_;
};

// Compile-time subslab pushdown: a tabulation of the shape
//   [[ S[i1+lo1, ..., ik+lok] | i1 < e1, ..., ik < ek ]]
// where S is a tiled-array literal (a resolved out-of-core readval) turns
// into ONE bulk range read against the tile store — the optimizer's
// subscript-range constraints pushed down into TileStore instead of
// materializing the whole variable and gathering point-wise.
struct TabPushdown {
  Value base;                   // the tiled-array literal (keeps the slab alive)
  std::vector<uint64_t> lower;  // per-dimension constant offsets
};

// Matches `part` as binder + constant offset (the binder alone, binder+c,
// or c+binder), where c may be a NatConst or a nat literal. Mirrors the
// result cache's subslab matcher (service/result_cache.cc); a different
// binder — a transposed access — fails.
bool MatchPushdownIndexPart(const ExprPtr& part, const std::string& binder,
                            uint64_t* offset) {
  auto nat_const = [](const ExprPtr& x, uint64_t* out) {
    if (x->is(ExprKind::kNatConst)) {
      *out = x->nat_const();
      return true;
    }
    if (x->is(ExprKind::kLiteral) && x->literal().kind() == ValueKind::kNat) {
      *out = x->literal().nat_value();
      return true;
    }
    return false;
  };
  if (part->is(ExprKind::kVar) && part->var_name() == binder) {
    *offset = 0;
    return true;
  }
  if (!part->is(ExprKind::kArith) || part->arith_op() != ArithOp::kAdd) return false;
  const ExprPtr& a = part->child(0);
  const ExprPtr& b = part->child(1);
  if (a->is(ExprKind::kVar) && a->var_name() == binder && nat_const(b, offset)) return true;
  if (b->is(ExprKind::kVar) && b->var_name() == binder && nat_const(a, offset)) return true;
  return false;
}

// Detects the pushdown-eligible tabulation shape at compile time. The base
// must be a LITERAL tiled array (how a resolved out-of-core readval
// appears in a plan) so the region is known to come straight from storage;
// binder names must be distinct so "part j uses binder j" is unambiguous.
std::unique_ptr<const TabPushdown> TryMatchPushdown(const ExprPtr& e) {
  const ExprPtr& body = e->tab_body();
  if (!body->is(ExprKind::kSubscript)) return nullptr;
  const ExprPtr& base = body->child(0);
  if (!base->is(ExprKind::kLiteral)) return nullptr;
  const Value& v = base->literal();
  if (v.kind() != ValueKind::kArray ||
      v.array().payload != ArrayRep::Payload::kTiled) {
    return nullptr;
  }
  const size_t k = e->tab_rank();
  if (v.array().dims.size() != k) return nullptr;
  const std::vector<std::string>& binders = e->binders();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (binders[i] == binders[j]) return nullptr;  // shadowing: ambiguous
    }
  }
  const ExprPtr& idx = body->child(1);
  std::vector<ExprPtr> parts(k);
  if (k == 1) {
    parts[0] = idx;
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
  } else {
    return nullptr;
  }
  auto pd = std::make_unique<TabPushdown>();
  pd->base = v;
  pd->lower.resize(k);
  for (size_t j = 0; j < k; ++j) {
    if (!MatchPushdownIndexPart(parts[j], binders[j], &pd->lower[j])) return nullptr;
  }
  return pd;
}

class TabNode : public Node {
 public:
  TabNode(std::vector<size_t> binder_slots, NodePtr body, std::vector<NodePtr> bounds,
          std::unique_ptr<const KernelSpec> kernel_spec,
          std::unique_ptr<const TabPushdown> pushdown)
      : binder_slots_(std::move(binder_slots)),
        body_(std::move(body)),
        bounds_(std::move(bounds)),
        kernel_spec_(std::move(kernel_spec)),
        pushdown_(std::move(pushdown)) {}

  Result<Value> Run(Frame* f) const override {
    size_t k = binder_slots_.size();
    std::vector<uint64_t> dims(k);
    for (size_t j = 0; j < k; ++j) {
      AQL_ASSIGN_OR_RETURN(Value b, bounds_[j]->Run(f));
      if (b.is_bottom()) return Value::Bottom();
      if (b.kind() != ValueKind::kNat) {
        return Status::EvalError("tabulation bound is not a nat");
      }
      dims[j] = b.nat_value();
    }
    AQL_ASSIGN_OR_RETURN(uint64_t total, CheckedVolume(dims));
    if (total == 0) {
      auto arr = Value::MakeArray(std::move(dims), {});
      if (!arr.ok()) return Status::Internal(arr.status().message());
      return std::move(arr).value();
    }

    // Subslab pushdown: one bulk tile-store range read replaces the whole
    // gather loop. Only when the requested region fits inside the base —
    // an out-of-range region must fall through so each out-of-bounds
    // point keeps its ⊥ hole (bit-identical to the generic path; in-range
    // elements are decoded by the very same tile reads either way).
    if (pushdown_ != nullptr && total <= kUnboxedAllocLimit &&
        EnvU64("AQL_EXEC_PUSHDOWN", 1) != 0) {
      const ArrayRep& base = pushdown_->base.array();
      bool fits = base.dims.size() == k;
      for (size_t j = 0; fits && j < k; ++j) {
        fits = dims[j] <= base.dims[j] && pushdown_->lower[j] <= base.dims[j] - dims[j];
      }
      if (fits) {
        std::vector<double> buf(total);
        // An I/O failure here is the query's error: the generic path would
        // hit the same failing read element-wise.
        AQL_RETURN_IF_ERROR(base.tiled->ReadInto(pushdown_->lower, dims, buf.data()));
        auto arr = Value::MakeRealArray(dims, std::move(buf));
        if (!arr.ok()) return Status::Internal(arr.status().message());
        GlobalExecStats().tab_pushdowns.fetch_add(1, std::memory_order_relaxed);
        GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
        return std::move(arr).value();
      }
    }

    // Fused kernel: scalar body over an unboxed result buffer. A ⊥ at any
    // point aborts the kernel and re-runs generically (the partial array
    // keeps per-point ⊥ holes, which the unboxed payloads cannot hold).
    // When instantiation discharges every ⊥ source statically, the loop
    // drops the per-cell checks entirely (re-read the kill switch per run
    // so tests and benchmarks can toggle it in-process).
    if (kernel_spec_ != nullptr && total <= kUnboxedAllocLimit) {
      if (std::unique_ptr<Kernel> kernel = Kernel::Instantiate(*kernel_spec_, *f)) {
        if (kernel->unchecked() && EnvU64("AQL_EXEC_UNCHECKED", 1) != 0) {
          AQL_ASSIGN_OR_RETURN(Value arr, RunKernelUnchecked(*kernel, dims, total));
          GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
          GlobalExecStats().unchecked_kernels.fetch_add(1, std::memory_order_relaxed);
          return arr;
        }
        bool bottom_seen = false;
        AQL_ASSIGN_OR_RETURN(Value arr, RunKernel(*kernel, dims, total, &bottom_seen));
        if (!bottom_seen) {
          GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
          return arr;
        }
      }
    }

    // Generic parallel: chunked body interpretation over private frames,
    // elements written straight into their row-major slots.
    if (ShouldParallelize(total) && total <= kBoxedAllocLimit) {
      std::vector<Value> elems(total);
      Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
        Frame local = *f;
        std::vector<uint64_t> index = DecodeIndex(begin, dims);
        for (uint64_t flat = begin; flat < end; ++flat) {
          if (((flat - begin) & 0x3FF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
          for (size_t j = 0; j < k; ++j) {
            local.slots[binder_slots_[j]] = Value::Nat(index[j]);
          }
          AQL_ASSIGN_OR_RETURN(Value v, body_->Run(&local));
          elems[flat] = std::move(v);  // bottom stays per-point (partial arrays)
          IncrementIndex(index, dims);
        }
        return Status::OK();
      });
      AQL_RETURN_IF_ERROR(ps);
      return Finish(std::move(dims), std::move(elems));
    }

    // Sequential fallback; also the only path for totals beyond the eager
    // allocation limits, so oversized tabulations stay cancellable.
    std::vector<Value> elems;
    elems.reserve(std::min<uint64_t>(total, uint64_t{1} << 20));
    std::vector<uint64_t> index(k, 0);
    for (uint64_t flat = 0; flat < total; ++flat) {
      AQL_RETURN_IF_ERROR(CheckInterrupt());
      for (size_t j = 0; j < k; ++j) f->slots[binder_slots_[j]] = Value::Nat(index[j]);
      AQL_ASSIGN_OR_RETURN(Value v, body_->Run(f));
      elems.push_back(std::move(v));  // bottom stays per-point (partial arrays)
      IncrementIndex(index, dims);
    }
    return Finish(std::move(dims), std::move(elems));
  }

 private:
  static Result<Value> Finish(std::vector<uint64_t> dims, std::vector<Value> elems) {
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    if (arr.value().array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return std::move(arr).value();
  }

  template <typename T, typename EvalFn>
  static Result<Value> KernelLoop(const std::vector<uint64_t>& dims, uint64_t total,
                                  bool* bottom_seen, EvalFn&& eval,
                                  Result<Value> (*make)(std::vector<uint64_t>,
                                                        std::vector<T>)) {
    std::vector<T> buf(total);
    std::atomic<bool> bottom{false};
    Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
      std::vector<uint64_t> index = DecodeIndex(begin, dims);
      for (uint64_t flat = begin; flat < end; ++flat) {
        if (((flat - begin) & 0xFFF) == 0) {
          AQL_RETURN_IF_ERROR(CheckInterrupt());
          if (bottom.load(std::memory_order_relaxed)) return Status::OK();
        }
        if (!eval(index.data(), &buf[flat])) {
          bottom.store(true, std::memory_order_relaxed);
          return Status::OK();
        }
        IncrementIndex(index, dims);
      }
      return Status::OK();
    });
    AQL_RETURN_IF_ERROR(ps);
    if (bottom.load(std::memory_order_relaxed)) {
      *bottom_seen = true;
      return Value::Bottom();  // placeholder; caller re-runs generically
    }
    auto arr = make(dims, std::move(buf));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

  // The unchecked loop: evaluation is total, so there is no ⊥ flag to
  // poll and no per-cell branch on the eval result — just index decode,
  // body, store. Interrupt polling stays (deadlines must still bite).
  template <typename T, typename EvalFn>
  static Result<Value> KernelLoopU(const std::vector<uint64_t>& dims, uint64_t total,
                                   EvalFn&& eval,
                                   Result<Value> (*make)(std::vector<uint64_t>,
                                                         std::vector<T>)) {
    std::vector<T> buf(total);
    Status ps = ParallelFor(total, [&](uint64_t begin, uint64_t end) -> Status {
      std::vector<uint64_t> index = DecodeIndex(begin, dims);
      for (uint64_t flat = begin; flat < end; ++flat) {
        if (((flat - begin) & 0xFFF) == 0) AQL_RETURN_IF_ERROR(CheckInterrupt());
        buf[flat] = eval(index.data());
        IncrementIndex(index, dims);
      }
      return Status::OK();
    });
    AQL_RETURN_IF_ERROR(ps);
    auto arr = make(dims, std::move(buf));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

  static Result<Value> RunKernelUnchecked(const Kernel& kernel,
                                          const std::vector<uint64_t>& dims,
                                          uint64_t total) {
    switch (kernel.result_type()) {
      case Kernel::Type::kNat:
        return KernelLoopU<uint64_t>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalNatUnchecked(idx); },
            &Value::MakeNatArray);
      case Kernel::Type::kReal:
        return KernelLoopU<double>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalRealUnchecked(idx); },
            &Value::MakeRealArray);
      case Kernel::Type::kBool:
        return KernelLoopU<uint8_t>(
            dims, total,
            [&kernel](const uint64_t* idx) { return kernel.EvalBoolUnchecked(idx); },
            &Value::MakeBoolArray);
    }
    return Status::Internal("bad kernel result type");
  }

  static Result<Value> RunKernel(const Kernel& kernel, const std::vector<uint64_t>& dims,
                                 uint64_t total, bool* bottom_seen) {
    switch (kernel.result_type()) {
      case Kernel::Type::kNat:
        return KernelLoop<uint64_t>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, uint64_t* out) {
              return kernel.EvalNat(idx, out);
            },
            &Value::MakeNatArray);
      case Kernel::Type::kReal:
        return KernelLoop<double>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, double* out) {
              return kernel.EvalReal(idx, out);
            },
            &Value::MakeRealArray);
      case Kernel::Type::kBool:
        return KernelLoop<uint8_t>(
            dims, total, bottom_seen,
            [&kernel](const uint64_t* idx, uint8_t* out) {
              return kernel.EvalBool(idx, out);
            },
            &Value::MakeBoolArray);
    }
    return Status::Internal("bad kernel result type");
  }

  std::vector<size_t> binder_slots_;
  NodePtr body_;
  std::vector<NodePtr> bounds_;
  std::unique_ptr<const KernelSpec> kernel_spec_;
  std::unique_ptr<const TabPushdown> pushdown_;
};

bool ExtractIndexValue(const Value& v, std::vector<uint64_t>* out) {
  out->clear();
  if (v.kind() == ValueKind::kNat) {
    out->push_back(v.nat_value());
    return true;
  }
  if (v.kind() == ValueKind::kTuple) {
    for (const Value& f : v.tuple_fields()) {
      if (f.kind() != ValueKind::kNat) return false;
      out->push_back(f.nat_value());
    }
    return out->size() >= 2;
  }
  return false;
}

class SubscriptNode : public Node {
 public:
  SubscriptNode(NodePtr arr, NodePtr idx) : arr_(std::move(arr)), idx_(std::move(idx)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value arr, arr_->Run(f));
    if (arr.is_bottom()) return Value::Bottom();
    if (arr.kind() != ValueKind::kArray) {
      return Status::EvalError("subscript of non-array");
    }
    AQL_ASSIGN_OR_RETURN(Value idx, idx_->Run(f));
    if (idx.is_bottom()) return Value::Bottom();
    std::vector<uint64_t> index;
    if (!ExtractIndexValue(idx, &index)) {
      return Status::EvalError("array index is not a nat or tuple of nats");
    }
    const ArrayRep& a = arr.array();
    if (!a.InBounds(index)) return Value::Bottom();
    return a.At(a.Flatten(index));
  }

 private:
  NodePtr arr_, idx_;
};

class DimNode : public Node {
 public:
  DimNode(size_t rank, NodePtr arr) : rank_(rank), arr_(std::move(arr)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value arr, arr_->Run(f));
    if (arr.is_bottom()) return Value::Bottom();
    if (arr.kind() != ValueKind::kArray) return Status::EvalError("dim of non-array");
    const ArrayRep& a = arr.array();
    if (a.dims.size() != rank_) return Status::EvalError("dim rank mismatch");
    if (rank_ == 1) return Value::Nat(a.dims[0]);
    std::vector<Value> fields;
    fields.reserve(rank_);
    for (uint64_t d : a.dims) fields.push_back(Value::Nat(d));
    return Value::MakeTuple(std::move(fields));
  }

 private:
  size_t rank_;
  NodePtr arr_;
};

class IndexNode : public Node {
 public:
  IndexNode(size_t rank, NodePtr source) : rank_(rank), source_(std::move(source)) {}
  Result<Value> Run(Frame* f) const override {
    AQL_ASSIGN_OR_RETURN(Value src, source_->Run(f));
    if (src.is_bottom()) return Value::Bottom();
    std::vector<uint64_t> dims(rank_, 0);
    std::vector<std::pair<std::vector<uint64_t>, const Value*>> entries;
    entries.reserve(src.set().elems.size());
    for (const Value& pair : src.set().elems) {
      if (pair.kind() != ValueKind::kTuple || pair.tuple_fields().size() != 2) {
        return Status::EvalError("index expects (key, value) pairs");
      }
      const Value& key = pair.tuple_fields()[0];
      std::vector<uint64_t> idx;
      if (rank_ == 1) {
        if (key.kind() != ValueKind::kNat) return Status::EvalError("bad index key");
        idx.push_back(key.nat_value());
      } else if (!ExtractIndexValue(key, &idx) || idx.size() != rank_) {
        return Status::EvalError("bad index key shape");
      }
      for (size_t j = 0; j < rank_; ++j) dims[j] = std::max(dims[j], idx[j] + 1);
      entries.emplace_back(std::move(idx), &pair.tuple_fields()[1]);
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;
    std::vector<std::vector<Value>> buckets(total);
    ArrayRep shape{dims, {}};
    for (auto& [idx, value] : entries) buckets[shape.Flatten(idx)].push_back(*value);
    std::vector<Value> elems;
    elems.reserve(total);
    for (auto& bucket : buckets) {
      elems.push_back(Value::MakeSetCanonical(std::move(bucket)));
    }
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    return std::move(arr).value();
  }

 private:
  size_t rank_;
  NodePtr source_;
};

class DenseNode : public Node {
 public:
  DenseNode(size_t rank, std::vector<NodePtr> dims, std::vector<NodePtr> values)
      : rank_(rank), dims_(std::move(dims)), values_(std::move(values)) {}
  Result<Value> Run(Frame* f) const override {
    std::vector<uint64_t> dims(rank_);
    for (size_t j = 0; j < rank_; ++j) {
      AQL_ASSIGN_OR_RETURN(Value d, dims_[j]->Run(f));
      if (d.is_bottom()) return Value::Bottom();
      if (d.kind() != ValueKind::kNat) return Status::EvalError("dense dim non-nat");
      dims[j] = d.nat_value();
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;
    if (total != values_.size()) return Value::Bottom();
    std::vector<Value> elems;
    elems.reserve(total);
    for (const NodePtr& v : values_) {
      AQL_ASSIGN_OR_RETURN(Value val, v->Run(f));
      elems.push_back(std::move(val));
    }
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return Status::Internal(arr.status().message());
    if (arr.value().array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return std::move(arr).value();
  }

 private:
  size_t rank_;
  std::vector<NodePtr> dims_, values_;
};

// A dense literal whose dims and elements were all compile-time constants:
// the array — with its canonical (usually unboxed) payload — is selected
// once at compile time instead of being rediscovered cell-by-cell on every
// run. Keeps DenseNode's observable counter: an unboxed materialization
// still counts per run.
class FoldedDenseNode : public Node {
 public:
  explicit FoldedDenseNode(Value v) : value_(std::move(v)) {}
  Result<Value> Run(Frame*) const override {
    if (value_.kind() == ValueKind::kArray && value_.array().unboxed()) {
      GlobalExecStats().unboxed_arrays.fetch_add(1, std::memory_order_relaxed);
    }
    return value_;
  }

 private:
  Value value_;
};

// ---------- compiler ----------

class Compiler {
 public:
  explicit Compiler(const ExternalResolver& externals) : externals_(externals) {}

  Result<Program> CompileProgram(const ExprPtr& e, const std::vector<std::string>& params) {
    scope_ = params;
    high_water_ = params.size();
    AQL_ASSIGN_OR_RETURN(NodePtr root, CompileNode(e));
    return Program(std::move(root), high_water_);
  }

 private:
  size_t Push(const std::string& name) {
    scope_.push_back(name);
    high_water_ = std::max(high_water_, scope_.size());
    return scope_.size() - 1;
  }
  void Pop(size_t n = 1) { scope_.resize(scope_.size() - n); }

  Result<size_t> Lookup(const std::string& name) const {
    for (size_t i = scope_.size(); i-- > 0;) {
      if (scope_[i] == name) return i;
    }
    return Status::EvalError(StrCat("unbound variable ", name, " at compile time"));
  }

  // A compile-time constant scalar expression, or nullopt.
  static std::optional<Value> ConstScalar(const ExprPtr& e) {
    switch (e->kind()) {
      case ExprKind::kNatConst: return Value::Nat(e->nat_const());
      case ExprKind::kRealConst: return Value::Real(e->real_const());
      case ExprKind::kBoolConst: return Value::Bool(e->bool_const());
      case ExprKind::kStrConst: return Value::Str(e->str_const());
      case ExprKind::kBottom: return Value::Bottom();
      case ExprKind::kLiteral: return e->literal();
      default: return std::nullopt;
    }
  }

  // Folds a dense literal with constant dims and elements into its array
  // value at compile time, selecting the canonical payload (unboxed when
  // the definedness analysis would prove it hole-free) up front. Mirrors
  // DenseNode::Run exactly: the wrapping dims product, the count-mismatch
  // ⊥, the per-point ⊥ holes. nullptr when not fully constant (or when
  // materialization must stay a runtime error, e.g. the volume cap).
  static NodePtr TryFoldDense(const ExprPtr& e) {
    std::vector<uint64_t> dims(e->dense_rank());
    for (size_t j = 0; j < e->dense_rank(); ++j) {
      const ExprPtr& d = e->dense_dim(j);
      if (d->is(ExprKind::kNatConst)) {
        dims[j] = d->nat_const();
      } else if (d->is(ExprKind::kLiteral) &&
                 d->literal().kind() == ValueKind::kNat) {
        dims[j] = d->literal().nat_value();
      } else {
        return nullptr;
      }
    }
    std::vector<Value> elems;
    elems.reserve(e->dense_value_count());
    for (size_t j = 0; j < e->dense_value_count(); ++j) {
      std::optional<Value> v = ConstScalar(e->dense_value(j));
      if (!v) return nullptr;
      elems.push_back(std::move(*v));
    }
    uint64_t total = 1;
    for (uint64_t d : dims) total *= d;  // wraps, like DenseNode::Run
    if (total != elems.size()) return NodePtr(new ConstNode(Value::Bottom()));
    auto arr = Value::MakeArray(std::move(dims), std::move(elems));
    if (!arr.ok()) return nullptr;  // keep cap/overflow errors at run time
    return NodePtr(new FoldedDenseNode(std::move(arr).value()));
  }

  Result<NodePtr> CompileNode(const ExprPtr& e) {
    switch (e->kind()) {
      case ExprKind::kVar: {
        AQL_ASSIGN_OR_RETURN(size_t slot, Lookup(e->var_name()));
        return NodePtr(new SlotNode(slot));
      }
      case ExprKind::kLambda:
        return CompileLambda(e);
      case ExprKind::kApply: {
        AQL_ASSIGN_OR_RETURN(NodePtr fn, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr arg, CompileNode(e->child(1)));
        return NodePtr(new ApplyNode(std::move(fn), std::move(arg)));
      }
      case ExprKind::kTuple: {
        std::vector<NodePtr> fields;
        for (const ExprPtr& c : e->children()) {
          AQL_ASSIGN_OR_RETURN(NodePtr n, CompileNode(c));
          fields.push_back(std::move(n));
        }
        return NodePtr(new TupleNode(std::move(fields)));
      }
      case ExprKind::kProj: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new ProjNode(e->proj_index(), e->proj_arity(), std::move(inner)));
      }
      case ExprKind::kEmptySet:
        return NodePtr(new ConstNode(Value::EmptySet()));
      case ExprKind::kSingleton: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new SingletonNode(std::move(inner)));
      }
      case ExprKind::kUnion: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new UnionNode(std::move(a), std::move(b)));
      }
      case ExprKind::kBigUnion: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(1)));
        size_t slot = Push(e->binder());
        auto body = CompileNode(e->child(0));
        Pop();
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new BigUnionNode(slot, std::move(body).value(), std::move(src)));
      }
      case ExprKind::kGet: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new GetNode(std::move(inner)));
      }
      case ExprKind::kBoolConst:
        return NodePtr(new ConstNode(Value::Bool(e->bool_const())));
      case ExprKind::kIf: {
        AQL_ASSIGN_OR_RETURN(NodePtr c, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr t, CompileNode(e->child(1)));
        AQL_ASSIGN_OR_RETURN(NodePtr f, CompileNode(e->child(2)));
        return NodePtr(new IfNode(std::move(c), std::move(t), std::move(f)));
      }
      case ExprKind::kCmp: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new CmpNode(e->cmp_op(), std::move(a), std::move(b)));
      }
      case ExprKind::kNatConst:
        return NodePtr(new ConstNode(Value::Nat(e->nat_const())));
      case ExprKind::kRealConst:
        return NodePtr(new ConstNode(Value::Real(e->real_const())));
      case ExprKind::kStrConst:
        return NodePtr(new ConstNode(Value::Str(e->str_const())));
      case ExprKind::kArith: {
        AQL_ASSIGN_OR_RETURN(NodePtr a, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->child(1)));
        return NodePtr(new ArithNode(e->arith_op(), std::move(a), std::move(b)));
      }
      case ExprKind::kGen: {
        AQL_ASSIGN_OR_RETURN(NodePtr inner, CompileNode(e->child(0)));
        return NodePtr(new GenNode(std::move(inner)));
      }
      case ExprKind::kSum: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(1)));
        size_t slot = Push(e->binder());
        auto body = CompileNode(e->child(0));
        Pop();
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new SumNode(slot, std::move(body).value(), std::move(src)));
      }
      case ExprKind::kTab: {
        std::vector<NodePtr> bounds;
        for (size_t j = 0; j < e->tab_rank(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr b, CompileNode(e->tab_bound(j)));
          bounds.push_back(std::move(b));
        }
        std::vector<size_t> slots;
        for (const std::string& v : e->binders()) slots.push_back(Push(v));
        auto body = CompileNode(e->tab_body());
        std::unique_ptr<KernelSpec> spec;
        if (body.ok()) {
          spec = BuildKernelSpec(
              *e->tab_body(), slots,
              [this](const std::string& name) { return Lookup(name); });
          // Attach in-range/nonzero proofs so instantiation can admit the
          // unchecked evaluators (analysis/absint.h; once per compile).
          if (spec != nullptr) AnnotateKernelSpec(*e, spec.get());
        }
        Pop(e->tab_rank());
        AQL_RETURN_IF_ERROR(body.status());
        return NodePtr(new TabNode(std::move(slots), std::move(body).value(),
                                   std::move(bounds), std::move(spec),
                                   TryMatchPushdown(e)));
      }
      case ExprKind::kSubscript: {
        AQL_ASSIGN_OR_RETURN(NodePtr arr, CompileNode(e->child(0)));
        AQL_ASSIGN_OR_RETURN(NodePtr idx, CompileNode(e->child(1)));
        return NodePtr(new SubscriptNode(std::move(arr), std::move(idx)));
      }
      case ExprKind::kDim: {
        AQL_ASSIGN_OR_RETURN(NodePtr arr, CompileNode(e->child(0)));
        return NodePtr(new DimNode(e->rank(), std::move(arr)));
      }
      case ExprKind::kIndex: {
        AQL_ASSIGN_OR_RETURN(NodePtr src, CompileNode(e->child(0)));
        return NodePtr(new IndexNode(e->rank(), std::move(src)));
      }
      case ExprKind::kDense: {
        if (NodePtr folded = TryFoldDense(e)) return folded;
        std::vector<NodePtr> dims, values;
        for (size_t j = 0; j < e->dense_rank(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr d, CompileNode(e->dense_dim(j)));
          dims.push_back(std::move(d));
        }
        for (size_t j = 0; j < e->dense_value_count(); ++j) {
          AQL_ASSIGN_OR_RETURN(NodePtr v, CompileNode(e->dense_value(j)));
          values.push_back(std::move(v));
        }
        return NodePtr(new DenseNode(e->dense_rank(), std::move(dims), std::move(values)));
      }
      case ExprKind::kBottom:
        return NodePtr(new ConstNode(Value::Bottom()));
      case ExprKind::kLiteral:
        return NodePtr(new ConstNode(e->literal()));
      case ExprKind::kExternal: {
        std::shared_ptr<const FuncValue> fn =
            externals_ ? externals_(e->var_name()) : nullptr;
        if (!fn) {
          return Status::EvalError(
              StrCat("unknown external primitive ", e->var_name()));
        }
        return NodePtr(new ConstNode(Value::MakeFunc(std::move(fn))));
      }
    }
    return Status::Internal("unknown expression kind in compiler");
  }

  // Lambdas compile against a fresh frame [captures..., param, scratch].
  Result<NodePtr> CompileLambda(const ExprPtr& e) {
    std::set<std::string> fv = FreeVars(e);
    std::vector<size_t> capture_slots;
    std::vector<std::string> inner_scope;
    capture_slots.reserve(fv.size());
    for (const std::string& name : fv) {
      AQL_ASSIGN_OR_RETURN(size_t slot, Lookup(name));
      capture_slots.push_back(slot);
      inner_scope.push_back(name);
    }
    Compiler inner(externals_);
    inner.scope_ = std::move(inner_scope);
    inner.scope_.push_back(e->binder());
    inner.high_water_ = inner.scope_.size();
    AQL_ASSIGN_OR_RETURN(NodePtr body, inner.CompileNode(e->child(0)));
    return NodePtr(
        new LambdaNode(std::move(capture_slots), std::move(body), inner.high_water_));
  }

  const ExternalResolver& externals_;
  std::vector<std::string> scope_;
  size_t high_water_ = 0;
};

}  // namespace

Result<Value> Program::Run(std::vector<Value> args) const {
  obs::Span span("exec", "exec.run");
  Frame frame;
  frame.slots.resize(frame_size_);
  for (size_t i = 0; i < args.size() && i < frame.slots.size(); ++i) {
    frame.slots[i] = std::move(args[i]);
  }
  return root_->Run(&frame);
}

Result<Program> Compile(const ExprPtr& e, const ExternalResolver& externals,
                        const std::vector<std::string>& params) {
  obs::Span span("exec", "exec.compile");
  Compiler compiler(externals);
  return compiler.CompileProgram(e, params);
}

}  // namespace exec
}  // namespace aql
