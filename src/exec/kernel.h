// Fused scalar kernels for tabulation bodies.
//
// A tabulation [[ e | i1<d1, ..., ik<dk ]] whose body is a scalar
// expression over the loop indices, scalar frame slots, and subscripts of
// unboxed array slots can run as a tight typed loop that writes straight
// into the result's unboxed buffer — no per-element Value boxing, no
// Result<Value> allocation, no virtual Run() dispatch.
//
// Two stages keep this sound:
//
//   1. Compile time (BuildKernelSpec): a structural scan of the body Expr
//      admits only the closed kernel fragment — constants, binders, frame
//      slots, arithmetic, comparisons, if/then/else, and subscripts whose
//      array is a plain slot. Anything else (lambdas, sets, nested
//      tabulations, externals, ...) returns nullptr and the tabulation
//      uses the generic node interpreter.
//
//   2. Run time (Kernel::Instantiate): the spec is typed against the
//      concrete frame. Scalar slots freeze into constants; array slots
//      must hold an unboxed payload of matching rank. Type mismatches
//      (e.g. a slot holding a set, a boxed array, mixed arith operands)
//      reject instantiation, and the tabulation falls back to the generic
//      path — representation never changes semantics, only speed.
//
// Kernel evaluation returns false when the body value is ⊥ at some index
// (nat division/modulo by zero, out-of-bounds subscript). The caller then
// re-runs the whole tabulation generically, producing the partial array
// with per-point ⊥ holes that the semantics require.
//
// A third stage removes even those per-cell tests: AnnotateKernelSpec
// attaches static proofs (subscript in-range, divisor nonzero) from the
// abstract-interpretation framework (src/analysis/absint.h), and
// Instantiate re-validates them against the concrete frame. When every ⊥
// source is discharged the kernel reports unchecked() and exposes total
// Eval*Unchecked entry points — the §5 bound-check elimination, performed
// with a proof instead of a prayer. AQL_EXEC_UNCHECKED=0 disables the
// unchecked path at run time (docs/EXEC.md).

#ifndef AQL_EXEC_KERNEL_H_
#define AQL_EXEC_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/expr.h"
#include "exec/compiled.h"
#include "object/value.h"

namespace aql {
namespace exec {

// Compile-time shape of a kernelizable tabulation body.
struct KernelSpec {
  enum class Op : uint8_t {
    kNatConst,
    kRealConst,
    kBoolConst,
    kBinder,     // loop index j (value in `index`)
    kSlot,       // frame slot (value in `index`); type resolved at run time
    kArith,      // kids[0] op kids[1]
    kCmp,        // kids[0] op kids[1]
    kIf,          // kids[0] ? kids[1] : kids[2]
    kSubscript,   // kids[0] is the array (kSlot or kLiteralArr); kids[1..] nat indices
    kLiteralArr,  // inlined literal array (value in `literal`)
    kDimOf,       // extent `index` of the rank-`nat` array kids[0]
  };

  Op op;
  uint64_t nat = 0;
  double real = 0;
  bool boolean = false;
  size_t index = 0;  // binder position (kBinder), frame slot (kSlot), dim (kDimOf)
  ArithOp arith = ArithOp::kAdd;
  CmpOp cmp = CmpOp::kEq;
  Value literal;  // kLiteralArr only (vals inline as literals, §4 openness)
  std::vector<KernelSpec> kids;

  // Static proofs attached by AnnotateKernelSpec (analysis/absint.h),
  // consulted at instantiation to admit the unchecked evaluators:
  //   div_safe     kArith div/mod whose divisor is provably nonzero
  //   idx_proven   kSubscript, per dimension: index proven < extent
  //   idx_ub       kSubscript, per dimension: exclusive constant upper
  //                bound of the index (0 = none; a real bound is >= 1),
  //                checked against the concrete extent at instantiation
  bool div_safe = false;
  std::vector<uint8_t> idx_proven;
  std::vector<uint64_t> idx_ub;
};

// Maps a free-variable name to its frame slot (mirrors the compiler's
// scope lookup at the point of the tabulation body).
using SlotLookup = std::function<Result<size_t>(const std::string&)>;

// Builds the kernel spec for `body`, or nullptr if the body leaves the
// kernel fragment. `binder_slots` are the tabulation's index slots in
// binder order; variables bound to other slots become kSlot leaves.
std::unique_ptr<KernelSpec> BuildKernelSpec(const Expr& body,
                                            const std::vector<size_t>& binder_slots,
                                            const SlotLookup& lookup);

// Attaches bound/definedness proofs to a spec built from `tab`'s body
// (div_safe, idx_proven, idx_ub above), using the shared symbolic prover:
// tabulation binders are below their bounds, a conditional's test holds
// in its then-branch. Sound because the kernel fragment introduces no
// binders of its own — a name means the same frame slot everywhere — and
// the loop extents are the evaluated bounds. Called once at compile time.
// The relational affine domain (analysis/affine.h) tightens idx_ub and
// proves in-bounds where the syntactic provers give up (cancellation,
// exact division); when an affine fact is what closed the proof, an
// "unchecked-kernel-bounds" certificate is appended to `proof`.
void AnnotateKernelSpec(const Expr& tab, KernelSpec* spec,
                        analysis::Proof* proof = nullptr);

// A spec instantiated against one concrete frame: fully typed, slot
// scalars frozen to constants, subscript targets resolved to raw unboxed
// buffers (the backing Values are pinned for the kernel's lifetime).
class Kernel {
 public:
  enum class Type : uint8_t { kNat, kReal, kBool };

  // nullptr when the frame's values do not fit the spec (non-scalar slot,
  // boxed or rank-mismatched array, mixed operand types, ...).
  static std::unique_ptr<Kernel> Instantiate(const KernelSpec& spec, const Frame& frame);

  Type result_type() const { return root_.type; }

  // True when instantiation discharged every ⊥ source in the body — all
  // subscripts proven in-range against the concrete extents, all nat
  // div/mod divisors proven nonzero — so the Eval*Unchecked evaluators
  // below are total and the per-cell ⊥ protocol can be skipped.
  bool unchecked() const { return unchecked_; }

  // Evaluate the body at multi-index `idx` (binder order). Exactly one of
  // these matches result_type(); all return false when the value is ⊥.
  bool EvalNat(const uint64_t* idx, uint64_t* out) const;
  bool EvalReal(const uint64_t* idx, double* out) const;
  bool EvalBool(const uint64_t* idx, uint8_t* out) const;

  // Checkless evaluation: no per-cell bounds tests, no ⊥ signalling.
  // Callers must hold unchecked() == true.
  uint64_t EvalNatUnchecked(const uint64_t* idx) const;
  double EvalRealUnchecked(const uint64_t* idx) const;
  uint8_t EvalBoolUnchecked(const uint64_t* idx) const;

 private:
  struct RtNode {
    KernelSpec::Op op;
    Type type;
    uint64_t nat = 0;
    double real = 0;
    uint8_t boolean = 0;
    size_t binder = 0;
    ArithOp arith = ArithOp::kAdd;
    CmpOp cmp = CmpOp::kEq;
    const ArrayRep* arr = nullptr;  // kSubscript: dims + unboxed buffer
    std::vector<RtNode> kids;
  };

  Kernel() = default;

  static bool Build(const KernelSpec& spec, const Frame& frame,
                    std::vector<Value>* pinned, RtNode* out, bool* unchecked);

  static bool NatAt(const RtNode& n, const uint64_t* idx, uint64_t* out);
  static bool RealAt(const RtNode& n, const uint64_t* idx, double* out);
  static bool BoolAt(const RtNode& n, const uint64_t* idx, uint8_t* out);
  static bool SubscriptFlat(const RtNode& n, const uint64_t* idx, uint64_t* flat);

  static uint64_t NatAtU(const RtNode& n, const uint64_t* idx);
  static double RealAtU(const RtNode& n, const uint64_t* idx);
  static uint8_t BoolAtU(const RtNode& n, const uint64_t* idx);
  static uint64_t FlatU(const RtNode& n, const uint64_t* idx);

  RtNode root_;
  std::vector<Value> pinned_;  // keeps subscripted arrays alive
  bool unchecked_ = false;
};

}  // namespace exec
}  // namespace aql

#endif  // AQL_EXEC_KERNEL_H_
