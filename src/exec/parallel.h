// Data-parallel helpers for the compiled exec backend.
//
// ParallelFor(total, fn) partitions [0, total) into contiguous chunks and
// runs `fn(begin, end)` on each, using a process-wide ThreadPool shared by
// all queries. The calling thread always participates: pool tasks are
// optional helpers claimed from a shared atomic cursor, so a full pool (or
// nested parallelism) degrades to the caller running every chunk itself —
// never a deadlock, never a refusal.
//
// Contract:
//   - fn must write only to disjoint state per [begin, end) range;
//     the row-major output placement of tabulation makes that natural.
//   - Worker tasks run under the caller's CancelToken (re-installed via
//     ExecScope), so deadlines and cancellation bite inside chunks too.
//   - The returned Status is the first non-OK status in *chunk order*,
//     which for a lowest-index-wins error discipline equals the error the
//     sequential loop would have produced.
//
// Thread count comes from AQL_EXEC_THREADS (default: hardware
// concurrency), re-read on every call so tests can flip it in-process.
// AQL_EXEC_PAR_THRESHOLD overrides the minimum element count below which
// loops stay sequential.

#ifndef AQL_EXEC_PARALLEL_H_
#define AQL_EXEC_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "base/status.h"

namespace aql {
namespace exec {

// Effective worker count for data-parallel loops (>= 1).
int ExecThreads();

// Minimum element count for going parallel (AQL_EXEC_PAR_THRESHOLD,
// default 4096).
uint64_t ParThreshold();

// True iff a loop over `total` elements should run in parallel under the
// current environment (threads > 1 and total >= threshold).
bool ShouldParallelize(uint64_t total);

// Runs fn over contiguous chunks covering [0, total). Blocks until every
// chunk has finished (even on error or cancellation: later chunks see the
// failure flag and return early, but are still accounted for). fn must be
// safe to call concurrently from multiple threads.
Status ParallelFor(uint64_t total, const std::function<Status(uint64_t, uint64_t)>& fn);

// Monotonic counters for the service metrics bridge (exec cannot depend on
// service, so service polls these). Relaxed ordering: they are statistics,
// not synchronization.
struct ExecStats {
  std::atomic<uint64_t> par_tasks{0};      // ParallelFor invocations that went parallel
  std::atomic<uint64_t> par_chunks{0};     // chunks executed by parallel loops
  std::atomic<uint64_t> unboxed_arrays{0};  // arrays materialized with an unboxed payload
  std::atomic<uint64_t> unchecked_kernels{0};  // tabulations run without per-cell checks
  std::atomic<uint64_t> tab_pushdowns{0};  // tabs served by one bulk tile-store range read
};
ExecStats& GlobalExecStats();

}  // namespace exec
}  // namespace aql

#endif  // AQL_EXEC_PARALLEL_H_
