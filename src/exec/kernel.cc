#include "exec/kernel.h"

#include <cmath>
#include <optional>
#include <string>

#include "analysis/absint.h"
#include "analysis/affine.h"
#include "base/strings.h"

namespace aql {
namespace exec {

namespace {

// Resolves a kDim-rooted expression to a kDimOf spec leaf when the array
// operand is itself admissible (a non-binder frame slot or a literal
// array). `rank`/`j` come from the surrounding kDim/kProj.
bool BuildDimOf(const Expr& arr, size_t rank, size_t j,
                const std::vector<size_t>& binder_slots, const SlotLookup& lookup,
                KernelSpec* out) {
  out->op = KernelSpec::Op::kDimOf;
  out->nat = rank;
  out->index = j;
  out->kids.resize(1);
  if (arr.is(ExprKind::kVar)) {
    Result<size_t> slot = lookup(arr.var_name());
    if (!slot.ok()) return false;
    for (size_t b : binder_slots) {
      if (b == slot.value()) return false;  // a binder is a nat, not an array
    }
    out->kids[0].op = KernelSpec::Op::kSlot;
    out->kids[0].index = slot.value();
    return true;
  }
  if (arr.is(ExprKind::kLiteral) && arr.literal().kind() == ValueKind::kArray) {
    out->kids[0].op = KernelSpec::Op::kLiteralArr;
    out->kids[0].literal = arr.literal();
    return true;
  }
  return false;
}

// Structural admission of the kernel fragment. Mirrors the runtime nodes
// of compiled.cc exactly where it matters: nat arithmetic wraps, monus
// truncates, nat div/mod by zero is ⊥, real div by zero is IEEE (not ⊥),
// comparisons are the 3-way `x<y ? -1 : y<x ? 1 : 0` (so NaN compares
// equal to everything, as in Value::Compare).
bool BuildSpec(const Expr& e, const std::vector<size_t>& binder_slots,
               const SlotLookup& lookup, KernelSpec* out) {
  switch (e.kind()) {
    case ExprKind::kNatConst:
      out->op = KernelSpec::Op::kNatConst;
      out->nat = e.nat_const();
      return true;
    case ExprKind::kRealConst:
      out->op = KernelSpec::Op::kRealConst;
      out->real = e.real_const();
      return true;
    case ExprKind::kBoolConst:
      out->op = KernelSpec::Op::kBoolConst;
      out->boolean = e.bool_const();
      return true;
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      switch (v.kind()) {
        case ValueKind::kNat:
          out->op = KernelSpec::Op::kNatConst;
          out->nat = v.nat_value();
          return true;
        case ValueKind::kReal:
          out->op = KernelSpec::Op::kRealConst;
          out->real = v.real_value();
          return true;
        case ValueKind::kBool:
          out->op = KernelSpec::Op::kBoolConst;
          out->boolean = v.bool_value();
          return true;
        default:
          return false;
      }
    }
    case ExprKind::kVar: {
      Result<size_t> slot = lookup(e.var_name());
      if (!slot.ok()) return false;
      // Innermost binding wins, and binder slots are the innermost scope
      // at the body, so a binder-slot hit is exactly a loop index.
      for (size_t j = 0; j < binder_slots.size(); ++j) {
        if (binder_slots[j] == slot.value()) {
          out->op = KernelSpec::Op::kBinder;
          out->index = j;
          return true;
        }
      }
      out->op = KernelSpec::Op::kSlot;
      out->index = slot.value();
      return true;
    }
    case ExprKind::kArith: {
      out->op = KernelSpec::Op::kArith;
      out->arith = e.arith_op();
      out->kids.resize(2);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]);
    }
    case ExprKind::kCmp: {
      out->op = KernelSpec::Op::kCmp;
      out->cmp = e.cmp_op();
      out->kids.resize(2);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]);
    }
    case ExprKind::kIf: {
      out->op = KernelSpec::Op::kIf;
      out->kids.resize(3);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]) &&
             BuildSpec(*e.child(2), binder_slots, lookup, &out->kids[2]);
    }
    case ExprKind::kSubscript: {
      // Subscripts of a plain variable (the array sits in a frame slot,
      // resolved once at instantiation) or of an inlined literal array
      // (what a top-level val becomes after name resolution).
      const Expr& arr = *e.child(0);
      out->op = KernelSpec::Op::kSubscript;
      out->kids.resize(1);
      if (arr.is(ExprKind::kVar)) {
        Result<size_t> slot = lookup(arr.var_name());
        if (!slot.ok()) return false;
        for (size_t b : binder_slots) {
          if (b == slot.value()) return false;  // a binder is a nat, not an array
        }
        out->kids[0].op = KernelSpec::Op::kSlot;
        out->kids[0].index = slot.value();
      } else if (arr.is(ExprKind::kLiteral) &&
                 arr.literal().kind() == ValueKind::kArray) {
        out->kids[0].op = KernelSpec::Op::kLiteralArr;
        out->kids[0].literal = arr.literal();
      } else {
        return false;
      }
      const Expr& idx = *e.child(1);
      if (idx.is(ExprKind::kTuple)) {
        for (const ExprPtr& c : idx.children()) {
          out->kids.emplace_back();
          if (!BuildSpec(*c, binder_slots, lookup, &out->kids.back())) return false;
        }
      } else {
        out->kids.emplace_back();
        if (!BuildSpec(idx, binder_slots, lookup, &out->kids.back())) return false;
      }
      return true;
    }
    case ExprKind::kDim:
      // dim!1 a: the extent of a rank-1 array — what index arithmetic like
      // `A[(i + 1) % dim!1 A]` needs in scope. Higher ranks arrive through
      // the kProj case below.
      if (e.rank() != 1) return false;
      return BuildDimOf(*e.child(0), 1, 0, binder_slots, lookup, out);
    case ExprKind::kProj: {
      // pi_j(dim!k a): one extent of a rank-k array.
      const Expr& d = *e.child(0);
      if (!d.is(ExprKind::kDim) || d.rank() != e.proj_arity()) return false;
      return BuildDimOf(*d.child(0), d.rank(), e.proj_index() - 1, binder_slots,
                        lookup, out);
    }
    default:
      return false;
  }
}

}  // namespace

std::unique_ptr<KernelSpec> BuildKernelSpec(const Expr& body,
                                            const std::vector<size_t>& binder_slots,
                                            const SlotLookup& lookup) {
  auto spec = std::make_unique<KernelSpec>();
  if (!BuildSpec(body, binder_slots, lookup, spec.get())) return nullptr;
  return spec;
}

// ---------- static proof annotation ----------

namespace {

// Divisor of a nat div/mod proven nonzero: a nonzero constant, or a
// control path that established `0 < d`. (A real divisor never needs this
// — IEEE division is total.)
bool DivisorProvenNonzero(const ExprPtr& d, const analysis::SymEnv& env) {
  if (d->is(ExprKind::kNatConst)) return d->nat_const() != 0;
  if (d->is(ExprKind::kLiteral) && d->literal().kind() == ValueKind::kNat) {
    return d->literal().nat_value() != 0;
  }
  if (d->is(ExprKind::kRealConst)) return true;
  if (d->is(ExprKind::kLiteral) && d->literal().kind() == ValueKind::kReal) {
    return true;
  }
  return analysis::ProveLt(Expr::NatConst(0), d, env);
}

// Walks the body expression and its spec in lockstep (BuildSpec maps the
// admitted fragment one-to-one), attaching proofs under the environment
// of tabulation-binder bounds and enclosing guard conditions.
void AnnotateNode(const ExprPtr& e, const analysis::SymEnv& env, KernelSpec* spec,
                  analysis::Proof* proof) {
  switch (spec->op) {
    case KernelSpec::Op::kArith: {
      if (!e->is(ExprKind::kArith) || spec->kids.size() != 2) return;
      if (e->arith_op() == ArithOp::kDiv || e->arith_op() == ArithOp::kMod) {
        spec->div_safe = DivisorProvenNonzero(e->child(1), env);
      }
      AnnotateNode(e->child(0), env, &spec->kids[0], proof);
      AnnotateNode(e->child(1), env, &spec->kids[1], proof);
      return;
    }
    case KernelSpec::Op::kCmp: {
      if (!e->is(ExprKind::kCmp) || spec->kids.size() != 2) return;
      AnnotateNode(e->child(0), env, &spec->kids[0], proof);
      AnnotateNode(e->child(1), env, &spec->kids[1], proof);
      return;
    }
    case KernelSpec::Op::kIf: {
      if (!e->is(ExprKind::kIf) || spec->kids.size() != 3) return;
      AnnotateNode(e->child(0), env, &spec->kids[0], proof);
      analysis::SymEnv then_env = env;
      then_env.true_conds.push_back(e->child(0));
      AnnotateNode(e->child(1), then_env, &spec->kids[1], proof);
      AnnotateNode(e->child(2), env, &spec->kids[2], proof);
      return;
    }
    case KernelSpec::Op::kSubscript: {
      if (!e->is(ExprKind::kSubscript) || spec->kids.size() < 2) return;
      size_t k = spec->kids.size() - 1;
      const ExprPtr& idx = e->child(1);
      std::vector<ExprPtr> parts;
      if (k == 1 && !idx->is(ExprKind::kTuple)) {
        parts.push_back(idx);
      } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
        for (const ExprPtr& c : idx->children()) parts.push_back(c);
      } else {
        return;  // shape mismatch; leave unproven
      }
      spec->idx_proven.assign(k, 0);
      spec->idx_ub.assign(k, 0);
      std::vector<std::string> affine_facts;
      for (size_t j = 0; j < k; ++j) {
        const ExprPtr ext = analysis::DimExtentExpr(e->child(0), j, k);
        spec->idx_proven[j] = analysis::ProveLt(parts[j], ext, env) ? 1 : 0;
        // Take the tighter of the syntactic and the relational bound: the
        // affine interval sees through cancellation (`i*2 - i`) and exact
        // division (`(i*4)/2`) that ConstUpperBound folds away to ⊤.
        const uint64_t cub = analysis::ConstUpperBound(parts[j], env).value_or(0);
        const std::optional<uint64_t> aub = analysis::AffineUpperBound(parts[j], env);
        uint64_t ub = cub;
        bool affine_used = false;
        if (aub.has_value() && (cub == 0 || *aub < cub)) {
          ub = *aub;
          affine_used = true;
        }
        spec->idx_ub[j] = ub;
        if (spec->idx_proven[j] == 0 && aub.has_value() &&
            ext->is(ExprKind::kNatConst) && *aub <= ext->nat_const()) {
          spec->idx_proven[j] = 1;
          affine_used = true;
        }
        if (affine_used) {
          std::string fact = StrCat("dim ", j, ": index ",
                                    analysis::AffineOf(parts[j], env).ToString());
          if (spec->idx_proven[j] && ext->is(ExprKind::kNatConst)) {
            fact += StrCat(" proves in-bounds vs extent ", ext->nat_const());
          } else {
            fact += StrCat(", affine upper bound ", ub);
          }
          affine_facts.push_back(std::move(fact));
        }
        AnnotateNode(parts[j], env, &spec->kids[1 + j], proof);
      }
      if (proof != nullptr && !affine_facts.empty()) {
        proof->Add("unchecked-kernel-bounds",
                   StrCat("subscript of ",
                          analysis::RenderArrayExpr(e->child(0))),
                   std::move(affine_facts));
      }
      return;
    }
    default:
      return;  // leaves (consts, binders, slots, kDimOf) carry no proofs
  }
}

}  // namespace

void AnnotateKernelSpec(const Expr& tab, KernelSpec* spec, analysis::Proof* proof) {
  if (!tab.is(ExprKind::kTab)) return;
  analysis::SymEnv env;
  ExprPtr tab_ptr = tab.shared_from_this();
  analysis::AddBinderFacts(tab_ptr, 0, &env);  // binders below their bounds
  AnnotateNode(tab.tab_body(), env, spec, proof);
}

// ---------- runtime instantiation ----------

bool Kernel::Build(const KernelSpec& spec, const Frame& frame,
                   std::vector<Value>* pinned, RtNode* out, bool* unchecked) {
  out->op = spec.op;
  switch (spec.op) {
    case KernelSpec::Op::kNatConst:
      out->type = Type::kNat;
      out->nat = spec.nat;
      return true;
    case KernelSpec::Op::kRealConst:
      out->type = Type::kReal;
      out->real = spec.real;
      return true;
    case KernelSpec::Op::kBoolConst:
      out->type = Type::kBool;
      out->boolean = spec.boolean ? 1 : 0;
      return true;
    case KernelSpec::Op::kBinder:
      out->type = Type::kNat;
      out->binder = spec.index;
      return true;
    case KernelSpec::Op::kSlot: {
      // Scalar slots freeze into constants for the whole loop (the
      // tabulation only rebinds its binder slots).
      if (spec.index >= frame.slots.size()) return false;
      const Value& v = frame.slots[spec.index];
      switch (v.kind()) {
        case ValueKind::kNat:
          out->op = KernelSpec::Op::kNatConst;
          out->type = Type::kNat;
          out->nat = v.nat_value();
          return true;
        case ValueKind::kReal:
          out->op = KernelSpec::Op::kRealConst;
          out->type = Type::kReal;
          out->real = v.real_value();
          return true;
        case ValueKind::kBool:
          out->op = KernelSpec::Op::kBoolConst;
          out->type = Type::kBool;
          out->boolean = v.bool_value() ? 1 : 0;
          return true;
        default:
          return false;
      }
    }
    case KernelSpec::Op::kArith: {
      out->arith = spec.arith;
      out->kids.resize(2);
      if (!Build(spec.kids[0], frame, pinned, &out->kids[0], unchecked) ||
          !Build(spec.kids[1], frame, pinned, &out->kids[1], unchecked)) {
        return false;
      }
      if (out->kids[0].type != out->kids[1].type) return false;
      if (out->kids[0].type == Type::kBool) return false;
      out->type = out->kids[0].type;
      if ((spec.arith == ArithOp::kDiv || spec.arith == ArithOp::kMod) &&
          out->type == Type::kNat) {
        // ⊥ source: nat division by zero. Discharged by a static proof or
        // a divisor frozen to a nonzero constant at instantiation.
        bool safe = spec.div_safe || (out->kids[1].op == KernelSpec::Op::kNatConst &&
                                      out->kids[1].nat != 0);
        if (!safe) *unchecked = false;
      }
      return true;
    }
    case KernelSpec::Op::kCmp: {
      out->cmp = spec.cmp;
      out->kids.resize(2);
      if (!Build(spec.kids[0], frame, pinned, &out->kids[0], unchecked) ||
          !Build(spec.kids[1], frame, pinned, &out->kids[1], unchecked)) {
        return false;
      }
      if (out->kids[0].type != out->kids[1].type) return false;
      out->type = Type::kBool;
      return true;
    }
    case KernelSpec::Op::kIf: {
      out->kids.resize(3);
      for (size_t i = 0; i < 3; ++i) {
        if (!Build(spec.kids[i], frame, pinned, &out->kids[i], unchecked)) return false;
      }
      if (out->kids[0].type != Type::kBool) return false;
      if (out->kids[1].type != out->kids[2].type) return false;
      out->type = out->kids[1].type;
      return true;
    }
    case KernelSpec::Op::kSubscript: {
      const Value* src;
      if (spec.kids[0].op == KernelSpec::Op::kLiteralArr) {
        src = &spec.kids[0].literal;
      } else {
        size_t slot = spec.kids[0].index;
        if (slot >= frame.slots.size()) return false;
        src = &frame.slots[slot];
      }
      const Value& v = *src;
      if (v.kind() != ValueKind::kArray) return false;
      const ArrayRep& a = v.array();
      if (!a.unboxed()) return false;
      size_t rank = spec.kids.size() - 1;
      if (a.dims.size() != rank) return false;
      pinned->push_back(v);  // keep the buffer alive for the kernel
      out->arr = &pinned->back().array();
      switch (a.payload) {
        case ArrayRep::Payload::kNats: out->type = Type::kNat; break;
        case ArrayRep::Payload::kReals: out->type = Type::kReal; break;
        case ArrayRep::Payload::kBools: out->type = Type::kBool; break;
        case ArrayRep::Payload::kBoxed: return false;
        // Tiled slabs have no flat buffer for the kernel to index; the
        // interpreter path (with its tile memo) handles them.
        case ArrayRep::Payload::kTiled: return false;
      }
      out->kids.resize(rank);
      for (size_t i = 0; i < rank; ++i) {
        if (!Build(spec.kids[1 + i], frame, pinned, &out->kids[i], unchecked)) return false;
        if (out->kids[i].type != Type::kNat) return false;
        // ⊥ source: out-of-bounds index. Discharged by a symbolic proof
        // against the extent, by a constant bound validated against the
        // concrete extent, or by an index frozen to an in-range constant.
        bool safe =
            (i < spec.idx_proven.size() && spec.idx_proven[i] != 0) ||
            (i < spec.idx_ub.size() && spec.idx_ub[i] != 0 &&
             spec.idx_ub[i] <= a.dims[i]) ||
            (out->kids[i].op == KernelSpec::Op::kNatConst &&
             out->kids[i].nat < a.dims[i]);
        if (!safe) *unchecked = false;
      }
      return true;
    }
    case KernelSpec::Op::kDimOf: {
      // The extent of an array slot: a plain nat, known in-range by
      // construction (never a ⊥ source). Unlike kSubscript the payload
      // may be boxed — only the dims vector is read.
      const Value* src;
      if (spec.kids[0].op == KernelSpec::Op::kLiteralArr) {
        src = &spec.kids[0].literal;
      } else {
        size_t slot = spec.kids[0].index;
        if (slot >= frame.slots.size()) return false;
        src = &frame.slots[slot];
      }
      const Value& v = *src;
      if (v.kind() != ValueKind::kArray) return false;
      const ArrayRep& a = v.array();
      if (a.dims.size() != spec.nat || spec.index >= a.dims.size()) return false;
      // Freeze the extent: dims are immutable for the kernel's lifetime.
      out->op = KernelSpec::Op::kNatConst;
      out->type = Type::kNat;
      out->nat = a.dims[spec.index];
      return true;
    }
    case KernelSpec::Op::kLiteralArr:
      return false;  // only legal as a kSubscript's array operand
  }
  return false;
}

std::unique_ptr<Kernel> Kernel::Instantiate(const KernelSpec& spec, const Frame& frame) {
  std::unique_ptr<Kernel> k(new Kernel());
  // The ArrayRep pointers taken while building stay valid as pinned_
  // grows: each rep is heap-owned by its Value's shared_ptr.
  bool unchecked = true;
  if (!Build(spec, frame, &k->pinned_, &k->root_, &unchecked)) return nullptr;
  k->unchecked_ = unchecked;
  return k;
}

// ---------- evaluation ----------

bool Kernel::SubscriptFlat(const RtNode& n, const uint64_t* idx, uint64_t* flat) {
  const ArrayRep& a = *n.arr;
  uint64_t f = 0;
  for (size_t i = 0; i < n.kids.size(); ++i) {
    uint64_t v;
    if (!NatAt(n.kids[i], idx, &v)) return false;
    if (v >= a.dims[i]) return false;  // out of bounds: ⊥
    f = f * a.dims[i] + v;
  }
  *flat = f;
  return true;
}

bool Kernel::NatAt(const RtNode& n, const uint64_t* idx, uint64_t* out) {
  switch (n.op) {
    case KernelSpec::Op::kNatConst:
      *out = n.nat;
      return true;
    case KernelSpec::Op::kBinder:
      *out = idx[n.binder];
      return true;
    case KernelSpec::Op::kArith: {
      uint64_t x, y;
      if (!NatAt(n.kids[0], idx, &x) || !NatAt(n.kids[1], idx, &y)) return false;
      switch (n.arith) {
        case ArithOp::kAdd: *out = x + y; return true;
        case ArithOp::kMonus: *out = x >= y ? x - y : 0; return true;
        case ArithOp::kMul: *out = x * y; return true;
        case ArithOp::kDiv:
          if (y == 0) return false;
          *out = x / y;
          return true;
        case ArithOp::kMod:
          if (y == 0) return false;
          *out = x % y;
          return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return NatAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->nats[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::RealAt(const RtNode& n, const uint64_t* idx, double* out) {
  switch (n.op) {
    case KernelSpec::Op::kRealConst:
      *out = n.real;
      return true;
    case KernelSpec::Op::kArith: {
      double x, y;
      if (!RealAt(n.kids[0], idx, &x) || !RealAt(n.kids[1], idx, &y)) return false;
      switch (n.arith) {
        case ArithOp::kAdd: *out = x + y; return true;
        case ArithOp::kMonus: *out = x - y; return true;
        case ArithOp::kMul: *out = x * y; return true;
        case ArithOp::kDiv: *out = x / y; return true;  // IEEE inf, not ⊥
        case ArithOp::kMod: *out = std::fmod(x, y); return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return RealAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->reals[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::BoolAt(const RtNode& n, const uint64_t* idx, uint8_t* out) {
  switch (n.op) {
    case KernelSpec::Op::kBoolConst:
      *out = n.boolean;
      return true;
    case KernelSpec::Op::kCmp: {
      int c;
      switch (n.kids[0].type) {
        case Type::kNat: {
          uint64_t x, y;
          if (!NatAt(n.kids[0], idx, &x) || !NatAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
        case Type::kReal: {
          double x, y;
          if (!RealAt(n.kids[0], idx, &x) || !RealAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;  // NaN compares equal, like Cmp3
          break;
        }
        case Type::kBool: {
          uint8_t x, y;
          if (!BoolAt(n.kids[0], idx, &x) || !BoolAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
        default:
          return false;
      }
      switch (n.cmp) {
        case CmpOp::kEq: *out = c == 0; return true;
        case CmpOp::kNe: *out = c != 0; return true;
        case CmpOp::kLt: *out = c < 0; return true;
        case CmpOp::kLe: *out = c <= 0; return true;
        case CmpOp::kGt: *out = c > 0; return true;
        case CmpOp::kGe: *out = c >= 0; return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return BoolAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->bools[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::EvalNat(const uint64_t* idx, uint64_t* out) const {
  return NatAt(root_, idx, out);
}
bool Kernel::EvalReal(const uint64_t* idx, double* out) const {
  return RealAt(root_, idx, out);
}
bool Kernel::EvalBool(const uint64_t* idx, uint8_t* out) const {
  return BoolAt(root_, idx, out);
}

// ---------- unchecked evaluation ----------
//
// Mirrors the checked evaluators minus the ⊥ protocol: no per-dimension
// bounds tests, no zero-divisor tests, values returned directly. Only
// reachable behind unchecked() — instantiation proved every subscript
// in-range against the concrete extents and every nat divisor nonzero.

uint64_t Kernel::FlatU(const RtNode& n, const uint64_t* idx) {
  const ArrayRep& a = *n.arr;
  uint64_t f = 0;
  for (size_t i = 0; i < n.kids.size(); ++i) {
    f = f * a.dims[i] + NatAtU(n.kids[i], idx);
  }
  return f;
}

uint64_t Kernel::NatAtU(const RtNode& n, const uint64_t* idx) {
  switch (n.op) {
    case KernelSpec::Op::kNatConst:
      return n.nat;
    case KernelSpec::Op::kBinder:
      return idx[n.binder];
    case KernelSpec::Op::kArith: {
      uint64_t x = NatAtU(n.kids[0], idx);
      uint64_t y = NatAtU(n.kids[1], idx);
      switch (n.arith) {
        case ArithOp::kAdd: return x + y;
        case ArithOp::kMonus: return x >= y ? x - y : 0;
        case ArithOp::kMul: return x * y;
        case ArithOp::kDiv: return x / y;
        case ArithOp::kMod: return x % y;
      }
      return 0;
    }
    case KernelSpec::Op::kIf:
      return NatAtU(n.kids[BoolAtU(n.kids[0], idx) ? 1 : 2], idx);
    case KernelSpec::Op::kSubscript:
      return n.arr->nats[FlatU(n, idx)];
    default:
      return 0;
  }
}

double Kernel::RealAtU(const RtNode& n, const uint64_t* idx) {
  switch (n.op) {
    case KernelSpec::Op::kRealConst:
      return n.real;
    case KernelSpec::Op::kArith: {
      double x = RealAtU(n.kids[0], idx);
      double y = RealAtU(n.kids[1], idx);
      switch (n.arith) {
        case ArithOp::kAdd: return x + y;
        case ArithOp::kMonus: return x - y;
        case ArithOp::kMul: return x * y;
        case ArithOp::kDiv: return x / y;  // IEEE inf, not ⊥
        case ArithOp::kMod: return std::fmod(x, y);
      }
      return 0;
    }
    case KernelSpec::Op::kIf:
      return RealAtU(n.kids[BoolAtU(n.kids[0], idx) ? 1 : 2], idx);
    case KernelSpec::Op::kSubscript:
      return n.arr->reals[FlatU(n, idx)];
    default:
      return 0;
  }
}

uint8_t Kernel::BoolAtU(const RtNode& n, const uint64_t* idx) {
  switch (n.op) {
    case KernelSpec::Op::kBoolConst:
      return n.boolean;
    case KernelSpec::Op::kCmp: {
      int c = 0;
      switch (n.kids[0].type) {
        case Type::kNat: {
          uint64_t x = NatAtU(n.kids[0], idx);
          uint64_t y = NatAtU(n.kids[1], idx);
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
        case Type::kReal: {
          double x = RealAtU(n.kids[0], idx);
          double y = RealAtU(n.kids[1], idx);
          c = x < y ? -1 : y < x ? 1 : 0;  // NaN compares equal, like Cmp3
          break;
        }
        case Type::kBool: {
          uint8_t x = BoolAtU(n.kids[0], idx);
          uint8_t y = BoolAtU(n.kids[1], idx);
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
      }
      switch (n.cmp) {
        case CmpOp::kEq: return c == 0;
        case CmpOp::kNe: return c != 0;
        case CmpOp::kLt: return c < 0;
        case CmpOp::kLe: return c <= 0;
        case CmpOp::kGt: return c > 0;
        case CmpOp::kGe: return c >= 0;
      }
      return 0;
    }
    case KernelSpec::Op::kIf:
      return BoolAtU(n.kids[BoolAtU(n.kids[0], idx) ? 1 : 2], idx);
    case KernelSpec::Op::kSubscript:
      return n.arr->bools[FlatU(n, idx)];
    default:
      return 0;
  }
}

uint64_t Kernel::EvalNatUnchecked(const uint64_t* idx) const {
  return NatAtU(root_, idx);
}
double Kernel::EvalRealUnchecked(const uint64_t* idx) const {
  return RealAtU(root_, idx);
}
uint8_t Kernel::EvalBoolUnchecked(const uint64_t* idx) const {
  return BoolAtU(root_, idx);
}

}  // namespace exec
}  // namespace aql
