#include "exec/kernel.h"

#include <cmath>

namespace aql {
namespace exec {

namespace {

// Structural admission of the kernel fragment. Mirrors the runtime nodes
// of compiled.cc exactly where it matters: nat arithmetic wraps, monus
// truncates, nat div/mod by zero is ⊥, real div by zero is IEEE (not ⊥),
// comparisons are the 3-way `x<y ? -1 : y<x ? 1 : 0` (so NaN compares
// equal to everything, as in Value::Compare).
bool BuildSpec(const Expr& e, const std::vector<size_t>& binder_slots,
               const SlotLookup& lookup, KernelSpec* out) {
  switch (e.kind()) {
    case ExprKind::kNatConst:
      out->op = KernelSpec::Op::kNatConst;
      out->nat = e.nat_const();
      return true;
    case ExprKind::kRealConst:
      out->op = KernelSpec::Op::kRealConst;
      out->real = e.real_const();
      return true;
    case ExprKind::kBoolConst:
      out->op = KernelSpec::Op::kBoolConst;
      out->boolean = e.bool_const();
      return true;
    case ExprKind::kLiteral: {
      const Value& v = e.literal();
      switch (v.kind()) {
        case ValueKind::kNat:
          out->op = KernelSpec::Op::kNatConst;
          out->nat = v.nat_value();
          return true;
        case ValueKind::kReal:
          out->op = KernelSpec::Op::kRealConst;
          out->real = v.real_value();
          return true;
        case ValueKind::kBool:
          out->op = KernelSpec::Op::kBoolConst;
          out->boolean = v.bool_value();
          return true;
        default:
          return false;
      }
    }
    case ExprKind::kVar: {
      Result<size_t> slot = lookup(e.var_name());
      if (!slot.ok()) return false;
      // Innermost binding wins, and binder slots are the innermost scope
      // at the body, so a binder-slot hit is exactly a loop index.
      for (size_t j = 0; j < binder_slots.size(); ++j) {
        if (binder_slots[j] == slot.value()) {
          out->op = KernelSpec::Op::kBinder;
          out->index = j;
          return true;
        }
      }
      out->op = KernelSpec::Op::kSlot;
      out->index = slot.value();
      return true;
    }
    case ExprKind::kArith: {
      out->op = KernelSpec::Op::kArith;
      out->arith = e.arith_op();
      out->kids.resize(2);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]);
    }
    case ExprKind::kCmp: {
      out->op = KernelSpec::Op::kCmp;
      out->cmp = e.cmp_op();
      out->kids.resize(2);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]);
    }
    case ExprKind::kIf: {
      out->op = KernelSpec::Op::kIf;
      out->kids.resize(3);
      return BuildSpec(*e.child(0), binder_slots, lookup, &out->kids[0]) &&
             BuildSpec(*e.child(1), binder_slots, lookup, &out->kids[1]) &&
             BuildSpec(*e.child(2), binder_slots, lookup, &out->kids[2]);
    }
    case ExprKind::kSubscript: {
      // Subscripts of a plain variable (the array sits in a frame slot,
      // resolved once at instantiation) or of an inlined literal array
      // (what a top-level val becomes after name resolution).
      const Expr& arr = *e.child(0);
      out->op = KernelSpec::Op::kSubscript;
      out->kids.resize(1);
      if (arr.is(ExprKind::kVar)) {
        Result<size_t> slot = lookup(arr.var_name());
        if (!slot.ok()) return false;
        for (size_t b : binder_slots) {
          if (b == slot.value()) return false;  // a binder is a nat, not an array
        }
        out->kids[0].op = KernelSpec::Op::kSlot;
        out->kids[0].index = slot.value();
      } else if (arr.is(ExprKind::kLiteral) &&
                 arr.literal().kind() == ValueKind::kArray) {
        out->kids[0].op = KernelSpec::Op::kLiteralArr;
        out->kids[0].literal = arr.literal();
      } else {
        return false;
      }
      const Expr& idx = *e.child(1);
      if (idx.is(ExprKind::kTuple)) {
        for (const ExprPtr& c : idx.children()) {
          out->kids.emplace_back();
          if (!BuildSpec(*c, binder_slots, lookup, &out->kids.back())) return false;
        }
      } else {
        out->kids.emplace_back();
        if (!BuildSpec(idx, binder_slots, lookup, &out->kids.back())) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

std::unique_ptr<KernelSpec> BuildKernelSpec(const Expr& body,
                                            const std::vector<size_t>& binder_slots,
                                            const SlotLookup& lookup) {
  auto spec = std::make_unique<KernelSpec>();
  if (!BuildSpec(body, binder_slots, lookup, spec.get())) return nullptr;
  return spec;
}

// ---------- runtime instantiation ----------

bool Kernel::Build(const KernelSpec& spec, const Frame& frame,
                   std::vector<Value>* pinned, RtNode* out) {
  out->op = spec.op;
  switch (spec.op) {
    case KernelSpec::Op::kNatConst:
      out->type = Type::kNat;
      out->nat = spec.nat;
      return true;
    case KernelSpec::Op::kRealConst:
      out->type = Type::kReal;
      out->real = spec.real;
      return true;
    case KernelSpec::Op::kBoolConst:
      out->type = Type::kBool;
      out->boolean = spec.boolean ? 1 : 0;
      return true;
    case KernelSpec::Op::kBinder:
      out->type = Type::kNat;
      out->binder = spec.index;
      return true;
    case KernelSpec::Op::kSlot: {
      // Scalar slots freeze into constants for the whole loop (the
      // tabulation only rebinds its binder slots).
      if (spec.index >= frame.slots.size()) return false;
      const Value& v = frame.slots[spec.index];
      switch (v.kind()) {
        case ValueKind::kNat:
          out->op = KernelSpec::Op::kNatConst;
          out->type = Type::kNat;
          out->nat = v.nat_value();
          return true;
        case ValueKind::kReal:
          out->op = KernelSpec::Op::kRealConst;
          out->type = Type::kReal;
          out->real = v.real_value();
          return true;
        case ValueKind::kBool:
          out->op = KernelSpec::Op::kBoolConst;
          out->type = Type::kBool;
          out->boolean = v.bool_value() ? 1 : 0;
          return true;
        default:
          return false;
      }
    }
    case KernelSpec::Op::kArith: {
      out->arith = spec.arith;
      out->kids.resize(2);
      if (!Build(spec.kids[0], frame, pinned, &out->kids[0]) ||
          !Build(spec.kids[1], frame, pinned, &out->kids[1])) {
        return false;
      }
      if (out->kids[0].type != out->kids[1].type) return false;
      if (out->kids[0].type == Type::kBool) return false;
      out->type = out->kids[0].type;
      return true;
    }
    case KernelSpec::Op::kCmp: {
      out->cmp = spec.cmp;
      out->kids.resize(2);
      if (!Build(spec.kids[0], frame, pinned, &out->kids[0]) ||
          !Build(spec.kids[1], frame, pinned, &out->kids[1])) {
        return false;
      }
      if (out->kids[0].type != out->kids[1].type) return false;
      out->type = Type::kBool;
      return true;
    }
    case KernelSpec::Op::kIf: {
      out->kids.resize(3);
      for (size_t i = 0; i < 3; ++i) {
        if (!Build(spec.kids[i], frame, pinned, &out->kids[i])) return false;
      }
      if (out->kids[0].type != Type::kBool) return false;
      if (out->kids[1].type != out->kids[2].type) return false;
      out->type = out->kids[1].type;
      return true;
    }
    case KernelSpec::Op::kSubscript: {
      const Value* src;
      if (spec.kids[0].op == KernelSpec::Op::kLiteralArr) {
        src = &spec.kids[0].literal;
      } else {
        size_t slot = spec.kids[0].index;
        if (slot >= frame.slots.size()) return false;
        src = &frame.slots[slot];
      }
      const Value& v = *src;
      if (v.kind() != ValueKind::kArray) return false;
      const ArrayRep& a = v.array();
      if (!a.unboxed()) return false;
      size_t rank = spec.kids.size() - 1;
      if (a.dims.size() != rank) return false;
      pinned->push_back(v);  // keep the buffer alive for the kernel
      out->arr = &pinned->back().array();
      switch (a.payload) {
        case ArrayRep::Payload::kNats: out->type = Type::kNat; break;
        case ArrayRep::Payload::kReals: out->type = Type::kReal; break;
        case ArrayRep::Payload::kBools: out->type = Type::kBool; break;
        case ArrayRep::Payload::kBoxed: return false;
      }
      out->kids.resize(rank);
      for (size_t i = 0; i < rank; ++i) {
        if (!Build(spec.kids[1 + i], frame, pinned, &out->kids[i])) return false;
        if (out->kids[i].type != Type::kNat) return false;
      }
      return true;
    }
    case KernelSpec::Op::kLiteralArr:
      return false;  // only legal as a kSubscript's array operand
  }
  return false;
}

std::unique_ptr<Kernel> Kernel::Instantiate(const KernelSpec& spec, const Frame& frame) {
  std::unique_ptr<Kernel> k(new Kernel());
  // The ArrayRep pointers taken while building stay valid as pinned_
  // grows: each rep is heap-owned by its Value's shared_ptr.
  if (!Build(spec, frame, &k->pinned_, &k->root_)) return nullptr;
  return k;
}

// ---------- evaluation ----------

bool Kernel::SubscriptFlat(const RtNode& n, const uint64_t* idx, uint64_t* flat) {
  const ArrayRep& a = *n.arr;
  uint64_t f = 0;
  for (size_t i = 0; i < n.kids.size(); ++i) {
    uint64_t v;
    if (!NatAt(n.kids[i], idx, &v)) return false;
    if (v >= a.dims[i]) return false;  // out of bounds: ⊥
    f = f * a.dims[i] + v;
  }
  *flat = f;
  return true;
}

bool Kernel::NatAt(const RtNode& n, const uint64_t* idx, uint64_t* out) {
  switch (n.op) {
    case KernelSpec::Op::kNatConst:
      *out = n.nat;
      return true;
    case KernelSpec::Op::kBinder:
      *out = idx[n.binder];
      return true;
    case KernelSpec::Op::kArith: {
      uint64_t x, y;
      if (!NatAt(n.kids[0], idx, &x) || !NatAt(n.kids[1], idx, &y)) return false;
      switch (n.arith) {
        case ArithOp::kAdd: *out = x + y; return true;
        case ArithOp::kMonus: *out = x >= y ? x - y : 0; return true;
        case ArithOp::kMul: *out = x * y; return true;
        case ArithOp::kDiv:
          if (y == 0) return false;
          *out = x / y;
          return true;
        case ArithOp::kMod:
          if (y == 0) return false;
          *out = x % y;
          return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return NatAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->nats[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::RealAt(const RtNode& n, const uint64_t* idx, double* out) {
  switch (n.op) {
    case KernelSpec::Op::kRealConst:
      *out = n.real;
      return true;
    case KernelSpec::Op::kArith: {
      double x, y;
      if (!RealAt(n.kids[0], idx, &x) || !RealAt(n.kids[1], idx, &y)) return false;
      switch (n.arith) {
        case ArithOp::kAdd: *out = x + y; return true;
        case ArithOp::kMonus: *out = x - y; return true;
        case ArithOp::kMul: *out = x * y; return true;
        case ArithOp::kDiv: *out = x / y; return true;  // IEEE inf, not ⊥
        case ArithOp::kMod: *out = std::fmod(x, y); return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return RealAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->reals[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::BoolAt(const RtNode& n, const uint64_t* idx, uint8_t* out) {
  switch (n.op) {
    case KernelSpec::Op::kBoolConst:
      *out = n.boolean;
      return true;
    case KernelSpec::Op::kCmp: {
      int c;
      switch (n.kids[0].type) {
        case Type::kNat: {
          uint64_t x, y;
          if (!NatAt(n.kids[0], idx, &x) || !NatAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
        case Type::kReal: {
          double x, y;
          if (!RealAt(n.kids[0], idx, &x) || !RealAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;  // NaN compares equal, like Cmp3
          break;
        }
        case Type::kBool: {
          uint8_t x, y;
          if (!BoolAt(n.kids[0], idx, &x) || !BoolAt(n.kids[1], idx, &y)) return false;
          c = x < y ? -1 : y < x ? 1 : 0;
          break;
        }
        default:
          return false;
      }
      switch (n.cmp) {
        case CmpOp::kEq: *out = c == 0; return true;
        case CmpOp::kNe: *out = c != 0; return true;
        case CmpOp::kLt: *out = c < 0; return true;
        case CmpOp::kLe: *out = c <= 0; return true;
        case CmpOp::kGt: *out = c > 0; return true;
        case CmpOp::kGe: *out = c >= 0; return true;
      }
      return false;
    }
    case KernelSpec::Op::kIf: {
      uint8_t c;
      if (!BoolAt(n.kids[0], idx, &c)) return false;
      return BoolAt(n.kids[c ? 1 : 2], idx, out);
    }
    case KernelSpec::Op::kSubscript: {
      uint64_t flat;
      if (!SubscriptFlat(n, idx, &flat)) return false;
      *out = n.arr->bools[flat];
      return true;
    }
    default:
      return false;
  }
}

bool Kernel::EvalNat(const uint64_t* idx, uint64_t* out) const {
  return NatAt(root_, idx, out);
}
bool Kernel::EvalReal(const uint64_t* idx, double* out) const {
  return RealAt(root_, idx, out);
}
bool Kernel::EvalBool(const uint64_t* idx, uint8_t* out) const {
  return BoolAt(root_, idx, out);
}

}  // namespace exec
}  // namespace aql
