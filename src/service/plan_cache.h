// LRU plan cache: resolved core expressions → compiled plans.
//
// The paper's efficiency story (§3, §5) compiles a query once and runs it
// many times; this cache makes that automatic for a service handling
// repeated queries. Keys are *resolved* core expressions (macros and vals
// substituted in, primitives resolved) so textually different surface
// queries that desugar to the same core term share one plan. Bucketing is
// by HashExpr and confirmed by AlphaEqual, so alpha-variants — e.g. the
// same comprehension written with different binder names — also share.
//
// A cached plan bundles the optimized core term, its inferred type, and
// the exec::Program compiled from it. Programs are immutable and safe to
// run concurrently, so one entry serves any number of workers at once.
//
// Thread-safe; every operation takes one internal mutex. The expensive
// parts (hashing, alpha-comparison) touch only immutable expression trees.

#ifndef AQL_SERVICE_PLAN_CACHE_H_
#define AQL_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "analysis/lint.h"
#include "base/sync.h"
#include "core/expr.h"
#include "exec/compiled.h"
#include "types/type.h"

namespace aql {
namespace service {

// One compiled plan. Immutable after construction; shared by workers.
struct CachedPlan {
  ExprPtr resolved;   // cache key: resolved, pre-optimization core term
  ExprPtr optimized;  // after the rewrite pipeline
  TypePtr type;       // inferred type of the query
  std::shared_ptr<const exec::Program> program;  // slot-compiled plan
  // Static facts over `optimized` (analysis/lint.h): shape/definedness/
  // cardinality, bounds proofs, lint warnings. Computed once per compile,
  // amortized across every cached run.
  std::shared_ptr<const analysis::PlanFacts> facts;
};

class PlanCache {
 public:
  using HashFn = std::function<uint64_t(const ExprPtr&)>;

  // capacity == 0 disables caching (Lookup always misses, Insert drops).
  // `hash_for_test` overrides HashExpr for bucketing — tests pass a
  // constant (or coarse) hash to force every key into one bucket and pin
  // the collision behavior: alpha-distinct plans sharing a hash must
  // coexist, never replace each other, and never skew `evictions()`.
  explicit PlanCache(size_t capacity, HashFn hash_for_test = {});

  // Returns the cached plan alpha-equal to `resolved` and marks it
  // most-recently used, or nullptr.
  std::shared_ptr<const CachedPlan> Lookup(const ExprPtr& resolved);

  // Inserts a plan keyed by plan->resolved, evicting least-recently-used
  // entries over capacity. A plan alpha-equal to an existing key replaces
  // that entry.
  void Insert(std::shared_ptr<const CachedPlan> plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t evictions() const;
  // Approximate heap bytes held by the cached plans (the resolved and
  // optimized terms via ApproxExprBytes, plus a fixed per-entry overhead
  // standing in for the compiled program and facts). Reporting only — the
  // eviction bound stays the entry-count capacity — surfaced as the
  // `cache.plans.bytes` gauge so both caches report memory honestly.
  uint64_t bytes() const;
  void Clear();

 private:
  struct Node {
    uint64_t hash;
    uint64_t bytes;
    std::shared_ptr<const CachedPlan> plan;
  };
  using LruList = std::list<Node>;

  // Erases `it` from both index and LRU list.
  void EraseLocked(LruList::iterator it) AQL_REQUIRES(mu_);

  const size_t capacity_;
  const HashFn hash_;
  mutable Mutex mu_{"service.plan_cache", lock_rank::kPlanCache};
  LruList lru_ AQL_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_multimap<uint64_t, LruList::iterator> index_ AQL_GUARDED_BY(mu_);
  uint64_t evictions_ AQL_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ AQL_GUARDED_BY(mu_) = 0;
};

}  // namespace service
}  // namespace aql

#endif  // AQL_SERVICE_PLAN_CACHE_H_
