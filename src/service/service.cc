#include "service/service.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

#include "analysis/verifier.h"
#include "base/env.h"
#include "base/strings.h"
#include "exec/parallel.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "opt/cost.h"
#include "storage/tile_store.h"

namespace aql {
namespace service {

namespace {

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - since)
                                   .count());
}

// The configured result-cache bound, after the environment knobs:
// AQL_RESULT_CACHE set-but-falsey kills the cache outright (the boolean
// must distinguish unset from "0", so it reads getenv directly);
// AQL_RESULT_CACHE_BYTES resizes it.
uint64_t EffectiveResultCacheBytes(const ServiceConfig& config) {
  if (std::getenv("AQL_RESULT_CACHE") != nullptr && !EnvFlag("AQL_RESULT_CACHE")) {
    return 0;
  }
  return EnvU64("AQL_RESULT_CACHE_BYTES", config.result_cache_bytes);
}

}  // namespace

QueryService::QueryService(System* system, ServiceConfig config)
    : system_(system),
      config_(config),
      submitted_(metrics_.GetCounter("queries.submitted")),
      completed_(metrics_.GetCounter("queries.completed")),
      failed_(metrics_.GetCounter("queries.failed")),
      rejected_(metrics_.GetCounter("queries.rejected")),
      cancelled_(metrics_.GetCounter("queries.cancelled")),
      deadline_exceeded_(metrics_.GetCounter("queries.deadline_exceeded")),
      statements_(metrics_.GetCounter("statements.run")),
      cache_hits_(metrics_.GetCounter("plan_cache.hits")),
      cache_misses_(metrics_.GetCounter("plan_cache.misses")),
      verify_failures_(metrics_.GetCounter("plans.verify_failures")),
      exec_par_tasks_(metrics_.GetCounter("exec.par.tasks")),
      exec_par_chunks_(metrics_.GetCounter("exec.par.chunks")),
      exec_unboxed_arrays_(metrics_.GetCounter("exec.unboxed.arrays")),
      exec_unchecked_kernels_(metrics_.GetCounter("exec.unchecked.kernels")),
      slow_queries_(metrics_.GetCounter("obs.slow_queries")),
      lint_warnings_(metrics_.GetCounter("analysis.lint.warnings")),
      compile_us_(metrics_.GetHistogram("latency.compile_us")),
      execute_us_(metrics_.GetHistogram("latency.execute_us")),
      script_us_(metrics_.GetHistogram("latency.script_us")),
      cache_(config.plan_cache_capacity),
      result_cache_(EffectiveResultCacheBytes(config)),
      pool_(config.num_workers, config.max_queue, "service.pool") {
  if (config_.trace) obs::Tracer::Get().SetEnabled(true);
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

QuerySubmission QueryService::Submit(std::string expression, QueryOptions options) {
  submitted_->Increment();
  auto token = std::make_shared<CancelToken>();
  std::chrono::milliseconds deadline =
      options.deadline.count() > 0 ? options.deadline : config_.default_deadline;
  if (deadline.count() > 0) token->SetTimeout(deadline);

  auto promise = std::make_shared<std::promise<Result<Value>>>();
  QuerySubmission submission;
  submission.future_ = promise->get_future();
  submission.token_ = token;

  if (shutting_down_.load(std::memory_order_acquire)) {
    rejected_->Increment();
    promise->set_value(
        Status::ResourceExhausted("query rejected: service shutting down"));
    return submission;
  }

  // Count the query in flight *before* the pool sees it, so a concurrent
  // drain either waits for it or rejected it above — never misses it.
  {
    MutexLock lock(&inflight_mu_);
    ++inflight_;
  }
  bool admitted = pool_.TrySubmit(
      [this, expression = std::move(expression), options, token, promise] {
        Result<Value> result = RunQuery(expression, options, token.get());
        CountOutcome(result.status());
        promise->set_value(std::move(result));
        MutexLock lock(&inflight_mu_);
        --inflight_;
        inflight_cv_.NotifyAll();
      });
  if (!admitted) {
    {
      MutexLock lock(&inflight_mu_);
      --inflight_;
      inflight_cv_.NotifyAll();
    }
    rejected_->Increment();
    promise->set_value(Status::ResourceExhausted(
        StrCat("query rejected: admission queue at capacity (",
               config_.max_queue, ")")));
  }
  return submission;
}

bool QueryService::Shutdown(bool drain, std::chrono::milliseconds timeout) {
  shutting_down_.store(true, std::memory_order_release);
  MutexLock lock(&inflight_mu_);
  if (!drain) return inflight_ == 0;
  if (timeout.count() <= 0) {
    while (inflight_ != 0) inflight_cv_.Wait(&inflight_mu_);
    return true;
  }
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (inflight_ != 0) {
    if (!inflight_cv_.WaitUntil(&inflight_mu_, deadline)) return inflight_ == 0;
  }
  return true;
}

size_t QueryService::InFlight() const {
  MutexLock lock(&inflight_mu_);
  return inflight_;
}

Result<Value> QueryService::Execute(std::string_view expression, QueryOptions options) {
  return Submit(std::string(expression), options).Wait();
}

Result<Value> QueryService::RunQuery(const std::string& expression,
                                     const QueryOptions& options,
                                     const CancelToken* token) {
  // Queued past the deadline, or cancelled before starting: don't compile.
  if (token != nullptr) AQL_RETURN_IF_ERROR(token->Check());

  // Slow-query logging needs the profile of *every* query, since a query
  // only reveals itself as slow once it has finished; the capture keeps
  // this worker's spans regardless of the global tracer state. A
  // per-query profile request (QueryOptions::profile_out) rides the same
  // capture.
  const bool watch_slow = config_.slow_query_us > 0;
  std::optional<obs::TraceCapture> capture;
  if (watch_slow || options.profile_out != nullptr) capture.emplace();
  std::string proof_text;  // plan proof certificates for the ?trace=1 report

  auto run_timed = [&]() -> Result<Value> {
    obs::Span root("query", "query");
    ReaderMutexLock lock(&system_mu_);
    ExecScope scope(token);

    auto compile_start = std::chrono::steady_clock::now();
    AQL_ASSIGN_OR_RETURN(ExprPtr core, system_->ParseToCore(expression));
    AQL_ASSIGN_OR_RETURN(ExprPtr resolved, system_->ResolveNames(core));

    // Result cache: answered queries skip compilation and execution
    // entirely. The epoch is read under the shared lock, and every
    // mutation that could stale a cached value runs under the exclusive
    // lock (RunScript), so one read is consistent for both the lookup
    // here and the insert after execution.
    const bool use_results = options.use_result_cache && result_cache_.enabled();
    uint64_t epoch = 0;
    if (use_results) {
      epoch = system_->mutation_epoch();
      if (std::optional<Value> hit = result_cache_.Lookup(resolved, epoch)) {
        compile_us_->Record(ElapsedUs(compile_start));
        return *std::move(hit);
      }
    }

    AQL_ASSIGN_OR_RETURN(std::shared_ptr<const CachedPlan> plan,
                         GetPlan(expression, resolved, options.use_plan_cache));
    compile_us_->Record(ElapsedUs(compile_start));
    if (options.profile_out != nullptr && plan->program != nullptr &&
        !plan->program->proof().empty()) {
      proof_text = plan->program->proof().ToString();
    }

    auto execute_start = std::chrono::steady_clock::now();
    Result<Value> result = options.use_compiled_backend
                               ? plan->program->Run()
                               : system_->EvalCore(plan->optimized);
    execute_us_->Record(ElapsedUs(execute_start));
    if (use_results && result.ok()) {
      result_cache_.Insert(resolved, *result, epoch);
    }
    return result;
  };

  auto start = std::chrono::steady_clock::now();
  Result<Value> result = run_timed();
  if (capture.has_value()) {
    uint64_t total_us = ElapsedUs(start);
    std::vector<obs::SpanRecord> records = capture->TakeRecords();
    if (options.profile_out != nullptr) {
      *options.profile_out = obs::Profile::Build(records).ToString();
      if (!proof_text.empty()) {
        *options.profile_out += "optimization proofs:\n" + proof_text;
      }
    }
    if (watch_slow && total_us > config_.slow_query_us) {
      slow_queries_->Increment();
      std::string report =
          StrCat("slow query (", total_us, "us > ", config_.slow_query_us,
                 "us): ", expression, "\n",
                 obs::Profile::Build(std::move(records)).ToString());
      if (config_.slow_query_sink) {
        config_.slow_query_sink(report);
      } else {
        std::fprintf(stderr, "%s", report.c_str());
      }
    }
  }
  return result;
}

Result<std::shared_ptr<const CachedPlan>> QueryService::GetPlan(
    const std::string& expression, ExprPtr resolved, bool use_cache) {
  if (use_cache) {
    if (std::shared_ptr<const CachedPlan> hit = cache_.Lookup(resolved)) {
      cache_hits_->Increment();
      return hit;
    }
    cache_misses_->Increment();
  }
  AQL_ASSIGN_OR_RETURN(TypePtr type, system_->TypeOf(resolved));
  ExprPtr optimized;
  if (config_.verify_plans) {
    analysis::Verifier verifier(system_->SchemeResolver());
    analysis::VerifierReport report;
    optimized =
        verifier.OptimizeVerified(*system_->optimizer(), resolved, nullptr, &report);
    if (!report.ok()) {
      verify_failures_->Increment();
      return Status::Internal(
          StrCat("plan failed IR verification; refusing to cache or run it\n",
                 report.ToString()));
    }
  } else {
    optimized = system_->Optimize(resolved);
  }
  AQL_ASSIGN_OR_RETURN(exec::Program program,
                       exec::Compile(optimized, system_->PrimitiveResolver()));
  // Static facts ride with the plan: computed once per fresh compile, then
  // amortized across every cache hit.
  auto facts =
      std::make_shared<const analysis::PlanFacts>(analysis::AnalyzePlan(optimized));
  if (config_.lint && !facts->lint.empty()) {
    lint_warnings_->Increment(facts->lint.warnings.size());
    std::string report = StrCat("lint: ", expression, "\n", facts->lint.ToString());
    if (config_.lint_sink) {
      config_.lint_sink(report);
    } else {
      std::fprintf(stderr, "%s", report.c_str());
    }
  }
  auto plan = std::make_shared<CachedPlan>(
      CachedPlan{std::move(resolved), std::move(optimized), std::move(type),
                 std::make_shared<const exec::Program>(std::move(program)),
                 std::move(facts)});
  if (use_cache) cache_.Insert(plan);
  return std::shared_ptr<const CachedPlan>(std::move(plan));
}

void QueryService::CountOutcome(const Status& status) {
  if (status.ok()) {
    completed_->Increment();
    return;
  }
  switch (status.code()) {
    case StatusCode::kCancelled:
      cancelled_->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_->Increment();
      break;
    default:
      failed_->Increment();
      break;
  }
}

Result<std::vector<StatementResult>> QueryService::RunScript(std::string_view program) {
  WriterMutexLock lock(&system_mu_);
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<StatementResult>> results = system_->Run(program);
  script_us_->Record(ElapsedUs(start));
  if (results.ok()) {
    statements_->Increment(results->size());
  } else {
    failed_->Increment();
  }
  return results;
}

void QueryService::SyncExecStats() const {
  // Pull the exec layer's process-wide counters up to their service
  // mirrors. Counters are monotone, so publishing the delta is safe even
  // if several services report concurrently from one process.
  const exec::ExecStats& stats = exec::GlobalExecStats();
  auto sync = [](Counter* counter, const std::atomic<uint64_t>& source) {
    uint64_t current = source.load(std::memory_order_relaxed);
    uint64_t seen = counter->value();
    if (current > seen) counter->Increment(current - seen);
  };
  sync(exec_par_tasks_, stats.par_tasks);
  sync(exec_par_chunks_, stats.par_chunks);
  sync(exec_unboxed_arrays_, stats.unboxed_arrays);
  sync(exec_unchecked_kernels_, stats.unchecked_kernels);
  sync(metrics_.GetCounter("exec.tab.pushdowns"), stats.tab_pushdowns);

  // Same delta treatment for the per-mutex contention counters
  // (base/sync.h). Names arrive dotted-lowercase, so they pass
  // IsValidInstrumentName as-is under the lock. prefix.
  auto sync_value = [this](const std::string& name, uint64_t current) {
    Counter* counter = metrics_.GetCounter(name);
    uint64_t seen = counter->value();
    if (current > seen) counter->Increment(current - seen);
  };
  for (const MutexStatsSnapshot& m : SnapshotMutexStats()) {
    sync_value(StrCat("lock.", m.name, ".acquisitions"), m.acquisitions);
    sync_value(StrCat("lock.", m.name, ".contended"), m.contended);
    sync_value(StrCat("lock.", m.name, ".wait_us"), m.wait_us);
  }

  // Result-cache counters live in the cache (its mutex is the source of
  // truth); mirror them the same delta way, and publish the two memory
  // gauges alongside.
  const ResultCache::Stats rc = result_cache_.stats();
  sync_value("cache.result.hits", rc.hits);
  sync_value("cache.result.misses", rc.misses);
  sync_value("cache.result.subsumed", rc.subsumptions);
  sync_value("cache.result.evictions", rc.evictions);
  sync_value("cache.result.invalidations", rc.invalidations);
  metrics_.GetGauge("cache.result.bytes")->Set(rc.bytes);
  metrics_.GetGauge("cache.result.entries")->Set(rc.entries);
  metrics_.GetGauge("cache.plans.bytes")->Set(cache_.bytes());

  // Cost-model counters (opt/cost.h) are process-wide atomics for the
  // same reason as ExecStats: the optimizer cannot depend on the service.
  const OptCostStats& cost = GlobalOptCostStats();
  sync(metrics_.GetCounter("opt.cost.estimates"), cost.estimates);
  sync(metrics_.GetCounter("opt.cost.gate_fired"), cost.gate_fired);
  sync(metrics_.GetCounter("opt.cost.gate_suppressed"), cost.gate_suppressed);

  // Tile-store counters (storage/tile_store.h) are process-wide for the
  // same reason; the byte and entry totals are gauges, not counters.
  const storage::TileStoreStats ts = storage::TileStore::Global().stats();
  sync_value("storage.tile.hits", ts.hits);
  sync_value("storage.tile.misses", ts.misses);
  sync_value("storage.tile.evictions", ts.evictions);
  sync_value("storage.tile.zone_fills", ts.zone_fills);
  sync_value("storage.tile.prunes", ts.prunes);
  sync_value("storage.tile.read_errors", ts.read_errors);
  metrics_.GetGauge("storage.tile.bytes")->Set(ts.bytes);
  metrics_.GetGauge("storage.tile.entries")->Set(ts.entries);
}

std::string QueryService::StatsReport() const {
  SyncExecStats();

  const ResultCache::Stats rc = result_cache_.stats();
  std::string out =
      StrCat("service: ", pool_.num_threads(), " workers, queue limit ",
             config_.max_queue, ", plan cache ", cache_.size(), "/",
             cache_.capacity(), " entries (", cache_.evictions(), " evictions)\n");
  out += StrCat("result cache: ", rc.entries, " entries, ", rc.bytes, "/",
                result_cache_.max_bytes(), " bytes (", rc.hits, " hits, ",
                rc.subsumptions, " subsumed, ", rc.evictions, " evictions, ",
                rc.invalidations, " invalidated)\n");
  const storage::TileStoreStats ts = storage::TileStore::Global().stats();
  out += StrCat("tile cache: ", ts.entries, " tiles, ", ts.bytes, "/",
                storage::TileStore::Global().Budget(), " bytes (", ts.hits,
                " hits, ", ts.misses, " misses, ", ts.evictions,
                " evictions, ", ts.prunes, " prunes)\n");
  out += metrics_.Report();
  return out;
}

}  // namespace service
}  // namespace aql
