// Semantic result cache: resolved core expressions → computed values.
//
// Sits ABOVE the plan cache: where PlanCache saves re-compiling a repeated
// query, ResultCache saves re-running it. Keys are the same as PlanCache's
// — resolved, pre-optimization core terms, bucketed by HashExpr and
// confirmed by AlphaEqual — so alpha-variant and macro-expanded spellings
// of one query share an entry, and a changed `val` binding changes the key
// itself (vals are substituted in during ResolveNames).
//
// Two capabilities beyond a plain memo table:
//
//  1. Epoch invalidation. Queries are pure EXCEPT through registered
//     primitives/readers observing external state that `writeval` (or a
//     new registration) may mutate. System::mutation_epoch() advances on
//     every such mutation; a lookup or insert carrying a newer epoch than
//     the cache's watermark flushes everything first. Coarse by design:
//     writers are opaque, so no per-entry dependency tracking is sound.
//
//  2. Subslab subsumption. A query of the form
//         [[ BASE[i1+o1, ..., ik+ok] | i1 < n1, ..., ik < nk ]]
//     where BASE is alpha-equal to a cached key, the offsets oj are
//     constants, and the extents nj are PROVEN constant by the shape/
//     cardinality abstract domains (analysis/absint.h), is answered by
//     slicing the cached unboxed buffer (SliceArray) — no evaluation at
//     all. The proof obligation is double-checked against the concrete
//     cached array: rank must match and oj + nj must stay within dims[j].
//     The slice is inserted as its own entry so a repeat becomes an exact
//     hit. See docs/CACHING.md for the full protocol.
//
// Bounded by approximate BYTES (ApproxValueBytes of the value plus
// ApproxExprBytes of the key plus fixed overhead), evicting LRU entries;
// results can be arbitrarily larger than the plans that produce them, so
// an entry-count bound would be dishonest. max_bytes == 0 disables the
// cache entirely.
//
// Thread-safe; one internal mutex at lock_rank::kResultCache (above
// kSystem — lookups run under the service's system reader lock — and
// distinct from kPlanCache; the two cache locks are never nested).

#ifndef AQL_SERVICE_RESULT_CACHE_H_
#define AQL_SERVICE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>

#include "base/sync.h"
#include "core/expr.h"
#include "object/value.h"

namespace aql {
namespace service {

class ResultCache {
 public:
  using HashFn = std::function<uint64_t(const ExprPtr&)>;

  // Monotone counters, snapshot under the cache mutex.
  struct Stats {
    uint64_t hits = 0;           // exact alpha-equal hits
    uint64_t misses = 0;         // lookups answered by neither path
    uint64_t subsumptions = 0;   // served by slicing a containing slab
    uint64_t evictions = 0;      // entries dropped by the byte bound
    uint64_t invalidations = 0;  // entries dropped by an epoch flush
    uint64_t bytes = 0;          // current approximate footprint
    uint64_t entries = 0;        // current entry count
  };

  // max_bytes == 0 disables caching. `hash_for_test` as in PlanCache:
  // tests force collisions to pin that alpha-distinct results sharing a
  // bucket coexist and never serve each other's values.
  explicit ResultCache(uint64_t max_bytes, HashFn hash_for_test = {});

  // Returns the cached value for `resolved` (exact or by subslab
  // subsumption), or nullopt. `epoch` is the caller's current
  // System::mutation_epoch(); a change flushes the cache first.
  std::optional<Value> Lookup(const ExprPtr& resolved, uint64_t epoch);

  // Caches `value` keyed by `resolved`. Entries whose approximate size
  // exceeds max_bytes are dropped silently (one oversized result must not
  // wipe the whole cache). Replaces an alpha-equal entry in place.
  void Insert(const ExprPtr& resolved, Value value, uint64_t epoch);

  void Clear();

  bool enabled() const { return max_bytes_ > 0; }
  uint64_t max_bytes() const { return max_bytes_; }
  Stats stats() const;

 private:
  struct Node {
    uint64_t hash;
    uint64_t bytes;
    ExprPtr key;  // resolved core term
    Value value;
  };
  using LruList = std::list<Node>;

  void FlushIfStaleLocked(uint64_t epoch) AQL_REQUIRES(mu_);
  void InsertLocked(const ExprPtr& resolved, uint64_t hash, Value value)
      AQL_REQUIRES(mu_);
  void EraseLocked(LruList::iterator it) AQL_REQUIRES(mu_);
  LruList::iterator FindLocked(const ExprPtr& resolved, uint64_t hash)
      AQL_REQUIRES(mu_);

  const uint64_t max_bytes_;
  const HashFn hash_;
  mutable Mutex mu_{"service.result_cache", lock_rank::kResultCache};
  LruList lru_ AQL_GUARDED_BY(mu_);  // front = most recently used
  std::unordered_multimap<uint64_t, LruList::iterator> index_ AQL_GUARDED_BY(mu_);
  uint64_t valid_epoch_ AQL_GUARDED_BY(mu_) = 0;
  uint64_t bytes_ AQL_GUARDED_BY(mu_) = 0;
  Stats stats_ AQL_GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace aql

#endif  // AQL_SERVICE_RESULT_CACHE_H_
