// Metrics for the query service: named counters and latency histograms.
//
// The registry hands out stable pointers to lock-free instruments:
// recording on a Counter or Histogram is a relaxed atomic add, so the
// per-query overhead is a handful of uncontended atomic ops. Snapshot and
// Report take the registry mutex only to walk the name index; the values
// they read are monotone, so a snapshot is a consistent-enough view for
// dashboards and the REPL's :stats command.

#ifndef AQL_SERVICE_METRICS_H_
#define AQL_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "base/sync.h"

namespace aql {
namespace service {

// Monotone event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (cache bytes, entry counts): settable and
// decrementable, unlike a Counter. Renders as a Prometheus gauge.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(uint64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Latency histogram over exponential (power-of-two) microsecond buckets:
// bucket i counts samples in [2^i, 2^(i+1)) µs, bucket 0 includes 0–1 µs.
// 40 buckets cover ~12 days, far beyond any query deadline.
class Histogram {
 public:
  static constexpr size_t kBuckets = 40;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_us = 0;
    uint64_t max_us = 0;
    std::array<uint64_t, kBuckets> buckets{};

    uint64_t mean_us() const { return count == 0 ? 0 : sum_us / count; }
    // Upper bound of the bucket holding the q-th quantile (q in [0,1]).
    uint64_t QuantileUs(double q) const;
    // "count=12 mean=103us p50<=128us p99<=512us max=480us"
    std::string ToString() const;
  };

  void Record(uint64_t micros);
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

// Instrument naming: canonical names are dotted lowercase
// ("exec.par.tasks"), the style :stats prints. Prometheus identifiers
// allow only [a-zA-Z0-9_:], so one shared sanitizer sits between the
// canonical names and every external rendering — the HTTP /metrics
// endpoint and :stats both go through it, and the registry rejects names
// it cannot render (debug-asserted at Get* time).

// True iff `name` is a canonical instrument name: [a-z0-9._] only,
// starting with a letter — guaranteed to sanitize into a valid
// Prometheus identifier.
bool IsValidInstrumentName(std::string_view name);

// True iff `name` matches the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
bool IsValidPrometheusName(std::string_view name);

// Maps a canonical name to a Prometheus identifier: dots (and any other
// invalid character) become underscores; a leading digit gets a '_'
// prefix. SanitizeMetricName(n) is always a valid Prometheus name.
std::string SanitizeMetricName(std::string_view name);

// Named instrument registry. Get* creates on first use and returns a
// pointer that stays valid for the registry's lifetime; concurrent Get*
// for the same name return the same instrument. Names must satisfy
// IsValidInstrumentName (debug-asserted; release builds sanitize on
// render instead of crashing).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, uint64_t> GaugeValues() const;
  std::map<std::string, Histogram::Snapshot> HistogramSnapshots() const;

  // Human-readable rendering of every instrument, sorted by name — the
  // body of the REPL's :stats output. Names that fail
  // IsValidInstrumentName render sanitized (shared path with /metrics).
  std::string Report() const;

  // Prometheus text exposition format (version 0.0.4): counters as
  // counters, histograms as cumulative `_bucket{le="..."}` series with
  // `_sum`/`_count`, every name passed through SanitizeMetricName and
  // prefixed (e.g. "queries.completed" -> "aql_queries_completed").
  // Served by the HTTP front end's GET /metrics.
  std::string RenderPrometheus(std::string_view prefix = "aql_") const;

 private:
  mutable Mutex mu_{"service.metrics", lock_rank::kMetrics};
  std::map<std::string, std::unique_ptr<Counter>> counters_ AQL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ AQL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      AQL_GUARDED_BY(mu_);
};

}  // namespace service
}  // namespace aql

#endif  // AQL_SERVICE_METRICS_H_
