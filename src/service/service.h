// aql::service::QueryService — a concurrent query service over one System.
//
// The paper's §4.1 architecture separates the query module from the host
// precisely so the system can serve many callers; this layer supplies the
// serving machinery the paper leaves to the SML top level:
//
//   - a fixed worker pool with a bounded admission queue (back-pressure:
//     overload returns ResourceExhausted instead of queuing unboundedly),
//   - an LRU plan cache keyed by the structural hash of the resolved core
//     term (compile once, run many times — the §3/§5 efficiency story),
//   - per-query deadlines and explicit cancellation, enforced inside the
//     evaluator's and compiled backend's loop constructs via
//     base/cancel.h, so runaway queries stop promptly,
//   - a metrics registry (counters + latency histograms) rendered by the
//     REPL's :stats command.
//
// Concurrency model: queries (pure expressions) execute under a shared
// lock and may run on all workers at once; RunScript — statements that
// mutate the environment (val/macro/readval/writeval) — takes the
// exclusive lock, honouring System's thread-safety contract (system.h).
//
// Typical embedding:
//
//   aql::System sys;                       // setup phase: register, define
//   aql::service::QueryService svc(&sys, {.num_workers = 8});
//   auto sub = svc.Submit("Sum{ x | \\x <- gen!1000 }",
//                         {.deadline = std::chrono::milliseconds(50)});
//   Result<Value> r = sub.Wait();          // value, or DeadlineExceeded
//
// All public methods are thread-safe.

#ifndef AQL_SERVICE_SERVICE_H_
#define AQL_SERVICE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/cancel.h"
#include "base/result.h"
#include "base/sync.h"
#include "env/system.h"
#include "service/metrics.h"
#include "service/plan_cache.h"
#include "service/result_cache.h"
#include "base/thread_pool.h"

namespace aql {
namespace service {

struct ServiceConfig {
  size_t num_workers = 4;
  size_t max_queue = 256;            // admission bound (queued, not running)
  size_t plan_cache_capacity = 128;  // entries; 0 disables the cache
  // Semantic result cache (service/result_cache.h): repeated queries are
  // answered from their cached VALUE, and constant-extent subslab queries
  // from a slice of a cached containing slab, without compiling or
  // executing anything. Bounded by approximate bytes; 0 disables.
  // Environment overrides (read once, at service construction):
  // AQL_RESULT_CACHE=0 disables, AQL_RESULT_CACHE_BYTES=<n> sets the
  // bound. Invalidation is automatic — see System::mutation_epoch() and
  // docs/CACHING.md.
  uint64_t result_cache_bytes = 64ull << 20;
  // Applied when QueryOptions.deadline is zero; zero here means none.
  std::chrono::milliseconds default_deadline{0};
  // Run the IR verifier (src/analysis) over every freshly compiled plan
  // before it enters the cache. A violation fails that query with Internal
  // (and counts plans.verify_failures) instead of caching — and then
  // serving — a corrupted plan. Non-fatal, unlike SystemConfig::verify_ir.
  bool verify_plans = false;
  // Enables the process-wide tracer (src/obs) at construction — the same
  // switch as AQL_TRACE=1 or the REPL's `:trace on`. Spans from every
  // query accumulate in the Tracer sink for Chrome-trace export.
  bool trace = false;
  // Slow-query log: a query whose total worker-side time (compile +
  // execute) exceeds this many microseconds has its per-stage profile
  // emitted through slow_query_sink, and `obs.slow_queries` is bumped.
  // 0 disables. Enabling it traces every query on its worker thread
  // (TraceCapture), a few hundred nanoseconds per pipeline stage.
  uint64_t slow_query_us = 0;
  // Destination for slow-query profiles; default writes to stderr.
  std::function<void(const std::string&)> slow_query_sink = {};
  // Lint every freshly compiled plan (analysis/lint.h). Warnings never
  // fail the query: each report is emitted through lint_sink and counted
  // in `analysis.lint.warnings`. The facts themselves are computed and
  // cached regardless of this flag; it only controls reporting.
  bool lint = false;
  // Destination for lint reports; default writes to stderr.
  std::function<void(const std::string&)> lint_sink = {};
};

struct QueryOptions {
  // Measured from Submit(): covers queue wait + compile + execution.
  // Zero falls back to ServiceConfig::default_deadline.
  std::chrono::milliseconds deadline{0};
  bool use_plan_cache = true;
  // false bypasses the semantic result cache for this query (no lookup,
  // no insert) — the HTTP front end's no_cache=1 sets both this and
  // use_plan_cache false.
  bool use_result_cache = true;
  // false routes execution through the tree-walking evaluator instead of
  // the compiled backend (still plan-cached at the optimized-term level).
  bool use_compiled_backend = true;
  // When set, the worker runs the query under an obs::TraceCapture and
  // stores the rendered per-stage profile (obs::Profile) here — the HTTP
  // front end's ?trace=1 option. Costs the same as the slow-query log's
  // always-on capture.
  std::shared_ptr<std::string> profile_out;
};

// Handle for one submitted query. Wait() may be called once.
class QuerySubmission {
 public:
  // Blocks until the query finishes (or was rejected/cancelled).
  Result<Value> Wait() { return future_.get(); }

  // Requests cooperative cancellation; the query returns Cancelled at its
  // next interrupt poll (immediately, if still queued).
  void Cancel() {
    if (token_) token_->Cancel();
  }

  const std::shared_ptr<CancelToken>& token() const { return token_; }

 private:
  friend class QueryService;
  std::future<Result<Value>> future_;
  std::shared_ptr<CancelToken> token_;
};

class QueryService {
 public:
  // `system` must outlive the service and be past its setup phase; the
  // service becomes the sole synchronization point for it.
  explicit QueryService(System* system, ServiceConfig config = {});
  // Equivalent to Shutdown(/*drain=*/true) (the pool destructor then
  // joins the workers, which drains anyway — Shutdown just makes the
  // stop-admitting point explicit and observable).
  ~QueryService();

  // Stops admitting: every later Submit resolves immediately with
  // ResourceExhausted ("service shutting down"). With drain=true, also
  // waits for already-admitted queries (queued or running) to finish, up
  // to `timeout` (zero = wait without limit). Returns true when no
  // queries remain in flight on return. Idempotent and thread-safe;
  // concurrent Submits race benignly (they either got in before the flag
  // or are rejected).
  bool Shutdown(bool drain = true, std::chrono::milliseconds timeout = {});

  // True once Shutdown has been called (the HTTP front end's /healthz
  // turns 503 on this).
  bool shutting_down() const { return shutting_down_.load(std::memory_order_acquire); }

  // Queries admitted but not yet finished (queued + executing).
  size_t InFlight() const;

  // Admits a pure-expression query to the worker pool. When the admission
  // queue is full the returned submission resolves immediately with
  // ResourceExhausted.
  QuerySubmission Submit(std::string expression, QueryOptions options = {});

  // Submit + Wait, for callers without their own concurrency.
  Result<Value> Execute(std::string_view expression, QueryOptions options = {});

  // Executes ';'-terminated statements under the exclusive lock (they may
  // bind vals/macros or perform I/O). Serialized against all queries.
  Result<std::vector<StatementResult>> RunScript(std::string_view program);

  MetricsRegistry* metrics() { return &metrics_; }
  const PlanCache& plan_cache() const { return cache_; }
  const ResultCache& result_cache() const { return result_cache_; }
  // Non-const access for administrative operations (the REPL's
  // `:cache clear`); ResultCache is internally synchronized.
  ResultCache* mutable_result_cache() { return &result_cache_; }
  size_t num_workers() const { return pool_.num_threads(); }

  // ":stats" rendering: configuration line + every counter and histogram.
  std::string StatsReport() const;

  // Pulls the exec layer's process-wide data-parallel counters and the
  // per-mutex contention statistics (base/sync.h SnapshotMutexStats:
  // lock.<name>.{acquisitions,contended,wait_us}) into their service
  // mirrors (StatsReport does this implicitly; the HTTP /metrics endpoint
  // calls it before rendering Prometheus text).
  void SyncExecStats() const;

 private:
  // The worker-side path: compile (with plan cache) + run, under the
  // shared lock and the query's ExecScope.
  Result<Value> RunQuery(const std::string& expression, const QueryOptions& options,
                         const CancelToken* token);
  // `resolved` is the already-resolved core term for `expression` (the
  // result-cache key, computed by RunQuery before the lookup); kept by
  // value so the plan can own it.
  Result<std::shared_ptr<const CachedPlan>> GetPlan(const std::string& expression,
                                                    ExprPtr resolved, bool use_cache);
  void CountOutcome(const Status& status);

  System* const system_;
  const ServiceConfig config_;

  // mutable: SyncExecStats() const mints lock.* mirror counters on demand
  // (GetCounter is itself thread-safe).
  mutable MetricsRegistry metrics_;
  // Well-known instruments, resolved once (recording is lock-free).
  Counter* submitted_;
  Counter* completed_;
  Counter* failed_;
  Counter* rejected_;
  Counter* cancelled_;
  Counter* deadline_exceeded_;
  Counter* statements_;
  Counter* cache_hits_;
  Counter* cache_misses_;
  Counter* verify_failures_;
  // Mirrors of the exec layer's process-wide data-parallel statistics
  // (exec cannot depend on service, so StatsReport syncs the deltas).
  Counter* exec_par_tasks_;
  Counter* exec_par_chunks_;
  Counter* exec_unboxed_arrays_;
  Counter* exec_unchecked_kernels_;
  Counter* slow_queries_;
  Counter* lint_warnings_;
  Histogram* compile_us_;
  Histogram* execute_us_;
  Histogram* script_us_;

  PlanCache cache_;
  ResultCache result_cache_;
  // shared: query execution; exclusive: RunScript's environment mutation.
  SharedMutex system_mu_{"service.system", lock_rank::kSystem};
  // Admission gate + in-flight accounting for Shutdown's drain.
  std::atomic<bool> shutting_down_{false};
  mutable Mutex inflight_mu_{"service.inflight", lock_rank::kServiceInflight};
  CondVar inflight_cv_;
  size_t inflight_ AQL_GUARDED_BY(inflight_mu_) = 0;
  // Declared last: joins workers (which touch everything above) first.
  ThreadPool pool_;
};

}  // namespace service
}  // namespace aql

#endif  // AQL_SERVICE_SERVICE_H_
