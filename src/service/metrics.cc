#include "service/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "base/strings.h"

namespace aql {
namespace service {

namespace {

// Bucket index for a microsecond sample: floor(log2(us)), clamped.
size_t BucketFor(uint64_t us) {
  if (us <= 1) return 0;
  size_t i = static_cast<size_t>(std::bit_width(us)) - 1;
  return std::min(i, Histogram::kBuckets - 1);
}

// Bucket 0 holds 0–1 µs (see BucketFor), so its upper bound is 1 µs —
// not the 2 µs that the power-of-two formula would claim. Reporting 2 µs
// made an all-sub-microsecond histogram print "p50<=2us".
uint64_t BucketUpperBoundUs(size_t i) {
  return i == 0 ? 1 : uint64_t{1} << (i + 1);
}

}  // namespace

bool IsValidInstrumentName(std::string_view name) {
  if (name.empty()) return false;
  if (!(name.front() >= 'a' && name.front() <= 'z')) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' || c == '_';
    if (!ok) return false;
  }
  return true;
}

bool IsValidPrometheusName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!head(name.front())) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

uint64_t Histogram::Snapshot::QuantileUs(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return std::min(BucketUpperBoundUs(i), max_us);
  }
  return max_us;
}

std::string Histogram::Snapshot::ToString() const {
  if (count == 0) return "count=0";
  return StrCat("count=", count, " mean=", mean_us(), "us p50<=", QuantileUs(0.5),
                "us p99<=", QuantileUs(0.99), "us max=", max_us, "us");
}

void Histogram::Record(uint64_t micros) {
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < micros &&
         !max_us_.compare_exchange_weak(prev, micros, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  s.max_us = max_us_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  assert(IsValidInstrumentName(name) && "instrument names are [a-z0-9._]");
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  assert(IsValidInstrumentName(name) && "instrument names are [a-z0-9._]");
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  assert(IsValidInstrumentName(name) && "instrument names are [a-z0-9._]");
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, uint64_t> MetricsRegistry::GaugeValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::HistogramSnapshots() const {
  MutexLock lock(&mu_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->snapshot();
  return out;
}

namespace {

// The shared rendering guard: canonical names pass through; anything
// else (hand-built registries) is sanitized, so both :stats and /metrics
// only ever show renderable identifiers.
std::string DisplayName(const std::string& name) {
  return IsValidInstrumentName(name) ? name : SanitizeMetricName(name);
}

}  // namespace

std::string MetricsRegistry::Report() const {
  std::string out;
  for (const auto& [name, v] : CounterValues()) {
    out += StrCat(DisplayName(name), " = ", v, "\n");
  }
  for (const auto& [name, v] : GaugeValues()) {
    out += StrCat(DisplayName(name), " = ", v, "\n");
  }
  for (const auto& [name, snap] : HistogramSnapshots()) {
    out += StrCat(DisplayName(name), " : ", snap.ToString(), "\n");
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus(std::string_view prefix) const {
  std::string out;
  for (const auto& [name, v] : CounterValues()) {
    std::string id = StrCat(prefix, SanitizeMetricName(name));
    out += StrCat("# TYPE ", id, " counter\n", id, " ", v, "\n");
  }
  for (const auto& [name, v] : GaugeValues()) {
    std::string id = StrCat(prefix, SanitizeMetricName(name));
    out += StrCat("# TYPE ", id, " gauge\n", id, " ", v, "\n");
  }
  for (const auto& [name, snap] : HistogramSnapshots()) {
    std::string id = StrCat(prefix, SanitizeMetricName(name));
    out += StrCat("# TYPE ", id, " histogram\n");
    // Cumulative buckets up to the last non-empty one; +Inf always.
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (snap.buckets[i] > 0) last = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= last && snap.count > 0; ++i) {
      cumulative += snap.buckets[i];
      out += StrCat(id, "_bucket{le=\"", BucketUpperBoundUs(i), "\"} ", cumulative,
                    "\n");
    }
    out += StrCat(id, "_bucket{le=\"+Inf\"} ", snap.count, "\n");
    out += StrCat(id, "_sum ", snap.sum_us, "\n");
    out += StrCat(id, "_count ", snap.count, "\n");
  }
  return out;
}

}  // namespace service
}  // namespace aql
