#include "service/result_cache.h"

#include <utility>
#include <vector>

#include "analysis/absint.h"
#include "core/expr_ops.h"

namespace aql {
namespace service {

namespace {

// A lookup key matching the subslab shape:
//   [[ base[i1+lower1, ..., ik+lowerk] | i1 < e1, ..., ik < ek ]]
// with `base` binder-free and every extent proven constant by the shape
// domain. The syntactic part (offsets, base) is cheap; the semantic part
// (extents) rides the abstract interpreter so bounds need not be literal
// NatConsts — anything the shape/cardinality domains can pin down works.
struct SubslabPattern {
  ExprPtr base;
  std::vector<uint64_t> lower;    // per-dimension slice origin
  std::vector<uint64_t> extents;  // per-dimension slice size (filled by
                                  // ProveExtents, only once a base entry
                                  // is actually found)
};

// Matches `part` as the j-th binder plus a constant offset: the binder
// itself (offset 0), binder + c, or c + binder. Anything else — including
// a different binder, so transposed slices never match — fails.
bool MatchIndexPart(const ExprPtr& part, const std::string& binder,
                    uint64_t* offset) {
  if (part->is(ExprKind::kVar) && part->var_name() == binder) {
    *offset = 0;
    return true;
  }
  if (!part->is(ExprKind::kArith) || part->arith_op() != ArithOp::kAdd) {
    return false;
  }
  const ExprPtr& a = part->child(0);
  const ExprPtr& b = part->child(1);
  if (a->is(ExprKind::kVar) && a->var_name() == binder &&
      b->is(ExprKind::kNatConst)) {
    *offset = b->nat_const();
    return true;
  }
  if (b->is(ExprKind::kVar) && b->var_name() == binder &&
      a->is(ExprKind::kNatConst)) {
    *offset = a->nat_const();
    return true;
  }
  return false;
}

std::optional<SubslabPattern> MatchSubslab(const ExprPtr& resolved) {
  if (!resolved->is(ExprKind::kTab)) return std::nullopt;
  size_t k = resolved->tab_rank();
  const ExprPtr& body = resolved->tab_body();
  if (!body->is(ExprKind::kSubscript)) return std::nullopt;
  const ExprPtr& base = body->child(0);
  const ExprPtr& idx = body->child(1);

  // Per-dimension index parts, as beta_p decomposes them — but only the
  // syntactic forms (single index or literal tuple); a projected index
  // can permute dimensions, which a rectangular slice cannot express.
  std::vector<ExprPtr> parts(k);
  if (k == 1) {
    parts[0] = idx;
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
  } else {
    return std::nullopt;
  }

  SubslabPattern pat;
  pat.base = base;
  pat.lower.resize(k);
  for (size_t j = 0; j < k; ++j) {
    if (!MatchIndexPart(parts[j], resolved->binders()[j], &pat.lower[j])) {
      return std::nullopt;
    }
  }
  // The base must not depend on the loop — it has to BE the cached slab.
  for (const std::string& b : resolved->binders()) {
    if (OccursFree(base, b)) return std::nullopt;
  }
  return pat;
}

// Extents: the shape domain's verdict on the whole tabulation. This is
// the proof obligation — serve the slice only when the analysis pins
// every extent to a constant. Deferred until a base entry is found so the
// exact-hit and plain-miss paths never pay for an abstract interpretation.
bool ProveExtents(const ExprPtr& resolved, SubslabPattern* pat) {
  size_t k = pat->lower.size();
  analysis::AbsVal abs = analysis::AnalyzeAbs(resolved);
  if (abs.shape.kind != analysis::ShapeVal::Kind::kArray ||
      abs.shape.extents.size() != k) {
    return false;
  }
  pat->extents.resize(k);
  for (size_t j = 0; j < k; ++j) {
    const analysis::Extent& ext = abs.shape.extents[j];
    if (ext.kind != analysis::Extent::Kind::kConst) return false;
    pat->extents[j] = ext.value;
  }
  return true;
}

uint64_t EntryBytes(const ExprPtr& key, const Value& value) {
  constexpr uint64_t kEntryOverhead = 256;  // list/index nodes, Node itself
  return kEntryOverhead + ApproxExprBytes(key) + ApproxValueBytes(value);
}

}  // namespace

ResultCache::ResultCache(uint64_t max_bytes, HashFn hash_for_test)
    : max_bytes_(max_bytes),
      hash_(hash_for_test ? std::move(hash_for_test)
                          : [](const ExprPtr& e) { return HashExpr(e); }) {}

ResultCache::LruList::iterator ResultCache::FindLocked(const ExprPtr& resolved,
                                                       uint64_t hash) {
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (AlphaEqual(it->second->key, resolved)) return it->second;
  }
  return lru_.end();
}

std::optional<Value> ResultCache::Lookup(const ExprPtr& resolved, uint64_t epoch) {
  if (!enabled()) return std::nullopt;
  uint64_t hash = hash_(resolved);
  // Syntactic pattern match outside the lock; pure over the immutable term.
  std::optional<SubslabPattern> pat = MatchSubslab(resolved);
  uint64_t base_hash = pat ? hash_(pat->base) : 0;

  MutexLock lock(&mu_);
  FlushIfStaleLocked(epoch);

  auto it = FindLocked(resolved, hash);
  if (it != lru_.end()) {
    lru_.splice(lru_.begin(), lru_, it);
    ++stats_.hits;
    return it->value;
  }

  if (pat) {
    auto base_it = FindLocked(pat->base, base_hash);
    if (base_it != lru_.end() && base_it->value.kind() == ValueKind::kArray &&
        ProveExtents(resolved, &*pat)) {
      const ArrayRep& arr = base_it->value.array();
      size_t k = pat->extents.size();
      bool fits = arr.dims.size() == k;
      for (size_t j = 0; fits && j < k; ++j) {
        // Double-check the analysis against the concrete dims: the slice
        // must lie fully inside the cached slab.
        fits = pat->extents[j] <= arr.dims[j] &&
               pat->lower[j] <= arr.dims[j] - pat->extents[j];
      }
      if (fits) {
        Result<Value> slice = SliceArray(arr, pat->lower, pat->extents);
        if (slice.ok()) {
          lru_.splice(lru_.begin(), lru_, base_it);  // the slab stays hot
          ++stats_.subsumptions;
          // Memoize the slice under its own key: the repeat is an exact hit.
          InsertLocked(resolved, hash, *slice);
          return *std::move(slice);
        }
      }
    }
  }

  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::Insert(const ExprPtr& resolved, Value value, uint64_t epoch) {
  if (!enabled()) return;
  uint64_t hash = hash_(resolved);
  MutexLock lock(&mu_);
  FlushIfStaleLocked(epoch);
  InsertLocked(resolved, hash, std::move(value));
}

void ResultCache::InsertLocked(const ExprPtr& resolved, uint64_t hash,
                               Value value) {
  uint64_t bytes = EntryBytes(resolved, value);
  if (bytes > max_bytes_) return;  // would evict everything and still not fit
  auto it = FindLocked(resolved, hash);
  if (it != lru_.end()) {
    bytes_ += bytes - it->bytes;
    it->bytes = bytes;
    it->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it);
  } else {
    lru_.push_front(Node{hash, bytes, resolved, std::move(value)});
    index_.emplace(hash, lru_.begin());
    bytes_ += bytes;
  }
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    EraseLocked(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

void ResultCache::FlushIfStaleLocked(uint64_t epoch) {
  if (epoch == valid_epoch_) return;
  stats_.invalidations += lru_.size();
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  valid_epoch_ = epoch;
}

void ResultCache::EraseLocked(LruList::iterator it) {
  auto [begin, end] = index_.equal_range(it->hash);
  for (auto idx = begin; idx != end; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  bytes_ -= it->bytes;
  lru_.erase(it);
}

void ResultCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

ResultCache::Stats ResultCache::stats() const {
  MutexLock lock(&mu_);
  Stats s = stats_;
  s.bytes = bytes_;
  s.entries = lru_.size();
  return s;
}

}  // namespace service
}  // namespace aql
