#include "service/plan_cache.h"

#include "core/expr_ops.h"

namespace aql {
namespace service {

PlanCache::PlanCache(size_t capacity, HashFn hash_for_test)
    : capacity_(capacity),
      hash_(hash_for_test ? std::move(hash_for_test)
                          : [](const ExprPtr& e) { return HashExpr(e); }) {}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const ExprPtr& resolved) {
  if (capacity_ == 0) return nullptr;
  uint64_t hash = hash_(resolved);
  MutexLock lock(&mu_);
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (AlphaEqual(it->second->plan->resolved, resolved)) {
      lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recent
      return it->second->plan;
    }
  }
  return nullptr;
}

namespace {

// Approximate footprint of one entry. The exec::Program and PlanFacts are
// opaque here; a fixed overhead per entry keeps the gauge honest enough
// without a deep-size protocol on every plan component.
uint64_t PlanBytes(const CachedPlan& plan) {
  constexpr uint64_t kEntryOverhead = 1024;
  uint64_t b = kEntryOverhead;
  if (plan.resolved) b += ApproxExprBytes(plan.resolved);
  if (plan.optimized) b += ApproxExprBytes(plan.optimized);
  return b;
}

}  // namespace

void PlanCache::Insert(std::shared_ptr<const CachedPlan> plan) {
  if (capacity_ == 0 || plan == nullptr) return;
  uint64_t hash = hash_(plan->resolved);
  uint64_t bytes = PlanBytes(*plan);
  MutexLock lock(&mu_);
  // Replace an alpha-equal entry in place (two workers racing the same
  // cold query both compile; last insert wins, both plans stay valid).
  auto [begin, end] = index_.equal_range(hash);
  for (auto it = begin; it != end; ++it) {
    if (AlphaEqual(it->second->plan->resolved, plan->resolved)) {
      bytes_ += bytes - it->second->bytes;
      it->second->plan = std::move(plan);
      it->second->bytes = bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
  }
  lru_.push_front(Node{hash, bytes, std::move(plan)});
  index_.emplace(hash, lru_.begin());
  bytes_ += bytes;
  while (lru_.size() > capacity_) {
    EraseLocked(std::prev(lru_.end()));
    ++evictions_;
  }
}

void PlanCache::EraseLocked(LruList::iterator it) {
  auto [begin, end] = index_.equal_range(it->hash);
  for (auto idx = begin; idx != end; ++idx) {
    if (idx->second == it) {
      index_.erase(idx);
      break;
    }
  }
  bytes_ -= it->bytes;
  lru_.erase(it);
}

size_t PlanCache::size() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

uint64_t PlanCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

uint64_t PlanCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

}  // namespace service
}  // namespace aql
