// CDL rendering of NetCDF classic files (the `ncdump` functionality of
// the Unidata toolchain the paper's users would reach for first).
//
// Produces the standard text form:
//
//   netcdf <name> {
//   dimensions:
//           time = UNLIMITED ; // (720 currently)
//           lat = 4 ;
//   variables:
//           float temp(time, lat, lon) ;
//                   temp:units = "degF" ;
//   // global attributes:
//                   :source = "aql synthetic weather" ;
//   data:
//    temp = 67.3, 67.3, 67.2, ... ;
//   }
//
// Data sections can be elided (header-only dumps) or truncated after a
// per-variable element budget.

#ifndef AQL_NETCDF_DUMP_H_
#define AQL_NETCDF_DUMP_H_

#include <string>

#include "base/result.h"
#include "netcdf/reader.h"

namespace aql {
namespace netcdf {

struct DumpOptions {
  bool include_data = true;
  // Maximum elements printed per variable; 0 means all. Elided tails are
  // marked with "...".
  size_t max_elements_per_variable = 64;
};

// Renders the file behind `reader` as CDL. `name` is the dataset name
// printed on the first line (ncdump uses the basename).
Result<std::string> DumpCdl(const NcReader& reader, const std::string& name,
                            const DumpOptions& options = {});

// Convenience: open + dump.
Result<std::string> DumpCdlFile(const std::string& path, const DumpOptions& options = {});

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_DUMP_H_
