// Synthetic weather data (the repository's stand-in for the paper's
// proprietary NYC observations; see DESIGN.md "Substitutions").
//
// Generates genuine NetCDF classic files with the same dimensionality and
// gridding the paper's examples assume:
//   - temp.nc   : temp(time, lat, lon), hourly surface temperature (F)
//   - rh.nc     : rh(time, lat, lon), hourly relative humidity (%)
//   - wind.nc   : ws(time2, alt, lat, lon), HALF-hourly wind speed over
//                 several altitudes (the mismatched grid of §1)
//
// Values are deterministic (seeded LCG + diurnal/seasonal sinusoids), so
// tests can assert exact query answers.

#ifndef AQL_NETCDF_SYNTH_H_
#define AQL_NETCDF_SYNTH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace aql {
namespace netcdf {

struct SynthWeatherOptions {
  uint64_t days = 365;       // length of the time axis in days
  uint64_t lats = 4;
  uint64_t lons = 4;
  uint64_t alts = 3;         // wind file only
  uint64_t seed = 1996;      // paper's publication year
  double base_temp_f = 60.0; // annual mean
  bool use_record_time = true;  // time as the unlimited dimension
};

// Deterministic surface temperature, in deg F, at an absolute hour.
double SynthTemperature(const SynthWeatherOptions& opts, uint64_t hour, uint64_t lat,
                        uint64_t lon);
// Relative humidity in percent.
double SynthHumidity(const SynthWeatherOptions& opts, uint64_t hour, uint64_t lat,
                     uint64_t lon);
// Wind speed (mph) at a half-hour tick and altitude level.
double SynthWind(const SynthWeatherOptions& opts, uint64_t half_hour, uint64_t alt,
                 uint64_t lat, uint64_t lon);

// Writers for the three files. Each returns the number of bytes written.
Result<size_t> WriteTempFile(const std::string& path, const SynthWeatherOptions& opts);
Result<size_t> WriteHumidityFile(const std::string& path, const SynthWeatherOptions& opts);
Result<size_t> WriteWindFile(const std::string& path, const SynthWeatherOptions& opts);

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_SYNTH_H_
