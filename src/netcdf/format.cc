#include "netcdf/format.h"

namespace aql {
namespace netcdf {

size_t NcTypeSize(NcType type) {
  switch (type) {
    case NcType::kByte:
    case NcType::kChar:
      return 1;
    case NcType::kShort:
      return 2;
    case NcType::kInt:
    case NcType::kFloat:
      return 4;
    case NcType::kDouble:
      return 8;
  }
  return 0;
}

const char* NcTypeName(NcType type) {
  switch (type) {
    case NcType::kByte: return "byte";
    case NcType::kChar: return "char";
    case NcType::kShort: return "short";
    case NcType::kInt: return "int";
    case NcType::kFloat: return "float";
    case NcType::kDouble: return "double";
  }
  return "unknown";
}

int NcHeader::FindVar(const std::string& name) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int NcHeader::FindDim(const std::string& name) const {
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<uint64_t> NcHeader::VarShape(const NcVar& var) const {
  std::vector<uint64_t> shape;
  shape.reserve(var.dim_ids.size());
  for (uint32_t id : var.dim_ids) {
    const NcDim& d = dims[id];
    shape.push_back(d.is_record ? numrecs : d.length);
  }
  return shape;
}

}  // namespace netcdf
}  // namespace aql
