#include "netcdf/synth.h"

#include <cmath>

#include "netcdf/writer.h"

namespace aql {
namespace netcdf {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Small deterministic hash -> [0,1): SplitMix64 finalizer.
double Noise(uint64_t seed, uint64_t a, uint64_t b, uint64_t c, uint64_t d) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (a + 1) + 0xBF58476D1CE4E5B9ull * (b + 1) +
               0x94D049BB133111EBull * (c + 1) + 0xD6E8FEB86659FD93ull * (d + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z = z ^ (z >> 31);
  return double(z >> 11) / double(1ull << 53);
}

}  // namespace

double SynthTemperature(const SynthWeatherOptions& opts, uint64_t hour, uint64_t lat,
                        uint64_t lon) {
  double day = double(hour) / 24.0;
  double seasonal = 22.0 * std::sin(2 * kPi * (day - 80.0) / 365.0);  // peak ~mid-July
  double diurnal = 8.0 * std::sin(2 * kPi * (double(hour % 24) - 9.0) / 24.0);
  double site = 1.5 * double(lat) - 0.8 * double(lon);
  double noise = 6.0 * (Noise(opts.seed, hour, lat, lon, 0) - 0.5);
  return opts.base_temp_f + seasonal + diurnal + site + noise;
}

double SynthHumidity(const SynthWeatherOptions& opts, uint64_t hour, uint64_t lat,
                     uint64_t lon) {
  double diurnal = -15.0 * std::sin(2 * kPi * (double(hour % 24) - 9.0) / 24.0);
  double noise = 20.0 * (Noise(opts.seed, hour, lat, lon, 1) - 0.5);
  double rh = 60.0 + diurnal + noise;
  if (rh < 5.0) rh = 5.0;
  if (rh > 100.0) rh = 100.0;
  return rh;
}

double SynthWind(const SynthWeatherOptions& opts, uint64_t half_hour, uint64_t alt,
                 uint64_t lat, uint64_t lon) {
  double base = 6.0 + 3.5 * double(alt);  // faster aloft
  double gust = 4.0 * Noise(opts.seed, half_hour, alt, lat * 97 + lon, 2);
  double diurnal = 2.0 * std::sin(2 * kPi * double(half_hour % 48) / 48.0);
  double ws = base + gust + diurnal;
  return ws < 0 ? 0 : ws;
}

namespace {

Result<size_t> WriteGrid3(const std::string& path, const SynthWeatherOptions& opts,
                          const char* var_name, const char* units,
                          double (*fn)(const SynthWeatherOptions&, uint64_t, uint64_t,
                                       uint64_t)) {
  NcWriter w(1);
  uint64_t hours = opts.days * 24;
  uint32_t time_id = w.AddDim("time", opts.use_record_time ? 0 : hours);
  uint32_t lat_id = w.AddDim("lat", opts.lats);
  uint32_t lon_id = w.AddDim("lon", opts.lons);

  NcAttr unit_attr;
  unit_attr.name = "units";
  unit_attr.type = NcType::kChar;
  unit_attr.chars = units;
  w.AddGlobalAttr(NcAttr{"source", NcType::kChar, {}, "aql synthetic weather"});

  std::vector<double> data;
  data.reserve(hours * opts.lats * opts.lons);
  for (uint64_t h = 0; h < hours; ++h) {
    for (uint64_t la = 0; la < opts.lats; ++la) {
      for (uint64_t lo = 0; lo < opts.lons; ++lo) {
        data.push_back(fn(opts, h, la, lo));
      }
    }
  }
  w.AddVar(var_name, NcType::kFloat, {time_id, lat_id, lon_id}, std::move(data),
           {unit_attr});
  AQL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       w.Encode(opts.use_record_time ? hours : 0));
  AQL_RETURN_IF_ERROR(w.WriteFile(path, opts.use_record_time ? hours : 0));
  return bytes.size();
}

}  // namespace

Result<size_t> WriteTempFile(const std::string& path, const SynthWeatherOptions& opts) {
  return WriteGrid3(path, opts, "temp", "degF", &SynthTemperature);
}

Result<size_t> WriteHumidityFile(const std::string& path,
                                 const SynthWeatherOptions& opts) {
  return WriteGrid3(path, opts, "rh", "percent", &SynthHumidity);
}

Result<size_t> WriteWindFile(const std::string& path, const SynthWeatherOptions& opts) {
  NcWriter w(1);
  uint64_t ticks = opts.days * 48;  // half-hourly grid (§1)
  uint32_t time_id = w.AddDim("time2", opts.use_record_time ? 0 : ticks);
  uint32_t alt_id = w.AddDim("alt", opts.alts);
  uint32_t lat_id = w.AddDim("lat", opts.lats);
  uint32_t lon_id = w.AddDim("lon", opts.lons);
  w.AddGlobalAttr(NcAttr{"source", NcType::kChar, {}, "aql synthetic weather"});

  std::vector<double> data;
  data.reserve(ticks * opts.alts * opts.lats * opts.lons);
  for (uint64_t t = 0; t < ticks; ++t) {
    for (uint64_t al = 0; al < opts.alts; ++al) {
      for (uint64_t la = 0; la < opts.lats; ++la) {
        for (uint64_t lo = 0; lo < opts.lons; ++lo) {
          data.push_back(SynthWind(opts, t, al, la, lo));
        }
      }
    }
  }
  w.AddVar("ws", NcType::kFloat, {time_id, alt_id, lat_id, lon_id}, std::move(data),
           {NcAttr{"units", NcType::kChar, {}, "mph"}});
  AQL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                       w.Encode(opts.use_record_time ? ticks : 0));
  AQL_RETURN_IF_ERROR(w.WriteFile(path, opts.use_record_time ? ticks : 0));
  return bytes.size();
}

}  // namespace netcdf
}  // namespace aql
