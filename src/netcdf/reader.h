// NetCDF classic-format reader with hyperslab extraction.
//
// Reads go through a ByteSource — either an in-memory buffer or a
// pread(2)-backed file handle — so opening a file no longer slurps it
// into memory: the header is parsed from a bounded prefix and slab reads
// fetch only the byte ranges they decode. That is what lets the storage
// layer (src/storage) stream datasets larger than memory tile-by-tile.
// Slab reads are the NETCDF<k> reader's workhorse (paper §4.1):
// `ReadSlab(var, start, count)` returns `count` elements per dimension
// starting at `start`, decoded to doubles in row-major order, honouring
// record-variable interleaving.
//
// All slab arithmetic is overflow-checked: start/count are validated
// against the dimension extents without computing start+count, and the
// element-count product and byte offsets reject uint64_t overflow from
// crafted headers instead of decoding out-of-bounds bytes.

#ifndef AQL_NETCDF_READER_H_
#define AQL_NETCDF_READER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "netcdf/format.h"

namespace aql {
namespace netcdf {

// Random-access byte provider for a NetCDF file. Implementations must be
// thread-safe: concurrent ReadAt calls happen when tiles load in parallel.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual uint64_t size() const = 0;
  // Copies [offset, offset+len) into out; error when the range leaves the
  // source or the underlying read fails.
  virtual Status ReadAt(uint64_t offset, uint64_t len, uint8_t* out) const = 0;
};

// pread(2)-backed file source (O_RDONLY, RAII descriptor).
Result<std::shared_ptr<const ByteSource>> OpenFileSource(const std::string& path);

class NcReader {
 public:
  // Parses the header; the buffer becomes an in-memory ByteSource.
  static Result<NcReader> Open(std::vector<uint8_t> bytes);
  // Opens `path` through a pread-backed source: only the header prefix is
  // read eagerly; data bytes stream on demand per slab.
  static Result<NcReader> OpenFile(const std::string& path);
  static Result<NcReader> OpenSource(std::shared_ptr<const ByteSource> source);

  const NcHeader& header() const { return header_; }

  // Reads a hyperslab of `var_index` as doubles (numeric types only).
  // start.size() == count.size() == rank of the variable.
  Result<std::vector<double>> ReadSlab(int var_index,
                                       const std::vector<uint64_t>& start,
                                       const std::vector<uint64_t>& count) const;

  // Same read, decoded into a caller-owned buffer of the slab's volume —
  // the storage layer's tile loads decode straight into cached tiles.
  Status ReadSlabInto(int var_index, const std::vector<uint64_t>& start,
                      const std::vector<uint64_t>& count, double* out) const;

  // Whole-variable convenience read.
  Result<std::vector<double>> ReadAll(int var_index) const;

  // Reads a character variable's slab as a string (NC_CHAR only).
  Result<std::string> ReadChars(int var_index, const std::vector<uint64_t>& start,
                                const std::vector<uint64_t>& count) const;

 private:
  NcReader(NcHeader header, std::shared_ptr<const ByteSource> source, uint64_t recsize)
      : header_(std::move(header)), source_(std::move(source)), recsize_(recsize) {}

  // Overflow-checked byte offset of element `index` (absolute multi-index
  // over the full variable shape) of variable `var`.
  Result<uint64_t> ElementOffset(const NcVar& var, const std::vector<uint64_t>& shape,
                                 const std::vector<uint64_t>& index) const;

  // Validates a slab request and returns its overflow-checked volume.
  Result<uint64_t> CheckSlab(const NcVar& var, const std::vector<uint64_t>& shape,
                             const std::vector<uint64_t>& start,
                             const std::vector<uint64_t>& count) const;

  NcHeader header_;
  std::shared_ptr<const ByteSource> source_;
  uint64_t recsize_ = 0;  // bytes per record across all record variables
};

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_READER_H_
