// NetCDF classic-format reader with hyperslab extraction.
//
// The file is loaded into memory once; header decoding and slab reads
// operate on the byte buffer. Slab reads are the NETCDF<k> reader's
// workhorse (paper §4.1): `ReadSlab(var, start, count)` returns `count`
// elements per dimension starting at `start`, decoded to doubles in
// row-major order, honouring record-variable interleaving.

#ifndef AQL_NETCDF_READER_H_
#define AQL_NETCDF_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "netcdf/format.h"

namespace aql {
namespace netcdf {

class NcReader {
 public:
  // Parses the header; the buffer is copied and kept for slab reads.
  static Result<NcReader> Open(std::vector<uint8_t> bytes);
  static Result<NcReader> OpenFile(const std::string& path);

  const NcHeader& header() const { return header_; }

  // Reads a hyperslab of `var_index` as doubles (numeric types only).
  // start.size() == count.size() == rank of the variable.
  Result<std::vector<double>> ReadSlab(int var_index,
                                       const std::vector<uint64_t>& start,
                                       const std::vector<uint64_t>& count) const;

  // Whole-variable convenience read.
  Result<std::vector<double>> ReadAll(int var_index) const;

  // Reads a character variable's slab as a string (NC_CHAR only).
  Result<std::string> ReadChars(int var_index, const std::vector<uint64_t>& start,
                                const std::vector<uint64_t>& count) const;

 private:
  NcReader(NcHeader header, std::vector<uint8_t> bytes, uint64_t recsize)
      : header_(std::move(header)), bytes_(std::move(bytes)), recsize_(recsize) {}

  // Byte offset of element `flat_index` (row-major over the full variable
  // shape) of variable `var`.
  uint64_t ElementOffset(const NcVar& var, const std::vector<uint64_t>& shape,
                         const std::vector<uint64_t>& index) const;

  Result<double> DecodeAt(NcType type, uint64_t offset) const;

  NcHeader header_;
  std::vector<uint8_t> bytes_;
  uint64_t recsize_ = 0;  // bytes per record across all record variables
};

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_READER_H_
