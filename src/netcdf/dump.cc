#include "netcdf/dump.h"

#include <filesystem>

#include "base/strings.h"

namespace aql {
namespace netcdf {

namespace {

std::string CdlNumber(NcType type, double v) {
  switch (type) {
    case NcType::kByte:
    case NcType::kShort:
    case NcType::kInt:
      return std::to_string(int64_t(v));
    case NcType::kFloat:
    case NcType::kDouble:
      return RealToString(v);
    case NcType::kChar:
      return std::to_string(int64_t(v));
  }
  return "?";
}

std::string CdlString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void AppendAttr(const std::string& owner, const NcAttr& attr, std::string* out) {
  out->append("\t\t");
  out->append(owner);
  out->push_back(':');
  out->append(attr.name);
  out->append(" = ");
  if (attr.type == NcType::kChar) {
    out->append(CdlString(attr.chars));
  } else {
    for (size_t i = 0; i < attr.numbers.size(); ++i) {
      if (i > 0) out->append(", ");
      out->append(CdlNumber(attr.type, attr.numbers[i]));
    }
  }
  out->append(" ;\n");
}

}  // namespace

Result<std::string> DumpCdl(const NcReader& reader, const std::string& name,
                            const DumpOptions& options) {
  const NcHeader& h = reader.header();
  std::string out = StrCat("netcdf ", name, " {\n");

  if (!h.dims.empty()) {
    out.append("dimensions:\n");
    for (const NcDim& d : h.dims) {
      if (d.is_record) {
        out.append(StrCat("\t", d.name, " = UNLIMITED ; // (", h.numrecs,
                          " currently)\n"));
      } else {
        out.append(StrCat("\t", d.name, " = ", d.length, " ;\n"));
      }
    }
  }

  if (!h.vars.empty()) {
    out.append("variables:\n");
    for (const NcVar& var : h.vars) {
      out.append(StrCat("\t", NcTypeName(var.type), " ", var.name, "("));
      for (size_t i = 0; i < var.dim_ids.size(); ++i) {
        if (i > 0) out.append(", ");
        out.append(h.dims[var.dim_ids[i]].name);
      }
      out.append(") ;\n");
      for (const NcAttr& attr : var.attrs) AppendAttr(var.name, attr, &out);
    }
  }

  if (!h.gattrs.empty()) {
    out.append("\n// global attributes:\n");
    for (const NcAttr& attr : h.gattrs) AppendAttr("", attr, &out);
  }

  if (options.include_data && !h.vars.empty()) {
    out.append("data:\n");
    for (size_t v = 0; v < h.vars.size(); ++v) {
      const NcVar& var = h.vars[v];
      out.append(StrCat(" ", var.name, " = "));
      std::vector<uint64_t> shape = h.VarShape(var);
      uint64_t total = 1;
      for (uint64_t d : shape) total *= d;
      uint64_t budget = options.max_elements_per_variable == 0
                            ? total
                            : std::min<uint64_t>(total,
                                                 options.max_elements_per_variable);
      if (var.type == NcType::kChar) {
        std::vector<uint64_t> start(shape.size(), 0);
        std::vector<uint64_t> count = shape;
        if (!shape.empty()) {
          // Truncate along the first axis to respect the budget roughly.
          uint64_t per_row = total / (shape[0] == 0 ? 1 : shape[0]);
          if (per_row > 0) count[0] = std::min<uint64_t>(shape[0], budget / per_row + 1);
        }
        AQL_ASSIGN_OR_RETURN(std::string chars, reader.ReadChars(int(v), start, count));
        if (chars.size() > budget) chars.resize(budget);
        out.append(CdlString(chars));
        if (budget < total) out.append(", ...");
      } else {
        // Read only the prefix when truncating a 1-d or record variable;
        // fall back to a full read otherwise (files here are small).
        AQL_ASSIGN_OR_RETURN(std::vector<double> data, reader.ReadAll(int(v)));
        for (uint64_t i = 0; i < budget; ++i) {
          if (i > 0) out.append(", ");
          out.append(CdlNumber(var.type, data[i]));
        }
        if (budget < total) out.append(", ...");
      }
      out.append(" ;\n");
    }
  }
  out.append("}\n");
  return out;
}

Result<std::string> DumpCdlFile(const std::string& path, const DumpOptions& options) {
  AQL_ASSIGN_OR_RETURN(NcReader reader, NcReader::OpenFile(path));
  std::string name = std::filesystem::path(path).stem().string();
  return DumpCdl(reader, name, options);
}

}  // namespace netcdf
}  // namespace aql
