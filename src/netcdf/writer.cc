#include "netcdf/writer.h"

#include <cstring>
#include <fstream>

#include "base/strings.h"

namespace aql {
namespace netcdf {

namespace {

constexpr uint32_t kTagDimension = 0x0A;
constexpr uint32_t kTagVariable = 0x0B;
constexpr uint32_t kTagAttribute = 0x0C;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(uint8_t(v >> 24));
  out->push_back(uint8_t(v >> 16));
  out->push_back(uint8_t(v >> 8));
  out->push_back(uint8_t(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, uint32_t(v >> 32));
  PutU32(out, uint32_t(v));
}

void Pad4(std::vector<uint8_t>* out) {
  while (out->size() % 4 != 0) out->push_back(0);
}

void PutName(std::vector<uint8_t>* out, const std::string& name) {
  PutU32(out, uint32_t(name.size()));
  out->insert(out->end(), name.begin(), name.end());
  Pad4(out);
}

void EncodeValue(std::vector<uint8_t>* out, NcType type, double v) {
  switch (type) {
    case NcType::kByte:
      out->push_back(uint8_t(int8_t(v)));
      return;
    case NcType::kChar:
      out->push_back(uint8_t(v));
      return;
    case NcType::kShort: {
      int16_t s = int16_t(v);
      out->push_back(uint8_t(uint16_t(s) >> 8));
      out->push_back(uint8_t(uint16_t(s)));
      return;
    }
    case NcType::kInt: {
      int32_t i = int32_t(v);
      PutU32(out, uint32_t(i));
      return;
    }
    case NcType::kFloat: {
      float f = float(v);
      uint32_t bits;
      std::memcpy(&bits, &f, 4);
      PutU32(out, bits);
      return;
    }
    case NcType::kDouble: {
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      PutU64(out, bits);
      return;
    }
  }
}

void PutAttr(std::vector<uint8_t>* out, const NcAttr& attr) {
  PutName(out, attr.name);
  PutU32(out, uint32_t(attr.type));
  if (attr.type == NcType::kChar) {
    PutU32(out, uint32_t(attr.chars.size()));
    out->insert(out->end(), attr.chars.begin(), attr.chars.end());
  } else {
    PutU32(out, uint32_t(attr.numbers.size()));
    for (double v : attr.numbers) EncodeValue(out, attr.type, v);
  }
  Pad4(out);
}

void PutAttrList(std::vector<uint8_t>* out, const std::vector<NcAttr>& attrs) {
  if (attrs.empty()) {
    PutU32(out, 0);
    PutU32(out, 0);
    return;
  }
  PutU32(out, kTagAttribute);
  PutU32(out, uint32_t(attrs.size()));
  for (const NcAttr& a : attrs) PutAttr(out, a);
}

uint64_t RoundUp4(uint64_t n) { return (n + 3) & ~uint64_t(3); }

}  // namespace

uint32_t NcWriter::AddDim(std::string name, uint64_t length) {
  dims_.push_back(NcDim{std::move(name), length, length == 0});
  return uint32_t(dims_.size() - 1);
}

void NcWriter::AddGlobalAttr(NcAttr attr) { gattrs_.push_back(std::move(attr)); }

uint32_t NcWriter::AddVar(std::string name, NcType type, std::vector<uint32_t> dim_ids,
                          std::vector<double> data, std::vector<NcAttr> attrs) {
  PendingVar pv;
  pv.var.name = std::move(name);
  pv.var.type = type;
  pv.var.dim_ids = std::move(dim_ids);
  pv.var.attrs = std::move(attrs);
  pv.data = std::move(data);
  vars_.push_back(std::move(pv));
  return uint32_t(vars_.size() - 1);
}

uint32_t NcWriter::AddCharVar(std::string name, std::vector<uint32_t> dim_ids,
                              std::string data, std::vector<NcAttr> attrs) {
  PendingVar pv;
  pv.var.name = std::move(name);
  pv.var.type = NcType::kChar;
  pv.var.dim_ids = std::move(dim_ids);
  pv.var.attrs = std::move(attrs);
  pv.char_data = std::move(data);
  vars_.push_back(std::move(pv));
  return uint32_t(vars_.size() - 1);
}

Result<std::vector<uint8_t>> NcWriter::Encode(uint64_t num_records) const {
  // Validate dimensions and compute per-variable sizes.
  size_t record_dims = 0;
  for (const NcDim& d : dims_) record_dims += d.is_record ? 1 : 0;
  if (record_dims > 1) {
    return Status::InvalidArgument("netcdf: at most one record dimension");
  }

  std::vector<uint64_t> vsizes(vars_.size());
  std::vector<uint64_t> per_record_counts(vars_.size(), 0);
  size_t record_var_count = 0;
  for (size_t i = 0; i < vars_.size(); ++i) {
    const PendingVar& pv = vars_[i];
    uint64_t count = 1;  // elements per record for record vars, total else
    bool is_record = false;
    for (size_t j = 0; j < pv.var.dim_ids.size(); ++j) {
      uint32_t id = pv.var.dim_ids[j];
      if (id >= dims_.size()) {
        return Status::InvalidArgument("netcdf: bad dimension id");
      }
      const NcDim& d = dims_[id];
      if (d.is_record) {
        if (j != 0) {
          return Status::InvalidArgument(
              "netcdf: record dimension must be the first dimension");
        }
        is_record = true;
        continue;
      }
      count *= d.length;
    }
    vsizes[i] = RoundUp4(count * NcTypeSize(pv.var.type));
    per_record_counts[i] = count;
    if (is_record) ++record_var_count;
    uint64_t expected = count * (is_record ? num_records : 1);
    uint64_t actual =
        pv.var.type == NcType::kChar ? pv.char_data.size() : pv.data.size();
    if (actual != expected) {
      return Status::InvalidArgument(
          StrCat("netcdf: variable ", pv.var.name, " has ", actual,
                 " values, expected ", expected));
    }
  }

  // Header with placeholder offsets to measure its size, then rebuild.
  // (Offsets only change the byte *values*, never the length, because the
  // begin field is fixed-width.)
  auto build_header = [&](const std::vector<uint64_t>& begins) {
    std::vector<uint8_t> out;
    out.push_back('C');
    out.push_back('D');
    out.push_back('F');
    out.push_back(version_);
    PutU32(&out, uint32_t(num_records));
    if (dims_.empty()) {
      PutU32(&out, 0);
      PutU32(&out, 0);
    } else {
      PutU32(&out, kTagDimension);
      PutU32(&out, uint32_t(dims_.size()));
      for (const NcDim& d : dims_) {
        PutName(&out, d.name);
        PutU32(&out, d.is_record ? 0 : uint32_t(d.length));
      }
    }
    PutAttrList(&out, gattrs_);
    if (vars_.empty()) {
      PutU32(&out, 0);
      PutU32(&out, 0);
    } else {
      PutU32(&out, kTagVariable);
      PutU32(&out, uint32_t(vars_.size()));
      for (size_t i = 0; i < vars_.size(); ++i) {
        const PendingVar& pv = vars_[i];
        PutName(&out, pv.var.name);
        PutU32(&out, uint32_t(pv.var.dim_ids.size()));
        for (uint32_t id : pv.var.dim_ids) PutU32(&out, id);
        PutAttrList(&out, pv.var.attrs);
        PutU32(&out, uint32_t(pv.var.type));
        PutU32(&out, uint32_t(vsizes[i]));
        if (version_ == 2) {
          PutU64(&out, begins[i]);
        } else {
          PutU32(&out, uint32_t(begins[i]));
        }
      }
    }
    return out;
  };

  std::vector<uint64_t> begins(vars_.size(), 0);
  uint64_t header_size = build_header(begins).size();

  // Assign offsets: fixed variables first, then the record section.
  uint64_t offset = header_size;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].var.IsRecord(dims_)) continue;
    begins[i] = offset;
    offset += vsizes[i];
  }
  uint64_t record_start = offset;
  uint64_t recsize = 0;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (!vars_[i].var.IsRecord(dims_)) continue;
    begins[i] = record_start + recsize;
    recsize += vsizes[i];
  }
  // Single-record-variable special case: records are packed unpadded.
  if (record_var_count == 1) {
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (vars_[i].var.IsRecord(dims_)) {
        recsize = per_record_counts[i] * NcTypeSize(vars_[i].var.type);
      }
    }
  }

  std::vector<uint8_t> out = build_header(begins);
  out.resize(record_start + recsize * num_records, 0);

  // Fixed-size data.
  for (size_t i = 0; i < vars_.size(); ++i) {
    const PendingVar& pv = vars_[i];
    if (pv.var.IsRecord(dims_)) continue;
    std::vector<uint8_t> buf;
    if (pv.var.type == NcType::kChar) {
      buf.assign(pv.char_data.begin(), pv.char_data.end());
    } else {
      for (double v : pv.data) EncodeValue(&buf, pv.var.type, v);
    }
    std::memcpy(out.data() + begins[i], buf.data(), buf.size());
  }
  // Record data, interleaved per record.
  for (size_t i = 0; i < vars_.size(); ++i) {
    const PendingVar& pv = vars_[i];
    if (!pv.var.IsRecord(dims_)) continue;
    size_t esize = NcTypeSize(pv.var.type);
    for (uint64_t r = 0; r < num_records; ++r) {
      std::vector<uint8_t> buf;
      if (pv.var.type == NcType::kChar) {
        buf.assign(pv.char_data.begin() + r * per_record_counts[i],
                   pv.char_data.begin() + (r + 1) * per_record_counts[i]);
      } else {
        for (uint64_t n = 0; n < per_record_counts[i]; ++n) {
          EncodeValue(&buf, pv.var.type, pv.data[r * per_record_counts[i] + n]);
        }
      }
      uint64_t at = begins[i] + r * recsize;
      if (at + buf.size() > out.size()) out.resize(at + buf.size(), 0);
      std::memcpy(out.data() + at, buf.data(), buf.size());
      (void)esize;
    }
  }
  return out;
}

Status NcWriter::WriteFile(const std::string& path, uint64_t num_records) const {
  AQL_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, Encode(num_records));
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) return Status::IoError(StrCat("cannot open ", path, " for writing"));
  outf.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!outf) return Status::IoError(StrCat("failed writing ", path));
  return Status::OK();
}

}  // namespace netcdf
}  // namespace aql
