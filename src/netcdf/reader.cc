#include "netcdf/reader.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "base/strings.h"
#include "obs/trace.h"

namespace aql {
namespace netcdf {

namespace {

constexpr uint32_t kTagAbsent = 0;
constexpr uint32_t kTagDimension = 0x0A;
constexpr uint32_t kTagVariable = 0x0B;
constexpr uint32_t kTagAttribute = 0x0C;

// Overflow-checked arithmetic for untrusted header-derived quantities.
bool MulU64(uint64_t a, uint64_t b, uint64_t* out) {
  return !__builtin_mul_overflow(a, b, out);
}
bool AddU64(uint64_t a, uint64_t b, uint64_t* out) {
  return !__builtin_add_overflow(a, b, out);
}

// Big-endian cursor over the header bytes. `hit_end` distinguishes "the
// parse ran past the prefix we fetched" (fetch more and retry) from a
// malformed header.
class Cursor {
 public:
  Cursor(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint64_t pos() const { return pos_; }
  bool hit_end() const { return hit_end_; }

  Status Need(uint64_t n) {
    uint64_t end;
    if (!AddU64(pos_, n, &end) || end > bytes_.size()) {
      hit_end_ = true;
      return Status::FormatError(StrCat("netcdf: truncated file at offset ", pos_));
    }
    return Status::OK();
  }

  Result<uint32_t> U32() {
    AQL_RETURN_IF_ERROR(Need(4));
    uint32_t v = (uint32_t(bytes_[pos_]) << 24) | (uint32_t(bytes_[pos_ + 1]) << 16) |
                 (uint32_t(bytes_[pos_ + 2]) << 8) | uint32_t(bytes_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    AQL_ASSIGN_OR_RETURN(uint32_t hi, U32());
    AQL_ASSIGN_OR_RETURN(uint32_t lo, U32());
    return (uint64_t(hi) << 32) | lo;
  }

  Result<std::string> Name() {
    AQL_ASSIGN_OR_RETURN(uint32_t len, U32());
    AQL_RETURN_IF_ERROR(Need(len));
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    AQL_RETURN_IF_ERROR(SkipPad(len));
    return out;
  }

  Status SkipPad(uint64_t consumed) {
    uint64_t pad = (4 - consumed % 4) % 4;
    AQL_RETURN_IF_ERROR(Need(pad));
    pos_ += pad;
    return Status::OK();
  }

  Status Skip(uint64_t n) {
    AQL_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* Raw() const { return bytes_.data() + pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  uint64_t pos_ = 0;
  bool hit_end_ = false;
};

double DecodeBigEndian(NcType type, const uint8_t* p) {
  switch (type) {
    case NcType::kByte:
      return static_cast<double>(static_cast<int8_t>(p[0]));
    case NcType::kChar:
      return static_cast<double>(p[0]);
    case NcType::kShort:
      return static_cast<double>(static_cast<int16_t>((uint16_t(p[0]) << 8) | p[1]));
    case NcType::kInt:
      return static_cast<double>(static_cast<int32_t>(
          (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) | (uint32_t(p[2]) << 8) | p[3]));
    case NcType::kFloat: {
      uint32_t bits =
          (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) | (uint32_t(p[2]) << 8) | p[3];
      float f;
      std::memcpy(&f, &bits, 4);
      return f;
    }
    case NcType::kDouble: {
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) bits = (bits << 8) | p[i];
      double d;
      std::memcpy(&d, &bits, 8);
      return d;
    }
  }
  return 0;
}

Result<NcType> DecodeType(uint32_t raw) {
  if (raw < 1 || raw > 6) {
    return Status::FormatError(StrCat("netcdf: bad nc_type ", raw));
  }
  return static_cast<NcType>(raw);
}

Result<NcAttr> ParseAttr(Cursor* cur) {
  NcAttr attr;
  AQL_ASSIGN_OR_RETURN(attr.name, cur->Name());
  AQL_ASSIGN_OR_RETURN(uint32_t raw_type, cur->U32());
  AQL_ASSIGN_OR_RETURN(attr.type, DecodeType(raw_type));
  AQL_ASSIGN_OR_RETURN(uint32_t nelems, cur->U32());
  size_t esize = NcTypeSize(attr.type);
  AQL_RETURN_IF_ERROR(cur->Need(uint64_t(nelems) * esize));
  if (attr.type == NcType::kChar) {
    attr.chars.assign(reinterpret_cast<const char*>(cur->Raw()), nelems);
  } else {
    attr.numbers.reserve(nelems);
    for (uint32_t i = 0; i < nelems; ++i) {
      attr.numbers.push_back(DecodeBigEndian(attr.type, cur->Raw() + i * esize));
    }
  }
  AQL_RETURN_IF_ERROR(cur->Skip(uint64_t(nelems) * esize));
  AQL_RETURN_IF_ERROR(cur->SkipPad(uint64_t(nelems) * esize));
  return attr;
}

Result<std::vector<NcAttr>> ParseAttrList(Cursor* cur) {
  AQL_ASSIGN_OR_RETURN(uint32_t tag, cur->U32());
  AQL_ASSIGN_OR_RETURN(uint32_t nelems, cur->U32());
  std::vector<NcAttr> attrs;
  if (tag == kTagAbsent) {
    if (nelems != 0) return Status::FormatError("netcdf: ABSENT list with nonzero count");
    return attrs;
  }
  if (tag != kTagAttribute) {
    return Status::FormatError(StrCat("netcdf: expected attribute tag, got ", tag));
  }
  // Untrusted count: each attribute needs at least 12 header bytes, so a
  // count beyond that bound is corruption — reject before reserving.
  AQL_RETURN_IF_ERROR(cur->Need(uint64_t(nelems) * 12));
  attrs.reserve(nelems);
  for (uint32_t i = 0; i < nelems; ++i) {
    AQL_ASSIGN_OR_RETURN(NcAttr a, ParseAttr(cur));
    attrs.push_back(std::move(a));
  }
  return attrs;
}

// Full header parse over a prefix of the file. On failure, *hit_end says
// whether the parse simply ran off the end of the prefix (the caller
// fetches a longer prefix and retries) rather than finding bad structure.
Status ParseHeader(const std::vector<uint8_t>& bytes, NcHeader* header,
                   uint64_t* recsize_out, bool* hit_end) {
  Cursor cur(bytes);
  *hit_end = false;
  Status parsed = [&]() -> Status {
    AQL_RETURN_IF_ERROR(cur.Need(4));
    if (bytes[0] != 'C' || bytes[1] != 'D' || bytes[2] != 'F') {
      return Status::FormatError("netcdf: bad magic (not a classic NetCDF file)");
    }
    header->version = bytes[3];
    if (header->version != 1 && header->version != 2) {
      return Status::FormatError(
          StrCat("netcdf: unsupported version byte ", int(header->version)));
    }
    AQL_RETURN_IF_ERROR(cur.Skip(4));
    AQL_ASSIGN_OR_RETURN(uint32_t numrecs, cur.U32());
    header->numrecs = numrecs == 0xFFFFFFFFu ? 0 : numrecs;  // STREAMING -> computed later

    // dim_list.
    AQL_ASSIGN_OR_RETURN(uint32_t dim_tag, cur.U32());
    AQL_ASSIGN_OR_RETURN(uint32_t ndims, cur.U32());
    if (dim_tag != kTagAbsent && dim_tag != kTagDimension) {
      return Status::FormatError("netcdf: bad dimension list tag");
    }
    if (dim_tag == kTagAbsent && ndims != 0) {
      return Status::FormatError("netcdf: ABSENT dim list with nonzero count");
    }
    for (uint32_t i = 0; i < ndims; ++i) {
      NcDim dim;
      AQL_ASSIGN_OR_RETURN(dim.name, cur.Name());
      AQL_ASSIGN_OR_RETURN(uint32_t len, cur.U32());
      dim.length = len;
      dim.is_record = (len == 0);
      header->dims.push_back(std::move(dim));
    }

    AQL_ASSIGN_OR_RETURN(header->gattrs, ParseAttrList(&cur));

    // var_list.
    AQL_ASSIGN_OR_RETURN(uint32_t var_tag, cur.U32());
    AQL_ASSIGN_OR_RETURN(uint32_t nvars, cur.U32());
    if (var_tag != kTagAbsent && var_tag != kTagVariable) {
      return Status::FormatError("netcdf: bad variable list tag");
    }
    uint64_t recsize = 0;
    size_t record_var_count = 0;
    for (uint32_t i = 0; i < nvars; ++i) {
      NcVar var;
      AQL_ASSIGN_OR_RETURN(var.name, cur.Name());
      AQL_ASSIGN_OR_RETURN(uint32_t vdims, cur.U32());
      for (uint32_t j = 0; j < vdims; ++j) {
        AQL_ASSIGN_OR_RETURN(uint32_t dim_id, cur.U32());
        if (dim_id >= header->dims.size()) {
          return Status::FormatError("netcdf: variable references unknown dimension");
        }
        var.dim_ids.push_back(dim_id);
      }
      AQL_ASSIGN_OR_RETURN(var.attrs, ParseAttrList(&cur));
      AQL_ASSIGN_OR_RETURN(uint32_t raw_type, cur.U32());
      AQL_ASSIGN_OR_RETURN(var.type, DecodeType(raw_type));
      AQL_ASSIGN_OR_RETURN(uint32_t vsize, cur.U32());
      var.vsize = vsize;
      if (header->version == 2) {
        AQL_ASSIGN_OR_RETURN(var.begin, cur.U64());
      } else {
        AQL_ASSIGN_OR_RETURN(uint32_t begin, cur.U32());
        var.begin = begin;
      }
      if (var.IsRecord(header->dims)) {
        recsize += var.vsize;
        ++record_var_count;
      }
      header->vars.push_back(std::move(var));
    }
    // Classic-format special case: a single record variable packs its
    // records without padding to a 4-byte boundary.
    if (record_var_count == 1) {
      for (const NcVar& v : header->vars) {
        if (v.IsRecord(header->dims)) {
          uint64_t unpadded = NcTypeSize(v.type);
          std::vector<uint64_t> shape = header->VarShape(v);
          for (size_t j = 1; j < shape.size(); ++j) unpadded *= shape[j];
          recsize = unpadded;
        }
      }
    }
    *recsize_out = recsize;
    return Status::OK();
  }();
  if (!parsed.ok()) *hit_end = cur.hit_end();
  return parsed;
}

class MemSource : public ByteSource {
 public:
  explicit MemSource(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  uint64_t size() const override { return bytes_.size(); }

  Status ReadAt(uint64_t offset, uint64_t len, uint8_t* out) const override {
    uint64_t end;
    if (!AddU64(offset, len, &end) || end > bytes_.size()) {
      return Status::FormatError("netcdf: data read past end of file");
    }
    std::memcpy(out, bytes_.data() + offset, len);
    return Status::OK();
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

class FileSource : public ByteSource {
 public:
  FileSource(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}
  ~FileSource() override { ::close(fd_); }

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  uint64_t size() const override { return size_; }

  Status ReadAt(uint64_t offset, uint64_t len, uint8_t* out) const override {
    uint64_t end;
    if (!AddU64(offset, len, &end) || end > size_) {
      return Status::FormatError("netcdf: data read past end of file");
    }
    uint64_t done = 0;
    while (done < len) {
      ssize_t n = ::pread(fd_, out + done, len - done, off_t(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(
            StrCat("pread ", path_, " at ", offset + done, ": ", std::strerror(errno)));
      }
      if (n == 0) {
        return Status::FormatError("netcdf: data read past end of file");
      }
      done += uint64_t(n);
    }
    return Status::OK();
  }

 private:
  int fd_;
  uint64_t size_;
  std::string path_;
};

}  // namespace

Result<std::shared_ptr<const ByteSource>> OpenFileSource(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IoError(StrCat("cannot open ", path));
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Status::IoError(StrCat("cannot stat ", path));
  }
  return std::shared_ptr<const ByteSource>(
      std::make_shared<FileSource>(fd, uint64_t(end), path));
}

Result<NcReader> NcReader::Open(std::vector<uint8_t> bytes) {
  return OpenSource(std::make_shared<MemSource>(std::move(bytes)));
}

Result<NcReader> NcReader::OpenFile(const std::string& path) {
  AQL_ASSIGN_OR_RETURN(std::shared_ptr<const ByteSource> src, OpenFileSource(path));
  return OpenSource(std::move(src));
}

Result<NcReader> NcReader::OpenSource(std::shared_ptr<const ByteSource> source) {
  if (source == nullptr) return Status::InvalidArgument("netcdf: null byte source");
  // Parse the header from a doubling prefix: small files and small headers
  // cost one read; a header larger than the guess re-fetches with a 4x
  // longer prefix until it parses or provably cannot.
  constexpr uint64_t kInitialPrefix = 64 * 1024;
  uint64_t prefix = std::min<uint64_t>(source->size(), kInitialPrefix);
  for (;;) {
    std::vector<uint8_t> bytes(prefix);
    if (prefix > 0) {
      AQL_RETURN_IF_ERROR(source->ReadAt(0, prefix, bytes.data()));
    }
    NcHeader header;
    uint64_t recsize = 0;
    bool hit_end = false;
    Status parsed = ParseHeader(bytes, &header, &recsize, &hit_end);
    if (parsed.ok()) {
      return NcReader(std::move(header), std::move(source), recsize);
    }
    if (!hit_end || prefix >= source->size()) return parsed;
    uint64_t grown;
    if (!MulU64(prefix, 4, &grown)) grown = source->size();
    prefix = std::min<uint64_t>(source->size(), std::max<uint64_t>(grown, 8));
  }
}

Result<uint64_t> NcReader::ElementOffset(const NcVar& var,
                                         const std::vector<uint64_t>& shape,
                                         const std::vector<uint64_t>& index) const {
  constexpr const char* kOverflow = "netcdf: variable data offset overflows";
  size_t esize = NcTypeSize(var.type);
  uint64_t offset = var.begin;
  if (var.IsRecord(header_.dims)) {
    // Record r lives at begin + r * recsize; within the record the
    // remaining dimensions are contiguous.
    uint64_t within = 0;
    for (size_t j = 1; j < shape.size(); ++j) {
      if (!MulU64(within, shape[j], &within) || !AddU64(within, index[j], &within)) {
        return Status::FormatError(kOverflow);
      }
    }
    uint64_t rec_bytes, within_bytes;
    if (!MulU64(index.empty() ? 0 : index[0], recsize_, &rec_bytes) ||
        !MulU64(within, esize, &within_bytes) || !AddU64(offset, rec_bytes, &offset) ||
        !AddU64(offset, within_bytes, &offset)) {
      return Status::FormatError(kOverflow);
    }
    return offset;
  }
  uint64_t flat = 0;
  for (size_t j = 0; j < shape.size(); ++j) {
    if (!MulU64(flat, shape[j], &flat) || !AddU64(flat, index[j], &flat)) {
      return Status::FormatError(kOverflow);
    }
  }
  uint64_t flat_bytes;
  if (!MulU64(flat, esize, &flat_bytes) || !AddU64(offset, flat_bytes, &offset)) {
    return Status::FormatError(kOverflow);
  }
  return offset;
}

Result<uint64_t> NcReader::CheckSlab(const NcVar& var, const std::vector<uint64_t>& shape,
                                     const std::vector<uint64_t>& start,
                                     const std::vector<uint64_t>& count) const {
  if (start.size() != shape.size() || count.size() != shape.size()) {
    return Status::InvalidArgument(
        StrCat("netcdf: slab rank mismatch for variable ", var.name, " (rank ",
               shape.size(), ")"));
  }
  uint64_t total = 1;
  for (size_t j = 0; j < shape.size(); ++j) {
    // Bounds without computing start+count, so a start/count pair summing
    // past 2^64 is rejected instead of wrapping into range.
    if (start[j] > shape[j] || count[j] > shape[j] - start[j]) {
      return Status::InvalidArgument(
          StrCat("netcdf: slab out of range on dimension ", j, " of ", var.name));
    }
    if (!MulU64(total, count[j], &total)) {
      return Status::FormatError("netcdf: slab element count overflows");
    }
  }
  // Every requested element is a distinct byte range of the file, so the
  // request can never legitimately exceed the file size: a larger product
  // means the header lies about the shape.
  uint64_t total_bytes;
  if (!MulU64(total, NcTypeSize(var.type), &total_bytes) ||
      total_bytes > source_->size()) {
    return Status::FormatError("netcdf: variable extent exceeds file size");
  }
  return total;
}

Status NcReader::ReadSlabInto(int var_index, const std::vector<uint64_t>& start,
                              const std::vector<uint64_t>& count, double* out) const {
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  if (var.type == NcType::kChar) {
    return Status::InvalidArgument("netcdf: use ReadChars for char variables");
  }
  std::vector<uint64_t> shape = header_.VarShape(var);
  AQL_ASSIGN_OR_RETURN(uint64_t total, CheckSlab(var, shape, start, count));
  if (total == 0) return Status::OK();

  const size_t k = shape.size();
  const size_t esize = NcTypeSize(var.type);
  // Contiguous run: the innermost dimension, except that a rank-1 record
  // variable strides by recsize_ between records, so its runs are single
  // elements.
  uint64_t run = 1;
  if (k > 0 && !(k == 1 && var.IsRecord(header_.dims))) run = count[k - 1];

  std::vector<uint8_t> buf(run * esize);
  std::vector<uint64_t> rel(k, 0);
  std::vector<uint64_t> abs(k);
  for (uint64_t n = 0; n < total; n += run) {
    for (size_t j = 0; j < k; ++j) abs[j] = start[j] + rel[j];
    AQL_ASSIGN_OR_RETURN(uint64_t offset, ElementOffset(var, shape, abs));
    AQL_RETURN_IF_ERROR(source_->ReadAt(offset, run * esize, buf.data()));
    for (uint64_t i = 0; i < run; ++i) {
      out[n + i] = DecodeBigEndian(var.type, buf.data() + i * esize);
    }
    // Advance the odometer by one whole run (the innermost dimension
    // either IS the run or steps element-wise for rank-1 record vars).
    for (size_t j = k; j-- > 0;) {
      rel[j] += (j == k - 1) ? run : 1;
      if (rel[j] < count[j]) break;
      rel[j] = 0;
    }
  }
  return Status::OK();
}

Result<std::vector<double>> NcReader::ReadSlab(int var_index,
                                               const std::vector<uint64_t>& start,
                                               const std::vector<uint64_t>& count) const {
  obs::Span span("io", "netcdf.read_slab");
  if (span.active()) {
    std::string shape;
    for (uint64_t c : count) shape += StrCat(shape.empty() ? "" : "x", c);
    span.SetDetail(StrCat("subslab ", shape));
  }
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  if (var.type == NcType::kChar) {
    return Status::InvalidArgument("netcdf: use ReadChars for char variables");
  }
  std::vector<uint64_t> shape = header_.VarShape(var);
  AQL_ASSIGN_OR_RETURN(uint64_t total, CheckSlab(var, shape, start, count));
  span.AddCount("elems", total);
  span.AddCount("bytes", total * NcTypeSize(var.type));
  std::vector<double> out(total);
  AQL_RETURN_IF_ERROR(ReadSlabInto(var_index, start, count, out.data()));
  return out;
}

Result<std::vector<double>> NcReader::ReadAll(int var_index) const {
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  std::vector<uint64_t> shape = header_.VarShape(var);
  std::vector<uint64_t> start(shape.size(), 0);
  return ReadSlab(var_index, start, shape);
}

Result<std::string> NcReader::ReadChars(int var_index, const std::vector<uint64_t>& start,
                                        const std::vector<uint64_t>& count) const {
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  if (var.type != NcType::kChar) {
    return Status::InvalidArgument("netcdf: ReadChars on non-char variable");
  }
  std::vector<uint64_t> shape = header_.VarShape(var);
  uint64_t total;
  {
    auto checked = CheckSlab(var, shape, start, count);
    if (!checked.ok()) {
      // Preserve the historical terse messages for the char path.
      if (checked.status().message().find("rank mismatch") != std::string::npos) {
        return Status::InvalidArgument("netcdf: slab rank mismatch");
      }
      if (checked.status().message().find("out of range") != std::string::npos) {
        return Status::InvalidArgument("netcdf: slab out of range");
      }
      return checked.status();
    }
    total = *checked;
  }
  std::string out;
  out.reserve(total);
  std::vector<uint64_t> rel(shape.size(), 0);
  std::vector<uint64_t> abs(shape.size());
  uint8_t byte = 0;
  for (uint64_t n = 0; n < total; ++n) {
    for (size_t j = 0; j < shape.size(); ++j) abs[j] = start[j] + rel[j];
    AQL_ASSIGN_OR_RETURN(uint64_t offset, ElementOffset(var, shape, abs));
    if (Status s = source_->ReadAt(offset, 1, &byte); !s.ok()) {
      return Status::FormatError("netcdf: char read past end");
    }
    out.push_back(static_cast<char>(byte));
    for (size_t j = shape.size(); j-- > 0;) {
      if (++rel[j] < count[j]) break;
      rel[j] = 0;
    }
  }
  return out;
}

}  // namespace netcdf
}  // namespace aql
