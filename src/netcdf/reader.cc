#include "netcdf/reader.h"

#include <cstring>
#include <fstream>

#include "base/strings.h"
#include "obs/trace.h"

namespace aql {
namespace netcdf {

namespace {

constexpr uint32_t kTagAbsent = 0;
constexpr uint32_t kTagDimension = 0x0A;
constexpr uint32_t kTagVariable = 0x0B;
constexpr uint32_t kTagAttribute = 0x0C;

// Big-endian cursor over the header bytes.
class Cursor {
 public:
  Cursor(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  uint64_t pos() const { return pos_; }

  Status Need(uint64_t n) const {
    if (pos_ + n > bytes_.size()) {
      return Status::FormatError(StrCat("netcdf: truncated file at offset ", pos_));
    }
    return Status::OK();
  }

  Result<uint32_t> U32() {
    AQL_RETURN_IF_ERROR(Need(4));
    uint32_t v = (uint32_t(bytes_[pos_]) << 24) | (uint32_t(bytes_[pos_ + 1]) << 16) |
                 (uint32_t(bytes_[pos_ + 2]) << 8) | uint32_t(bytes_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    AQL_ASSIGN_OR_RETURN(uint32_t hi, U32());
    AQL_ASSIGN_OR_RETURN(uint32_t lo, U32());
    return (uint64_t(hi) << 32) | lo;
  }

  Result<std::string> Name() {
    AQL_ASSIGN_OR_RETURN(uint32_t len, U32());
    AQL_RETURN_IF_ERROR(Need(len));
    std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return SkipPad(len).ok() ? Result<std::string>(std::move(out))
                             : Result<std::string>(Status::FormatError("netcdf: bad pad"));
  }

  Status SkipPad(uint64_t consumed) {
    uint64_t pad = (4 - consumed % 4) % 4;
    AQL_RETURN_IF_ERROR(Need(pad));
    pos_ += pad;
    return Status::OK();
  }

  Status Skip(uint64_t n) {
    AQL_RETURN_IF_ERROR(Need(n));
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* Raw() const { return bytes_.data() + pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  uint64_t pos_ = 0;
};

double DecodeBigEndian(NcType type, const uint8_t* p) {
  switch (type) {
    case NcType::kByte:
      return static_cast<double>(static_cast<int8_t>(p[0]));
    case NcType::kChar:
      return static_cast<double>(p[0]);
    case NcType::kShort:
      return static_cast<double>(static_cast<int16_t>((uint16_t(p[0]) << 8) | p[1]));
    case NcType::kInt:
      return static_cast<double>(static_cast<int32_t>(
          (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) | (uint32_t(p[2]) << 8) | p[3]));
    case NcType::kFloat: {
      uint32_t bits =
          (uint32_t(p[0]) << 24) | (uint32_t(p[1]) << 16) | (uint32_t(p[2]) << 8) | p[3];
      float f;
      std::memcpy(&f, &bits, 4);
      return f;
    }
    case NcType::kDouble: {
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) bits = (bits << 8) | p[i];
      double d;
      std::memcpy(&d, &bits, 8);
      return d;
    }
  }
  return 0;
}

Result<NcType> DecodeType(uint32_t raw) {
  if (raw < 1 || raw > 6) {
    return Status::FormatError(StrCat("netcdf: bad nc_type ", raw));
  }
  return static_cast<NcType>(raw);
}

Result<NcAttr> ParseAttr(Cursor* cur) {
  NcAttr attr;
  AQL_ASSIGN_OR_RETURN(attr.name, cur->Name());
  AQL_ASSIGN_OR_RETURN(uint32_t raw_type, cur->U32());
  AQL_ASSIGN_OR_RETURN(attr.type, DecodeType(raw_type));
  AQL_ASSIGN_OR_RETURN(uint32_t nelems, cur->U32());
  size_t esize = NcTypeSize(attr.type);
  AQL_RETURN_IF_ERROR(cur->Need(uint64_t(nelems) * esize));
  if (attr.type == NcType::kChar) {
    attr.chars.assign(reinterpret_cast<const char*>(cur->Raw()), nelems);
  } else {
    attr.numbers.reserve(nelems);
    for (uint32_t i = 0; i < nelems; ++i) {
      attr.numbers.push_back(DecodeBigEndian(attr.type, cur->Raw() + i * esize));
    }
  }
  AQL_RETURN_IF_ERROR(cur->Skip(uint64_t(nelems) * esize));
  AQL_RETURN_IF_ERROR(cur->SkipPad(uint64_t(nelems) * esize));
  return attr;
}

Result<std::vector<NcAttr>> ParseAttrList(Cursor* cur) {
  AQL_ASSIGN_OR_RETURN(uint32_t tag, cur->U32());
  AQL_ASSIGN_OR_RETURN(uint32_t nelems, cur->U32());
  std::vector<NcAttr> attrs;
  if (tag == kTagAbsent) {
    if (nelems != 0) return Status::FormatError("netcdf: ABSENT list with nonzero count");
    return attrs;
  }
  if (tag != kTagAttribute) {
    return Status::FormatError(StrCat("netcdf: expected attribute tag, got ", tag));
  }
  // Untrusted count: each attribute needs at least 12 header bytes, so a
  // count beyond that bound is corruption — reject before reserving.
  AQL_RETURN_IF_ERROR(cur->Need(uint64_t(nelems) * 12));
  attrs.reserve(nelems);
  for (uint32_t i = 0; i < nelems; ++i) {
    AQL_ASSIGN_OR_RETURN(NcAttr a, ParseAttr(cur));
    attrs.push_back(std::move(a));
  }
  return attrs;
}

}  // namespace

Result<NcReader> NcReader::Open(std::vector<uint8_t> bytes) {
  Cursor cur(bytes);
  AQL_RETURN_IF_ERROR(cur.Need(4));
  if (bytes[0] != 'C' || bytes[1] != 'D' || bytes[2] != 'F') {
    return Status::FormatError("netcdf: bad magic (not a classic NetCDF file)");
  }
  NcHeader header;
  header.version = bytes[3];
  if (header.version != 1 && header.version != 2) {
    return Status::FormatError(
        StrCat("netcdf: unsupported version byte ", int(header.version)));
  }
  AQL_RETURN_IF_ERROR(cur.Skip(4));
  AQL_ASSIGN_OR_RETURN(uint32_t numrecs, cur.U32());
  header.numrecs = numrecs == 0xFFFFFFFFu ? 0 : numrecs;  // STREAMING -> computed later

  // dim_list.
  AQL_ASSIGN_OR_RETURN(uint32_t dim_tag, cur.U32());
  AQL_ASSIGN_OR_RETURN(uint32_t ndims, cur.U32());
  if (dim_tag != kTagAbsent && dim_tag != kTagDimension) {
    return Status::FormatError("netcdf: bad dimension list tag");
  }
  if (dim_tag == kTagAbsent && ndims != 0) {
    return Status::FormatError("netcdf: ABSENT dim list with nonzero count");
  }
  for (uint32_t i = 0; i < ndims; ++i) {
    NcDim dim;
    AQL_ASSIGN_OR_RETURN(dim.name, cur.Name());
    AQL_ASSIGN_OR_RETURN(uint32_t len, cur.U32());
    dim.length = len;
    dim.is_record = (len == 0);
    header.dims.push_back(std::move(dim));
  }

  AQL_ASSIGN_OR_RETURN(header.gattrs, ParseAttrList(&cur));

  // var_list.
  AQL_ASSIGN_OR_RETURN(uint32_t var_tag, cur.U32());
  AQL_ASSIGN_OR_RETURN(uint32_t nvars, cur.U32());
  if (var_tag != kTagAbsent && var_tag != kTagVariable) {
    return Status::FormatError("netcdf: bad variable list tag");
  }
  uint64_t recsize = 0;
  size_t record_var_count = 0;
  for (uint32_t i = 0; i < nvars; ++i) {
    NcVar var;
    AQL_ASSIGN_OR_RETURN(var.name, cur.Name());
    AQL_ASSIGN_OR_RETURN(uint32_t vdims, cur.U32());
    for (uint32_t j = 0; j < vdims; ++j) {
      AQL_ASSIGN_OR_RETURN(uint32_t dim_id, cur.U32());
      if (dim_id >= header.dims.size()) {
        return Status::FormatError("netcdf: variable references unknown dimension");
      }
      var.dim_ids.push_back(dim_id);
    }
    AQL_ASSIGN_OR_RETURN(var.attrs, ParseAttrList(&cur));
    AQL_ASSIGN_OR_RETURN(uint32_t raw_type, cur.U32());
    AQL_ASSIGN_OR_RETURN(var.type, DecodeType(raw_type));
    AQL_ASSIGN_OR_RETURN(uint32_t vsize, cur.U32());
    var.vsize = vsize;
    if (header.version == 2) {
      AQL_ASSIGN_OR_RETURN(var.begin, cur.U64());
    } else {
      AQL_ASSIGN_OR_RETURN(uint32_t begin, cur.U32());
      var.begin = begin;
    }
    if (var.IsRecord(header.dims)) {
      recsize += var.vsize;
      ++record_var_count;
    }
    header.vars.push_back(std::move(var));
  }
  // Classic-format special case: a single record variable packs its
  // records without padding to a 4-byte boundary.
  if (record_var_count == 1) {
    for (const NcVar& v : header.vars) {
      if (v.IsRecord(header.dims)) {
        uint64_t unpadded = NcTypeSize(v.type);
        std::vector<uint64_t> shape = header.VarShape(v);
        for (size_t j = 1; j < shape.size(); ++j) unpadded *= shape[j];
        recsize = unpadded;
      }
    }
  }
  return NcReader(std::move(header), std::move(bytes), recsize);
}

Result<NcReader> NcReader::OpenFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError(StrCat("cannot open ", path));
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return Open(std::move(bytes));
}

uint64_t NcReader::ElementOffset(const NcVar& var, const std::vector<uint64_t>& shape,
                                 const std::vector<uint64_t>& index) const {
  size_t esize = NcTypeSize(var.type);
  if (var.IsRecord(header_.dims)) {
    // Record r lives at begin + r * recsize; within the record the
    // remaining dimensions are contiguous.
    uint64_t within = 0;
    for (size_t j = 1; j < shape.size(); ++j) within = within * shape[j] + index[j];
    return var.begin + index[0] * recsize_ + within * esize;
  }
  uint64_t flat = 0;
  for (size_t j = 0; j < shape.size(); ++j) flat = flat * shape[j] + index[j];
  return var.begin + flat * esize;
}

Result<double> NcReader::DecodeAt(NcType type, uint64_t offset) const {
  size_t esize = NcTypeSize(type);
  if (offset + esize > bytes_.size()) {
    return Status::FormatError("netcdf: data read past end of file");
  }
  return DecodeBigEndian(type, bytes_.data() + offset);
}

Result<std::vector<double>> NcReader::ReadSlab(int var_index,
                                               const std::vector<uint64_t>& start,
                                               const std::vector<uint64_t>& count) const {
  obs::Span span("io", "netcdf.read_slab");
  if (span.active()) {
    std::string shape;
    for (uint64_t c : count) shape += StrCat(shape.empty() ? "" : "x", c);
    span.SetDetail(StrCat("subslab ", shape));
  }
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  if (var.type == NcType::kChar) {
    return Status::InvalidArgument("netcdf: use ReadChars for char variables");
  }
  std::vector<uint64_t> shape = header_.VarShape(var);
  if (start.size() != shape.size() || count.size() != shape.size()) {
    return Status::InvalidArgument(
        StrCat("netcdf: slab rank mismatch for variable ", var.name, " (rank ",
               shape.size(), ")"));
  }
  uint64_t total = 1;
  for (size_t j = 0; j < shape.size(); ++j) {
    if (start[j] + count[j] > shape[j]) {
      return Status::InvalidArgument(
          StrCat("netcdf: slab out of range on dimension ", j, " of ", var.name));
    }
    if (count[j] != 0 && total > bytes_.size() / count[j]) {
      // More elements than the file has bytes: the header is corrupt.
      return Status::FormatError("netcdf: variable extent exceeds file size");
    }
    total *= count[j];
  }
  if (total > bytes_.size()) {
    return Status::FormatError("netcdf: variable extent exceeds file size");
  }
  span.AddCount("elems", total);
  span.AddCount("bytes", total * NcTypeSize(var.type));
  std::vector<double> out;
  out.reserve(total);
  if (total == 0) return out;
  std::vector<uint64_t> rel(shape.size(), 0);
  std::vector<uint64_t> abs(shape.size());
  for (uint64_t n = 0; n < total; ++n) {
    for (size_t j = 0; j < shape.size(); ++j) abs[j] = start[j] + rel[j];
    AQL_ASSIGN_OR_RETURN(double v, DecodeAt(var.type, ElementOffset(var, shape, abs)));
    out.push_back(v);
    for (size_t j = shape.size(); j-- > 0;) {
      if (++rel[j] < count[j]) break;
      rel[j] = 0;
    }
  }
  return out;
}

Result<std::vector<double>> NcReader::ReadAll(int var_index) const {
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  std::vector<uint64_t> shape = header_.VarShape(var);
  std::vector<uint64_t> start(shape.size(), 0);
  return ReadSlab(var_index, start, shape);
}

Result<std::string> NcReader::ReadChars(int var_index, const std::vector<uint64_t>& start,
                                        const std::vector<uint64_t>& count) const {
  if (var_index < 0 || var_index >= static_cast<int>(header_.vars.size())) {
    return Status::InvalidArgument("netcdf: bad variable index");
  }
  const NcVar& var = header_.vars[var_index];
  if (var.type != NcType::kChar) {
    return Status::InvalidArgument("netcdf: ReadChars on non-char variable");
  }
  std::vector<uint64_t> shape = header_.VarShape(var);
  if (start.size() != shape.size() || count.size() != shape.size()) {
    return Status::InvalidArgument("netcdf: slab rank mismatch");
  }
  uint64_t total = 1;
  for (size_t j = 0; j < shape.size(); ++j) {
    if (start[j] + count[j] > shape[j]) {
      return Status::InvalidArgument("netcdf: slab out of range");
    }
    if (count[j] != 0 && total > bytes_.size() / count[j]) {
      return Status::FormatError("netcdf: variable extent exceeds file size");
    }
    total *= count[j];
  }
  if (total > bytes_.size()) {
    return Status::FormatError("netcdf: variable extent exceeds file size");
  }
  std::string out;
  out.reserve(total);
  std::vector<uint64_t> rel(shape.size(), 0);
  std::vector<uint64_t> abs(shape.size());
  for (uint64_t n = 0; n < total; ++n) {
    for (size_t j = 0; j < shape.size(); ++j) abs[j] = start[j] + rel[j];
    uint64_t offset = ElementOffset(var, shape, abs);
    if (offset >= bytes_.size()) return Status::FormatError("netcdf: char read past end");
    out.push_back(static_cast<char>(bytes_[offset]));
    for (size_t j = shape.size(); j-- > 0;) {
      if (++rel[j] < count[j]) break;
      rel[j] = 0;
    }
  }
  return out;
}

}  // namespace netcdf
}  // namespace aql
