// NetCDF classic file format, implemented from scratch (paper §4.1).
//
// The paper ties AQL to "legacy" scientific data through a NetCDF driver
// built on the Unidata access library. This module replaces that library
// with a self-contained codec for the *classic* binary format:
//
//   netcdf_file = magic numrecs dim_list gatt_list var_list data
//   magic       = 'C' 'D' 'F' version      (version 1 = classic,
//                                           2 = 64-bit offset)
//   dim_list    = ABSENT | NC_DIMENSION nelems [dim ...]
//   dim         = name dim_length           (length 0 = record dimension)
//   gatt_list   = ABSENT | NC_ATTRIBUTE nelems [attr ...]
//   attr        = name nc_type nelems [values]   (padded to 4 bytes)
//   var_list    = ABSENT | NC_VARIABLE nelems [var ...]
//   var         = name ndims [dimid ...] vatt_list nc_type vsize begin
//   data        = fixed-size variable data, then record data interleaved
//                 one record at a time
//
// All integers are big-endian; names and values pad to 4-byte boundaries;
// `begin` is 4 bytes in CDF-1 and 8 bytes in CDF-2. Record variables
// (first dimension = the record dimension) store one record slab per
// record; when there is exactly one record variable its records are packed
// without padding (the classic-format special case).
//
// External types: NC_BYTE(1) NC_CHAR(2) NC_SHORT(3) NC_INT(4) NC_FLOAT(5)
// NC_DOUBLE(6).

#ifndef AQL_NETCDF_FORMAT_H_
#define AQL_NETCDF_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace aql {
namespace netcdf {

enum class NcType : uint32_t {
  kByte = 1,
  kChar = 2,
  kShort = 3,
  kInt = 4,
  kFloat = 5,
  kDouble = 6,
};

// External (on-disk) size in bytes of one element.
size_t NcTypeSize(NcType type);
const char* NcTypeName(NcType type);

struct NcDim {
  std::string name;
  uint64_t length = 0;  // 0 on disk means the record dimension
  bool is_record = false;
};

// Attribute values are held decoded: numeric attributes as doubles,
// character attributes as a string.
struct NcAttr {
  std::string name;
  NcType type = NcType::kDouble;
  std::vector<double> numbers;
  std::string chars;
};

struct NcVar {
  std::string name;
  NcType type = NcType::kDouble;
  std::vector<uint32_t> dim_ids;
  std::vector<NcAttr> attrs;
  // Populated by the reader / computed by the writer.
  uint64_t vsize = 0;
  uint64_t begin = 0;

  bool IsRecord(const std::vector<NcDim>& dims) const {
    return !dim_ids.empty() && dims[dim_ids[0]].is_record;
  }
};

struct NcHeader {
  uint8_t version = 1;  // 1 = classic, 2 = 64-bit offset
  uint64_t numrecs = 0;
  std::vector<NcDim> dims;
  std::vector<NcAttr> gattrs;
  std::vector<NcVar> vars;

  // Index of the variable called `name`, or -1.
  int FindVar(const std::string& name) const;
  int FindDim(const std::string& name) const;

  // Shape of a variable: record dimension resolved to numrecs.
  std::vector<uint64_t> VarShape(const NcVar& var) const;
};

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_FORMAT_H_
