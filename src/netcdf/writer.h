// NetCDF classic-format writer.
//
// Builds a complete CDF-1 or CDF-2 byte stream from a declarative file
// description: dimensions, global attributes, and variables with their
// data supplied as doubles (converted to each variable's external type).
// Layout follows the classic rules: header, fixed-size variable data in
// declaration order (each slab 4-byte aligned), then record data
// interleaved one record at a time.

#ifndef AQL_NETCDF_WRITER_H_
#define AQL_NETCDF_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "netcdf/format.h"

namespace aql {
namespace netcdf {

class NcWriter {
 public:
  explicit NcWriter(uint8_t version = 1) : version_(version) {}

  // Returns the dimension id. length 0 declares the record dimension
  // (at most one).
  uint32_t AddDim(std::string name, uint64_t length);

  void AddGlobalAttr(NcAttr attr);

  // Data is row-major over the variable's shape with the record dimension
  // (if any) resolved against `num_records` passed to Encode. Returns the
  // variable id.
  uint32_t AddVar(std::string name, NcType type, std::vector<uint32_t> dim_ids,
                  std::vector<double> data, std::vector<NcAttr> attrs = {});

  // Char variable convenience (data supplied as a string).
  uint32_t AddCharVar(std::string name, std::vector<uint32_t> dim_ids, std::string data,
                      std::vector<NcAttr> attrs = {});

  // Serializes the file. num_records is required iff a record dimension
  // was declared.
  Result<std::vector<uint8_t>> Encode(uint64_t num_records = 0) const;

  Status WriteFile(const std::string& path, uint64_t num_records = 0) const;

 private:
  struct PendingVar {
    NcVar var;
    std::vector<double> data;
    std::string char_data;
  };

  uint8_t version_;
  std::vector<NcDim> dims_;
  std::vector<NcAttr> gattrs_;
  std::vector<PendingVar> vars_;
};

}  // namespace netcdf
}  // namespace aql

#endif  // AQL_NETCDF_WRITER_H_
