#include "storage/tile_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "base/env.h"
#include "base/strings.h"
#include "exec/parallel.h"
#include "netcdf/reader.h"
#include "obs/trace.h"

namespace aql {
namespace storage {

namespace {

constexpr uint64_t kDefaultCacheBytes = 256ull << 20;
constexpr uint64_t kDefaultTileBytes = 1ull << 20;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h;
}

uint64_t HashBytes(uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ull;
  return h;
}

std::atomic<uint64_t> g_next_dataset_id{1};

}  // namespace

// One open (path, variable) pair with fixed tile geometry. Immutable after
// construction except for `zones`, which the owning TileStore mutates
// under its mutex.
struct TileStore::Dataset {
  uint64_t id = 0;  // process-unique, never reused (safe memo/tile keys)
  std::string path;
  std::string var_name;
  int var_index = -1;
  netcdf::NcReader reader;
  std::vector<uint64_t> shape;
  double scale = 1.0, offset = 0.0;  // CF packing, baked into tile decode
  uint64_t rows_per_tile = 1;        // leading-dimension rows per tile
  uint64_t row_elems = 1;            // product(shape[1..])
  uint64_t tile_count = 0;
  uint64_t file_size = 0;
  uint64_t mtime_ns = 0;
  mutable std::unordered_map<uint64_t, ZoneMap> zones;  // guarded by store mu_

  Dataset(netcdf::NcReader r) : reader(std::move(r)) {}

  uint64_t FirstRow(uint64_t tile) const { return tile * rows_per_tile; }
  uint64_t RowsInTile(uint64_t tile) const {
    return std::min(rows_per_tile, shape[0] - FirstRow(tile));
  }
};

namespace {

Status StatFile(const std::string& path, uint64_t* size, uint64_t* mtime_ns) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoError(StrCat("cannot stat ", path));
  }
  *size = uint64_t(st.st_size);
  *mtime_ns = uint64_t(st.st_mtim.tv_sec) * 1000000000ull + uint64_t(st.st_mtim.tv_nsec);
  return Status::OK();
}

}  // namespace

// The lazy slab handed to the rest of the system: a rectangular view
// [lower, lower+dims) of a tiled dataset. Bulk reads go tile-by-tile
// (parallel over leading rows); point reads keep a per-thread tile memo so
// element loops pay one cache probe per tile boundary, not per element —
// this IS the tile-granular iteration mode of the exec loops, since their
// subscript evaluation lands here.
class TiledSlab : public LazyRealSlab {
 public:
  TiledSlab(TileStore* store, std::shared_ptr<const TileStore::Dataset> ds,
            std::vector<uint64_t> lower, std::vector<uint64_t> dims)
      : store_(store), ds_(std::move(ds)), lower_(std::move(lower)),
        dims_(std::move(dims)) {
    const size_t k = dims_.size();
    tail_stride_.assign(k, 1);
    for (size_t j = k - 1; j-- > 0;) tail_stride_[j] = tail_stride_[j + 1] * ds_->shape[j + 1];
    // Content-stable provenance: (file identity, region), not dataset id,
    // so reopening the same file hashes the same (dataset ids change).
    uint64_t h = HashBytes(0xcbf29ce484222325ull, ds_->path);
    h = HashBytes(h, ds_->var_name);
    h = FnvMix(h, ds_->file_size);
    h = FnvMix(h, ds_->mtime_ns);
    for (size_t j = 0; j < k; ++j) h = FnvMix(FnvMix(h, lower_[j]), dims_[j]);
    hash_ = h;
  }

  const std::vector<uint64_t>& dims() const override { return dims_; }

  Status ReadInto(const std::vector<uint64_t>& start, const std::vector<uint64_t>& count,
                  double* out) const override {
    const size_t k = dims_.size();
    if (start.size() != k || count.size() != k) {
      return Status::InvalidArgument("tiled read rank mismatch");
    }
    uint64_t volume = 1;
    for (size_t j = 0; j < k; ++j) {
      if (start[j] > dims_[j] || count[j] > dims_[j] - start[j]) {
        return Status::InvalidArgument(
            StrCat("tiled read out of range on dimension ", j));
      }
      volume *= count[j];  // bounded by CheckedVolume at array construction
    }
    if (volume == 0) return Status::OK();

    obs::Span span("io", "storage.read_into");
    span.AddCount("elems", volume);

    const uint64_t out_row = volume / count[0];  // elements per leading row
    auto rows = [&](uint64_t begin, uint64_t end) -> Status {
      std::vector<uint64_t> abs_tail(k > 1 ? k - 1 : 0);
      for (uint64_t r = begin; r < end; ++r) {
        uint64_t g = lower_[0] + start[0] + r;  // global leading row
        uint64_t tile = g / ds_->rows_per_tile;
        AQL_ASSIGN_OR_RETURN(auto data, store_->GetTile(ds_, tile));
        const double* row_base =
            data->data() + (g - ds_->FirstRow(tile)) * ds_->row_elems;
        for (size_t j = 1; j < k; ++j) abs_tail[j - 1] = lower_[j] + start[j];
        CopyTail(row_base, abs_tail.data(), count.data() + 1, k - 1,
                 out + r * out_row);
      }
      return Status::OK();
    };
    if (exec::ShouldParallelize(volume)) {
      return exec::ParallelFor(count[0], rows);
    }
    return rows(0, count[0]);
  }

  Result<double> AtFlat(uint64_t flat) const override {
    const size_t k = dims_.size();
    // Unflatten over the view, shift into dataset coordinates.
    uint64_t tail_off = 0;  // offset within one leading row of the dataset
    uint64_t rem = flat;
    for (size_t j = k; j-- > 1;) {
      uint64_t coord = lower_[j] + rem % dims_[j];
      rem /= dims_[j];
      tail_off += coord * tail_stride_[j];
    }
    uint64_t g = lower_[0] + rem;  // global leading row
    uint64_t tile = g / ds_->rows_per_tile;

    // Per-thread memo: element-at-a-time loops (exec subscripts, the value
    // writers) touch the cache once per tile boundary per thread.
    struct Memo {
      uint64_t dataset_id = 0;  // 0 is never a real id
      uint64_t tile = 0;
      std::shared_ptr<const std::vector<double>> data;
    };
    static thread_local Memo memo;
    if (memo.dataset_id != ds_->id || memo.tile != tile) {
      AQL_ASSIGN_OR_RETURN(auto data, store_->GetTile(ds_, tile));
      memo = Memo{ds_->id, tile, std::move(data)};
    }
    return (*memo.data)[(g - ds_->FirstRow(tile)) * ds_->row_elems + tail_off];
  }

  uint64_t ProvenanceHash() const override { return hash_; }

  // Zone-map pruning hooks (object/value.h): answered from the dataset's
  // zone entries — populated as tiles load, surviving eviction — so a
  // repeated aggregate over a constant region does zero tile I/O. The
  // tile-wide constant covers any trailing-dimension sub-view; NaN
  // constants are refused (the caller's fold could not reproduce the
  // generic path's NaN payload bit-for-bit through comparisons).
  uint64_t ConstantRowRun(uint64_t row, double* value) const override {
    if (row >= dims_[0]) return 0;
    const uint64_t g = lower_[0] + row;
    ZoneMap zone;
    const uint64_t run = store_->ZoneRun(ds_, g, &zone);
    if (run == 0 || !zone.constant) return 0;
    double v;
    std::memcpy(&v, &zone.constant_bits, sizeof(v));
    if (std::isnan(v)) return 0;
    *value = v;
    store_->CountPrune();
    return std::min(run, dims_[0] - row);
  }

  // Conservative per-row bounds: the zone min/max cover the WHOLE tile,
  // so for a trailing-dimension sub-view they are outer bounds, which is
  // the direction range pruning needs. NaN-poisoned zones report unknown.
  uint64_t ZoneRowRun(uint64_t row, double* min, double* max,
                      bool* constant) const override {
    if (row >= dims_[0]) return 0;
    const uint64_t g = lower_[0] + row;
    ZoneMap zone;
    const uint64_t run = store_->ZoneRun(ds_, g, &zone);
    if (run == 0 || std::isnan(zone.min) || std::isnan(zone.max)) return 0;
    *min = zone.min;
    *max = zone.max;
    *constant = zone.constant;
    return std::min(run, dims_[0] - row);
  }

 private:
  // Copies the rectangular tail region (m = rank-1 trailing dimensions,
  // absolute coords abs_tail, extents cnt_tail) out of one dataset row.
  // Innermost dimension is contiguous, so the copy moves whole runs.
  void CopyTail(const double* row_base, const uint64_t* abs_tail,
                const uint64_t* cnt_tail, size_t m, double* out) const {
    if (m == 0) {
      *out = *row_base;
      return;
    }
    const uint64_t run = cnt_tail[m - 1];
    uint64_t rows = 1;
    for (size_t j = 0; j + 1 < m; ++j) rows *= cnt_tail[j];
    std::vector<uint64_t> idx(m, 0);
    for (uint64_t r = 0; r < rows; ++r) {
      uint64_t off = 0;
      for (size_t j = 0; j < m; ++j) off += (abs_tail[j] + idx[j]) * tail_stride_[j + 1];
      std::memcpy(out, row_base + off, run * sizeof(double));
      out += run;
      for (size_t j = m - 1; j-- > 0;) {  // odometer over the outer m-1 dims
        if (++idx[j] < cnt_tail[j]) break;
        idx[j] = 0;
      }
    }
  }

  TileStore* store_;
  std::shared_ptr<const TileStore::Dataset> ds_;
  std::vector<uint64_t> lower_;
  std::vector<uint64_t> dims_;
  std::vector<uint64_t> tail_stride_;  // dataset row-major strides
  uint64_t hash_ = 0;
};

TileStore::TileStore(uint64_t max_bytes)
    : max_bytes_(max_bytes), mu_("storage.tile_cache", lock_rank::kTileCache) {}

TileStore::~TileStore() = default;

TileStore& TileStore::Global() {
  static TileStore* store = new TileStore();  // leaked: outlives all queries
  return *store;
}

uint64_t TileStore::Budget() const {
  return max_bytes_ != 0 ? max_bytes_ : EnvU64("AQL_TILE_CACHE_BYTES", kDefaultCacheBytes);
}

Result<std::shared_ptr<const LazyRealSlab>> TileStore::OpenSlab(
    const std::string& path, const std::string& var,
    const std::vector<uint64_t>& lower, const std::vector<uint64_t>& count) {
  uint64_t size = 0, mtime_ns = 0;
  AQL_RETURN_IF_ERROR(StatFile(path, &size, &mtime_ns));
  const std::string key = StrCat(path, "\n", var);

  // Desired geometry under the current knob; a cached dataset with a
  // different tile shape (test flipped AQL_TILE_BYTES) must not be reused,
  // since tile indexes would alias.
  const uint64_t tile_bytes = std::max<uint64_t>(EnvU64("AQL_TILE_BYTES", kDefaultTileBytes),
                                                 sizeof(double));

  std::shared_ptr<const Dataset> ds;
  {
    MutexLock lock(&mu_);
    auto it = datasets_.find(key);
    if (it != datasets_.end()) {
      const Dataset& d = *it->second;
      uint64_t want_rows = std::max<uint64_t>(
          1, std::min(d.shape[0], (tile_bytes / sizeof(double)) / std::max<uint64_t>(1, d.row_elems)));
      if (d.file_size == size && d.mtime_ns == mtime_ns && d.rows_per_tile == want_rows) {
        ds = it->second;
      }
    }
  }

  if (ds == nullptr) {
    // (Re)open outside the lock: header parsing is I/O.
    AQL_ASSIGN_OR_RETURN(netcdf::NcReader reader, netcdf::NcReader::OpenFile(path));
    int var_index = reader.header().FindVar(var);
    if (var_index < 0) {
      return Status::NotFound(StrCat("no variable ", var, " in ", path));
    }
    auto fresh = std::make_shared<Dataset>(std::move(reader));
    fresh->id = g_next_dataset_id.fetch_add(1, std::memory_order_relaxed);
    fresh->path = path;
    fresh->var_name = var;
    fresh->var_index = var_index;
    fresh->shape = fresh->reader.header().VarShape(fresh->reader.header().vars[var_index]);
    if (fresh->shape.empty() || fresh->shape[0] == 0) {
      return Status::InvalidArgument(
          StrCat("variable ", var, " has no tileable extent"));
    }
    for (const netcdf::NcAttr& attr : fresh->reader.header().vars[var_index].attrs) {
      if (attr.name == "scale_factor" && attr.numbers.size() == 1) {
        fresh->scale = attr.numbers[0];
      } else if (attr.name == "add_offset" && attr.numbers.size() == 1) {
        fresh->offset = attr.numbers[0];
      }
    }
    fresh->row_elems = 1;
    for (size_t j = 1; j < fresh->shape.size(); ++j) fresh->row_elems *= fresh->shape[j];
    if (fresh->row_elems == 0) {
      return Status::InvalidArgument(
          StrCat("variable ", var, " has a zero trailing extent"));
    }
    fresh->rows_per_tile = std::max<uint64_t>(
        1, std::min(fresh->shape[0], (tile_bytes / sizeof(double)) / fresh->row_elems));
    fresh->tile_count =
        (fresh->shape[0] + fresh->rows_per_tile - 1) / fresh->rows_per_tile;
    fresh->file_size = size;
    fresh->mtime_ns = mtime_ns;

    MutexLock lock(&mu_);
    auto it = datasets_.find(key);
    if (it != datasets_.end()) {
      const Dataset& d = *it->second;
      if (d.file_size == size && d.mtime_ns == mtime_ns &&
          d.rows_per_tile == fresh->rows_per_tile) {
        ds = it->second;  // lost the open race; adopt theirs
      } else {
        // Stale (rewritten file or re-tiled): purge its resident tiles so
        // a write-then-read flow never serves old bytes.
        uint64_t stale = d.id;
        for (auto t = tiles_.begin(); t != tiles_.end();) {
          if (t->first.dataset_id == stale) {
            bytes_ -= t->second.bytes;
            lru_.erase(t->second.lru);
            t = tiles_.erase(t);
          } else {
            ++t;
          }
        }
        datasets_.erase(it);
      }
    }
    if (ds == nullptr) {
      datasets_[key] = fresh;
      ds = fresh;
    }
  }

  // Validate the requested region against the variable shape.
  if (lower.size() != ds->shape.size() || count.size() != ds->shape.size()) {
    return Status::InvalidArgument(
        StrCat("slab rank ", lower.size(), " does not match variable ", var, " (rank ",
               ds->shape.size(), ")"));
  }
  for (size_t j = 0; j < ds->shape.size(); ++j) {
    if (lower[j] > ds->shape[j] || count[j] > ds->shape[j] - lower[j]) {
      return Status::InvalidArgument(
          StrCat("slab out of range on dimension ", j, " of ", var));
    }
  }
  return std::shared_ptr<const LazyRealSlab>(
      std::make_shared<TiledSlab>(this, ds, lower, count));
}

Result<std::shared_ptr<const std::vector<double>>> TileStore::GetTile(
    const std::shared_ptr<const Dataset>& ds, uint64_t tile_index) {
  const TileKey key{ds->id, tile_index};
  bool constant_refill = false;
  uint64_t constant_bits = 0;
  {
    MutexLock lock(&mu_);
    auto it = tiles_.find(key);
    if (it != tiles_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
      return it->second.data;
    }
    auto z = ds->zones.find(tile_index);
    if (z != ds->zones.end() && z->second.constant) {
      ++stats_.zone_fills;
      constant_refill = true;
      constant_bits = z->second.constant_bits;
    } else {
      ++stats_.misses;
    }
  }

  const uint64_t rows = ds->RowsInTile(tile_index);
  const uint64_t elems = rows * ds->row_elems;
  auto data = std::make_shared<std::vector<double>>(elems);

  if (constant_refill) {
    // The zone map proves every element of this tile is one bit pattern:
    // rebuild it without touching the file.
    double v;
    std::memcpy(&v, &constant_bits, sizeof(v));
    std::fill(data->begin(), data->end(), v);
    MutexLock lock(&mu_);
    return InsertTile(key, std::move(data));
  }

  obs::Span span("io", "storage.tile_load");
  span.AddCount("elems", elems);
  std::vector<uint64_t> start(ds->shape.size(), 0);
  start[0] = ds->FirstRow(tile_index);
  std::vector<uint64_t> cnt = ds->shape;
  cnt[0] = rows;
  Status read = ds->reader.ReadSlabInto(ds->var_index, start, cnt, data->data());
  if (!read.ok()) {
    MutexLock lock(&mu_);
    ++stats_.read_errors;
    return read;
  }
  // CF unpack inside tile decode — elementwise identical to the eager
  // reader's loop, which is what keeps results bit-identical.
  if (ds->scale != 1.0 || ds->offset != 0.0) {
    for (double& d : *data) d = d * ds->scale + ds->offset;
  }

  ZoneMap zone;
  uint64_t first_bits = 0;
  std::memcpy(&first_bits, data->data(), sizeof(first_bits));
  zone.min = (*data)[0];
  zone.max = (*data)[0];
  zone.constant = true;
  zone.constant_bits = first_bits;
  bool poisoned = false;
  for (double d : *data) {
    if (std::isnan(d)) poisoned = true;
    if (d < zone.min) zone.min = d;
    if (d > zone.max) zone.max = d;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    if (bits != first_bits) zone.constant = false;
  }
  // A NaN anywhere in the tile poisons the bounds: ordered comparisons
  // ignore NaN, so min/max would silently exclude it and a range prune
  // would be unsound. (Constancy is bitwise, so constant refill is still
  // exact even for an all-NaN tile.)
  if (poisoned) {
    zone.min = std::numeric_limits<double>::quiet_NaN();
    zone.max = std::numeric_limits<double>::quiet_NaN();
  }

  MutexLock lock(&mu_);
  ds->zones[tile_index] = zone;
  return InsertTile(key, std::move(data));
}

std::shared_ptr<const std::vector<double>> TileStore::InsertTile(
    const TileKey& key, std::shared_ptr<const std::vector<double>> data) {
  auto it = tiles_.find(key);
  if (it != tiles_.end()) {
    // A concurrent load beat us; adopt its buffer so both callers share.
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return it->second.data;
  }
  const uint64_t budget = Budget();
  const uint64_t tile_bytes = data->size() * sizeof(double) + 64;
  if (tile_bytes > budget) {
    // Oversize for the whole budget: serve uncached so resident bytes
    // never exceed the configured bound.
    return data;
  }
  lru_.push_front(key);
  Entry entry;
  entry.data = data;
  entry.bytes = tile_bytes;
  entry.lru = lru_.begin();
  tiles_.emplace(key, std::move(entry));
  bytes_ += tile_bytes;
  while (bytes_ > budget && !lru_.empty()) {
    const TileKey victim = lru_.back();
    auto v = tiles_.find(victim);
    bytes_ -= v->second.bytes;
    lru_.pop_back();
    tiles_.erase(v);
    ++stats_.evictions;
  }
  return data;
}

uint64_t TileStore::ZoneRun(const std::shared_ptr<const Dataset>& ds, uint64_t row,
                            ZoneMap* zone) {
  if (row >= ds->shape[0]) return 0;
  const uint64_t tile = row / ds->rows_per_tile;
  {
    MutexLock lock(&mu_);
    auto it = ds->zones.find(tile);
    if (it == ds->zones.end()) return 0;
    *zone = it->second;
  }
  return ds->FirstRow(tile) + ds->RowsInTile(tile) - row;
}

void TileStore::CountPrune() {
  MutexLock lock(&mu_);
  ++stats_.prunes;
}

TileStoreStats TileStore::stats() const {
  MutexLock lock(&mu_);
  TileStoreStats s = stats_;
  s.bytes = bytes_;
  s.entries = tiles_.size();
  s.datasets = datasets_.size();
  return s;
}

void TileStore::Clear() {
  MutexLock lock(&mu_);
  datasets_.clear();
  tiles_.clear();
  lru_.clear();
  bytes_ = 0;
  stats_ = TileStoreStats{};
}

}  // namespace storage
}  // namespace aql
