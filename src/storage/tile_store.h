// Out-of-core tiled array storage (the chunked storage manager of the
// Rusu & Cheng survey, sized for the paper's §4.1 NetCDF workloads).
//
// A TileStore serves fixed-shape tiles of NetCDF-backed variables through
// a byte-bounded LRU cache, so datasets larger than memory stream through
// tab/sum pipelines tile-by-tile instead of being slurped into one flat
// buffer. Tiles split the LEADING dimension only: each tile is a
// contiguous row-major range of the variable, which (a) makes every tile
// one coalesced pread range, (b) keeps global row-major element order —
// results stay bit-identical to the RAM-resident path — and (c) composes
// naturally with exec::ParallelFor's contiguous chunking.
//
// Every tile carries a zone map (min / max / constant-value summary;
// defined-count is the tile volume by construction since NetCDF slabs
// decode every cell — the invariant absint's Definedness domain leans on
// when it treats tiled literals as ⊥-free). Zone maps survive eviction:
// a constant tile refills from its zone entry without touching the file
// (storage.tile.zone_fills), and min/max are ready for aggregate-range
// pruning.
//
// Concurrency: one Mutex at lock_rank::kTileCache guards the maps, the
// LRU list and the stats; file I/O and decoding always run unlocked, so
// concurrent loads of different tiles overlap. Two threads missing on the
// same tile may both read it (the second insert adopts the first's
// buffer); that duplicate read is accepted in exchange for never holding
// the lock across I/O.
//
// Knobs (re-read per call, strict parse via base/env.h):
//   AQL_TILE_CACHE_BYTES  cache budget in bytes       (default 256 MiB)
//   AQL_TILE_BYTES        target tile size in bytes   (default   1 MiB)

#ifndef AQL_STORAGE_TILE_STORE_H_
#define AQL_STORAGE_TILE_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "base/sync.h"
#include "object/value.h"

namespace aql {
namespace storage {

// Snapshot of the cache counters (surfaced as storage.tile.* in :stats,
// /stats and /metrics).
struct TileStoreStats {
  uint64_t hits = 0;        // tile served from cache
  uint64_t misses = 0;      // tile loaded from the file
  uint64_t evictions = 0;   // tiles evicted to stay under budget
  uint64_t zone_fills = 0;  // constant tiles refilled from the zone map, no I/O
  uint64_t prunes = 0;      // aggregate reads answered from a zone map, no tile
  uint64_t read_errors = 0; // tile loads that failed (I/O or format)
  uint64_t bytes = 0;       // resident tile bytes (≤ budget)
  uint64_t entries = 0;     // resident tile count
  uint64_t datasets = 0;    // open datasets
};

// Per-tile summary, kept (small) even after the tile's data is evicted.
struct ZoneMap {
  double min = 0;
  double max = 0;
  bool constant = false;    // every element bit-identical (NaN-safe)
  uint64_t constant_bits = 0;  // the repeated double's bit pattern
};

class TileStore {
 public:
  // max_bytes == 0 reads AQL_TILE_CACHE_BYTES on every insertion, so
  // tests can shrink the budget mid-process; a nonzero value pins it.
  explicit TileStore(uint64_t max_bytes = 0);
  ~TileStore();

  TileStore(const TileStore&) = delete;
  TileStore& operator=(const TileStore&) = delete;

  // The process-wide store used by the NETCDF read drivers.
  static TileStore& Global();

  // Opens (or reuses) the tiled dataset for `var` of the classic-format
  // NetCDF file at `path` and returns a lazy slab over the region
  // [lower[j], lower[j]+count[j]) per dimension. Datasets are keyed by
  // (path, var, file size, mtime): rewriting the file invalidates the
  // old dataset and purges its tiles on the next open.
  Result<std::shared_ptr<const LazyRealSlab>> OpenSlab(
      const std::string& path, const std::string& var,
      const std::vector<uint64_t>& lower, const std::vector<uint64_t>& count);

  TileStoreStats stats() const;

  // Drops every dataset, tile and zone map and zeroes the stats.
  void Clear();

  // Effective cache budget right now (pinned value or the env knob).
  uint64_t Budget() const;

 private:
  friend class TiledSlab;
  struct Dataset;
  struct TileKey {
    uint64_t dataset_id;
    uint64_t tile_index;
    bool operator==(const TileKey& o) const {
      return dataset_id == o.dataset_id && tile_index == o.tile_index;
    }
  };
  struct TileKeyHash {
    size_t operator()(const TileKey& k) const {
      return std::hash<uint64_t>()(k.dataset_id * 0x9e3779b97f4a7c15ull ^ k.tile_index);
    }
  };
  struct Entry {
    std::shared_ptr<const std::vector<double>> data;
    uint64_t bytes = 0;
    std::list<TileKey>::iterator lru;  // position in lru_ (front = hottest)
  };

  // Returns the tile's decoded (scale/offset applied) buffer, loading and
  // caching it on a miss. Thread-safe; never holds mu_ across I/O.
  Result<std::shared_ptr<const std::vector<double>>> GetTile(
      const std::shared_ptr<const Dataset>& ds, uint64_t tile_index);

  // Inserts a loaded tile (or adopts a concurrently inserted one) and
  // evicts LRU entries until bytes_ fits the budget.
  std::shared_ptr<const std::vector<double>> InsertTile(
      const TileKey& key, std::shared_ptr<const std::vector<double>> data)
      AQL_REQUIRES(mu_);

  // Zone lookup for aggregate pruning: fills `zone` for the tile holding
  // global row `row` and returns the number of rows from `row` through the
  // end of that tile; 0 when no zone entry exists yet (tile never loaded).
  // No I/O, one short critical section.
  uint64_t ZoneRun(const std::shared_ptr<const Dataset>& ds, uint64_t row,
                   ZoneMap* zone);

  // Records one zone-answered aggregate read (storage.tile.prunes).
  void CountPrune();

  const uint64_t max_bytes_;

  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Dataset>> datasets_
      AQL_GUARDED_BY(mu_);
  std::unordered_map<TileKey, Entry, TileKeyHash> tiles_ AQL_GUARDED_BY(mu_);
  std::list<TileKey> lru_ AQL_GUARDED_BY(mu_);
  uint64_t bytes_ AQL_GUARDED_BY(mu_) = 0;
  TileStoreStats stats_ AQL_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace aql

#endif  // AQL_STORAGE_TILE_STORE_H_
