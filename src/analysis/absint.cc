#include "analysis/absint.h"

#include <algorithm>

#include "base/strings.h"

namespace aql {
namespace analysis {

// ---------- symbolic environment ----------

const ExprPtr* SymEnv::Lookup(const std::string& var) const {
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    if (it->var == var) return &it->ub;
  }
  return nullptr;
}

SymEnv KillShadowed(const SymEnv& env, const std::vector<std::string>& binders) {
  SymEnv out;
  auto mentions_binder = [&](const ExprPtr& e) {
    for (const std::string& b : binders) {
      if (OccursFree(e, b)) return true;
    }
    return false;
  };
  for (const SymFact& f : env.facts) {
    if (std::find(binders.begin(), binders.end(), f.var) != binders.end()) continue;
    if (mentions_binder(f.ub)) continue;
    out.facts.push_back(f);
  }
  for (const ExprPtr& c : env.true_conds) {
    if (!mentions_binder(c)) out.true_conds.push_back(c);
  }
  return out;
}

void AddBinderFacts(const ExprPtr& e, size_t child_index, SymEnv* env) {
  switch (e->kind()) {
    case ExprKind::kTab:
      if (child_index == 0) {
        for (size_t j = 0; j < e->tab_rank(); ++j) {
          ExprPtr bound = e->tab_bound(j);
          // The bound is evaluated outside the binders; only keep it as
          // a fact if no sibling binder shadows a name inside it.
          bool shadowed = false;
          for (const std::string& b : e->binders()) {
            if (OccursFree(bound, b)) shadowed = true;
          }
          if (!shadowed) env->facts.push_back({e->binders()[j], bound});
        }
      }
      break;
    case ExprKind::kBigUnion:
    case ExprKind::kSum:
      if (child_index == 0 && e->child(1)->is(ExprKind::kGen)) {
        ExprPtr n = e->child(1)->child(0);
        if (!OccursFree(n, e->binder())) env->facts.push_back({e->binder(), n});
      }
      break;
    case ExprKind::kIf:
      if (child_index == 1) env->true_conds.push_back(e->child(0));
      break;
    default:
      break;
  }
}

std::optional<uint64_t> ConstUpperBound(const ExprPtr& e, const SymEnv& env,
                                        int depth) {
  if (depth > 16) return std::nullopt;
  switch (e->kind()) {
    case ExprKind::kNatConst: {
      uint64_t n = e->nat_const();
      if (n == UINT64_MAX) return std::nullopt;
      return n + 1;
    }
    case ExprKind::kVar: {
      const ExprPtr* ub = env.Lookup(e->var_name());
      if (ub && (*ub)->is(ExprKind::kNatConst)) return (*ub)->nat_const();
      return std::nullopt;
    }
    case ExprKind::kArith: {
      auto a = ConstUpperBound(e->child(0), env, depth + 1);
      auto b = ConstUpperBound(e->child(1), env, depth + 1);
      switch (e->arith_op()) {
        case ArithOp::kAdd:
          if (a && b && *a + *b > *a) return *a + *b - 1;  // (ua-1)+(ub-1)+1
          return std::nullopt;
        case ArithOp::kMul:
          if (!a || !b) return std::nullopt;
          if (*a <= 1 || *b <= 1) return 1;  // an operand < 1 is 0; product is 0
          if ((*a - 1) > UINT64_MAX / (*b - 1)) return std::nullopt;  // overflow
          return (*a - 1) * (*b - 1) + 1;
        case ArithOp::kMonus:
        case ArithOp::kDiv:
          return a;  // x - y <= x;  x / y <= x for y >= 1 (y = 0 is ⊥)
        case ArithOp::kMod:
          // When defined (y > 0): x % y < y <= ub(y)-1, and x % y <= x.
          if (b && *b >= 1) return a ? std::min(*a, *b - 1) : *b - 1;
          return a;
      }
      return std::nullopt;
    }
    case ExprKind::kIf: {
      auto t = ConstUpperBound(e->child(1), env, depth + 1);
      auto f = ConstUpperBound(e->child(2), env, depth + 1);
      if (t && f) return std::max(*t, *f);
      return std::nullopt;
    }
    case ExprKind::kProj:
      if (e->child(0)->is(ExprKind::kTuple) &&
          e->child(0)->children().size() == e->proj_arity()) {
        return ConstUpperBound(e->child(0)->child(e->proj_index() - 1), env,
                               depth + 1);
      }
      return std::nullopt;
    case ExprKind::kLiteral:
      if (e->literal().kind() == ValueKind::kNat &&
          e->literal().nat_value() < UINT64_MAX) {
        return e->literal().nat_value() + 1;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

bool ProveLt(const ExprPtr& a, const ExprPtr& b, const SymEnv& env, int depth) {
  if (depth > 16) return false;
  // A condition alpha-equal to `a < b` holds on this path.
  for (const ExprPtr& c : env.true_conds) {
    if (c->is(ExprKind::kCmp) && c->cmp_op() == CmpOp::kLt &&
        AlphaEqual(c->child(0), a) && AlphaEqual(c->child(1), b)) {
      return true;
    }
  }
  // Constant interval reasoning: a < ub(a) <= n = b.
  if (b->is(ExprKind::kNatConst)) {
    auto ub = ConstUpperBound(a, env);
    if (ub && *ub <= b->nat_const()) return true;
  }
  switch (a->kind()) {
    case ExprKind::kVar: {
      const ExprPtr* ub = env.Lookup(a->var_name());
      if (ub && AlphaEqual(*ub, b)) return true;  // a < ub = b, symbolically
      break;
    }
    case ExprKind::kArith:
      switch (a->arith_op()) {
        case ArithOp::kMod:
          // x % b < b whenever the mod is defined (b = 0 yields ⊥, so the
          // subscript never sees an index).
          if (AlphaEqual(a->child(1), b)) return true;
          return ProveLt(a->child(0), b, env, depth + 1);
        case ArithOp::kMonus:
        case ArithOp::kDiv:
          // x - y <= x and x / y <= x (y >= 1; y = 0 is ⊥).
          return ProveLt(a->child(0), b, env, depth + 1);
        default:
          break;
      }
      break;
    case ExprKind::kIf: {
      SymEnv then_env = env;
      then_env.true_conds.push_back(a->child(0));
      return ProveLt(a->child(1), b, then_env, depth + 1) &&
             ProveLt(a->child(2), b, env, depth + 1);
    }
    default:
      break;
  }
  return false;
}

ExprPtr DimExtentExpr(const ExprPtr& arr, size_t j, size_t k) {
  if (arr->is(ExprKind::kTab) && arr->tab_rank() == k) return arr->tab_bound(j);
  if (arr->is(ExprKind::kLiteral) && arr->literal().kind() == ValueKind::kArray) {
    const ArrayRep& rep = arr->literal().array();
    if (rep.dims.size() == k) return Expr::NatConst(rep.dims[j]);
  }
  if (arr->is(ExprKind::kDense) && arr->dense_rank() == k &&
      arr->dense_dim(j)->is(ExprKind::kNatConst)) {
    return arr->dense_dim(j);
  }
  if (k == 1) return Expr::Dim(1, arr);
  return Expr::Proj(j + 1, k, Expr::Dim(k, arr));
}

std::string AbsPathString(const std::vector<size_t>& path) {
  if (path.empty()) return "<root>";
  std::string out;
  for (size_t i : path) {
    if (!out.empty()) out += '.';
    out += std::to_string(i);
  }
  return out;
}

// ---------- lattice helpers ----------

namespace {

constexpr uint64_t kUnbounded = UINT64_MAX;

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a == kUnbounded || b == kUnbounded || a > kUnbounded / b) return kUnbounded;
  return a * b;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  if (a == kUnbounded || b == kUnbounded || a + b < a) return kUnbounded;
  return a + b;
}

Extent JoinExtent(const Extent& a, const Extent& b) {
  if (a.kind == Extent::Kind::kConst && b.kind == Extent::Kind::kConst &&
      a.value == b.value) {
    return a;
  }
  if (a.kind == Extent::Kind::kSym && b.kind == Extent::Kind::kSym &&
      AlphaEqual(a.sym, b.sym)) {
    return a;
  }
  return Extent::Top();
}

ShapeVal JoinShape(const ShapeVal& a, const ShapeVal& b) {
  if (a.kind != b.kind) return ShapeVal::Top();
  if (a.kind != ShapeVal::Kind::kArray) return a;
  if (a.extents.size() != b.extents.size()) return ShapeVal::Top();
  std::vector<Extent> extents(a.extents.size());
  for (size_t j = 0; j < extents.size(); ++j) {
    extents[j] = JoinExtent(a.extents[j], b.extents[j]);
  }
  return ShapeVal::Array(std::move(extents));
}

Definedness JoinDef(Definedness a, Definedness b) {
  return a == b ? a : Definedness::kUnknown;
}

CardVal JoinCard(const CardVal& a, const CardVal& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

// Strict meet of child definedness: any always-⊥ operand makes the whole
// always-⊥ (every construct below is strict in these operands), any
// unknown makes it unknown.
Definedness MeetStrict(std::initializer_list<Definedness> kids) {
  Definedness out = Definedness::kDefined;
  for (Definedness d : kids) {
    if (d == Definedness::kBottom) return Definedness::kBottom;
    if (d == Definedness::kUnknown) out = Definedness::kUnknown;
  }
  return out;
}

Definedness MeetStrictAll(const std::vector<AbsVal>& kids) {
  Definedness out = Definedness::kDefined;
  for (const AbsVal& k : kids) {
    out = MeetStrict({out, k.def.whole});
  }
  return out;
}

AbsVal Scalar(Definedness d) {
  AbsVal v;
  v.shape = ShapeVal::NotArray();
  v.def = {d, true};
  return v;
}

AbsVal TopVal() { return AbsVal{}; }

// An extent's value interval [lo, hi] for cardinality products.
void ExtentInterval(const Extent& x, const SymEnv& env, uint64_t* lo,
                    uint64_t* hi) {
  *lo = 0;
  *hi = kUnbounded;
  if (x.kind == Extent::Kind::kConst) {
    *lo = *hi = x.value;
  } else if (x.kind == Extent::Kind::kSym) {
    if (std::optional<uint64_t> ub = ConstUpperBound(x.sym, env)) *hi = *ub - 1;
  }
}

// True when the divisor of a nat div/mod can never be zero, judged
// syntactically on constants only (arithmetic like `1 + x` wraps, so it
// proves nothing). A real divisor is IEEE — never ⊥ — and mixed operands
// are a type error, not ⊥, so real constants count as safe too.
bool DivisorNonzero(const ExprPtr& e) {
  if (e->is(ExprKind::kNatConst)) return e->nat_const() != 0;
  if (e->is(ExprKind::kRealConst)) return true;
  if (e->is(ExprKind::kLiteral)) {
    const Value& v = e->literal();
    if (v.kind() == ValueKind::kNat) return v.nat_value() != 0;
    if (v.kind() == ValueKind::kReal) return true;
  }
  return false;
}

bool DivisorConstZero(const ExprPtr& e) {
  if (e->is(ExprKind::kNatConst)) return e->nat_const() == 0;
  if (e->is(ExprKind::kLiteral)) {
    return e->literal().kind() == ValueKind::kNat && e->literal().nat_value() == 0;
  }
  return false;
}

// Scans a literal array for per-point ⊥ holes (bounded; boxed payloads
// beyond the cap conservatively count as holed). Unboxed payloads —
// including kTiled slabs, whose elements are total by construction
// (storage zone maps track defined counts per tile) — never hold ⊥.
bool LiteralElemsDefined(const ArrayRep& rep) {
  if (rep.unboxed()) return true;
  constexpr size_t kScanCap = 4096;
  if (rep.elems.size() > kScanCap) return false;
  for (const Value& v : rep.elems) {
    if (v.is_bottom()) return false;
  }
  return true;
}

}  // namespace

// ---------- rendering ----------

Extent Extent::Sym(ExprPtr e) {
  if (e->is(ExprKind::kNatConst)) return Const(e->nat_const());
  Extent x;
  x.kind = Kind::kSym;
  x.sym = std::move(e);
  return x;
}

std::string Extent::ToString() const {
  switch (kind) {
    case Kind::kTop: return "?";
    case Kind::kConst: return std::to_string(value);
    case Kind::kSym: return sym->ToString();
  }
  return "?";
}

std::string ShapeVal::ToString() const {
  switch (kind) {
    case Kind::kTop: return "?";
    case Kind::kNotArray: return "scalar";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t j = 0; j < extents.size(); ++j) {
        if (j > 0) out += " x ";
        out += extents[j].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

std::string CardVal::ToString() const {
  return StrCat("[", lo, ",", hi == kUnbounded ? std::string("inf") : std::to_string(hi),
                "]");
}

std::string AbsVal::ToString() const {
  const char* d = def.whole == Definedness::kDefined   ? "bottom-free"
                  : def.whole == Definedness::kBottom ? "always-bottom"
                                                      : "unknown";
  std::string out = StrCat("shape=", shape.ToString(), " def=", d);
  if (shape.kind == ShapeVal::Kind::kArray) {
    out += def.elems_defined ? " elems=hole-free" : " elems=unknown";
  }
  if (shape.kind != ShapeVal::Kind::kNotArray) out += StrCat(" card=", card.ToString());
  return out;
}

// ---------- the product domain ----------

AbsVal CoreDomains::FreeVar(const ExprPtr&) {
  // Per the ⊥-free-inputs premise, a free variable's value is never ⊥
  // itself — but it may be a partial array (holes) of unknown shape.
  AbsVal v;
  v.def = {Definedness::kDefined, false};
  return v;
}

AbsVal CoreDomains::BinderVal(const ExprPtr& parent, size_t child_index,
                              size_t binder_index, const SymEnv& env) {
  (void)env;
  // Tabulation binders are nats (loop indices); every other binder ranges
  // over elements of a set (Sum/BigUnion) or a lambda's argument — never
  // ⊥ (sets cannot contain ⊥; Apply is strict in its argument), but of
  // unknown shape and possibly a holed array.
  AbsVal v;
  if (parent->is(ExprKind::kTab) && child_index == 0) {
    (void)binder_index;
    return Scalar(Definedness::kDefined);
  }
  v.def = {Definedness::kDefined, false};
  return v;
}

AbsVal CoreDomains::LetTransfer(const ExprPtr& apply, const Val& bound,
                                const Val& body) {
  (void)apply;
  // Apply is strict in both operands: an always-⊥ binding forces ⊥; a
  // possibly-⊥ binding caps the body's claim at unknown.
  AbsVal out = body;
  if (bound.def.whole == Definedness::kBottom) {
    out.def.whole = Definedness::kBottom;
  } else if (bound.def.whole == Definedness::kUnknown &&
             out.def.whole == Definedness::kDefined) {
    out.def.whole = Definedness::kUnknown;
  }
  return out;
}

AbsVal CoreDomains::Transfer(const ExprPtr& e, const std::vector<Val>& kids,
                             const SymEnv& env) {
  switch (e->kind()) {
    case ExprKind::kNatConst:
    case ExprKind::kRealConst:
    case ExprKind::kBoolConst:
    case ExprKind::kStrConst:
      return Scalar(Definedness::kDefined);
    case ExprKind::kBottom: {
      AbsVal v;
      v.def.whole = Definedness::kBottom;
      return v;
    }
    case ExprKind::kVar:
      return FreeVar(e);  // bound occurrences are resolved by the interpreter
    case ExprKind::kLambda: {
      // The closure itself: a defined scalar value regardless of its body
      // (the body only runs at application sites).
      return Scalar(Definedness::kDefined);
    }
    case ExprKind::kExternal:
      return Scalar(Definedness::kDefined);
    case ExprKind::kApply: {
      // Strict in fn and arg; the result of an unknown function is ⊤.
      AbsVal v;
      Definedness d = MeetStrictAll(kids);
      if (d == Definedness::kBottom) v.def.whole = Definedness::kBottom;
      return v;
    }
    case ExprKind::kTuple: {
      AbsVal v = Scalar(MeetStrictAll(kids));
      return v;
    }
    case ExprKind::kProj: {
      // Strict; never ⊥ itself (arity mismatch is a Status error). The
      // projected field's shape is unknown (tuples are not tracked).
      AbsVal v;
      Definedness d = MeetStrictAll(kids);
      v.def.whole = d;
      return v;
    }
    case ExprKind::kEmptySet: {
      AbsVal v = Scalar(Definedness::kDefined);
      v.shape = ShapeVal::NotArray();
      v.card = {0, 0};
      return v;
    }
    case ExprKind::kSingleton: {
      AbsVal v;
      v.shape = ShapeVal::NotArray();
      v.def = {MeetStrictAll(kids), true};
      v.card = {1, 1};
      return v;
    }
    case ExprKind::kUnion: {
      AbsVal v;
      v.shape = ShapeVal::NotArray();
      v.def = {MeetStrictAll(kids), true};
      // |A ∪ B| ranges from max of the lower bounds (dedup can only
      // shrink toward the larger operand) to the sum of the uppers.
      v.card = {std::max(kids[0].card.lo, kids[1].card.lo),
                SatAdd(kids[0].card.hi, kids[1].card.hi)};
      return v;
    }
    case ExprKind::kGen: {
      AbsVal v;
      v.shape = ShapeVal::NotArray();
      v.def = {MeetStrictAll(kids), true};
      if (e->child(0)->is(ExprKind::kNatConst)) {
        uint64_t n = e->child(0)->nat_const();
        v.card = {n, n};
      } else if (std::optional<uint64_t> ub = ConstUpperBound(e->child(0), env)) {
        v.card = {0, *ub - 1};
      } else {
        v.card = {0, kUnbounded};
      }
      return v;
    }
    case ExprKind::kBigUnion:
    case ExprKind::kSum: {
      // kids[0] = body, kids[1] = source. Strict in the source and in
      // every body evaluation — but an always-⊥ body only forces ⊥ when
      // the source is provably non-empty (an empty loop never runs it).
      const AbsVal& body = kids[0];
      const AbsVal& src = kids[1];
      AbsVal v;
      v.shape = ShapeVal::NotArray();
      Definedness d;
      if (src.def.whole == Definedness::kBottom) {
        d = Definedness::kBottom;
      } else if (body.def.whole == Definedness::kBottom && src.card.lo >= 1 &&
                 src.def.whole == Definedness::kDefined) {
        d = Definedness::kBottom;
      } else {
        d = MeetStrict({src.def.whole, body.def.whole});
        if (body.def.whole == Definedness::kBottom) d = Definedness::kUnknown;
      }
      if (e->is(ExprKind::kSum)) {
        v = Scalar(d);
        return v;
      }
      v.def = {d, true};
      v.card = {0, SatMul(src.card.hi, body.card.hi)};
      return v;
    }
    case ExprKind::kGet: {
      // get({x}) = x; get of anything but a one-element set is ⊥.
      const AbsVal& s = kids[0];
      AbsVal v;
      if (s.def.whole == Definedness::kBottom) {
        v.def.whole = Definedness::kBottom;
        return v;
      }
      if (s.card.hi == 0 || s.card.lo >= 2) {
        // Provably empty, or provably at least two elements: always ⊥
        // (when the operand evaluates to a set at all).
        if (s.def.whole == Definedness::kDefined) {
          v.def.whole = Definedness::kBottom;
          return v;
        }
      }
      if (s.card.lo == 1 && s.card.hi == 1 &&
          s.def.whole == Definedness::kDefined) {
        // Surely a singleton; its element is never ⊥ (sets cannot hold
        // ⊥) but may be a holed array of unknown shape.
        v.def = {Definedness::kDefined, false};
        return v;
      }
      return v;
    }
    case ExprKind::kIf: {
      const AbsVal& c = kids[0];
      const AbsVal& t = kids[1];
      const AbsVal& f = kids[2];
      AbsVal v;
      if (c.def.whole == Definedness::kBottom ||
          (t.def.whole == Definedness::kBottom &&
           f.def.whole == Definedness::kBottom)) {
        v.def.whole = Definedness::kBottom;
        return v;
      }
      v.shape = JoinShape(t.shape, f.shape);
      v.card = JoinCard(t.card, f.card);
      v.def.elems_defined = t.def.elems_defined && f.def.elems_defined;
      v.def.whole = MeetStrict({c.def.whole, JoinDef(t.def.whole, f.def.whole)});
      // One definitely-⊥ branch caps the claim (the other may be taken).
      if (t.def.whole == Definedness::kBottom || f.def.whole == Definedness::kBottom) {
        if (v.def.whole == Definedness::kDefined) v.def.whole = Definedness::kUnknown;
      }
      return v;
    }
    case ExprKind::kCmp:
      return Scalar(MeetStrictAll(kids));
    case ExprKind::kArith: {
      Definedness d = MeetStrictAll(kids);
      if (e->arith_op() == ArithOp::kDiv || e->arith_op() == ArithOp::kMod) {
        if (DivisorConstZero(e->child(1))) {
          // nat/0 and nat%0 are ⊥ (a real numerator would be a type
          // error — no value — so the always-⊥ claim stands vacuously).
          AbsVal v;
          v.def.whole = Definedness::kBottom;
          return v;
        }
        if (d == Definedness::kDefined && !DivisorNonzero(e->child(1))) {
          d = Definedness::kUnknown;
        }
      }
      return Scalar(d);
    }
    case ExprKind::kTab: {
      // kids[0] = body, kids[1..] = bounds. Bounds are strict; a ⊥ body
      // value stays as a per-point hole (arrays are partial).
      AbsVal v;
      Definedness bounds = Definedness::kDefined;
      std::vector<Extent> extents;
      extents.reserve(e->tab_rank());
      uint64_t lo = 1, hi = 1;
      for (size_t j = 0; j < e->tab_rank(); ++j) {
        bounds = MeetStrict({bounds, kids[1 + j].def.whole});
        Extent x = Extent::Sym(e->tab_bound(j));
        uint64_t xlo, xhi;
        ExtentInterval(x, env, &xlo, &xhi);
        lo = SatMul(lo, xlo);
        hi = SatMul(hi, xhi);
        extents.push_back(std::move(x));
      }
      v.shape = ShapeVal::Array(std::move(extents));
      v.def.whole = bounds;
      v.def.elems_defined = kids[0].def.whole == Definedness::kDefined;
      v.card = {lo, hi};
      return v;
    }
    case ExprKind::kSubscript: {
      const AbsVal& arr = kids[0];
      const AbsVal& idx = kids[1];
      AbsVal v;
      Definedness d = MeetStrict({arr.def.whole, idx.def.whole});
      if (d == Definedness::kBottom) {
        v.def.whole = Definedness::kBottom;
        return v;
      }
      // In-range proof, per dimension, against the array's inferred
      // extents (falling back to the syntactic extent of the operand).
      size_t k = 0;
      if (arr.shape.kind == ShapeVal::Kind::kArray) {
        k = arr.shape.extents.size();
      } else if (e->child(1)->is(ExprKind::kTuple)) {
        k = e->child(1)->children().size();
      } else {
        k = 1;
      }
      if (k == 0) k = 1;
      const ExprPtr& ie = e->child(1);
      std::vector<ExprPtr> parts(k);
      if (k == 1) {
        parts[0] = ie;
      } else if (ie->is(ExprKind::kTuple) && ie->children().size() == k) {
        for (size_t j = 0; j < k; ++j) parts[j] = ie->child(j);
      } else {
        for (size_t j = 0; j < k; ++j) parts[j] = Expr::Proj(j + 1, k, ie);
      }
      bool all_proven = true;
      bool any_const_oob = false;
      for (size_t j = 0; j < k; ++j) {
        bool proven = false;
        const Extent* x = arr.shape.kind == ShapeVal::Kind::kArray
                              ? &arr.shape.extents[j]
                              : nullptr;
        if (x != nullptr && x->kind == Extent::Kind::kConst) {
          ExprPtr c = Expr::NatConst(x->value);
          proven = ProveLt(parts[j], c, env);
          if (parts[j]->is(ExprKind::kNatConst) &&
              parts[j]->nat_const() >= x->value) {
            any_const_oob = true;
          }
        } else if (x != nullptr && x->kind == Extent::Kind::kSym) {
          proven = ProveLt(parts[j], x->sym, env);
        }
        if (!proven) proven = ProveLt(parts[j], DimExtentExpr(e->child(0), j, k), env);
        all_proven = all_proven && proven;
      }
      if (any_const_oob) {
        // A constant index at or past a constant extent: ⊥ whenever the
        // subscript evaluates (index ⊥ or array errors are covered by
        // strictness / the vacuous-claim convention).
        v.def.whole = Definedness::kBottom;
        return v;
      }
      if (d == Definedness::kDefined && all_proven && arr.def.elems_defined) {
        v.def.whole = Definedness::kDefined;
      }
      // The element's own shape/card are unknown.
      return v;
    }
    case ExprKind::kDim:
      return Scalar(MeetStrictAll(kids));
    case ExprKind::kIndex: {
      // index!k builds an array of *sets* — never holed — of dims
      // determined by the keys at run time.
      AbsVal v;
      Definedness d = MeetStrictAll(kids);
      v.def = {d, true};
      v.shape = ShapeVal::Array(std::vector<Extent>(e->rank(), Extent::Top()));
      return v;
    }
    case ExprKind::kDense: {
      // kids[0..rank) = dims (strict), the rest are element expressions
      // whose ⊥ stays as per-point holes. A run-time dims/count mismatch
      // is ⊥, so non-constant dims cap the claim at unknown.
      AbsVal v;
      size_t rank = e->dense_rank();
      Definedness dims_def = Definedness::kDefined;
      std::vector<Extent> extents;
      extents.reserve(rank);
      bool all_const = true;
      uint64_t volume = 1;
      for (size_t j = 0; j < rank; ++j) {
        dims_def = MeetStrict({dims_def, kids[j].def.whole});
        if (e->dense_dim(j)->is(ExprKind::kNatConst)) {
          uint64_t dim = e->dense_dim(j)->nat_const();
          extents.push_back(Extent::Const(dim));
          volume = volume * dim;  // wraps exactly like the runtime product
        } else {
          extents.push_back(Extent::Sym(e->dense_dim(j)));
          all_const = false;
        }
      }
      bool elems = true;
      for (size_t j = rank; j < kids.size(); ++j) {
        elems = elems && kids[j].def.whole == Definedness::kDefined;
      }
      v.shape = ShapeVal::Array(std::move(extents));
      v.def.elems_defined = elems;
      if (dims_def == Definedness::kBottom) {
        v.def.whole = Definedness::kBottom;
      } else if (all_const && volume != e->dense_value_count()) {
        v.def.whole =
            dims_def == Definedness::kDefined ? Definedness::kBottom
                                              : Definedness::kUnknown;
      } else if (all_const) {
        v.def.whole = dims_def;
        v.card = {volume, volume};
      } else {
        v.def.whole = Definedness::kUnknown;  // mismatch possible at run time
      }
      return v;
    }
    case ExprKind::kLiteral: {
      const Value& val = e->literal();
      AbsVal v;
      if (val.is_bottom()) {
        v.def.whole = Definedness::kBottom;
        return v;
      }
      v.def.whole = Definedness::kDefined;
      if (val.kind() == ValueKind::kArray) {
        const ArrayRep& rep = val.array();
        std::vector<Extent> extents;
        extents.reserve(rep.dims.size());
        uint64_t volume = 1;
        for (uint64_t dim : rep.dims) {
          extents.push_back(Extent::Const(dim));
          volume = SatMul(volume, dim);
        }
        v.shape = ShapeVal::Array(std::move(extents));
        v.def.elems_defined = LiteralElemsDefined(rep);
        v.card = {volume, volume};
      } else if (val.kind() == ValueKind::kSet) {
        v.shape = ShapeVal::NotArray();
        v.def.elems_defined = true;
        uint64_t n = val.set().elems.size();
        v.card = {n, n};
      } else {
        v = Scalar(Definedness::kDefined);
      }
      return v;
    }
  }
  return TopVal();
}

AbsVal AnalyzeAbs(const ExprPtr& e) {
  CoreDomains domain;
  AbsInterp<CoreDomains> interp(&domain);
  return interp.Analyze(e);
}

bool AbsContradicts(const AbsVal& a, const AbsVal& b, std::string* why) {
  auto fail = [why](std::string msg) {
    if (why) *why = std::move(msg);
    return true;
  };
  if (a.def.whole == Definedness::kDefined && b.def.whole == Definedness::kBottom) {
    return fail("definedness flipped: bottom-free became always-bottom");
  }
  // The reverse flip (always-⊥ becoming bottom-free) is NOT a
  // contradiction: the stock rules may refine ⊥ into a value — beta drops
  // a ⊥ argument whose binder is dead, dead-code removal deletes a ⊥
  // branch — and the optimizer's soundness contract only forbids making a
  // term *less* defined. When the pre-term is always-⊥ its shape and
  // cardinality claims are vacuous (it never yields an array or set), so
  // every remaining check is skipped too.
  if (a.def.whole == Definedness::kBottom) return false;
  if (a.shape.kind != ShapeVal::Kind::kTop && b.shape.kind != ShapeVal::Kind::kTop) {
    if (a.shape.kind != b.shape.kind) {
      return fail(StrCat("shape kind changed: ", a.shape.ToString(), " vs ",
                         b.shape.ToString()));
    }
    if (a.shape.kind == ShapeVal::Kind::kArray) {
      if (a.shape.extents.size() != b.shape.extents.size()) {
        return fail(StrCat("rank changed: ", a.shape.ToString(), " vs ",
                           b.shape.ToString()));
      }
      for (size_t j = 0; j < a.shape.extents.size(); ++j) {
        const Extent& x = a.shape.extents[j];
        const Extent& y = b.shape.extents[j];
        if (x.kind == Extent::Kind::kConst && y.kind == Extent::Kind::kConst &&
            x.value != y.value) {
          return fail(StrCat("extent ", j + 1, " changed: ", x.value, " vs ",
                             y.value));
        }
      }
    }
  }
  bool a_bounded = a.card.hi != UINT64_MAX;
  bool b_bounded = b.card.hi != UINT64_MAX;
  if ((a_bounded && b.card.lo > a.card.hi) || (b_bounded && a.card.lo > b.card.hi)) {
    return fail(StrCat("cardinalities disjoint: ", a.card.ToString(), " vs ",
                       b.card.ToString()));
  }
  return false;
}

}  // namespace analysis
}  // namespace aql
