#include "analysis/verifier.h"

#include <algorithm>
#include <functional>
#include <map>

#include "analysis/affine.h"
#include "base/strings.h"
#include "core/expr_ops.h"
#include "opt/rewriter.h"

namespace aql {
namespace analysis {

namespace {

constexpr size_t kMaxPinpointReplays = 256;  // firing-trace replay budget
constexpr size_t kMaxRemovalRules = 64;      // leave-one-out replay budget

std::string PathString(const std::vector<size_t>& path) {
  if (path.empty()) return "<root>";
  std::string out;
  for (size_t i : path) {
    if (!out.empty()) out += '.';
    out += std::to_string(i);
  }
  return out;
}

// Clipped rendering for messages: large terms would swamp the report.
std::string Snippet(const ExprPtr& e) {
  std::string s = e->ToString();
  if (s.size() > 120) s = s.substr(0, 117) + "...";
  return s;
}

void AddViolation(VerifierReport* report, VerifyPass pass, const std::string& phase,
                  std::string rule, std::string path, std::string message) {
  report->violations.push_back(Violation{pass, phase, std::move(rule),
                                         std::move(path), std::move(message)});
}

// ---- ScopeCheck ----

// Structural well-formedness of one node: the child/binder layout every
// construct must have (core/expr.h's inventory). A rule that rebuilds
// nodes by hand can get this wrong in ways the factories would reject.
std::string ShapeError(const Expr& e) {
  size_t n = e.children().size();
  size_t b = e.binders().size();
  auto want = [&](size_t children, size_t binders) -> std::string {
    if (n == children && b == binders) return "";
    return StrCat(ExprKindName(e.kind()), " node has ", n, " children and ", b,
                  " binders; expected ", children, " and ", binders);
  };
  switch (e.kind()) {
    case ExprKind::kVar:
    case ExprKind::kExternal:
      if (e.var_name().empty()) return "variable with empty name";
      return want(0, 0);
    case ExprKind::kEmptySet:
    case ExprKind::kBoolConst:
    case ExprKind::kNatConst:
    case ExprKind::kRealConst:
    case ExprKind::kStrConst:
    case ExprKind::kBottom:
    case ExprKind::kLiteral:
      return want(0, 0);
    case ExprKind::kLambda:
      return want(1, 1);
    case ExprKind::kApply:
    case ExprKind::kUnion:
    case ExprKind::kCmp:
    case ExprKind::kArith:
    case ExprKind::kSubscript:
      return want(2, 0);
    case ExprKind::kIf:
      return want(3, 0);
    case ExprKind::kSingleton:
    case ExprKind::kGet:
    case ExprKind::kGen:
      return want(1, 0);
    case ExprKind::kBigUnion:
    case ExprKind::kSum:
      return want(2, 1);
    case ExprKind::kTuple:
      if (n < 2) return StrCat("tuple of arity ", n, "; expected >= 2");
      return b == 0 ? "" : "tuple with binders";
    case ExprKind::kProj:
      if (n != 1 || b != 0) return want(1, 0);
      if (e.proj_arity() < 2 || e.proj_index() < 1 || e.proj_index() > e.proj_arity()) {
        return StrCat("projection pi_{", e.proj_index(), ",", e.proj_arity(),
                      "} out of range");
      }
      return "";
    case ExprKind::kTab:
      if (b < 1) return "tabulation with no binders";
      if (n != 1 + b) {
        return StrCat("tabulation of rank ", b, " has ", n,
                      " children; expected ", 1 + b);
      }
      return "";
    case ExprKind::kDim:
    case ExprKind::kIndex:
      if (n != 1 || b != 0) return want(1, 0);
      return e.rank() >= 1 ? "" : "dim/index of rank 0";
    case ExprKind::kDense:
      if (e.rank() < 1) return "dense literal of rank 0";
      if (n < e.rank()) {
        return StrCat("dense literal of rank ", e.rank(), " has only ", n,
                      " children");
      }
      return "";
  }
  return "";
}

struct ScopeWalker {
  const std::set<std::string>* allowed;
  const std::string* phase;
  VerifierReport* report;
  size_t reported = 0;

  void Walk(const ExprPtr& e, std::vector<std::string>* bound,
            std::vector<size_t>* path) {
    if (reported >= 16) return;  // one broken rule floods; cap the noise
    std::string shape = ShapeError(*e);
    if (!shape.empty()) {
      AddViolation(report, VerifyPass::kScope, *phase, "", PathString(*path),
                   std::move(shape));
      ++reported;
    }
    for (const std::string& b : e->binders()) {
      if (b.empty()) {
        AddViolation(report, VerifyPass::kScope, *phase, "", PathString(*path),
                     StrCat("empty binder name on ", ExprKindName(e->kind())));
        ++reported;
      }
    }
    if (e->is(ExprKind::kVar)) {
      const std::string& name = e->var_name();
      bool is_bound =
          std::find(bound->rbegin(), bound->rend(), name) != bound->rend();
      if (!is_bound && !allowed->count(name)) {
        AddViolation(report, VerifyPass::kScope, *phase, "", PathString(*path),
                     StrCat("unbound variable ", name,
                            " (not free in the pre-phase term)"));
        ++reported;
      }
      return;
    }
    auto child_binders = ChildBinders(*e);
    for (size_t i = 0; i < e->children().size(); ++i) {
      for (const std::string& b : child_binders[i]) bound->push_back(b);
      path->push_back(i);
      Walk(e->child(i), bound, path);
      path->pop_back();
      bound->resize(bound->size() - child_binders[i].size());
    }
  }
};

// ---- TypePreservation ----

// One-way matching: `specific` must equal `general` after substituting
// general's type variables. Bindings must be consistent.
bool MatchGeneral(const TypePtr& general, const TypePtr& specific,
                  std::map<uint64_t, TypePtr>* binding) {
  if (general->is(TypeKind::kVar)) {
    auto [it, inserted] = binding->emplace(general->var_id(), specific);
    return inserted || Type::Equals(it->second, specific);
  }
  if (specific->is(TypeKind::kVar)) return false;  // would specialize
  if (general->kind() != specific->kind()) return false;
  switch (general->kind()) {
    case TypeKind::kBool:
    case TypeKind::kNat:
    case TypeKind::kReal:
    case TypeKind::kString:
      return true;
    case TypeKind::kBase:
      return general->base_name() == specific->base_name();
    case TypeKind::kProduct: {
      if (general->fields().size() != specific->fields().size()) return false;
      for (size_t i = 0; i < general->fields().size(); ++i) {
        if (!MatchGeneral(general->fields()[i], specific->fields()[i], binding)) {
          return false;
        }
      }
      return true;
    }
    case TypeKind::kSet:
      return MatchGeneral(general->elem(), specific->elem(), binding);
    case TypeKind::kArray:
      return general->rank() == specific->rank() &&
             MatchGeneral(general->elem(), specific->elem(), binding);
    case TypeKind::kArrow:
      return MatchGeneral(general->from(), specific->from(), binding) &&
             MatchGeneral(general->to(), specific->to(), binding);
    case TypeKind::kVar:
      return false;  // handled above
  }
  return false;
}

// ---- NormalFormCheck helpers ----

// One extra sweep of the phase's rules over `post`: a true fixpoint fires
// nothing. Reports the first rule that still applies and where.
bool StillFires(const ExprPtr& post, const std::vector<Rule>& rules,
                const RewriteOptions& rewrite_options, std::string* rule,
                std::string* site) {
  bool fired = false;
  RewriteOptions opts = rewrite_options;
  opts.max_passes = 1;
  opts.on_firing = [&](const std::string& r, const ExprPtr& before, const ExprPtr&) {
    if (!fired && rule) {
      *rule = r;
      if (site) *site = Snippet(before);
    }
    fired = true;
  };
  RewriteFixpoint(post, rules, opts, nullptr);
  return fired;
}

// Mirrors rules_constraint.cc's ReplaceCheck: is there a residual
// `var < bound` check, alpha-equal to the one a tabulation/gen binder
// guarantees, that the §5 elimination rules should have removed?
bool HasResidualCheck(const ExprPtr& e, const ExprPtr& target,
                      const std::set<std::string>& target_fv) {
  if (AlphaEqual(e, target)) return true;
  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    bool captured = false;
    for (const std::string& b : child_binders[i]) {
      if (target_fv.count(b)) captured = true;
    }
    if (captured) continue;  // the rules stop here too (side condition)
    if (HasResidualCheck(e->child(i), target, target_fv)) return true;
  }
  return false;
}

struct NormalFormWalker {
  const std::string* phase;
  VerifierReport* report;
  bool check_constraints = false;
  size_t reported = 0;

  void Walk(const ExprPtr& e, std::vector<size_t>* path) {
    if (reported >= 16) return;
    Check(e, *path);
    for (size_t i = 0; i < e->children().size(); ++i) {
      path->push_back(i);
      Walk(e->child(i), path);
      path->pop_back();
    }
  }

  void Flag(const std::vector<size_t>& path, std::string message) {
    AddViolation(report, VerifyPass::kNormalForm, *phase, "", PathString(path),
                 std::move(message));
    ++reported;
  }

  void Check(const ExprPtr& e, const std::vector<size_t>& path) {
    switch (e->kind()) {
      case ExprKind::kIf:
        if (e->child(0)->is(ExprKind::kBoolConst)) {
          Flag(path, "constant conditional survived normalization");
        }
        break;
      case ExprKind::kProj:
        if (e->child(0)->is(ExprKind::kTuple) &&
            e->child(0)->children().size() == e->proj_arity()) {
          Flag(path, "projection of a literal tuple survived normalization");
        }
        break;
      case ExprKind::kUnion:
        if (e->child(0)->is(ExprKind::kEmptySet) ||
            e->child(1)->is(ExprKind::kEmptySet)) {
          Flag(path, "union with {} operand survived normalization");
        }
        break;
      case ExprKind::kBigUnion: {
        const ExprPtr& src = e->child(1);
        if (src->is(ExprKind::kBigUnion)) {
          Flag(path,
               "comprehension-of-comprehension vertical left unfused");
        } else if (src->is(ExprKind::kUnion) || src->is(ExprKind::kIf) ||
                   src->is(ExprKind::kEmptySet)) {
          Flag(path, StrCat("big union over ", ExprKindName(src->kind()),
                            " survived normalization"));
        }
        if (check_constraints) CheckBinderGuards(e, path);
        break;
      }
      case ExprKind::kSum:
        if (check_constraints) CheckBinderGuards(e, path);
        break;
      case ExprKind::kTab:
        if (check_constraints) CheckBinderGuards(e, path);
        break;
      default:
        break;
    }
  }

  // Post-constraint-elimination: no bound check the §5 rules target may
  // remain (redundant tabulation/gen binder guards).
  void CheckBinderGuards(const ExprPtr& e, const std::vector<size_t>& path) {
    auto residual = [&](const ExprPtr& body, const std::string& var,
                        const ExprPtr& bound) {
      ExprPtr target = Expr::Cmp(CmpOp::kLt, Expr::Var(var), bound);
      std::set<std::string> fv = FreeVars(bound);
      fv.insert(var);
      if (HasResidualCheck(body, target, fv)) {
        Flag(path, StrCat("provably-redundant bound check ", Snippet(target),
                          " survived constraint elimination"));
      }
    };
    if (e->is(ExprKind::kTab)) {
      for (size_t j = 0; j < e->tab_rank(); ++j) {
        residual(e->tab_body(), e->binders()[j], e->tab_bound(j));
      }
    } else if (e->child(1)->is(ExprKind::kGen)) {
      residual(e->child(0), e->binder(), e->child(1)->child(0));
    }
  }
};

void MergeStats(const RewriteStats& in, RewriteStats* out) {
  if (!out) return;
  for (const auto& [rule, count] : in.firings) out->firings[rule] += count;
  out->passes += in.passes;
  out->hit_budget |= in.hit_budget;
}

}  // namespace

const char* VerifyPassName(VerifyPass pass) {
  switch (pass) {
    case VerifyPass::kScope: return "scope";
    case VerifyPass::kTypePreservation: return "type-preservation";
    case VerifyPass::kNormalForm: return "normal-form";
    case VerifyPass::kBounds: return "bounds";
    case VerifyPass::kAbsint: return "absint";
    case VerifyPass::kAffine: return "affine";
  }
  return "?";
}

std::string Violation::ToString() const {
  std::string out = StrCat("[", VerifyPassName(pass), "] phase ", phase);
  if (!rule.empty()) out += StrCat(", rule ", rule);
  out += StrCat(", at ", path, ": ", message);
  return out;
}

std::string VerifierReport::ToString() const {
  std::string out;
  if (violations.empty()) {
    out = StrCat("IR verification: OK (", phases_checked.size(),
                 " phase(s) checked)\n");
  } else {
    out = StrCat("IR verification: ", violations.size(), " violation(s)\n");
    for (const Violation& v : violations) out += StrCat("  ", v.ToString(), "\n");
  }
  for (const std::string& p : phases_checked) out += StrCat("  phase ", p, "\n");
  out += bounds.ToString();
  if (!absint.empty()) out += StrCat("absint: ", absint, "\n");
  return out;
}

void ScopeCheck(const ExprPtr& e, const std::set<std::string>& allowed_free,
                const std::string& phase, VerifierReport* report) {
  ScopeWalker walker{&allowed_free, &phase, report};
  std::vector<std::string> bound;
  std::vector<size_t> path;
  walker.Walk(e, &bound, &path);
}

bool TypeGeneralizes(const TypePtr& post, const TypePtr& pre) {
  std::map<uint64_t, TypePtr> binding;
  return MatchGeneral(post, pre, &binding);
}

Verifier::Verifier(TypeChecker::ExternalLookup external_lookup)
    : Verifier(std::move(external_lookup), Options{}) {}

Verifier::Verifier(TypeChecker::ExternalLookup external_lookup, Options options)
    : external_lookup_(std::move(external_lookup)), options_(options) {}

TypePtr Verifier::TryType(const ExprPtr& e) const {
  TypeChecker checker(external_lookup_);
  Result<TypePtr> r = checker.Check(e);
  return r.ok() ? *r : nullptr;
}

std::string Verifier::PinpointByTrace(
    const std::vector<Rule>& rules, const RewriteOptions& rewrite_options,
    const ExprPtr& pre, const std::function<bool(const ExprPtr&)>& broken) const {
  std::vector<std::string> trace;
  RewriteOptions topts = rewrite_options;
  topts.on_firing = [&trace](const std::string& rule, const ExprPtr&,
                             const ExprPtr&) { trace.push_back(rule); };
  RewriteFixpoint(pre, rules, topts, nullptr);
  size_t limit = std::min(trace.size(), kMaxPinpointReplays);
  for (size_t k = 1; k <= limit; ++k) {
    RewriteOptions bopts = rewrite_options;
    bopts.max_firings = k;
    ExprPtr mid = RewriteFixpoint(pre, rules, bopts, nullptr);
    if (broken(mid)) return trace[k - 1];
  }
  return "";
}

std::string Verifier::PinpointByRemoval(
    const std::vector<Rule>& rules, const RewriteOptions& rewrite_options,
    const ExprPtr& pre, const std::function<bool(const ExprPtr&)>& broken) const {
  if (rules.size() > kMaxRemovalRules) return "";
  for (size_t i = 0; i < rules.size(); ++i) {
    std::vector<Rule> reduced;
    reduced.reserve(rules.size() - 1);
    for (size_t j = 0; j < rules.size(); ++j) {
      if (j != i) reduced.push_back(rules[j]);
    }
    ExprPtr out = RewriteFixpoint(pre, reduced, rewrite_options, nullptr);
    if (!broken(out)) return rules[i].name;
  }
  return "";
}

void Verifier::VerifyPhase(const std::string& phase, const std::vector<Rule>& rules,
                           const RewriteOptions& rewrite_options, const ExprPtr& pre,
                           const ExprPtr& post, bool hit_budget,
                           VerifierReport* report) {
  size_t before = report->violations.size();

  // ---- 1. ScopeCheck ----
  if (options_.scope) {
    std::set<std::string> allowed = FreeVars(pre);
    size_t scope_before = report->violations.size();
    ScopeCheck(post, allowed, phase, report);
    if (report->violations.size() > scope_before && options_.pinpoint) {
      std::string rule = PinpointByTrace(
          rules, rewrite_options, pre, [&allowed](const ExprPtr& mid) {
            VerifierReport probe;
            ScopeCheck(mid, allowed, "", &probe);
            return !probe.ok();
          });
      for (size_t i = scope_before; i < report->violations.size(); ++i) {
        report->violations[i].rule = rule;
      }
    }
  }

  // ---- 2. TypePreservation ----
  // Needs a typed baseline; deliberately open or untypeable inputs (some
  // rewriter unit tests drive the optimizer on fragments) skip the pass.
  if (options_.types) {
    TypePtr pre_type = TryType(pre);
    if (pre_type) {
      TypeChecker checker(external_lookup_);
      Result<TypePtr> post_type = checker.Check(post);
      bool bad = !post_type.ok() || !TypeGeneralizes(*post_type, pre_type);
      if (bad) {
        std::string message =
            post_type.ok()
                ? StrCat("type changed from ", pre_type->ToString(), " to ",
                         (*post_type)->ToString())
                : StrCat("term no longer typechecks: ",
                         post_type.status().ToString());
        std::string rule;
        if (options_.pinpoint) {
          rule = PinpointByTrace(
              rules, rewrite_options, pre,
              [this, &pre_type](const ExprPtr& mid) {
                TypePtr t = TryType(mid);
                return !t || !TypeGeneralizes(t, pre_type);
              });
        }
        AddViolation(report, VerifyPass::kTypePreservation, phase, std::move(rule),
                     "<root>", std::move(message));
      }
    }
  }

  // ---- 3. NormalFormCheck ----
  // A phase that hit its rewrite budget never promised a normal form.
  if (options_.normal_form && !hit_budget) {
    std::string still_rule, site;
    if (StillFires(post, rules, rewrite_options, &still_rule, &site)) {
      // Fixpoint brokenness is relative to the rule base that ran — a
      // leave-one-out replay must re-check against the *reduced* base
      // (the removed rule would keep firing on the clean output), so the
      // generic PinpointByRemoval does not fit; scan explicitly.
      std::string culprit;
      if (options_.pinpoint && rules.size() <= kMaxRemovalRules) {
        for (size_t i = 0; i < rules.size() && culprit.empty(); ++i) {
          std::vector<Rule> reduced;
          reduced.reserve(rules.size() - 1);
          for (size_t j = 0; j < rules.size(); ++j) {
            if (j != i) reduced.push_back(rules[j]);
          }
          ExprPtr out = RewriteFixpoint(pre, reduced, rewrite_options, nullptr);
          if (!StillFires(out, reduced, rewrite_options, nullptr, nullptr)) {
            culprit = rules[i].name;
          }
        }
      }
      AddViolation(report, VerifyPass::kNormalForm, phase, std::move(culprit),
                   "<root>",
                   StrCat("not a fixpoint: rule ", still_rule,
                          " still applies at ", site));
    }
    if (phase == "normalization" || phase == "constraint-elimination") {
      NormalFormWalker walker{&phase, report,
                              phase == "constraint-elimination"};
      std::vector<size_t> path;
      walker.Walk(post, &path);
    }
  }

  // ---- 5. AbsintCheck ----
  // A sound rewrite preserves the value, so the abstract analyses of the
  // pre- and post-phase terms may not make contradictory claims.
  if (options_.absint) {
    AbsVal pre_v = AnalyzeAbs(pre);
    AbsVal post_v = AnalyzeAbs(post);
    std::string why;
    if (AbsContradicts(pre_v, post_v, &why)) {
      std::string rule;
      if (options_.pinpoint) {
        rule = PinpointByTrace(rules, rewrite_options, pre,
                               [&pre_v](const ExprPtr& mid) {
                                 return AbsContradicts(pre_v, AnalyzeAbs(mid),
                                                       nullptr);
                               });
      }
      AddViolation(report, VerifyPass::kAbsint, phase, std::move(rule), "<root>",
                   StrCat("abstract values contradict (", why, "): pre ",
                          pre_v.ToString(), " vs post ", post_v.ToString()));
    }
  }

  // ---- 6. AffineCheck ----
  // Affine facts must refine, never widen, across phases: a rewrite may
  // sharpen a constant or interval claim but never relax one — relaxing
  // means the phase changed the value, or destroyed a proof a planner
  // downstream already consumed (pushdown strides, unchecked kernels).
  if (options_.affine) {
    AffineAbsVal pre_v = AnalyzeAffineAbs(pre);
    AffineAbsVal post_v = AnalyzeAffineAbs(post);
    std::string why;
    if (AffineWidens(pre_v, post_v, &why)) {
      std::string rule;
      if (options_.pinpoint) {
        rule = PinpointByTrace(rules, rewrite_options, pre,
                               [&pre_v](const ExprPtr& mid) {
                                 return AffineWidens(pre_v, AnalyzeAffineAbs(mid),
                                                     nullptr);
                               });
      }
      AddViolation(report, VerifyPass::kAffine, phase, std::move(rule), "<root>",
                   StrCat("affine facts widened (", why, "): pre ",
                          pre_v.ToString(), " vs post ", post_v.ToString()));
    }
  }

  report->phases_checked.push_back(
      StrCat(phase, ": ",
             report->violations.size() == before ? "ok" : "VIOLATIONS"));
}

ExprPtr Verifier::OptimizeVerified(const Optimizer& opt, const ExprPtr& e,
                                   RewriteStats* stats, VerifierReport* report) {
  ExprPtr cur = e;
  for (size_t i = 0; i < opt.num_phases(); ++i) {
    RewriteStats phase_stats;
    ExprPtr next = opt.RunPhase(i, cur, &phase_stats);
    MergeStats(phase_stats, stats);
    // Pass-budget exhaustion (all sweeps used, still changing) voids the
    // normal-form contract just like the node budget does.
    bool budget = phase_stats.hit_budget ||
                  phase_stats.passes >= opt.config().rewrite.max_passes;
    VerifyPhase(opt.phase_name(i), opt.phase_rules(i), opt.config().rewrite, cur,
                next, budget, report);
    cur = next;
  }
  if (options_.bounds) report->bounds = AnalyzeBounds(cur);
  if (options_.absint) report->absint = AnalyzeAbs(cur).ToString();
  return cur;
}

}  // namespace analysis
}  // namespace aql
