#include "analysis/affine.h"

#include <algorithm>
#include <numeric>

#include "base/strings.h"
#include "core/expr_ops.h"

namespace aql {
namespace analysis {
namespace {

// Overflow-checked uint64 helpers. Nat arithmetic in the evaluator wraps
// (uint64), so every numeric claim below is guarded: an interval is only
// asserted when the operands' intervals prove no wrap can occur, and the
// monus/div/mod form rules additionally require bounded operands (a
// wrapped operand value breaks the pointwise-dominance argument).
bool CheckedAdd(uint64_t a, uint64_t b, uint64_t* out) {
  if (a > UINT64_MAX - b) return false;
  *out = a + b;
  return true;
}

bool CheckedMul(uint64_t a, uint64_t b, uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

uint64_t Monus(uint64_t a, uint64_t b) { return a >= b ? a - b : 0; }

// Canonicalizes a term list: sorted by var, merged, zero coefficients
// dropped. Returns false on coefficient overflow.
bool NormalizeTerms(std::vector<AffineCoeff>* terms) {
  std::sort(terms->begin(), terms->end(),
            [](const AffineCoeff& a, const AffineCoeff& b) { return a.var < b.var; });
  std::vector<AffineCoeff> out;
  for (const AffineCoeff& t : *terms) {
    if (t.coeff == 0) continue;
    if (!out.empty() && out.back().var == t.var) {
      if (!CheckedAdd(out.back().coeff, t.coeff, &out.back().coeff)) return false;
    } else {
      out.push_back(t);
    }
  }
  *terms = std::move(out);
  return true;
}

// Interval hull / combination rules on the (bounded, lo, hi) component.
// Each rule is wrap-safe: it claims nothing unless the operand intervals
// prove the runtime operation cannot overflow.
void IntervalAdd(const AffineVal& a, const AffineVal& b, AffineVal* out) {
  uint64_t lo, hi;
  if (a.bounded && b.bounded && CheckedAdd(a.hi, b.hi, &hi) &&
      CheckedAdd(a.lo, b.lo, &lo)) {
    out->bounded = true;
    out->lo = lo;
    out->hi = hi;
  }
}

void IntervalMul(const AffineVal& a, const AffineVal& b, AffineVal* out) {
  uint64_t lo, hi;
  if (a.bounded && b.bounded && CheckedMul(a.hi, b.hi, &hi) &&
      CheckedMul(a.lo, b.lo, &lo)) {
    out->bounded = true;
    out->lo = lo;
    out->hi = hi;
  }
}

void IntervalMonus(const AffineVal& a, const AffineVal& b, AffineVal* out) {
  // x ∸ y never wraps; a bound on x bounds the result outright.
  if (!a.bounded) return;
  out->bounded = true;
  out->lo = b.bounded ? Monus(a.lo, b.hi) : 0;
  out->hi = b.bounded ? Monus(a.hi, b.lo) : a.hi;
}

void IntervalDiv(const AffineVal& a, const AffineVal& b, AffineVal* out) {
  // y = 0 is ⊥ (claim vacuous), so the runtime divisor is >= max(1, lo_b).
  if (!a.bounded) return;
  out->bounded = true;
  out->lo = b.bounded && b.hi >= 1 ? a.lo / b.hi : 0;
  out->hi = a.hi / std::max<uint64_t>(1, b.bounded ? b.lo : 1);
}

void IntervalMod(const AffineVal& a, const AffineVal& b, AffineVal* out) {
  // x % y < y when defined; and x % y <= x. The y-side bound is wrap-safe
  // even when x is unbounded (the runtime result is < the runtime y).
  if (b.bounded && b.hi >= 1) {
    out->bounded = true;
    out->lo = 0;
    out->hi = b.hi - 1;
    if (a.bounded) out->hi = std::min(out->hi, a.hi);
  } else if (a.bounded) {
    out->bounded = true;
    out->lo = 0;
    out->hi = a.hi;
  }
}

// Recomputes the interval of an affine FORM from the binder facts: value
// in [c0, c0 + Σ ci·(ub_i − 1)] when every variable carries a constant
// `var < ub` fact. Tighter than operand-interval combination exactly on
// the relational wins (cancellation, exact division), so the result is
// intersected with whatever interval the caller already has.
void TightenFromForm(AffineVal* v, const SymEnv& env) {
  if (!v->affine) return;
  uint64_t lo = v->c0;
  uint64_t hi = v->c0;
  for (const AffineCoeff& t : v->terms) {
    const ExprPtr* ub = env.Lookup(t.var);
    if (ub == nullptr || !(*ub)->is(ExprKind::kNatConst)) return;
    uint64_t n = (*ub)->nat_const();
    // An empty binder range (ub = 0) means the loop body never runs;
    // keep [c0, c0] — every claim is vacuous at that program point.
    uint64_t span;
    if (!CheckedMul(t.coeff, Monus(n, 1), &span)) return;
    if (!CheckedAdd(hi, span, &hi)) return;
  }
  if (!v->bounded) {
    v->bounded = true;
    v->lo = lo;
    v->hi = hi;
  } else {
    v->lo = std::max(v->lo, lo);
    v->hi = std::min(v->hi, hi);
  }
}

// Join at conditionals: identical forms survive, intervals take the hull.
AffineVal AffineJoin(const AffineVal& a, const AffineVal& b) {
  AffineVal out;
  if (a.affine && b.affine && a.c0 == b.c0 && a.terms.size() == b.terms.size()) {
    bool same = true;
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (a.terms[i].var != b.terms[i].var || a.terms[i].coeff != b.terms[i].coeff) {
        same = false;
      }
    }
    if (same) {
      out.affine = true;
      out.c0 = a.c0;
      out.terms = a.terms;
    }
  }
  if (a.bounded && b.bounded) {
    out.bounded = true;
    out.lo = std::min(a.lo, b.lo);
    out.hi = std::max(a.hi, b.hi);
  }
  return out;
}

std::optional<uint64_t> NatOf(const ExprPtr& e) {
  if (e->is(ExprKind::kNatConst)) return e->nat_const();
  if (e->is(ExprKind::kLiteral) && e->literal().kind() == ValueKind::kNat) {
    return e->literal().nat_value();
  }
  return std::nullopt;
}

AffineVal VarForm(const std::string& name) {
  AffineVal v;
  v.affine = true;
  v.terms.push_back({name, 1});
  return v;
}

AffineVal BinderForm(const std::string& name, const SymEnv& env) {
  AffineVal v = VarForm(name);
  const ExprPtr* ub = env.Lookup(name);
  if (ub != nullptr && (*ub)->is(ExprKind::kNatConst)) {
    uint64_t n = (*ub)->nat_const();
    v.bounded = true;
    v.lo = 0;
    v.hi = Monus(n, 1);  // n = 0: empty range, claims vacuous
  }
  return v;
}

// The shared arithmetic transfer: form rules first, interval rules for
// whatever the forms cannot carry, then the form-derived interval
// tightening. `env` supplies binder bounds for the tightening step.
AffineVal ArithTransfer(ArithOp op, const AffineVal& a, const AffineVal& b,
                        const SymEnv& env) {
  AffineVal out;
  switch (op) {
    case ArithOp::kAdd: {
      if (auto f = AffineAdd(a, b)) out = *f;
      IntervalAdd(a, b, &out);
      break;
    }
    case ArithOp::kMul: {
      if (a.IsConst()) {
        if (auto f = AffineMulConst(b, a.c0)) out = *f;
      } else if (b.IsConst()) {
        if (auto f = AffineMulConst(a, b.c0)) out = *f;
      }
      IntervalMul(a, b, &out);
      break;
    }
    case ArithOp::kMonus: {
      // Form exactness needs both operands wrap-free (bounded): then the
      // coefficient dominance in AffineMonus proves x >= y pointwise and
      // monus coincides with subtraction.
      if (a.bounded && b.bounded) {
        if (auto f = AffineMonus(a, b)) out = *f;
      }
      IntervalMonus(a, b, &out);
      break;
    }
    case ArithOp::kDiv: {
      // Exact division: a constant divisor d >= 1 dividing c0 and every
      // coefficient divides the VALUE, so x / d = (c0/d) + Σ (ci/d)·bi.
      // Needs a bounded (wrap-free) numerator.
      if (b.IsConst() && b.c0 >= 1 && a.affine && a.bounded) {
        uint64_t d = b.c0;
        bool divisible = a.c0 % d == 0;
        for (const AffineCoeff& t : a.terms) divisible = divisible && t.coeff % d == 0;
        if (divisible) {
          out.affine = true;
          out.c0 = a.c0 / d;
          for (const AffineCoeff& t : a.terms) out.terms.push_back({t.var, t.coeff / d});
          NormalizeTerms(&out.terms);  // cannot fail: coefficients shrank
        }
      }
      IntervalDiv(a, b, &out);
      break;
    }
    case ArithOp::kMod: {
      if (b.IsConst() && b.c0 >= 1 && a.affine && a.bounded) {
        uint64_t d = b.c0;
        if (a.hi < d) {
          // The value never reaches the divisor: x % d = x, form and all.
          out = a;
        } else {
          // Alignment collapse: d | ci for every i makes the value
          // ≡ c0 (mod d), i.e. a compile-time constant.
          bool aligned = true;
          for (const AffineCoeff& t : a.terms) aligned = aligned && t.coeff % d == 0;
          if (aligned) out = AffineVal::Const(a.c0 % d);
        }
      }
      if (!out.bounded) IntervalMod(a, b, &out);
      break;
    }
  }
  TightenFromForm(&out, env);
  return out;
}

// Fallback interval for constructs the affine transfer does not model:
// inherit the non-relational prover's bound so the domain is never weaker
// than ConstUpperBound.
AffineVal TopWithCub(const ExprPtr& e, const SymEnv& env) {
  AffineVal v;
  if (std::optional<uint64_t> ub = ConstUpperBound(e, env)) {
    v.bounded = true;
    v.lo = 0;
    v.hi = Monus(*ub, 1);
  }
  return v;
}

}  // namespace

std::string RenderArrayExpr(const ExprPtr& arr) {
  if (arr->is(ExprKind::kVar)) return arr->var_name();
  if (arr->is(ExprKind::kLiteral)) {
    const Value& v = arr->literal();
    if (v.kind() == ValueKind::kArray) {
      std::string s = "<array";
      for (uint64_t d : v.array().dims) s += " " + std::to_string(d);
      return s + ">";
    }
    return "<literal>";
  }
  std::string s = arr->ToString();
  if (s.size() > 40) s = s.substr(0, 37) + "...";
  return s;
}

// ---------- AffineVal ----------

AffineVal AffineVal::Const(uint64_t c) {
  AffineVal v;
  v.affine = true;
  v.c0 = c;
  v.bounded = true;
  v.lo = c;
  v.hi = c;
  return v;
}

uint64_t AffineVal::Modulus() const {
  if (!affine) return 1;
  uint64_t g = 0;
  for (const AffineCoeff& t : terms) g = std::gcd(g, t.coeff);
  return g;  // 0 for a constant form: exact
}

std::string AffineVal::ToString() const {
  std::string s;
  if (affine) {
    for (const AffineCoeff& t : terms) {
      if (!s.empty()) s += " + ";
      if (t.coeff != 1) s += std::to_string(t.coeff) + "*";
      s += t.var;
    }
    if (c0 != 0 || terms.empty()) {
      if (!s.empty()) s += " + ";
      s += std::to_string(c0);
    }
  } else {
    s = "top";
  }
  if (bounded && !(IsConst() && lo == hi)) {
    s += " in [" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  }
  return s;
}

bool operator==(const AffineVal& a, const AffineVal& b) {
  if (a.affine != b.affine || a.bounded != b.bounded) return false;
  if (a.affine) {
    if (a.c0 != b.c0 || a.terms.size() != b.terms.size()) return false;
    for (size_t i = 0; i < a.terms.size(); ++i) {
      if (a.terms[i].var != b.terms[i].var || a.terms[i].coeff != b.terms[i].coeff) {
        return false;
      }
    }
  }
  if (a.bounded && (a.lo != b.lo || a.hi != b.hi)) return false;
  return true;
}

std::optional<AffineVal> AffineAdd(const AffineVal& a, const AffineVal& b) {
  if (!a.affine || !b.affine) return std::nullopt;
  AffineVal out;
  out.affine = true;
  if (!CheckedAdd(a.c0, b.c0, &out.c0)) return std::nullopt;
  out.terms = a.terms;
  out.terms.insert(out.terms.end(), b.terms.begin(), b.terms.end());
  if (!NormalizeTerms(&out.terms)) return std::nullopt;
  return out;
}

std::optional<AffineVal> AffineMulConst(const AffineVal& a, uint64_t k) {
  if (!a.affine) return std::nullopt;
  if (k == 0) return AffineVal::Const(0);
  AffineVal out;
  out.affine = true;
  if (!CheckedMul(a.c0, k, &out.c0)) return std::nullopt;
  for (const AffineCoeff& t : a.terms) {
    uint64_t c;
    if (!CheckedMul(t.coeff, k, &c)) return std::nullopt;
    out.terms.push_back({t.var, c});
  }
  return out;
}

std::optional<AffineVal> AffineMonus(const AffineVal& a, const AffineVal& b) {
  if (!a.affine || !b.affine) return std::nullopt;
  if (a.c0 < b.c0) return std::nullopt;
  AffineVal out;
  out.affine = true;
  out.c0 = a.c0 - b.c0;
  // Every b-term must be dominated by a matching a-term; then a >= b
  // pointwise (over true nat values) and the difference is affine.
  std::vector<AffineCoeff> remaining = b.terms;
  for (const AffineCoeff& t : a.terms) {
    uint64_t sub = 0;
    for (AffineCoeff& r : remaining) {
      if (r.var == t.var) {
        sub = r.coeff;
        r.coeff = 0;
      }
    }
    if (t.coeff < sub) return std::nullopt;
    if (t.coeff > sub) out.terms.push_back({t.var, t.coeff - sub});
  }
  for (const AffineCoeff& r : remaining) {
    if (r.coeff != 0) return std::nullopt;  // b mentions a var a lacks
  }
  NormalizeTerms(&out.terms);  // cannot fail: coefficients shrank
  return out;
}

AffineVal AffineOf(const ExprPtr& e, const SymEnv& env, int depth) {
  if (depth > 16) return AffineVal::Top();
  switch (e->kind()) {
    case ExprKind::kNatConst:
      return AffineVal::Const(e->nat_const());
    case ExprKind::kLiteral:
      if (e->literal().kind() == ValueKind::kNat) {
        return AffineVal::Const(e->literal().nat_value());
      }
      return AffineVal::Top();
    case ExprKind::kVar:
      return BinderForm(e->var_name(), env);
    case ExprKind::kArith: {
      AffineVal a = AffineOf(e->child(0), env, depth + 1);
      AffineVal b = AffineOf(e->child(1), env, depth + 1);
      return ArithTransfer(e->arith_op(), a, b, env);
    }
    case ExprKind::kIf: {
      AffineVal t = AffineOf(e->child(1), env, depth + 1);
      AffineVal f = AffineOf(e->child(2), env, depth + 1);
      AffineVal out = AffineJoin(t, f);
      if (!out.bounded) {
        AffineVal cub = TopWithCub(e, env);
        out.bounded = cub.bounded;
        out.lo = cub.lo;
        out.hi = cub.hi;
      }
      TightenFromForm(&out, env);
      return out;
    }
    default:
      return TopWithCub(e, env);
  }
}

std::optional<uint64_t> AffineUpperBound(const ExprPtr& e, const SymEnv& env) {
  AffineVal v = AffineOf(e, env);
  if (!v.bounded || v.hi == UINT64_MAX) return std::nullopt;
  return v.hi + 1;
}

// ---------- the AbsInterp domain ----------

AffineVal AffineDomain::FreeVar(const ExprPtr& var) {
  return VarForm(var->var_name());
}

AffineVal AffineDomain::BinderVal(const ExprPtr& parent, size_t child_index,
                                  size_t binder_index, const SymEnv& env) {
  (void)child_index;
  return BinderForm(parent->binders()[binder_index], env);
}

AffineVal AffineDomain::Transfer(const ExprPtr& e, const std::vector<Val>& kids,
                                 const SymEnv& env) {
  switch (e->kind()) {
    case ExprKind::kNatConst:
      return AffineVal::Const(e->nat_const());
    case ExprKind::kLiteral:
      if (e->literal().kind() == ValueKind::kNat) {
        return AffineVal::Const(e->literal().nat_value());
      }
      return AffineVal::Top();
    case ExprKind::kArith:
      return ArithTransfer(e->arith_op(), kids[0], kids[1], env);
    case ExprKind::kIf: {
      AffineVal out = AffineJoin(kids[1], kids[2]);
      if (!out.bounded) {
        AffineVal cub = TopWithCub(e, env);
        out.bounded = cub.bounded;
        out.lo = cub.lo;
        out.hi = cub.hi;
      }
      TightenFromForm(&out, env);
      return out;
    }
    default:
      return TopWithCub(e, env);
  }
}

// ---------- the reduced product ----------

std::string AffineAbsVal::ToString() const {
  return core.ToString() + " aff=" + aff.ToString();
}

AffineAbsVal AffineCoreDomains::FreeVar(const ExprPtr& var) {
  return {core_.FreeVar(var), aff_.FreeVar(var)};
}

AffineAbsVal AffineCoreDomains::BinderVal(const ExprPtr& parent, size_t child_index,
                                          size_t binder_index, const SymEnv& env) {
  return {core_.BinderVal(parent, child_index, binder_index, env),
          aff_.BinderVal(parent, child_index, binder_index, env)};
}

AffineAbsVal AffineCoreDomains::LetTransfer(const ExprPtr& apply, const Val& bound,
                                            const Val& body) {
  return {core_.LetTransfer(apply, bound.core, body.core), body.aff};
}

AffineAbsVal AffineCoreDomains::Transfer(const ExprPtr& e,
                                         const std::vector<Val>& kids,
                                         const SymEnv& env) {
  std::vector<AbsVal> core_kids;
  std::vector<AffineVal> aff_kids;
  core_kids.reserve(kids.size());
  aff_kids.reserve(kids.size());
  for (const Val& k : kids) {
    core_kids.push_back(k.core);
    aff_kids.push_back(k.aff);
  }
  AffineAbsVal out{core_.Transfer(e, core_kids, env),
                   aff_.Transfer(e, aff_kids, env)};

  // Reduction, core → affine: a rank-1 dim over a const-extent array is
  // that constant.
  if (e->is(ExprKind::kDim) && e->rank() == 1 && !kids.empty() &&
      kids[0].core.shape.kind == ShapeVal::Kind::kArray &&
      kids[0].core.shape.extents.size() == 1 &&
      kids[0].core.shape.extents[0].kind == Extent::Kind::kConst &&
      out.core.def.whole != Definedness::kBottom) {
    out.aff = AffineVal::Const(kids[0].core.shape.extents[0].value);
  }

  // Reduction, affine → core: a subscript whose every index part has an
  // affine range inside the array's constant extents is in bounds, even
  // where the syntactic ProveLt gives up (cancellation, strides through
  // division, commuted compositions).
  if (e->is(ExprKind::kSubscript) && kids.size() == 2 &&
      out.core.def.whole == Definedness::kUnknown &&
      kids[0].core.shape.kind == ShapeVal::Kind::kArray &&
      kids[0].core.def.whole == Definedness::kDefined &&
      kids[0].core.def.elems_defined &&
      kids[1].core.def.whole == Definedness::kDefined) {
    const std::vector<Extent>& extents = kids[0].core.shape.extents;
    size_t k = extents.size();
    const ExprPtr& ie = e->child(1);
    std::vector<ExprPtr> parts;
    if (k == 1) {
      parts.push_back(ie);
    } else if (ie->is(ExprKind::kTuple) && ie->children().size() == k) {
      parts = ie->children();
    }
    bool all_proven = !parts.empty() && parts.size() == k;
    for (size_t j = 0; all_proven && j < k; ++j) {
      if (extents[j].kind != Extent::Kind::kConst) {
        all_proven = false;
        break;
      }
      AffineVal idx = AffineOf(parts[j], env);
      all_proven = idx.bounded && idx.hi < extents[j].value;
    }
    if (all_proven) out.core.def.whole = Definedness::kDefined;
  }
  return out;
}

AffineAbsVal AnalyzeAffineAbs(const ExprPtr& e) {
  AffineCoreDomains domains;
  AbsInterp<AffineCoreDomains> interp(&domains);
  return interp.Analyze(e);
}

bool AffineWidens(const AffineAbsVal& pre, const AffineAbsVal& post,
                  std::string* why) {
  // Always-⊥ on either side: affine claims are vacuous, and the
  // kDefined-vs-kBottom axis belongs to AbsContradicts.
  if (pre.core.def.whole == Definedness::kBottom ||
      post.core.def.whole == Definedness::kBottom) {
    return false;
  }
  const AffineVal& a = pre.aff;
  const AffineVal& b = post.aff;
  auto explain = [why](std::string text) {
    if (why != nullptr) *why = std::move(text);
  };
  if (a.IsConst() && b.IsConst() && a.c0 != b.c0) {
    explain("affine constants disagree: " + a.ToString() + " vs " + b.ToString());
    return true;
  }
  if (a.bounded) {
    if (!b.bounded) {
      explain("interval widened: " + a.ToString() + " vs unbounded " + b.ToString());
      return true;
    }
    if (b.lo < a.lo || b.hi > a.hi) {
      explain("interval widened: " + a.ToString() + " vs " + b.ToString());
      return true;
    }
  }
  return false;
}

// ---------- access summaries ----------

std::optional<uint64_t> DimAccess::MaxIndex() const {
  if (extent == 0) return std::nullopt;
  uint64_t span, top;
  if (!CheckedMul(stride, extent - 1, &span)) return std::nullopt;
  if (!CheckedAdd(base, span, &top)) return std::nullopt;
  return top;
}

std::string DimAccess::ToString() const {
  if (binder.empty()) return std::to_string(base);
  std::string s;
  if (base != 0) s += std::to_string(base) + " + ";
  if (stride != 1) s += std::to_string(stride) + "*";
  s += binder + ", " + binder + " < " + std::to_string(extent);
  if (align_modulus > 1) {
    s += " (= " + std::to_string(align_residue) + " mod " +
         std::to_string(align_modulus) + ")";
  }
  return s;
}

std::string AccessSummary::ToString() const {
  std::string s = array + "[";
  for (size_t j = 0; j < dims.size(); ++j) {
    if (j != 0) s += "; ";
    s += dims[j].ToString();
  }
  return s + "]";
}

std::optional<AccessSummary> SummarizeAccess(const ExprPtr& subscript,
                                             const SymEnv& env) {
  if (!subscript->is(ExprKind::kSubscript)) return std::nullopt;
  const ExprPtr& ie = subscript->child(1);
  std::vector<ExprPtr> parts;
  if (ie->is(ExprKind::kTuple)) {
    parts = ie->children();
  } else {
    parts.push_back(ie);
  }
  AccessSummary out;
  out.array = RenderArrayExpr(subscript->child(0));
  for (const ExprPtr& part : parts) {
    AffineVal v = AffineOf(part, env);
    DimAccess d;
    if (v.IsConst()) {
      d.base = v.c0;
    } else if (v.affine && v.terms.size() == 1) {
      const ExprPtr* ub = env.Lookup(v.terms[0].var);
      if (ub == nullptr || !(*ub)->is(ExprKind::kNatConst)) return std::nullopt;
      d.base = v.c0;
      d.stride = v.terms[0].coeff;
      d.extent = (*ub)->nat_const();
      d.binder = v.terms[0].var;
      d.align_modulus = d.stride;
      d.align_residue = d.stride > 0 ? d.base % d.stride : 0;
    } else {
      return std::nullopt;
    }
    out.dims.push_back(std::move(d));
  }
  return out;
}

// ---------- syntactic single-binder matcher ----------

std::optional<Affine1D> MatchAffine1D(const ExprPtr& part) {
  // var | s*var | var*s  (s >= 1)
  auto scaled_var = [](const ExprPtr& x, Affine1D* out) {
    if (x->is(ExprKind::kVar)) {
      out->binder = x->var_name();
      out->stride = 1;
      return true;
    }
    if (x->is(ExprKind::kArith) && x->arith_op() == ArithOp::kMul) {
      const ExprPtr& a = x->child(0);
      const ExprPtr& b = x->child(1);
      std::optional<uint64_t> s;
      const Expr* v = nullptr;
      if (a->is(ExprKind::kVar) && (s = NatOf(b))) v = a.get();
      if (b->is(ExprKind::kVar) && (s = NatOf(a))) v = b.get();
      if (v != nullptr && *s >= 1) {
        out->binder = v->var_name();
        out->stride = *s;
        return true;
      }
    }
    return false;
  };
  Affine1D out;
  if (scaled_var(part, &out)) return out;
  if (part->is(ExprKind::kArith) && part->arith_op() == ArithOp::kAdd) {
    const ExprPtr& a = part->child(0);
    const ExprPtr& b = part->child(1);
    std::optional<uint64_t> c;
    if ((c = NatOf(b)) && scaled_var(a, &out)) {
      out.offset = *c;
      return out;
    }
    if ((c = NatOf(a)) && scaled_var(b, &out)) {
      out.offset = *c;
      return out;
    }
  }
  return std::nullopt;
}

// ---------- shard locality ----------

std::optional<uint64_t> ShardLocal(const AccessSummary& summary,
                                   const PartitionSpec& spec) {
  if (spec.shard_count == 0 || spec.rows_per_shard == 0) return std::nullopt;
  if (summary.dims.empty()) return std::nullopt;
  const DimAccess& lead = summary.dims[0];
  std::optional<uint64_t> hi = lead.MaxIndex();
  if (!hi) return std::nullopt;
  uint64_t first = lead.base / spec.rows_per_shard;
  uint64_t last = *hi / spec.rows_per_shard;
  if (first != last || first >= spec.shard_count) return std::nullopt;
  return first;
}

// ---------- proof certificates ----------

void Proof::Add(std::string optimization, std::string site,
                std::vector<std::string> facts) {
  entries.push_back({std::move(optimization), std::move(site), std::move(facts)});
}

std::string Proof::ToString() const {
  std::string s;
  for (const ProofEntry& e : entries) {
    s += e.optimization + " @ " + e.site + "\n";
    for (const std::string& f : e.facts) s += "  - " + f + "\n";
  }
  return s;
}

}  // namespace analysis
}  // namespace aql
