#include "analysis/lint.h"

#include <algorithm>
#include <map>
#include <utility>

#include "analysis/affine.h"
#include "base/strings.h"
#include "core/expr_ops.h"

namespace aql {
namespace analysis {

namespace {

struct NodeRec {
  std::vector<size_t> path;
  ExprPtr expr;
  AbsVal val;
  SymEnv env;  // captured only where a check needs it (guards)
};

bool IsPathPrefix(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  if (a.size() >= b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

// Constant index components of a subscript, when every component is a
// constant; empty otherwise.
std::vector<uint64_t> ConstIndexParts(const ExprPtr& idx, size_t k) {
  std::vector<ExprPtr> parts;
  if (k == 1) {
    parts.push_back(idx);
  } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
    for (const ExprPtr& c : idx->children()) parts.push_back(c);
  } else {
    return {};
  }
  std::vector<uint64_t> out;
  for (const ExprPtr& p : parts) {
    if (p->is(ExprKind::kNatConst)) {
      out.push_back(p->nat_const());
    } else if (p->is(ExprKind::kLiteral) &&
               p->literal().kind() == ValueKind::kNat) {
      out.push_back(p->literal().nat_value());
    } else {
      return {};
    }
  }
  return out;
}

class Linter {
 public:
  LintReport Run(const ExprPtr& e) {
    CoreDomains domain;
    domain.set_observer([this](const ExprPtr& node, const std::vector<size_t>& path,
                               const AbsVal& val, const SymEnv& env) {
      NodeRec rec{path, node, val, SymEnv{}};
      if (node->is(ExprKind::kIf) || node->is(ExprKind::kSubscript)) rec.env = env;
      by_path_[AbsPathString(path)] = recs_.size();
      recs_.push_back(std::move(rec));
    });
    AbsInterp<CoreDomains> interp(&domain);
    interp.Analyze(e);

    CheckAlwaysBottom();
    {
      std::vector<size_t> path;
      std::map<std::string, size_t> in_scope;
      CheckShadowedBinders(e, &path, &in_scope);
    }
    for (const NodeRec& rec : recs_) {
      switch (rec.expr->kind()) {
        case ExprKind::kSubscript:
          CheckSubscript(rec);
          break;
        case ExprKind::kTab:
          CheckTab(rec);
          break;
        case ExprKind::kBigUnion:
        case ExprKind::kSum:
          CheckLoopBinder(rec);
          break;
        case ExprKind::kIf:
          CheckGuard(rec);
          break;
        default:
          break;
      }
    }

    std::stable_sort(report_.warnings.begin(), report_.warnings.end(),
                     [](const LintWarning& a, const LintWarning& b) {
                       return a.path < b.path;
                     });
    return std::move(report_);
  }

 private:
  void Warn(const NodeRec& rec, std::string code, std::string message) {
    report_.warnings.push_back(
        {std::move(code), AbsPathString(rec.path), std::move(message)});
  }

  void WarnAt(const std::vector<size_t>& path, std::string code,
              std::string message) {
    report_.warnings.push_back(
        {std::move(code), AbsPathString(path), std::move(message)});
  }

  // Scope-tracking walk over every binder-introducing construct (tab,
  // comprehensions, lambdas — `let` desugars to Apply(Lambda)): an inner
  // binder re-introducing a name already in scope makes the outer binding
  // unreachable from the inner body, which in handwritten queries is
  // almost always an index-variable slip (`[[ [[a!(i,i)|i<n]] | i<m ]]`).
  // `in_scope` counts live bindings per name so unwinding is exact even
  // for repeated shadowing.
  void CheckShadowedBinders(const ExprPtr& e, std::vector<size_t>* path,
                            std::map<std::string, size_t>* in_scope) {
    const std::vector<std::vector<std::string>> child_binders = ChildBinders(*e);
    for (size_t i = 0; i < e->children().size(); ++i) {
      const std::vector<std::string>* intro =
          i < child_binders.size() ? &child_binders[i] : nullptr;
      if (intro != nullptr) {
        for (const std::string& b : *intro) {
          if ((*in_scope)[b] > 0) {
            // Reported at the construct that introduces the inner binder
            // (matching unused-binder), not at the body it scopes over.
            WarnAt(*path, "shadowed-binder",
                   StrCat("binder \\", b, " shadows an enclosing binder of ",
                          "the same name; the outer \\", b,
                          " is unreachable here"));
          }
          ++(*in_scope)[b];
        }
      }
      path->push_back(i);
      CheckShadowedBinders(e->child(i), path, in_scope);
      path->pop_back();
      if (intro != nullptr) {
        for (const std::string& b : *intro) --(*in_scope)[b];
      }
    }
  }

  // Topmost subexpressions the definedness domain proves always-⊥. An
  // explicit ⊥ node is the optimizer's own artifact (bound-check guards),
  // not a user mistake, so only computed ⊥ counts — except at the root:
  // when the whole plan folded to ⊥ (e.g. `1 / 0` after constant folding),
  // the artifact IS the user's program, and hiding it would mean the lint
  // goes silent exactly when the query can never produce a value.
  void CheckAlwaysBottom() {
    std::vector<const NodeRec*> candidates;
    for (const NodeRec& rec : recs_) {
      const bool explicit_bottom =
          rec.expr->is(ExprKind::kBottom) ||
          (rec.expr->is(ExprKind::kLiteral) && rec.expr->literal().is_bottom());
      if (rec.val.def.whole == Definedness::kBottom &&
          (!explicit_bottom || rec.path.empty())) {
        candidates.push_back(&rec);
      }
    }
    for (const NodeRec* rec : candidates) {
      bool topmost = std::none_of(
          candidates.begin(), candidates.end(), [&](const NodeRec* other) {
            return other != rec && IsPathPrefix(other->path, rec->path);
          });
      if (!topmost) continue;
      // The dedicated oob-subscript check reports constant subscripts
      // with a sharper message.
      if (rec->expr->is(ExprKind::kSubscript) && !StaticOob(*rec).empty()) continue;
      Warn(*rec, "always-bottom",
           StrCat(ExprKindName(rec->expr->kind()),
                  " expression always evaluates to \xE2\x8A\xA5"));
    }
  }

  // "index 5 >= extent 3 in dimension 1", or "" when not statically OOB.
  std::string StaticOob(const NodeRec& rec) {
    const std::string arr_key = AbsPathString(rec.path) == "<root>"
                                    ? "0"
                                    : AbsPathString(rec.path) + ".0";
    auto it = by_path_.find(arr_key);
    if (it == by_path_.end()) return "";
    const AbsVal& arr = recs_[it->second].val;
    if (arr.shape.kind != ShapeVal::Kind::kArray) return "";
    size_t k = arr.shape.extents.size();
    std::vector<uint64_t> idx = ConstIndexParts(rec.expr->child(1), k);
    if (idx.size() != k) return "";
    for (size_t j = 0; j < k; ++j) {
      if (arr.shape.extents[j].kind == Extent::Kind::kConst &&
          idx[j] >= arr.shape.extents[j].value) {
        return StrCat("index ", idx[j], " >= extent ", arr.shape.extents[j].value,
                      " in dimension ", j + 1);
      }
    }
    return "";
  }

  void CheckSubscript(const NodeRec& rec) {
    std::string oob = StaticOob(rec);
    if (!oob.empty()) {
      Warn(rec, "oob-subscript", StrCat("subscript is always out of bounds: ", oob));
    }
    CheckAffineParts(rec, /*report_oob=*/oob.empty());
  }

  // Relational checks on each index component (analysis/affine.h):
  //   affine-oob-subscript  the component's affine interval lies entirely
  //                         at or beyond a constant extent — every
  //                         iteration is out of bounds, which the
  //                         const-only StaticOob above cannot see once a
  //                         binder is involved (`a!(i+5)` under i<3);
  //   degenerate-stride     the component mentions a loop binder but is
  //                         provably one constant (`a!(i-i)`, `a!(0*i)`) —
  //                         the loop re-reads a single cell, almost always
  //                         an index-arithmetic slip.
  void CheckAffineParts(const NodeRec& rec, bool report_oob) {
    const ExprPtr& idx = rec.expr->child(1);
    std::vector<ExprPtr> parts;
    if (idx->is(ExprKind::kTuple)) {
      for (const ExprPtr& c : idx->children()) parts.push_back(c);
    } else {
      parts.push_back(idx);
    }
    const AbsVal* arr = nullptr;
    const std::string arr_key = AbsPathString(rec.path) == "<root>"
                                    ? "0"
                                    : AbsPathString(rec.path) + ".0";
    auto it = by_path_.find(arr_key);
    if (it != by_path_.end()) arr = &recs_[it->second].val;
    const bool extents_known =
        arr != nullptr && arr->shape.kind == ShapeVal::Kind::kArray &&
        arr->shape.extents.size() == parts.size();
    for (size_t j = 0; j < parts.size(); ++j) {
      const AffineVal v = AffineOf(parts[j], rec.env);
      bool mentions_binder = false;
      for (const SymFact& f : rec.env.facts) {
        if (OccursFree(parts[j], f.var)) {
          mentions_binder = true;
          break;
        }
      }
      if (v.IsConst() && mentions_binder) {
        Warn(rec, "degenerate-stride",
             StrCat("index component ", j + 1, " mentions a loop binder but is ",
                    "provably the constant ", v.c0,
                    " on every iteration (stride 0)"));
      }
      if (report_oob && extents_known && v.bounded && !v.IsConst() &&
          arr->shape.extents[j].kind == Extent::Kind::kConst &&
          v.lo >= arr->shape.extents[j].value) {
        Warn(rec, "affine-oob-subscript",
             StrCat("index component ", j + 1, " is provably out of bounds: ",
                    v.ToString(), " vs extent ", arr->shape.extents[j].value,
                    " in dimension ", j + 1));
      }
    }
  }

  void CheckTab(const NodeRec& rec) {
    if (rec.val.card.lo == 0 && rec.val.card.hi == 0) {
      Warn(rec, "empty-tab", "tabulation bounds make this the empty array");
      return;
    }
    for (size_t j = 0; j < rec.expr->tab_rank(); ++j) {
      const std::string& b = rec.expr->binders()[j];
      if (!OccursFree(rec.expr->tab_body(), b)) {
        Warn(rec, "unused-binder",
             StrCat("tabulation binder \\", b,
                    " is never read by the body (constant broadcast?)"));
      }
    }
  }

  void CheckLoopBinder(const NodeRec& rec) {
    const std::string& b = rec.expr->binder();
    if (!OccursFree(rec.expr->child(0), b)) {
      Warn(rec, "unused-binder",
           StrCat("comprehension binder \\", b, " is never read by the body"));
    }
  }

  void CheckGuard(const NodeRec& rec) {
    const ExprPtr& e = rec.expr;
    if (e->child(2)->is(ExprKind::kBottom) && e->child(0)->is(ExprKind::kCmp) &&
        e->child(0)->cmp_op() == CmpOp::kLt &&
        ProveLt(e->child(0)->child(0), e->child(0)->child(1), rec.env)) {
      Warn(rec, "const-guard",
           "bound-check guard is provably true; the optimizer left it behind");
    }
  }

  std::vector<NodeRec> recs_;
  std::map<std::string, size_t> by_path_;
  LintReport report_;
};

}  // namespace

std::string LintWarning::ToString() const {
  return StrCat("warning[", code, "] at ", path, ": ", message);
}

std::string LintReport::ToString() const {
  if (warnings.empty()) return "lint: clean\n";
  std::string out = StrCat("lint: ", warnings.size(), " warning(s)\n");
  for (const LintWarning& w : warnings) {
    out += StrCat("  ", w.ToString(), "\n");
  }
  return out;
}

LintReport Lint(const ExprPtr& e) { return Linter().Run(e); }

std::string PlanFacts::ToString() const {
  std::string out = StrCat("plan: ", root.ToString(), "\n");
  out += bounds.ToString();
  out += lint.ToString();
  return out;
}

PlanFacts AnalyzePlan(const ExprPtr& optimized) {
  PlanFacts facts;
  facts.root = AnalyzeAbs(optimized);
  facts.bounds = AnalyzeBounds(optimized);
  facts.lint = Lint(optimized);
  return facts;
}

}  // namespace analysis
}  // namespace aql
