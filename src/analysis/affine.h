// aql::analysis — a relational affine-index domain (Cousot & Halbwachs
// style, restricted to the single-assignment nat arithmetic of the core
// calculus). Each nat-typed subexpression is represented as an affine form
//
//     c0 + Σ ci·bi          (ci ≥ 1, bi in-scope binders)
//
// with ⊤ fallback and an interval [lo, hi] derived from the binders'
// bound facts (the same SymEnv machinery the non-relational
// ConstUpperBound / ProveLt provers in absint.h consume). The relational
// representation proves what interval folding alone cannot — cancellation
// (`i*2 - i` is exactly `i`), exact division (`(i*4)/2` is `2·i`), and
// stride/alignment facts (`2·i + 1` is odd) — which feed four consumers:
//
//   1. exec/compiled.cc — the subslab pushdown matcher generalizes from
//      literal `i+lo` to any affine single-binder index (strides,
//      commuted offsets, bare binders) and emits strided bulk reads;
//   2. the aggregate-pruning pass (SumNode) — zone-map facts skip tile
//      reads when the affine access range proves coverage;
//   3. exec/kernel.cc — affine in-bounds proofs admit UNCHECKED kernels
//      the const-only interval path has to reject;
//   4. ShardLocal — proves a subscript touches one partition of a
//      leading-dimension split (the ROADMAP sharding item's blocker).
//
// Every optimization justified by an affine fact records a proof
// certificate (analysis::Proof) naming the facts, surfaced via REPL
// `:explain` and the `?trace=1` profile. The verifier grows an
// AffineCheck pass: across optimizer phases affine facts must refine,
// never widen (verifier.h).

#ifndef AQL_ANALYSIS_AFFINE_H_
#define AQL_ANALYSIS_AFFINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "core/expr.h"

namespace aql {
namespace analysis {

// ---------- the affine lattice ----------

// One monomial ci·bi of an affine form; coeff >= 1.
struct AffineCoeff {
  std::string var;
  uint64_t coeff = 0;
};

// Abstract value: an affine form over in-scope binders (when `affine`),
// plus an inclusive value interval [lo, hi] (when `bounded`) inherited
// from the binder-bound facts. ⊤ is {affine=false, bounded=false}; the
// two components are independent (a non-affine `x % 8` still has bounds).
// Like every absint claim, both are conditional on evaluation succeeding
// (⊥ and type errors void them vacuously).
struct AffineVal {
  bool affine = false;
  uint64_t c0 = 0;
  std::vector<AffineCoeff> terms;  // sorted by var, no zero coefficients

  bool bounded = false;
  uint64_t lo = 0, hi = 0;  // inclusive

  static AffineVal Top() { return {}; }
  static AffineVal Const(uint64_t c);

  bool IsConst() const { return affine && terms.empty(); }
  // gcd of the coefficients: the form's value is ≡ c0 (mod Modulus()).
  // 0 for a constant form (exact), 1 when nothing is known.
  uint64_t Modulus() const;

  // "2*i + j + 3 in [3, 12]", "top in [0, 7]", "top".
  std::string ToString() const;
};

bool operator==(const AffineVal& a, const AffineVal& b);

// Pure transfer functions over forms (nullopt on overflow / non-affine
// combination). Shared by the AbsInterp domain below and the direct
// expression walker AffineOf.
std::optional<AffineVal> AffineAdd(const AffineVal& a, const AffineVal& b);
std::optional<AffineVal> AffineMulConst(const AffineVal& a, uint64_t k);
// Exact only when `a` dominates `b` coefficient-wise (then a ∸ b = a - b
// pointwise and the difference is again affine).
std::optional<AffineVal> AffineMonus(const AffineVal& a, const AffineVal& b);

// Affine value of a nat expression under the binder facts of `env`
// (depth-bounded like ConstUpperBound). This is the workhorse the
// kernel annotator, the linter, and the pushdown matchers call on index
// subexpressions; AnalyzeAffineAbs below runs the same transfer
// functions as a full AbsInterp domain.
AffineVal AffineOf(const ExprPtr& e, const SymEnv& env, int depth = 0);

// Exclusive constant upper bound from the affine interval — the
// relational counterpart of ConstUpperBound (strictly stronger on
// cancellation/division forms, never weaker than [0, CUB-1]).
std::optional<uint64_t> AffineUpperBound(const ExprPtr& e, const SymEnv& env);

// ---------- the AbsInterp domain and the reduced product ----------

// AffineDomain satisfies the AbsInterp<Domain> contract on its own;
// AffineCoreDomains below joins it with the Shape/Definedness/Cardinality
// product (the form every consumer actually wants: the reduction needs
// shape extents to turn affine ranges into definedness proofs).
class AffineDomain {
 public:
  using Val = AffineVal;
  static constexpr bool kLetPrecision = true;

  Val FreeVar(const ExprPtr& var);
  Val BinderVal(const ExprPtr& parent, size_t child_index, size_t binder_index,
                const SymEnv& env);
  Val Transfer(const ExprPtr& e, const std::vector<Val>& kids, const SymEnv& env);
  Val LetTransfer(const ExprPtr& apply, const Val& bound, const Val& body) {
    return body;
  }
  void AtNode(const ExprPtr&, const std::vector<size_t>&, const SymEnv&) {}
  void AfterNode(const ExprPtr&, const std::vector<size_t>&, const Val&,
                 const SymEnv&) {}
};

// The reduced product of CoreDomains and AffineDomain. Reduction runs
// both ways: shape extents bound subscript indexes (an affine range
// inside a constant extent upgrades definedness where the syntactic
// ProveLt gives up), and affine constants sharpen cardinalities.
struct AffineAbsVal {
  AbsVal core;
  AffineVal aff;

  std::string ToString() const;
};

class AffineCoreDomains {
 public:
  using Val = AffineAbsVal;
  static constexpr bool kLetPrecision = true;

  using Observer = std::function<void(const ExprPtr&, const std::vector<size_t>&,
                                      const AffineAbsVal&, const SymEnv&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  Val FreeVar(const ExprPtr& var);
  Val BinderVal(const ExprPtr& parent, size_t child_index, size_t binder_index,
                const SymEnv& env);
  Val Transfer(const ExprPtr& e, const std::vector<Val>& kids, const SymEnv& env);
  Val LetTransfer(const ExprPtr& apply, const Val& bound, const Val& body);
  void AtNode(const ExprPtr&, const std::vector<size_t>&, const SymEnv&) {}
  void AfterNode(const ExprPtr& e, const std::vector<size_t>& path, const Val& val,
                 const SymEnv& env) {
    if (observer_) observer_(e, path, val, env);
  }

 private:
  CoreDomains core_;
  AffineDomain aff_;
  Observer observer_;
};

// Abstractly interprets a core term under the reduced product. Never
// fails; unknown constructs yield ⊤.
AffineAbsVal AnalyzeAffineAbs(const ExprPtr& e);

// The AffineCheck relation (verifier pass 6): true when `pre` and `post`
// make contradictory or widened claims about one value — definite
// constants that differ, disjoint bounded intervals, or a post interval
// strictly wider than a bounded pre interval. Rewrites must refine facts,
// never widen them. The check is vacuous when `pre` is always-⊥ (the
// ⊥-refinement direction AbsContradicts already allows).
bool AffineWidens(const AffineAbsVal& pre, const AffineAbsVal& post,
                  std::string* why);

// ---------- access summaries ----------

// Per-dimension access pattern of a subscript under loop binders: the
// index is `base + stride·binder` with `binder` sweeping [0, extent), and
// the touched coordinates are ≡ align_residue (mod align_modulus).
// A constant index has stride 0, extent 1, empty binder.
struct DimAccess {
  uint64_t base = 0;
  uint64_t stride = 0;
  uint64_t extent = 1;
  uint64_t align_modulus = 0;  // 0 = exact (constant index)
  uint64_t align_residue = 0;
  std::string binder;

  // Highest coordinate touched: base + stride*(extent-1); nullopt on
  // overflow or a zero-trip binder.
  std::optional<uint64_t> MaxIndex() const;

  std::string ToString() const;  // "8 + 2*i, i < 4 (≡ 0 mod 2)"
};

// Whole-subscript summary: one DimAccess per array dimension.
struct AccessSummary {
  std::string array;  // rendering of the subscripted array expression
  std::vector<DimAccess> dims;

  std::string ToString() const;
};

// Summarizes the subscript access of a tabulation body `[[ S[e1, ..., ek]
// | i1 < b1, ... ]]` (or any binder environment `env` carrying the loop
// bounds): each part must be single-binder affine with a constant-bounded
// binder or a constant. nullopt when any part is relationally opaque.
std::optional<AccessSummary> SummarizeAccess(const ExprPtr& subscript,
                                             const SymEnv& env);

// Compact rendering of an array operand for summaries and proof sites:
// a variable prints as its name, a literal as "<array d1 d2 ...>" (never
// its elements), anything else as a truncated term rendering.
std::string RenderArrayExpr(const ExprPtr& arr);

// ---------- syntactic single-binder matcher (pushdown fast path) ----------

// The shape the subslab pushdown compiles: offset + stride·binder, in any
// commutation (`i`, `i+c`, `c+i`, `s*i`, `i*s`, and the `add(mul)` forms).
// Purely syntactic — no SymEnv needed — so exec/compiled.cc can run it on
// plans whose bounds are not constant.
struct Affine1D {
  std::string binder;
  uint64_t offset = 0;
  uint64_t stride = 1;
};

std::optional<Affine1D> MatchAffine1D(const ExprPtr& part);

// ---------- shard locality ----------

// A leading-dimension range split: shard s owns rows
// [s*rows_per_shard, (s+1)*rows_per_shard), s < shard_count.
struct PartitionSpec {
  uint64_t shard_count = 1;
  uint64_t rows_per_shard = 0;
};

// Proves the summary's leading-dimension access stays inside ONE
// partition of `spec` and names it. nullopt when the access can straddle
// a boundary (or the spec is degenerate). Consumed by nothing yet — this
// is the static fact the ROADMAP's scatter–gather item needs to route a
// subplan to a single shard without a broadcast.
std::optional<uint64_t> ShardLocal(const AccessSummary& summary,
                                   const PartitionSpec& spec);

// ---------- proof certificates ----------

// Which facts justified which optimization. Producers (the pushdown
// matchers, the kernel annotator, the aggregate pruner) append entries at
// compile time; the Program carries them so `:explain` and the `?trace=1`
// profile can show WHY a plan runs the way it does.
struct ProofEntry {
  std::string optimization;        // "strided-pushdown", "unchecked-kernel", ...
  std::string site;                // the justified subexpression
  std::vector<std::string> facts;  // human-readable affine facts
};

struct Proof {
  std::vector<ProofEntry> entries;

  bool empty() const { return entries.empty(); }
  void Add(std::string optimization, std::string site,
           std::vector<std::string> facts);
  std::string ToString() const;
};

}  // namespace analysis
}  // namespace aql

#endif  // AQL_ANALYSIS_AFFINE_H_
