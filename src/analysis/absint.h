// aql::analysis — a generic abstract interpreter over core-calculus
// terms, parameterized by an abstract domain (paper §5: full bound and
// definedness checking is undecidable — Proposition 5.1 — so every
// domain here is a sound, incomplete approximation).
//
// The calculus is terminating and structural (no recursion, no loops over
// terms), so one capture-aware descent per term IS the fixpoint; joins
// appear at conditionals and the bounded-depth provers below. The
// interpreter owns everything domain-independent:
//
//   - the symbolic environment (SymEnv): per-binder upper-bound facts
//     `var < ub` and the conditions known true on the control path,
//     killed on shadowing, seeded by tabulation/gen binders and
//     conditional guards (AddBinderFacts);
//   - the binding structure: a scope mapping in-scope names to abstract
//     values, pushed per ChildBinders entry;
//   - let-precision: `Apply(Lambda(x, body), bound)` — the core encoding
//     of let — flows the binding's abstract value into the body when the
//     domain opts in (sound because Apply is strict in its argument in
//     both backends: a ⊥ binding never reaches the body).
//
// A domain supplies the lattice and the per-node transfer function:
//
//   struct Domain {
//     using Val = ...;                      // abstract value
//     static constexpr bool kLetPrecision;  // beta-flow let bindings?
//     Val FreeVar(const ExprPtr& var);      // value of an unbound name
//     Val BinderVal(const ExprPtr& parent, size_t child_index,
//                   size_t binder_index, const SymEnv& env);
//     Val Transfer(const ExprPtr& e, const std::vector<Val>& kids,
//                  const SymEnv& env);
//     Val LetTransfer(const ExprPtr& apply, const Val& bound,
//                     const Val& body);     // only if kLetPrecision
//     void AtNode(const ExprPtr& e, const std::vector<size_t>& path,
//                 const SymEnv& env);       // pre-order hook
//     void AfterNode(const ExprPtr& e, const std::vector<size_t>& path,
//                    const Val& val, const SymEnv& env);  // post-order
//   };
//
// Clients: BoundsAnalysis (bounds.h — the original prover, now a pre-order
// hook over a trivial lattice), the Shape/Definedness/Cardinality product
// domain below (consumed by the exec kernels for unchecked instantiation,
// by the verifier as a cross-phase preservation check, and by the linter),
// and exec/kernel.cc's proof annotator (which uses the SymEnv machinery
// directly).

#ifndef AQL_ANALYSIS_ABSINT_H_
#define AQL_ANALYSIS_ABSINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/expr.h"
#include "core/expr_ops.h"

namespace aql {
namespace analysis {

// ---------- symbolic environment (shared by every domain) ----------

// One abstract fact: `var < ub`, with `ub` a core expression (a NatConst
// when the bound is known exactly, symbolic otherwise).
struct SymFact {
  std::string var;
  ExprPtr ub;
};

// The abstract environment at a program point: binder bounds plus the
// conditions known true on this control path.
struct SymEnv {
  std::vector<SymFact> facts;       // innermost binding last
  std::vector<ExprPtr> true_conds;  // conditions of enclosing then-branches

  // Innermost fact about `var`, or nullptr.
  const ExprPtr* Lookup(const std::string& var) const;
};

// Entering a scope that introduces `binders` kills any fact or condition
// mentioning those names (they now refer to different bindings) and any
// fact *about* a shadowed name.
SymEnv KillShadowed(const SymEnv& env, const std::vector<std::string>& binders);

// Facts the construct `e` grants to its child `child_index`: tabulation
// binders are below their bounds, gen binders below the generator
// argument, and a conditional's test holds in its then-branch.
void AddBinderFacts(const ExprPtr& e, size_t child_index, SymEnv* env);

// Exclusive constant upper bound of a nat expression, when derivable.
std::optional<uint64_t> ConstUpperBound(const ExprPtr& e, const SymEnv& env,
                                        int depth = 0);

// Proves `a < b` under `env`, or gives up (sound, incomplete).
bool ProveLt(const ExprPtr& a, const ExprPtr& b, const SymEnv& env, int depth = 0);

// The extent of dimension j (0-based) of array expression `arr` of rank
// `k`: a tabulation's bound, a literal's constant dim, or the symbolic
// `dim_k(arr)` projection.
ExprPtr DimExtentExpr(const ExprPtr& arr, size_t j, size_t k);

// "0.1.2" rendering of a child-index path; "<root>" when empty.
std::string AbsPathString(const std::vector<size_t>& path);

// ---------- the interpreter ----------

template <typename Domain>
class AbsInterp {
 public:
  using Val = typename Domain::Val;

  explicit AbsInterp(Domain* domain) : domain_(domain) {}

  Val Analyze(const ExprPtr& root) {
    SymEnv env;
    return Visit(root, env);
  }

 private:
  Val Visit(const ExprPtr& e, const SymEnv& env) {
    domain_->AtNode(e, path_, env);
    if (e->is(ExprKind::kVar)) {
      const Val* bound = ScopeLookup(e->var_name());
      Val out = bound != nullptr ? *bound : domain_->FreeVar(e);
      domain_->AfterNode(e, path_, out, env);
      return out;
    }
    if constexpr (Domain::kLetPrecision) {
      if (e->is(ExprKind::kApply) && e->child(0)->is(ExprKind::kLambda)) {
        return VisitLet(e, env);
      }
    }
    std::vector<std::vector<std::string>> child_binders = ChildBinders(*e);
    std::vector<Val> kids;
    kids.reserve(e->children().size());
    for (size_t i = 0; i < e->children().size(); ++i) {
      SymEnv child_env =
          child_binders[i].empty() ? env : KillShadowed(env, child_binders[i]);
      AddBinderFacts(e, i, &child_env);
      size_t pushed = child_binders[i].size();
      for (size_t j = 0; j < pushed; ++j) {
        scope_.emplace_back(child_binders[i][j],
                            domain_->BinderVal(e, i, j, child_env));
      }
      path_.push_back(i);
      kids.push_back(Visit(e->child(i), child_env));
      path_.pop_back();
      scope_.resize(scope_.size() - pushed);
    }
    Val out = domain_->Transfer(e, kids, env);
    domain_->AfterNode(e, path_, out, env);
    return out;
  }

  // Domains may customize the value a let binding contributes at each USE
  // of the bound variable (default: the bound value itself). The cost
  // domain (opt/cost.cc) overrides this: a variable occurrence reads a
  // frame slot for free, the binding's own cost is charged once in
  // LetTransfer — without the hook every use would re-price the whole
  // bound expression.
  template <typename D>
  static auto ScopedBound(D& d, const Val& bound, int) -> decltype(d.ScopedVal(bound)) {
    return d.ScopedVal(bound);
  }
  template <typename D>
  static Val ScopedBound(D&, const Val& bound, long) {
    return bound;
  }

  // let x = bound in body, encoded Apply(Lambda(x, body), bound). The
  // argument is visited first (it evaluates regardless of the body), then
  // its abstract value is bound to x for the body.
  Val VisitLet(const ExprPtr& e, const SymEnv& env) {
    const ExprPtr& lam = e->child(0);
    path_.push_back(1);
    Val bound = Visit(e->child(1), env);
    path_.pop_back();

    domain_->AtNode(lam, WithStep(0), env);
    SymEnv body_env = KillShadowed(env, lam->binders());
    if (std::optional<uint64_t> ub = ConstUpperBound(e->child(1), env)) {
      body_env.facts.push_back({lam->binder(), Expr::NatConst(*ub)});
    }
    scope_.emplace_back(lam->binder(), ScopedBound(*domain_, bound, 0));
    path_.push_back(0);
    path_.push_back(0);
    Val body = Visit(lam->child(0), body_env);
    path_.pop_back();
    path_.pop_back();
    scope_.pop_back();
    domain_->AfterNode(lam, WithStep(0), domain_->Transfer(lam, {body}, env), env);

    Val out = domain_->LetTransfer(e, bound, body);
    domain_->AfterNode(e, path_, out, env);
    return out;
  }

  std::vector<size_t> WithStep(size_t i) const {
    std::vector<size_t> p = path_;
    p.push_back(i);
    return p;
  }

  const Val* ScopeLookup(const std::string& name) const {
    for (size_t i = scope_.size(); i-- > 0;) {
      if (scope_[i].first == name) return &scope_[i].second;
    }
    return nullptr;
  }

  Domain* domain_;
  std::vector<std::pair<std::string, Val>> scope_;
  std::vector<size_t> path_;
};

// ---------- the shape × definedness × cardinality product domain ----------

// One array extent: exactly known, known up to alpha-comparable symbolic
// expression (`dim_k(x)`, a tabulation bound, ...), or unknown.
struct Extent {
  enum class Kind : uint8_t { kTop, kConst, kSym };
  Kind kind = Kind::kTop;
  uint64_t value = 0;  // kConst
  ExprPtr sym;         // kSym

  static Extent Top() { return {}; }
  static Extent Const(uint64_t v) { return {Kind::kConst, v, nullptr}; }
  static Extent Sym(ExprPtr e);  // NatConst collapses to Const

  std::string ToString() const;
};

// ShapeDomain value: is the result an array, and of what extents?
struct ShapeVal {
  enum class Kind : uint8_t { kTop, kNotArray, kArray };
  Kind kind = Kind::kTop;
  std::vector<Extent> extents;  // kArray only; one per dimension

  static ShapeVal Top() { return {}; }
  static ShapeVal NotArray() { return {Kind::kNotArray, {}}; }
  static ShapeVal Array(std::vector<Extent> extents) {
    return {Kind::kArray, std::move(extents)};
  }

  std::string ToString() const;
};

// DefinednessDomain value. `whole` is a claim about the expression's own
// result, conditional on evaluation succeeding (type errors are Status,
// not ⊥, and void the claim vacuously) and on every free variable being
// ⊥-free: kDefined = never ⊥, kBottom = always ⊥, kUnknown = no claim.
// `elems_defined` additionally claims an array result carries no
// per-point ⊥ holes (arrays are the calculus's partial functions; sets
// and scalars never contain ⊥).
enum class Definedness : uint8_t { kDefined, kUnknown, kBottom };

struct DefVal {
  Definedness whole = Definedness::kUnknown;
  bool elems_defined = false;
};

// CardinalityDomain value: element count of a set/array result, as a
// closed interval; hi == UINT64_MAX means unbounded. Meaningless (and
// kept at [0, ∞)) for scalar results.
struct CardVal {
  uint64_t lo = 0;
  uint64_t hi = UINT64_MAX;

  std::string ToString() const;
};

struct AbsVal {
  ShapeVal shape;
  DefVal def;
  CardVal card;

  // "shape=[3 x dim_1(a)] def=bottom-free elems=hole-free card=[0,12]"
  std::string ToString() const;
};

// The product domain: definedness of a subscript needs the array's shape,
// a tabulation's cardinality needs its bounds' values, so the three
// domains run together (a reduced product).
class CoreDomains {
 public:
  using Val = AbsVal;
  static constexpr bool kLetPrecision = true;

  // Post-order observation hook (the linter records every node's value).
  using Observer = std::function<void(const ExprPtr&, const std::vector<size_t>&,
                                      const AbsVal&, const SymEnv&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  Val FreeVar(const ExprPtr& var);
  Val BinderVal(const ExprPtr& parent, size_t child_index, size_t binder_index,
                const SymEnv& env);
  Val Transfer(const ExprPtr& e, const std::vector<Val>& kids, const SymEnv& env);
  Val LetTransfer(const ExprPtr& apply, const Val& bound, const Val& body);
  void AtNode(const ExprPtr&, const std::vector<size_t>&, const SymEnv&) {}
  void AfterNode(const ExprPtr& e, const std::vector<size_t>& path, const Val& val,
                 const SymEnv& env) {
    if (observer_) observer_(e, path, val, env);
  }

 private:
  Observer observer_;
};

// Abstractly interprets a core term under the product domain. Never
// fails; unknown constructs yield ⊤.
AbsVal AnalyzeAbs(const ExprPtr& e);

// True when `a` and `b` make contradictory claims about one value —
// definite-but-different ranks or extents, kDefined vs kBottom, disjoint
// bounded cardinalities. Used by the verifier: a sound rewrite preserves
// the value, so the pre- and post-phase analyses must be consistent.
bool AbsContradicts(const AbsVal& a, const AbsVal& b, std::string* why);

}  // namespace analysis
}  // namespace aql

#endif  // AQL_ANALYSIS_ABSINT_H_
