// BoundsAnalysis: an abstract interpretation over index arithmetic that
// proves `index < shape` facts for array subscripts (paper §5; full bound
// checking is undecidable — Proposition 5.1 — so this is a sound,
// incomplete prover).
//
// The interpreter tracks, per nat-valued expression, an exclusive upper
// bound that is either a constant or a symbolic expression compared up to
// alpha:
//
//   - tabulation binders:  [[ e | i < b ]]      gives  i < b
//   - gen binders:         U{ e | i in gen(n) } gives  i < n
//   - conditional guards:  if i < b then e ...  gives  i < b inside e
//   - arithmetic:          i % n < n,  i / n <= i,  i - n <= i (monus),
//                          constant folding for +, *, and if-joins
//
// For every subscript a[e] the analysis decides, per dimension, whether
// the index is provably below the array's extent (the extent of a
// tabulation is its bound; of a materialized or dense literal its
// constant dims; of anything else the symbolic `dim_k(a)` term). The
// summary reports which of the §5 bound-check eliminations are justified
// by a proof versus merely trusting the runtime's partial-function ⊥.

#ifndef AQL_ANALYSIS_BOUNDS_H_
#define AQL_ANALYSIS_BOUNDS_H_

#include <string>
#include <vector>

#include "core/expr.h"

namespace aql {
namespace analysis {

// One array subscript seen by the analysis.
struct SubscriptFact {
  std::string path;    // child-index path from the root, e.g. "0.1"
  std::string expr;    // rendering of the subscript expression
  bool proven = false; // every index component proven below its extent
  std::string detail;  // which components were proven / why not
};

struct BoundsSummary {
  size_t subscripts = 0;        // array subscripts analyzed
  size_t proven = 0;            // fully proven in-bounds (elimination justified)
  size_t unproven = 0;          // relying on the runtime ⊥ check
  size_t residual_guards = 0;   // `e1 < e2` comparisons still in the term
  size_t provable_guards = 0;   // residual guards the analysis can prove true
  std::vector<SubscriptFact> facts;  // capped at kMaxFacts entries

  static constexpr size_t kMaxFacts = 32;

  // "bounds: 3 subscripts, 2 proven in-bounds, 1 trusting runtime ⊥; ..."
  std::string ToString() const;
};

// Analyzes a core term (typically an optimized plan). Never fails; an
// expression shape the interpreter does not understand just yields
// "unproven".
BoundsSummary AnalyzeBounds(const ExprPtr& e);

}  // namespace analysis
}  // namespace aql

#endif  // AQL_ANALYSIS_BOUNDS_H_
