#include "analysis/bounds.h"

#include <algorithm>
#include <optional>
#include <set>

#include "base/strings.h"
#include "core/expr_ops.h"

namespace aql {
namespace analysis {

namespace {

// One abstract fact: `var < ub`, with `ub` a core expression (a NatConst
// when the bound is known exactly, symbolic otherwise).
struct Fact {
  std::string var;
  ExprPtr ub;
};

// The abstract environment at a program point: binder bounds plus the
// conditions known true on this control path.
struct Ctx {
  std::vector<Fact> facts;           // innermost binding last
  std::vector<ExprPtr> true_conds;   // conditions of enclosing then-branches
};

const ExprPtr* LookupFact(const Ctx& ctx, const std::string& var) {
  for (auto it = ctx.facts.rbegin(); it != ctx.facts.rend(); ++it) {
    if (it->var == var) return &it->ub;
  }
  return nullptr;
}

// Entering a scope that introduces `binders` kills any fact or condition
// mentioning those names (they now refer to different bindings) and any
// fact *about* a shadowed name.
Ctx EnterScope(const Ctx& ctx, const std::vector<std::string>& binders) {
  Ctx out;
  auto mentions_binder = [&](const ExprPtr& e) {
    for (const std::string& b : binders) {
      if (OccursFree(e, b)) return true;
    }
    return false;
  };
  for (const Fact& f : ctx.facts) {
    if (std::find(binders.begin(), binders.end(), f.var) != binders.end()) continue;
    if (mentions_binder(f.ub)) continue;
    out.facts.push_back(f);
  }
  for (const ExprPtr& c : ctx.true_conds) {
    if (!mentions_binder(c)) out.true_conds.push_back(c);
  }
  return out;
}

// Exclusive constant upper bound of a nat expression, when derivable.
std::optional<uint64_t> ConstUB(const ExprPtr& e, const Ctx& ctx, int depth = 0) {
  if (depth > 16) return std::nullopt;
  switch (e->kind()) {
    case ExprKind::kNatConst: {
      uint64_t n = e->nat_const();
      if (n == UINT64_MAX) return std::nullopt;
      return n + 1;
    }
    case ExprKind::kVar: {
      const ExprPtr* ub = LookupFact(ctx, e->var_name());
      if (ub && (*ub)->is(ExprKind::kNatConst)) return (*ub)->nat_const();
      return std::nullopt;
    }
    case ExprKind::kArith: {
      auto a = ConstUB(e->child(0), ctx, depth + 1);
      auto b = ConstUB(e->child(1), ctx, depth + 1);
      switch (e->arith_op()) {
        case ArithOp::kAdd:
          if (a && b && *a + *b > *a) return *a + *b - 1;  // (ua-1)+(ub-1)+1
          return std::nullopt;
        case ArithOp::kMul:
          if (!a || !b) return std::nullopt;
          if (*a <= 1 || *b <= 1) return 1;  // an operand < 1 is 0; product is 0
          if ((*a - 1) > UINT64_MAX / (*b - 1)) return std::nullopt;  // overflow
          return (*a - 1) * (*b - 1) + 1;
        case ArithOp::kMonus:
        case ArithOp::kDiv:
          return a;  // x - y <= x;  x / y <= x for y >= 1 (y = 0 is ⊥)
        case ArithOp::kMod:
          // When defined (y > 0): x % y < y <= ub(y)-1, and x % y <= x.
          if (b && *b >= 1) return a ? std::min(*a, *b - 1) : *b - 1;
          return a;
      }
      return std::nullopt;
    }
    case ExprKind::kIf: {
      auto t = ConstUB(e->child(1), ctx, depth + 1);
      auto f = ConstUB(e->child(2), ctx, depth + 1);
      if (t && f) return std::max(*t, *f);
      return std::nullopt;
    }
    case ExprKind::kProj:
      if (e->child(0)->is(ExprKind::kTuple) &&
          e->child(0)->children().size() == e->proj_arity()) {
        return ConstUB(e->child(0)->child(e->proj_index() - 1), ctx, depth + 1);
      }
      return std::nullopt;
    case ExprKind::kLiteral:
      if (e->literal().kind() == ValueKind::kNat &&
          e->literal().nat_value() < UINT64_MAX) {
        return e->literal().nat_value() + 1;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

// Proves `a < b` under ctx, or gives up (sound, incomplete).
bool ProveLt(const ExprPtr& a, const ExprPtr& b, const Ctx& ctx, int depth = 0) {
  if (depth > 16) return false;
  // A condition alpha-equal to `a < b` holds on this path.
  for (const ExprPtr& c : ctx.true_conds) {
    if (c->is(ExprKind::kCmp) && c->cmp_op() == CmpOp::kLt &&
        AlphaEqual(c->child(0), a) && AlphaEqual(c->child(1), b)) {
      return true;
    }
  }
  // Constant interval reasoning: a < ub(a) <= n = b.
  if (b->is(ExprKind::kNatConst)) {
    auto ub = ConstUB(a, ctx);
    if (ub && *ub <= b->nat_const()) return true;
  }
  switch (a->kind()) {
    case ExprKind::kVar: {
      const ExprPtr* ub = LookupFact(ctx, a->var_name());
      if (ub && AlphaEqual(*ub, b)) return true;  // a < ub = b, symbolically
      break;
    }
    case ExprKind::kArith:
      switch (a->arith_op()) {
        case ArithOp::kMod:
          // x % b < b whenever the mod is defined (b = 0 yields ⊥, so the
          // subscript never sees an index).
          if (AlphaEqual(a->child(1), b)) return true;
          return ProveLt(a->child(0), b, ctx, depth + 1);
        case ArithOp::kMonus:
        case ArithOp::kDiv:
          // x - y <= x and x / y <= x (y >= 1; y = 0 is ⊥).
          return ProveLt(a->child(0), b, ctx, depth + 1);
        default:
          break;
      }
      break;
    case ExprKind::kIf: {
      Ctx then_ctx = ctx;
      then_ctx.true_conds.push_back(a->child(0));
      return ProveLt(a->child(1), b, then_ctx, depth + 1) &&
             ProveLt(a->child(2), b, ctx, depth + 1);
    }
    default:
      break;
  }
  return false;
}

// The extent of dimension j (0-based) of array expression `arr` of rank
// `k`: a tabulation's bound, a literal's constant dim, or the symbolic
// `dim_k(arr)` projection.
ExprPtr DimExtent(const ExprPtr& arr, size_t j, size_t k) {
  if (arr->is(ExprKind::kTab) && arr->tab_rank() == k) return arr->tab_bound(j);
  if (arr->is(ExprKind::kLiteral) && arr->literal().kind() == ValueKind::kArray) {
    const ArrayRep& rep = arr->literal().array();
    if (rep.dims.size() == k) return Expr::NatConst(rep.dims[j]);
  }
  if (arr->is(ExprKind::kDense) && arr->dense_rank() == k &&
      arr->dense_dim(j)->is(ExprKind::kNatConst)) {
    return arr->dense_dim(j);
  }
  if (k == 1) return Expr::Dim(1, arr);
  return Expr::Proj(j + 1, k, Expr::Dim(k, arr));
}

std::string PathString(const std::vector<size_t>& path) {
  if (path.empty()) return "<root>";
  std::string out;
  for (size_t i : path) {
    if (!out.empty()) out += '.';
    out += std::to_string(i);
  }
  return out;
}

class BoundsInterp {
 public:
  explicit BoundsInterp(BoundsSummary* out) : out_(out) {}

  void Visit(const ExprPtr& e, const Ctx& ctx, std::vector<size_t>* path) {
    switch (e->kind()) {
      case ExprKind::kSubscript:
        AnalyzeSubscript(e, ctx, *path);
        break;
      case ExprKind::kIf:
        // A β^p bound-check guard: `if i < b then e else ⊥`.
        if (e->child(2)->is(ExprKind::kBottom) && e->child(0)->is(ExprKind::kCmp) &&
            e->child(0)->cmp_op() == CmpOp::kLt) {
          ++out_->residual_guards;
          if (ProveLt(e->child(0)->child(0), e->child(0)->child(1), ctx)) {
            ++out_->provable_guards;
          }
        }
        break;
      default:
        break;
    }
    auto child_binders = ChildBinders(*e);
    for (size_t i = 0; i < e->children().size(); ++i) {
      Ctx child_ctx =
          child_binders[i].empty() ? ctx : EnterScope(ctx, child_binders[i]);
      AddBinderFacts(e, i, ctx, &child_ctx);
      path->push_back(i);
      Visit(e->child(i), child_ctx, path);
      path->pop_back();
    }
  }

 private:
  // Facts the parent construct grants to child i: tabulation binders are
  // below their bounds, gen binders below the generator argument, and a
  // conditional's test holds in its then-branch.
  static void AddBinderFacts(const ExprPtr& e, size_t i, const Ctx& outer, Ctx* ctx) {
    switch (e->kind()) {
      case ExprKind::kTab:
        if (i == 0) {
          for (size_t j = 0; j < e->tab_rank(); ++j) {
            ExprPtr bound = e->tab_bound(j);
            // The bound is evaluated outside the binders; only keep it as
            // a fact if no sibling binder shadows a name inside it.
            bool shadowed = false;
            for (const std::string& b : e->binders()) {
              if (OccursFree(bound, b)) shadowed = true;
            }
            if (!shadowed) ctx->facts.push_back({e->binders()[j], bound});
          }
        }
        break;
      case ExprKind::kBigUnion:
      case ExprKind::kSum:
        if (i == 0 && e->child(1)->is(ExprKind::kGen)) {
          ExprPtr n = e->child(1)->child(0);
          if (!OccursFree(n, e->binder())) ctx->facts.push_back({e->binder(), n});
        }
        break;
      case ExprKind::kIf:
        if (i == 1) ctx->true_conds.push_back(e->child(0));
        break;
      default:
        break;
    }
    (void)outer;
  }

  void AnalyzeSubscript(const ExprPtr& e, const Ctx& ctx,
                        const std::vector<size_t>& path) {
    const ExprPtr& arr = e->child(0);
    const ExprPtr& idx = e->child(1);

    // Rank: from the array shape when syntactically evident, else from a
    // tuple-shaped index, else assume 1.
    size_t k = 0;
    if (arr->is(ExprKind::kTab)) k = arr->tab_rank();
    else if (arr->is(ExprKind::kLiteral) && arr->literal().kind() == ValueKind::kArray)
      k = arr->literal().array().dims.size();
    else if (arr->is(ExprKind::kDense)) k = arr->dense_rank();
    else if (idx->is(ExprKind::kTuple)) k = idx->children().size();
    else k = 1;
    if (k == 0) k = 1;

    std::vector<ExprPtr> parts(k);
    if (k == 1) {
      parts[0] = idx;
    } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
      for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
    } else {
      for (size_t j = 0; j < k; ++j) parts[j] = Expr::Proj(j + 1, k, idx);
    }

    ++out_->subscripts;
    size_t proven_dims = 0;
    std::string detail;
    for (size_t j = 0; j < k; ++j) {
      bool ok = ProveLt(parts[j], DimExtent(arr, j, k), ctx);
      if (ok) ++proven_dims;
      if (!detail.empty()) detail += ", ";
      detail += StrCat("dim ", j + 1, ok ? " proven" : " unproven");
    }
    bool proven = proven_dims == k;
    if (proven) ++out_->proven; else ++out_->unproven;
    if (out_->facts.size() < BoundsSummary::kMaxFacts) {
      out_->facts.push_back(
          {PathString(path), e->ToString(), proven, std::move(detail)});
    }
  }

  BoundsSummary* out_;
};

}  // namespace

BoundsSummary AnalyzeBounds(const ExprPtr& e) {
  BoundsSummary out;
  BoundsInterp interp(&out);
  Ctx ctx;
  std::vector<size_t> path;
  interp.Visit(e, ctx, &path);
  return out;
}

std::string BoundsSummary::ToString() const {
  std::string out = StrCat("bounds: ", subscripts, " subscript(s), ", proven,
                           " proven in-bounds, ", unproven,
                           " trusting runtime \xE2\x8A\xA5; ", residual_guards,
                           " residual guard(s), ", provable_guards,
                           " provably redundant\n");
  for (const SubscriptFact& f : facts) {
    out += StrCat("  [", f.proven ? "proven " : "runtime", "] ", f.expr, " at ",
                  f.path, " (", f.detail, ")\n");
  }
  return out;
}

}  // namespace analysis
}  // namespace aql
