#include "analysis/bounds.h"

#include <vector>

#include "analysis/absint.h"
#include "base/strings.h"
#include "core/expr_ops.h"

namespace aql {
namespace analysis {

namespace {

// The original bounds prover, rebased onto the generic interpreter
// (absint.h): the symbolic-environment machinery (facts, path conditions,
// ConstUpperBound/ProveLt, scope killing) now lives there, shared with
// the shape/definedness/cardinality product domain and the kernel proof
// annotator. BoundsAnalysis keeps no per-expression abstract value — it
// is a pure pre-order observer over the trivial one-point lattice.
class BoundsDomain {
 public:
  struct Unit {};
  using Val = Unit;
  static constexpr bool kLetPrecision = false;

  explicit BoundsDomain(BoundsSummary* out) : out_(out) {}

  Val FreeVar(const ExprPtr&) { return {}; }
  Val BinderVal(const ExprPtr&, size_t, size_t, const SymEnv&) { return {}; }
  Val Transfer(const ExprPtr&, const std::vector<Val>&, const SymEnv&) {
    return {};
  }

  void AtNode(const ExprPtr& e, const std::vector<size_t>& path,
              const SymEnv& env) {
    switch (e->kind()) {
      case ExprKind::kSubscript:
        AnalyzeSubscript(e, env, path);
        break;
      case ExprKind::kIf:
        // A β^p bound-check guard: `if i < b then e else ⊥`.
        if (e->child(2)->is(ExprKind::kBottom) && e->child(0)->is(ExprKind::kCmp) &&
            e->child(0)->cmp_op() == CmpOp::kLt) {
          ++out_->residual_guards;
          if (ProveLt(e->child(0)->child(0), e->child(0)->child(1), env)) {
            ++out_->provable_guards;
          }
        }
        break;
      default:
        break;
    }
  }

  void AfterNode(const ExprPtr&, const std::vector<size_t>&, const Val&,
                 const SymEnv&) {}

 private:
  void AnalyzeSubscript(const ExprPtr& e, const SymEnv& env,
                        const std::vector<size_t>& path) {
    const ExprPtr& arr = e->child(0);
    const ExprPtr& idx = e->child(1);

    // Rank: from the array shape when syntactically evident, else from a
    // tuple-shaped index, else assume 1.
    size_t k = 0;
    if (arr->is(ExprKind::kTab)) k = arr->tab_rank();
    else if (arr->is(ExprKind::kLiteral) && arr->literal().kind() == ValueKind::kArray)
      k = arr->literal().array().dims.size();
    else if (arr->is(ExprKind::kDense)) k = arr->dense_rank();
    else if (idx->is(ExprKind::kTuple)) k = idx->children().size();
    else k = 1;
    if (k == 0) k = 1;

    std::vector<ExprPtr> parts(k);
    if (k == 1) {
      parts[0] = idx;
    } else if (idx->is(ExprKind::kTuple) && idx->children().size() == k) {
      for (size_t j = 0; j < k; ++j) parts[j] = idx->child(j);
    } else {
      for (size_t j = 0; j < k; ++j) parts[j] = Expr::Proj(j + 1, k, idx);
    }

    ++out_->subscripts;
    size_t proven_dims = 0;
    std::string detail;
    for (size_t j = 0; j < k; ++j) {
      bool ok = ProveLt(parts[j], DimExtentExpr(arr, j, k), env);
      if (ok) ++proven_dims;
      if (!detail.empty()) detail += ", ";
      detail += StrCat("dim ", j + 1, ok ? " proven" : " unproven");
    }
    bool proven = proven_dims == k;
    if (proven) ++out_->proven; else ++out_->unproven;
    if (out_->facts.size() < BoundsSummary::kMaxFacts) {
      out_->facts.push_back(
          {AbsPathString(path), e->ToString(), proven, std::move(detail)});
    }
  }

  BoundsSummary* out_;
};

}  // namespace

BoundsSummary AnalyzeBounds(const ExprPtr& e) {
  BoundsSummary out;
  BoundsDomain domain(&out);
  AbsInterp<BoundsDomain> interp(&domain);
  interp.Analyze(e);
  return out;
}

std::string BoundsSummary::ToString() const {
  std::string out = StrCat("bounds: ", subscripts, " subscript(s), ", proven,
                           " proven in-bounds, ", unproven,
                           " trusting runtime \xE2\x8A\xA5; ", residual_guards,
                           " residual guard(s), ", provable_guards,
                           " provably redundant\n");
  for (const SubscriptFact& f : facts) {
    out += StrCat("  [", f.proven ? "proven " : "runtime", "] ", f.expr, " at ",
                  f.path, " (", f.detail, ")\n");
  }
  return out;
}

}  // namespace analysis
}  // namespace aql
