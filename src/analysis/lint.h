// analysis::Lint — static diagnostics for optimized plans, built on the
// abstract-interpretation product domain (absint.h). The linter flags
// queries that are *suspicious but legal*: the calculus gives them a
// meaning (usually ⊥ or an empty collection), so neither the type checker
// nor the optimizer will complain, yet they almost always indicate a
// mistake in the query.
//
// Catalogue (warning codes):
//   always-bottom   a subexpression the definedness domain proves is ⊥ on
//                   every evaluation (division by a constant zero, get of
//                   a provably non-singleton set, ...)
//   oob-subscript   a subscript with a constant index at or past a
//                   constant extent — ⊥ at every evaluation
//   empty-tab       a tabulation whose bounds make it the empty array
//                   (`[[e | i < 0]]`)
//   unused-binder   a comprehension/tabulation binder the body never
//                   reads (a constant broadcast is sometimes intended,
//                   so this is informational)
//   const-guard     a bound-check guard `if i < b then e else ⊥` the
//                   prover can discharge but the optimizer left behind
//   shadowed-binder an inner tab/comprehension/lambda (incl. desugared
//                   let) binder re-using the name of an enclosing binder
//                   still in scope — legal, but the inner body can no
//                   longer reach the outer binding
//
// Entry points: Lint(e) for the warnings alone; AnalyzePlan(e) bundles the
// warnings with the root abstract value and the bounds summary — the
// per-plan fact record the service caches alongside the compiled plan.

#ifndef AQL_ANALYSIS_LINT_H_
#define AQL_ANALYSIS_LINT_H_

#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/bounds.h"
#include "core/expr.h"

namespace aql {
namespace analysis {

struct LintWarning {
  std::string code;     // e.g. "always-bottom"
  std::string path;     // child-index path from the root, e.g. "0.1"
  std::string message;

  std::string ToString() const;  // "warning[code] at path: message"
};

struct LintReport {
  std::vector<LintWarning> warnings;

  bool empty() const { return warnings.empty(); }
  // "lint: N warning(s)\n" + one line per warning; "lint: clean\n" if none.
  std::string ToString() const;
};

// Lints a core term (typically an optimized plan). Never fails.
LintReport Lint(const ExprPtr& e);

// Everything the static analyses know about one plan, computed once at
// optimize time and cached with it.
struct PlanFacts {
  AbsVal root;            // shape/definedness/cardinality of the result
  BoundsSummary bounds;
  LintReport lint;

  std::string ToString() const;
};

PlanFacts AnalyzePlan(const ExprPtr& optimized);

}  // namespace analysis
}  // namespace aql

#endif  // AQL_ANALYSIS_LINT_H_
