// aql::analysis — static verification of the optimizer's IR contract.
//
// The §5 rewrite phases are only sound if every rule preserves scoping,
// typing, and the phase's normal-form contract. The rule base is open
// (Optimizer::AddPhase / AddRule let hosts extend it at run time), so an
// unsound user rule can silently corrupt every plan the service caches.
// This subsystem turns those invariants into machine-checked obligations,
// with five composable passes run between optimizer phases:
//
//   1. ScopeCheck        every variable bound (relative to the pre-phase
//                        term's free variables — rewriting may drop free
//                        variables, never introduce them), structural
//                        well-formedness of every node (child counts,
//                        projection indices, tabulation arity), non-empty
//                        binders.
//   2. TypePreservation  re-infer the type after the phase and check it
//                        against the pre-phase type. Dead-code removal may
//                        *generalize* a type ({nat} becoming {'a} when a
//                        constraining branch folds away), so the check is
//                        "pre is an instance of post"; any other change is
//                        a violation.
//   3. NormalFormCheck   the phase's contract: its rule base has reached a
//                        true fixpoint (one extra sweep fires nothing), and
//                        phase-specific structural predicates hold — after
//                        normalization no constant conditionals, no
//                        projections of literal tuples, no vertical
//                        comprehension-of-comprehension left unfused; after
//                        constraint elimination no binder bound-check the
//                        §5 rules target remains.
//   4. BoundsAnalysis    abstract interpretation over index arithmetic
//                        proving `index < shape` facts (bounds.h); reported
//                        as statistics — which eliminations are justified
//                        by a proof versus trusting the runtime ⊥.
//   5. AbsintCheck       the shape/definedness/cardinality product domain
//                        (absint.h) analyzed before and after each phase: a
//                        sound rewrite preserves the value, so the two
//                        abstract values may not contradict (a definite
//                        rank/extent change, bottom-free becoming
//                        always-⊥, disjoint cardinalities).
//   6. AffineCheck       the relational affine domain (affine.h) analyzed
//                        before and after each phase: affine facts must
//                        refine, never widen — a constant claim may not
//                        change, and a bounded interval may not grow or
//                        become unbounded (rewrites the planner justified
//                        with those facts would silently lose their
//                        proofs).
//
// When a pass fails, the verifier pinpoints the offending rule via the
// rewriter's per-firing instrumentation (RewriteOptions::on_firing /
// max_firings): it records the phase's firing trace, then replays the
// phase under increasing firing caps until the invariant first breaks —
// the last fired rule is the culprit. Normal-form violations (where
// intermediate terms are legitimately not in normal form) are attributed
// by leave-one-out replay instead.
//
// Deployment: System::Optimize runs this under AQL_VERIFY_IR=1 (paranoid
// mode — abort on violation), the query service verifies plans before
// caching them (ServiceConfig::verify_plans), and the REPL's :verify
// command prints the report for one expression.

#ifndef AQL_ANALYSIS_VERIFIER_H_
#define AQL_ANALYSIS_VERIFIER_H_

#include <set>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/bounds.h"
#include "core/expr.h"
#include "opt/optimizer.h"
#include "typecheck/typecheck.h"

namespace aql {
namespace analysis {

enum class VerifyPass {
  kScope,
  kTypePreservation,
  kNormalForm,
  kBounds,
  kAbsint,
  kAffine,
};
const char* VerifyPassName(VerifyPass pass);

struct Violation {
  VerifyPass pass = VerifyPass::kScope;
  std::string phase;    // optimizer phase whose output is at fault
  std::string rule;     // offending rule when pinpointed, else empty
  std::string path;     // child-index path to the offending subterm
  std::string message;

  std::string ToString() const;
};

struct VerifierReport {
  std::vector<Violation> violations;
  std::vector<std::string> phases_checked;  // e.g. "normalization: ok"
  BoundsSummary bounds;                     // over the final optimized term
  std::string absint;  // rendered AbsVal of the final optimized term

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
};

// Checks structural well-formedness and that every free variable of `e`
// is in `allowed_free`. Appends violations tagged with `phase`.
void ScopeCheck(const ExprPtr& e, const std::set<std::string>& allowed_free,
                const std::string& phase, VerifierReport* report);

// True when `pre` is an instance of `post` (equal up to a substitution of
// post's type variables): the relation every sound rewrite maintains.
bool TypeGeneralizes(const TypePtr& post, const TypePtr& pre);

class Verifier {
 public:
  struct Options {
    bool scope = true;
    bool types = true;
    bool normal_form = true;
    bool bounds = true;
    bool absint = true;
    bool affine = true;
    // Replay a failing phase with per-firing instrumentation to name the
    // rule that broke the invariant (bounded work; off for speed).
    bool pinpoint = true;
  };

  explicit Verifier(TypeChecker::ExternalLookup external_lookup);
  Verifier(TypeChecker::ExternalLookup external_lookup, Options options);

  // Runs every phase of `opt` on `e`, verifying the invariants between
  // phases and accumulating into *report (bounds run once, on the final
  // term). Returns the optimized term; on violation the term from the
  // offending phase is still returned so callers can inspect it.
  ExprPtr OptimizeVerified(const Optimizer& opt, const ExprPtr& e,
                           RewriteStats* stats, VerifierReport* report);

  // Verifies a single phase transition `pre` -> `post` produced by a
  // fixpoint of `rules` under `rewrite_options`.
  void VerifyPhase(const std::string& phase, const std::vector<Rule>& rules,
                   const RewriteOptions& rewrite_options, const ExprPtr& pre,
                   const ExprPtr& post, bool hit_budget, VerifierReport* report);

 private:
  TypePtr TryType(const ExprPtr& e) const;
  // Replays the phase under increasing firing caps until `broken` first
  // holds; returns the name of the firing that introduced the breakage.
  std::string PinpointByTrace(const std::vector<Rule>& rules,
                              const RewriteOptions& rewrite_options,
                              const ExprPtr& pre,
                              const std::function<bool(const ExprPtr&)>& broken) const;
  // Re-runs the phase with one rule removed at a time; the rule whose
  // removal makes `broken` false is the culprit.
  std::string PinpointByRemoval(const std::vector<Rule>& rules,
                                const RewriteOptions& rewrite_options,
                                const ExprPtr& pre,
                                const std::function<bool(const ExprPtr&)>& broken) const;

  TypeChecker::ExternalLookup external_lookup_;
  Options options_;
};

}  // namespace analysis
}  // namespace aql

#endif  // AQL_ANALYSIS_VERIFIER_H_
