// Type checking / inference for the core calculus (paper Fig. 1).
//
// Every typing rule in Figure 1 is implemented here. Because the surface
// language leaves binders unannotated, checking is unification-based: each
// binder gets a fresh type variable and constructs add equations.
//
// Two constraint families cannot be solved eagerly and are deferred:
//   - numeric overloading: the arithmetic operators and Sum work at both
//     nat (paper semantics: '-' is monus, '/' integer division) and real
//     (extension; the paper routes real arithmetic through external
//     primitives, we fold it into the calculus). Unresolved numeric types
//     default to nat, the paper's N.
//   - subscripting: e1[e2] needs e1's rank to decide whether e2 is N or
//     N^k; a worklist pass resolves these once enough structure is known.
//
// External primitives are registered with a type *scheme* (a type possibly
// containing type variables) that is freshly instantiated at each use, so
// natively-implemented generic operations (min, max, member, ...) check
// polymorphically. User macros achieve polymorphism by substitution
// before checking, exactly as in the paper (§4.1).

#ifndef AQL_TYPECHECK_TYPECHECK_H_
#define AQL_TYPECHECK_TYPECHECK_H_

#include <functional>
#include <map>
#include <string>

#include "base/result.h"
#include "core/expr.h"
#include "types/type.h"
#include "types/unify.h"

namespace aql {

class TypeChecker {
 public:
  // Returns the registered type scheme for an external primitive, or
  // nullptr if unknown. Variables inside the scheme are instantiated fresh
  // at every use site.
  using ExternalLookup = std::function<TypePtr(const std::string&)>;

  explicit TypeChecker(ExternalLookup external_lookup)
      : external_lookup_(std::move(external_lookup)) {}

  // Infers the type of a closed expression (or one whose free variables are
  // all given in `env`). The returned type is fully resolved; residual type
  // variables indicate the expression is polymorphic.
  Result<TypePtr> Check(const ExprPtr& e);
  Result<TypePtr> Check(const ExprPtr& e, const std::map<std::string, TypePtr>& env);

  // Infers the object type of an already-evaluated complex object. Empty
  // sets/arrays produce types containing fresh variables from `unifier`.
  static Result<TypePtr> TypeOfValue(const Value& v, TypeUnifier* unifier);

 private:
  struct SubscriptConstraint {
    TypePtr array;
    TypePtr index;
    TypePtr elem;
  };

  Result<TypePtr> Infer(const ExprPtr& e, std::map<std::string, TypePtr>* env);
  Status SolveDeferred();
  static bool ContainsArrow(const TypePtr& t);

  ExternalLookup external_lookup_;
  TypeUnifier unifier_;
  std::vector<TypePtr> numeric_;             // must end up nat or real
  std::vector<TypePtr> comparable_;          // must end up an object type
  std::vector<TypePtr> element_types_;       // set/array elements: object types
  std::vector<SubscriptConstraint> subscripts_;
};

}  // namespace aql

#endif  // AQL_TYPECHECK_TYPECHECK_H_
