#include "typecheck/typecheck.h"

#include <unordered_map>

#include "base/strings.h"

namespace aql {

namespace {

// Instantiates a type scheme: every distinct variable in `scheme` is
// replaced by a fresh variable from `unifier`.
TypePtr Instantiate(const TypePtr& scheme, TypeUnifier* unifier,
                    std::unordered_map<uint64_t, TypePtr>* mapping) {
  switch (scheme->kind()) {
    case TypeKind::kVar: {
      auto it = mapping->find(scheme->var_id());
      if (it != mapping->end()) return it->second;
      TypePtr fresh = unifier->Fresh();
      (*mapping)[scheme->var_id()] = fresh;
      return fresh;
    }
    case TypeKind::kProduct: {
      std::vector<TypePtr> fields;
      fields.reserve(scheme->fields().size());
      for (const TypePtr& f : scheme->fields()) {
        fields.push_back(Instantiate(f, unifier, mapping));
      }
      return Type::Product(std::move(fields));
    }
    case TypeKind::kSet:
      return Type::Set(Instantiate(scheme->elem(), unifier, mapping));
    case TypeKind::kArray:
      return Type::Array(Instantiate(scheme->elem(), unifier, mapping), scheme->rank());
    case TypeKind::kArrow:
      return Type::Arrow(Instantiate(scheme->from(), unifier, mapping),
                         Instantiate(scheme->to(), unifier, mapping));
    default:
      return scheme;
  }
}

TypePtr NatIndexType(size_t rank) {
  if (rank == 1) return Type::Nat();
  std::vector<TypePtr> fields(rank, Type::Nat());
  return Type::Product(std::move(fields));
}

}  // namespace

Result<TypePtr> TypeChecker::TypeOfValue(const Value& v, TypeUnifier* unifier) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      return unifier->Fresh();
    case ValueKind::kBool:
      return Type::Bool();
    case ValueKind::kNat:
      return Type::Nat();
    case ValueKind::kReal:
      return Type::Real();
    case ValueKind::kString:
      return Type::String();
    case ValueKind::kTuple: {
      std::vector<TypePtr> fields;
      for (const Value& f : v.tuple_fields()) {
        AQL_ASSIGN_OR_RETURN(TypePtr t, TypeOfValue(f, unifier));
        fields.push_back(std::move(t));
      }
      if (fields.size() < 2) {
        return Status::TypeError("tuple value with arity < 2");
      }
      return Type::Product(std::move(fields));
    }
    case ValueKind::kSet: {
      TypePtr elem = unifier->Fresh();
      for (const Value& x : v.set().elems) {
        AQL_ASSIGN_OR_RETURN(TypePtr t, TypeOfValue(x, unifier));
        AQL_RETURN_IF_ERROR(unifier->Unify(elem, t));
      }
      return Type::Set(unifier->Resolve(elem));
    }
    case ValueKind::kArray: {
      const ArrayRep& a = v.array();
      TypePtr elem = unifier->Fresh();
      // Unboxed payloads are uniform by construction: one element types
      // the whole array.
      switch (a.payload) {
        case ArrayRep::Payload::kNats:
          AQL_RETURN_IF_ERROR(unifier->Unify(elem, Type::Nat()));
          break;
        case ArrayRep::Payload::kReals:
        case ArrayRep::Payload::kTiled:  // tiled slabs are real-valued
          AQL_RETURN_IF_ERROR(unifier->Unify(elem, Type::Real()));
          break;
        case ArrayRep::Payload::kBools:
          AQL_RETURN_IF_ERROR(unifier->Unify(elem, Type::Bool()));
          break;
        case ArrayRep::Payload::kBoxed:
          for (const Value& x : a.elems) {
            AQL_ASSIGN_OR_RETURN(TypePtr t, TypeOfValue(x, unifier));
            AQL_RETURN_IF_ERROR(unifier->Unify(elem, t));
          }
          break;
      }
      return Type::Array(unifier->Resolve(elem), a.dims.size());
    }
    case ValueKind::kFunc:
      return Status::TypeError("function values have no inferable object type");
  }
  return Status::Internal("unknown value kind");
}

Result<TypePtr> TypeChecker::Check(const ExprPtr& e) {
  std::map<std::string, TypePtr> env;
  return Check(e, env);
}

Result<TypePtr> TypeChecker::Check(const ExprPtr& e,
                                   const std::map<std::string, TypePtr>& env) {
  std::map<std::string, TypePtr> mutable_env = env;
  AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e, &mutable_env));
  AQL_RETURN_IF_ERROR(SolveDeferred());
  return unifier_.Resolve(t);
}

Status TypeChecker::SolveDeferred() {
  // Worklist over subscript constraints: each pass tries to learn the rank
  // of the subscripted array either from the array side or the index side.
  bool progress = true;
  while (progress && !subscripts_.empty()) {
    progress = false;
    std::vector<SubscriptConstraint> remaining;
    for (const SubscriptConstraint& c : subscripts_) {
      TypePtr arr = unifier_.Shallow(c.array);
      if (arr->is(TypeKind::kArray)) {
        AQL_RETURN_IF_ERROR(unifier_.Unify(c.index, NatIndexType(arr->rank())));
        AQL_RETURN_IF_ERROR(unifier_.Unify(c.elem, arr->elem()));
        progress = true;
        continue;
      }
      if (!arr->is(TypeKind::kVar)) {
        return Status::TypeError(
            StrCat("subscript applied to non-array type ", unifier_.Resolve(arr)->ToString()));
      }
      TypePtr idx = unifier_.Shallow(c.index);
      if (idx->is(TypeKind::kNat)) {
        AQL_RETURN_IF_ERROR(unifier_.Unify(c.array, Type::Array(c.elem, 1)));
        progress = true;
        continue;
      }
      if (idx->is(TypeKind::kProduct)) {
        size_t k = idx->fields().size();
        for (const TypePtr& f : idx->fields()) {
          AQL_RETURN_IF_ERROR(unifier_.Unify(f, Type::Nat()));
        }
        AQL_RETURN_IF_ERROR(unifier_.Unify(c.array, Type::Array(c.elem, k)));
        progress = true;
        continue;
      }
      if (!idx->is(TypeKind::kVar)) {
        return Status::TypeError(
            StrCat("array index has non-index type ", unifier_.Resolve(idx)->ToString()));
      }
      remaining.push_back(c);
    }
    subscripts_ = std::move(remaining);
  }
  if (!subscripts_.empty()) {
    // Default unresolved subscripts to rank 1, mirroring the numeric
    // default below; this accepts e.g. `fn \a => a[0]` as [['a]]_1 -> 'a.
    for (const SubscriptConstraint& c : subscripts_) {
      AQL_RETURN_IF_ERROR(unifier_.Unify(c.index, Type::Nat()));
      AQL_RETURN_IF_ERROR(unifier_.Unify(c.array, Type::Array(c.elem, 1)));
    }
    subscripts_.clear();
  }

  for (const TypePtr& t : numeric_) {
    TypePtr r = unifier_.Shallow(t);
    if (r->is(TypeKind::kVar)) {
      AQL_RETURN_IF_ERROR(unifier_.Unify(r, Type::Nat()));
    } else if (!r->is(TypeKind::kNat) && !r->is(TypeKind::kReal)) {
      return Status::TypeError(StrCat("arithmetic requires nat or real, got ",
                                      unifier_.Resolve(r)->ToString()));
    }
  }
  numeric_.clear();

  for (const TypePtr& t : comparable_) {
    TypePtr r = unifier_.Resolve(t);
    if (r->is(TypeKind::kArrow)) {
      return Status::TypeError("comparison operators require object types, got a function");
    }
  }
  comparable_.clear();

  // Fig. 1: {t} and [[t]]_k require t to be an OBJECT type — function
  // types may not appear inside collections.
  for (const TypePtr& t : element_types_) {
    if (ContainsArrow(unifier_.Resolve(t))) {
      return Status::TypeError(
          "function types may not appear inside sets or arrays (object types only)");
    }
  }
  element_types_.clear();
  return Status::OK();
}

bool TypeChecker::ContainsArrow(const TypePtr& t) {
  if (t->is(TypeKind::kArrow)) return true;
  for (size_t i = 0; i < (t->is(TypeKind::kProduct) ? t->fields().size() : 0); ++i) {
    if (ContainsArrow(t->fields()[i])) return true;
  }
  if (t->is(TypeKind::kSet) || t->is(TypeKind::kArray)) return ContainsArrow(t->elem());
  return false;
}

Result<TypePtr> TypeChecker::Infer(const ExprPtr& e, std::map<std::string, TypePtr>* env) {
  switch (e->kind()) {
    case ExprKind::kVar: {
      auto it = env->find(e->var_name());
      if (it == env->end()) {
        return Status::TypeError(StrCat("unbound variable ", e->var_name()));
      }
      return it->second;
    }
    case ExprKind::kLambda: {
      TypePtr param = unifier_.Fresh();
      auto saved = env->find(e->binder());
      TypePtr old = saved != env->end() ? saved->second : nullptr;
      (*env)[e->binder()] = param;
      auto body = Infer(e->child(0), env);
      if (old) {
        (*env)[e->binder()] = old;
      } else {
        env->erase(e->binder());
      }
      AQL_RETURN_IF_ERROR(body.status());
      return Type::Arrow(param, body.value());
    }
    case ExprKind::kApply: {
      AQL_ASSIGN_OR_RETURN(TypePtr fn, Infer(e->child(0), env));
      AQL_ASSIGN_OR_RETURN(TypePtr arg, Infer(e->child(1), env));
      TypePtr result = unifier_.Fresh();
      AQL_RETURN_IF_ERROR(unifier_.Unify(fn, Type::Arrow(arg, result)));
      return result;
    }
    case ExprKind::kTuple: {
      std::vector<TypePtr> fields;
      for (const ExprPtr& c : e->children()) {
        AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(c, env));
        fields.push_back(std::move(t));
      }
      return Type::Product(std::move(fields));
    }
    case ExprKind::kProj: {
      AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->child(0), env));
      std::vector<TypePtr> fields;
      fields.reserve(e->proj_arity());
      for (size_t i = 0; i < e->proj_arity(); ++i) fields.push_back(unifier_.Fresh());
      AQL_RETURN_IF_ERROR(unifier_.Unify(t, Type::Product(fields)));
      return fields[e->proj_index() - 1];
    }
    case ExprKind::kEmptySet:
      return Type::Set(unifier_.Fresh());
    case ExprKind::kSingleton: {
      AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->child(0), env));
      element_types_.push_back(t);  // Fig. 1: {t} needs an object type t
      return Type::Set(std::move(t));
    }
    case ExprKind::kUnion: {
      AQL_ASSIGN_OR_RETURN(TypePtr a, Infer(e->child(0), env));
      AQL_ASSIGN_OR_RETURN(TypePtr b, Infer(e->child(1), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(a, b));
      AQL_RETURN_IF_ERROR(unifier_.Unify(a, Type::Set(unifier_.Fresh())));
      return a;
    }
    case ExprKind::kBigUnion: {
      AQL_ASSIGN_OR_RETURN(TypePtr src, Infer(e->child(1), env));
      TypePtr elem = unifier_.Fresh();
      AQL_RETURN_IF_ERROR(unifier_.Unify(src, Type::Set(elem)));
      auto saved = env->find(e->binder());
      TypePtr old = saved != env->end() ? saved->second : nullptr;
      (*env)[e->binder()] = elem;
      auto body = Infer(e->child(0), env);
      if (old) {
        (*env)[e->binder()] = old;
      } else {
        env->erase(e->binder());
      }
      AQL_RETURN_IF_ERROR(body.status());
      TypePtr out_elem = unifier_.Fresh();
      AQL_RETURN_IF_ERROR(unifier_.Unify(body.value(), Type::Set(out_elem)));
      return Type::Set(out_elem);
    }
    case ExprKind::kGet: {
      AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->child(0), env));
      TypePtr elem = unifier_.Fresh();
      AQL_RETURN_IF_ERROR(unifier_.Unify(t, Type::Set(elem)));
      return elem;
    }
    case ExprKind::kBoolConst:
      return Type::Bool();
    case ExprKind::kIf: {
      AQL_ASSIGN_OR_RETURN(TypePtr c, Infer(e->child(0), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(c, Type::Bool()));
      AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->child(1), env));
      AQL_ASSIGN_OR_RETURN(TypePtr f, Infer(e->child(2), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(t, f));
      return t;
    }
    case ExprKind::kCmp: {
      AQL_ASSIGN_OR_RETURN(TypePtr a, Infer(e->child(0), env));
      AQL_ASSIGN_OR_RETURN(TypePtr b, Infer(e->child(1), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(a, b));
      comparable_.push_back(a);
      return Type::Bool();
    }
    case ExprKind::kNatConst:
      return Type::Nat();
    case ExprKind::kRealConst:
      return Type::Real();
    case ExprKind::kStrConst:
      return Type::String();
    case ExprKind::kArith: {
      AQL_ASSIGN_OR_RETURN(TypePtr a, Infer(e->child(0), env));
      AQL_ASSIGN_OR_RETURN(TypePtr b, Infer(e->child(1), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(a, b));
      numeric_.push_back(a);
      return a;
    }
    case ExprKind::kGen: {
      AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->child(0), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(t, Type::Nat()));
      return Type::Set(Type::Nat());
    }
    case ExprKind::kSum: {
      AQL_ASSIGN_OR_RETURN(TypePtr src, Infer(e->child(1), env));
      TypePtr elem = unifier_.Fresh();
      AQL_RETURN_IF_ERROR(unifier_.Unify(src, Type::Set(elem)));
      auto saved = env->find(e->binder());
      TypePtr old = saved != env->end() ? saved->second : nullptr;
      (*env)[e->binder()] = elem;
      auto body = Infer(e->child(0), env);
      if (old) {
        (*env)[e->binder()] = old;
      } else {
        env->erase(e->binder());
      }
      AQL_RETURN_IF_ERROR(body.status());
      numeric_.push_back(body.value());
      return body.value();
    }
    case ExprKind::kTab: {
      size_t k = e->tab_rank();
      for (size_t j = 0; j < k; ++j) {
        AQL_ASSIGN_OR_RETURN(TypePtr b, Infer(e->tab_bound(j), env));
        AQL_RETURN_IF_ERROR(unifier_.Unify(b, Type::Nat()));
      }
      std::vector<std::pair<std::string, TypePtr>> saved;
      for (const std::string& v : e->binders()) {
        auto it = env->find(v);
        saved.emplace_back(v, it != env->end() ? it->second : nullptr);
        (*env)[v] = Type::Nat();
      }
      auto body = Infer(e->tab_body(), env);
      for (auto& [v, old] : saved) {
        if (old) {
          (*env)[v] = old;
        } else {
          env->erase(v);
        }
      }
      AQL_RETURN_IF_ERROR(body.status());
      element_types_.push_back(body.value());  // [[t]]_k needs object t
      return Type::Array(body.value(), k);
    }
    case ExprKind::kSubscript: {
      AQL_ASSIGN_OR_RETURN(TypePtr arr, Infer(e->child(0), env));
      AQL_ASSIGN_OR_RETURN(TypePtr idx, Infer(e->child(1), env));
      TypePtr elem = unifier_.Fresh();
      subscripts_.push_back({arr, idx, elem});
      return elem;
    }
    case ExprKind::kDim: {
      AQL_ASSIGN_OR_RETURN(TypePtr arr, Infer(e->child(0), env));
      AQL_RETURN_IF_ERROR(unifier_.Unify(arr, Type::Array(unifier_.Fresh(), e->rank())));
      return NatIndexType(e->rank());
    }
    case ExprKind::kIndex: {
      AQL_ASSIGN_OR_RETURN(TypePtr src, Infer(e->child(0), env));
      TypePtr value = unifier_.Fresh();
      TypePtr pair = Type::Product({NatIndexType(e->rank()), value});
      AQL_RETURN_IF_ERROR(unifier_.Unify(src, Type::Set(pair)));
      return Type::Array(Type::Set(value), e->rank());
    }
    case ExprKind::kDense: {
      for (size_t j = 0; j < e->dense_rank(); ++j) {
        AQL_ASSIGN_OR_RETURN(TypePtr d, Infer(e->dense_dim(j), env));
        AQL_RETURN_IF_ERROR(unifier_.Unify(d, Type::Nat()));
      }
      TypePtr elem = unifier_.Fresh();
      for (size_t j = 0; j < e->dense_value_count(); ++j) {
        AQL_ASSIGN_OR_RETURN(TypePtr t, Infer(e->dense_value(j), env));
        AQL_RETURN_IF_ERROR(unifier_.Unify(elem, t));
      }
      return Type::Array(elem, e->dense_rank());
    }
    case ExprKind::kBottom:
      return unifier_.Fresh();
    case ExprKind::kLiteral:
      return TypeOfValue(e->literal(), &unifier_);
    case ExprKind::kExternal: {
      TypePtr scheme = external_lookup_ ? external_lookup_(e->var_name()) : nullptr;
      if (!scheme) {
        return Status::TypeError(StrCat("unknown external primitive ", e->var_name()));
      }
      std::unordered_map<uint64_t, TypePtr> mapping;
      return Instantiate(scheme, &unifier_, &mapping);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace aql
