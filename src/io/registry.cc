#include "io/registry.h"

#include "base/strings.h"
#include "obs/trace.h"

namespace aql {

Status IoRegistry::RegisterReader(const std::string& name, ReaderFn reader) {
  if (readers_.count(name)) {
    return Status::AlreadyExists(StrCat("reader ", name, " already registered"));
  }
  readers_[name] = std::move(reader);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Status IoRegistry::RegisterWriter(const std::string& name, WriterFn writer) {
  if (writers_.count(name)) {
    return Status::AlreadyExists(StrCat("writer ", name, " already registered"));
  }
  writers_[name] = std::move(writer);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Result<Value> IoRegistry::Read(const std::string& reader, const Value& args) const {
  auto it = readers_.find(reader);
  if (it == readers_.end()) {
    return Status::NotFound(StrCat("no reader registered as ", reader));
  }
  obs::Span span("io", StrCat("io.read.", reader));
  return it->second(args);
}

Status IoRegistry::Write(const std::string& writer, const Value& payload,
                         const Value& args) const {
  auto it = writers_.find(writer);
  if (it == writers_.end()) {
    return Status::NotFound(StrCat("no writer registered as ", writer));
  }
  obs::Span span("io", StrCat("io.write.", writer));
  Status status = it->second(payload, args);
  // Epoch advances on ANY write attempt, failed or not: a writer that
  // errors midway (partial file, truncated stream) may still have mutated
  // the external world, and a stale result cache serving data from before
  // the partial write is worse than a few spurious invalidations.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return status;
}

}  // namespace aql
