// Reader/writer registry (paper §4.1, "I/O and the NetCDF Interface").
//
// Any driver producing a complex object can be registered as a reader and
// is immediately available to the AQL `readval V using READER at E`
// command; writers serve `writeval E using WRITER at E`. Drivers receive
// the evaluated `at` argument as a complex object (e.g. the NETCDF3 reader
// takes a (filename, varname, lower, upper) 4-tuple).

#ifndef AQL_IO_REGISTRY_H_
#define AQL_IO_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "base/result.h"
#include "object/value.h"

namespace aql {

class IoRegistry {
 public:
  using ReaderFn = std::function<Result<Value>(const Value& args)>;
  using WriterFn = std::function<Status(const Value& payload, const Value& args)>;

  Status RegisterReader(const std::string& name, ReaderFn reader);
  Status RegisterWriter(const std::string& name, WriterFn writer);

  Result<Value> Read(const std::string& reader, const Value& args) const;
  Status Write(const std::string& writer, const Value& payload, const Value& args) const;

  bool HasReader(const std::string& name) const { return readers_.count(name) > 0; }
  bool HasWriter(const std::string& name) const { return writers_.count(name) > 0; }

  // Bumped on every registration and every Write ATTEMPT, including
  // failed ones — a writer that errors midway may already have mutated
  // external state (partial file), and the result cache must not serve
  // results derived from the pre-write world. Writers and registered
  // drivers are opaque: a write may mutate state any reader or primitive
  // observes, so the service's result cache treats an epoch change as
  // "anything derived from external state may be stale" (see
  // docs/CACHING.md). Monotone; safe to poll from concurrent queries.
  uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  std::map<std::string, ReaderFn> readers_;
  std::map<std::string, WriterFn> writers_;
  // mutable: Write is const (it does not touch the registries) but still
  // advances the epoch.
  mutable std::atomic<uint64_t> epoch_{0};
};

}  // namespace aql

#endif  // AQL_IO_REGISTRY_H_
