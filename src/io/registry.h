// Reader/writer registry (paper §4.1, "I/O and the NetCDF Interface").
//
// Any driver producing a complex object can be registered as a reader and
// is immediately available to the AQL `readval V using READER at E`
// command; writers serve `writeval E using WRITER at E`. Drivers receive
// the evaluated `at` argument as a complex object (e.g. the NETCDF3 reader
// takes a (filename, varname, lower, upper) 4-tuple).

#ifndef AQL_IO_REGISTRY_H_
#define AQL_IO_REGISTRY_H_

#include <functional>
#include <map>
#include <string>

#include "base/result.h"
#include "object/value.h"

namespace aql {

class IoRegistry {
 public:
  using ReaderFn = std::function<Result<Value>(const Value& args)>;
  using WriterFn = std::function<Status(const Value& payload, const Value& args)>;

  Status RegisterReader(const std::string& name, ReaderFn reader);
  Status RegisterWriter(const std::string& name, WriterFn writer);

  Result<Value> Read(const std::string& reader, const Value& args) const;
  Status Write(const std::string& writer, const Value& payload, const Value& args) const;

  bool HasReader(const std::string& name) const { return readers_.count(name) > 0; }
  bool HasWriter(const std::string& name) const { return writers_.count(name) > 0; }

 private:
  std::map<std::string, ReaderFn> readers_;
  std::map<std::string, WriterFn> writers_;
};

}  // namespace aql

#endif  // AQL_IO_REGISTRY_H_
