// Built-in I/O drivers.
//
//   COFILE          — reads/writes a complex object in the §3 data
//                     exchange format. Argument: the file path (string).
//                     Demonstrates the openness contract: any producer of
//                     exchange-format bytes plugs in the same way.
//   NETCDF1..NETCDF4 — the paper's NetCDF readers. Argument:
//                     (filename, varname, lower, upper) where lower/upper
//                     are inclusive k-tuples of indices (plain nats for
//                     k = 1). Returns the subslab as [[real]]_k.
//   NETCDF_INFO     — reads a file's catalogue: the set of
//                     (variable name, dimension-length vector) pairs, of
//                     type {string * [[nat]]_1}.
//   NETCDF (writer) — writes a numeric array value ([[real]]_k or
//                     [[nat]]_k) as a classic-format NetCDF file.
//                     Argument: (filename, varname). Dimensions are named
//                     dim0..dim{k-1}; the external type is NC_DOUBLE.

#ifndef AQL_IO_DRIVERS_H_
#define AQL_IO_DRIVERS_H_

#include "io/registry.h"

namespace aql {

IoRegistry::ReaderFn MakeCoFileReader();
IoRegistry::WriterFn MakeCoFileWriter();
IoRegistry::ReaderFn MakeNetcdfReader(size_t rank);
IoRegistry::ReaderFn MakeNetcdfInfoReader();
IoRegistry::WriterFn MakeNetcdfWriter();

// Registers all built-in drivers under their standard names.
Status RegisterBuiltinDrivers(IoRegistry* registry);

}  // namespace aql

#endif  // AQL_IO_DRIVERS_H_
