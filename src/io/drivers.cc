#include "io/drivers.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "base/env.h"
#include "base/strings.h"
#include "netcdf/reader.h"
#include "netcdf/writer.h"
#include "object/value_parser.h"
#include "storage/tile_store.h"

namespace aql {

namespace {

Result<std::string> ExpectString(const Value& v, const char* what) {
  if (v.kind() != ValueKind::kString) {
    return Status::InvalidArgument(StrCat(what, " must be a string, got ",
                                          ValueKindName(v.kind())));
  }
  return v.str_value();
}

// Decodes a bound argument: a nat for rank 1, a k-tuple of nats otherwise.
Result<std::vector<uint64_t>> ExpectBound(const Value& v, size_t rank, const char* what) {
  std::vector<uint64_t> out;
  if (rank == 1) {
    if (v.kind() != ValueKind::kNat) {
      return Status::InvalidArgument(StrCat(what, " must be a nat for a 1-d read"));
    }
    out.push_back(v.nat_value());
    return out;
  }
  if (v.kind() != ValueKind::kTuple || v.tuple_fields().size() != rank) {
    return Status::InvalidArgument(
        StrCat(what, " must be a ", rank, "-tuple of nats"));
  }
  for (const Value& f : v.tuple_fields()) {
    if (f.kind() != ValueKind::kNat) {
      return Status::InvalidArgument(StrCat(what, " components must be nats"));
    }
    out.push_back(f.nat_value());
  }
  return out;
}

}  // namespace

IoRegistry::ReaderFn MakeCoFileReader() {
  return [](const Value& args) -> Result<Value> {
    AQL_ASSIGN_OR_RETURN(std::string path, ExpectString(args, "COFILE argument"));
    std::ifstream in(path);
    if (!in) return Status::IoError(StrCat("cannot open ", path));
    std::stringstream buf;
    buf << in.rdbuf();
    return ParseValue(buf.str());
  };
}

IoRegistry::WriterFn MakeCoFileWriter() {
  return [](const Value& payload, const Value& args) -> Status {
    AQL_ASSIGN_OR_RETURN(std::string path, ExpectString(args, "COFILE argument"));
    std::ofstream out(path, std::ios::trunc);
    if (!out) return Status::IoError(StrCat("cannot open ", path, " for writing"));
    out << payload.ToString() << "\n";
    if (!out) return Status::IoError(StrCat("failed writing ", path));
    return Status::OK();
  };
}

IoRegistry::ReaderFn MakeNetcdfReader(size_t rank) {
  return [rank](const Value& args) -> Result<Value> {
    if (args.kind() != ValueKind::kTuple || args.tuple_fields().size() != 4) {
      return Status::InvalidArgument(
          "NETCDF reader expects (filename, varname, lower, upper)");
    }
    const auto& f = args.tuple_fields();
    AQL_ASSIGN_OR_RETURN(std::string path, ExpectString(f[0], "filename"));
    AQL_ASSIGN_OR_RETURN(std::string var_name, ExpectString(f[1], "variable name"));
    AQL_ASSIGN_OR_RETURN(std::vector<uint64_t> lower, ExpectBound(f[2], rank, "lower bound"));
    AQL_ASSIGN_OR_RETURN(std::vector<uint64_t> upper, ExpectBound(f[3], rank, "upper bound"));

    AQL_ASSIGN_OR_RETURN(netcdf::NcReader reader, netcdf::NcReader::OpenFile(path));
    int var = reader.header().FindVar(var_name);
    if (var < 0) {
      return Status::NotFound(StrCat("no variable ", var_name, " in ", path));
    }
    const auto& shape = reader.header().VarShape(reader.header().vars[var]);
    if (shape.size() != rank) {
      return Status::InvalidArgument(
          StrCat("variable ", var_name, " has rank ", shape.size(), ", reader is NETCDF",
                 rank));
    }
    std::vector<uint64_t> count(rank);
    uint64_t slab_elems = 1;
    bool overflow = false;
    for (size_t j = 0; j < rank; ++j) {
      if (upper[j] < lower[j]) {
        return Status::InvalidArgument("upper bound below lower bound");
      }
      count[j] = upper[j] - lower[j] + 1;  // bounds are inclusive (§4.1)
      if (count[j] != 0 && slab_elems > UINT64_MAX / count[j]) overflow = true;
      slab_elems *= count[j];
    }

    // Large slabs stay out-of-core: back the array with the tile store so
    // tab/sum pipelines stream it tile-by-tile instead of materializing.
    // Small reads keep the eager flat buffer (no behavior change, and the
    // pread-backed reader already bounds their memory to the slab).
    const bool tiled_on = EnvU64("AQL_TILED_READ", 1) != 0;
    const uint64_t threshold =
        EnvU64("AQL_TILED_READ_THRESHOLD", 8ull << 20) / sizeof(double);
    if (tiled_on && !overflow && slab_elems >= std::max<uint64_t>(threshold, 1)) {
      AQL_ASSIGN_OR_RETURN(
          std::shared_ptr<const LazyRealSlab> slab,
          storage::TileStore::Global().OpenSlab(path, var_name, lower, count));
      return Value::MakeTiledArray(std::move(slab));
    }

    AQL_ASSIGN_OR_RETURN(std::vector<double> data, reader.ReadSlab(var, lower, count));

    // CF packing convention: if the variable carries numeric scale_factor
    // / add_offset attributes (how real archives pack floats into shorts),
    // unpack transparently: value = raw * scale_factor + add_offset.
    double scale = 1.0, offset = 0.0;
    for (const netcdf::NcAttr& attr : reader.header().vars[var].attrs) {
      if (attr.name == "scale_factor" && attr.numbers.size() == 1) {
        scale = attr.numbers[0];
      } else if (attr.name == "add_offset" && attr.numbers.size() == 1) {
        offset = attr.numbers[0];
      }
    }
    // Unpack in place and hand the buffer straight to the unboxed real
    // payload: NetCDF ingest never boxes per cell.
    if (scale != 1.0 || offset != 0.0) {
      for (double& d : data) d = d * scale + offset;
    }
    return Value::MakeRealArray(std::move(count), std::move(data));
  };
}

IoRegistry::ReaderFn MakeNetcdfInfoReader() {
  return [](const Value& args) -> Result<Value> {
    AQL_ASSIGN_OR_RETURN(std::string path, ExpectString(args, "NETCDF_INFO argument"));
    AQL_ASSIGN_OR_RETURN(netcdf::NcReader reader, netcdf::NcReader::OpenFile(path));
    std::vector<Value> entries;
    for (const netcdf::NcVar& var : reader.header().vars) {
      std::vector<Value> dims;
      for (uint64_t d : reader.header().VarShape(var)) dims.push_back(Value::Nat(d));
      entries.push_back(
          Value::MakeTuple({Value::Str(var.name), Value::MakeVector(std::move(dims))}));
    }
    return Value::MakeSet(std::move(entries));
  };
}

IoRegistry::WriterFn MakeNetcdfWriter() {
  return [](const Value& payload, const Value& args) -> Status {
    if (args.kind() != ValueKind::kTuple || args.tuple_fields().size() != 2) {
      return Status::InvalidArgument("NETCDF writer expects (filename, varname)");
    }
    AQL_ASSIGN_OR_RETURN(std::string path, ExpectString(args.tuple_fields()[0], "filename"));
    AQL_ASSIGN_OR_RETURN(std::string var_name,
                         ExpectString(args.tuple_fields()[1], "variable name"));
    if (payload.kind() != ValueKind::kArray) {
      return Status::InvalidArgument("NETCDF writer expects an array value");
    }
    const ArrayRep& arr = payload.array();
    std::vector<double> data;
    data.reserve(arr.Count());
    switch (arr.payload) {
      case ArrayRep::Payload::kReals:
        data = arr.reals;  // already the wire representation
        break;
      case ArrayRep::Payload::kNats:
        for (uint64_t n : arr.nats) data.push_back(double(n));
        break;
      case ArrayRep::Payload::kBools:
        for (uint8_t b : arr.bools) data.push_back(b ? 1 : 0);
        break;
      case ArrayRep::Payload::kBoxed:
        for (const Value& v : arr.elems) {
          switch (v.kind()) {
            case ValueKind::kReal: data.push_back(v.real_value()); break;
            case ValueKind::kNat: data.push_back(double(v.nat_value())); break;
            case ValueKind::kBool: data.push_back(v.bool_value() ? 1 : 0); break;
            default:
              return Status::InvalidArgument(
                  StrCat("NETCDF writer cannot encode element of kind ",
                         ValueKindName(v.kind())));
          }
        }
        break;
      case ArrayRep::Payload::kTiled: {
        // Writing re-materializes: the wire format needs the full buffer.
        data.resize(arr.TotalSize());
        std::vector<uint64_t> start(arr.dims.size(), 0);
        AQL_RETURN_IF_ERROR(arr.tiled->ReadInto(start, arr.dims, data.data()));
        break;
      }
    }
    netcdf::NcWriter writer(1);
    std::vector<uint32_t> dim_ids;
    dim_ids.reserve(arr.dims.size());
    for (size_t j = 0; j < arr.dims.size(); ++j) {
      dim_ids.push_back(writer.AddDim(StrCat("dim", j), arr.dims[j]));
    }
    writer.AddGlobalAttr(netcdf::NcAttr{"source", netcdf::NcType::kChar, {}, "aql writeval"});
    writer.AddVar(var_name, netcdf::NcType::kDouble, std::move(dim_ids), std::move(data));
    return writer.WriteFile(path);
  };
}

Status RegisterBuiltinDrivers(IoRegistry* registry) {
  AQL_RETURN_IF_ERROR(registry->RegisterReader("COFILE", MakeCoFileReader()));
  AQL_RETURN_IF_ERROR(registry->RegisterWriter("COFILE", MakeCoFileWriter()));
  for (size_t k = 1; k <= 4; ++k) {
    AQL_RETURN_IF_ERROR(
        registry->RegisterReader(StrCat("NETCDF", k), MakeNetcdfReader(k)));
  }
  AQL_RETURN_IF_ERROR(registry->RegisterReader("NETCDF_INFO", MakeNetcdfInfoReader()));
  AQL_RETURN_IF_ERROR(registry->RegisterWriter("NETCDF", MakeNetcdfWriter()));
  return Status::OK();
}

}  // namespace aql
