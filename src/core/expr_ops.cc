#include "core/expr_ops.h"

#include <algorithm>
#include <cstring>

namespace aql {

namespace {

void CollectFreeVars(const ExprPtr& e, std::set<std::string>* bound,
                     std::set<std::string>* free) {
  if (e->is(ExprKind::kVar)) {
    if (!bound->count(e->var_name())) free->insert(e->var_name());
    return;
  }
  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    std::vector<std::string> added;
    for (const std::string& b : child_binders[i]) {
      if (bound->insert(b).second) added.push_back(b);
    }
    CollectFreeVars(e->child(i), bound, free);
    for (const std::string& b : added) bound->erase(b);
  }
}

}  // namespace

std::set<std::string> FreeVars(const ExprPtr& e) {
  std::set<std::string> bound, free;
  CollectFreeVars(e, &bound, &free);
  return free;
}

bool OccursFree(const ExprPtr& e, const std::string& name) {
  return FreeVars(e).count(name) > 0;
}

std::string FreshName(const std::string& base, const std::set<std::string>& avoid) {
  // Strip any existing $n suffix so renaming a renamed variable stays tidy.
  std::string stem = base;
  size_t dollar = stem.find('$');
  if (dollar != std::string::npos) stem = stem.substr(0, dollar);
  for (uint64_t n = 0;; ++n) {
    std::string candidate = stem + "$" + std::to_string(n);
    if (!avoid.count(candidate)) return candidate;
  }
}

namespace {

ExprPtr SubstituteImpl(const ExprPtr& e,
                       const std::unordered_map<std::string, ExprPtr>& subst,
                       const std::set<std::string>& subst_free) {
  if (subst.empty()) return e;
  if (e->is(ExprKind::kVar)) {
    auto it = subst.find(e->var_name());
    return it != subst.end() ? it->second : e;
  }
  if (e->binders().empty()) {
    // No binders: substitute in every child.
    bool changed = false;
    std::vector<ExprPtr> children;
    children.reserve(e->children().size());
    for (const ExprPtr& c : e->children()) {
      ExprPtr nc = SubstituteImpl(c, subst, subst_free);
      changed |= (nc.get() != c.get());
      children.push_back(std::move(nc));
    }
    return changed ? e->WithChildren(std::move(children)) : e;
  }

  // Binder-introducing node. The binders scope over child 0 only (Lambda,
  // BigUnion, Sum, Tab all follow this layout).
  auto child_binders = ChildBinders(*e);
  std::vector<std::string> binders = e->binders();

  // Drop substitutions shadowed by our binders for the body.
  std::unordered_map<std::string, ExprPtr> body_subst = subst;
  for (const std::string& b : binders) body_subst.erase(b);

  // Rename binders that would capture free variables of the replacements.
  std::set<std::string> body_subst_free;
  for (const auto& [_, rep] : body_subst) {
    auto fv = FreeVars(rep);
    body_subst_free.insert(fv.begin(), fv.end());
  }
  ExprPtr body = e->child(0);
  for (std::string& b : binders) {
    if (body_subst_free.count(b)) {
      std::set<std::string> avoid = body_subst_free;
      auto body_fv = FreeVars(body);
      avoid.insert(body_fv.begin(), body_fv.end());
      for (const std::string& other : binders) avoid.insert(other);
      std::string fresh = FreshName(b, avoid);
      std::unordered_map<std::string, ExprPtr> rename{{b, Expr::Var(fresh)}};
      body = SubstituteImpl(body, rename, {b});
      b = fresh;
    }
  }
  ExprPtr new_body = SubstituteImpl(body, body_subst, body_subst_free);

  std::vector<ExprPtr> children;
  children.reserve(e->children().size());
  children.push_back(std::move(new_body));
  for (size_t i = 1; i < e->children().size(); ++i) {
    children.push_back(SubstituteImpl(e->child(i), subst, subst_free));
  }
  (void)child_binders;
  return e->WithBindersAndChildren(std::move(binders), std::move(children));
}

}  // namespace

ExprPtr Substitute(const ExprPtr& e, const std::string& var, const ExprPtr& replacement) {
  std::unordered_map<std::string, ExprPtr> subst{{var, replacement}};
  return SubstituteAll(e, subst);
}

ExprPtr SubstituteAll(const ExprPtr& e,
                      const std::unordered_map<std::string, ExprPtr>& subst) {
  std::set<std::string> subst_free;
  for (const auto& [_, rep] : subst) {
    auto fv = FreeVars(rep);
    subst_free.insert(fv.begin(), fv.end());
  }
  return SubstituteImpl(e, subst, subst_free);
}

namespace {

bool AlphaEqualImpl(const ExprPtr& a, const ExprPtr& b,
                    std::unordered_map<std::string, std::string>* a_to_b,
                    std::unordered_map<std::string, std::string>* b_to_a) {
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case ExprKind::kVar: {
      auto it = a_to_b->find(a->var_name());
      if (it != a_to_b->end()) return it->second == b->var_name();
      // Free variable: must match exactly and not be bound on the other side.
      auto rit = b_to_a->find(b->var_name());
      if (rit != b_to_a->end()) return false;
      return a->var_name() == b->var_name();
    }
    case ExprKind::kBoolConst:
      return a->bool_const() == b->bool_const();
    case ExprKind::kNatConst:
      return a->nat_const() == b->nat_const();
    case ExprKind::kRealConst:
      return a->real_const() == b->real_const();
    case ExprKind::kStrConst:
      return a->str_const() == b->str_const();
    case ExprKind::kCmp:
      if (a->cmp_op() != b->cmp_op()) return false;
      break;
    case ExprKind::kArith:
      if (a->arith_op() != b->arith_op()) return false;
      break;
    case ExprKind::kProj:
      if (a->proj_index() != b->proj_index() || a->proj_arity() != b->proj_arity()) {
        return false;
      }
      break;
    case ExprKind::kDim:
    case ExprKind::kIndex:
    case ExprKind::kDense:
      if (a->rank() != b->rank()) return false;
      break;
    case ExprKind::kLiteral:
      return a->literal() == b->literal();
    case ExprKind::kExternal:
      return a->var_name() == b->var_name();
    default:
      break;
  }
  if (a->children().size() != b->children().size()) return false;
  if (a->binders().size() != b->binders().size()) return false;

  auto child_binders_a = ChildBinders(*a);
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (child_binders_a[i].empty()) {
      if (!AlphaEqualImpl(a->child(i), b->child(i), a_to_b, b_to_a)) return false;
    } else {
      // Pair up binder names for the scope of this child.
      std::vector<std::pair<std::string, std::string>> saved_ab, saved_ba;
      for (size_t j = 0; j < a->binders().size(); ++j) {
        const std::string& ba = a->binders()[j];
        const std::string& bb = b->binders()[j];
        auto ita = a_to_b->find(ba);
        saved_ab.emplace_back(ba, ita == a_to_b->end() ? std::string() : ita->second);
        auto itb = b_to_a->find(bb);
        saved_ba.emplace_back(bb, itb == b_to_a->end() ? std::string() : itb->second);
        (*a_to_b)[ba] = bb;
        (*b_to_a)[bb] = ba;
      }
      bool ok = AlphaEqualImpl(a->child(i), b->child(i), a_to_b, b_to_a);
      for (auto& [k, v] : saved_ab) {
        if (v.empty()) {
          a_to_b->erase(k);
        } else {
          (*a_to_b)[k] = v;
        }
      }
      for (auto& [k, v] : saved_ba) {
        if (v.empty()) {
          b_to_a->erase(k);
        } else {
          (*b_to_a)[k] = v;
        }
      }
      if (!ok) return false;
    }
  }
  return true;
}

}  // namespace

bool AlphaEqual(const ExprPtr& a, const ExprPtr& b) {
  std::unordered_map<std::string, std::string> a_to_b, b_to_a;
  return AlphaEqualImpl(a, b, &a_to_b, &b_to_a);
}

namespace {

inline uint64_t HashMix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4);
  return h;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) h = (h ^ c) * 0x100000001b3ull;
  return h;
}

// `bound` maps a binder name to the stack of binding ids it shadows; ids
// are assigned in traversal order, so two alpha-equivalent terms assign
// identical ids to corresponding binders (mirroring AlphaEqualImpl, which
// pairs up binder names child by child).
uint64_t HashExprImpl(const ExprPtr& e,
                      std::unordered_map<std::string, std::vector<uint64_t>>* bound,
                      uint64_t* next_binding_id) {
  uint64_t h = 0x100001b3ull + static_cast<uint64_t>(e->kind());
  switch (e->kind()) {
    case ExprKind::kVar: {
      auto it = bound->find(e->var_name());
      if (it != bound->end() && !it->second.empty()) {
        return HashMix(h, it->second.back());  // bound: hash the binding id
      }
      return HashMix(h, HashString(e->var_name()));  // free: hash the name
    }
    case ExprKind::kBoolConst:
      return HashMix(h, e->bool_const() ? 1 : 0);
    case ExprKind::kNatConst:
      return HashMix(h, e->nat_const());
    case ExprKind::kRealConst: {
      double d = e->real_const();
      if (d == 0.0) d = 0.0;  // +0.0 and -0.0 compare equal
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      return HashMix(h, bits);
    }
    case ExprKind::kStrConst:
      return HashMix(h, HashString(e->str_const()));
    case ExprKind::kCmp:
      h = HashMix(h, static_cast<uint64_t>(e->cmp_op()));
      break;
    case ExprKind::kArith:
      h = HashMix(h, static_cast<uint64_t>(e->arith_op()));
      break;
    case ExprKind::kProj:
      h = HashMix(HashMix(h, e->proj_index()), e->proj_arity());
      break;
    case ExprKind::kDim:
    case ExprKind::kIndex:
    case ExprKind::kDense:
      h = HashMix(h, e->rank());
      break;
    case ExprKind::kLiteral:
      return HashMix(h, HashValue(e->literal()));
    case ExprKind::kExternal:
      return HashMix(h, HashString(e->var_name()));
    default:
      break;
  }
  h = HashMix(h, e->binders().size());

  auto child_binders = ChildBinders(*e);
  for (size_t i = 0; i < e->children().size(); ++i) {
    if (child_binders[i].empty()) {
      h = HashMix(h, HashExprImpl(e->child(i), bound, next_binding_id));
    } else {
      // Assign each binder a fresh id for the scope of this child, exactly
      // as AlphaEqualImpl pairs up all binders of the node.
      for (const std::string& b : e->binders()) {
        (*bound)[b].push_back((*next_binding_id)++);
      }
      h = HashMix(h, HashExprImpl(e->child(i), bound, next_binding_id));
      for (const std::string& b : e->binders()) {
        auto it = bound->find(b);
        it->second.pop_back();
        if (it->second.empty()) bound->erase(it);
      }
    }
  }
  return h;
}

}  // namespace

uint64_t HashExpr(const ExprPtr& e) {
  std::unordered_map<std::string, std::vector<uint64_t>> bound;
  uint64_t next_binding_id = 1;
  return HashExprImpl(e, &bound, &next_binding_id);
}

uint64_t ApproxExprBytes(const ExprPtr& e) {
  uint64_t b = sizeof(Expr) + sizeof(ExprPtr);
  switch (e->kind()) {
    case ExprKind::kVar:
    case ExprKind::kExternal:
      b += e->var_name().size();
      break;
    case ExprKind::kStrConst:
      b += e->str_const().size();
      break;
    case ExprKind::kLiteral:
      b += ApproxValueBytes(e->literal());
      break;
    default:
      break;
  }
  for (const std::string& binder : e->binders()) b += binder.size();
  for (const ExprPtr& c : e->children()) b += ApproxExprBytes(c);
  return b;
}

}  // namespace aql
