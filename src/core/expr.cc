#include "core/expr.h"

#include <cassert>

#include "base/strings.h"

namespace aql {

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kVar: return "Var";
    case ExprKind::kLambda: return "Lambda";
    case ExprKind::kApply: return "Apply";
    case ExprKind::kTuple: return "Tuple";
    case ExprKind::kProj: return "Proj";
    case ExprKind::kEmptySet: return "EmptySet";
    case ExprKind::kSingleton: return "Singleton";
    case ExprKind::kUnion: return "Union";
    case ExprKind::kBigUnion: return "BigUnion";
    case ExprKind::kGet: return "Get";
    case ExprKind::kBoolConst: return "BoolConst";
    case ExprKind::kIf: return "If";
    case ExprKind::kCmp: return "Cmp";
    case ExprKind::kNatConst: return "NatConst";
    case ExprKind::kRealConst: return "RealConst";
    case ExprKind::kStrConst: return "StrConst";
    case ExprKind::kArith: return "Arith";
    case ExprKind::kGen: return "Gen";
    case ExprKind::kSum: return "Sum";
    case ExprKind::kTab: return "Tab";
    case ExprKind::kSubscript: return "Subscript";
    case ExprKind::kDim: return "Dim";
    case ExprKind::kIndex: return "Index";
    case ExprKind::kDense: return "Dense";
    case ExprKind::kBottom: return "Bottom";
    case ExprKind::kLiteral: return "Literal";
    case ExprKind::kExternal: return "External";
  }
  return "Unknown";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kMonus: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
  }
  return "?";
}

namespace {
std::shared_ptr<Expr> New(ExprKind kind) {
  struct Access : Expr {
    explicit Access(ExprKind k) : Expr(k) {}
  };
  return std::make_shared<Access>(kind);
}
}  // namespace

ExprPtr Expr::Var(std::string name) {
  auto e = New(ExprKind::kVar);
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Lambda(std::string param, ExprPtr body) {
  auto e = New(ExprKind::kLambda);
  e->binders_ = {std::move(param)};
  e->children_ = {std::move(body)};
  return e;
}

ExprPtr Expr::Apply(ExprPtr fn, ExprPtr arg) {
  auto e = New(ExprKind::kApply);
  e->children_ = {std::move(fn), std::move(arg)};
  return e;
}

ExprPtr Expr::Tuple(std::vector<ExprPtr> fields) {
  assert(fields.size() >= 2);
  auto e = New(ExprKind::kTuple);
  e->children_ = std::move(fields);
  return e;
}

ExprPtr Expr::Proj(size_t i, size_t k, ExprPtr inner) {
  assert(i >= 1 && i <= k && k >= 2);
  auto e = New(ExprKind::kProj);
  e->index_i_ = i;
  e->arity_k_ = k;
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::EmptySet() { return New(ExprKind::kEmptySet); }

ExprPtr Expr::Singleton(ExprPtr inner) {
  auto e = New(ExprKind::kSingleton);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::Union(ExprPtr a, ExprPtr b) {
  auto e = New(ExprKind::kUnion);
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::BigUnion(std::string var, ExprPtr body, ExprPtr source) {
  auto e = New(ExprKind::kBigUnion);
  e->binders_ = {std::move(var)};
  e->children_ = {std::move(body), std::move(source)};
  return e;
}

ExprPtr Expr::Get(ExprPtr inner) {
  auto e = New(ExprKind::kGet);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::BoolConst(bool b) {
  auto e = New(ExprKind::kBoolConst);
  e->nat_const_ = b ? 1 : 0;
  return e;
}

ExprPtr Expr::If(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = New(ExprKind::kIf);
  e->children_ = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr Expr::Cmp(CmpOp op, ExprPtr a, ExprPtr b) {
  auto e = New(ExprKind::kCmp);
  e->cmp_op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::NatConst(uint64_t n) {
  auto e = New(ExprKind::kNatConst);
  e->nat_const_ = n;
  return e;
}

ExprPtr Expr::RealConst(double d) {
  auto e = New(ExprKind::kRealConst);
  e->real_const_ = d;
  return e;
}

ExprPtr Expr::StrConst(std::string s) {
  auto e = New(ExprKind::kStrConst);
  e->name_ = std::move(s);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr a, ExprPtr b) {
  auto e = New(ExprKind::kArith);
  e->arith_op_ = op;
  e->children_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::Gen(ExprPtr inner) {
  auto e = New(ExprKind::kGen);
  e->children_ = {std::move(inner)};
  return e;
}

ExprPtr Expr::Sum(std::string var, ExprPtr body, ExprPtr source) {
  auto e = New(ExprKind::kSum);
  e->binders_ = {std::move(var)};
  e->children_ = {std::move(body), std::move(source)};
  return e;
}

ExprPtr Expr::Tab(std::vector<std::string> index_vars, ExprPtr body,
                  std::vector<ExprPtr> bounds) {
  assert(!index_vars.empty() && index_vars.size() == bounds.size());
  auto e = New(ExprKind::kTab);
  e->binders_ = std::move(index_vars);
  e->arity_k_ = e->binders_.size();
  e->children_.reserve(1 + bounds.size());
  e->children_.push_back(std::move(body));
  for (ExprPtr& b : bounds) e->children_.push_back(std::move(b));
  return e;
}

ExprPtr Expr::Subscript(ExprPtr array, ExprPtr index) {
  auto e = New(ExprKind::kSubscript);
  e->children_ = {std::move(array), std::move(index)};
  return e;
}

ExprPtr Expr::Dim(size_t rank, ExprPtr array) {
  assert(rank >= 1);
  auto e = New(ExprKind::kDim);
  e->arity_k_ = rank;
  e->children_ = {std::move(array)};
  return e;
}

ExprPtr Expr::Index(size_t rank, ExprPtr set) {
  assert(rank >= 1);
  auto e = New(ExprKind::kIndex);
  e->arity_k_ = rank;
  e->children_ = {std::move(set)};
  return e;
}

ExprPtr Expr::Dense(size_t rank, std::vector<ExprPtr> dims, std::vector<ExprPtr> elems) {
  assert(rank >= 1 && dims.size() == rank);
  auto e = New(ExprKind::kDense);
  e->arity_k_ = rank;
  e->children_.reserve(dims.size() + elems.size());
  for (ExprPtr& d : dims) e->children_.push_back(std::move(d));
  for (ExprPtr& v : elems) e->children_.push_back(std::move(v));
  return e;
}

ExprPtr Expr::Bottom() { return New(ExprKind::kBottom); }

ExprPtr Expr::Literal(Value v) {
  auto e = New(ExprKind::kLiteral);
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::External(std::string name) {
  auto e = New(ExprKind::kExternal);
  e->name_ = std::move(name);
  return e;
}

size_t Expr::TreeSize() const {
  size_t n = 1;
  for (const ExprPtr& c : children_) n += c->TreeSize();
  return n;
}

ExprPtr Expr::WithChildren(std::vector<ExprPtr> children) const {
  return WithBindersAndChildren(binders_, std::move(children));
}

ExprPtr Expr::WithBindersAndChildren(std::vector<std::string> binders,
                                     std::vector<ExprPtr> children) const {
  assert(children.size() == children_.size());
  assert(binders.size() == binders_.size());
  auto e = New(kind_);
  e->children_ = std::move(children);
  e->binders_ = std::move(binders);
  e->name_ = name_;
  e->nat_const_ = nat_const_;
  e->real_const_ = real_const_;
  e->cmp_op_ = cmp_op_;
  e->arith_op_ = arith_op_;
  e->index_i_ = index_i_;
  e->arity_k_ = arity_k_;
  e->literal_ = literal_;
  return e;
}

std::vector<std::vector<std::string>> ChildBinders(const Expr& e) {
  std::vector<std::vector<std::string>> out(e.children().size());
  switch (e.kind()) {
    case ExprKind::kLambda:
      out[0] = {e.binder()};
      break;
    case ExprKind::kBigUnion:
    case ExprKind::kSum:
      out[0] = {e.binder()};  // body binds; source does not
      break;
    case ExprKind::kTab:
      out[0] = e.binders();  // body binds all index vars; bounds do not
      break;
    default:
      break;
  }
  return out;
}

namespace {

void Append(const Expr& e, std::string* out);

void AppendChild(const Expr& e, std::string* out) {
  // Parenthesize anything that isn't clearly atomic.
  switch (e.kind()) {
    case ExprKind::kVar:
    case ExprKind::kBoolConst:
    case ExprKind::kNatConst:
    case ExprKind::kRealConst:
    case ExprKind::kStrConst:
    case ExprKind::kEmptySet:
    case ExprKind::kSingleton:
    case ExprKind::kTuple:
    case ExprKind::kBottom:
    case ExprKind::kExternal:
    case ExprKind::kTab:
    case ExprKind::kDense:
    case ExprKind::kGen:
    case ExprKind::kGet:
    case ExprKind::kDim:
    case ExprKind::kIndex:
    case ExprKind::kProj:
    case ExprKind::kLiteral:
      Append(e, out);
      break;
    default:
      out->push_back('(');
      Append(e, out);
      out->push_back(')');
  }
}

void Append(const Expr& e, std::string* out) {
  switch (e.kind()) {
    case ExprKind::kVar:
      out->append(e.var_name());
      return;
    case ExprKind::kLambda:
      out->append("\\");
      out->append(e.binder());
      out->append(". ");
      Append(*e.child(0), out);
      return;
    case ExprKind::kApply:
      AppendChild(*e.child(0), out);
      out->push_back('(');
      Append(*e.child(1), out);
      out->push_back(')');
      return;
    case ExprKind::kTuple: {
      out->push_back('(');
      for (size_t i = 0; i < e.children().size(); ++i) {
        if (i > 0) out->append(", ");
        Append(*e.child(i), out);
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kProj:
      out->append(StrCat("pi_", e.proj_index(), ",", e.proj_arity()));
      out->push_back('(');
      Append(*e.child(0), out);
      out->push_back(')');
      return;
    case ExprKind::kEmptySet:
      out->append("{}");
      return;
    case ExprKind::kSingleton:
      out->push_back('{');
      Append(*e.child(0), out);
      out->push_back('}');
      return;
    case ExprKind::kUnion:
      AppendChild(*e.child(0), out);
      out->append(" U ");
      AppendChild(*e.child(1), out);
      return;
    case ExprKind::kBigUnion:
      out->append("U{ ");
      Append(*e.child(0), out);
      out->append(" | ");
      out->append(e.binder());
      out->append(" in ");
      Append(*e.child(1), out);
      out->append(" }");
      return;
    case ExprKind::kGet:
      out->append("get(");
      Append(*e.child(0), out);
      out->push_back(')');
      return;
    case ExprKind::kBoolConst:
      out->append(e.bool_const() ? "true" : "false");
      return;
    case ExprKind::kIf:
      out->append("if ");
      Append(*e.child(0), out);
      out->append(" then ");
      Append(*e.child(1), out);
      out->append(" else ");
      Append(*e.child(2), out);
      return;
    case ExprKind::kCmp:
      AppendChild(*e.child(0), out);
      out->push_back(' ');
      out->append(CmpOpName(e.cmp_op()));
      out->push_back(' ');
      AppendChild(*e.child(1), out);
      return;
    case ExprKind::kNatConst:
      out->append(std::to_string(e.nat_const()));
      return;
    case ExprKind::kRealConst:
      out->append(RealToString(e.real_const()));
      return;
    case ExprKind::kStrConst:
      out->push_back('"');
      out->append(e.str_const());
      out->push_back('"');
      return;
    case ExprKind::kArith:
      AppendChild(*e.child(0), out);
      out->push_back(' ');
      out->append(ArithOpName(e.arith_op()));
      out->push_back(' ');
      AppendChild(*e.child(1), out);
      return;
    case ExprKind::kGen:
      out->append("gen(");
      Append(*e.child(0), out);
      out->push_back(')');
      return;
    case ExprKind::kSum:
      out->append("Sum{ ");
      Append(*e.child(0), out);
      out->append(" | ");
      out->append(e.binder());
      out->append(" in ");
      Append(*e.child(1), out);
      out->append(" }");
      return;
    case ExprKind::kTab: {
      out->append("[[ ");
      Append(*e.tab_body(), out);
      out->append(" | ");
      for (size_t j = 0; j < e.tab_rank(); ++j) {
        if (j > 0) out->append(", ");
        out->append(e.binders()[j]);
        out->append(" < ");
        Append(*e.tab_bound(j), out);
      }
      out->append(" ]]");
      return;
    }
    case ExprKind::kSubscript:
      AppendChild(*e.child(0), out);
      out->push_back('[');
      Append(*e.child(1), out);
      out->push_back(']');
      return;
    case ExprKind::kDim:
      out->append(StrCat("dim_", e.rank(), "("));
      Append(*e.child(0), out);
      out->push_back(')');
      return;
    case ExprKind::kIndex:
      out->append(StrCat("index_", e.rank(), "("));
      Append(*e.child(0), out);
      out->push_back(')');
      return;
    case ExprKind::kDense: {
      out->append("[[");
      for (size_t j = 0; j < e.dense_rank(); ++j) {
        if (j > 0) out->push_back(',');
        Append(*e.dense_dim(j), out);
      }
      out->append("; ");
      for (size_t j = 0; j < e.dense_value_count(); ++j) {
        if (j > 0) out->append(", ");
        Append(*e.dense_value(j), out);
      }
      out->append("]]");
      return;
    }
    case ExprKind::kBottom:
      out->append("bottom");
      return;
    case ExprKind::kLiteral:
      out->append(e.literal().ToString());
      return;
    case ExprKind::kExternal:
      out->append(e.var_name());
      return;
  }
}

}  // namespace

std::string Expr::ToString() const {
  std::string out;
  Append(*this, &out);
  return out;
}

}  // namespace aql
