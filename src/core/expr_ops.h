// Binding-aware operations on core expressions: free variables,
// capture-avoiding substitution, alpha-equivalence, fresh names.
//
// These are the workhorses of the optimizer (§5): the beta rule for
// functions and the beta^p rule for arrays are both "substitute, avoiding
// capture", and rule soundness tests compare results up to alpha.

#ifndef AQL_CORE_EXPR_OPS_H_
#define AQL_CORE_EXPR_OPS_H_

#include <set>
#include <string>
#include <unordered_map>

#include "core/expr.h"

namespace aql {

// Free variables of e (bound occurrences excluded).
std::set<std::string> FreeVars(const ExprPtr& e);

// True iff `name` occurs free in e.
bool OccursFree(const ExprPtr& e, const std::string& name);

// Returns a name not present in `avoid`, derived from `base`.
// Fresh names use a '$' suffix, which the surface lexer never produces,
// so generated names can never collide with user names.
std::string FreshName(const std::string& base, const std::set<std::string>& avoid);

// e with every free occurrence of `var` replaced by `replacement`,
// alpha-renaming binders as needed to avoid capturing replacement's
// free variables.
ExprPtr Substitute(const ExprPtr& e, const std::string& var, const ExprPtr& replacement);

// Simultaneous capture-avoiding substitution.
ExprPtr SubstituteAll(const ExprPtr& e,
                      const std::unordered_map<std::string, ExprPtr>& subst);

// Structural equality up to renaming of bound variables.
bool AlphaEqual(const ExprPtr& a, const ExprPtr& b);

// Structural hash consistent with alpha-equivalence:
// AlphaEqual(a, b)  ⇒  HashExpr(a) == HashExpr(b).
// Bound variables hash by binding index (de Bruijn style), free variables
// and externals by name, literals via HashValue. This is the key function
// of the service layer's plan cache (src/service/plan_cache.h): resolved
// core expressions are bucketed by HashExpr and confirmed by AlphaEqual.
uint64_t HashExpr(const ExprPtr& e);

// Approximate heap footprint of a term in bytes: per-node overhead plus
// binder/name strings and literal payloads (object/value.h's
// ApproxValueBytes). Shared subterms are charged at every reference —
// deliberate, since cache eviction wants the cost of keeping the tree
// reachable, not its minimal DAG size. Used by the byte-bounded caches.
uint64_t ApproxExprBytes(const ExprPtr& e);

}  // namespace aql

#endif  // AQL_CORE_EXPR_OPS_H_
